// Regenerates paper Fig. 5a: strong scaling of the 4K problem
// (2048^2 x 4096 -> 4096^3, R = 32, C = Ngpus/32, 32..2048 GPUs).
#include "bench_fig5.h"

int main() {
  using namespace ifdk;
  bench::print_fig5("Fig. 5a — strong scaling 2048^2x4096 -> 4096^3 (R=32)",
                    paper::fig5a(), /*rows=*/32, [](int) {
                      return Problem{{2048, 2048, 4096}, {4096, 4096, 4096}};
                    });
  std::printf("\n(headline: the 4K problem completes within 30 s at 2048 "
              "GPUs, I/O included)\n");
  return 0;
}
