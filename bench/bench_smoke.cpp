// The perf-trajectory anchor: a fast small-geometry microbench of the hot
// kernels that writes machine-readable BENCH_smoke.json. CI runs it on every
// build (ctest label `bench`), so the repo accumulates one JSON point per
// revision — the trajectory the ROADMAP's "hardware-speed" goal is plotted
// against.
//
// Usage: bench_smoke [output.json]   (default: BENCH_smoke.json in $PWD)
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "backproj/backprojector.h"
#include "bench_common.h"
#include "common/cpu_features.h"
#include "common/simd_dispatch.h"
#include "common/thread_pool.h"
#include "fft/fft.h"
#include "filter/filter_engine.h"
#include "filter/ramp.h"
#include "geometry/cbct.h"
#include "ifdk/framework.h"
#include "iterative/distributed.h"
#include "pfs/pfs.h"
#include "postproc/compression.h"
#include "service/recon_service.h"

namespace {

using namespace ifdk;

struct Result {
  std::string name;
  double seconds = 0.0;
  double gups = 0.0;  ///< voxel updates per second / 2^30
};

/// Distributed-pipeline smoke point: blocking vs overlapped wall time plus
/// the overlapped run's per-thread overlap efficiencies (busy/wall of the
/// critical rank) — the numbers that track the Fig. 4 overlap claim.
struct PipelineResult {
  int ranks = 4;
  int rows = 2;
  double blocking_seconds = 0.0;
  double overlapped_seconds = 0.0;
  StageTimer efficiency;
};

/// Streaming smoke point: N volumes pipelined through one world — the
/// volumes/sec number the 4D-CT "instant reconstruction" trajectory is
/// plotted against, plus per-thread busy/wall of the critical rank.
struct StreamingResult {
  int ranks = 4;
  int rows = 2;
  int volumes = 4;
  double seconds = 0.0;
  double volumes_per_second = 0.0;
  StageTimer efficiency;
};

StreamingResult time_streaming(const bench::Scene& scene, int runs) {
  StreamingResult r;
  IfdkOptions opts;
  opts.ranks = r.ranks;
  opts.rows = r.rows;
  std::vector<JobSpec> volumes;
  for (int v = 0; v < r.volumes; ++v) {
    volumes.push_back(JobSpec{"in" + std::to_string(v) + "/",
                                   "out" + std::to_string(v) + "/slice_",
                                   {}});
  }
  StreamingStats last;
  r.seconds = bench::median_seconds(runs, [&] {
    pfs::ParallelFileSystem fs;
    for (const JobSpec& vol : volumes) {
      stage_projections(fs, vol.input_prefix, scene.projections);
    }
    last = run_streaming(scene.g, fs, opts, volumes);
  });
  r.volumes_per_second =
      r.seconds > 0.0 ? static_cast<double>(r.volumes) / r.seconds : 0.0;
  r.efficiency = last.overlap_efficiency;
  return r;
}

/// Compression smoke point: the streaming run with the framed wire codec
/// and the quantized store codec both on — achieved wire/store ratios and
/// the worst per-volume store PSNR — plus raw encode/decode throughput of
/// the lossless frame codec on projection data (the numbers the Section 8
/// "compression" trajectory is plotted against).
struct CompressionResult {
  int ranks = 4;
  int rows = 2;
  int volumes = 2;
  int store_bits = 12;
  double seconds = 0.0;
  std::size_t wire_raw_bytes = 0;
  std::size_t wire_encoded_bytes = 0;
  std::size_t store_raw_bytes = 0;
  std::size_t store_stored_bytes = 0;
  double wire_ratio = 1.0;
  double store_ratio = 1.0;
  double min_store_psnr_db = 0.0;
  double encode_mb_per_s = 0.0;
  double decode_mb_per_s = 0.0;
};

CompressionResult time_compression(const bench::Scene& scene, int runs) {
  CompressionResult r;
  IfdkOptions opts;
  opts.ranks = r.ranks;
  opts.rows = r.rows;
  opts.compress_wire = true;
  std::vector<JobSpec> volumes;
  for (int v = 0; v < r.volumes; ++v) {
    JobSpec spec{"in" + std::to_string(v) + "/",
                 "cmp_out" + std::to_string(v) + "/slice_",
                 {}};
    spec.compress_store = true;
    spec.store_bits = r.store_bits;
    volumes.push_back(std::move(spec));
  }
  StreamingStats last;
  r.seconds = bench::median_seconds(runs, [&] {
    pfs::ParallelFileSystem fs;
    for (const JobSpec& vol : volumes) {
      stage_projections(fs, vol.input_prefix, scene.projections);
    }
    last = run_streaming(scene.g, fs, opts, volumes);
  });
  r.wire_raw_bytes = last.wire_raw_bytes;
  r.wire_encoded_bytes = last.wire_encoded_bytes;
  r.store_raw_bytes = last.store_raw_bytes;
  r.store_stored_bytes = last.store_stored_bytes;
  r.wire_ratio = last.wire_ratio();
  r.store_ratio = last.store_ratio();
  r.min_store_psnr_db = 0.0;
  for (std::size_t v = 0; v < last.volume_store_psnr_db.size(); ++v) {
    const double psnr = last.volume_store_psnr_db[v];
    if (std::isfinite(psnr) &&
        (r.min_store_psnr_db == 0.0 || psnr < r.min_store_psnr_db)) {
      r.min_store_psnr_db = psnr;
    }
  }

  // Raw lossless-codec throughput on real projection data (one frame per
  // projection, the wire-path granularity).
  const double enc_s = bench::median_seconds(runs, [&] {
    for (const Image2D& p : scene.projections) {
      postproc::encode_frame(p.data(), p.pixels());
    }
  });
  std::vector<std::vector<std::uint8_t>> frames;
  for (const Image2D& p : scene.projections) {
    frames.push_back(postproc::encode_frame(p.data(), p.pixels()));
  }
  std::vector<float> decoded(scene.projections[0].pixels());
  const double dec_s = bench::median_seconds(runs, [&] {
    for (std::size_t n = 0; n < frames.size(); ++n) {
      postproc::decode_frame(frames[n].data(), frames[n].size(),
                             decoded.data(), decoded.size());
    }
  });
  const double mb = static_cast<double>(scene.projections.size()) *
                    static_cast<double>(decoded.size()) * sizeof(float) /
                    1048576.0;
  r.encode_mb_per_s = enc_s > 0.0 ? mb / enc_s : 0.0;
  r.decode_mb_per_s = dec_s > 0.0 ? mb / dec_s : 0.0;
  return r;
}

/// Service-layer smoke point: N mixed-priority jobs submitted through the
/// ReconService front door (one deliberately rejected at admission), drained
/// to completion — the jobs/sec, queue-latency, and rejection numbers the
/// scheduler trajectory is plotted against.
struct ServiceResult {
  int ranks = 4;
  int rows = 2;
  int jobs = 4;
  double seconds = 0.0;
  double jobs_per_second = 0.0;
  double mean_queue_latency_s = 0.0;
  std::size_t rejected = 0;
  std::size_t resplits = 0;
};

ServiceResult time_service(const bench::Scene& scene, int runs) {
  ServiceResult r;
  service::ServiceOptions opts;
  opts.ifdk.ranks = r.ranks;
  opts.ifdk.rows = r.rows;
  service::ServiceStats last;
  r.seconds = bench::median_seconds(runs, [&] {
    pfs::ParallelFileSystem fs;
    service::ReconService svc(scene.g, fs, opts);
    for (int j = 0; j < r.jobs; ++j) {
      JobSpec spec{"in" + std::to_string(j) + "/",
                   "out" + std::to_string(j) + "/slice_"};
      spec.tenant = j % 2 == 0 ? "even" : "odd";
      spec.priority = j % 2;
      stage_projections(fs, spec.input_prefix, scene.projections);
      svc.submit(std::move(spec));
    }
    // One impossible job exercises the admission path (counted, not run).
    try {
      service::ServiceOptions tiny = opts;
      tiny.ifdk.device.memory_bytes = 1;
      service::ReconService reject_svc(scene.g, fs, tiny);
      reject_svc.submit(JobSpec{"in0/", "reject/slice_"});
    } catch (const service::AdmissionError&) {
    }
    svc.drain();
    last = svc.stats();
  });
  r.jobs_per_second =
      r.seconds > 0.0 ? static_cast<double>(r.jobs) / r.seconds : 0.0;
  r.mean_queue_latency_s = last.mean_queue_latency_s;
  r.rejected = 1;  // the reject_svc admission above
  r.resplits = last.resplits;
  return r;
}

/// Iterative-workload smoke point: SART on the engine — iterations/sec, the
/// residual trajectory, and per-stage busy seconds of the critical rank (the
/// numbers the §6.2 solver trajectory is plotted against).
struct IterativeResult {
  int ranks = 4;
  int rows = 2;
  int iterations = 2;
  double seconds = 0.0;
  iterative::IterStats stats;
};

IterativeResult time_iterative(const bench::Scene& scene, int runs) {
  IterativeResult r;
  IfdkOptions opts;
  opts.ranks = r.ranks;
  opts.rows = r.rows;
  JobSpec spec{"in/", "iter_out/slice_"};
  spec.workload = WorkloadKind::kIterative;
  spec.iterative.iterations = r.iterations;
  r.seconds = bench::median_seconds(runs, [&] {
    pfs::ParallelFileSystem fs;
    stage_projections(fs, spec.input_prefix, scene.projections);
    r.stats = iterative::run_iterative(scene.g, fs, opts, spec);
  });
  return r;
}

PipelineResult time_pipeline(const bench::Scene& scene, int runs) {
  PipelineResult p;
  IfdkOptions opts;
  opts.ranks = p.ranks;
  opts.rows = p.rows;
  auto run_once = [&](bool overlap) {
    pfs::ParallelFileSystem fs;
    stage_projections(fs, opts.input_prefix, scene.projections);
    opts.overlap = overlap;
    return run_distributed(scene.g, fs, opts);
  };
  p.blocking_seconds =
      bench::median_seconds(runs, [&] { run_once(false); });
  IfdkStats last;
  p.overlapped_seconds =
      bench::median_seconds(runs, [&] { last = run_once(true); });
  p.efficiency = last.overlap_efficiency;
  return p;
}

/// One ramp-filter timing row: the row convolver pinned to one FFT batch
/// backend, driven either through the lane-width batch entry point or row by
/// row. Every row does identical arithmetic (the backends are bitwise-
/// identical by construction), so the deltas are pure vectorization effects.
struct FilterRow {
  std::string name;
  double seconds = 0.0;
  double rows_per_second = 0.0;
};

/// Filter-stage smoke point: per-backend rows for the FFT batch backend
/// layer, plus the backend kAuto resolves to on this machine (what the
/// production filtering threads run) and its SoA lane count (8 on avx512,
/// 4 elsewhere).
struct FilterResult {
  const char* backend = "scalar";
  std::size_t lanes = 4;
  std::vector<FilterRow> rows;
};

FilterResult time_filter(const bench::Scene& scene, int runs) {
  FilterResult f;
  f.backend = filter::FilterEngine(scene.g).fft_backend_name();
  // The exact full-row ramp kernel FilterEngine builds by default.
  const std::vector<double> kernel = filter::make_ramp_kernel(
      scene.g.nu - 1, 1.0, filter::RampWindow::kRamLak, 1.0);
  const std::size_t nu = scene.g.nu;
  const std::size_t nv = scene.g.nv;
  std::vector<float> rows(nu * nv);
  const auto refresh = [&] {
    std::memcpy(rows.data(), scene.projections[0].data(),
                rows.size() * sizeof(float));
  };
  const auto add_row = [&](const std::string& name, double seconds) {
    FilterRow r{name, seconds, 0.0};
    r.rows_per_second =
        seconds > 0.0 ? static_cast<double>(nv) / seconds : 0.0;
    f.rows.push_back(std::move(r));
  };
  const auto time_backend = [&](fft::Backend backend, const char* prefix) {
    const fft::RowConvolver conv(nu, kernel, backend);
    fft::Workspace ws;
    add_row(std::string(prefix) + "_batched",
            bench::median_seconds(runs, [&] {
              refresh();
              conv.convolve_rows(rows.data(), nv, ws);
            }));
    add_row(std::string(prefix) + "_single_row",
            bench::median_seconds(runs, [&] {
              refresh();
              for (std::size_t v = 0; v < nv; ++v) {
                conv.convolve_row(rows.data() + v * nu, ws);
              }
            }));
  };
  f.lanes = fft::RowConvolver(nu, kernel).batch_lanes();
  // Every backend this CPU/build supports, widest first (list_backends()
  // order), so the JSON always carries the full measured backend matrix.
  for (const ifdk::simd::BackendInfo& info : ifdk::simd::list_backends()) {
    if (!info.supported) continue;
    time_backend(info.backend,
                 (std::string("filter_") + ifdk::simd::to_string(info.backend))
                     .c_str());
  }
  return f;
}

Result time_backprojection(const char* name, const bench::Scene& scene,
                           bp::BpConfig cfg, int runs) {
  const auto matrices = geo::make_all_projection_matrices(scene.g);
  bp::Backprojector kernel(scene.g, cfg);
  Volume vol(scene.g.nx, scene.g.ny, scene.g.nz, cfg.layout);
  Result r{name, 0.0, 0.0};
  r.seconds = bench::median_seconds(
      runs, [&] { kernel.accumulate(vol, scene.projections, matrices); });
  r.gups = static_cast<double>(scene.g.problem().updates()) / r.seconds /
           1073741824.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_smoke.json";
  constexpr int kRuns = 5;

  const bench::Scene scene = bench::make_scene({{96, 96, 32}, {48, 48, 48}});
  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  ThreadPool pool(hw);

  // The auto-dispatched backend this machine resolves to (what production
  // code paths run); recorded in the JSON so the perf trajectory can tell
  // scalar points from AVX2 points.
  const char* active_backend =
      bp::Backprojector(scene.g, bp::config_for(bp::KernelVariant::kL1Tran))
          .backend_name();

  std::vector<Result> results;
  results.push_back(time_backprojection(
      "backproject_standard_serial", scene,
      bp::config_for(bp::KernelVariant::kRtk32), kRuns));
  results.push_back(time_backprojection(
      "backproject_proposed_serial", scene,
      bp::config_for(bp::KernelVariant::kL1Tran), kRuns));
  bp::BpConfig pooled = bp::config_for(bp::KernelVariant::kL1Tran);
  pooled.pool = &pool;
  results.push_back(time_backprojection("backproject_proposed_pooled", scene,
                                        pooled, kRuns));
  // One pinned row per backend this CPU/build supports, widest first, so
  // the JSON always carries the full measured backend matrix.
  for (const simd::BackendInfo& info : simd::list_backends()) {
    if (!info.supported) continue;
    bp::BpConfig cfg = bp::config_for(bp::KernelVariant::kL1Tran);
    cfg.simd_backend = info.backend;
    results.push_back(time_backprojection(
        ("backproject_proposed_" +
         std::string(simd::to_string(info.backend)))
            .c_str(),
        scene, cfg, kRuns));
  }

  {
    filter::FilterEngine engine(scene.g);
    Image2D img(scene.g.nu, scene.g.nv, false);
    Result r{"filter_projection", 0.0, 0.0};
    r.seconds = bench::median_seconds(kRuns, [&] {
      for (std::size_t n = 0; n < img.pixels(); ++n) {
        img.data()[n] = scene.projections[0].data()[n];
      }
      engine.apply(img);
    });
    results.push_back(r);
  }

  // End-to-end distributed pipeline (small 2x2 grid): blocking reference vs
  // the overlapped pipeline, 3-run medians (the full recon dominates smoke
  // runtime, so fewer runs than the kernel timings).
  const PipelineResult pipeline = time_pipeline(scene, 3);

  // Streaming-4DCT smoke point: 4 volumes through the same 2x2 world.
  const StreamingResult streaming = time_streaming(scene, 3);

  // Service smoke point: 4 mixed-priority jobs through the scheduler front
  // door (plus one admission rejection).
  const ServiceResult svc = time_service(scene, 3);

  // Iterative-workload smoke point: 2 SART iterations on the same 2x2 world.
  const IterativeResult iter = time_iterative(scene, 3);

  // Compression smoke point: the same streaming world with the framed wire
  // codec and the 12-bit quantized store both on.
  const CompressionResult comp = time_compression(scene, 3);

  // Filter-stage smoke point: the FFT batch backends head to head.
  const FilterResult filt = time_filter(scene, kRuns);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_smoke: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"smoke\",\n");
  std::fprintf(out,
               "  \"geometry\": {\"nu\": %zu, \"nv\": %zu, \"np\": %zu, "
               "\"nx\": %zu, \"ny\": %zu, \"nz\": %zu},\n",
               scene.g.nu, scene.g.nv, scene.g.np, scene.g.nx, scene.g.ny,
               scene.g.nz);
  std::fprintf(out, "  \"threads\": %zu,\n  \"simd_backend\": \"%s\",\n",
               hw, active_backend);
  // Full detected feature set of the executing CPU, so a trajectory point
  // is attributable to the hardware it ran on (scalar-on-avx512-silicon vs
  // scalar-because-no-vector-units look identical without this).
  {
    const CpuFeatures& cpu = cpu_features();
    std::fprintf(out,
                 "  \"cpu\": {\"avx2\": %s, \"fma\": %s, \"avx512f\": %s, "
                 "\"avx512dq\": %s, \"avx512vl\": %s, \"neon\": %s},\n",
                 cpu.avx2 ? "true" : "false", cpu.fma ? "true" : "false",
                 cpu.avx512f ? "true" : "false",
                 cpu.avx512dq ? "true" : "false",
                 cpu.avx512vl ? "true" : "false",
                 cpu.neon ? "true" : "false");
  }
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t n = 0; n < results.size(); ++n) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"seconds\": %.6f, \"gups\": %.4f}%s\n",
                 results[n].name.c_str(), results[n].seconds, results[n].gups,
                 n + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"pipeline\": {\n"
               "    \"ranks\": %d, \"rows\": %d,\n"
               "    \"blocking_seconds\": %.6f,\n"
               "    \"overlapped_seconds\": %.6f,\n"
               "    \"overlap_efficiency\": {\"filter_thread\": %.4f, "
               "\"main_thread\": %.4f, \"bp_thread\": %.4f, "
               "\"store_thread\": %.4f}\n"
               "  },\n",
               pipeline.ranks, pipeline.rows, pipeline.blocking_seconds,
               pipeline.overlapped_seconds,
               pipeline.efficiency.get("filter_thread"),
               pipeline.efficiency.get("main_thread"),
               pipeline.efficiency.get("bp_thread"),
               pipeline.efficiency.get("store_thread"));
  std::fprintf(out,
               "  \"streaming\": {\n"
               "    \"ranks\": %d, \"rows\": %d, \"volumes\": %d,\n"
               "    \"seconds\": %.6f,\n"
               "    \"volumes_per_second\": %.4f,\n"
               "    \"busy_wall\": {\"main_thread\": %.4f, "
               "\"bp_thread\": %.4f, \"reduce_thread\": %.4f, "
               "\"store_thread\": %.4f}\n"
               "  },\n",
               streaming.ranks, streaming.rows, streaming.volumes,
               streaming.seconds, streaming.volumes_per_second,
               streaming.efficiency.get("main_thread"),
               streaming.efficiency.get("bp_thread"),
               streaming.efficiency.get("reduce_thread"),
               streaming.efficiency.get("store_thread"));
  std::fprintf(out,
               "  \"service\": {\n"
               "    \"ranks\": %d, \"rows\": %d, \"jobs\": %d,\n"
               "    \"seconds\": %.6f,\n"
               "    \"jobs_per_second\": %.4f,\n"
               "    \"mean_queue_latency_s\": %.6f,\n"
               "    \"rejected\": %zu,\n"
               "    \"resplits\": %zu\n"
               "  },\n",
               svc.ranks, svc.rows, svc.jobs, svc.seconds,
               svc.jobs_per_second, svc.mean_queue_latency_s, svc.rejected,
               svc.resplits);
  std::fprintf(out,
               "  \"iterative\": {\n"
               "    \"ranks\": %d, \"rows\": %d,\n"
               "    \"algorithm\": \"%s\", \"iterations\": %d,\n"
               "    \"seconds\": %.6f,\n"
               "    \"iterations_per_second\": %.4f,\n"
               "    \"residual_rmse\": [",
               iter.ranks, iter.rows, iter.stats.algorithm.c_str(),
               iter.stats.iterations_run, iter.seconds,
               iter.stats.iterations_per_second);
  for (std::size_t n = 0; n < iter.stats.residual_rmse.size(); ++n) {
    std::fprintf(out, "%s%.6f", n > 0 ? ", " : "",
                 iter.stats.residual_rmse[n]);
  }
  std::fprintf(out,
               "],\n"
               "    \"stage_seconds\": {\"load\": %.6f, \"normalize\": %.6f, "
               "\"forward\": %.6f, \"backproject\": %.6f, "
               "\"allreduce\": %.6f, \"update\": %.6f, \"store\": %.6f}\n"
               "  },\n",
               iter.stats.wall.get("load"), iter.stats.wall.get("normalize"),
               iter.stats.wall.get("forward"),
               iter.stats.wall.get("backproject"),
               iter.stats.wall.get("allreduce"), iter.stats.wall.get("update"),
               iter.stats.wall.get("store"));
  std::fprintf(out,
               "  \"compression\": {\n"
               "    \"ranks\": %d, \"rows\": %d, \"volumes\": %d,\n"
               "    \"store_bits\": %d,\n"
               "    \"seconds\": %.6f,\n"
               "    \"wire_raw_bytes\": %zu,\n"
               "    \"wire_encoded_bytes\": %zu,\n"
               "    \"wire_ratio\": %.4f,\n"
               "    \"store_raw_bytes\": %zu,\n"
               "    \"store_stored_bytes\": %zu,\n"
               "    \"store_ratio\": %.4f,\n"
               "    \"min_store_psnr_db\": %.2f,\n"
               "    \"encode_mb_per_s\": %.2f,\n"
               "    \"decode_mb_per_s\": %.2f\n"
               "  },\n",
               comp.ranks, comp.rows, comp.volumes, comp.store_bits,
               comp.seconds, comp.wire_raw_bytes, comp.wire_encoded_bytes,
               comp.wire_ratio, comp.store_raw_bytes, comp.store_stored_bytes,
               comp.store_ratio, comp.min_store_psnr_db, comp.encode_mb_per_s,
               comp.decode_mb_per_s);
  std::fprintf(out,
               "  \"filter\": {\n"
               "    \"fft_backend\": \"%s\",\n"
               "    \"lanes\": %zu,\n"
               "    \"rows\": [\n",
               filt.backend, filt.lanes);
  for (std::size_t n = 0; n < filt.rows.size(); ++n) {
    std::fprintf(out,
                 "      {\"name\": \"%s\", \"seconds\": %.6f, "
                 "\"rows_per_second\": %.1f}%s\n",
                 filt.rows[n].name.c_str(), filt.rows[n].seconds,
                 filt.rows[n].rows_per_second,
                 n + 1 < filt.rows.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n  },\n");

  // The resolved decomposition of the pipeline/streaming points above: the
  // same DecompositionPlan object the runtime consumed, recorded so the
  // perf trajectory can attribute a regression to a decomposition change
  // (see docs/BENCHMARKING.md for the field reference).
  {
    IfdkOptions plan_opts;
    plan_opts.ranks = pipeline.ranks;
    plan_opts.rows = pipeline.rows;
    const DecompositionPlan plan =
        DecompositionPlan::make(scene.g, plan_opts);
    std::fprintf(out,
                 "  \"plan\": {\n"
                 "    \"rows\": %d, \"columns\": %d,\n"
                 "    \"rounds\": %zu, \"slab_h\": %zu,\n"
                 "    \"slab_extents\": [",
                 plan.grid.rows, plan.grid.columns, plan.rounds, plan.slab_h);
    for (int row = 0; row < plan.grid.rows; ++row) {
      const SlabExtent e = plan.slab_extent(row);
      std::fprintf(out, "%s[%zu, %zu, %zu, %zu]", row > 0 ? ", " : "",
                   e.low_begin, e.low_end, e.high_begin, e.high_end);
    }
    std::fprintf(out,
                 "],\n"
                 "    \"reduce_segments\": %llu,\n"
                 "    \"allgather_bytes_per_round\": %llu,\n"
                 "    \"reduce_bytes_per_epoch\": %llu,\n"
                 "    \"gather_tag_budget\": %llu,\n"
                 "    \"reduce_tag_budget\": %llu,\n"
                 "    \"device_bytes\": %llu\n"
                 "  }\n}\n",
                 static_cast<unsigned long long>(plan.reduce_segments()),
                 static_cast<unsigned long long>(
                     plan.allgather_bytes_per_round()),
                 static_cast<unsigned long long>(plan.reduce_bytes_per_epoch()),
                 static_cast<unsigned long long>(
                     plan.gather_tag_budget(/*fused=*/false)),
                 static_cast<unsigned long long>(plan.reduce_tag_budget()),
                 static_cast<unsigned long long>(plan.device_bytes()));
  }
  std::fclose(out);

  std::printf("wrote %s (simd backend: %s)\n", out_path.c_str(),
              active_backend);
  for (const auto& r : results) {
    std::printf("  %-28s %9.3f ms  %7.3f GUPS\n", r.name.c_str(),
                r.seconds * 1e3, r.gups);
  }
  const double serial = results[1].seconds;
  const double pooledt = results[2].seconds;
  if (pooledt > 0.0) {
    std::printf("  pooled speedup over serial proposed: %.2fx (%zu threads)\n",
                serial / pooledt, hw);
  }
  auto seconds_of = [&](const char* name) {
    for (const auto& r : results) {
      if (r.name == name) return r.seconds;
    }
    return 0.0;
  };
  const double scalar_t = seconds_of("backproject_proposed_scalar");
  for (const simd::BackendInfo& info : simd::list_backends()) {
    if (!info.supported || info.backend == simd::Backend::kScalar) continue;
    const char* name = simd::to_string(info.backend);
    const double vec_t =
        seconds_of(("backproject_proposed_" + std::string(name)).c_str());
    if (scalar_t > 0.0 && vec_t > 0.0) {
      std::printf("  %-6s speedup over scalar backend:  %.2fx\n", name,
                  scalar_t / vec_t);
    }
  }
  std::printf("  pipeline %dx%d blocking %.3f s, overlapped %.3f s (%.2fx); "
              "efficiency filter %.2f, main %.2f, bp %.2f, store %.2f\n",
              pipeline.rows, pipeline.ranks / pipeline.rows,
              pipeline.blocking_seconds, pipeline.overlapped_seconds,
              pipeline.overlapped_seconds > 0.0
                  ? pipeline.blocking_seconds / pipeline.overlapped_seconds
                  : 0.0,
              pipeline.efficiency.get("filter_thread"),
              pipeline.efficiency.get("main_thread"),
              pipeline.efficiency.get("bp_thread"),
              pipeline.efficiency.get("store_thread"));
  std::printf("  streaming %d volumes through %dx%d: %.3f s (%.2f vol/s); "
              "busy/wall main %.2f, bp %.2f, reduce %.2f, store %.2f\n",
              streaming.volumes, streaming.rows,
              streaming.ranks / streaming.rows, streaming.seconds,
              streaming.volumes_per_second,
              streaming.efficiency.get("main_thread"),
              streaming.efficiency.get("bp_thread"),
              streaming.efficiency.get("reduce_thread"),
              streaming.efficiency.get("store_thread"));
  std::printf("  service %d jobs through %dx%d: %.3f s (%.2f jobs/s); "
              "mean queue latency %.3f s, rejected %zu, resplits %zu\n",
              svc.jobs, svc.rows, svc.ranks / svc.rows, svc.seconds,
              svc.jobs_per_second, svc.mean_queue_latency_s, svc.rejected,
              svc.resplits);
  {
    auto row_seconds = [&](const char* name) {
      for (const auto& r : filt.rows) {
        if (r.name == name) return r.seconds;
      }
      return 0.0;
    };
    const double sb = row_seconds("filter_scalar_batched");
    const double ss = row_seconds("filter_scalar_single_row");
    std::printf("  filter fft backend %s (%zu lanes): scalar %.3f ms batched"
                " / %.3f ms single-row",
                filt.backend, filt.lanes, sb * 1e3, ss * 1e3);
    for (const simd::BackendInfo& info : simd::list_backends()) {
      if (!info.supported || info.backend == simd::Backend::kScalar) continue;
      const char* name = simd::to_string(info.backend);
      const double vb =
          row_seconds(("filter_" + std::string(name) + "_batched").c_str());
      if (vb > 0.0) {
        std::printf("; %s %.3f ms batched (%.2fx over scalar)", name, vb * 1e3,
                    sb / vb);
      }
    }
    std::printf("\n");
  }
  std::printf("  compression %d volumes through %dx%d: wire ratio %.3f, "
              "store ratio %.3f @ %d bits (min PSNR %.1f dB); "
              "codec %.1f MB/s encode, %.1f MB/s decode\n",
              comp.volumes, comp.rows, comp.ranks / comp.rows,
              comp.wire_ratio, comp.store_ratio, comp.store_bits,
              comp.min_store_psnr_db, comp.encode_mb_per_s,
              comp.decode_mb_per_s);
  std::printf("  iterative %s x%d through %dx%d: %.3f s (%.2f iter/s); "
              "residual %.4f -> %.4f\n",
              iter.stats.algorithm.c_str(), iter.stats.iterations_run,
              iter.rows, iter.ranks / iter.rows, iter.seconds,
              iter.stats.iterations_per_second,
              iter.stats.residual_rmse.empty() ? 0.0
                                               : iter.stats.residual_rmse.front(),
              iter.stats.residual_rmse.empty() ? 0.0
                                               : iter.stats.residual_rmse.back());
  return 0;
}
