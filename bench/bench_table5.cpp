// Regenerates paper Table 5: the breakdown of Tcompute (Tflt, TAllGather,
// Tbp) and the pipeline-overlap factor delta for the strong-scaling
// configurations, from the calibrated cluster simulator.
#include <cstdio>

#include "bench_common.h"
#include "cluster/simulator.h"
#include "common/table.h"
#include "perfmodel/paper_reference.h"

int main() {
  using namespace ifdk;
  bench::print_header("Table 5 — Tcompute breakdown", "paper Table 5");

  TextTable t({"volume", "GPUs", "Tflt(s)", "TAllGather(s)", "Tbp(s)",
               "Tcompute(s)", "delta", "| paper: Tflt", "TAG", "Tbp",
               "Tcompute", "delta"});
  for (const auto& row : paper::table5()) {
    const Problem p{{2048, 2048, 4096},
                    {row.volume_n, row.volume_n, row.volume_n}};
    const cluster::SimResult sim = cluster::simulate(p, row.gpus);
    t.row()
        .add(std::to_string(row.volume_n) + "^3")
        .add(static_cast<std::int64_t>(row.gpus))
        .add(sim.t_flt, 1)
        .add(sim.t_allgather, 1)
        .add(sim.t_bp, 1)
        .add(sim.t_compute, 1)
        .add(sim.delta, 2)
        .add(std::string(row.t_flt_is_bound ? "<" : "") +
             std::to_string(row.t_flt).substr(0, 3))
        .add(row.t_allgather, 1)
        .add(row.t_bp, 1)
        .add(row.t_compute, 1)
        .add(row.delta, 1);
  }
  std::printf("%s", t.str().c_str());
  std::printf("\n(delta > 1 on every row: the three-thread pipeline of "
              "Fig. 4 overlaps filtering, AllGather and back-projection)\n");
  return 0;
}
