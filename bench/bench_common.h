// Shared helpers for the bench binaries: small CPU-scale problems, timing,
// and projection synthesis. Every bench prints (a) the paper's published
// numbers and (b) what this reproduction measures or models, side by side,
// so the output can be pasted into EXPERIMENTS.md directly.
#pragma once

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/image.h"
#include "common/timer.h"
#include "common/math_util.h"
#include "geometry/cbct.h"
#include "phantom/phantom.h"

namespace ifdk::bench {

/// Synthesizes `np` Shepp-Logan projections for the given problem.
struct Scene {
  geo::CbctGeometry g;
  std::vector<Image2D> projections;
};

inline Scene make_scene(const Problem& problem) {
  Scene s{geo::make_standard_geometry(problem), {}};
  s.projections = phantom::project_all(phantom::shepp_logan(), s.g);
  return s;
}

/// Measures the median of `runs` timings of `fn` (seconds).
template <typename Fn>
double median_seconds(int runs, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    Timer t;
    fn();
    times.push_back(t.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n(reproduces %s)\n\n", title, paper_ref);
}

}  // namespace ifdk::bench
