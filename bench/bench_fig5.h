// Shared printer for the four Fig. 5 scaling benches: one stacked-bar row
// per GPU count with simulated ("measured") values, the Section-4.2
// analytic model ("peak"), and the paper's published bars.
#pragma once

#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "cluster/simulator.h"
#include "common/table.h"
#include "perfmodel/model.h"
#include "perfmodel/paper_reference.h"

namespace ifdk::bench {

inline void print_fig5(const char* title,
                       const std::vector<paper::Fig5Bar>& paper_bars,
                       int rows,
                       const std::function<Problem(int gpus)>& problem_for) {
  std::printf("\n=== %s ===\n\n", title);
  TextTable t({"GPUs", "compute", "D2H", "reduce", "store", "runtime",
               "| model: compute", "post", "| paper: compute", "D2H",
               "reduce", "store"});
  for (const auto& bar : paper_bars) {
    const Problem p = problem_for(bar.gpus);
    const cluster::SimResult sim =
        cluster::simulate(p, bar.gpus, {}, rows);
    const perfmodel::Breakdown model =
        perfmodel::predict(p, {rows, bar.gpus / rows});
    t.row()
        .add(static_cast<std::int64_t>(bar.gpus))
        .add(sim.t_compute, 1)
        .add(sim.t_d2h, 1)
        .add(sim.grid.columns > 1 ? sim.t_reduce : std::nan(""), 1)
        .add(sim.t_store, 1)
        .add(sim.t_runtime, 1)
        .add(model.t_compute, 1)
        .add(model.t_post, 1)
        .add(bar.compute, 1)
        .add(bar.d2h, 1)
        .add(bar.reduce, 1)
        .add(bar.store, 1);
  }
  std::printf("%s", t.str().c_str());
}

}  // namespace ifdk::bench
