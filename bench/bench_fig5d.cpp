// Regenerates paper Fig. 5d: weak scaling to 8192^3 with Np = 4 * Ngpus.
#include "bench_fig5.h"

int main() {
  using namespace ifdk;
  bench::print_fig5("Fig. 5d — weak scaling 2048^2xNp -> 8192^3 (Np=4*Ngpus)",
                    paper::fig5d(), /*rows=*/256, [](int gpus) {
                      return Problem{
                          {2048, 2048, static_cast<std::size_t>(4 * gpus)},
                          {8192, 8192, 8192}};
                    });
  return 0;
}
