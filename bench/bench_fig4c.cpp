// Regenerates paper Fig. 4c: the pipeline timeline of the 4K problem on 128
// V100 GPUs (R=32, C=4) — per-thread stage spans and the overlap structure.
//
// The paper's figure annotates: Filtering-thread 1 s, AllGather 19 s,
// back-projection 15 s, D2H 4.7 s, Reduce 4.2 s, Store 11 s (values read off
// the figure). The simulator reproduces the same structure.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "cluster/simulator.h"

int main() {
  using namespace ifdk;
  bench::print_header("Fig. 4c — pipeline timeline, 4K problem @ 128 GPUs",
                      "paper Figure 4c");

  const Problem p{{2048, 2048, 4096}, {4096, 4096, 4096}};
  const cluster::SimResult sim = cluster::simulate(p, 128);

  std::printf("grid R=%d C=%d, %zu AllGather rounds, 32 projections each\n\n",
              sim.grid.rows, sim.grid.columns, sim.rounds);
  std::printf("thread stage spans (all overlapped inside Tcompute):\n");
  std::printf("  Filtering thread : load+filter %6.1f s total\n", sim.t_flt);
  std::printf("  Main thread      : AllGather   %6.1f s total\n",
              sim.t_allgather);
  std::printf("  Bp thread        : H2D+BP      %6.1f s total\n", sim.t_bp);
  std::printf("  => Tcompute (pipelined span)   %6.1f s   (delta = %.2f)\n\n",
              sim.t_compute, sim.delta);
  std::printf("post phases (serial after the pipeline):\n");
  std::printf("  D2H %.1f s -> Reduce %.1f s -> Store %.1f s\n\n", sim.t_d2h,
              sim.t_reduce, sim.t_store);

  // ASCII Gantt of the first rounds (each column ~ one round).
  const std::size_t shown = std::min<std::size_t>(sim.timeline.size(), 24);
  std::printf("first %zu rounds, stage completion times [s]:\n", shown);
  std::printf("round:   ");
  for (std::size_t t = 0; t < shown; t += 4) std::printf("%-4zu", t);
  std::printf("\nfilter:  ");
  for (std::size_t t = 0; t < shown; t += 4) {
    std::printf("%-4.1f", sim.timeline[t].filter_done);
  }
  std::printf("\ngather:  ");
  for (std::size_t t = 0; t < shown; t += 4) {
    std::printf("%-4.1f", sim.timeline[t].allgather_done);
  }
  std::printf("\nbackproj:");
  for (std::size_t t = 0; t < shown; t += 4) {
    std::printf("%-4.1f", sim.timeline[t].bp_done);
  }
  std::printf("\n\npaper figure annotations: filtering ~1 s, AllGather ~19 s,"
              " BP ~15 s,\nD2H ~4.7 s, Reduce ~4.2 s, Store ~11 s\n");
  return 0;
}
