// Regenerates paper Fig. 7: the volume-reduction example — a 2048^3
// reconstruction on a 4x4 grid of 16 GPUs (R=4, C=4), reported at 1,134
// GUPS.
//
// Two parts:
//   1. a *functional* run of the real distributed pipeline on a
//      proportionally scaled-down problem with the same 4x4 grid (16 real
//      ranks, real filtering/AllGather/back-projection/Reduce/store),
//      verifying the output against the single-node reference;
//   2. the full-size problem through the calibrated simulator, reporting
//      GUPS next to the paper's 1,134.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "cluster/simulator.h"
#include "common/table.h"
#include "ifdk/fdk.h"
#include "ifdk/framework.h"

int main() {
  using namespace ifdk;
  bench::print_header("Fig. 7 — volume reduction on a 4x4 rank grid",
                      "paper Figure 7");

  // Part 1: functional 16-rank run, scaled geometry (64^2 x 32 -> 32^3).
  bench::Scene scene = bench::make_scene({{64, 64, 32}, {32, 32, 32}});
  pfs::ParallelFileSystem fs;
  stage_projections(fs, "proj/", scene.projections);
  IfdkOptions opts;
  opts.ranks = 16;
  opts.rows = 4;
  const IfdkStats stats = run_distributed(scene.g, fs, opts);
  const Volume result = load_volume(fs, "vol/slice_", scene.g.vol_dims());
  const Volume reference =
      reconstruct_fdk(scene.g, scene.projections).volume;
  double err = 0, peak = 0;
  for (std::size_t n = 0; n < result.voxels(); ++n) {
    const double d = result.data()[n] - reference.data()[n];
    err += d * d;
    peak = std::max(peak, std::abs(static_cast<double>(reference.data()[n])));
  }
  err = std::sqrt(err / static_cast<double>(result.voxels())) / peak;
  std::printf("functional run: grid %dx%d, 16 ranks, wall %.2f s\n",
              stats.grid.rows, stats.grid.columns, stats.wall_total);
  std::printf("  per-stage wall max: load %.3f  filter %.3f  allgather %.3f"
              "  bp %.3f  reduce %.3f  store %.3f [s]\n",
              stats.wall.get("load"), stats.wall.get("filter"),
              stats.wall.get("allgather"), stats.wall.get("backprojection"),
              stats.wall.get("reduce"), stats.wall.get("store"));
  std::printf("  relative RMSE vs single-node FDK: %.2e (paper verifies "
              "RMSE < 1e-5 vs RTK)\n\n", err);

  // Part 2: the paper's exact configuration through the simulator.
  const Problem full{{2048, 2048, 4096}, {2048, 2048, 2048}};
  const cluster::SimResult sim = cluster::simulate(full, 16, {}, /*rows=*/4);
  TextTable t({"", "compute(s)", "D2H(s)", "reduce(s)", "store(s)",
               "runtime(s)", "GUPS"});
  t.row()
      .add("simulated 16 V100s")
      .add(sim.t_compute, 1)
      .add(sim.t_d2h, 1)
      .add(sim.t_reduce, 1)
      .add(sim.t_store, 1)
      .add(sim.t_runtime, 1)
      .add(sim.gups, 0);
  std::printf("%s", t.str().c_str());
  std::printf("paper: 1134 GUPS for 2048^2x4096 -> 2048^3 on 16 GPUs "
              "(R=4, C=4)\n");
  return 0;
}
