// Regenerates paper Table 4: back-projection kernel performance (GUPS) for
// the five kernel variants of Table 3 across fifteen problems.
//
// Two result sets are printed:
//   1. V100-model GUPS from gpusim::KernelModel for the paper's exact
//      problem list (these are the numbers a V100 would produce; exact rows
//      reproduce Table 4 by calibration, and the model interpolates between
//      them for unseen problems).
//   2. CPU-measured GUPS on proportionally scaled-down problems, which is
//      where the *algorithmic* claims are validated on real hardware: the
//      proposed kernel (L1-Tran config) must beat the standard RTK-32 scheme
//      whenever the output dominates, by roughly the paper's margins.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "backproj/backprojector.h"
#include "bench_common.h"
#include "common/table.h"
#include "gpusim/kernel_model.h"
#include "perfmodel/paper_reference.h"

namespace {

using namespace ifdk;

void print_model_table() {
  bench::print_header("Table 4 — V100 kernel model", "paper Table 4");
  gpusim::KernelModel model;
  TextTable t({"problem (in -> out)", "alpha", "RTK-32", "Bp-Tex", "Tex-Tran",
               "Bp-L1", "L1-Tran", "L1-Tran/RTK"});
  for (const auto& row : paper::table4()) {
    const double rtk =
        model.predict_gups(bp::KernelVariant::kRtk32, row.problem);
    const double l1 =
        model.predict_gups(bp::KernelVariant::kL1Tran, row.problem);
    t.row()
        .add(row.problem.to_string())
        .add(row.alpha, row.alpha < 1 ? 3 : 0)
        .add(rtk, 1)
        .add(model.predict_gups(bp::KernelVariant::kBpTex, row.problem), 1)
        .add(model.predict_gups(bp::KernelVariant::kTexTran, row.problem), 1)
        .add(model.predict_gups(bp::KernelVariant::kBpL1, row.problem), 1)
        .add(l1, 1)
        .add(std::isnan(rtk) ? std::nan("") : l1 / rtk, 2);
  }
  std::printf("%s", t.str().c_str());
  std::printf("\n(exact rows reproduce the paper's measurements by "
              "calibration; the headline is the L1-Tran/RTK-32 speedup of "
              "up to ~1.8x at alpha <= 4, 1.6x+ cited in the abstract)\n");
}

void print_cpu_table() {
  bench::print_header("Table 4 (CPU-measured, scaled-down problems)",
                      "paper Table 4's kernel ordering");
  // Scaled problems preserving the alpha ladder: input 96^2 x 64.
  const std::size_t nu = 96, np = 64;
  TextTable t({"problem (in -> out)", "alpha", "RTK-32", "Bp-Tex", "Tex-Tran",
               "L1-Tran", "L1-Tran/RTK"});
  for (std::size_t n : {24u, 40u, 64u, 80u}) {
    const Problem problem{{nu, nu, np}, {n, n, n}};
    bench::Scene scene = bench::make_scene(problem);
    const auto matrices = geo::make_all_projection_matrices(scene.g);

    auto measure = [&](bp::KernelVariant variant) {
      bp::BpConfig cfg = bp::config_for(variant);
      bp::Backprojector kernel(scene.g, cfg);
      Volume vol(n, n, n, cfg.layout);
      const double secs = bench::median_seconds(3, [&] {
        kernel.accumulate(vol, scene.projections, matrices);
      });
      return gups(n, n, n, np, secs);
    };

    const double rtk = measure(bp::KernelVariant::kRtk32);
    const double l1 = measure(bp::KernelVariant::kL1Tran);
    t.row()
        .add(problem.to_string())
        .add(problem.alpha(), 2)
        .add(rtk, 3)
        .add(measure(bp::KernelVariant::kBpTex), 3)
        .add(measure(bp::KernelVariant::kTexTran), 3)
        .add(l1, 3)
        .add(l1 / rtk, 2);
  }
  std::printf("%s", t.str().c_str());
  std::printf("\n(CPU absolute GUPS are ~1000x below a V100; the *ratio*\n"
              " column carries the paper's algorithmic claim: the proposed\n"
              " kernel wins and the margin grows as alpha shrinks)\n");
}

}  // namespace

int main() {
  print_model_table();
  print_cpu_table();
  return 0;
}
