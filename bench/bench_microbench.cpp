// Regenerates the Section 4.2.1 micro-benchmarks: the constants the iFDK
// performance model consumes (BWload/BWstore via an IOR-like sweep over the
// PFS model, BWPCIe via the device model, THflt measured on the real CPU
// filtering kernel, collective throughputs via minimpi on in-process ranks).
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "filter/filter_engine.h"
#include "gpusim/device.h"
#include "minimpi/minimpi.h"
#include "pfs/pfs.h"

namespace {

using namespace ifdk;

void pfs_ior_sweep() {
  std::printf("\n--- IOR-like PFS sweep (model) ---\n");
  pfs::ParallelFileSystem fs;
  TextTable t({"object size", "write GB/s (eff)", "read GB/s (eff)",
               "stripe util"});
  for (std::uint64_t mb : {1ull, 16ull, 64ull, 256ull, 1024ull}) {
    const std::uint64_t bytes = mb << 20;
    const double w = fs.estimate_write_seconds(bytes);
    const double r = fs.estimate_read_seconds(bytes);
    t.row()
        .add(std::to_string(mb) + " MiB")
        .add(static_cast<double>(bytes) / w / 1e9, 2)
        .add(static_cast<double>(bytes) / r / 1e9, 2)
        .add(fs.stripe_utilization(bytes), 2);
  }
  std::printf("%s", t.str().c_str());
  std::printf("(paper: GPFS sequential write 28.5 GB/s)\n");
}

void pcie_sweep() {
  std::printf("\n--- PCIe bandwidthTest (device model) ---\n");
  gpusim::Device dev;
  TextTable t({"transfer", "modeled GB/s"});
  std::vector<float> host((256ull << 20) / sizeof(float));
  for (std::uint64_t mb : {1ull, 16ull, 64ull, 256ull}) {
    const std::uint64_t bytes = mb << 20;
    gpusim::DeviceBuffer buf = dev.allocate(bytes);
    const double secs = dev.h2d(buf, host.data(), bytes);
    t.row()
        .add(std::to_string(mb) + " MiB H2D")
        .add(static_cast<double>(bytes) / secs / 1e9, 2);
  }
  std::printf("%s", t.str().c_str());
  std::printf("(paper: 11.9 GB/s per PCIe gen3 x16 link)\n");
}

void filter_throughput() {
  std::printf("\n--- filtering throughput (real CPU kernel) ---\n");
  TextTable t({"projection", "window", "proj/s (1 core)"});
  for (std::size_t nu : {256u, 512u}) {
    const Problem p{{nu, nu, 16}, {64, 64, 64}};
    bench::Scene scene = bench::make_scene(p);
    for (auto window : {filter::RampWindow::kRamLak,
                        filter::RampWindow::kHann}) {
      filter::FilterOptions fo;
      fo.window = window;
      filter::FilterEngine engine(scene.g, fo);
      Image2D img(nu, nu, false);
      for (std::size_t n = 0; n < img.pixels(); ++n) {
        img.data()[n] = scene.projections[0].data()[n];
      }
      const double secs =
          bench::median_seconds(3, [&] { engine.apply(img); });
      t.row()
          .add(std::to_string(nu) + "^2")
          .add(filter::to_string(window))
          .add(1.0 / secs, 1);
    }
  }
  std::printf("%s", t.str().c_str());
  std::printf("(paper: 366 proj/s per 40-core node at 2048^2 with IPP)\n");
}

void collective_throughput() {
  std::printf("\n--- minimpi collective throughput (in-process ranks) ---\n");
  TextTable t({"collective", "ranks", "payload", "ms/op"});
  for (int ranks : {4, 8}) {
    for (std::size_t kb : {64u, 1024u}) {
      const std::size_t bytes = kb << 10;
      double ag_ms = 0, red_ms = 0;
      mpi::run_world(ranks, [&](mpi::Comm& comm) {
        std::vector<float> send(bytes / sizeof(float), 1.0f);
        std::vector<float> recv(send.size() *
                                static_cast<std::size_t>(comm.size()));
        Timer timer;
        constexpr int kIters = 20;
        for (int i = 0; i < kIters; ++i) {
          comm.allgather(send.data(), bytes, recv.data());
        }
        if (comm.rank() == 0) ag_ms = timer.milliseconds() / kIters;
        comm.barrier();
        Timer timer2;
        std::vector<float> red(send.size());
        for (int i = 0; i < kIters; ++i) {
          comm.reduce(send.data(), red.data(), send.size(),
                      mpi::ReduceOp::kSum, 0);
        }
        if (comm.rank() == 0) red_ms = timer2.milliseconds() / kIters;
      });
      t.row()
          .add("AllGather")
          .add(static_cast<std::int64_t>(ranks))
          .add(std::to_string(kb) + " KiB")
          .add(ag_ms, 3);
      t.row()
          .add("Reduce")
          .add(static_cast<std::int64_t>(ranks))
          .add(std::to_string(kb) + " KiB")
          .add(red_ms, 3);
    }
  }
  std::printf("%s", t.str().c_str());
}

}  // namespace

int main() {
  bench::print_header("Micro-benchmarks", "paper Section 4.2.1");
  pfs_ior_sweep();
  pcie_sweep();
  filter_throughput();
  collective_throughput();
  return 0;
}
