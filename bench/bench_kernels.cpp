// google-benchmark registration of the hot kernels: the standard and
// proposed back-projection, the filtering stage, and interp2 — the pieces a
// performance engineer would profile when porting iFDK to new hardware.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "backproj/backprojector.h"
#include "bench_common.h"
#include "common/simd_dispatch.h"
#include "common/thread_pool.h"
#include "fft/fft.h"
#include "filter/filter_engine.h"

namespace {

using namespace ifdk;

const bench::Scene& shared_scene() {
  static const bench::Scene scene = bench::make_scene({{96, 96, 32},
                                                       {48, 48, 48}});
  return scene;
}

void BM_BackprojectStandard(benchmark::State& state) {
  const bench::Scene& scene = shared_scene();
  const auto matrices = geo::make_all_projection_matrices(scene.g);
  bp::BpConfig cfg = bp::config_for(bp::KernelVariant::kRtk32);
  bp::Backprojector kernel(scene.g, cfg);
  Volume vol(scene.g.nx, scene.g.ny, scene.g.nz, cfg.layout);
  for (auto _ : state) {
    kernel.accumulate(vol, scene.projections, matrices);
  }
  state.counters["GUPS"] = benchmark::Counter(
      static_cast<double>(scene.g.problem().updates()) * state.iterations() /
          1073741824.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BackprojectStandard)->Unit(benchmark::kMillisecond);

void BM_BackprojectProposed(benchmark::State& state) {
  const bench::Scene& scene = shared_scene();
  const auto matrices = geo::make_all_projection_matrices(scene.g);
  bp::BpConfig cfg = bp::config_for(bp::KernelVariant::kL1Tran);
  bp::Backprojector kernel(scene.g, cfg);
  Volume vol(scene.g.nx, scene.g.ny, scene.g.nz, cfg.layout);
  for (auto _ : state) {
    kernel.accumulate(vol, scene.projections, matrices);
  }
  state.counters["GUPS"] = benchmark::Counter(
      static_cast<double>(scene.g.problem().updates()) * state.iterations() /
          1073741824.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BackprojectProposed)->Unit(benchmark::kMillisecond);

// Arg(n) -> the n-th concrete backend (widest first: avx512, avx2, neon,
// scalar); benchmarks for backends this CPU/build lacks skip with an error
// label rather than silently measuring the wrong kernel.
simd::Backend backend_arg(std::int64_t n) {
  return ifdk::simd::kConcreteBackends[static_cast<std::size_t>(n)];
}

void BM_BackprojectProposedBackend(benchmark::State& state) {
  // The same Algorithm-4 kernel pinned to one SIMD column backend: the
  // per-backend rows the scalar-vs-vector speedup in EXPERIMENTS.md is read
  // from.
  const simd::Backend backend = backend_arg(state.range(0));
  if (!ifdk::simd::supported(backend)) {
    const std::string msg = std::string(ifdk::simd::to_string(backend)) +
                            " backend unavailable on this CPU/build";
    state.SkipWithError(msg.c_str());
    return;
  }
  const bench::Scene& scene = shared_scene();
  const auto matrices = geo::make_all_projection_matrices(scene.g);
  bp::BpConfig cfg = bp::config_for(bp::KernelVariant::kL1Tran);
  cfg.simd_backend = backend;
  bp::Backprojector kernel(scene.g, cfg);
  state.SetLabel(kernel.backend_name());
  Volume vol(scene.g.nx, scene.g.ny, scene.g.nz, cfg.layout);
  for (auto _ : state) {
    kernel.accumulate(vol, scene.projections, matrices);
  }
  state.counters["GUPS"] = benchmark::Counter(
      static_cast<double>(scene.g.problem().updates()) * state.iterations() /
          1073741824.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BackprojectProposedBackend)
    ->Unit(benchmark::kMillisecond)
    ->DenseRange(0, 3);  // avx512, avx2, neon, scalar

void BM_BackprojectProposedPooled(benchmark::State& state) {
  // The thread-pooled Algorithm-4 kernel with cache-blocked k-slab
  // scheduling; compare against BM_BackprojectProposed (the single-threaded
  // path) for the parallel speedup.
  const bench::Scene& scene = shared_scene();
  const auto matrices = geo::make_all_projection_matrices(scene.g);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  bp::BpConfig cfg = bp::config_for(bp::KernelVariant::kL1Tran);
  cfg.pool = &pool;
  bp::Backprojector kernel(scene.g, cfg);
  Volume vol(scene.g.nx, scene.g.ny, scene.g.nz, cfg.layout);
  for (auto _ : state) {
    kernel.accumulate(vol, scene.projections, matrices);
  }
  state.counters["GUPS"] = benchmark::Counter(
      static_cast<double>(scene.g.problem().updates()) * state.iterations() /
          1073741824.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BackprojectProposedPooled)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()  // work runs on pool threads; CPU time of this thread
                     // (and rates derived from it) would be meaningless
    ->Arg(2)
    ->Arg(4)
    ->Arg(0);  // 0 = hardware_concurrency

void BM_FilterProjection(benchmark::State& state) {
  const bench::Scene& scene = shared_scene();
  filter::FilterEngine engine(scene.g);
  fft::Workspace ws;
  Image2D img(scene.g.nu, scene.g.nv, false);
  for (auto _ : state) {
    for (std::size_t n = 0; n < img.pixels(); ++n) {
      img.data()[n] = scene.projections[0].data()[n];
    }
    engine.apply(img, ws);
    benchmark::DoNotOptimize(img.data());
  }
}
BENCHMARK(BM_FilterProjection)->Unit(benchmark::kMicrosecond);

void BM_FilterProjectionBackend(benchmark::State& state) {
  // The filtering stage pinned to one FFT batch backend: the per-backend
  // rows the filter speedup in EXPERIMENTS.md is read from.
  const fft::Backend backend = backend_arg(state.range(0));
  if (!ifdk::simd::supported(backend)) {
    const std::string msg = std::string(ifdk::simd::to_string(backend)) +
                            " backend unavailable on this CPU/build";
    state.SkipWithError(msg.c_str());
    return;
  }
  const bench::Scene& scene = shared_scene();
  filter::FilterOptions options;
  options.fft_backend = backend;
  filter::FilterEngine engine(scene.g, options);
  state.SetLabel(engine.fft_backend_name());
  fft::Workspace ws;
  Image2D img(scene.g.nu, scene.g.nv, false);
  for (auto _ : state) {
    for (std::size_t n = 0; n < img.pixels(); ++n) {
      img.data()[n] = scene.projections[0].data()[n];
    }
    engine.apply(img, ws);
    benchmark::DoNotOptimize(img.data());
  }
}
BENCHMARK(BM_FilterProjectionBackend)
    ->Unit(benchmark::kMicrosecond)
    ->DenseRange(0, 3);  // avx512, avx2, neon, scalar

void BM_ProjectionTranspose(benchmark::State& state) {
  // Alg. 4 line 3 — the paper argues its cost is a small fraction of the
  // stage; this measures it directly.
  const bench::Scene& scene = shared_scene();
  for (auto _ : state) {
    Image2D t = scene.projections[0].transposed();
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_ProjectionTranspose)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
