// Regenerates paper Fig. 5b: strong scaling of the 8K problem
// (2048^2 x 4096 -> 8192^3, R = 256, 256..2048 GPUs).
#include "bench_fig5.h"

int main() {
  using namespace ifdk;
  bench::print_fig5("Fig. 5b — strong scaling 2048^2x4096 -> 8192^3 (R=256)",
                    paper::fig5b(), /*rows=*/256, [](int) {
                      return Problem{{2048, 2048, 4096}, {8192, 8192, 8192}};
                    });
  std::printf("\n(headline: the 8K problem completes within 2 min at 2048 "
              "GPUs, including the 2 TB store)\n");
  return 0;
}
