// Regenerates paper Fig. 6: end-to-end performance in GUPS for input
// 2048^2 x 4096 and output sizes 2048^3 / 4096^3 / 8192^3 across 4..2048
// GPUs.
#include <cstdio>

#include "bench_common.h"
#include "cluster/simulator.h"
#include "common/table.h"
#include "perfmodel/paper_reference.h"

namespace {

using namespace ifdk;

void curve(const char* label, std::size_t n,
           const std::vector<paper::Fig6Point>& paper_pts) {
  std::printf("\n--- output %s ---\n", label);
  TextTable t({"GPUs", "GUPS (sim, Eq.19)", "GUPS (sim, excl. store)",
               "paper GUPS"});
  const Problem p{{2048, 2048, 4096}, {n, n, n}};
  for (const auto& pt : paper_pts) {
    const cluster::SimResult sim = cluster::simulate(p, pt.gpus);
    t.row()
        .add(static_cast<std::int64_t>(pt.gpus))
        .add(sim.gups, 0)
        .add(sim.gups_compute, 0)
        .add(pt.gups, 0);
  }
  std::printf("%s", t.str().c_str());
}

}  // namespace

int main() {
  bench::print_header("Fig. 6 — end-to-end GUPS vs GPU count",
                      "paper Figure 6");
  curve("2048^3", 2048, paper::fig6_2048());
  curve("4096^3", 4096, paper::fig6_4096());
  curve("8192^3", 8192, paper::fig6_8192());
  std::printf(
      "\n(shape checks: GUPS grows sub-linearly with GPUs; larger outputs\n"
      " reach higher GUPS — 8192^3 scales best, matching Section 5.3.3.\n"
      " At >= 1024 GPUs the paper's Fig. 6 labels are closer to our\n"
      " store-excluded column; see EXPERIMENTS.md for the discrepancy\n"
      " analysis.)\n");
  return 0;
}
