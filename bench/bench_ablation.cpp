// Ablation bench for the design choices DESIGN.md calls out (Section 3.2 of
// the paper): each Algorithm-4 optimization is toggled independently and the
// CPU-measured kernel GUPS plus the analytic op counts are reported.
//
// Expected shape: inner-products-per-update drops 3.0 -> 1.5 (symmetry) ->
// ~1.0 (reuse) -> 0.5 (both), a 6x reduction; the projection transpose and
// the batch size affect memory behaviour, not op counts.
#include <cstdio>

#include "backproj/backprojector.h"
#include "bench_common.h"
#include "common/table.h"

int main() {
  using namespace ifdk;
  bench::print_header("Ablation — Algorithm 4 optimizations one by one",
                      "paper Section 3.2.2/3.2.3 design choices");

  const Problem problem{{96, 96, 64}, {64, 64, 64}};
  bench::Scene scene = bench::make_scene(problem);
  const auto matrices = geo::make_all_projection_matrices(scene.g);

  struct Case {
    const char* name;
    bp::BpConfig cfg;
  };
  std::vector<Case> cases;
  {
    bp::BpConfig standard = bp::config_for(bp::KernelVariant::kRtk32);
    cases.push_back({"Alg.2 standard (RTK-32)", standard});
    bp::BpConfig sym_only;
    sym_only.symmetry = true;
    sym_only.reuse_uw = false;
    sym_only.transpose_projections = false;
    cases.push_back({"+ symmetry only", sym_only});
    bp::BpConfig reuse_only;
    reuse_only.symmetry = false;
    reuse_only.reuse_uw = true;
    reuse_only.transpose_projections = false;
    cases.push_back({"+ u/Wdis reuse only", reuse_only});
    bp::BpConfig both;
    both.transpose_projections = false;
    cases.push_back({"+ symmetry + reuse", both});
    bp::BpConfig full;
    cases.push_back({"+ transpose (full Alg.4)", full});
  }

  TextTable t({"configuration", "GUPS (CPU)", "speedup", "IP/update",
               "interp/update"});
  double baseline = 0;
  for (const auto& c : cases) {
    bp::Backprojector kernel(scene.g, c.cfg);
    Volume vol(scene.g.nx, scene.g.ny, scene.g.nz, c.cfg.layout);
    const double secs = bench::median_seconds(3, [&] {
      kernel.accumulate(vol, scene.projections, matrices);
    });
    const double g = gups(scene.g.nx, scene.g.ny, scene.g.nz, scene.g.np,
                          secs);
    if (baseline == 0) baseline = g;
    const auto ops = kernel.count_ops(scene.g.np);
    t.row()
        .add(c.name)
        .add(g, 3)
        .add(g / baseline, 2)
        .add(ops.inner_products_per_update(), 3)
        .add(static_cast<double>(ops.interp_calls) /
                 static_cast<double>(ops.voxel_updates),
             2);
  }
  std::printf("%s", t.str().c_str());

  // Batch-size sweep (the Nbatch = 32 choice of Listing 1).
  std::printf("\nbatch-size sweep (full Alg. 4):\n");
  TextTable b({"Nbatch", "GUPS (CPU)"});
  for (std::size_t batch : {1u, 4u, 8u, 16u, 32u, 64u}) {
    bp::BpConfig cfg;
    cfg.batch = batch;
    bp::Backprojector kernel(scene.g, cfg);
    Volume vol(scene.g.nx, scene.g.ny, scene.g.nz, cfg.layout);
    const double secs = bench::median_seconds(3, [&] {
      kernel.accumulate(vol, scene.projections, matrices);
    });
    b.row()
        .add(static_cast<std::int64_t>(batch))
        .add(gups(scene.g.nx, scene.g.ny, scene.g.nz, scene.g.np, secs), 3);
  }
  std::printf("%s", b.str().c_str());
  std::printf("\n(the 1/6 claim is the IP/update column: 3.0 -> 0.5; "
              "speedup on CPU is bounded by the interp fetches, which the "
              "symmetry halves too)\n");
  return 0;
}
