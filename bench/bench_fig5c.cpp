// Regenerates paper Fig. 5c: weak scaling to 4096^3 with Np = 16 * Ngpus.
#include "bench_fig5.h"

int main() {
  using namespace ifdk;
  bench::print_fig5("Fig. 5c — weak scaling 2048^2xNp -> 4096^3 (Np=16*Ngpus)",
                    paper::fig5c(), /*rows=*/32, [](int gpus) {
                      return Problem{
                          {2048, 2048, static_cast<std::size_t>(16 * gpus)},
                          {4096, 4096, 4096}};
                    });
  std::printf("\n(Tcompute stays flat: each rank keeps a constant share of "
              "16 projections)\n");
  return 0;
}
