// Regenerates the Section 6.2 platform discussion: the AWS cost estimate
// ("a 4K volume ... for the cost of less than $100" on 256 p3.8xlarge
// instances) and the DGX-2 projection ("4K problems within a minute").
#include <cstdio>

#include "bench_common.h"
#include "cluster/platforms.h"
#include "common/table.h"

int main() {
  using namespace ifdk;
  bench::print_header("Platforms — AWS HPC and DGX-2 projections",
                      "paper Section 6.2");

  const Problem four_k{{2048, 2048, 4096}, {4096, 4096, 4096}};

  std::printf("--- AWS p3.8xlarge (4 V100, 10 Gbps, $12.24/h) ---\n");
  TextTable aws({"instances", "GPUs", "runtime(s)", "cost ($)",
                 "under $100?"});
  for (int gpus : {128, 256, 512, 1024}) {
    const auto est = platforms::estimate_aws(four_k, gpus);
    aws.row()
        .add(static_cast<std::int64_t>(est.instances))
        .add(static_cast<std::int64_t>(gpus))
        .add(est.runtime_s, 1)
        .add(est.cost_usd, 2)
        .add(est.cost_usd < 100.0 ? "yes" : "no");
  }
  std::printf("%s", aws.str().c_str());
  std::printf("(paper: 256 instances, less than $100 — the slow network "
              "stretches runtime but per-second billing keeps cost low)\n\n");

  std::printf("--- Nvidia DGX-2 (16 V100, NVSwitch, local NVMe) ---\n");
  TextTable dgx({"problem", "compute(s)", "post(s)", "runtime(s)",
                 "paper claim"});
  const auto sim4k = platforms::estimate_dgx2(four_k);
  dgx.row()
      .add("4096^3")
      .add(sim4k.t_compute, 1)
      .add(sim4k.t_runtime - sim4k.t_compute, 1)
      .add(sim4k.t_runtime, 1)
      .add("within a minute");
  const Problem two_k{{2048, 2048, 4096}, {2048, 2048, 2048}};
  const auto sim2k = platforms::estimate_dgx2(two_k);
  dgx.row()
      .add("2048^3")
      .add(sim2k.t_compute, 1)
      .add(sim2k.t_runtime - sim2k.t_compute, 1)
      .add(sim2k.t_runtime, 1)
      .add("-");
  std::printf("%s", dgx.str().c_str());
  return 0;
}
