#!/usr/bin/env bash
# Docs gate, run by CI (.github/workflows/ci.yml, job `docs`) and locally:
#
#   tools/check_docs.sh
#
# 1. Intra-repo markdown links: every relative `](path)` target in the
#    tracked *.md files must exist (http/mailto/pure-#anchor links are
#    skipped; #fragments are stripped before the existence check).
# 2. Header contracts: every public function declaration in the refactored
#    layers' headers (src/minimpi, src/ifdk — including the plan layer
#    src/ifdk/plan.h — src/pfs, src/cluster, which consumes the plan,
#    src/service, the scheduler front door over it, src/engine, the
#    execution engine beneath both workloads, src/iterative, the second
#    workload, src/projector, its forward operator, src/fft + src/filter,
#    the batched SIMD ramp-filter stage, and the SIMD backend surface:
#    src/backproj/simd, src/common/simd_dispatch.h + cpu_features.h) must
#    carry a doc comment on the line above (grep/awk heuristic:
#    two-space-indented class members and column-0 free functions;
#    move/copy boilerplate, destructors and `= default/delete` lines are
#    exempt).
set -u
cd "$(dirname "$0")/.."

fail=0

# ---- 1. markdown link check -------------------------------------------------
for md in *.md docs/*.md; do
  [ -f "$md" ] || continue
  dir=$(dirname "$md")
  # Extract every ](target) occurrence, one per line.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"            # strip fragment
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN LINK: $md -> $target"
      fail=1
    fi
  done < <(grep -o '](\([^)]*\))' "$md" | sed 's/^](//; s/)$//')
done

# ---- 2. header doc-comment check -------------------------------------------
check_header() {
  awk '
    # Track public/private regions: struct opens public, class private.
    # Column-0 types only — nested types keep the enclosing access.
    /^(class|struct)[[:space:]]+[A-Za-z_]/ {
      if (!/;[[:space:]]*$/) access = /^class/ ? "private" : "public"
    }
    /^[[:space:]]*public:/    { access = "public" }
    /^[[:space:]]*private:/   { access = "private" }
    /^[[:space:]]*protected:/ { access = "private" }
    /^};/                     { access = "public" }  # back to namespace scope
    {
      line = $0
      is_decl = 0
      # Function declarations: column-0 free functions or 2-space class
      # members, starting with an identifier and containing an open paren.
      # (Plain "(  )?" rather than an interval: mawk has no {n} support.)
      if (line ~ /^(  )?[A-Za-z_][A-Za-z0-9_:<>,&* ]*\(/ &&
          line !~ /^[[:space:]]*(if|for|while|return|switch|else|do|using|namespace|template|typedef)[^A-Za-z0-9_]/)
        is_decl = 1
      # Exemptions: rule-of-five boilerplate and destructors.
      if (line ~ /= *(default|delete)/ || line ~ /operator/ ||
          line ~ /^( {2})?~/)
        is_decl = 0
      if (is_decl && access != "private" && prev !~ /\/\//) {
        printf "UNDOCUMENTED: %s:%d: %s\n", FILENAME, FNR, line
        found = 1
      }
      # template<...> lines are transparent: the doc comment sits above them.
      if (line !~ /^[[:space:]]*$/ && line !~ /^[[:space:]]*template/)
        prev = line
    }
    BEGIN { access = "public" }
    END { exit found }
  ' "$1"
}

for header in src/minimpi/*.h src/ifdk/*.h src/pfs/*.h src/cluster/*.h \
              src/service/*.h src/engine/*.h src/iterative/*.h \
              src/projector/*.h src/postproc/*.h src/fft/*.h \
              src/fft/simd/*.h src/filter/*.h src/backproj/simd/*.h \
              src/common/simd_dispatch.h src/common/cpu_features.h; do
  if ! check_header "$header"; then
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK"
