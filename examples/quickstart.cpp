// Quickstart: reconstruct the Shepp-Logan head with FDK in ~40 lines of
// library calls.
//
//   1. build a CBCT geometry for a 64^3 reconstruction from 120 views,
//   2. synthesize projections analytically (a stand-in for scanner data),
//   3. run the FDK pipeline (CPU filtering + the proposed back-projection),
//   4. write the volume as MHD/RAW (loadable in ImageJ/3D Slicer) and the
//      center slice as PGM, and report the error against ground truth.
//
// Run:  ./quickstart [--size 64] [--views 120] [--out shepp]
#include <cstdio>

#include "common/cli.h"
#include "common/math_util.h"
#include "ifdk/fdk.h"
#include "imgio/imgio.h"
#include "phantom/phantom.h"

int main(int argc, char** argv) {
  using namespace ifdk;
  CliParser cli("quickstart", "minimal FDK reconstruction example");
  cli.option("size", "64", "cubic volume size N (output is N^3)")
      .option("views", "120", "number of projections over 360 degrees")
      .option("out", "shepp", "output file base name");
  cli.parse(argc, argv);
  if (cli.has("help")) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const auto n = static_cast<std::size_t>(cli.get_int("size"));
  const auto views = static_cast<std::size_t>(cli.get_int("views"));

  // 1. Geometry: detector 2N^2 so the magnified volume fits comfortably.
  const geo::CbctGeometry g =
      geo::make_standard_geometry({{2 * n, 2 * n, views}, {n, n, n}});
  std::printf("geometry: %zu views of %zux%zu -> %zu^3 volume\n", views,
              g.nu, g.nv, n);

  // 2. Projections (what the scanner / RTK forward projector would provide).
  const auto phan = phantom::shepp_logan();
  const auto projections = phantom::project_all(phan, g);

  // 3. FDK: Algorithm 1 filtering + Algorithm 4 back-projection.
  const FdkResult result = reconstruct_fdk(g, projections);
  std::printf("filtering        %.3f s\nback-projection  %.3f s\n",
              result.timings.get("filter"),
              result.timings.get("backprojection"));

  // 4. Outputs + quality report.
  const Volume truth = phantom::voxelize(phan, g);
  std::printf("RMSE vs phantom  %.4f (density units; range ~[0,1])\n",
              rmse(result.volume.data(), truth.data(), truth.voxels()));
  const std::string base = cli.get_string("out");
  imgio::write_mhd(result.volume, base, g.dx, g.dy, g.dz);
  imgio::write_slice_pgm(result.volume, n / 2, base + "_center_slice.pgm");
  std::printf("wrote %s.mhd / %s.raw and %s_center_slice.pgm\n", base.c_str(),
              base.c_str(), base.c_str());
  return 0;
}
