// End-to-end file-based reconstruction — the workflow of a real scanner
// console or batch cluster job:
//
//   synthesize mode: renders a Shepp-Logan scan and writes it to disk as
//     numbered uint16 raw frames (what a flat panel detector emits) plus a
//     small text manifest;
//   reconstruct mode: reads the frames back, reconstructs with FDK, and
//     writes an ImageJ-loadable MHD volume plus tri-planar preview PGMs.
//
// Run:
//   ./recon_from_files --mode synthesize --dir /tmp/scan --views 90 --size 32
//   ./recon_from_files --mode reconstruct --dir /tmp/scan --out /tmp/volume
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/cli.h"
#include "ifdk/fdk.h"
#include "imgio/imgio.h"
#include "phantom/phantom.h"
#include "postproc/visualize.h"

namespace {

using namespace ifdk;

std::string frame_path(const std::string& dir, std::size_t s) {
  char name[32];
  std::snprintf(name, sizeof(name), "/frame_%06zu.u16", s);
  return dir + name;
}

// The manifest records what the detector wrote: dimensions, view count and
// the uint16 full-scale value.
struct Manifest {
  std::size_t nu = 0, nv = 0, np = 0, n = 0;
  float full_scale = 0;
};

void write_manifest(const std::string& dir, const Manifest& m) {
  std::ofstream out(dir + "/manifest.txt");
  out << m.nu << " " << m.nv << " " << m.np << " " << m.n << " "
      << m.full_scale << "\n";
}

Manifest read_manifest(const std::string& dir) {
  std::ifstream in(dir + "/manifest.txt");
  if (!in) throw IoError("missing manifest in " + dir);
  Manifest m;
  in >> m.nu >> m.nv >> m.np >> m.n >> m.full_scale;
  if (!in) throw IoError("corrupt manifest in " + dir);
  return m;
}

int synthesize(const std::string& dir, std::size_t n, std::size_t views) {
  std::filesystem::create_directories(dir);
  const geo::CbctGeometry g =
      geo::make_standard_geometry({{2 * n, 2 * n, views}, {n, n, n}});
  const auto projections = phantom::project_all(phantom::shepp_logan(), g);

  float full_scale = 0;
  for (const auto& p : projections) {
    for (std::size_t i = 0; i < p.pixels(); ++i) {
      full_scale = std::max(full_scale, p.data()[i]);
    }
  }
  for (std::size_t s = 0; s < projections.size(); ++s) {
    imgio::write_projection_u16(projections[s], frame_path(dir, s),
                                full_scale);
  }
  write_manifest(dir, {g.nu, g.nv, g.np, n, full_scale});
  std::printf("wrote %zu uint16 frames (%zux%zu) + manifest to %s\n", views,
              g.nu, g.nv, dir.c_str());
  return 0;
}

int reconstruct(const std::string& dir, const std::string& out) {
  const Manifest m = read_manifest(dir);
  const geo::CbctGeometry g = geo::make_standard_geometry(
      {{m.nu, m.nv, m.np}, {m.n, m.n, m.n}});

  std::vector<Image2D> projections;
  projections.reserve(m.np);
  const float scale = m.full_scale / 65535.0f;
  for (std::size_t s = 0; s < m.np; ++s) {
    projections.push_back(
        imgio::read_projection_u16(frame_path(dir, s), m.nu, m.nv, scale));
  }
  std::printf("loaded %zu frames; reconstructing %zu^3 ...\n", m.np, m.n);

  const FdkResult result = reconstruct_fdk(g, projections);
  imgio::write_mhd(result.volume, out, g.dx, g.dy, g.dz);
  const auto views = postproc::tri_planar(result.volume);
  imgio::write_pgm(views.axial, out + "_axial.pgm");
  imgio::write_pgm(views.coronal, out + "_coronal.pgm");
  imgio::write_pgm(views.sagittal, out + "_sagittal.pgm");
  std::printf("wrote %s.mhd/.raw and tri-planar previews "
              "(filter %.2f s, back-projection %.2f s)\n",
              out.c_str(), result.timings.get("filter"),
              result.timings.get("backprojection"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("recon_from_files", "file-based scan/reconstruct workflow");
  cli.option("mode", "synthesize", "synthesize | reconstruct")
      .option("dir", "./scan", "scan directory (frames + manifest)")
      .option("out", "./volume", "output volume base name (reconstruct)")
      .option("size", "32", "volume size N (synthesize)")
      .option("views", "90", "projection count (synthesize)");
  cli.parse(argc, argv);
  if (cli.has("help")) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const std::string mode = cli.get_string("mode");
  try {
    if (mode == "synthesize") {
      return synthesize(cli.get_string("dir"),
                        static_cast<std::size_t>(cli.get_int("size")),
                        static_cast<std::size_t>(cli.get_int("views")));
    }
    if (mode == "reconstruct") {
      return reconstruct(cli.get_string("dir"), cli.get_string("out"));
    }
    std::fprintf(stderr, "unknown --mode %s\n%s", mode.c_str(),
                 cli.usage().c_str());
  } catch (const ifdk::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
  }
  return 1;
}
