// 4D-CT streaming scenario (paper Section 6.2: the kernel "can provide
// benefits for real-time CT systems, e.g. 4D-CT").
//
// A breathing phantom (a lung lesion whose position and size oscillate over
// the respiratory cycle) is scanned continuously; every gantry rotation
// yields one temporal frame. The example pipelines ALL frames through one
// distributed world with ifdk::run_streaming — frame f+1 is being filtered
// and gathered while frame f is still back-projecting, reducing, and
// storing — then tracks the lesion's center of mass over time, compresses
// each frame for archival, and writes per-frame MIPs: the full real-time
// pipeline a 4D-CT console would run.
//
// With --mixed 1 the scanner alternates slice counts across frames (a
// coarse "scout" frame every other rotation): even frames reconstruct
// N slices, odd frames N/2. Every frame carries its own geometry on
// JobSpec::geometry, rows is auto-selected per frame (Eq. 7 with a
// sub-volume budget that makes the two frame kinds resolve different R),
// and the ranks re-split the grid between epochs — the heterogeneous
// scheduler end to end.
//
// Run:  ./streaming_4dct [--frames 6] [--size 24] [--views 60]
//                        [--ranks 4] [--rows 2] [--mixed 0]
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/math_util.h"
#include "ifdk/framework.h"
#include "imgio/imgio.h"
#include "pfs/pfs.h"
#include "phantom/phantom.h"
#include "postproc/compression.h"
#include "postproc/visualize.h"

namespace {

using namespace ifdk;

/// The moving phantom at respiratory phase t in [0, 1): a thorax ellipsoid
/// with a lesion whose Z position follows the breathing cycle.
phantom::Phantom breathing_phantom(double phase) {
  phantom::Phantom p;
  phantom::Ellipsoid thorax;
  thorax.semi_axes = {0.85, 0.7, 0.9};
  thorax.density = 0.3;
  p.ellipsoids.push_back(thorax);

  phantom::Ellipsoid lesion;
  const double motion = std::sin(2.0 * kPi * phase);
  lesion.center = {0.3, 0.1, 0.25 * motion};
  const double size = 0.10 + 0.02 * motion;  // inhale stretches it
  lesion.semi_axes = {size, size, size * 1.4};
  lesion.density = 0.8;
  p.ellipsoids.push_back(lesion);
  return p;
}

/// Center of mass of voxels above a density threshold (lesion tracker).
geo::Vec3 center_of_mass(const Volume& vol, float threshold) {
  double sx = 0, sy = 0, sz = 0, mass = 0;
  for (std::size_t k = 0; k < vol.nz(); ++k) {
    for (std::size_t j = 0; j < vol.ny(); ++j) {
      for (std::size_t i = 0; i < vol.nx(); ++i) {
        const float v = vol.at(i, j, k);
        if (v > threshold) {
          sx += v * static_cast<double>(i);
          sy += v * static_cast<double>(j);
          sz += v * static_cast<double>(k);
          mass += v;
        }
      }
    }
  }
  if (mass == 0) return {0, 0, 0};
  return {sx / mass, sy / mass, sz / mass};
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("streaming_4dct", "time-resolved (4D) CT reconstruction");
  cli.option("frames", "6", "respiratory phases per cycle")
      .option("size", "24", "volume size N")
      .option("views", "60", "views per rotation/frame")
      .option("ranks", "4", "distributed ranks (R*C grid)")
      .option("rows", "2", "rows R of the rank grid")
      .option("mixed", "0",
              "alternate slice counts N / N/2 across frames (per-frame "
              "geometry + grid re-splits)");
  cli.parse(argc, argv);
  if (cli.has("help")) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const auto frames = static_cast<std::size_t>(cli.get_int("frames"));
  const auto n = static_cast<std::size_t>(cli.get_int("size"));
  const auto views = static_cast<std::size_t>(cli.get_int("views"));
  const bool mixed = cli.get_int("mixed") != 0;

  const geo::CbctGeometry g =
      geo::make_standard_geometry({{2 * n, 2 * n, views}, {n, n, n}});

  // Scan: every frame's projections land in the PFS as the gantry turns.
  // In mixed mode odd frames are coarse N/2-slice scouts with their own
  // geometry; the physical field of view is unchanged (the voxel pitch
  // doubles), so the lesion track stays comparable across frame kinds.
  pfs::ParallelFileSystem fs;
  std::vector<JobSpec> volumes;
  std::vector<geo::CbctGeometry> frame_geometry;
  for (std::size_t f = 0; f < frames; ++f) {
    const std::size_t frame_nz = mixed && f % 2 == 1 ? n / 2 : n;
    frame_geometry.push_back(
        geo::make_standard_geometry({{2 * n, 2 * n, views}, {n, n, frame_nz}}));
    const double phase = static_cast<double>(f) / static_cast<double>(frames);
    const auto projections =
        phantom::project_all(breathing_phantom(phase), frame_geometry[f]);
    JobSpec vol{"scan/frame" + std::to_string(f) + "/",
                     "recon/frame" + std::to_string(f) + "/slice_",
                     {}};
    if (mixed) vol.geometry = frame_geometry[f];
    stage_projections(fs, vol.input_prefix, projections);
    volumes.push_back(std::move(vol));
  }

  // Reconstruct the whole time series through ONE streaming world: frame
  // f+1's filtering/gather overlaps frame f's back-projection/reduce/store.
  IfdkOptions opts;
  opts.ranks = cli.get_int("ranks");
  opts.rows = cli.get_int("rows");
  if (mixed) {
    // Per-frame Eq. (7) row selection with a sub-volume budget sized so the
    // full frames resolve twice the rows of the scouts — consecutive epochs
    // re-split the R x C grid.
    opts.rows = 0;
    opts.microbench.sub_volume_bytes =
        frame_geometry[0].problem().out.bytes() / 2 + 1;
  }
  const StreamingStats stats = run_streaming(g, fs, opts, volumes);

  std::printf("streamed %zu frames of %zu views each -> %zu^3 per frame "
              "through a %dx%d world: %.2f volumes/s\n\n",
              frames, views, n, stats.grid.rows, stats.grid.columns,
              stats.volumes_per_second);
  if (mixed) {
    std::printf("per-frame plans (mixed mode):");
    for (std::size_t f = 0; f < stats.plans.size(); ++f) {
      std::printf(" %zu:%zux%dx%d", f, stats.plans[f].geometry.nz,
                  stats.plans[f].grid.rows, stats.plans[f].grid.columns);
    }
    std::printf("  (Nz x R x C; R changes => the world re-split)\n\n");
  }
  std::printf("%-6s %-28s %-14s %-10s\n", "frame", "lesion center (i,j,k)",
              "compressed", "ratio");

  // Excursion is tracked in normalized craniocaudal units (fraction of the
  // volume half-height) so full frames and N/2-slice scouts compare.
  double min_z = 1e9, max_z = -1e9;
  for (std::size_t f = 0; f < frames; ++f) {
    if (!stats.volume_errors[f].empty()) {
      std::printf("%-6zu store failed: %s\n", f,
                  stats.volume_errors[f].c_str());
      continue;
    }
    const Volume vol =
        load_volume(fs, volumes[f].output_prefix, frame_geometry[f].vol_dims());
    const geo::Vec3 com = center_of_mass(vol, 0.55f);
    const auto c = postproc::compress(vol, 12);
    char name[64];
    std::snprintf(name, sizeof(name), "frame_%02zu_mip.pgm", f);
    imgio::write_pgm(postproc::mip(vol, postproc::Axis::kY), name);

    std::printf("%-6zu (%6.2f, %6.2f, %6.2f)      %8zu B    %5.1fx\n", f,
                com.x, com.y, com.z, c.compressed_bytes(), c.ratio());
    const double half_nz =
        static_cast<double>(frame_geometry[f].nz - 1) / 2.0;
    const double z_norm = (com.z - half_nz) / half_nz;
    min_z = std::min(min_z, z_norm);
    max_z = std::max(max_z, z_norm);
  }

  std::printf("\nlesion craniocaudal excursion: %.3f of the volume "
              "half-height (breathing amplitude recovered from the 4D "
              "series)\n",
              max_z - min_z);
  std::printf("wrote frame_XX_mip.pgm per frame\n");
  return (max_z - min_z) > 0.08 ? 0 : 1;
}
