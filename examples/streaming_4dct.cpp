// 4D-CT streaming scenario (paper Section 6.2: the kernel "can provide
// benefits for real-time CT systems, e.g. 4D-CT").
//
// A breathing phantom (a lung lesion whose position and size oscillate over
// the respiratory cycle) is scanned continuously; every gantry rotation
// yields one temporal frame. The example pipelines ALL frames through one
// distributed world with ifdk::run_streaming — frame f+1 is being filtered
// and gathered while frame f is still back-projecting, reducing, and
// storing — then tracks the lesion's center of mass over time, compresses
// each frame for archival, and writes per-frame MIPs: the full real-time
// pipeline a 4D-CT console would run.
//
// Run:  ./streaming_4dct [--frames 6] [--size 24] [--views 60]
//                        [--ranks 4] [--rows 2]
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/math_util.h"
#include "ifdk/framework.h"
#include "imgio/imgio.h"
#include "pfs/pfs.h"
#include "phantom/phantom.h"
#include "postproc/compression.h"
#include "postproc/visualize.h"

namespace {

using namespace ifdk;

/// The moving phantom at respiratory phase t in [0, 1): a thorax ellipsoid
/// with a lesion whose Z position follows the breathing cycle.
phantom::Phantom breathing_phantom(double phase) {
  phantom::Phantom p;
  phantom::Ellipsoid thorax;
  thorax.semi_axes = {0.85, 0.7, 0.9};
  thorax.density = 0.3;
  p.ellipsoids.push_back(thorax);

  phantom::Ellipsoid lesion;
  const double motion = std::sin(2.0 * kPi * phase);
  lesion.center = {0.3, 0.1, 0.25 * motion};
  const double size = 0.10 + 0.02 * motion;  // inhale stretches it
  lesion.semi_axes = {size, size, size * 1.4};
  lesion.density = 0.8;
  p.ellipsoids.push_back(lesion);
  return p;
}

/// Center of mass of voxels above a density threshold (lesion tracker).
geo::Vec3 center_of_mass(const Volume& vol, float threshold) {
  double sx = 0, sy = 0, sz = 0, mass = 0;
  for (std::size_t k = 0; k < vol.nz(); ++k) {
    for (std::size_t j = 0; j < vol.ny(); ++j) {
      for (std::size_t i = 0; i < vol.nx(); ++i) {
        const float v = vol.at(i, j, k);
        if (v > threshold) {
          sx += v * static_cast<double>(i);
          sy += v * static_cast<double>(j);
          sz += v * static_cast<double>(k);
          mass += v;
        }
      }
    }
  }
  if (mass == 0) return {0, 0, 0};
  return {sx / mass, sy / mass, sz / mass};
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("streaming_4dct", "time-resolved (4D) CT reconstruction");
  cli.option("frames", "6", "respiratory phases per cycle")
      .option("size", "24", "volume size N")
      .option("views", "60", "views per rotation/frame")
      .option("ranks", "4", "distributed ranks (R*C grid)")
      .option("rows", "2", "rows R of the rank grid");
  cli.parse(argc, argv);
  if (cli.has("help")) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const auto frames = static_cast<std::size_t>(cli.get_int("frames"));
  const auto n = static_cast<std::size_t>(cli.get_int("size"));
  const auto views = static_cast<std::size_t>(cli.get_int("views"));

  const geo::CbctGeometry g =
      geo::make_standard_geometry({{2 * n, 2 * n, views}, {n, n, n}});

  // Scan: every frame's projections land in the PFS as the gantry turns.
  pfs::ParallelFileSystem fs;
  std::vector<StreamVolume> volumes;
  for (std::size_t f = 0; f < frames; ++f) {
    const double phase = static_cast<double>(f) / static_cast<double>(frames);
    const auto projections =
        phantom::project_all(breathing_phantom(phase), g);
    StreamVolume vol{"scan/frame" + std::to_string(f) + "/",
                     "recon/frame" + std::to_string(f) + "/slice_"};
    stage_projections(fs, vol.input_prefix, projections);
    volumes.push_back(std::move(vol));
  }

  // Reconstruct the whole time series through ONE streaming world: frame
  // f+1's filtering/gather overlaps frame f's back-projection/reduce/store.
  IfdkOptions opts;
  opts.ranks = cli.get_int("ranks");
  opts.rows = cli.get_int("rows");
  const StreamingStats stats = run_streaming(g, fs, opts, volumes);

  std::printf("streamed %zu frames of %zu views each -> %zu^3 per frame "
              "through a %dx%d world: %.2f volumes/s\n\n",
              frames, views, n, stats.grid.rows, stats.grid.columns,
              stats.volumes_per_second);
  std::printf("%-6s %-28s %-14s %-10s\n", "frame", "lesion center (i,j,k)",
              "compressed", "ratio");

  double min_z = 1e9, max_z = -1e9;
  for (std::size_t f = 0; f < frames; ++f) {
    if (!stats.volume_errors[f].empty()) {
      std::printf("%-6zu store failed: %s\n", f,
                  stats.volume_errors[f].c_str());
      continue;
    }
    const Volume vol =
        load_volume(fs, volumes[f].output_prefix, g.vol_dims());
    const geo::Vec3 com = center_of_mass(vol, 0.55f);
    const auto c = postproc::compress(vol, 12);
    char name[64];
    std::snprintf(name, sizeof(name), "frame_%02zu_mip.pgm", f);
    imgio::write_pgm(postproc::mip(vol, postproc::Axis::kY), name);

    std::printf("%-6zu (%6.2f, %6.2f, %6.2f)      %8zu B    %5.1fx\n", f,
                com.x, com.y, com.z, c.compressed_bytes(), c.ratio());
    min_z = std::min(min_z, com.z);
    max_z = std::max(max_z, com.z);
  }

  std::printf("\nlesion craniocaudal excursion: %.2f voxels "
              "(breathing amplitude recovered from the 4D series)\n",
              max_z - min_z);
  std::printf("wrote frame_XX_mip.pgm per frame\n");
  return (max_z - min_z) > 1.0 ? 0 : 1;
}
