// Reconstruction-as-a-service scenario: a shared CT reconstruction cluster
// fronted by ifdk::service::ReconService (the multi-tenant scheduler over
// the plan layer).
//
// Three tenants — a hospital, a clinical trial, and an industrial QA line —
// submit reconstruction jobs with mixed priorities and deadlines to ONE
// service that owns a single R x C rank world. The scheduler:
//
//   * rejects impossible work at submit (shown with an undersized "edge
//     node" service whose device cannot hold any slab pair),
//   * orders the queue priority-first, earliest-deadline within a band,
//   * batches contiguous same-grid jobs onto warm communicators and
//     re-splits the world only when the next job's plan resolves a
//     different grid (one scout job here carries a coarser per-job
//     geometry, forcing exactly one re-split),
//   * publishes a predicted completion per job from
//     cluster::predict_queue_completion (the simulate_stream recurrence)
//     the moment the queue settles — compared below against the measured
//     wall-clock completion of every job,
//   * isolates failures: one job's output prefix is poisoned to fail at
//     the PFS, and every other job still stores.
//
// Run:  ./recon_service [--size 16] [--views 48] [--ranks 4]
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/error.h"
#include "common/timer.h"
#include "geometry/cbct.h"
#include "ifdk/framework.h"
#include "pfs/pfs.h"
#include "phantom/phantom.h"
#include "service/recon_service.h"

namespace {

using namespace ifdk;

/// PFS that refuses writes under one output prefix — the injected storage
/// fault for the isolation demo.
class PoisonedPrefixFs : public pfs::ParallelFileSystem {
 public:
  explicit PoisonedPrefixFs(std::string prefix) : prefix_(std::move(prefix)) {}

  void write_object(const std::string& name, const void* data,
                    std::size_t bytes) override {
    if (name.rfind(prefix_, 0) == 0) {
      throw IoError("injected PFS write failure: " + name);
    }
    pfs::ParallelFileSystem::write_object(name, data, bytes);
  }

 private:
  std::string prefix_;
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("recon_service", "multi-tenant reconstruction service demo");
  cli.option("size", "16", "volume size N")
      .option("views", "48", "views per scan")
      .option("ranks", "4", "distributed ranks (R*C grid)");
  cli.parse(argc, argv);
  if (cli.has("help")) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const auto n = static_cast<std::size_t>(cli.get_int("size"));
  const auto views = static_cast<std::size_t>(cli.get_int("views"));

  // Full-resolution scans reconstruct N slices; the trial's scout scan
  // carries its own coarser N/2-slice geometry on JobSpec::geometry, so its
  // plan resolves a different row count and the world must re-split for it.
  const geo::CbctGeometry g =
      geo::make_standard_geometry({{2 * n, 2 * n, views}, {n, n, n}});
  const geo::CbctGeometry scout =
      geo::make_standard_geometry({{2 * n, 2 * n, views}, {n, n, n / 2}});

  // The scan data: six jobs' projections staged in the PFS. Job 3's output
  // prefix is poisoned — its store will fail at the PFS layer.
  PoisonedPrefixFs fs("recon/job3/");
  struct Submission {
    const char* tenant;
    int priority;
    double deadline_s;  // 0 = none
    bool is_scout;
  };
  const std::vector<Submission> submissions = {
      {"hospital", 1, 0.0, false},   // job 0
      {"trial", 1, 5.0, false},      // job 1: deadline beats job 0 in-band
      {"qa-line", 0, 0.0, false},    // job 2: low priority waits
      {"qa-line", 0, 0.0, false},    // job 3: poisoned output
      {"hospital", 2, 0.0, false},   // job 4: highest band runs first
      {"trial", 0, 0.0, true},       // job 5: coarse scout, re-split grid
  };
  std::vector<JobSpec> specs;
  for (std::size_t j = 0; j < submissions.size(); ++j) {
    const Submission& sub = submissions[j];
    JobSpec spec{"scan/job" + std::to_string(j) + "/",
                 "recon/job" + std::to_string(j) + "/slice_"};
    spec.tenant = sub.tenant;
    spec.priority = sub.priority;
    if (sub.deadline_s > 0) spec.deadline_s = sub.deadline_s;
    if (sub.is_scout) spec.geometry = scout;
    const auto projections = phantom::project_all(
        phantom::shepp_logan(), sub.is_scout ? scout : g);
    stage_projections(fs, spec.input_prefix, projections);
    specs.push_back(std::move(spec));
  }

  // One service, one rank world. Eq. (7) row auto-selection with a
  // sub-volume budget sized so full scans resolve twice the rows of the
  // scout — the grids differ, so dispatching the scout costs a re-split.
  service::ServiceOptions sopts;
  sopts.ifdk.ranks = cli.get_int("ranks");
  sopts.ifdk.rows = 0;
  sopts.ifdk.microbench.sub_volume_bytes = g.problem().out.bytes() / 2 + 1;
  sopts.start_paused = true;  // queue everything, then release at once
  service::ReconService svc(g, fs, sopts);

  // Admission demo: an undersized edge node rejects the same job the
  // cluster accepts, naming the numbers, before it ever touches the queue.
  {
    service::ServiceOptions edge = sopts;
    edge.ifdk.device.memory_bytes = 4096;
    edge.ifdk.rows = 2;  // pin the grid so admission judges the device fit
    edge.start_paused = false;
    service::ReconService edge_svc(g, fs, edge);
    try {
      edge_svc.submit(specs[0]);
    } catch (const service::AdmissionError& e) {
      std::printf("edge node rejected job 0 at submit:\n  %s\n\n", e.what());
    }
  }

  std::vector<service::JobHandle> handles;
  for (const JobSpec& spec : specs) handles.push_back(svc.submit(spec));

  std::printf("queued %zu jobs; predicted completions from "
              "cluster::simulate_stream (virtual seconds from queue "
              "start):\n",
              handles.size());
  for (std::size_t j = 0; j < handles.size(); ++j) {
    std::printf("  job %zu  tenant %-9s pri %d  predicted %.3f\n", j,
                submissions[j].tenant, submissions[j].priority,
                handles[j].predicted_completion_s());
  }

  // Release the queue and measure every job's wall-clock completion from
  // the same origin the predictions use (the head of the queue starting).
  Timer wall;
  svc.resume();
  std::vector<double> measured(handles.size());
  for (std::size_t j = 0; j < handles.size(); ++j) {
    handles[j].wait();
    measured[j] = wall.seconds();
  }
  svc.drain();

  std::printf("\n%-4s %-9s %-4s %-6s %-8s %-6s %12s %12s\n", "job", "tenant",
              "pri", "seq", "state", "grid", "predicted/s", "measured/s");
  for (std::size_t j = 0; j < handles.size(); ++j) {
    const service::JobHandle& h = handles[j];
    char grid[16];
    std::snprintf(grid, sizeof(grid), "%dx%d", h.grid().rows,
                  h.grid().columns);
    std::printf("%-4zu %-9s %-4d %-6d %-8s %-6s %12.3f %12.3f\n", j,
                submissions[j].tenant, submissions[j].priority,
                h.dispatch_seq(), service::to_string(h.state()), grid,
                h.predicted_completion_s(), measured[j]);
    if (h.state() == service::JobState::kFailed) {
      std::printf("     failure isolated to this job: %s\n",
                  h.error().c_str());
    }
  }

  const service::ServiceStats stats = svc.stats();
  std::printf("\nservice: %zu stored, %zu failed, %zu batches, %zu re-split; "
              "%.2f jobs/s, mean queue latency %.3f s\n",
              stats.stored, stats.failed, stats.batches, stats.resplits,
              stats.jobs_per_second, stats.mean_queue_latency_s);
  for (const auto& [tenant, ts] : stats.tenants) {
    std::printf("  tenant %-9s %zu submitted, %zu stored, %zu failed, "
                "%.2f vol/s\n",
                tenant.c_str(), ts.submitted, ts.stored, ts.failed,
                ts.volumes_per_second);
  }

  // The demo succeeded if exactly the poisoned job failed, the scout forced
  // a re-split, and predictions were published for every job.
  bool predicted_all = true;
  for (const auto& h : handles) {
    predicted_all = predicted_all && h.predicted_completion_s() > 0;
  }
  const bool ok = stats.failed == 1 && stats.stored == handles.size() - 1 &&
                  stats.resplits >= 1 && predicted_all;
  return ok ? 0 : 1;
}
