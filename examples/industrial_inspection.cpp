// Industrial non-destructive inspection scenario (paper Section 6.1: defect
// inspection is a primary driver of high-resolution CT — GOM CT, Nikon
// XTH450, Shimadzu inspeXio are the cited systems).
//
// An aluminium part with drilled holes, two internal cracks and a tungsten
// inclusion is scanned, reconstructed with FDK, and then *automatically
// inspected*: the program segments air pockets and dense inclusions inside
// the part and compares against the phantom's CAD-level ground truth.
//
// Run:  ./industrial_inspection [--size 48] [--views 180]
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "ifdk/fdk.h"
#include "imgio/imgio.h"
#include "phantom/phantom.h"

namespace {

using namespace ifdk;

struct InspectionReport {
  std::size_t part_voxels = 0;       ///< reconstructed as aluminium
  std::size_t void_voxels = 0;       ///< air inside the part envelope
  std::size_t inclusion_voxels = 0;  ///< denser than aluminium
};

/// Segments the reconstruction: inside the part's bounding envelope,
/// voxels well below the aluminium density are voids (holes/cracks) and
/// voxels well above are foreign inclusions.
InspectionReport inspect(const Volume& recon, const Volume& truth_envelope,
                         float aluminium) {
  InspectionReport report;
  for (std::size_t k = 0; k < recon.nz(); ++k) {
    for (std::size_t j = 0; j < recon.ny(); ++j) {
      for (std::size_t i = 0; i < recon.nx(); ++i) {
        if (truth_envelope.at(i, j, k) == 0.0f) continue;  // outside the part
        const float v = recon.at(i, j, k);
        if (v < 0.5f * aluminium) {
          ++report.void_voxels;
        } else if (v > 2.0f * aluminium) {
          ++report.inclusion_voxels;
        } else {
          ++report.part_voxels;
        }
      }
    }
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("industrial_inspection",
                "automatic defect detection on a synthetic aluminium part");
  cli.option("size", "48", "volume size N").option("views", "180",
                                                   "projection count");
  cli.parse(argc, argv);
  if (cli.has("help")) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const auto n = static_cast<std::size_t>(cli.get_int("size"));
  const auto views = static_cast<std::size_t>(cli.get_int("views"));
  constexpr float kAluminium = 2.70f;

  const geo::CbctGeometry g =
      geo::make_standard_geometry({{2 * n, 2 * n, views}, {n, n, n}});
  const auto part = phantom::industrial_part();
  std::printf("scanning part: %zu views, reconstructing %zu^3 ...\n", views,
              n);
  const auto projections = phantom::project_all(part, g);
  const FdkResult result = reconstruct_fdk(g, projections);

  // Ground-truth part envelope: the block ellipsoid alone (CAD model).
  phantom::Phantom envelope;
  envelope.ellipsoids.push_back(part.ellipsoids.front());
  const Volume envelope_vol = phantom::voxelize(envelope, g);
  const Volume truth = phantom::voxelize(part, g);

  const InspectionReport measured =
      inspect(result.volume, envelope_vol, kAluminium);
  const InspectionReport expected = inspect(truth, envelope_vol, kAluminium);

  std::printf("\ninspection report (voxels inside the part envelope):\n");
  std::printf("  %-18s %10s %10s\n", "", "detected", "CAD truth");
  std::printf("  %-18s %10zu %10zu\n", "sound aluminium",
              measured.part_voxels, expected.part_voxels);
  std::printf("  %-18s %10zu %10zu\n", "voids (holes/cracks)",
              measured.void_voxels, expected.void_voxels);
  std::printf("  %-18s %10zu %10zu\n", "dense inclusions",
              measured.inclusion_voxels, expected.inclusion_voxels);

  const double void_recall =
      expected.void_voxels == 0
          ? 1.0
          : static_cast<double>(measured.void_voxels) /
                static_cast<double>(expected.void_voxels);
  std::printf("\nvoid detection ratio vs CAD: %.2f "
              "(1.00 = every defect voxel recovered)\n", void_recall);
  const bool inclusion_found = measured.inclusion_voxels > 0;
  std::printf("tungsten inclusion: %s\n",
              inclusion_found ? "DETECTED" : "missed");

  imgio::write_slice_pgm(result.volume, n / 2, "inspection_slice.pgm");
  std::printf("\nwrote inspection_slice.pgm (mid-plane through the hole "
              "grid)\n");
  return (void_recall > 0.5 && inclusion_found) ? 0 : 1;
}
