// Medical reconstruction scenario: low-dose imaging trade-offs.
//
// The paper motivates its back-projection kernel as a building block for
// iterative solvers "popular ... for low dose image reconstruction"
// (Section 6.2). This example plays that scenario end to end on the
// Shepp-Logan head:
//
//   * full-dose FDK (120 views, Ram-Lak) — the reference protocol,
//   * noisy acquisitions with apodized ramp windows (Hann vs Ram-Lak):
//     smoother windows trade resolution for noise suppression,
//   * sparse-view (1/4 dose) FDK vs OS-SART vs MLEM: iterative methods
//     hold up where analytic FDK develops streaks.
//
// Run:  ./medical_recon [--size 32] [--views 120] [--noise 0.02]
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "ifdk/fdk.h"
#include "imgio/imgio.h"
#include "iterative/iterative.h"
#include "phantom/phantom.h"

namespace {

using namespace ifdk;

/// RMSE inside the brain (normalized radius < 0.5) — the clinically
/// relevant region, away from the skull's partial-volume shell.
double interior_rmse(const Volume& a, const Volume& b) {
  const double c = (static_cast<double>(a.nx()) - 1.0) / 2.0;
  const double half = static_cast<double>(a.nx()) / 2.0;
  double acc = 0;
  std::size_t count = 0;
  for (std::size_t k = 0; k < a.nz(); ++k) {
    for (std::size_t j = 0; j < a.ny(); ++j) {
      for (std::size_t i = 0; i < a.nx(); ++i) {
        const double r = std::sqrt((i - c) * (i - c) + (j - c) * (j - c) +
                                   (k - c) * (k - c)) /
                         half;
        if (r < 0.5) {
          const double d = a.at(i, j, k) - b.at(i, j, k);
          acc += d * d;
          ++count;
        }
      }
    }
  }
  return std::sqrt(acc / static_cast<double>(count));
}

std::vector<Image2D> add_noise(const std::vector<Image2D>& projections,
                               float sigma, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Image2D> noisy;
  noisy.reserve(projections.size());
  for (const auto& p : projections) {
    Image2D img(p.width(), p.height(), false);
    for (std::size_t n = 0; n < p.pixels(); ++n) {
      // Box-Muller Gaussian noise.
      const double u1 = rng.next_double() + 1e-12;
      const double u2 = rng.next_double();
      const double gauss =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
      img.data()[n] = p.data()[n] + sigma * static_cast<float>(gauss);
    }
    noisy.push_back(std::move(img));
  }
  return noisy;
}

std::vector<Image2D> take_every(const std::vector<Image2D>& projections,
                                std::size_t stride) {
  std::vector<Image2D> subset;
  for (std::size_t s = 0; s < projections.size(); s += stride) {
    const auto& p = projections[s];
    Image2D img(p.width(), p.height(), false);
    for (std::size_t n = 0; n < p.pixels(); ++n) img.data()[n] = p.data()[n];
    subset.push_back(std::move(img));
  }
  return subset;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("medical_recon", "low-dose head imaging trade-off study");
  cli.option("size", "32", "volume size N")
      .option("views", "120", "full-dose view count")
      .option("noise", "0.08", "Gaussian detector noise sigma");
  cli.parse(argc, argv);
  if (cli.has("help")) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const auto n = static_cast<std::size_t>(cli.get_int("size"));
  const auto views = static_cast<std::size_t>(cli.get_int("views"));
  const auto sigma = static_cast<float>(cli.get_double("noise"));

  const geo::CbctGeometry g =
      geo::make_standard_geometry({{2 * n, 2 * n, views}, {n, n, n}});
  const auto phan = phantom::shepp_logan();
  const auto clean = phantom::project_all(phan, g);
  const Volume truth = phantom::voxelize(phan, g);

  std::printf("== full dose, clean data: FDK baseline ==\n");
  const FdkResult baseline = reconstruct_fdk(g, clean);
  std::printf("  interior RMSE: %.4f\n\n",
              interior_rmse(baseline.volume, truth));

  std::printf("== noisy data (sigma=%.3f): ramp window comparison ==\n",
              sigma);
  const auto noisy = add_noise(clean, sigma, 42);
  for (auto window : {filter::RampWindow::kRamLak, filter::RampWindow::kCosine,
                      filter::RampWindow::kHann}) {
    FdkOptions opts;
    opts.filter.window = window;
    const FdkResult r = reconstruct_fdk(g, noisy, opts);
    std::printf("  %-12s interior RMSE: %.4f\n", filter::to_string(window),
                interior_rmse(r.volume, truth));
  }
  std::printf("  (smoother windows suppress the noise the ramp amplifies)\n\n");

  std::printf("== quarter dose (%zu views): FDK vs iterative ==\n",
              views / 4);
  geo::CbctGeometry sparse_g = g;
  sparse_g.np = views / 4;
  const auto sparse = take_every(clean, 4);

  const FdkResult sparse_fdk = reconstruct_fdk(sparse_g, sparse);
  std::printf("  FDK            interior RMSE: %.4f\n",
              interior_rmse(sparse_fdk.volume, truth));

  iterative::IterOptions it;
  it.iterations = 6;
  it.subsets = 4;
  const Volume os_sart = iterative::sart(sparse_g, sparse, it);
  std::printf("  OS-SART (6x4)  interior RMSE: %.4f\n",
              interior_rmse(os_sart, truth));

  iterative::IterOptions em;
  em.iterations = 10;
  const Volume em_recon = iterative::mlem(sparse_g, sparse, em);
  std::printf("  MLEM (10)      interior RMSE: %.4f\n",
              interior_rmse(em_recon, truth));

  imgio::write_slice_pgm(sparse_fdk.volume, n / 2, "medical_fdk_sparse.pgm");
  imgio::write_slice_pgm(os_sart, n / 2, "medical_ossart_sparse.pgm");
  std::printf("\nwrote medical_fdk_sparse.pgm / medical_ossart_sparse.pgm "
              "(compare the streaks)\n");
  return 0;
}
