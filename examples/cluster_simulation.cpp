// Capacity planning with the iFDK cluster simulator.
//
// "How many GPUs do I need to reconstruct my scan in T seconds?" — this
// example answers the question the paper's Section 6.2 raises for AWS/DGX-2
// deployments. It sweeps GPU counts for a chosen problem, prints the
// Fig.-5-style breakdown, predicts 4D-CT *streaming* throughput at ABCI
// scale by replaying a DecompositionPlan sequence through
// cluster::simulate_stream, and then runs the *functional* distributed
// pipeline on a scaled-down version of the same decomposition as a sanity
// check — including a mixed-geometry streaming run whose measured
// volumes/sec is compared against the simulator's prediction for the very
// plan sequence the runtime consumed (StreamingStats::plans).
//
// Run:  ./cluster_simulation [--volume 4096] [--np 4096] [--budget 30]
//                            [--stream-frames 8]
#include <cmath>
#include <cstdio>
#include <vector>

#include "cluster/simulator.h"
#include "common/cli.h"
#include "common/table.h"
#include "ifdk/fdk.h"
#include "ifdk/framework.h"
#include "phantom/phantom.h"

int main(int argc, char** argv) {
  using namespace ifdk;
  CliParser cli("cluster_simulation", "iFDK capacity planning");
  cli.option("volume", "4096", "output volume N (N^3)")
      .option("np", "4096", "number of 2048^2 projections")
      .option("budget", "30", "time budget in seconds")
      .option("stream-frames", "8", "4D-CT frames in the streaming forecast");
  cli.parse(argc, argv);
  if (cli.has("help")) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const auto n = static_cast<std::size_t>(cli.get_int("volume"));
  const auto np = static_cast<std::size_t>(cli.get_int("np"));
  const double budget = cli.get_double("budget");

  const Problem problem{{2048, 2048, np}, {n, n, n}};
  const int rows = perfmodel::select_rows(problem);
  std::printf("problem %s, R=%d (8 GB sub-volumes on 16 GB V100s)\n\n",
              problem.to_string().c_str(), rows);

  TextTable t({"GPUs", "Tcompute(s)", "Tpost(s)", "runtime(s)", "GUPS",
               "fits budget?"});
  int needed = 0;
  for (int gpus = rows; gpus <= 4096; gpus *= 2) {
    const cluster::SimResult sim = cluster::simulate(problem, gpus);
    const bool fits = sim.t_runtime <= budget;
    if (fits && needed == 0) needed = gpus;
    t.row()
        .add(static_cast<std::int64_t>(gpus))
        .add(sim.t_compute, 1)
        .add(sim.t_runtime - sim.t_compute, 1)
        .add(sim.t_runtime, 1)
        .add(sim.gups, 0)
        .add(fits ? "yes" : "no");
  }
  std::printf("%s\n", t.str().c_str());
  if (needed > 0) {
    std::printf("=> %d GPUs reconstruct %zu^3 within %.0f s\n\n", needed, n,
                budget);
  } else {
    std::printf("=> no configuration up to 4096 GPUs meets %.0f s (the "
                "post phase is the floor)\n\n", budget);
  }

  // ---- 4D-CT streaming forecast at ABCI scale -----------------------------
  // Build the per-frame DecompositionPlan sequence a heterogeneous stream
  // (full-resolution frames alternating with half-depth scouts) would
  // execute at 2,048 ranks, and replay it through the streaming recurrence.
  // These are the same plan objects ifdk::run_streaming consumes — the
  // simulator never re-derives the decomposition.
  const int stream_frames = cli.get_int("stream-frames");
  const int stream_ranks = 2048;
  std::vector<DecompositionPlan> plans;  // reused by the compression forecast
  if (stream_frames > 0) {
    IfdkOptions plan_opts;
    plan_opts.ranks = stream_ranks;
    plan_opts.rows = 0;  // per-frame Eq. (7) + streaming double buffer
    for (int f = 0; f < stream_frames; ++f) {
      const Problem frame{{2048, 2048, np}, {n, n, f % 2 == 0 ? n : n / 2}};
      plans.push_back(DecompositionPlan::make(
          geo::make_standard_geometry(frame), plan_opts, f,
          /*resident_slabs=*/2));
    }
    // With a single frame there is no alternate geometry to report.
    const DecompositionPlan& alt = plans[plans.size() > 1 ? 1 : 0];
    const cluster::StreamSimResult stream = cluster::simulate_stream(plans);
    std::printf(
        "4D-CT streaming forecast at %d ranks (%d frames, Nz alternating "
        "%zu/%zu, R %dx%d <-> %dx%d, %zu re-splits):\n"
        "  predicted %.3f volumes/s (%.1f s for the series)\n\n",
        stream_ranks, stream_frames, n, n / 2, plans[0].grid.rows,
        plans[0].grid.columns, alt.grid.rows, alt.grid.columns,
        stream.regrids, stream.volumes_per_second, stream.t_total);
  }

  // Functional cross-check: the same R x C decomposition on a toy problem
  // must produce the single-node FDK volume.
  std::printf("functional cross-check (8 ranks, R=2 x C=4, 32^3):\n");
  const geo::CbctGeometry g =
      geo::make_standard_geometry({{64, 64, 32}, {32, 32, 32}});
  const auto projections =
      phantom::project_all(phantom::shepp_logan(), g);
  pfs::ParallelFileSystem fs;
  stage_projections(fs, "proj/", projections);
  IfdkOptions opts;
  opts.ranks = 8;
  opts.rows = 2;
  run_distributed(g, fs, opts);
  const Volume distributed = load_volume(fs, "vol/slice_", g.vol_dims());
  const Volume reference = reconstruct_fdk(g, projections).volume;
  double acc = 0, peak = 0;
  for (std::size_t i = 0; i < reference.voxels(); ++i) {
    const double d = distributed.data()[i] - reference.data()[i];
    acc += d * d;
    peak = std::max(peak, std::abs(static_cast<double>(reference.data()[i])));
  }
  std::printf("  relative RMSE vs single-node FDK: %.2e\n",
              std::sqrt(acc / static_cast<double>(reference.voxels())) / peak);

  // Streaming cross-check: reconstruct a small mixed-geometry series, then
  // feed the EXACT plan sequence the runtime executed
  // (StreamingStats::plans) back into the simulator.
  std::printf("\nstreaming cross-check (4 ranks, 4 mixed frames):\n");
  {
    pfs::ParallelFileSystem sfs;
    std::vector<JobSpec> volumes;
    for (int f = 0; f < 4; ++f) {
      const geo::CbctGeometry fg = geo::make_standard_geometry(
          {{64, 64, 32}, {32, 32, f % 2 == 0 ? std::size_t{32}
                                             : std::size_t{16}}});
      JobSpec vol{"scan/f" + std::to_string(f) + "/",
                       "recon/f" + std::to_string(f) + "/slice_", fg};
      stage_projections(sfs, vol.input_prefix,
                        phantom::project_all(phantom::shepp_logan(), fg));
      volumes.push_back(std::move(vol));
    }
    IfdkOptions sopts;
    sopts.ranks = 4;
    sopts.rows = 0;
    // Full frames resolve R=2, scouts R=1: real re-splits, tiny scale.
    sopts.microbench.sub_volume_bytes =
        volumes[0].geometry->problem().out.bytes() / 2 + 1;
    // Compression on for the small run: its measured ratios feed the
    // at-scale forecast below.
    sopts.compress_wire = true;
    for (JobSpec& vol : volumes) {
      vol.compress_store = true;
      vol.store_bits = 12;
    }
    const StreamingStats measured = run_streaming(g, sfs, sopts, volumes);
    const cluster::StreamSimResult predicted =
        cluster::simulate_stream(measured.plans);
    std::printf(
        "  runtime executed %zu plans (grids %dx%d / %dx%d); measured %.2f "
        "volumes/s, simulator predicts %.2f volumes/s for the same plan "
        "sequence at ABCI rates\n",
        measured.plans.size(), measured.plans[0].grid.rows,
        measured.plans[0].grid.columns, measured.plans[1].grid.rows,
        measured.plans[1].grid.columns, measured.volumes_per_second,
        predicted.volumes_per_second);

    // ---- compression forecast at ABCI scale -------------------------------
    // Feed the MEASURED wire/store ratios of the small run into the
    // simulator's byte discounts and replay the 2,048-rank plan sequence
    // from the forecast above: the reduce phase moves bytes/wire_ratio and
    // the store phase writes bytes/store_ratio, so the delta is the
    // predicted bytes-on-the-wire win of Section 8's compression plan.
    if (!plans.empty()) {
      cluster::SimConfig discounted;
      discounted.wire_compression_ratio = measured.wire_ratio();
      discounted.store_compression_ratio = measured.store_ratio();
      const cluster::StreamSimResult raw = cluster::simulate_stream(plans);
      const cluster::StreamSimResult cmp =
          cluster::simulate_stream(plans, discounted);
      std::printf(
          "\ncompression forecast at %d ranks (measured wire ratio %.3f, "
          "store ratio %.3f @ 12 bits, PSNR %.1f dB):\n"
          "  raw store+wire:  %.3f volumes/s (%.1f s for the series)\n"
          "  compressed:      %.3f volumes/s (%.1f s, %.1f%% faster)\n",
          stream_ranks, measured.wire_ratio(), measured.store_ratio(),
          measured.volume_store_psnr_db.empty()
              ? 0.0
              : measured.volume_store_psnr_db[0],
          raw.volumes_per_second, raw.t_total, cmp.volumes_per_second,
          cmp.t_total, 100.0 * (raw.t_total - cmp.t_total) / raw.t_total);
    }
  }
  return 0;
}
