// Capacity planning with the iFDK cluster simulator.
//
// "How many GPUs do I need to reconstruct my scan in T seconds?" — this
// example answers the question the paper's Section 6.2 raises for AWS/DGX-2
// deployments. It sweeps GPU counts for a chosen problem, prints the
// Fig.-5-style breakdown, and then runs the *functional* distributed
// pipeline on a scaled-down version of the same decomposition as a sanity
// check that the simulated configuration actually computes correct volumes.
//
// Run:  ./cluster_simulation [--volume 4096] [--np 4096] [--budget 30]
#include <cmath>
#include <cstdio>

#include "cluster/simulator.h"
#include "common/cli.h"
#include "common/table.h"
#include "ifdk/fdk.h"
#include "ifdk/framework.h"
#include "phantom/phantom.h"

int main(int argc, char** argv) {
  using namespace ifdk;
  CliParser cli("cluster_simulation", "iFDK capacity planning");
  cli.option("volume", "4096", "output volume N (N^3)")
      .option("np", "4096", "number of 2048^2 projections")
      .option("budget", "30", "time budget in seconds");
  cli.parse(argc, argv);
  if (cli.has("help")) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const auto n = static_cast<std::size_t>(cli.get_int("volume"));
  const auto np = static_cast<std::size_t>(cli.get_int("np"));
  const double budget = cli.get_double("budget");

  const Problem problem{{2048, 2048, np}, {n, n, n}};
  const int rows = perfmodel::select_rows(problem);
  std::printf("problem %s, R=%d (8 GB sub-volumes on 16 GB V100s)\n\n",
              problem.to_string().c_str(), rows);

  TextTable t({"GPUs", "Tcompute(s)", "Tpost(s)", "runtime(s)", "GUPS",
               "fits budget?"});
  int needed = 0;
  for (int gpus = rows; gpus <= 4096; gpus *= 2) {
    const cluster::SimResult sim = cluster::simulate(problem, gpus);
    const bool fits = sim.t_runtime <= budget;
    if (fits && needed == 0) needed = gpus;
    t.row()
        .add(static_cast<std::int64_t>(gpus))
        .add(sim.t_compute, 1)
        .add(sim.t_runtime - sim.t_compute, 1)
        .add(sim.t_runtime, 1)
        .add(sim.gups, 0)
        .add(fits ? "yes" : "no");
  }
  std::printf("%s\n", t.str().c_str());
  if (needed > 0) {
    std::printf("=> %d GPUs reconstruct %zu^3 within %.0f s\n\n", needed, n,
                budget);
  } else {
    std::printf("=> no configuration up to 4096 GPUs meets %.0f s (the "
                "post phase is the floor)\n\n", budget);
  }

  // Functional cross-check: the same R x C decomposition on a toy problem
  // must produce the single-node FDK volume.
  std::printf("functional cross-check (8 ranks, R=2 x C=4, 32^3):\n");
  const geo::CbctGeometry g =
      geo::make_standard_geometry({{64, 64, 32}, {32, 32, 32}});
  const auto projections =
      phantom::project_all(phantom::shepp_logan(), g);
  pfs::ParallelFileSystem fs;
  stage_projections(fs, "proj/", projections);
  IfdkOptions opts;
  opts.ranks = 8;
  opts.rows = 2;
  run_distributed(g, fs, opts);
  const Volume distributed = load_volume(fs, "vol/slice_", g.vol_dims());
  const Volume reference = reconstruct_fdk(g, projections).volume;
  double acc = 0, peak = 0;
  for (std::size_t i = 0; i < reference.voxels(); ++i) {
    const double d = distributed.data()[i] - reference.data()[i];
    acc += d * d;
    peak = std::max(peak, std::abs(static_cast<double>(reference.data()[i])));
  }
  std::printf("  relative RMSE vs single-node FDK: %.2e\n",
              std::sqrt(acc / static_cast<double>(reference.voxels())) / peak);
  return 0;
}
