// Geometry tests: matrix algebra, the projection-matrix chain of Section
// 3.2.1, and the three theorems the proposed back-projection algorithm
// depends on (checked numerically over a sweep of voxels and angles).
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "geometry/cbct.h"
#include "geometry/types.h"
#include "geometry/vec.h"

namespace ifdk::geo {
namespace {

CbctGeometry test_geometry() {
  Problem problem;
  problem.in = {64, 64, 90};
  problem.out = {48, 48, 48};
  return make_standard_geometry(problem);
}

TEST(Vec, Mat4MultiplicationIdentity) {
  const Mat4 id = Mat4::identity();
  Mat4 m = Mat4::rotation_z(0.7);
  const Mat4 prod = id * m;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(prod.at(r, c), m.at(r, c));
    }
  }
}

TEST(Vec, RotationZIsOrthogonal) {
  const Mat4 rot = Mat4::rotation_z(1.234);
  // R * R^T = I for the upper 3x3 block.
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      double acc = 0;
      for (int k = 0; k < 3; ++k) acc += rot.at(r, k) * rot.at(c, k);
      EXPECT_NEAR(acc, r == c ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Vec, CrossProductRightHanded) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0};
  const Vec3 z = x.cross(y);
  EXPECT_DOUBLE_EQ(z.x, 0);
  EXPECT_DOUBLE_EQ(z.y, 0);
  EXPECT_DOUBLE_EQ(z.z, 1);
}

TEST(Geometry, StandardGeometryValidates) {
  const CbctGeometry g = test_geometry();
  EXPECT_NO_THROW(g.validate());
  EXPECT_GT(g.d, 0);
  EXPECT_GT(g.D, g.d);
  EXPECT_NEAR(g.theta(), 2.0 * kPi / 90.0, 1e-12);
}

TEST(Geometry, ValidateRejectsBrokenConfigs) {
  CbctGeometry g = test_geometry();
  g.D = g.d * 0.5;  // detector inside the orbit
  EXPECT_THROW(g.validate(), ConfigError);

  CbctGeometry g2 = test_geometry();
  g2.dx *= 100.0;  // volume far larger than the detector can cover
  EXPECT_THROW(g2.validate(), ConfigError);

  CbctGeometry g3 = test_geometry();
  g3.np = 0;
  EXPECT_THROW(g3.validate(), ConfigError);
}

TEST(Geometry, CenterVoxelProjectsToDetectorCenter) {
  // The volume center sits on the rotation axis, so for every angle it must
  // project to the detector center ((Nu-1)/2, (Nv-1)/2) at depth d.
  const CbctGeometry g = test_geometry();
  const double ci = (static_cast<double>(g.nx) - 1) / 2;
  const double cj = (static_cast<double>(g.ny) - 1) / 2;
  const double ck = (static_cast<double>(g.nz) - 1) / 2;
  for (std::size_t s = 0; s < g.np; s += 7) {
    const Mat34 p = make_projection_matrix(g, g.beta(s));
    const ProjectedPoint pt = project_voxel(p, ci, cj, ck);
    EXPECT_NEAR(pt.u, (static_cast<double>(g.nu) - 1) / 2, 1e-9);
    EXPECT_NEAR(pt.v, (static_cast<double>(g.nv) - 1) / 2, 1e-9);
    EXPECT_NEAR(pt.z, g.d, 1e-9);
  }
}

TEST(Geometry, Theorem1SymmetryAboutXYPlane) {
  // Theorem 1: voxels (i,j,k) and (i,j,Nz-1-k) project to the same u and to
  // v values symmetric about the detector's horizontal center line:
  // vA + vB = Nv - 1.
  const CbctGeometry g = test_geometry();
  for (std::size_t s = 0; s < g.np; s += 11) {
    const Mat34 p = make_projection_matrix(g, g.beta(s));
    for (double i : {0.0, 10.0, 33.0, 47.0}) {
      for (double j : {0.0, 17.0, 47.0}) {
        for (double k : {0.0, 5.0, 20.0}) {
          const auto a = project_voxel(p, i, j, k);
          const auto b = project_voxel(
              p, i, j, static_cast<double>(g.nz) - 1.0 - k);
          EXPECT_NEAR(a.u, b.u, 1e-9);
          EXPECT_NEAR(a.v + b.v, static_cast<double>(g.nv) - 1.0, 1e-9);
        }
      }
    }
  }
}

TEST(Geometry, Theorem2ConstantUAlongZ) {
  // Theorem 2: along a vertical line (fixed i, j) the projected u is constant.
  const CbctGeometry g = test_geometry();
  for (std::size_t s = 0; s < g.np; s += 13) {
    const Mat34 p = make_projection_matrix(g, g.beta(s));
    const auto ref = project_voxel(p, 12.0, 30.0, 0.0);
    for (double k = 1; k < static_cast<double>(g.nz); k += 3) {
      const auto pt = project_voxel(p, 12.0, 30.0, k);
      EXPECT_NEAR(pt.u, ref.u, 1e-9) << "k=" << k;
    }
  }
}

TEST(Geometry, Theorem3DepthClosedForm) {
  // Theorem 3 / Eq. 3: z = d + sin(b)*(i-ci)*Dx - cos(b)*(j-cj)*Dy,
  // independent of k.
  const CbctGeometry g = test_geometry();
  for (std::size_t s = 0; s < g.np; s += 5) {
    const double beta = g.beta(s);
    const Mat34 p = make_projection_matrix(g, beta);
    for (double i : {3.0, 24.0, 40.0}) {
      for (double j : {1.0, 23.0, 46.0}) {
        const double expected = theorem3_depth(g, beta, i, j);
        for (double k : {0.0, 11.0, 31.0, 47.0}) {
          const auto pt = project_voxel(p, i, j, k);
          EXPECT_NEAR(pt.z, expected, 1e-9);
        }
      }
    }
  }
}

TEST(Geometry, ProjectionMatrixMatchesWorldFrameRayCast) {
  // Cross-validation of the two coordinate paths: projecting a voxel through
  // P must land where the world-frame ray from the source through the voxel
  // pierces the detector plane.
  const CbctGeometry g = test_geometry();
  for (std::size_t s = 0; s < g.np; s += 17) {
    const double beta = g.beta(s);
    const Mat34 p = make_projection_matrix(g, beta);
    for (double i : {5.0, 20.0, 42.0}) {
      for (double j : {8.0, 30.0}) {
        for (double k : {4.0, 25.0, 44.0}) {
          const auto pt = project_voxel(p, i, j, k);
          // World-frame: the pixel the matrix predicts must be collinear with
          // source -> voxel.
          const Vec3 src = source_position(g, beta);
          const Vec3 vox = voxel_world_position(g, i, j, k);
          const Vec3 pix = detector_pixel_position(g, beta, pt.u, pt.v);
          const Vec3 d1 = (vox - src).normalized();
          const Vec3 d2 = (pix - src).normalized();
          EXPECT_NEAR(d1.dot(d2), 1.0, 1e-10);
        }
      }
    }
  }
}

TEST(Geometry, SourceOrbitsAtRadiusD) {
  const CbctGeometry g = test_geometry();
  for (std::size_t s = 0; s < g.np; s += 3) {
    const Vec3 src = source_position(g, g.beta(s));
    EXPECT_NEAR(src.norm(), g.d, 1e-9);
    EXPECT_NEAR(src.z, 0.0, 1e-12);  // orbit lies in the XY plane
  }
}

TEST(Geometry, DetectorCenterOppositeSource) {
  // The detector center must lie on the ray from the source through the
  // isocenter at distance D from the source.
  const CbctGeometry g = test_geometry();
  const double cu = (static_cast<double>(g.nu) - 1) / 2;
  const double cv = (static_cast<double>(g.nv) - 1) / 2;
  for (std::size_t s = 0; s < g.np; s += 9) {
    const double beta = g.beta(s);
    const Vec3 src = source_position(g, beta);
    const Vec3 det = detector_pixel_position(g, beta, cu, cv);
    EXPECT_NEAR((det - src).norm(), g.D, 1e-9);
    // Collinear with the isocenter (origin).
    const Vec3 to_origin = (Vec3{0, 0, 0} - src).normalized();
    const Vec3 to_det = (det - src).normalized();
    EXPECT_NEAR(to_origin.dot(to_det), 1.0, 1e-12);
  }
}

TEST(Geometry, ProblemAlphaAndGups) {
  // alpha for 512^2 x 1k -> 128^3 is 128 (Table 4 first row).
  Problem problem;
  problem.in = {512, 512, 1024};
  problem.out = {128, 128, 128};
  EXPECT_DOUBLE_EQ(problem.alpha(), 128.0);

  Problem p2;
  p2.in = {2048, 2048, 1024};
  p2.out = {1024, 1024, 2048};
  EXPECT_DOUBLE_EQ(p2.alpha(), 2.0);  // (2k*2k*1k)/(1k*1k*2k)
}

TEST(Geometry, AllProjectionMatricesCount) {
  const CbctGeometry g = test_geometry();
  const auto mats = make_all_projection_matrices(g);
  EXPECT_EQ(mats.size(), g.np);
}

TEST(Geometry, FloatConversionRoundTrips) {
  const CbctGeometry g = test_geometry();
  const Mat34 p = make_projection_matrix(g, 0.3);
  const auto f = p.to_float();
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_NEAR(f[static_cast<std::size_t>(r * 4 + c)], p.at(r, c),
                  std::abs(p.at(r, c)) * 1e-6 + 1e-6);
    }
  }
}

}  // namespace
}  // namespace ifdk::geo
