// Phantom tests: ellipsoid geometry, analytic line integrals against
// closed-form chords, Shepp-Logan structure, and consistency between the
// voxelized phantom and its analytic projections.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "geometry/cbct.h"
#include "phantom/phantom.h"

namespace ifdk::phantom {
namespace {

TEST(Ellipsoid, SphereChordLengths) {
  Ellipsoid e;
  e.center = {0, 0, 0};
  e.semi_axes = {1, 1, 1};
  e.density = 1.0;

  // Diameter through the center.
  EXPECT_NEAR(e.intersect_length({-2, 0, 0}, {1, 0, 0}), 2.0, 1e-12);
  // Chord at half radius: length 2*sqrt(1 - 0.25) = sqrt(3).
  EXPECT_NEAR(e.intersect_length({-2, 0.5, 0}, {1, 0, 0}), std::sqrt(3.0),
              1e-12);
  // Tangent and miss.
  EXPECT_NEAR(e.intersect_length({-2, 1.0, 0}, {1, 0, 0}), 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(e.intersect_length({-2, 1.5, 0}, {1, 0, 0}), 0.0);
}

TEST(Ellipsoid, ChordIndependentOfDirScale) {
  Ellipsoid e;
  e.semi_axes = {0.5, 0.7, 0.9};
  e.center = {0.1, -0.2, 0.05};
  const geo::Vec3 origin{-3, 0, 0};
  const geo::Vec3 dir{1, 0.07, -0.02};
  const double len1 = e.intersect_length(origin, dir);
  const double len2 = e.intersect_length(origin, dir * 5.0);
  EXPECT_GT(len1, 0);
  EXPECT_NEAR(len1, len2, 1e-10);
}

TEST(Ellipsoid, AnisotropicAxes) {
  Ellipsoid e;
  e.semi_axes = {2, 1, 0.5};
  // Along X: full chord 2a = 4; along Z: 2c = 1.
  EXPECT_NEAR(e.intersect_length({-5, 0, 0}, {1, 0, 0}), 4.0, 1e-12);
  EXPECT_NEAR(e.intersect_length({0, 0, -5}, {0, 0, 1}), 1.0, 1e-12);
}

TEST(Ellipsoid, RotationAboutZ) {
  // Rotating a prolate ellipsoid by 90 degrees swaps its X/Y chords.
  Ellipsoid e;
  e.semi_axes = {2, 1, 1};
  e.phi = kPi / 2.0;
  EXPECT_NEAR(e.intersect_length({-5, 0, 0}, {1, 0, 0}), 2.0, 1e-9);
  EXPECT_NEAR(e.intersect_length({0, -5, 0}, {0, 1, 0}), 4.0, 1e-9);
}

TEST(Ellipsoid, ContainsMatchesBoundary) {
  Ellipsoid e;
  e.semi_axes = {0.5, 0.25, 0.75};
  e.center = {0.2, 0.0, -0.1};
  EXPECT_TRUE(e.contains({0.2, 0.0, -0.1}));
  EXPECT_TRUE(e.contains({0.2 + 0.49, 0.0, -0.1}));
  EXPECT_FALSE(e.contains({0.2 + 0.51, 0.0, -0.1}));
  EXPECT_FALSE(e.contains({0.2, 0.26, -0.1}));
}

TEST(SheppLogan, HasTenEllipsoidsAndSkullShell) {
  const Phantom p = shepp_logan();
  ASSERT_EQ(p.ellipsoids.size(), 10u);
  // Skull: outer density 1.0 shell around a -0.98 interior.
  EXPECT_DOUBLE_EQ(p.ellipsoids[0].density, 1.0);
  EXPECT_DOUBLE_EQ(p.ellipsoids[1].density, -0.98);
  // Density at the head center: 1.0 - 0.98 = 0.02 plus nothing else there.
  EXPECT_NEAR(p.density_at({0, 0, 0}), 0.02, 1e-12);
  // Outside everything.
  EXPECT_DOUBLE_EQ(p.density_at({0.99, 0.99, 0.99}), 0.0);
}

TEST(SheppLogan, DensityRangeIsTissueLike) {
  const Phantom p = shepp_logan();
  // Sample a grid; all values must lie in [0, 1.02] (air to bone).
  for (double x = -1; x <= 1; x += 0.125) {
    for (double y = -1; y <= 1; y += 0.125) {
      for (double z = -1; z <= 1; z += 0.25) {
        const double d = p.density_at({x, y, z});
        EXPECT_GE(d, -1e-12);
        EXPECT_LE(d, 1.02 + 1e-12);
      }
    }
  }
}

TEST(SheppLogan, ModifiedVariantHasHigherContrast) {
  const Phantom m = modified_shepp_logan();
  // Ventricle contrast: interior 0.2 vs 0.01 per the Toft values.
  EXPECT_NEAR(m.density_at({0, 0.35, -0.15}), 1.0 - 0.8 + 0.1, 1e-12);
}

TEST(IndustrialPart, DefectsRemoveMaterial) {
  const Phantom p = industrial_part();
  // Block material.
  EXPECT_NEAR(p.density_at({0.0, 0.18, 0.0}), 2.70, 1e-12);
  // Inside a drilled hole: block + hole = 0.
  EXPECT_NEAR(p.density_at({0.4, 0.4, 0.0}), 0.0, 1e-12);
  // Tungsten inclusion is denser than the block.
  EXPECT_GT(p.density_at({-0.3, 0.3, 0.1}), 10.0);
}

TEST(Phantom, LineIntegralMatchesRiemannSum) {
  // Property check: the analytic integral equals a fine Riemann sum of
  // density_at along the same ray.
  const Phantom p = shepp_logan();
  const geo::Vec3 origin{-2.0, -0.3, 0.1};
  const geo::Vec3 target{2.0, 0.25, -0.05};
  const geo::Vec3 dir = target - origin;

  const double analytic = p.line_integral(origin, dir);

  const int steps = 20000;
  double riemann = 0;
  const double dl = dir.norm() / steps;
  for (int s = 0; s < steps; ++s) {
    const double t = (s + 0.5) / steps;
    riemann += p.density_at(origin + dir * t) * dl;
  }
  EXPECT_NEAR(analytic, riemann, 2e-3);
}

TEST(Projection, CenterRayIntegratesHeadDiameter) {
  geo::CbctGeometry g = geo::make_standard_geometry(
      {{64, 64, 8}, {32, 32, 32}});
  const Phantom p = shepp_logan();
  const Image2D img = project(p, g, 0.0);
  EXPECT_EQ(img.width(), 64u);
  EXPECT_EQ(img.height(), 64u);

  // The central ray passes through the skull along Y (at beta=0 the source is
  // at -Y): expected integral = 2*b_outer*1.0 - 2*b_inner*0.98 - small
  // internal structures; compute exactly from the phantom.
  const double scale = phantom_scale(g);
  const geo::Vec3 src = geo::source_position(g, 0.0) * (1.0 / scale);
  const geo::Vec3 pix =
      geo::detector_pixel_position(g, 0.0, 31.5, 31.5) * (1.0 / scale);
  const double expected = p.line_integral(src, pix - src) * scale;
  // Bilinear center of the detector is between pixels; compare the average of
  // the 4 center pixels with the exact center ray loosely.
  const double measured = 0.25 * (img.at(31, 31) + img.at(32, 31) +
                                  img.at(31, 32) + img.at(32, 32));
  EXPECT_NEAR(measured, expected, 0.05 * std::abs(expected) + 1e-3);
}

TEST(Projection, CornersSeeAir) {
  geo::CbctGeometry g =
      geo::make_standard_geometry({{64, 64, 8}, {32, 32, 32}});
  const Image2D img = project(shepp_logan(), g, 0.0);
  EXPECT_EQ(img.at(0, 0), 0.0f);
  EXPECT_EQ(img.at(63, 0), 0.0f);
  EXPECT_EQ(img.at(0, 63), 0.0f);
  EXPECT_EQ(img.at(63, 63), 0.0f);
}

TEST(Projection, OppositeAnglesConserveMass) {
  // The total detected attenuation at beta and beta+pi must agree closely:
  // both views integrate the same object (exactly equal only in the
  // parallel-beam limit; within a few percent at this cone angle).
  geo::CbctGeometry g =
      geo::make_standard_geometry({{64, 64, 8}, {32, 32, 32}});
  const Phantom p = shepp_logan();
  const Image2D a = project(p, g, 0.0);
  const Image2D b = project(p, g, kPi);
  double sum_a = 0, sum_b = 0;
  for (std::size_t i = 0; i < a.pixels(); ++i) {
    sum_a += a.data()[i];
    sum_b += b.data()[i];
  }
  EXPECT_GT(sum_a, 0);
  // The Shepp-Logan mass is off-center (ventricles at y ~ -0.6), so the two
  // views magnify it differently; ~10% asymmetry is expected at this cone
  // angle and shrinks as d grows. 15% bounds it while still catching sign
  // or geometry errors (which produce >2x differences).
  EXPECT_NEAR(sum_a, sum_b, 0.15 * sum_a);
}

TEST(Voxelize, MatchesDensityAtVoxelCenters) {
  geo::CbctGeometry g =
      geo::make_standard_geometry({{64, 64, 8}, {16, 16, 16}});
  const Phantom p = shepp_logan();
  const Volume vol = voxelize(p, g);
  const double inv_scale = 1.0 / phantom_scale(g);
  for (std::size_t k = 0; k < g.nz; k += 5) {
    for (std::size_t j = 0; j < g.ny; j += 3) {
      for (std::size_t i = 0; i < g.nx; i += 3) {
        const geo::Vec3 w =
            geo::voxel_world_position(g, static_cast<double>(i),
                                      static_cast<double>(j),
                                      static_cast<double>(k)) *
            inv_scale;
        EXPECT_FLOAT_EQ(vol.at(i, j, k),
                        static_cast<float>(p.density_at(w)));
      }
    }
  }
}

TEST(Voxelize, LayoutsAgree) {
  geo::CbctGeometry g =
      geo::make_standard_geometry({{64, 64, 8}, {12, 12, 12}});
  const Phantom p = shepp_logan();
  const Volume x = voxelize(p, g, VolumeLayout::kXMajor);
  const Volume z = voxelize(p, g, VolumeLayout::kZMajor);
  for (std::size_t k = 0; k < g.nz; ++k) {
    for (std::size_t j = 0; j < g.ny; ++j) {
      for (std::size_t i = 0; i < g.nx; ++i) {
        EXPECT_EQ(x.at(i, j, k), z.at(i, j, k));
      }
    }
  }
}

}  // namespace
}  // namespace ifdk::phantom
