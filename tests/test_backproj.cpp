// Back-projection kernel tests: interp2 exactness, algorithmic equivalence
// between the standard (Alg. 2) and proposed (Alg. 4) kernels and all their
// ablations, the 1/6 op-count claim, and end-to-end FDK reconstruction
// quality against the analytic phantom.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "backproj/backprojector.h"
#include "backproj/interp2.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "geometry/cbct.h"
#include "ifdk/fdk.h"
#include "phantom/phantom.h"

namespace ifdk::bp {
namespace {

TEST(Interp2, ExactAtPixelCenters) {
  const float img[6] = {1, 2, 3, 4, 5, 6};  // 3x2
  EXPECT_FLOAT_EQ(interp2(img, 3, 2, 0.0f, 0.0f), 1.0f);
  EXPECT_FLOAT_EQ(interp2(img, 3, 2, 1.0f, 0.0f), 2.0f);
  EXPECT_FLOAT_EQ(interp2(img, 3, 2, 0.0f, 1.0f), 4.0f);
}

TEST(Interp2, BilinearMidpoints) {
  const float img[4] = {0, 1, 2, 3};  // 2x2
  EXPECT_FLOAT_EQ(interp2(img, 2, 2, 0.5f, 0.0f), 0.5f);
  EXPECT_FLOAT_EQ(interp2(img, 2, 2, 0.0f, 0.5f), 1.0f);
  EXPECT_FLOAT_EQ(interp2(img, 2, 2, 0.5f, 0.5f), 1.5f);
}

TEST(Interp2, ReproducesAffineFunctions) {
  // Bilinear interpolation is exact for f(u,v) = a + b*u + c*v.
  constexpr std::size_t w = 8, h = 6;
  float img[w * h];
  for (std::size_t v = 0; v < h; ++v) {
    for (std::size_t u = 0; u < w; ++u) {
      img[v * w + u] = 2.0f + 0.5f * u - 1.25f * v;
    }
  }
  for (float u = 0.0f; u <= 6.5f; u += 0.37f) {
    for (float v = 0.0f; v <= 4.5f; v += 0.41f) {
      EXPECT_NEAR(interp2(img, w, h, u, v), 2.0f + 0.5f * u - 1.25f * v, 1e-4f);
    }
  }
}

TEST(Interp2, OutOfBoundsReturnsZero) {
  const float img[4] = {5, 5, 5, 5};
  EXPECT_EQ(interp2(img, 2, 2, -0.1f, 0.0f), 0.0f);
  EXPECT_EQ(interp2(img, 2, 2, 0.0f, -0.1f), 0.0f);
  EXPECT_EQ(interp2(img, 2, 2, 1.1f, 0.0f), 0.0f);  // needs u+1 < w
  EXPECT_EQ(interp2(img, 2, 2, 0.0f, 1.1f), 0.0f);
}

TEST(Interp2, ExactBorderIsInside) {
  // u == w-1 / v == h-1 sit exactly on the last sample: inside the image,
  // clamped +1 neighbour, zero weight on the clamp.
  const float img[6] = {1, 2, 3, 4, 5, 6};  // 3x2
  EXPECT_FLOAT_EQ(interp2(img, 3, 2, 2.0f, 0.0f), 3.0f);
  EXPECT_FLOAT_EQ(interp2(img, 3, 2, 0.0f, 1.0f), 4.0f);
  EXPECT_FLOAT_EQ(interp2(img, 3, 2, 2.0f, 1.0f), 6.0f);
}

TEST(Interp2, JustOutsideBorderReturnsZero) {
  const float img[6] = {1, 2, 3, 4, 5, 6};  // 3x2
  const float eps = 1e-4f;
  EXPECT_EQ(interp2(img, 3, 2, 2.0f + eps, 0.0f), 0.0f);
  EXPECT_EQ(interp2(img, 3, 2, 0.0f, 1.0f + eps), 0.0f);
  EXPECT_EQ(interp2(img, 3, 2, -eps, 0.0f), 0.0f);
}

TEST(Interp2, OnePixelImage) {
  const float img[1] = {7.5f};
  EXPECT_FLOAT_EQ(interp2(img, 1, 1, 0.0f, 0.0f), 7.5f);
  EXPECT_EQ(interp2(img, 1, 1, 0.5f, 0.0f), 0.0f);  // beyond w-1 == 0
  EXPECT_EQ(interp2(img, 1, 1, 0.0f, 0.5f), 0.0f);
  EXPECT_EQ(interp2(img, 1, 1, -0.5f, 0.0f), 0.0f);
}

TEST(Interp2, DegenerateZeroSizedImageReturnsZero) {
  // Regression: w-1 / h-1 on std::size_t underflowed for 0-sized images,
  // turning the bound check into (almost) always-true and reading OOB.
  const float img[1] = {3.0f};  // never dereferenced
  EXPECT_EQ(interp2(img, 0, 0, 0.0f, 0.0f), 0.0f);
  EXPECT_EQ(interp2(img, 0, 2, 0.0f, 1.0f), 0.0f);
  EXPECT_EQ(interp2(img, 2, 0, 1.0f, 0.0f), 0.0f);
  EXPECT_EQ(interp2(img, 0, 0, 1e9f, 1e9f), 0.0f);
}

// ---------------------------------------------------------------------------
// Kernel equivalence
// ---------------------------------------------------------------------------

struct Scene {
  geo::CbctGeometry g;
  std::vector<Image2D> projections;
};

Scene make_scene(std::size_t nu, std::size_t np, std::size_t n) {
  Scene s{geo::make_standard_geometry({{nu, nu, np}, {n, n, n}}), {}};
  s.projections = phantom::project_all(phantom::shepp_logan(), s.g);
  return s;
}

double volume_rmse(const Volume& a, const Volume& b) {
  double acc = 0;
  for (std::size_t k = 0; k < a.nz(); ++k) {
    for (std::size_t j = 0; j < a.ny(); ++j) {
      for (std::size_t i = 0; i < a.nx(); ++i) {
        const double d = a.at(i, j, k) - b.at(i, j, k);
        acc += d * d;
      }
    }
  }
  return std::sqrt(acc / static_cast<double>(a.voxels()));
}

double volume_max(const Volume& v) {
  double m = 0;
  for (std::size_t n = 0; n < v.voxels(); ++n) {
    m = std::max(m, std::abs(static_cast<double>(v.data()[n])));
  }
  return m;
}

TEST(Backprojector, ProposedMatchesStandard) {
  // The heart of the paper: Algorithm 4 computes *the same volume* as
  // Algorithm 2 with 1/6 of the projection arithmetic. RMSE tolerance
  // mirrors the paper's <1e-5 RMSE verification against RTK.
  const Scene s = make_scene(48, 36, 32);

  const Volume standard = backproject_all(
      s.g, s.projections, config_for(KernelVariant::kRtk32));
  Volume proposed = backproject_all(s.g, s.projections,
                                    config_for(KernelVariant::kL1Tran));
  const Volume reshaped = proposed.reshaped(VolumeLayout::kXMajor);

  const double scale = volume_max(standard);
  ASSERT_GT(scale, 0);
  EXPECT_LT(volume_rmse(standard, reshaped) / scale, 1e-5);
}

class VariantEquivalence : public ::testing::TestWithParam<KernelVariant> {};

TEST_P(VariantEquivalence, AllVariantsAgree) {
  const Scene s = make_scene(48, 24, 20);
  const Volume reference = backproject_all(
      s.g, s.projections, config_for(KernelVariant::kRtk32));
  const Volume variant =
      backproject_all(s.g, s.projections, config_for(GetParam()))
          .reshaped(VolumeLayout::kXMajor);
  const double scale = volume_max(reference);
  EXPECT_LT(volume_rmse(reference, variant) / scale, 1e-5)
      << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, VariantEquivalence,
                         ::testing::Values(KernelVariant::kBpTex,
                                           KernelVariant::kTexTran,
                                           KernelVariant::kBpL1,
                                           KernelVariant::kL1Tran));

struct AblationCase {
  bool symmetry;
  bool reuse_uw;
  bool transpose;
};

class AblationEquivalence : public ::testing::TestWithParam<AblationCase> {};

TEST_P(AblationEquivalence, EveryOptimizationPreservesTheResult) {
  // Property: no combination of the three Algorithm-4 optimizations changes
  // the reconstruction (they are pure compute/layout transforms).
  const Scene s = make_scene(48, 16, 18);
  const Volume reference = backproject_all(
      s.g, s.projections, config_for(KernelVariant::kRtk32));

  BpConfig cfg;
  cfg.symmetry = GetParam().symmetry;
  cfg.reuse_uw = GetParam().reuse_uw;
  cfg.transpose_projections = GetParam().transpose;
  const Volume variant = backproject_all(s.g, s.projections, cfg)
                             .reshaped(VolumeLayout::kXMajor);
  const double scale = volume_max(reference);
  EXPECT_LT(volume_rmse(reference, variant) / scale, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, AblationEquivalence,
    ::testing::Values(AblationCase{false, false, false},
                      AblationCase{true, false, false},
                      AblationCase{false, true, false},
                      AblationCase{false, false, true},
                      AblationCase{true, true, false},
                      AblationCase{true, false, true},
                      AblationCase{false, true, true},
                      AblationCase{true, true, true}));

TEST(Backprojector, OddNzHandlesCenterPlane) {
  const Scene s = make_scene(48, 16, 15);  // odd Nz
  const Volume reference = backproject_all(
      s.g, s.projections, config_for(KernelVariant::kRtk32));
  const Volume proposed = backproject_all(s.g, s.projections,
                                          config_for(KernelVariant::kL1Tran))
                              .reshaped(VolumeLayout::kXMajor);
  const double scale = volume_max(reference);
  EXPECT_LT(volume_rmse(reference, proposed) / scale, 1e-5);
}

TEST(Backprojector, BatchSizeDoesNotChangeResult) {
  const Scene s = make_scene(48, 24, 16);
  BpConfig one;
  one.batch = 1;
  BpConfig eight;
  eight.batch = 8;
  BpConfig big;
  big.batch = 64;  // bigger than Np
  const Volume a = backproject_all(s.g, s.projections, one);
  const Volume b = backproject_all(s.g, s.projections, eight);
  const Volume c = backproject_all(s.g, s.projections, big);
  const double scale = volume_max(a);
  EXPECT_LT(volume_rmse(a, b) / scale, 2e-6);
  EXPECT_LT(volume_rmse(a, c) / scale, 2e-6);
}

TEST(Backprojector, ThreadPoolMatchesSerial) {
  const Scene s = make_scene(48, 16, 16);
  ThreadPool pool(4);
  BpConfig serial;
  BpConfig parallel;
  parallel.pool = &pool;
  const Volume a = backproject_all(s.g, s.projections, serial);
  const Volume b = backproject_all(s.g, s.projections, parallel);
  // Identical summation order per voxel -> bitwise equal.
  for (std::size_t n = 0; n < a.voxels(); ++n) {
    ASSERT_EQ(a.data()[n], b.data()[n]) << "voxel " << n;
  }
}

TEST(Backprojector, ThreadPoolMatchesSerialOddNz) {
  // Odd Nz exercises the center-plane ownership of the slab schedule: the
  // plane must be updated exactly once no matter how the space is tiled.
  const Scene s = make_scene(48, 12, 15);
  ThreadPool pool(4);
  BpConfig serial;
  BpConfig parallel;
  parallel.pool = &pool;
  const Volume a = backproject_all(s.g, s.projections, serial);
  const Volume b = backproject_all(s.g, s.projections, parallel);
  for (std::size_t n = 0; n < a.voxels(); ++n) {
    ASSERT_EQ(a.data()[n], b.data()[n]) << "voxel " << n;
  }
}

TEST(Backprojector, ThreadPoolMatchesSerialSlabPair) {
  const Scene s = make_scene(48, 12, 16);
  const auto mats = geo::make_all_projection_matrices(s.g);
  ThreadPool pool(4);
  BpConfig serial;
  serial.k_begin = 2;
  serial.k_half = 3;
  BpConfig parallel = serial;
  parallel.pool = &pool;
  Volume a(s.g.nx, s.g.ny, 2 * serial.k_half, serial.layout);
  Volume b(s.g.nx, s.g.ny, 2 * parallel.k_half, parallel.layout);
  Backprojector(s.g, serial).accumulate(a, s.projections, mats);
  Backprojector(s.g, parallel).accumulate(b, s.projections, mats);
  for (std::size_t n = 0; n < a.voxels(); ++n) {
    ASSERT_EQ(a.data()[n], b.data()[n]) << "voxel " << n;
  }
}

TEST(Backprojector, AccumulatesAcrossCalls) {
  // accumulate() must add, not overwrite — the property the distributed
  // pipeline's projection batching relies on.
  const Scene s = make_scene(48, 8, 12);
  const auto mats = geo::make_all_projection_matrices(s.g);
  BpConfig cfg;
  Backprojector bp(s.g, cfg);

  Volume all(s.g.nx, s.g.ny, s.g.nz, cfg.layout);
  bp.accumulate(all, s.projections, mats);

  Volume split(s.g.nx, s.g.ny, s.g.nz, cfg.layout);
  std::span<const Image2D> projs(s.projections);
  std::span<const geo::Mat34> ms(mats);
  bp.accumulate(split, projs.subspan(0, 3), ms.subspan(0, 3));
  bp.accumulate(split, projs.subspan(3), ms.subspan(3));

  const double scale = volume_max(all);
  EXPECT_LT(volume_rmse(all, split) / scale, 2e-6);
}

TEST(Backprojector, RejectsMismatchedInputs) {
  const Scene s = make_scene(48, 8, 12);
  const auto mats = geo::make_all_projection_matrices(s.g);
  BpConfig cfg;
  Backprojector bp(s.g, cfg);
  Volume wrong_layout(s.g.nx, s.g.ny, s.g.nz, VolumeLayout::kXMajor);
  EXPECT_THROW(bp.accumulate(wrong_layout, s.projections, mats), ConfigError);
  Volume wrong_dims(8, 8, 8, cfg.layout);
  EXPECT_THROW(bp.accumulate(wrong_dims, s.projections, mats), ConfigError);
  Volume ok(s.g.nx, s.g.ny, s.g.nz, cfg.layout);
  EXPECT_THROW(bp.accumulate(ok, s.projections,
                             std::span<const geo::Mat34>(mats).subspan(1)),
               ConfigError);
}

// ---------------------------------------------------------------------------
// The 1/6 cost claim (paper Section 3.2.2)
// ---------------------------------------------------------------------------

TEST(OpCounts, StandardIsThreeInnerProductsPerUpdate) {
  const auto g = geo::make_standard_geometry({{64, 64, 8}, {32, 32, 32}});
  Backprojector bp(g, config_for(KernelVariant::kRtk32));
  const OpCounts ops = bp.count_ops(8);
  EXPECT_DOUBLE_EQ(ops.inner_products_per_update(), 3.0);
  EXPECT_EQ(ops.voxel_updates, 32ull * 32 * 32 * 8);
}

TEST(OpCounts, ProposedApproachesOneSixth) {
  // inner products per update -> (2 + Nz/2) / Nz -> 0.5 as Nz grows;
  // 0.5 / 3.0 is the paper's 1/6.
  const auto g =
      geo::make_standard_geometry({{2048, 2048, 16}, {1024, 1024, 1024}});
  Backprojector standard(g, config_for(KernelVariant::kRtk32));
  Backprojector proposed(g, config_for(KernelVariant::kL1Tran));
  const double ratio = proposed.count_ops(16).inner_products_per_update() /
                       standard.count_ops(16).inner_products_per_update();
  EXPECT_NEAR(ratio, 1.0 / 6.0, 0.002);
}

TEST(OpCounts, AblationsScaleAsExpected) {
  const auto g =
      geo::make_standard_geometry({{256, 256, 4}, {128, 128, 128}});
  BpConfig sym_only;
  sym_only.symmetry = true;
  sym_only.reuse_uw = false;
  BpConfig reuse_only;
  reuse_only.symmetry = false;
  reuse_only.reuse_uw = true;

  // Symmetry alone: still 3 IPs per k iteration but half the iterations
  // produce two updates -> 1.5 IP per update.
  const OpCounts sym = Backprojector(g, sym_only).count_ops(4);
  EXPECT_NEAR(sym.inner_products_per_update(), 1.5, 1e-9);

  // Reuse alone: (2 + Nz)/Nz IPs per update -> slightly above 1.
  const OpCounts reuse = Backprojector(g, reuse_only).count_ops(4);
  EXPECT_NEAR(reuse.inner_products_per_update(), (2.0 + 128.0) / 128.0, 1e-9);

  // Updates and fetches are identical across all ablations.
  EXPECT_EQ(sym.voxel_updates, reuse.voxel_updates);
  EXPECT_EQ(sym.interp_calls, reuse.interp_calls);
}

// ---------------------------------------------------------------------------
// End-to-end FDK reconstruction quality
// ---------------------------------------------------------------------------

TEST(Fdk, ReconstructsSheppLoganHead) {
  // Full pipeline on a 48^3 problem: the reconstruction must recover the
  // phantom's density structure. FDK on a small grid has limited accuracy;
  // we check (a) global RMSE against the voxelized ground truth over the
  // interior, and (b) the skull/interior contrast.
  const auto g = geo::make_standard_geometry({{96, 96, 180}, {48, 48, 48}});
  const auto phan = phantom::shepp_logan();
  const auto projections = phantom::project_all(phan, g);

  const FdkResult result = reconstruct_fdk(g, projections);
  const Volume truth = phantom::voxelize(phan, g);

  // RMSE inside the smooth brain interior (normalized radius < 0.5): this
  // region excludes the skull's density-1.0 step edge, where Gibbs ringing
  // from the band-limited ramp dominates at this grid size.
  const double c = 23.5;
  double acc = 0;
  std::size_t count = 0;
  double global_acc = 0;
  for (std::size_t k = 0; k < 48; ++k) {
    for (std::size_t j = 0; j < 48; ++j) {
      for (std::size_t i = 0; i < 48; ++i) {
        const double d = result.volume.at(i, j, k) - truth.at(i, j, k);
        global_acc += d * d;
        const double r = std::sqrt((i - c) * (i - c) + (j - c) * (j - c) +
                                   (k - c) * (k - c)) /
                         24.0;
        if (r < 0.5) {
          acc += d * d;
          ++count;
        }
      }
    }
  }
  const double interior_rmse = std::sqrt(acc / static_cast<double>(count));
  const double global_rmse =
      std::sqrt(global_acc / static_cast<double>(48 * 48 * 48));
  EXPECT_LT(interior_rmse, 0.02);
  // Even including every edge voxel the error stays bounded on the [0,1]
  // density range.
  EXPECT_LT(global_rmse, 0.15);

  // Absolute DC accuracy: brain interior density is 0.02.
  const float interior = result.volume.at(24, 24, 24);
  EXPECT_NEAR(interior, 0.02f, 0.02f);

  // The skull shell must reconstruct as a high-density ring: the maximum
  // along the central row exceeds half the true skull density.
  float row_max = 0.0f;
  for (std::size_t j = 0; j < 48; ++j) {
    row_max = std::max(row_max, result.volume.at(24, j, 24));
  }
  EXPECT_GT(row_max, 0.5f);
}

TEST(Fdk, ProposedKernelReconstructsIdentically) {
  const auto g = geo::make_standard_geometry({{64, 64, 120}, {32, 32, 32}});
  const auto projections =
      phantom::project_all(phantom::shepp_logan(), g);

  FdkOptions std_opts;
  std_opts.backprojection = config_for(KernelVariant::kRtk32);
  FdkOptions prop_opts;
  prop_opts.backprojection = config_for(KernelVariant::kL1Tran);

  const FdkResult a = reconstruct_fdk(g, projections, std_opts);
  const FdkResult b = reconstruct_fdk(g, projections, prop_opts);
  const double scale = volume_max(a.volume);
  EXPECT_LT(volume_rmse(a.volume, b.volume) / scale, 1e-5);
  // Output layout is normalized to X-major in both cases.
  EXPECT_EQ(a.volume.layout(), VolumeLayout::kXMajor);
  EXPECT_EQ(b.volume.layout(), VolumeLayout::kXMajor);
}

TEST(Fdk, MoreProjectionsReduceError) {
  // Property: doubling the number of views must not worsen interior RMSE
  // (angular undersampling is a dominant FDK error term).
  const auto phan = phantom::shepp_logan();
  auto rmse_for = [&](std::size_t np) {
    const auto g = geo::make_standard_geometry({{64, 64, np}, {32, 32, 32}});
    const auto projections = phantom::project_all(phan, g);
    const FdkResult r = reconstruct_fdk(g, projections);
    const Volume truth = phantom::voxelize(phan, g);
    double acc = 0;
    std::size_t count = 0;
    for (std::size_t k = 4; k < 28; ++k) {
      for (std::size_t j = 4; j < 28; ++j) {
        for (std::size_t i = 4; i < 28; ++i) {
          const double d = r.volume.at(i, j, k) - truth.at(i, j, k);
          acc += d * d;
          ++count;
        }
      }
    }
    return std::sqrt(acc / static_cast<double>(count));
  };
  const double coarse = rmse_for(30);
  const double fine = rmse_for(120);
  EXPECT_LT(fine, coarse);
}

}  // namespace
}  // namespace ifdk::bp
