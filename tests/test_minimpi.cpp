// minimpi runtime tests: point-to-point ordering, every collective against a
// sequential reference, communicator splitting into the iFDK R x C grid, and
// failure propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "minimpi/minimpi.h"

namespace ifdk::mpi {
namespace {

TEST(MiniMpi, WorldSizeAndRanks) {
  std::atomic<int> sum{0};
  run_world(5, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 5);
    sum.fetch_add(comm.rank());
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3 + 4);
}

TEST(MiniMpi, SendRecvDeliversInOrder) {
  run_world(2, [](Comm& comm) {
    constexpr int kCount = 100;
    if (comm.rank() == 0) {
      for (int i = 0; i < kCount; ++i) {
        comm.send(1, /*tag=*/7, &i, sizeof(i));
      }
    } else {
      for (int i = 0; i < kCount; ++i) {
        int value = -1;
        comm.recv(0, /*tag=*/7, &value, sizeof(value));
        EXPECT_EQ(value, i);
      }
    }
  });
}

TEST(MiniMpi, TagsKeepStreamsSeparate) {
  run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int a = 111, b = 222;
      comm.send(1, 1, &a, sizeof(a));
      comm.send(1, 2, &b, sizeof(b));
    } else {
      int b = 0, a = 0;
      // Receive in the opposite order of sending: tags must disambiguate.
      comm.recv(0, 2, &b, sizeof(b));
      comm.recv(0, 1, &a, sizeof(a));
      EXPECT_EQ(a, 111);
      EXPECT_EQ(b, 222);
    }
  });
}

TEST(MiniMpi, BarrierSynchronizes) {
  // No rank may pass barrier N until all ranks reached it: track the max
  // phase seen by any rank at each barrier.
  constexpr int kRanks = 4;
  std::atomic<int> arrivals{0};
  run_world(kRanks, [&](Comm& comm) {
    for (int phase = 0; phase < 10; ++phase) {
      arrivals.fetch_add(1);
      comm.barrier();
      // After the barrier, every rank must have arrived at this phase.
      EXPECT_GE(arrivals.load(), (phase + 1) * kRanks);
      comm.barrier();
    }
  });
}

TEST(MiniMpi, BcastFromEveryRoot) {
  run_world(4, [](Comm& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      std::vector<double> data(16, comm.rank() == root ? 3.5 * root : 0.0);
      comm.bcast(data.data(), data.size() * sizeof(double), root);
      for (double v : data) EXPECT_DOUBLE_EQ(v, 3.5 * root);
    }
  });
}

TEST(MiniMpi, GatherConcatenatesByRank) {
  run_world(4, [](Comm& comm) {
    const int mine = 100 + comm.rank();
    std::vector<int> all(4, -1);
    comm.gather(&mine, sizeof(int), comm.rank() == 2 ? all.data() : nullptr,
                /*root=*/2);
    if (comm.rank() == 2) {
      for (int r = 0; r < 4; ++r) EXPECT_EQ(all[r], 100 + r);
    }
  });
}

TEST(MiniMpi, AllGatherGivesEveryoneEverything) {
  run_world(6, [](Comm& comm) {
    std::array<float, 3> mine{};
    for (int i = 0; i < 3; ++i) {
      mine[static_cast<std::size_t>(i)] =
          static_cast<float>(comm.rank() * 10 + i);
    }
    std::vector<float> all(18, -1.0f);
    comm.allgather(mine.data(), sizeof(mine), all.data());
    for (int r = 0; r < 6; ++r) {
      for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(all[static_cast<std::size_t>(r * 3 + i)],
                  static_cast<float>(r * 10 + i));
      }
    }
  });
}

TEST(MiniMpi, ReduceSumMatchesSequential) {
  constexpr int kRanks = 5;
  constexpr std::size_t kCount = 1000;
  run_world(kRanks, [&](Comm& comm) {
    std::vector<float> mine(kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
      mine[i] = static_cast<float>(comm.rank() + 1) * 0.25f +
                static_cast<float>(i % 7);
    }
    std::vector<float> result(kCount, -1.0f);
    comm.reduce(mine.data(), result.data(), kCount, ReduceOp::kSum, 0);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < kCount; ++i) {
        float expected = 0;
        for (int r = 0; r < kRanks; ++r) {
          expected += static_cast<float>(r + 1) * 0.25f +
                      static_cast<float>(i % 7);
        }
        EXPECT_FLOAT_EQ(result[i], expected);
      }
    }
  });
}

TEST(MiniMpi, ReduceMaxMinAndNonZeroRoot) {
  run_world(4, [](Comm& comm) {
    const float mine = static_cast<float>((comm.rank() * 13) % 7);
    float max_out = -1, min_out = -1;
    comm.reduce(&mine, &max_out, 1, ReduceOp::kMax, 3);
    comm.reduce(&mine, &min_out, 1, ReduceOp::kMin, 3);
    if (comm.rank() == 3) {
      EXPECT_FLOAT_EQ(max_out, 6.0f);  // ranks give 0, 6, 5, 4
      EXPECT_FLOAT_EQ(min_out, 0.0f);
    }
  });
}

TEST(MiniMpi, AllReduceEveryoneGetsTheSum) {
  run_world(3, [](Comm& comm) {
    const float mine = static_cast<float>(1 << comm.rank());  // 1, 2, 4
    float out = 0;
    comm.allreduce(&mine, &out, 1, ReduceOp::kSum);
    EXPECT_FLOAT_EQ(out, 7.0f);
  });
}

TEST(MiniMpi, ReduceIsDeterministic) {
  // Summation order is rank-ascending by construction; two identical runs
  // must produce bitwise identical results even with adversarial values.
  std::vector<float> run1, run2;
  auto body = [&](std::vector<float>& out) {
    return [&out](Comm& comm) {
      std::vector<float> mine(64);
      for (std::size_t i = 0; i < mine.size(); ++i) {
        mine[i] = (comm.rank() % 2 == 0 ? 1.0f : -1.0f) *
                  (1.0f + static_cast<float>(i) * 1e-7f) *
                  static_cast<float>(1 << (comm.rank() % 5));
      }
      std::vector<float> result(64);
      comm.reduce(mine.data(), result.data(), 64, ReduceOp::kSum, 0);
      if (comm.rank() == 0) out = result;
    };
  };
  run_world(7, body(run1));
  run_world(7, body(run2));
  ASSERT_EQ(run1.size(), run2.size());
  for (std::size_t i = 0; i < run1.size(); ++i) {
    EXPECT_EQ(run1[i], run2[i]);
  }
}

TEST(MiniMpi, SplitFormsIfdkGrid) {
  // 12 ranks as a 3x4 grid (R=3 rows, C=4 columns) exactly like Fig. 3a:
  // column comm = ranks with equal rank/R quotient? No — the paper numbers
  // ranks column-major (Fig. 3a: column 0 holds ranks 0..R-1). Column id =
  // rank / R, row id = rank % R.
  static constexpr int kR = 3, kC = 4;
  run_world(kR * kC, [](Comm& comm) {
    const int col = comm.rank() / kR;
    const int row = comm.rank() % kR;

    Comm col_comm = comm.split(/*color=*/col, /*key=*/row);
    EXPECT_EQ(col_comm.size(), kR);
    EXPECT_EQ(col_comm.rank(), row);

    Comm row_comm = comm.split(/*color=*/row, /*key=*/col);
    EXPECT_EQ(row_comm.size(), kC);
    EXPECT_EQ(row_comm.rank(), col);

    // Column AllGather must see exactly the world ranks of this column.
    const int mine = comm.rank();
    std::vector<int> col_members(kR);
    col_comm.allgather(&mine, sizeof(int), col_members.data());
    for (int r = 0; r < kR; ++r) {
      EXPECT_EQ(col_members[static_cast<std::size_t>(r)], col * kR + r);
    }

    // Row Reduce: sum of world ranks across the row.
    const float fmine = static_cast<float>(mine);
    float row_sum = 0;
    row_comm.reduce(&fmine, &row_sum, 1, ReduceOp::kSum, 0);
    if (col == 0) {
      float expected = 0;
      for (int cc = 0; cc < kC; ++cc) {
        expected += static_cast<float>(cc * kR + row);
      }
      EXPECT_FLOAT_EQ(row_sum, expected);
    }
  });
}

TEST(MiniMpi, NestedSplitAndCollectivesOnSubComm) {
  run_world(8, [](Comm& comm) {
    Comm half = comm.split(comm.rank() < 4 ? 0 : 1, comm.rank());
    Comm quarter = half.split(half.rank() < 2 ? 0 : 1, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    float mine = static_cast<float>(comm.rank());
    float sum = 0;
    quarter.allreduce(&mine, &sum, 1, ReduceOp::kSum);
    // Pairs are (0,1), (2,3), (4,5), (6,7).
    const float base = static_cast<float>((comm.rank() / 2) * 2);
    EXPECT_FLOAT_EQ(sum, base + base + 1);
  });
}

TEST(MiniMpi, LargePayloadRoundTrip) {
  run_world(2, [](Comm& comm) {
    constexpr std::size_t kFloats = 1u << 20;  // 4 MiB
    if (comm.rank() == 0) {
      std::vector<float> data(kFloats);
      std::iota(data.begin(), data.end(), 0.0f);
      comm.send(1, 0, data.data(), data.size() * sizeof(float));
    } else {
      std::vector<float> data(kFloats, -1.0f);
      comm.recv(0, 0, data.data(), data.size() * sizeof(float));
      EXPECT_EQ(data.front(), 0.0f);
      EXPECT_EQ(data[12345], 12345.0f);
      EXPECT_EQ(data.back(), static_cast<float>(kFloats - 1));
    }
  });
}

TEST(MiniMpi, RankFailureAbortsTheWorld) {
  // One rank throws while another blocks in recv: run_world must unblock
  // everyone and rethrow the original error.
  EXPECT_THROW(
      run_world(3,
                [](Comm& comm) {
                  if (comm.rank() == 0) {
                    throw ConfigError("rank 0 exploded");
                  }
                  float buf = 0;
                  comm.recv(0, 0, &buf, sizeof(buf));  // would block forever
                }),
      Error);
}

TEST(MiniMpi, ZeroByteMessages) {
  run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, nullptr, 0);
    } else {
      comm.recv(0, 5, nullptr, 0);  // must match and return
      SUCCEED();
    }
  });
}


TEST(MiniMpi, SendrecvExchangesWithoutDeadlock) {
  // Every rank simultaneously sends to its right neighbour and receives
  // from its left — the pattern ring algorithms are built from.
  run_world(5, [](Comm& comm) {
    const int p = comm.size();
    const int right = (comm.rank() + 1) % p;
    const int left = (comm.rank() + p - 1) % p;
    const int mine = comm.rank() * 11;
    int got = -1;
    comm.sendrecv(right, &mine, left, &got, sizeof(int), 3);
    EXPECT_EQ(got, left * 11);
  });
}

TEST(MiniMpi, RingAllGatherMatchesLinear) {
  run_world(7, [](Comm& comm) {
    std::array<float, 4> mine{};
    for (int i = 0; i < 4; ++i) {
      mine[static_cast<std::size_t>(i)] =
          static_cast<float>(comm.rank() * 100 + i);
    }
    std::vector<float> linear(28), ring(28);
    comm.allgather(mine.data(), sizeof(mine), linear.data());
    comm.allgather_ring(mine.data(), sizeof(mine), ring.data());
    EXPECT_EQ(linear, ring);
  });
}

TEST(MiniMpi, RingAllGatherSingleRank) {
  run_world(1, [](Comm& comm) {
    const double mine = 2.5;
    double out = 0;
    comm.allgather_ring(&mine, sizeof(double), &out);
    EXPECT_EQ(out, 2.5);
  });
}

TEST(MiniMpi, TreeReduceMatchesLinearSum) {
  // Pairwise vs linear summation: equal up to float associativity.
  for (int ranks : {2, 3, 4, 7, 8}) {
    run_world(ranks, [ranks](Comm& comm) {
      std::vector<float> mine(100);
      for (std::size_t i = 0; i < mine.size(); ++i) {
        mine[i] = static_cast<float>(comm.rank() + 1) +
                  0.125f * static_cast<float>(i);
      }
      std::vector<float> linear(100), tree(100);
      comm.reduce(mine.data(), linear.data(), 100, ReduceOp::kSum, 0);
      comm.reduce_tree(mine.data(), tree.data(), 100, ReduceOp::kSum, 0);
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < 100; ++i) {
          EXPECT_NEAR(tree[i], linear[i],
                      1e-4f * std::abs(linear[i]) + 1e-5f)
              << ranks << " ranks, element " << i;
        }
      }
    });
  }
}

TEST(MiniMpi, RingAndTreeCollectivesInterleave) {
  // Regression for the ring AllGather's collective-sequence accounting: it
  // must consume exactly p-1 tags (one per neighbour step), so arbitrary
  // interleavings of ring, tree, flat collectives, and user point-to-point
  // traffic on the same communicator keep every rank's tag stream in sync.
  for (int ranks : {2, 3, 5}) {
    run_world(ranks, [ranks](Comm& comm) {
      const int p = comm.size();
      for (int round = 0; round < 4; ++round) {
        const float mine =
            static_cast<float>(comm.rank() + 1 + 10 * round);
        std::vector<float> ring(static_cast<std::size_t>(p));
        comm.allgather_ring(&mine, sizeof(float), ring.data());
        for (int r = 0; r < p; ++r) {
          EXPECT_FLOAT_EQ(ring[static_cast<std::size_t>(r)],
                          static_cast<float>(r + 1 + 10 * round))
              << ranks << " ranks, round " << round;
        }

        float sum = 0;
        comm.reduce_tree(&mine, &sum, 1, ReduceOp::kSum, 0);
        if (comm.rank() == 0) {
          const float expect =
              static_cast<float>(p * (p + 1) / 2 + 10 * round * p);
          EXPECT_FLOAT_EQ(sum, expect) << ranks << " ranks, round " << round;
        }

        // User tags interleaved with the collective tag space.
        if (p >= 2) {
          if (comm.rank() == 0) {
            comm.send(1, /*tag=*/round, &round, sizeof(round));
          } else if (comm.rank() == 1) {
            int got = -1;
            comm.recv(0, /*tag=*/round, &got, sizeof(got));
            EXPECT_EQ(got, round);
          }
        }
        comm.barrier();
      }
    });
  }
}

TEST(MiniMpi, TreeReduceNonZeroRootAndMax) {
  run_world(6, [](Comm& comm) {
    const float mine = static_cast<float>((comm.rank() * 7) % 5);
    float out = -1;
    comm.reduce_tree(&mine, &out, 1, ReduceOp::kMax, 4);
    if (comm.rank() == 4) {
      EXPECT_FLOAT_EQ(out, 4.0f);  // values are 0,2,4,1,3,0
    }
  });
}


TEST(MiniMpi, NonblockingSendRecvRoundTrip) {
  run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      int value = 99;
      Comm::Request req = comm.isend(1, 8, &value, sizeof(value));
      value = -1;  // buffered send: safe to clobber immediately
      req.wait();
    } else {
      int got = 0;
      Comm::Request req = comm.irecv(0, 8, &got, sizeof(got));
      req.wait();
      EXPECT_EQ(got, 99);
    }
  });
}

TEST(MiniMpi, WaitAllCompletesMixedRequests) {
  // Exchange with both neighbours using irecv-first (the classic halo
  // pattern that deadlocks with blocking recv-first).
  run_world(4, [](Comm& comm) {
    const int p = comm.size();
    const int right = (comm.rank() + 1) % p;
    const int left = (comm.rank() + p - 1) % p;
    int from_left = -1, from_right = -1;
    const int mine = comm.rank() * 3;
    std::array<Comm::Request, 4> reqs = {
        comm.irecv(left, 1, &from_left, sizeof(int)),
        comm.irecv(right, 2, &from_right, sizeof(int)),
        comm.isend(right, 1, &mine, sizeof(int)),
        comm.isend(left, 2, &mine, sizeof(int)),
    };
    Comm::wait_all(reqs);
    EXPECT_EQ(from_left, left * 3);
    EXPECT_EQ(from_right, right * 3);
  });
}

TEST(MiniMpi, RequestMoveSemantics) {
  run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 5;
      Comm::Request a = comm.isend(1, 0, &v, sizeof(v));
      Comm::Request b = std::move(a);
      EXPECT_FALSE(a.valid());
      EXPECT_TRUE(b.valid());
      b.wait();
    } else {
      int got = 0;
      comm.recv(0, 0, &got, sizeof(got));
      EXPECT_EQ(got, 5);
    }
  });
}

}  // namespace
}  // namespace ifdk::mpi
