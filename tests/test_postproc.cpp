// Post-processing tests: compression round trips with bounded error across
// quantization depths, RLE efficiency on CT-like sparse volumes, corrupt
// stream rejection, and the three visualization renderers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "phantom/phantom.h"
#include "postproc/compression.h"
#include "postproc/visualize.h"

namespace ifdk::postproc {
namespace {

Volume test_volume() {
  const auto g = geo::make_standard_geometry({{64, 64, 8}, {24, 24, 24}});
  return phantom::voxelize(phantom::shepp_logan(), g);
}

class CompressionBits : public ::testing::TestWithParam<int> {};

TEST_P(CompressionBits, RoundTripErrorBoundedByQuantStep) {
  const int bits = GetParam();
  const Volume vol = test_volume();
  const CompressedVolume c = compress(vol, bits);
  const Volume back = decompress(c);

  ASSERT_EQ(back.voxels(), vol.voxels());
  const float range = c.max_value - c.min_value;
  const float step = range / static_cast<float>((1 << bits) - 1);
  for (std::size_t n = 0; n < vol.voxels(); ++n) {
    EXPECT_LE(std::abs(back.data()[n] - vol.data()[n]), 0.5f * step + 1e-7f)
        << "voxel " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, CompressionBits,
                         ::testing::Values(8, 10, 12, 16));

TEST(Compression, MoreBitsMorePsnr) {
  const Volume vol = test_volume();
  double prev = 0;
  for (int bits : {8, 12, 16}) {
    const double p = psnr_db(vol, decompress(compress(vol, bits)));
    EXPECT_GT(p, prev) << bits;
    prev = p;
  }
  EXPECT_GT(prev, 80.0);  // 16-bit is visually lossless on [0,1] data
}

TEST(Compression, SparseVolumesCompressWell) {
  // A CT volume is mostly air; the Shepp-Logan at 24^3 compresses several
  // fold, and an empty volume compresses enormously.
  const Volume vol = test_volume();
  const CompressedVolume c = compress(vol);
  EXPECT_GT(c.ratio(), 2.0);

  Volume empty(64, 64, 64);
  const CompressedVolume ce = compress(empty);
  EXPECT_GT(ce.ratio(), 1000.0);
}

TEST(Compression, ConstantVolumeIsExact) {
  Volume vol(8, 8, 8, VolumeLayout::kXMajor, false);
  vol.fill(3.25f);
  const Volume back = decompress(compress(vol));
  for (std::size_t n = 0; n < vol.voxels(); ++n) {
    EXPECT_EQ(back.data()[n], 3.25f);
  }
  EXPECT_EQ(psnr_db(vol, back), std::numeric_limits<double>::infinity());
}

TEST(Compression, PreservesLayoutMetadata) {
  Volume z(4, 5, 6, VolumeLayout::kZMajor);
  z.at(1, 2, 3) = 1.0f;
  const Volume back = decompress(compress(z));
  EXPECT_EQ(back.layout(), VolumeLayout::kZMajor);
  EXPECT_EQ(back.nx(), 4u);
  EXPECT_EQ(back.ny(), 5u);
  EXPECT_EQ(back.nz(), 6u);
}

TEST(Compression, RejectsCorruptStreams) {
  const Volume vol = test_volume();
  CompressedVolume c = compress(vol);
  c.payload.pop_back();  // truncate
  EXPECT_THROW(decompress(c), CompressionError);

  CompressedVolume short_stream = compress(vol);
  short_stream.payload.resize(short_stream.payload.size() / 2 / 4 * 4);
  EXPECT_THROW(decompress(short_stream), CompressionError);
}

TEST(Compression, LongRunsSplitCorrectly) {
  // > 65535 identical voxels exercises the run-splitting path.
  Volume vol(64, 64, 32, VolumeLayout::kXMajor);  // 131072 zeros
  vol.data()[0] = 1.0f;
  vol.data()[vol.voxels() - 1] = 1.0f;
  const Volume back = decompress(compress(vol));
  EXPECT_EQ(back.data()[0], 1.0f);
  EXPECT_EQ(back.data()[vol.voxels() - 1], 1.0f);
  EXPECT_EQ(back.data()[vol.voxels() / 2], 0.0f);
}

TEST(Visualize, MipFindsHotVoxel) {
  Volume vol(8, 10, 12);
  vol.at(2, 3, 4) = 5.0f;
  const Image2D z = mip(vol, Axis::kZ);
  EXPECT_EQ(z.width(), 8u);
  EXPECT_EQ(z.height(), 10u);
  EXPECT_EQ(z.at(2, 3), 5.0f);
  EXPECT_EQ(z.at(0, 0), 0.0f);

  const Image2D x = mip(vol, Axis::kX);
  EXPECT_EQ(x.width(), 10u);
  EXPECT_EQ(x.height(), 12u);
  EXPECT_EQ(x.at(3, 4), 5.0f);

  const Image2D y = mip(vol, Axis::kY);
  EXPECT_EQ(y.at(2, 4), 5.0f);
}

TEST(Visualize, MipHandlesNegativeBackground) {
  Volume vol(4, 4, 4, VolumeLayout::kXMajor, false);
  vol.fill(-2.0f);
  vol.at(1, 1, 1) = -1.0f;
  const Image2D z = mip(vol, Axis::kZ);
  EXPECT_EQ(z.at(1, 1), -1.0f);  // max of negatives, not zero
  EXPECT_EQ(z.at(0, 0), -2.0f);
}

TEST(Visualize, AverageProjectionIsMean) {
  Volume vol(2, 2, 4);
  for (std::size_t k = 0; k < 4; ++k) {
    vol.at(0, 0, k) = static_cast<float>(k);  // 0,1,2,3 -> mean 1.5
  }
  const Image2D z = average_projection(vol, Axis::kZ);
  EXPECT_FLOAT_EQ(z.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(z.at(1, 1), 0.0f);
}

TEST(Visualize, TriPlanarDimensionsAndValues) {
  Volume vol(6, 8, 10);
  vol.at(3, 4, 5) = 7.0f;  // exactly at all three central planes
  const TriPlanar tp = tri_planar(vol);
  EXPECT_EQ(tp.axial.width(), 6u);
  EXPECT_EQ(tp.axial.height(), 8u);
  EXPECT_EQ(tp.coronal.width(), 6u);
  EXPECT_EQ(tp.coronal.height(), 10u);
  EXPECT_EQ(tp.sagittal.width(), 8u);
  EXPECT_EQ(tp.sagittal.height(), 10u);
  EXPECT_EQ(tp.axial.at(3, 4), 7.0f);
  EXPECT_EQ(tp.coronal.at(3, 5), 7.0f);
  EXPECT_EQ(tp.sagittal.at(4, 5), 7.0f);
}

TEST(Visualize, RejectsZMajor) {
  Volume z(4, 4, 4, VolumeLayout::kZMajor);
  EXPECT_THROW(mip(z, Axis::kZ), ConfigError);
  EXPECT_THROW(tri_planar(z), ConfigError);
}

}  // namespace
}  // namespace ifdk::postproc
