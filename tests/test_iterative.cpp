// Iterative solver tests: the unweighted back-projector, SART/OS-SART/MLEM
// convergence on the Shepp-Logan phantom, monotone residual decrease, MLEM
// positivity, and input validation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/math_util.h"
#include "iterative/iterative.h"
#include "phantom/phantom.h"

namespace ifdk::iterative {
namespace {

struct Scene {
  geo::CbctGeometry g;
  std::vector<Image2D> projections;
  Volume truth;
};

Scene make_scene(std::size_t nu = 48, std::size_t np = 36,
                 std::size_t n = 24) {
  Scene s{geo::make_standard_geometry({{nu, nu, np}, {n, n, n}}), {}, {}};
  const auto phan = phantom::shepp_logan();
  s.projections = phantom::project_all(phan, s.g);
  s.truth = phantom::voxelize(phan, s.g);
  return s;
}

double volume_rmse(const Volume& a, const Volume& b) {
  return rmse(a.data(), b.data(), a.voxels());
}

/// RMSE inside the normalized radius-0.5 sphere: excludes the skull's
/// density step, where voxelization error dominates every reconstruction
/// method (the same mask the FDK quality tests use).
double interior_rmse(const Volume& a, const Volume& b) {
  const double c = (static_cast<double>(a.nx()) - 1.0) / 2.0;
  const double half = static_cast<double>(a.nx()) / 2.0;
  double acc = 0;
  std::size_t count = 0;
  for (std::size_t k = 0; k < a.nz(); ++k) {
    for (std::size_t j = 0; j < a.ny(); ++j) {
      for (std::size_t i = 0; i < a.nx(); ++i) {
        const double r = std::sqrt((i - c) * (i - c) + (j - c) * (j - c) +
                                   (k - c) * (k - c)) /
                         half;
        if (r < 0.5) {
          const double d = a.at(i, j, k) - b.at(i, j, k);
          acc += d * d;
          ++count;
        }
      }
    }
  }
  return std::sqrt(acc / static_cast<double>(count));
}

TEST(UnweightedBackprojection, SingleHotPixelSpreadsAlongRay) {
  const auto g = geo::make_standard_geometry({{32, 32, 4}, {16, 16, 16}});
  Image2D view(32, 32);
  view.at(15, 15) = 1.0f;  // near the detector center
  Volume vol(16, 16, 16);
  backproject_unweighted(g, view, 0.0, vol);
  // The center voxel column along the central ray receives weight; corners
  // see nothing.
  double total = 0;
  for (std::size_t n = 0; n < vol.voxels(); ++n) total += vol.data()[n];
  EXPECT_GT(total, 0);
  EXPECT_EQ(vol.at(0, 0, 0), 0.0f);
  EXPECT_EQ(vol.at(15, 15, 15), 0.0f);
  // The ray at beta=0 runs along +Y through the volume center.
  EXPECT_GT(vol.at(7, 7, 7) + vol.at(8, 8, 8) + vol.at(7, 8, 7), 0.0f);
}

TEST(UnweightedBackprojection, AccumulatesAcrossViews) {
  const auto g = geo::make_standard_geometry({{32, 32, 4}, {12, 12, 12}});
  Image2D ones(32, 32, false);
  ones.fill(1.0f);
  Volume once(12, 12, 12);
  backproject_unweighted(g, ones, 0.0, once);
  Volume twice(12, 12, 12);
  backproject_unweighted(g, ones, 0.0, twice);
  backproject_unweighted(g, ones, 0.0, twice);
  for (std::size_t n = 0; n < once.voxels(); ++n) {
    EXPECT_FLOAT_EQ(twice.data()[n], 2.0f * once.data()[n]);
  }
}

TEST(UnweightedBackprojection, RejectsWrongLayout) {
  const auto g = geo::make_standard_geometry({{32, 32, 4}, {12, 12, 12}});
  Image2D view(32, 32);
  Volume zmajor(12, 12, 12, VolumeLayout::kZMajor);
  EXPECT_THROW(backproject_unweighted(g, view, 0.0, zmajor), ConfigError);
}

TEST(Sart, ConvergesToPhantom) {
  const Scene s = make_scene();
  IterOptions opts;
  opts.iterations = 8;
  std::vector<double> errors;
  opts.on_iteration = [&](int, const Volume& x) {
    errors.push_back(volume_rmse(x, s.truth));
  };
  const Volume recon = sart(s.g, s.projections, opts);
  ASSERT_EQ(errors.size(), 8u);
  // Global error decreases monotonically (it floors near the skull's
  // density step, which discretization error dominates); the smooth
  // interior converges tightly.
  EXPECT_LT(errors.back(), errors.front());
  for (std::size_t i = 1; i < errors.size(); ++i) {
    EXPECT_LT(errors[i], errors[i - 1] * 1.02) << "iteration " << i;
  }
  EXPECT_LT(interior_rmse(recon, s.truth), 0.03);
}

TEST(Sart, ResidualDecreases) {
  const Scene s = make_scene();
  IterOptions opts;
  opts.iterations = 5;
  const Volume recon = sart(s.g, s.projections, opts);
  Volume zero(s.g.nx, s.g.ny, s.g.nz);
  const double before = residual_rmse(s.g, zero, s.projections);
  const double after = residual_rmse(s.g, recon, s.projections);
  // The residual after 5 sweeps sits well below half the data norm (the
  // remaining part is the skull's step edge, which converges slowly).
  EXPECT_LT(after, 0.5 * before);
}

TEST(OsSart, SubsetsAccelerateEarlyConvergence) {
  // With the same number of full sweeps, OS-SART (4 subsets) reaches a lower
  // error than SART after 2 iterations (the classic OS speedup).
  const Scene s = make_scene();
  IterOptions plain;
  plain.iterations = 2;
  IterOptions ordered;
  ordered.iterations = 2;
  ordered.subsets = 4;
  const double e_plain =
      volume_rmse(sart(s.g, s.projections, plain), s.truth);
  const double e_os =
      volume_rmse(sart(s.g, s.projections, ordered), s.truth);
  EXPECT_LT(e_os, e_plain);
}

TEST(OsSart, SubsetCountPreservesFixedPoint) {
  // More subsets must still converge to a comparable solution.
  const Scene s = make_scene();
  for (int subsets : {1, 2, 4, 6}) {
    IterOptions opts;
    opts.iterations = 6;
    opts.subsets = subsets;
    const double err =
        interior_rmse(sart(s.g, s.projections, opts), s.truth);
    EXPECT_LT(err, 0.05) << subsets << " subsets";
  }
}

TEST(Mlem, ConvergesAndStaysPositive) {
  const Scene s = make_scene();
  IterOptions opts;
  opts.iterations = 12;
  const Volume recon = mlem(s.g, s.projections, opts);
  for (std::size_t n = 0; n < recon.voxels(); ++n) {
    EXPECT_GE(recon.data()[n], 0.0f);
  }
  EXPECT_LT(interior_rmse(recon, s.truth), 0.03);
  EXPECT_LT(volume_rmse(recon, s.truth), 0.15);
  // MLEM must beat the uniform start by a wide margin.
  Volume uniform(s.g.nx, s.g.ny, s.g.nz, VolumeLayout::kXMajor, false);
  uniform.fill(1.0f);
  EXPECT_LT(volume_rmse(recon, s.truth),
            0.3 * volume_rmse(uniform, s.truth));
}

TEST(Mlem, RejectsNegativeData) {
  const Scene s = make_scene(32, 8, 12);
  std::vector<Image2D> bad;
  for (const auto& p : s.projections) {
    Image2D copy(p.width(), p.height(), false);
    for (std::size_t n = 0; n < p.pixels(); ++n) copy.data()[n] = p.data()[n];
    bad.push_back(std::move(copy));
  }
  bad[0].at(3, 3) = -1.0f;
  IterOptions opts;
  EXPECT_THROW(mlem(s.g, bad, opts), ConfigError);
}

TEST(Solvers, ValidateOptions) {
  const Scene s = make_scene(32, 8, 12);
  IterOptions bad_lambda;
  bad_lambda.lambda = 2.5;
  EXPECT_THROW(sart(s.g, s.projections, bad_lambda), ConfigError);
  IterOptions bad_subsets;
  bad_subsets.subsets = 0;
  EXPECT_THROW(sart(s.g, s.projections, bad_subsets), ConfigError);
  IterOptions ok;
  std::vector<Image2D> wrong_count;
  wrong_count.emplace_back(32, 32);
  EXPECT_THROW(sart(s.g, wrong_count, ok), ConfigError);
}

TEST(Solvers, ThreadPoolMatchesSerial) {
  const Scene s = make_scene(32, 12, 12);
  ThreadPool pool(3);
  IterOptions serial;
  serial.iterations = 2;
  IterOptions parallel = serial;
  parallel.pool = &pool;
  const Volume a = sart(s.g, s.projections, serial);
  const Volume b = sart(s.g, s.projections, parallel);
  // Parallelism is over disjoint volume slices: bitwise identical.
  for (std::size_t n = 0; n < a.voxels(); ++n) {
    ASSERT_EQ(a.data()[n], b.data()[n]);
  }
}

}  // namespace
}  // namespace ifdk::iterative
