// Execution-engine tests: the workload-agnostic seams extracted from the FDK
// runtime — object naming, the z-major slice permutation, root-cause error
// selection, the collective tag-budget check (including the wrap-skip
// allowance), the EpochComms re-split cache, and the VolumeWriterSet
// poison-isolation contract — plus the engine-level FDK pin: the streaming
// workload and the blocking workload are two independent engine Workload
// implementations and must produce bitwise-identical volumes across
// mixed-geometry streams.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.h"
#include "engine/engine.h"
#include "ifdk/framework.h"
#include "minimpi/minimpi.h"
#include "phantom/phantom.h"

namespace ifdk::engine {
namespace {

// ---- object_name ------------------------------------------------------------

TEST(ObjectName, FixedSixDigitDecimal) {
  EXPECT_EQ(object_name("proj/", 0), "proj/000000");
  EXPECT_EQ(object_name("proj/", 7), "proj/000007");
  EXPECT_EQ(object_name("out/slice_", 123456), "out/slice_123456");
  EXPECT_EQ(object_name("", 42), "000042");
}

// ---- extract_zmajor_slice ---------------------------------------------------

TEST(ExtractZmajorSlice, PermutesZMajorToSliceMajor) {
  // zmajor[(i * ny + j) * depth + k] must land at dst[j * nx + i].
  const std::size_t nx = 3, ny = 2, depth = 4;
  std::vector<float> zmajor(nx * ny * depth);
  for (std::size_t n = 0; n < zmajor.size(); ++n) {
    zmajor[n] = static_cast<float>(n);
  }
  for (std::size_t k = 0; k < depth; ++k) {
    std::vector<float> slice(nx * ny, -1.0f);
    extract_zmajor_slice(zmajor.data(), nx, ny, depth, k, slice.data());
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t i = 0; i < nx; ++i) {
        EXPECT_EQ(slice[j * nx + i],
                  static_cast<float>((i * ny + j) * depth + k))
            << "k=" << k << " i=" << i << " j=" << j;
      }
    }
  }
}

// ---- error classes and root-cause selection ---------------------------------

std::exception_ptr capture(const std::function<void()>& thrower) {
  try {
    thrower();
  } catch (...) {
    return std::current_exception();
  }
  return nullptr;
}

TEST(ErrorClasses, RealBeatsAbortBeatsQueueClosed) {
  const auto real = capture([] { throw std::runtime_error("disk on fire"); });
  const auto abort_sym =
      capture([] { throw mpi::WorldAbortedError("world aborted"); });
  const auto queue_sym = capture([] { throw QueueClosedError("queue closed"); });
  EXPECT_EQ(error_class(real), 0);
  EXPECT_EQ(error_class(abort_sym), 1);
  EXPECT_EQ(error_class(queue_sym), 2);

  // Real failures win no matter where they sit in the slot order...
  const std::array<std::exception_ptr, 4> mixed = {nullptr, queue_sym,
                                                   abort_sym, real};
  EXPECT_EQ(pick_root_cause(mixed), real);
  // ...abort symptoms beat queue-shutdown symptoms...
  const std::array<std::exception_ptr, 2> symptoms = {queue_sym, abort_sym};
  EXPECT_EQ(pick_root_cause(symptoms), abort_sym);
  // ...ties break to the earliest slot (deterministic rethrow)...
  const auto real2 = capture([] { throw std::runtime_error("second"); });
  const std::array<std::exception_ptr, 2> tie = {real, real2};
  EXPECT_EQ(pick_root_cause(tie), real);
  // ...and no error means no root cause.
  const std::array<std::exception_ptr, 2> none = {nullptr, nullptr};
  EXPECT_EQ(pick_root_cause(none), nullptr);
  EXPECT_EQ(pick_root_cause({}), nullptr);
}

// ---- assert_tag_budget ------------------------------------------------------

TEST(TagBudget, PassesWithinBudgetAndAcrossTheWrapSkip) {
  const std::uint64_t window = mpi::Comm::kCollectiveTagWindow;
  // Plain epochs: actual <= budget.
  assert_tag_budget(0, 5, 5, "exact");
  assert_tag_budget(100, 103, 5, "under");
  // Wrap skip: a 5-tag budget starting one tag below the window top cannot
  // fit before it, so the reservation skips to the next window and the
  // epoch legitimately consumes budget + (window - offset) = 6 sequence
  // numbers. The naive `actual <= budget` check would reject this.
  assert_tag_budget(window - 1, window + 5, 5, "wrap");
  // A budget that still fits below the top gets NO wrap allowance.
  assert_tag_budget(window - 5, window, 5, "fits");
}

TEST(TagBudgetDeathTest, OverBudgetEpochAborts) {
  // The budget invariant is an abort (IFDK_ASSERT_MSG), not an exception:
  // a tag overrun means plan and runtime disagree and no rank can recover.
  EXPECT_DEATH(assert_tag_budget(0, 10, 5, "overrun epoch"), "overrun epoch");
}

// ---- EpochComms -------------------------------------------------------------

TEST(EpochCommsTest, CachesOneCommPairPerDistinctRowCount) {
  mpi::run_world(4, [](mpi::Comm& world) {
    const int rank = world.rank();
    const std::vector<int> rows_per_volume = {2, 2, 1};
    EpochComms comms(world, rows_per_volume);

    // Volumes 0 and 1 share a grid and must ride the SAME communicator pair
    // (that is what lets their epochs stay in flight together); volume 2
    // re-splits.
    EXPECT_EQ(&comms.of(0), &comms.of(1));
    EXPECT_NE(&comms.of(0), &comms.of(2));

    // R = 2 on 4 ranks: columns of 2 ranks keyed by row, rows of 2 ranks
    // keyed by column (column-major rank numbering).
    EXPECT_EQ(comms.of(0).col.size(), 2);
    EXPECT_EQ(comms.of(0).col.rank(), rank % 2);
    EXPECT_EQ(comms.of(0).row.size(), 2);
    EXPECT_EQ(comms.of(0).row.rank(), rank / 2);

    // R = 1 on 4 ranks: every rank is its own column; one row of 4.
    EXPECT_EQ(comms.of(2).col.size(), 1);
    EXPECT_EQ(comms.of(2).col.rank(), 0);
    EXPECT_EQ(comms.of(2).row.size(), 4);
    EXPECT_EQ(comms.of(2).row.rank(), rank);

    // The cached pairs are live: a broadcast on volume 0's column delivers
    // the column root's value to the whole column.
    float value = comms.of(0).col.rank() == 0 ? static_cast<float>(rank) : -1;
    comms.of(0).col.bcast(&value, sizeof(float), 0);
    EXPECT_EQ(value, static_cast<float>(rank - rank % 2));
  });
}

// ---- VolumeWriterSet --------------------------------------------------------

/// PFS wrapper failing every write under one prefix (the repo's standard
/// fault-injection idiom).
class PrefixFailFs : public pfs::ParallelFileSystem {
 public:
  explicit PrefixFailFs(std::string prefix) : prefix_(std::move(prefix)) {}
  void write_object(const std::string& name, const void* data,
                    std::size_t bytes) override {
    if (name.rfind(prefix_, 0) == 0) {
      throw IoError("injected write failure: " + name);
    }
    pfs::ParallelFileSystem::write_object(name, data, bytes);
  }

 private:
  std::string prefix_;
};

TEST(VolumeWriterSetTest, WritesRootedVolumesAndNoopsOnRootlessRanks) {
  pfs::ParallelFileSystem fs;
  VolumeWriterSet writers(fs, /*queue_capacity=*/4, {true, false, true});
  EXPECT_TRUE(writers.enqueue(0, "a/000000", std::vector<float>{1.0f, 2.0f}));
  EXPECT_TRUE(writers.enqueue(2, "c/000000", std::vector<float>{3.0f}));
  EXPECT_TRUE(writers.enqueue(0, "a/000001", std::vector<float>{4.0f}));
  EXPECT_EQ(writers.finish_volume(0), "");
  EXPECT_EQ(writers.finish_volume(2), "");
  writers.finish();
  EXPECT_GE(writers.busy_seconds(), 0.0);

  std::vector<float> back(2);
  fs.read_object("a/000000", back.data(), 2 * sizeof(float));
  EXPECT_EQ(back[0], 1.0f);
  EXPECT_EQ(back[1], 2.0f);

  // A rank that roots nothing holds no writer thread; every call no-ops.
  VolumeWriterSet rootless(fs, 4, {false, false});
  rootless.finish();
  EXPECT_EQ(rootless.busy_seconds(), 0.0);
}

TEST(VolumeWriterSetTest, WriteFailurePoisonsOnlyThatVolume) {
  PrefixFailFs fs("bad/");
  VolumeWriterSet writers(fs, 4, {true, true});
  writers.enqueue(0, "bad/000000", std::vector<float>{1.0f});
  writers.enqueue(1, "good/000000", std::vector<float>{2.0f});
  const std::string err = writers.finish_volume(0);
  EXPECT_NE(err.find("injected write failure"), std::string::npos) << err;
  EXPECT_EQ(writers.finish_volume(1), "");  // isolation: volume 1 unharmed
  writers.finish();
  float back = 0;
  fs.read_object("good/000000", &back, sizeof(float));
  EXPECT_EQ(back, 2.0f);
}

// ---- FDK-via-engine bitwise pin ---------------------------------------------
//
// run_streaming's FdkStreamWorkload and run_distributed(overlap=false)'s
// BlockingFdkWorkload are two INDEPENDENT Workload implementations on
// engine::run. Producing bitwise-identical volumes across mixed-geometry
// streams pins the refactor: the engine seams (comm cache, writer set, slice
// permutation, error protocol) cannot have perturbed either pipeline's
// arithmetic.

TEST(FdkViaEngine, StreamingBitwiseMatchesBlockingAcrossMixedGeometries) {
  const std::vector<ifdk::Problem> problems = {
      {{32, 32, 16}, {12, 12, 12}},  // base grid
      {{32, 32, 16}, {12, 12, 8}},   // new slab extents, same grid
      {{32, 32, 8}, {12, 12, 12}},   // fewer gather rounds per epoch
  };

  std::vector<geo::CbctGeometry> geoms;
  std::vector<JobSpec> volumes;
  pfs::ParallelFileSystem fs_stream;
  pfs::ParallelFileSystem fs_block;
  for (std::size_t v = 0; v < problems.size(); ++v) {
    geoms.push_back(geo::make_standard_geometry(problems[v]));
    JobSpec spec{"in" + std::to_string(v) + "/",
                 "out" + std::to_string(v) + "/slice_", geoms.back()};
    const auto frames = phantom::project_all(phantom::shepp_logan(),
                                             geoms.back());
    stage_projections(fs_stream, spec.input_prefix, frames);
    stage_projections(fs_block, spec.input_prefix, frames);
    volumes.push_back(std::move(spec));
  }

  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 2;

  const StreamingStats stats =
      run_streaming(geoms[0], fs_stream, opts, volumes);
  ASSERT_EQ(stats.volumes, static_cast<int>(problems.size()));
  for (const std::string& err : stats.volume_errors) {
    EXPECT_TRUE(err.empty()) << err;
  }

  IfdkOptions blocking = opts;
  blocking.overlap = false;
  for (std::size_t v = 0; v < volumes.size(); ++v) {
    blocking.input_prefix = volumes[v].input_prefix;
    blocking.output_prefix = volumes[v].output_prefix;
    run_distributed(geoms[v], fs_block, blocking);
  }

  for (std::size_t v = 0; v < volumes.size(); ++v) {
    const Volume vs =
        load_volume(fs_stream, volumes[v].output_prefix, geoms[v].vol_dims());
    const Volume vb =
        load_volume(fs_block, volumes[v].output_prefix, geoms[v].vol_dims());
    for (std::size_t n = 0; n < vs.voxels(); ++n) {
      ASSERT_EQ(vs.data()[n], vb.data()[n]) << "volume " << v << ", voxel "
                                            << n;
    }
  }
}

}  // namespace
}  // namespace ifdk::engine
