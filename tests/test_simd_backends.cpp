// SIMD backend equivalence suite: the scalar column backend is the bitwise
// reference (it reproduces the historical in-line kernel operation for
// operation), and the AVX2 backend must match it within 4 ULP per voxel on
// every kernel variant, every ablation, odd Nz, slab-pair mode, and under
// both the serial and the pooled schedule. Also covers the runtime dispatch
// semantics (auto selection, explicit-request failure).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "backproj/backprojector.h"
#include "backproj/simd/column_kernel.h"
#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "geometry/cbct.h"
#include "phantom/phantom.h"

namespace ifdk::bp {
namespace {

struct Scene {
  geo::CbctGeometry g;
  std::vector<Image2D> projections;
};

Scene make_scene(std::size_t nu, std::size_t np, std::size_t n,
                 std::size_t nz) {
  Scene s{geo::make_standard_geometry({{nu, nu, np}, {n, n, nz}}), {}};
  s.projections = phantom::project_all(phantom::shepp_logan(), s.g);
  return s;
}

/// ULP distance between two floats (0 for bitwise-equal values, including
/// +0/-0; max for differing signs or NaNs).
std::int64_t ulp_distance(float a, float b) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  auto key = [](float x) {
    std::int32_t i;
    std::memcpy(&i, &x, sizeof(i));
    // Map the sign-magnitude float ordering onto a monotonic integer line.
    return i < 0 ? std::int64_t{std::numeric_limits<std::int32_t>::min()} - i
                 : std::int64_t{i};
  };
  return std::abs(key(a) - key(b));
}

std::int64_t max_ulp(const Volume& a, const Volume& b) {
  EXPECT_EQ(a.voxels(), b.voxels());
  std::int64_t worst = 0;
  for (std::size_t n = 0; n < a.voxels(); ++n) {
    worst = std::max(worst, ulp_distance(a.data()[n], b.data()[n]));
  }
  return worst;
}

Volume run(const Scene& s, BpConfig cfg) {
  const std::size_t nzl =
      cfg.slab_mode() ? 2 * cfg.k_half : s.g.nz;
  Volume vol(s.g.nx, s.g.ny, nzl, cfg.layout);
  const auto mats = geo::make_all_projection_matrices(s.g);
  Backprojector(s.g, cfg).accumulate(vol, s.projections, mats);
  return vol;
}

constexpr std::int64_t kUlpBudget = 4;

// ---------------------------------------------------------------------------
// Dispatch semantics
// ---------------------------------------------------------------------------

TEST(SimdDispatch, ScalarAlwaysAvailable) {
  EXPECT_STREQ(simd::scalar_kernel().name, "scalar");
  EXPECT_EQ(&simd::select(simd::Backend::kScalar), &simd::scalar_kernel());
}

TEST(SimdDispatch, AutoSelectsSupportedBackend) {
  const simd::ColumnKernel& k = simd::select(simd::Backend::kAuto);
  if (simd::avx2_supported()) {
    EXPECT_STREQ(k.name, "avx2");
  } else {
    EXPECT_STREQ(k.name, "scalar");
  }
}

TEST(SimdDispatch, SupportImpliesCompiledAndCpu) {
  if (simd::avx2_supported()) {
    EXPECT_TRUE(simd::avx2_compiled());
    EXPECT_TRUE(cpu_features().avx2);
    EXPECT_TRUE(cpu_features().fma);
  }
}

TEST(SimdDispatch, ExplicitAvx2ThrowsWhenUnsupported) {
  const Scene s = make_scene(32, 4, 8, 8);
  BpConfig cfg;
  cfg.simd_backend = simd::Backend::kAvx2;
  if (simd::avx2_supported()) {
    EXPECT_NO_THROW(Backprojector(s.g, cfg));
  } else {
    EXPECT_THROW(Backprojector(s.g, cfg), ConfigError);
  }
}

TEST(SimdDispatch, BackendNameReportsResolvedKernel) {
  const Scene s = make_scene(32, 4, 8, 8);
  BpConfig scalar;
  scalar.simd_backend = simd::Backend::kScalar;
  EXPECT_STREQ(Backprojector(s.g, scalar).backend_name(), "scalar");
  BpConfig automatic;
  EXPECT_STREQ(Backprojector(s.g, automatic).backend_name(),
               simd::avx2_supported() ? "avx2" : "scalar");
}

TEST(SimdDispatch, ToStringCoversAllBackends) {
  EXPECT_STREQ(simd::to_string(simd::Backend::kAuto), "auto");
  EXPECT_STREQ(simd::to_string(simd::Backend::kScalar), "scalar");
  EXPECT_STREQ(simd::to_string(simd::Backend::kAvx2), "avx2");
}

// ---------------------------------------------------------------------------
// Backend equivalence across kernel variants and ablations
// ---------------------------------------------------------------------------

class BackendVariantEquivalence
    : public ::testing::TestWithParam<KernelVariant> {};

TEST_P(BackendVariantEquivalence, Avx2MatchesScalarWithinUlpBudget) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 backend unavailable";
  const Scene s = make_scene(48, 16, 16, 16);
  BpConfig scalar = config_for(GetParam());
  scalar.simd_backend = simd::Backend::kScalar;
  BpConfig avx2 = config_for(GetParam());
  avx2.simd_backend = simd::Backend::kAvx2;
  if (scalar.layout == VolumeLayout::kXMajor) {
    // The standard Algorithm-2 kernel has no SIMD column path; both
    // configurations must agree exactly.
    EXPECT_EQ(max_ulp(run(s, scalar), run(s, avx2)), 0);
    return;
  }
  EXPECT_LE(max_ulp(run(s, scalar), run(s, avx2)), kUlpBudget)
      << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, BackendVariantEquivalence,
                         ::testing::Values(KernelVariant::kRtk32,
                                           KernelVariant::kBpTex,
                                           KernelVariant::kTexTran,
                                           KernelVariant::kBpL1,
                                           KernelVariant::kL1Tran));

struct AblationCase {
  bool symmetry;
  bool reuse_uw;
  bool transpose;
};

class BackendAblationEquivalence
    : public ::testing::TestWithParam<AblationCase> {};

TEST_P(BackendAblationEquivalence, Avx2MatchesScalarOnEveryAblation) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 backend unavailable";
  const Scene s = make_scene(48, 12, 12, 14);
  BpConfig cfg;
  cfg.symmetry = GetParam().symmetry;
  cfg.reuse_uw = GetParam().reuse_uw;
  cfg.transpose_projections = GetParam().transpose;
  BpConfig scalar = cfg;
  scalar.simd_backend = simd::Backend::kScalar;
  BpConfig avx2 = cfg;
  avx2.simd_backend = simd::Backend::kAvx2;
  EXPECT_LE(max_ulp(run(s, scalar), run(s, avx2)), kUlpBudget);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, BackendAblationEquivalence,
    ::testing::Values(AblationCase{false, false, false},
                      AblationCase{true, false, false},
                      AblationCase{false, true, false},
                      AblationCase{false, false, true},
                      AblationCase{true, true, false},
                      AblationCase{true, false, true},
                      AblationCase{false, true, true},
                      AblationCase{true, true, true}));

// ---------------------------------------------------------------------------
// Odd Nz, slab-pair mode, pooled schedule
// ---------------------------------------------------------------------------

TEST(BackendEquivalence, OddNzCenterPlane) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 backend unavailable";
  const Scene s = make_scene(48, 12, 12, 15);
  BpConfig scalar;
  scalar.simd_backend = simd::Backend::kScalar;
  BpConfig avx2;
  avx2.simd_backend = simd::Backend::kAvx2;
  EXPECT_LE(max_ulp(run(s, scalar), run(s, avx2)), kUlpBudget);
}

TEST(BackendEquivalence, SlabPairMode) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 backend unavailable";
  const Scene s = make_scene(48, 12, 12, 16);
  BpConfig scalar;
  scalar.k_begin = 2;
  scalar.k_half = 3;
  scalar.simd_backend = simd::Backend::kScalar;
  BpConfig avx2 = scalar;
  avx2.simd_backend = simd::Backend::kAvx2;
  EXPECT_LE(max_ulp(run(s, scalar), run(s, avx2)), kUlpBudget);
}

TEST(BackendEquivalence, PooledScalarIsBitwiseSerialScalar) {
  const Scene s = make_scene(48, 12, 12, 16);
  ThreadPool pool(4);
  BpConfig serial;
  serial.simd_backend = simd::Backend::kScalar;
  BpConfig pooled = serial;
  pooled.pool = &pool;
  EXPECT_EQ(max_ulp(run(s, serial), run(s, pooled)), 0);
}

TEST(BackendEquivalence, PooledAvx2MatchesSerialScalar) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 backend unavailable";
  // The pooled schedule shifts the vector chunk boundaries (each task
  // restarts its 8-wide loop at its own t_begin), so this exercises
  // lane/tail seams at every slab edge.
  const Scene s = make_scene(48, 12, 12, 16);
  ThreadPool pool(4);
  BpConfig scalar;
  scalar.simd_backend = simd::Backend::kScalar;
  BpConfig pooled_avx2;
  pooled_avx2.simd_backend = simd::Backend::kAvx2;
  pooled_avx2.pool = &pool;
  EXPECT_LE(max_ulp(run(s, scalar), run(s, pooled_avx2)), kUlpBudget);
}

TEST(BackendEquivalence, PooledOddNzAvx2MatchesSerialScalar) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 backend unavailable";
  const Scene s = make_scene(48, 8, 12, 15);
  ThreadPool pool(4);
  BpConfig scalar;
  scalar.simd_backend = simd::Backend::kScalar;
  BpConfig pooled_avx2;
  pooled_avx2.simd_backend = simd::Backend::kAvx2;
  pooled_avx2.pool = &pool;
  EXPECT_LE(max_ulp(run(s, scalar), run(s, pooled_avx2)), kUlpBudget);
}

TEST(BackendEquivalence, PooledSlabPairAvx2MatchesSerialScalar) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 backend unavailable";
  const Scene s = make_scene(48, 8, 12, 16);
  ThreadPool pool(4);
  BpConfig scalar;
  scalar.k_begin = 1;
  scalar.k_half = 4;
  scalar.simd_backend = simd::Backend::kScalar;
  BpConfig pooled_avx2 = scalar;
  pooled_avx2.simd_backend = simd::Backend::kAvx2;
  pooled_avx2.pool = &pool;
  EXPECT_LE(max_ulp(run(s, scalar), run(s, pooled_avx2)), kUlpBudget);
}

TEST(BackendEquivalence, BatchBoundariesPreserved) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 backend unavailable";
  // Batch size changes the per-voxel accumulation grouping identically in
  // both backends, so each batch size must agree across backends.
  const Scene s = make_scene(48, 12, 10, 12);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{5}}) {
    BpConfig scalar;
    scalar.batch = batch;
    scalar.simd_backend = simd::Backend::kScalar;
    BpConfig avx2 = scalar;
    avx2.simd_backend = simd::Backend::kAvx2;
    EXPECT_LE(max_ulp(run(s, scalar), run(s, avx2)), kUlpBudget)
        << "batch " << batch;
  }
}

}  // namespace
}  // namespace ifdk::bp
