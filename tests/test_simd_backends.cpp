// SIMD backend matrix suite for the back-projection column layer: the
// scalar backend is the bitwise reference (it reproduces the historical
// in-line kernel operation for operation), and every vector backend —
// avx2, avx512, neon — must match it BITWISE (memcmp) on every kernel
// variant, every ablation, odd Nz, slab-pair mode, partial-batch/remainder
// lanes, the pooled schedule, and the full Shepp-Logan FDK pipeline. Each
// matrix test is parameterized over ifdk::simd::kConcreteBackends and skips
// visibly when a backend is not compiled in or the CPU lacks it. Also
// covers the shared dispatch semantics (auto selection, availability
// listing, explicit-request failure).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "backproj/backprojector.h"
#include "backproj/simd/column_kernel.h"
#include "common/aligned.h"
#include "common/cpu_features.h"
#include "common/error.h"
#include "common/simd_dispatch.h"
#include "common/thread_pool.h"
#include "geometry/cbct.h"
#include "ifdk/fdk.h"
#include "phantom/phantom.h"

namespace ifdk::bp {
namespace {

struct Scene {
  geo::CbctGeometry g;
  std::vector<Image2D> projections;
};

Scene make_scene(std::size_t nu, std::size_t np, std::size_t n,
                 std::size_t nz) {
  Scene s{geo::make_standard_geometry({{nu, nu, np}, {n, n, nz}}), {}};
  s.projections = phantom::project_all(phantom::shepp_logan(), s.g);
  return s;
}

/// ULP distance between two floats — reported on bitwise-mismatch failures
/// so a near-miss (rounding seam) is distinguishable from a gross bug.
std::int64_t ulp_distance(float a, float b) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  auto key = [](float x) {
    std::int32_t i;
    std::memcpy(&i, &x, sizeof(i));
    // Map the sign-magnitude float ordering onto a monotonic integer line.
    return i < 0 ? std::int64_t{std::numeric_limits<std::int32_t>::min()} - i
                 : std::int64_t{i};
  };
  return std::abs(key(a) - key(b));
}

/// The backend contract: volumes must be memcmp-identical, not merely close.
::testing::AssertionResult bitwise_equal(const Volume& a, const Volume& b) {
  if (a.voxels() != b.voxels()) {
    return ::testing::AssertionFailure()
           << "voxel counts differ: " << a.voxels() << " vs " << b.voxels();
  }
  if (std::memcmp(a.data(), b.data(), a.voxels() * sizeof(float)) == 0) {
    return ::testing::AssertionSuccess();
  }
  for (std::size_t n = 0; n < a.voxels(); ++n) {
    if (std::memcmp(&a.data()[n], &b.data()[n], sizeof(float)) != 0) {
      return ::testing::AssertionFailure()
             << "first mismatch at voxel " << n << ": " << a.data()[n]
             << " vs " << b.data()[n] << " ("
             << ulp_distance(a.data()[n], b.data()[n]) << " ULP)";
    }
  }
  return ::testing::AssertionFailure() << "memcmp mismatch not located";
}

Volume run(const Scene& s, BpConfig cfg) {
  const std::size_t nzl = cfg.slab_mode() ? 2 * cfg.k_half : s.g.nz;
  Volume vol(s.g.nx, s.g.ny, nzl, cfg.layout);
  const auto mats = geo::make_all_projection_matrices(s.g);
  Backprojector(s.g, cfg).accumulate(vol, s.projections, mats);
  return vol;
}

// ---------------------------------------------------------------------------
// Dispatch semantics (shared registry: common/simd_dispatch)
// ---------------------------------------------------------------------------

TEST(SimdDispatch, ScalarAlwaysAvailable) {
  EXPECT_STREQ(simd::scalar_kernel().name, "scalar");
  EXPECT_EQ(&simd::select(simd::Backend::kScalar), &simd::scalar_kernel());
  EXPECT_TRUE(simd::compiled(simd::Backend::kScalar));
  EXPECT_TRUE(simd::supported(simd::Backend::kScalar));
}

TEST(SimdDispatch, AutoSelectsWidestSupportedBackend) {
  const char* expected = "scalar";
  for (const simd::Backend b : ifdk::simd::kConcreteBackends) {
    if (simd::supported(b)) {
      expected = simd::to_string(b);
      break;
    }
  }
  EXPECT_STREQ(simd::select(simd::Backend::kAuto).name, expected);
}

TEST(SimdDispatch, SupportImpliesCompiledAndCpu) {
  const CpuFeatures& cpu = cpu_features();
  if (simd::supported(simd::Backend::kAvx2)) {
    EXPECT_TRUE(simd::compiled(simd::Backend::kAvx2));
    EXPECT_TRUE(cpu.avx2);
    EXPECT_TRUE(cpu.fma);
  }
  if (simd::supported(simd::Backend::kAvx512)) {
    EXPECT_TRUE(simd::compiled(simd::Backend::kAvx512));
    EXPECT_TRUE(cpu.avx512f);
    EXPECT_TRUE(cpu.avx512dq);
    EXPECT_TRUE(cpu.avx512vl);
  }
  if (simd::supported(simd::Backend::kNeon)) {
    EXPECT_TRUE(simd::compiled(simd::Backend::kNeon));
    EXPECT_TRUE(cpu.neon);
  }
}

TEST(SimdDispatch, ListBackendsCoversConcreteMatrix) {
  const auto info = ifdk::simd::list_backends();
  ASSERT_EQ(info.size(), std::size(ifdk::simd::kConcreteBackends));
  for (std::size_t i = 0; i < info.size(); ++i) {
    EXPECT_EQ(info[i].backend, ifdk::simd::kConcreteBackends[i]);
    EXPECT_EQ(info[i].compiled, simd::compiled(info[i].backend));
    EXPECT_EQ(info[i].supported, simd::supported(info[i].backend));
    // supported => compiled, always.
    EXPECT_TRUE(!info[i].supported || info[i].compiled);
  }
}

TEST(SimdDispatch, ExplicitRequestThrowsExactlyWhenUnsupported) {
  const Scene s = make_scene(32, 4, 8, 8);
  for (const simd::Backend b : ifdk::simd::kConcreteBackends) {
    BpConfig cfg;
    cfg.simd_backend = b;
    if (simd::supported(b)) {
      EXPECT_NO_THROW(Backprojector(s.g, cfg)) << simd::to_string(b);
    } else {
      EXPECT_THROW(Backprojector(s.g, cfg), ConfigError) << simd::to_string(b);
    }
  }
}

TEST(SimdDispatch, BackendNameReportsResolvedKernel) {
  const Scene s = make_scene(32, 4, 8, 8);
  BpConfig scalar;
  scalar.simd_backend = simd::Backend::kScalar;
  EXPECT_STREQ(Backprojector(s.g, scalar).backend_name(), "scalar");
  BpConfig automatic;
  EXPECT_STREQ(Backprojector(s.g, automatic).backend_name(),
               simd::select(simd::Backend::kAuto).name);
}

TEST(SimdDispatch, ToStringCoversAllBackends) {
  EXPECT_STREQ(simd::to_string(simd::Backend::kAuto), "auto");
  EXPECT_STREQ(simd::to_string(simd::Backend::kScalar), "scalar");
  EXPECT_STREQ(simd::to_string(simd::Backend::kAvx2), "avx2");
  EXPECT_STREQ(simd::to_string(simd::Backend::kAvx512), "avx512");
  EXPECT_STREQ(simd::to_string(simd::Backend::kNeon), "neon");
}

// ---------------------------------------------------------------------------
// Data alignment pins (the vector backends' load/store contract)
// ---------------------------------------------------------------------------

TEST(Alignment, VolumeAndProjectionDataAreCacheLineAligned) {
  // Both layers' hot buffers come from AlignedBuffer: 64-byte alignment
  // covers a full __m512 and keeps columns cache-line clean.
  static_assert(kCacheLineBytes == 64);
  Volume vol(8, 8, 8, VolumeLayout::kZMajor);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(vol.data()) % 64, 0u);
  Image2D img(33, 7, /*zero_fill=*/false);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(img.data()) % 64, 0u);
  AlignedBuffer<float> buf(3);  // odd sizes still round up to a full line
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
}

// ---------------------------------------------------------------------------
// Backend equivalence matrix: every vector backend vs the scalar reference
// ---------------------------------------------------------------------------

class BackendMatrix : public ::testing::TestWithParam<simd::Backend> {
 protected:
  void SetUp() override {
    if (!simd::supported(GetParam())) {
      GTEST_SKIP() << simd::to_string(GetParam())
                   << " backend not available on this build/CPU";
    }
  }

  simd::Backend backend() const { return GetParam(); }
};

std::string backend_name(
    const ::testing::TestParamInfo<simd::Backend>& info) {
  return simd::to_string(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendMatrix,
                         ::testing::ValuesIn(ifdk::simd::kConcreteBackends),
                         backend_name);

TEST_P(BackendMatrix, MatchesScalarOnEveryKernelVariant) {
  const Scene s = make_scene(48, 16, 16, 16);
  for (const KernelVariant variant :
       {KernelVariant::kRtk32, KernelVariant::kBpTex, KernelVariant::kTexTran,
        KernelVariant::kBpL1, KernelVariant::kL1Tran}) {
    BpConfig scalar = config_for(variant);
    scalar.simd_backend = simd::Backend::kScalar;
    BpConfig vec = config_for(variant);
    vec.simd_backend = backend();
    // The standard Algorithm-2 (kXMajor) kernel has no SIMD column path, so
    // there the two configurations trivially agree; the Z-major variants
    // exercise the real vector loop. Either way: bitwise.
    EXPECT_TRUE(bitwise_equal(run(s, scalar), run(s, vec)))
        << to_string(variant);
  }
}

TEST_P(BackendMatrix, MatchesScalarOnEveryAblation) {
  const Scene s = make_scene(48, 12, 12, 14);
  for (int bits = 0; bits < 8; ++bits) {
    BpConfig cfg;
    cfg.symmetry = (bits & 1) != 0;
    cfg.reuse_uw = (bits & 2) != 0;
    cfg.transpose_projections = (bits & 4) != 0;
    BpConfig scalar = cfg;
    scalar.simd_backend = simd::Backend::kScalar;
    BpConfig vec = cfg;
    vec.simd_backend = backend();
    EXPECT_TRUE(bitwise_equal(run(s, scalar), run(s, vec)))
        << "symmetry=" << cfg.symmetry << " reuse_uw=" << cfg.reuse_uw
        << " transpose=" << cfg.transpose_projections;
  }
}

TEST_P(BackendMatrix, OddNzCenterPlane) {
  const Scene s = make_scene(48, 12, 12, 15);
  BpConfig scalar;
  scalar.simd_backend = simd::Backend::kScalar;
  BpConfig vec;
  vec.simd_backend = backend();
  EXPECT_TRUE(bitwise_equal(run(s, scalar), run(s, vec)));
}

TEST_P(BackendMatrix, RemainderLanes) {
  // Column depths chosen so the pair-iteration count t_end = nz/2 sweeps
  // every remainder shape: shorter than any vector width (nz 6), a partial
  // block for every width (nz 10, 15), one lane past the 16-wide block
  // (nz 34 -> t_end 17, the avx512 single-active-lane mask), and that plus
  // the odd center plane (nz 35).
  for (const std::size_t nz :
       {std::size_t{6}, std::size_t{10}, std::size_t{15}, std::size_t{34},
        std::size_t{35}}) {
    const Scene s = make_scene(32, 6, 8, nz);
    BpConfig scalar;
    scalar.simd_backend = simd::Backend::kScalar;
    BpConfig vec;
    vec.simd_backend = backend();
    EXPECT_TRUE(bitwise_equal(run(s, scalar), run(s, vec))) << "nz " << nz;
  }
}

TEST_P(BackendMatrix, SlabPairMode) {
  const Scene s = make_scene(48, 12, 12, 16);
  BpConfig scalar;
  scalar.k_begin = 2;
  scalar.k_half = 3;
  scalar.simd_backend = simd::Backend::kScalar;
  BpConfig vec = scalar;
  vec.simd_backend = backend();
  EXPECT_TRUE(bitwise_equal(run(s, scalar), run(s, vec)));
}

TEST_P(BackendMatrix, PooledMatchesSerialScalar) {
  // The pooled schedule shifts the vector chunk boundaries (each task
  // restarts its k loop at its own t_begin), so this exercises lane/tail
  // seams at every slab edge.
  const Scene s = make_scene(48, 12, 12, 16);
  ThreadPool pool(4);
  BpConfig scalar;
  scalar.simd_backend = simd::Backend::kScalar;
  BpConfig pooled;
  pooled.simd_backend = backend();
  pooled.pool = &pool;
  EXPECT_TRUE(bitwise_equal(run(s, scalar), run(s, pooled)));
}

TEST_P(BackendMatrix, PooledOddNzMatchesSerialScalar) {
  const Scene s = make_scene(48, 8, 12, 15);
  ThreadPool pool(4);
  BpConfig scalar;
  scalar.simd_backend = simd::Backend::kScalar;
  BpConfig pooled;
  pooled.simd_backend = backend();
  pooled.pool = &pool;
  EXPECT_TRUE(bitwise_equal(run(s, scalar), run(s, pooled)));
}

TEST_P(BackendMatrix, PooledSlabPairMatchesSerialScalar) {
  const Scene s = make_scene(48, 8, 12, 16);
  ThreadPool pool(4);
  BpConfig scalar;
  scalar.k_begin = 1;
  scalar.k_half = 4;
  scalar.simd_backend = simd::Backend::kScalar;
  BpConfig pooled = scalar;
  pooled.simd_backend = backend();
  pooled.pool = &pool;
  EXPECT_TRUE(bitwise_equal(run(s, scalar), run(s, pooled)));
}

TEST_P(BackendMatrix, BatchBoundariesPreserved) {
  // Batch size changes the per-voxel accumulation grouping identically in
  // both backends, so each batch size must agree across backends.
  const Scene s = make_scene(48, 12, 10, 12);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{5}}) {
    BpConfig scalar;
    scalar.batch = batch;
    scalar.simd_backend = simd::Backend::kScalar;
    BpConfig vec = scalar;
    vec.simd_backend = backend();
    EXPECT_TRUE(bitwise_equal(run(s, scalar), run(s, vec)))
        << "batch " << batch;
  }
}

TEST_P(BackendMatrix, FullSheppLoganFdkMatchesScalar) {
  // End-to-end: filter + back-projection with BOTH layers forced to the
  // same backend must reproduce the all-scalar pipeline bitwise on a full
  // Shepp-Logan reconstruction (odd Nz keeps the center plane in play).
  const Scene s = make_scene(48, 12, 16, 15);
  FdkOptions scalar;
  scalar.filter.fft_backend = simd::Backend::kScalar;
  scalar.backprojection.simd_backend = simd::Backend::kScalar;
  FdkOptions vec;
  vec.filter.fft_backend = backend();
  vec.backprojection.simd_backend = backend();
  const Volume a =
      reconstruct_fdk(s.g, s.projections, scalar).volume;
  const Volume b = reconstruct_fdk(s.g, s.projections, vec).volume;
  EXPECT_TRUE(bitwise_equal(a, b));
}

TEST(BackendEquivalence, PooledScalarIsBitwiseSerialScalar) {
  const Scene s = make_scene(48, 12, 12, 16);
  ThreadPool pool(4);
  BpConfig serial;
  serial.simd_backend = simd::Backend::kScalar;
  BpConfig pooled = serial;
  pooled.pool = &pool;
  EXPECT_TRUE(bitwise_equal(run(s, serial), run(s, pooled)));
}

}  // namespace
}  // namespace ifdk::bp
