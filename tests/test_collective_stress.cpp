// Randomized collective stress harness: seeded interleavings of
// point-to-point traffic, blocking collectives, and nonblocking collectives
// (both ireduce fan-ins) across 2-8 ranks, with out-of-order waits of the
// outstanding handles and mid-stream aborts. Every rank derives the SAME
// op program from the seed (op types, roots, counts, segment sizes, wait
// schedule — the global consistency the minimpi progress model requires),
// while payloads are rank-dependent, so every op's result is verifiable
// from closed-form expectations. Seeds are pinned for CI determinism and
// printed on failure via SCOPED_TRACE; the suite runs under the ASan/UBSan
// lane like every other test.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "minimpi/minimpi.h"

namespace ifdk::mpi {
namespace {

/// Payload element i of rank `rank` in op `op_id` — exact in float, so the
/// ascending-rank fold expectations below are bitwise-reproducible anywhere.
float val(int rank, int op_id, std::size_t i) {
  return static_cast<float>(
             (rank * 31 + op_id * 17 + static_cast<int>(i % 13)) % 101) *
         0.25f;
}

float apply(ReduceOp op, float a, float b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kMax: return a > b ? a : b;
    case ReduceOp::kMin: return a < b ? a : b;
  }
  return a;
}

/// The linear ascending-rank fold — the canonical summation order that both
/// reduce() and ireduce (linear AND tree fan-in) must reproduce bitwise.
float expected_fold(ReduceOp op, int p, int op_id, std::size_t i) {
  float acc = val(0, op_id, i);
  for (int r = 1; r < p; ++r) acc = apply(op, acc, val(r, op_id, i));
  return acc;
}

std::vector<float> make_payload(int rank, int op_id, std::size_t count) {
  std::vector<float> out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = val(rank, op_id, i);
  return out;
}

/// An outstanding nonblocking op awaiting its (seeded, globally consistent)
/// wait slot; complete() drives it and verifies the result.
struct Pending {
  virtual ~Pending() = default;
  virtual void complete(Comm& comm) = 0;
};

struct PendingGather : Pending {
  int op_id;
  int p;
  std::size_t count;
  std::vector<float> out;
  Comm::CollectiveRequest req;

  void complete(Comm&) override {
    req.wait();
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[static_cast<std::size_t>(r) * count + i],
                  val(r, op_id, i))
            << "iallgather op " << op_id << ", rank block " << r
            << ", element " << i;
      }
    }
  }
};

struct PendingReduce : Pending {
  int op_id;
  int p;
  int root;
  ReduceOp op;
  std::size_t count;
  std::vector<float> send;  ///< alive until wait: relays read it inside wait
  std::vector<float> out;
  Comm::CollectiveRequest req;

  void complete(Comm& comm) override {
    req.wait();
    if (comm.rank() == root) {
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[i], expected_fold(op, p, op_id, i))
            << "ireduce op " << op_id << ", element " << i;
      }
    }
  }
};

struct PendingRecv : Pending {
  int op_id;
  int src;
  std::size_t count;
  std::vector<float> buf;
  Comm::Request req;

  void complete(Comm&) override {
    req.wait();
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(buf[i], val(src, op_id, i))
          << "irecv op " << op_id << ", element " << i;
    }
  }
};

struct Program {
  std::uint64_t seed;
  int ranks;
  int ops;
  int abort_op = -1;    ///< op index at which abort_rank throws (-1 = never)
  int abort_rank = -1;
};

/// Runs the seeded op program on one rank. Every Rng draw below depends
/// only on the seed and op index — identical on all ranks.
void run_program(Comm& comm, const Program& prog) {
  Rng rng(prog.seed);
  const int p = comm.size();
  std::vector<std::unique_ptr<Pending>> pending;

  auto wait_one = [&](std::size_t idx) {
    ASSERT_LT(idx, pending.size());
    pending[idx]->complete(comm);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(idx));
  };

  for (int op_id = 0; op_id < prog.ops; ++op_id) {
    if (op_id == prog.abort_op && comm.rank() == prog.abort_rank) {
      throw ConfigError("stress: injected abort at op " +
                        std::to_string(op_id));
    }
    const std::uint64_t kind = rng.next_below(100);
    const int root = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(p)));
    const std::size_t count = 1 + rng.next_below(64);
    const std::size_t segment = 1 + rng.next_below(17);
    const ReduceOp rop = kind % 3 == 0   ? ReduceOp::kSum
                         : kind % 3 == 1 ? ReduceOp::kMax
                                         : ReduceOp::kMin;
    const ReduceAlgo algo =
        rng.next_below(2) == 0 ? ReduceAlgo::kTree : ReduceAlgo::kLinear;
    // Force drains so the pending pool stays bounded; otherwise wait a
    // seeded-random outstanding handle ~1 op in 5.
    const bool must_drain = pending.size() >= 5;
    const std::uint64_t wait_draw = rng.next_below(100);

    if (kind < 15) {
      // Blocking neighbour sendrecv on a user tag in the gaps between
      // outstanding collectives.
      const int right = (comm.rank() + 1) % p;
      const int left = (comm.rank() + p - 1) % p;
      const std::vector<float> mine = make_payload(comm.rank(), op_id, count);
      std::vector<float> from_left(count);
      comm.sendrecv(right, mine.data(), left, from_left.data(),
                    count * sizeof(float), /*tag=*/op_id % 1000);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(from_left[i], val(left, op_id, i))
            << "sendrecv op " << op_id << ", element " << i;
      }
    } else if (kind < 25) {
      // isend to the right neighbour + irecv from the left, the receive
      // parked in the pending pool for an out-of-order wait.
      const int right = (comm.rank() + 1) % p;
      const int left = (comm.rank() + p - 1) % p;
      const std::vector<float> mine = make_payload(comm.rank(), op_id, count);
      comm.isend(right, op_id % 1000, mine.data(), count * sizeof(float))
          .wait();
      auto rec = std::make_unique<PendingRecv>();
      rec->op_id = op_id;
      rec->src = left;
      rec->count = count;
      rec->buf.resize(count);
      rec->req = comm.irecv(left, op_id % 1000, rec->buf.data(),
                            count * sizeof(float));
      pending.push_back(std::move(rec));
    } else if (kind < 35) {
      std::vector<float> data = make_payload(root, op_id, count);
      if (comm.rank() != root) data.assign(count, -1.0f);
      comm.bcast(data.data(), count * sizeof(float), root);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(data[i], val(root, op_id, i))
            << "bcast op " << op_id << ", element " << i;
      }
    } else if (kind < 45) {
      const std::vector<float> mine = make_payload(comm.rank(), op_id, count);
      std::vector<float> out(comm.rank() == root ? count : 0);
      comm.reduce(mine.data(), comm.rank() == root ? out.data() : nullptr,
                  count, rop, root);
      if (comm.rank() == root) {
        for (std::size_t i = 0; i < count; ++i) {
          ASSERT_EQ(out[i], expected_fold(rop, p, op_id, i))
              << "reduce op " << op_id << ", element " << i;
        }
      }
    } else if (kind < 55) {
      const std::vector<float> mine = make_payload(comm.rank(), op_id, count);
      std::vector<float> out(static_cast<std::size_t>(p) * count);
      comm.allgather_ring(mine.data(), count * sizeof(float), out.data());
      for (int r = 0; r < p; ++r) {
        for (std::size_t i = 0; i < count; ++i) {
          ASSERT_EQ(out[static_cast<std::size_t>(r) * count + i],
                    val(r, op_id, i))
              << "allgather_ring op " << op_id;
        }
      }
    } else if (kind < 72) {
      auto g = std::make_unique<PendingGather>();
      g->op_id = op_id;
      g->p = p;
      g->count = count;
      g->out.resize(static_cast<std::size_t>(p) * count);
      const std::vector<float> mine = make_payload(comm.rank(), op_id, count);
      g->req = comm.iallgather_ring(mine.data(), count * sizeof(float),
                                    g->out.data());
      pending.push_back(std::move(g));
    } else if (kind < 92) {
      auto rd = std::make_unique<PendingReduce>();
      rd->op_id = op_id;
      rd->p = p;
      rd->root = root;
      rd->op = rop;
      rd->count = count;
      rd->send = make_payload(comm.rank(), op_id, count);
      rd->out.resize(comm.rank() == root ? count : 0);
      rd->req = comm.ireduce(rd->send.data(),
                             comm.rank() == root ? rd->out.data() : nullptr,
                             count, rop, root, segment, {}, algo);
      pending.push_back(std::move(rd));
    } else {
      comm.barrier();
    }

    if (!pending.empty() && (must_drain || wait_draw < 20)) {
      wait_one(static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(pending.size()))));
    }
  }

  // Drain the leftovers in seeded-random (still globally consistent) order.
  while (!pending.empty()) {
    wait_one(static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(pending.size()))));
  }
  comm.barrier();
}

// Pinned seeds: CI must be deterministic, and a failure names its seed so
// the exact interleaving replays locally with
//   run_world(seed-derived ranks, [&](Comm& c){ run_program(c, prog); }).
constexpr std::uint64_t kPinnedSeeds[] = {
    0x1d,   0x2a5,  0x3f11, 0x517,  0x6b2d, 0x70f3, 0x8aa1, 0x9c45,
    0xab3,  0xbee7, 0xc0de, 0xd06f, 0xe11a, 0xf00d, 0x1234, 0xbeef};

TEST(CollectiveStress, SeededInterleavingsAcrossWorldSizes) {
  for (const std::uint64_t seed : kPinnedSeeds) {
    Program prog;
    prog.seed = seed;
    prog.ranks = 2 + static_cast<int>(seed % 7);  // 2..8
    prog.ops = 40;
    SCOPED_TRACE("stress seed 0x" + [seed] {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%llx",
                    static_cast<unsigned long long>(seed));
      return std::string(buf);
    }() + ", ranks " + std::to_string(prog.ranks));
    run_world(prog.ranks, [&](Comm& comm) { run_program(comm, prog); });
  }
}

TEST(CollectiveStress, SubCommunicatorInterleavings) {
  // The iFDK shape under stress: independent programs running concurrently
  // on a column communicator and a row communicator split from one world.
  for (const std::uint64_t seed : {std::uint64_t{0x51ab}, std::uint64_t{0x9e37},
                                   std::uint64_t{0x2b7e}}) {
    constexpr int kR = 2, kC = 3;
    SCOPED_TRACE("subcomm stress seed " + std::to_string(seed));
    run_world(kR * kC, [&](Comm& comm) {
      const int col = comm.rank() / kR;
      const int row = comm.rank() % kR;
      Comm col_comm = comm.split(col, row);
      Comm row_comm = comm.split(row, col);
      Program col_prog{seed, kR, 20, -1, -1};
      Program row_prog{seed ^ 0xffff, kC, 20, -1, -1};
      run_program(col_comm, col_prog);
      run_program(row_comm, row_prog);
    });
  }
}

TEST(CollectiveStress, MidStreamAbortsUnblockEveryRank) {
  // A rank dies partway through the program while collectives are
  // outstanding on every rank: the abort must unwind all in-flight epochs
  // (dropped handles included) and rethrow the injected error, never hang.
  // The suite TIMEOUT is the hang guard.
  for (const std::uint64_t seed :
       {std::uint64_t{0x11}, std::uint64_t{0x22}, std::uint64_t{0x33},
        std::uint64_t{0x44}, std::uint64_t{0x55}}) {
    Program prog;
    prog.seed = seed;
    prog.ranks = 2 + static_cast<int>(seed % 7);
    prog.ops = 40;
    prog.abort_op = static_cast<int>((seed * 7) % 35);
    prog.abort_rank = static_cast<int>((seed * 13) %
                                       static_cast<std::uint64_t>(prog.ranks));
    SCOPED_TRACE("abort stress seed " + std::to_string(seed) + ", ranks " +
                 std::to_string(prog.ranks) + ", abort at op " +
                 std::to_string(prog.abort_op) + " on rank " +
                 std::to_string(prog.abort_rank));
    try {
      run_world(prog.ranks, [&](Comm& comm) { run_program(comm, prog); });
      FAIL() << "expected the injected abort to surface";
    } catch (const ConfigError& e) {
      // Root cause preferred over WorldAbortedError symptoms.
      EXPECT_NE(std::string(e.what()).find("injected abort"),
                std::string::npos);
    }
  }
}

}  // namespace
}  // namespace ifdk::mpi
