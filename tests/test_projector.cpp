// Forward projector tests: trilinear sampling, agreement with the analytic
// ellipsoid projector, and the adjoint-consistency property the iterative
// solvers depend on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "geometry/cbct.h"
#include "phantom/phantom.h"
#include "projector/forward.h"

namespace ifdk::projector {
namespace {

TEST(TrilinearSample, ExactAtVoxelCenters) {
  Volume v(3, 3, 3);
  v.at(1, 1, 1) = 7.0f;
  v.at(2, 1, 0) = 3.0f;
  EXPECT_FLOAT_EQ(ForwardProjector::sample(v, 1, 1, 1), 7.0f);
  EXPECT_FLOAT_EQ(ForwardProjector::sample(v, 2, 1, 0), 3.0f);
  EXPECT_FLOAT_EQ(ForwardProjector::sample(v, 0, 0, 0), 0.0f);
}

TEST(TrilinearSample, InterpolatesMidpoints) {
  Volume v(2, 2, 2);
  v.at(0, 0, 0) = 0.0f;
  v.at(1, 0, 0) = 1.0f;
  v.at(0, 1, 0) = 2.0f;
  v.at(0, 0, 1) = 4.0f;
  EXPECT_FLOAT_EQ(ForwardProjector::sample(v, 0.5, 0, 0), 0.5f);
  EXPECT_FLOAT_EQ(ForwardProjector::sample(v, 0, 0.5, 0), 1.0f);
  EXPECT_FLOAT_EQ(ForwardProjector::sample(v, 0, 0, 0.5), 2.0f);
}

TEST(TrilinearSample, OutsideIsZero) {
  Volume v(2, 2, 2);
  v.fill(5.0f);
  EXPECT_EQ(ForwardProjector::sample(v, -0.5, 0, 0), 0.0f);
  EXPECT_EQ(ForwardProjector::sample(v, 0, 1.5, 0), 0.0f);
  EXPECT_EQ(ForwardProjector::sample(v, 0, 0, 5.0), 0.0f);
}

TEST(ForwardProjector, MatchesAnalyticProjection) {
  // Ray-marching the voxelized phantom must approximate the exact ellipsoid
  // line integrals (discretization error shrinks with voxel size; at 32^3
  // a few percent of the peak is expected).
  const auto g = geo::make_standard_geometry({{48, 48, 12}, {32, 32, 32}});
  const auto phan = phantom::shepp_logan();
  const Volume vol = phantom::voxelize(phan, g);

  ForwardProjector fp(g);
  for (std::size_t s : {std::size_t{0}, std::size_t{5}}) {
    const double beta = g.beta(s);
    const Image2D numeric = fp.project(vol, beta);
    const Image2D analytic = phantom::project(phan, g, beta);

    double peak = 0;
    for (std::size_t n = 0; n < analytic.pixels(); ++n) {
      peak = std::max(peak, std::abs(static_cast<double>(analytic.data()[n])));
    }
    ASSERT_GT(peak, 0);
    // Error budget: voxelizing the phantom onto 32^3 loses the sub-voxel
    // ellipsoid boundary (dominant term) plus trilinear smoothing; ~5% of
    // peak at this size, shrinking with resolution.
    const double err =
        rmse(numeric.data(), analytic.data(), numeric.pixels());
    EXPECT_LT(err / peak, 0.07) << "angle index " << s;
  }
}

TEST(ForwardProjector, EmptyVolumeProjectsToZero) {
  const auto g = geo::make_standard_geometry({{32, 32, 4}, {16, 16, 16}});
  Volume vol(16, 16, 16);
  ForwardProjector fp(g);
  const Image2D img = fp.project(vol, 0.7);
  for (std::size_t n = 0; n < img.pixels(); ++n) {
    EXPECT_EQ(img.data()[n], 0.0f);
  }
}

TEST(ForwardProjector, LinearInVolume) {
  // A(2x) = 2*A(x): the operator is linear, a property SART/MLEM rely on.
  const auto g = geo::make_standard_geometry({{32, 32, 4}, {16, 16, 16}});
  Volume a(16, 16, 16);
  a.at(8, 8, 8) = 1.0f;
  a.at(4, 9, 7) = 2.5f;
  Volume b(16, 16, 16);
  for (std::size_t n = 0; n < a.voxels(); ++n) {
    b.data()[n] = 2.0f * a.data()[n];
  }
  ForwardProjector fp(g);
  const Image2D pa = fp.project(a, 0.3);
  const Image2D pb = fp.project(b, 0.3);
  for (std::size_t n = 0; n < pa.pixels(); ++n) {
    EXPECT_NEAR(pb.data()[n], 2.0f * pa.data()[n], 1e-5f);
  }
}

TEST(ForwardProjector, FinerStepsConverge) {
  const auto g = geo::make_standard_geometry({{32, 32, 4}, {24, 24, 24}});
  const Volume vol = phantom::voxelize(phantom::shepp_logan(), g);
  ForwardOptions coarse;
  coarse.step_fraction = 1.0;
  ForwardOptions fine;
  fine.step_fraction = 0.1;
  const Image2D pc = ForwardProjector(g, coarse).project(vol, 0.0);
  const Image2D pf = ForwardProjector(g, fine).project(vol, 0.0);
  // Both approximate the same integral: their difference is bounded by the
  // coarse quadrature error.
  const double err = rmse(pc.data(), pf.data(), pc.pixels());
  double peak = 0;
  for (std::size_t n = 0; n < pf.pixels(); ++n) {
    peak = std::max(peak, std::abs(static_cast<double>(pf.data()[n])));
  }
  EXPECT_LT(err / peak, 0.03);
}

TEST(ForwardProjector, RejectsWrongLayoutOrDims) {
  const auto g = geo::make_standard_geometry({{32, 32, 4}, {16, 16, 16}});
  ForwardProjector fp(g);
  Volume zmajor(16, 16, 16, VolumeLayout::kZMajor);
  EXPECT_THROW(fp.project(zmajor, 0.0), ConfigError);
  Volume small(8, 8, 8);
  EXPECT_THROW(fp.project(small, 0.0), ConfigError);
}

}  // namespace
}  // namespace ifdk::projector
