// Forward projector tests: trilinear sampling (including the interp2-style
// border cases), agreement with the analytic ellipsoid projector, and the
// projector/back-projector consistency property the iterative solvers'
// normalizations depend on: A*1 and B*1 finite and positive over randomized
// geometries.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "common/math_util.h"
#include "geometry/cbct.h"
#include "iterative/iterative.h"
#include "phantom/phantom.h"
#include "projector/forward.h"

namespace ifdk::projector {
namespace {

TEST(TrilinearSample, ExactAtVoxelCenters) {
  Volume v(3, 3, 3);
  v.at(1, 1, 1) = 7.0f;
  v.at(2, 1, 0) = 3.0f;
  EXPECT_FLOAT_EQ(ForwardProjector::sample(v, 1, 1, 1), 7.0f);
  EXPECT_FLOAT_EQ(ForwardProjector::sample(v, 2, 1, 0), 3.0f);
  EXPECT_FLOAT_EQ(ForwardProjector::sample(v, 0, 0, 0), 0.0f);
}

TEST(TrilinearSample, InterpolatesMidpoints) {
  Volume v(2, 2, 2);
  v.at(0, 0, 0) = 0.0f;
  v.at(1, 0, 0) = 1.0f;
  v.at(0, 1, 0) = 2.0f;
  v.at(0, 0, 1) = 4.0f;
  EXPECT_FLOAT_EQ(ForwardProjector::sample(v, 0.5, 0, 0), 0.5f);
  EXPECT_FLOAT_EQ(ForwardProjector::sample(v, 0, 0.5, 0), 1.0f);
  EXPECT_FLOAT_EQ(ForwardProjector::sample(v, 0, 0, 0.5), 2.0f);
}

TEST(TrilinearSample, OutsideIsZero) {
  Volume v(2, 2, 2);
  v.fill(5.0f);
  EXPECT_EQ(ForwardProjector::sample(v, -0.5, 0, 0), 0.0f);
  EXPECT_EQ(ForwardProjector::sample(v, 0, 1.5, 0), 0.0f);
  EXPECT_EQ(ForwardProjector::sample(v, 0, 0, 5.0), 0.0f);
}

TEST(ForwardProjector, MatchesAnalyticProjection) {
  // Ray-marching the voxelized phantom must approximate the exact ellipsoid
  // line integrals (discretization error shrinks with voxel size; at 32^3
  // a few percent of the peak is expected).
  const auto g = geo::make_standard_geometry({{48, 48, 12}, {32, 32, 32}});
  const auto phan = phantom::shepp_logan();
  const Volume vol = phantom::voxelize(phan, g);

  ForwardProjector fp(g);
  for (std::size_t s : {std::size_t{0}, std::size_t{5}}) {
    const double beta = g.beta(s);
    const Image2D numeric = fp.project(vol, beta);
    const Image2D analytic = phantom::project(phan, g, beta);

    double peak = 0;
    for (std::size_t n = 0; n < analytic.pixels(); ++n) {
      peak = std::max(peak, std::abs(static_cast<double>(analytic.data()[n])));
    }
    ASSERT_GT(peak, 0);
    // Error budget: voxelizing the phantom onto 32^3 loses the sub-voxel
    // ellipsoid boundary (dominant term) plus trilinear smoothing; ~5% of
    // peak at this size, shrinking with resolution.
    const double err =
        rmse(numeric.data(), analytic.data(), numeric.pixels());
    EXPECT_LT(err / peak, 0.07) << "angle index " << s;
  }
}

TEST(ForwardProjector, EmptyVolumeProjectsToZero) {
  const auto g = geo::make_standard_geometry({{32, 32, 4}, {16, 16, 16}});
  Volume vol(16, 16, 16);
  ForwardProjector fp(g);
  const Image2D img = fp.project(vol, 0.7);
  for (std::size_t n = 0; n < img.pixels(); ++n) {
    EXPECT_EQ(img.data()[n], 0.0f);
  }
}

TEST(ForwardProjector, LinearInVolume) {
  // A(2x) = 2*A(x): the operator is linear, a property SART/MLEM rely on.
  const auto g = geo::make_standard_geometry({{32, 32, 4}, {16, 16, 16}});
  Volume a(16, 16, 16);
  a.at(8, 8, 8) = 1.0f;
  a.at(4, 9, 7) = 2.5f;
  Volume b(16, 16, 16);
  for (std::size_t n = 0; n < a.voxels(); ++n) {
    b.data()[n] = 2.0f * a.data()[n];
  }
  ForwardProjector fp(g);
  const Image2D pa = fp.project(a, 0.3);
  const Image2D pb = fp.project(b, 0.3);
  for (std::size_t n = 0; n < pa.pixels(); ++n) {
    EXPECT_NEAR(pb.data()[n], 2.0f * pa.data()[n], 1e-5f);
  }
}

TEST(ForwardProjector, FinerStepsConverge) {
  const auto g = geo::make_standard_geometry({{32, 32, 4}, {24, 24, 24}});
  const Volume vol = phantom::voxelize(phantom::shepp_logan(), g);
  ForwardOptions coarse;
  coarse.step_fraction = 1.0;
  ForwardOptions fine;
  fine.step_fraction = 0.1;
  const Image2D pc = ForwardProjector(g, coarse).project(vol, 0.0);
  const Image2D pf = ForwardProjector(g, fine).project(vol, 0.0);
  // Both approximate the same integral: their difference is bounded by the
  // coarse quadrature error.
  const double err = rmse(pc.data(), pf.data(), pc.pixels());
  double peak = 0;
  for (std::size_t n = 0; n < pf.pixels(); ++n) {
    peak = std::max(peak, std::abs(static_cast<double>(pf.data()[n])));
  }
  EXPECT_LT(err / peak, 0.03);
}

TEST(TrilinearSample, BorderCasesClampAndCutOff) {
  // interp2-style border semantics: the sampler is defined ON the closed
  // index box [0, n-1] (the +1 neighbor clamps, so its weight never reads
  // past the edge) and exactly zero strictly outside it.
  Volume v(3, 3, 3, VolumeLayout::kXMajor, false);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t i = 0; i < 3; ++i) {
        v.at(i, j, k) = static_cast<float>(1 + i + 10 * j + 100 * k);
      }
    }
  }
  // Exactly on the far corner: the clamped +1 neighbors carry zero weight,
  // so the corner voxel comes back exactly.
  EXPECT_FLOAT_EQ(ForwardProjector::sample(v, 2, 2, 2), v.at(2, 2, 2));
  EXPECT_FLOAT_EQ(ForwardProjector::sample(v, 2, 0, 0), v.at(2, 0, 0));
  // Just inside the far edge: interpolates the last voxel pair, no
  // out-of-bounds read, finite value between the neighbors.
  const float near_edge = ForwardProjector::sample(v, 1.75, 2, 2);
  EXPECT_TRUE(std::isfinite(near_edge));
  EXPECT_GT(near_edge, v.at(1, 2, 2));
  EXPECT_LT(near_edge, v.at(2, 2, 2));
  // Strictly outside — even by a hair — is exactly zero on every axis.
  EXPECT_EQ(ForwardProjector::sample(v, 2.001, 1, 1), 0.0f);
  EXPECT_EQ(ForwardProjector::sample(v, 1, 2.001, 1), 0.0f);
  EXPECT_EQ(ForwardProjector::sample(v, 1, 1, 2.001), 0.0f);
  EXPECT_EQ(ForwardProjector::sample(v, -0.001, 1, 1), 0.0f);
  EXPECT_EQ(ForwardProjector::sample(v, 1, -0.001, 1), 0.0f);
  EXPECT_EQ(ForwardProjector::sample(v, 1, 1, -0.001), 0.0f);
}

TEST(OperatorConsistency, ForwardAndBackProjectionOfOnesArePositiveFinite) {
  // The property the SART/MLEM normalizations stand on: the row norms A*1
  // (forward projection of an all-ones volume) and the column norms B*1
  // (unweighted back-projection of an all-ones view) must be finite and
  // non-negative everywhere, and strictly positive where a ray/voxel can
  // see the object — over RANDOMIZED geometries, not one blessed shape.
  // Detector corners are exempt from strict positivity: a corner ray can
  // legitimately miss the volume's bounding box entirely (A*1 = 0 there),
  // which is why the solvers guard the division with an epsilon.
  std::mt19937 rng(20260808);
  const auto pick = [&rng](std::size_t lo, std::size_t hi) {
    return std::uniform_int_distribution<std::size_t>(lo, hi)(rng);
  };
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t nu = 2 * pick(12, 20);  // even detector sizes
    const std::size_t nv = 2 * pick(12, 20);
    const std::size_t np = 2 * pick(2, 6);
    const geo::CbctGeometry g = geo::make_standard_geometry(
        {{nu, nv, np}, {pick(10, 20), pick(10, 20), pick(10, 20)}});
    const std::size_t s = pick(0, np - 1);
    const double beta = g.beta(s);
    const std::string context = "trial " + std::to_string(trial) + ", " +
                                std::to_string(nu) + "x" +
                                std::to_string(nv) + " det, beta index " +
                                std::to_string(s);

    // A*1: ray integrals through an all-ones volume.
    Volume ones(g.nx, g.ny, g.nz, VolumeLayout::kXMajor, false);
    ones.fill(1.0f);
    const Image2D row_norm = ForwardProjector(g).project(ones, beta);
    for (std::size_t n = 0; n < row_norm.pixels(); ++n) {
      ASSERT_TRUE(std::isfinite(row_norm.data()[n]))
          << context << ", pixel " << n;
      ASSERT_GE(row_norm.data()[n], 0.0f) << context << ", pixel " << n;
    }
    // The central detector quarter looks straight through the volume: every
    // ray there intersects it, so its norm is strictly positive.
    for (std::size_t v = 3 * nv / 8; v < 5 * nv / 8; ++v) {
      for (std::size_t u = 3 * nu / 8; u < 5 * nu / 8; ++u) {
        ASSERT_GT(row_norm.at(u, v), 0.0f)
            << context << ", central pixel (" << u << ", " << v << ")";
      }
    }

    // B*1: unweighted back-projection of an all-ones view. The standard
    // geometry's detector covers the magnified volume footprint, so EVERY
    // voxel projects inside it and its column norm is strictly positive.
    Image2D ones_view(nu, nv, false);
    ones_view.fill(1.0f);
    Volume col_norm(g.nx, g.ny, g.nz);
    iterative::backproject_unweighted(g, ones_view, beta, col_norm);
    for (std::size_t n = 0; n < col_norm.voxels(); ++n) {
      ASSERT_TRUE(std::isfinite(col_norm.data()[n]))
          << context << ", voxel " << n;
      ASSERT_GT(col_norm.data()[n], 0.0f) << context << ", voxel " << n;
    }
  }
}

TEST(ForwardProjector, RejectsWrongLayoutOrDims) {
  const auto g = geo::make_standard_geometry({{32, 32, 4}, {16, 16, 16}});
  ForwardProjector fp(g);
  Volume zmajor(16, 16, 16, VolumeLayout::kZMajor);
  EXPECT_THROW(fp.project(zmajor, 0.0), ConfigError);
  Volume small(8, 8, 8);
  EXPECT_THROW(fp.project(small, 0.0), ConfigError);
}

}  // namespace
}  // namespace ifdk::projector
