// FFT batch-backend matrix suite, modeled on test_simd_backends: the scalar
// batch backend is the bitwise reference (it replays the historical
// convolve_row arithmetic operation for operation), and every vector backend
// — avx2, avx512, neon — must match it bitwise on every row. Batched calls
// must match single-row calls bitwise, whatever the backend and whatever its
// lane count (8-row groups on avx512, 4 elsewhere), because lanes never mix.
// Matrix tests parameterize over ifdk::simd::kConcreteBackends and skip
// visibly when a backend is unavailable. Also covers the runtime dispatch
// semantics, the workspace allocation contract (the seed allocated a padded
// complex vector per filtered row), workspace alignment, and full
// filtered-projection equivalence through FilterEngine on phantom data.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/error.h"
#include "common/simd_dispatch.h"
#include "common/thread_pool.h"
#include "fft/fft.h"
#include "fft/simd/batch_kernel.h"
#include "filter/filter_engine.h"
#include "filter/ramp.h"
#include "geometry/cbct.h"
#include "phantom/phantom.h"

namespace ifdk::fft {
namespace {

std::vector<float> random_rows(std::size_t count, std::size_t nu,
                               unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::vector<float> rows(count * nu);
  for (float& x : rows) x = dist(rng);
  return rows;
}

std::vector<double> test_kernel(std::size_t half_width) {
  return filter::make_ramp_kernel(half_width, 0.7, filter::RampWindow::kHann,
                                  1.3);
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// ---------------------------------------------------------------------------
// Dispatch semantics
// ---------------------------------------------------------------------------

TEST(FftDispatch, ScalarAlwaysAvailable) {
  EXPECT_STREQ(simd::scalar_kernel().name, "scalar");
  EXPECT_EQ(&simd::select(Backend::kScalar), &simd::scalar_kernel());
  EXPECT_EQ(simd::scalar_kernel().lanes, 4u);
}

TEST(FftDispatch, AutoSelectsWidestSupportedBackend) {
  const char* expected = "scalar";
  for (const Backend b : ifdk::simd::kConcreteBackends) {
    if (simd::supported(b)) {
      expected = simd::to_string(b);
      break;
    }
  }
  EXPECT_STREQ(simd::select(Backend::kAuto).name, expected);
}

TEST(FftDispatch, LaneCountIsABackendProperty) {
  // SoA width is owned by the kernel: 8 doubles-pair lanes on avx512, 4 on
  // every other backend, never above the workspace sizing bound.
  for (const Backend b : ifdk::simd::kConcreteBackends) {
    if (!simd::supported(b)) continue;
    const simd::BatchKernel& k = simd::select(b);
    EXPECT_EQ(k.lanes, b == Backend::kAvx512 ? 8u : 4u) << k.name;
    EXPECT_LE(k.lanes, simd::kMaxLanes);
  }
}

TEST(FftDispatch, SupportImpliesCompiledAndCpu) {
  const CpuFeatures& cpu = cpu_features();
  if (simd::supported(Backend::kAvx2)) {
    EXPECT_TRUE(simd::compiled(Backend::kAvx2));
    EXPECT_TRUE(cpu.avx2);
    EXPECT_TRUE(cpu.fma);
  }
  if (simd::supported(Backend::kAvx512)) {
    EXPECT_TRUE(simd::compiled(Backend::kAvx512));
    EXPECT_TRUE(cpu.avx512f);
    EXPECT_TRUE(cpu.avx512dq);
    EXPECT_TRUE(cpu.avx512vl);
  }
  if (simd::supported(Backend::kNeon)) {
    EXPECT_TRUE(simd::compiled(Backend::kNeon));
    EXPECT_TRUE(cpu.neon);
  }
}

TEST(FftDispatch, ExplicitRequestThrowsExactlyWhenUnsupported) {
  const auto kernel = test_kernel(8);
  for (const Backend b : ifdk::simd::kConcreteBackends) {
    if (simd::supported(b)) {
      EXPECT_NO_THROW(RowConvolver(64, kernel, b)) << simd::to_string(b);
    } else {
      EXPECT_THROW(RowConvolver(64, kernel, b), ConfigError)
          << simd::to_string(b);
    }
  }
}

TEST(FftDispatch, BackendNameReportsResolvedKernel) {
  const auto kernel = test_kernel(8);
  EXPECT_STREQ(RowConvolver(64, kernel, Backend::kScalar).backend_name(),
               "scalar");
  EXPECT_STREQ(RowConvolver(64, kernel).backend_name(),
               simd::select(Backend::kAuto).name);
}

TEST(FftDispatch, ToStringCoversAllBackends) {
  EXPECT_STREQ(simd::to_string(Backend::kAuto), "auto");
  EXPECT_STREQ(simd::to_string(Backend::kScalar), "scalar");
  EXPECT_STREQ(simd::to_string(Backend::kAvx2), "avx2");
  EXPECT_STREQ(simd::to_string(Backend::kAvx512), "avx512");
  EXPECT_STREQ(simd::to_string(Backend::kNeon), "neon");
}

// ---------------------------------------------------------------------------
// Workspace allocation contract
// ---------------------------------------------------------------------------

TEST(FftWorkspace, AllocatesOnceAcrossManyBatches) {
  const RowConvolver conv(97, test_kernel(17), Backend::kScalar);
  Workspace ws;
  EXPECT_EQ(ws.allocations(), 0u);
  auto rows = random_rows(37, conv.row_length(), 1);
  for (int pass = 0; pass < 4; ++pass) {
    conv.convolve_rows(rows.data(), 37, ws);
    for (std::size_t r = 0; r < 37; ++r) {
      conv.convolve_row(rows.data() + r * conv.row_length(), ws);
    }
  }
  // One growth at first use; every subsequent row and batch reuses it. The
  // seed allocated a fresh padded complex vector on every convolve_row.
  EXPECT_EQ(ws.allocations(), 1u);
}

TEST(FftWorkspace, AllocatesOnceAcrossBackendSwitches) {
  // Workspaces are sized for kMaxLanes SoA planes regardless of which
  // kernel fills them, so handing one workspace to every available backend
  // at the same row length must never regrow it.
  Workspace ws;
  const auto kernel = test_kernel(17);
  auto rows = random_rows(11, 97, 7);
  for (const Backend b : ifdk::simd::kConcreteBackends) {
    if (!simd::supported(b)) continue;
    RowConvolver(97, kernel, b).convolve_rows(rows.data(), 11, ws);
  }
  EXPECT_EQ(ws.allocations(), 1u);
}

TEST(FftWorkspace, GrowsOnlyWhenCapacityIsExceeded) {
  Workspace ws;
  const RowConvolver small(32, test_kernel(8), Backend::kScalar);
  const RowConvolver large(512, test_kernel(128), Backend::kScalar);
  auto rows = random_rows(1, 512, 2);
  small.convolve_row(rows.data(), ws);
  EXPECT_EQ(ws.allocations(), 1u);
  large.convolve_row(rows.data(), ws);
  EXPECT_EQ(ws.allocations(), 2u);
  EXPECT_GE(ws.capacity(), large.padded_size());
  small.convolve_row(rows.data(), ws);  // shrink never reallocates
  EXPECT_EQ(ws.allocations(), 2u);
}

TEST(FftWorkspace, PlanesAreCacheLineAligned) {
  // The SoA planes feed aligned vector loads; AlignedBuffer pins them to
  // 64 bytes, a full __m512d.
  const RowConvolver conv(97, test_kernel(17), Backend::kScalar);
  Workspace ws;
  auto rows = random_rows(4, conv.row_length(), 9);
  conv.convolve_rows(rows.data(), 4, ws);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ws.re()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ws.im()) % 64, 0u);
}

// ---------------------------------------------------------------------------
// Backend equivalence matrix: every vector backend vs the scalar reference
// ---------------------------------------------------------------------------

class FftBackendMatrix : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (!simd::supported(GetParam())) {
      GTEST_SKIP() << simd::to_string(GetParam())
                   << " backend not available on this build/CPU";
    }
  }

  Backend backend() const { return GetParam(); }
};

std::string backend_name(const ::testing::TestParamInfo<Backend>& info) {
  return simd::to_string(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, FftBackendMatrix,
                         ::testing::ValuesIn(ifdk::simd::kConcreteBackends),
                         backend_name);

// Row lengths covering odd/even Nu and padded sizes from tiny to typical.
const std::size_t kRowLengths[] = {5, 16, 33, 64, 100, 256};

TEST_P(FftBackendMatrix, BatchedMatchesSingleRowBitwise) {
  for (const std::size_t nu : kRowLengths) {
    const RowConvolver conv(nu, test_kernel(nu / 2 + 1), backend());
    // 19 rows: a partial final group for both lane widths (19 = 4*4+3 =
    // 2*8+3), so remainder lanes are covered whatever the backend.
    auto batched = random_rows(19, nu, 3);
    auto single = batched;
    conv.convolve_rows(batched.data(), 19);
    for (std::size_t r = 0; r < 19; ++r) {
      conv.convolve_row(single.data() + r * nu);
    }
    EXPECT_TRUE(bitwise_equal(batched, single)) << "nu=" << nu;
  }
}

TEST_P(FftBackendMatrix, MatchesScalarBitwise) {
  for (const std::size_t nu : kRowLengths) {
    const auto kernel = test_kernel(nu / 2 + 1);
    const RowConvolver scalar(nu, kernel, Backend::kScalar);
    const RowConvolver vec(nu, kernel, backend());
    auto a = random_rows(19, nu, 4);
    auto b = a;
    scalar.convolve_rows(a.data(), 19);
    vec.convolve_rows(b.data(), 19);
    EXPECT_TRUE(bitwise_equal(a, b)) << "nu=" << nu << " batched";

    auto c = random_rows(3, nu, 5);
    auto d = c;
    for (std::size_t r = 0; r < 3; ++r) {
      scalar.convolve_row(c.data() + r * nu);
      vec.convolve_row(d.data() + r * nu);
    }
    EXPECT_TRUE(bitwise_equal(c, d)) << "nu=" << nu << " single-row";
  }
}

TEST_P(FftBackendMatrix, PartialBatchEveryResidue) {
  // Every row count from 1 up past two 8-lane groups, so every remainder
  // shape of both lane widths (1..3 mod 4, 1..7 mod 8) hits the backend.
  const std::size_t nu = 64;
  const auto kernel = test_kernel(nu / 2 + 1);
  const RowConvolver scalar(nu, kernel, Backend::kScalar);
  const RowConvolver vec(nu, kernel, backend());
  for (std::size_t count = 1; count <= 17; ++count) {
    auto a = random_rows(count, nu, 100 + static_cast<unsigned>(count));
    auto b = a;
    scalar.convolve_rows(a.data(), count);
    vec.convolve_rows(b.data(), count);
    EXPECT_TRUE(bitwise_equal(a, b)) << "rows=" << count;
  }
}

TEST_P(FftBackendMatrix, AllWindowsBitwise) {
  const std::size_t nu = 96;
  for (const auto w :
       {filter::RampWindow::kRamLak, filter::RampWindow::kSheppLogan,
        filter::RampWindow::kCosine, filter::RampWindow::kHamming,
        filter::RampWindow::kHann}) {
    const auto kernel = filter::make_ramp_kernel(nu - 1, 0.9, w, 2.0);
    const RowConvolver scalar(nu, kernel, Backend::kScalar);
    const RowConvolver vec(nu, kernel, backend());
    auto a = random_rows(9, nu, 6);
    auto b = a;
    scalar.convolve_rows(a.data(), 9);
    vec.convolve_rows(b.data(), 9);
    EXPECT_TRUE(bitwise_equal(a, b)) << filter::to_string(w);
  }
}

// ---------------------------------------------------------------------------
// Full filtered projections through FilterEngine (phantom data)
// ---------------------------------------------------------------------------

std::vector<Image2D> phantom_projections(const geo::CbctGeometry& g) {
  return phantom::project_all(phantom::shepp_logan(), g);
}

// Odd Nv (37) forces a partial final row group in every projection for both
// lane widths (37 = 9*4+1 = 4*8+5).
geo::CbctGeometry grid_geometry() {
  auto g = geo::make_standard_geometry({{48, 37, 12}, {32, 32, 32}});
  return g;
}

void expect_projections_bitwise(const std::vector<Image2D>& a,
                                const std::vector<Image2D>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t n = 0; n < a.size(); ++n) {
    ASSERT_EQ(a[n].pixels(), b[n].pixels());
    EXPECT_EQ(std::memcmp(a[n].data(), b[n].data(),
                          a[n].pixels() * sizeof(float)),
              0)
        << "projection " << n;
  }
}

std::vector<Image2D> filter_all(const geo::CbctGeometry& g,
                                filter::FilterOptions options) {
  auto projections = phantom_projections(g);
  filter::FilterEngine engine(g, options);
  engine.apply_batch(projections);
  return projections;
}

TEST_P(FftBackendMatrix, FilteredProjectionsMatchScalarBitwise) {
  const auto g = grid_geometry();
  filter::FilterOptions scalar;
  scalar.fft_backend = Backend::kScalar;
  filter::FilterOptions vec;
  vec.fft_backend = backend();
  expect_projections_bitwise(filter_all(g, scalar), filter_all(g, vec));
}

TEST_P(FftBackendMatrix, PooledMatchesSerialScalarBitwise) {
  const auto g = grid_geometry();
  ThreadPool pool(4);
  filter::FilterOptions scalar;
  scalar.fft_backend = Backend::kScalar;
  filter::FilterOptions pooled;
  pooled.fft_backend = backend();
  pooled.pool = &pool;
  expect_projections_bitwise(filter_all(g, scalar), filter_all(g, pooled));
}

TEST(FilterBackendEquivalence, PooledMatchesSerialBitwise) {
  const auto g = grid_geometry();
  ThreadPool pool(4);
  filter::FilterOptions serial;
  serial.fft_backend = Backend::kScalar;
  filter::FilterOptions pooled = serial;
  pooled.pool = &pool;
  expect_projections_bitwise(filter_all(g, serial), filter_all(g, pooled));
}

TEST(FilterBackendEquivalence, CallerWorkspaceMatchesThreadLocalBitwise) {
  const auto g = grid_geometry();
  auto a = phantom_projections(g);
  std::vector<Image2D> b;
  for (const auto& p : a) {
    Image2D copy(p.width(), p.height(), /*zero_fill=*/false);
    std::memcpy(copy.data(), p.data(), p.pixels() * sizeof(float));
    b.push_back(std::move(copy));
  }
  filter::FilterEngine engine(g);
  Workspace ws;
  for (auto& p : a) engine.apply(p, ws);
  for (auto& p : b) engine.apply(p);
  for (std::size_t n = 0; n < a.size(); ++n) {
    EXPECT_EQ(std::memcmp(a[n].data(), b[n].data(),
                          a[n].pixels() * sizeof(float)),
              0)
        << "projection " << n;
  }
}

}  // namespace
}  // namespace ifdk::fft
