// FFT batch-backend equivalence suite, modeled on test_simd_backends: the
// scalar batch backend is the bitwise reference (it replays the historical
// convolve_row arithmetic operation for operation), the AVX2 backend must
// match it bitwise on every row — and batched calls must match single-row
// calls bitwise, whatever the backend, because lanes never mix. Also covers
// the runtime dispatch semantics, the workspace allocation contract (the
// seed allocated a padded complex vector per filtered row), and full
// filtered-projection equivalence through FilterEngine on phantom data.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <random>
#include <vector>

#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "fft/fft.h"
#include "fft/simd/batch_kernel.h"
#include "filter/filter_engine.h"
#include "filter/ramp.h"
#include "geometry/cbct.h"
#include "phantom/phantom.h"

namespace ifdk::fft {
namespace {

std::vector<float> random_rows(std::size_t count, std::size_t nu,
                               unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::vector<float> rows(count * nu);
  for (float& x : rows) x = dist(rng);
  return rows;
}

std::vector<double> test_kernel(std::size_t half_width) {
  return filter::make_ramp_kernel(half_width, 0.7, filter::RampWindow::kHann,
                                  1.3);
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// ---------------------------------------------------------------------------
// Dispatch semantics
// ---------------------------------------------------------------------------

TEST(FftDispatch, ScalarAlwaysAvailable) {
  EXPECT_STREQ(simd::scalar_kernel().name, "scalar");
  EXPECT_EQ(&simd::select(Backend::kScalar), &simd::scalar_kernel());
}

TEST(FftDispatch, AutoSelectsSupportedBackend) {
  const simd::BatchKernel& k = simd::select(Backend::kAuto);
  if (simd::avx2_supported()) {
    EXPECT_STREQ(k.name, "avx2");
  } else {
    EXPECT_STREQ(k.name, "scalar");
  }
}

TEST(FftDispatch, SupportImpliesCompiledAndCpu) {
  if (simd::avx2_supported()) {
    EXPECT_TRUE(simd::avx2_compiled());
    EXPECT_TRUE(cpu_features().avx2);
    EXPECT_TRUE(cpu_features().fma);
  }
}

TEST(FftDispatch, ExplicitAvx2ThrowsWhenUnsupported) {
  const auto kernel = test_kernel(8);
  if (simd::avx2_supported()) {
    EXPECT_NO_THROW(RowConvolver(64, kernel, Backend::kAvx2));
  } else {
    EXPECT_THROW(RowConvolver(64, kernel, Backend::kAvx2), ConfigError);
  }
}

TEST(FftDispatch, BackendNameReportsResolvedKernel) {
  const auto kernel = test_kernel(8);
  EXPECT_STREQ(RowConvolver(64, kernel, Backend::kScalar).backend_name(),
               "scalar");
  EXPECT_STREQ(RowConvolver(64, kernel).backend_name(),
               simd::avx2_supported() ? "avx2" : "scalar");
}

TEST(FftDispatch, ToStringCoversAllBackends) {
  EXPECT_STREQ(simd::to_string(Backend::kAuto), "auto");
  EXPECT_STREQ(simd::to_string(Backend::kScalar), "scalar");
  EXPECT_STREQ(simd::to_string(Backend::kAvx2), "avx2");
}

// ---------------------------------------------------------------------------
// Workspace allocation contract
// ---------------------------------------------------------------------------

TEST(FftWorkspace, AllocatesOnceAcrossManyBatches) {
  const RowConvolver conv(97, test_kernel(17), Backend::kScalar);
  Workspace ws;
  EXPECT_EQ(ws.allocations(), 0u);
  auto rows = random_rows(37, conv.row_length(), 1);
  for (int pass = 0; pass < 4; ++pass) {
    conv.convolve_rows(rows.data(), 37, ws);
    for (std::size_t r = 0; r < 37; ++r) {
      conv.convolve_row(rows.data() + r * conv.row_length(), ws);
    }
  }
  // One growth at first use; every subsequent row and batch reuses it. The
  // seed allocated a fresh padded complex vector on every convolve_row.
  EXPECT_EQ(ws.allocations(), 1u);
}

TEST(FftWorkspace, GrowsOnlyWhenCapacityIsExceeded) {
  Workspace ws;
  const RowConvolver small(32, test_kernel(8), Backend::kScalar);
  const RowConvolver large(512, test_kernel(128), Backend::kScalar);
  auto rows = random_rows(1, 512, 2);
  small.convolve_row(rows.data(), ws);
  EXPECT_EQ(ws.allocations(), 1u);
  large.convolve_row(rows.data(), ws);
  EXPECT_EQ(ws.allocations(), 2u);
  EXPECT_GE(ws.capacity(), large.padded_size());
  small.convolve_row(rows.data(), ws);  // shrink never reallocates
  EXPECT_EQ(ws.allocations(), 2u);
}

// ---------------------------------------------------------------------------
// Batched vs single-row, scalar vs AVX2 — all bitwise
// ---------------------------------------------------------------------------

// Row lengths covering odd/even Nu and padded sizes from tiny to typical.
const std::size_t kRowLengths[] = {5, 16, 33, 64, 100, 256};

TEST(FftBackendEquivalence, BatchedMatchesSingleRowBitwiseScalar) {
  for (const std::size_t nu : kRowLengths) {
    const RowConvolver conv(nu, test_kernel(nu / 2 + 1), Backend::kScalar);
    // 11 rows: two full batches plus a 3-lane partial batch.
    auto batched = random_rows(11, nu, 3);
    auto single = batched;
    conv.convolve_rows(batched.data(), 11);
    for (std::size_t r = 0; r < 11; ++r) {
      conv.convolve_row(single.data() + r * nu);
    }
    EXPECT_TRUE(bitwise_equal(batched, single)) << "nu=" << nu;
  }
}

TEST(FftBackendEquivalence, Avx2MatchesScalarBitwise) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 backend unavailable";
  for (const std::size_t nu : kRowLengths) {
    const auto kernel = test_kernel(nu / 2 + 1);
    const RowConvolver scalar(nu, kernel, Backend::kScalar);
    const RowConvolver avx2(nu, kernel, Backend::kAvx2);
    auto a = random_rows(11, nu, 4);
    auto b = a;
    scalar.convolve_rows(a.data(), 11);
    avx2.convolve_rows(b.data(), 11);
    EXPECT_TRUE(bitwise_equal(a, b)) << "nu=" << nu << " batched";

    auto c = random_rows(3, nu, 5);
    auto d = c;
    for (std::size_t r = 0; r < 3; ++r) {
      scalar.convolve_row(c.data() + r * nu);
      avx2.convolve_row(d.data() + r * nu);
    }
    EXPECT_TRUE(bitwise_equal(c, d)) << "nu=" << nu << " single-row";
  }
}

TEST(FftBackendEquivalence, AllWindowsAllBackendsBitwise) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 backend unavailable";
  const std::size_t nu = 96;
  for (const auto w :
       {filter::RampWindow::kRamLak, filter::RampWindow::kSheppLogan,
        filter::RampWindow::kCosine, filter::RampWindow::kHamming,
        filter::RampWindow::kHann}) {
    const auto kernel = filter::make_ramp_kernel(nu - 1, 0.9, w, 2.0);
    const RowConvolver scalar(nu, kernel, Backend::kScalar);
    const RowConvolver avx2(nu, kernel, Backend::kAvx2);
    auto a = random_rows(6, nu, 6);
    auto b = a;
    scalar.convolve_rows(a.data(), 6);
    avx2.convolve_rows(b.data(), 6);
    EXPECT_TRUE(bitwise_equal(a, b)) << filter::to_string(w);
  }
}

// ---------------------------------------------------------------------------
// Full filtered projections through FilterEngine (phantom data)
// ---------------------------------------------------------------------------

std::vector<Image2D> phantom_projections(const geo::CbctGeometry& g) {
  return phantom::project_all(phantom::shepp_logan(), g);
}

// Odd Nv (37) forces a partial final row batch in every projection.
geo::CbctGeometry grid_geometry() {
  auto g = geo::make_standard_geometry({{48, 37, 12}, {32, 32, 32}});
  return g;
}

void expect_projections_bitwise(const std::vector<Image2D>& a,
                                const std::vector<Image2D>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t n = 0; n < a.size(); ++n) {
    ASSERT_EQ(a[n].pixels(), b[n].pixels());
    EXPECT_EQ(std::memcmp(a[n].data(), b[n].data(),
                          a[n].pixels() * sizeof(float)),
              0)
        << "projection " << n;
  }
}

std::vector<Image2D> filter_all(const geo::CbctGeometry& g,
                                filter::FilterOptions options) {
  auto projections = phantom_projections(g);
  filter::FilterEngine engine(g, options);
  engine.apply_batch(projections);
  return projections;
}

TEST(FilterBackendEquivalence, Avx2ProjectionsMatchScalarBitwise) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 backend unavailable";
  const auto g = grid_geometry();
  filter::FilterOptions scalar;
  scalar.fft_backend = Backend::kScalar;
  filter::FilterOptions avx2;
  avx2.fft_backend = Backend::kAvx2;
  expect_projections_bitwise(filter_all(g, scalar), filter_all(g, avx2));
}

TEST(FilterBackendEquivalence, PooledMatchesSerialBitwise) {
  const auto g = grid_geometry();
  ThreadPool pool(4);
  filter::FilterOptions serial;
  serial.fft_backend = Backend::kScalar;
  filter::FilterOptions pooled = serial;
  pooled.pool = &pool;
  expect_projections_bitwise(filter_all(g, serial), filter_all(g, pooled));
}

TEST(FilterBackendEquivalence, PooledAvx2MatchesSerialScalarBitwise) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "AVX2 backend unavailable";
  const auto g = grid_geometry();
  ThreadPool pool(4);
  filter::FilterOptions scalar;
  scalar.fft_backend = Backend::kScalar;
  filter::FilterOptions pooled_avx2;
  pooled_avx2.fft_backend = Backend::kAvx2;
  pooled_avx2.pool = &pool;
  expect_projections_bitwise(filter_all(g, scalar),
                             filter_all(g, pooled_avx2));
}

TEST(FilterBackendEquivalence, CallerWorkspaceMatchesThreadLocalBitwise) {
  const auto g = grid_geometry();
  auto a = phantom_projections(g);
  std::vector<Image2D> b;
  for (const auto& p : a) {
    Image2D copy(p.width(), p.height(), /*zero_fill=*/false);
    std::memcpy(copy.data(), p.data(), p.pixels() * sizeof(float));
    b.push_back(std::move(copy));
  }
  filter::FilterEngine engine(g);
  Workspace ws;
  for (auto& p : a) engine.apply(p, ws);
  for (auto& p : b) engine.apply(p);
  for (std::size_t n = 0; n < a.size(); ++n) {
    EXPECT_EQ(std::memcmp(a[n].data(), b[n].data(),
                          a[n].pixels() * sizeof(float)),
              0)
        << "projection " << n;
  }
}

}  // namespace
}  // namespace ifdk::fft
