// Unit tests for the common substrate: aligned buffers, circular buffer,
// thread pool, RNG, math helpers, CLI parser, and table printer.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/aligned.h"
#include "common/circular_buffer.h"
#include "common/cli.h"
#include "common/image.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/volume.h"

namespace ifdk {
namespace {

TEST(AlignedBuffer, AllocatesCacheLineAligned) {
  // The SIMD layers assume 64-byte buffers (a full __m512 / __m512d); pin
  // the constant itself so a future retune can't silently under-align them.
  static_assert(kCacheLineBytes == 64);
  AlignedBuffer<float> buf(1000);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes, 0u);
}

TEST(AlignedBuffer, OddSizesStayCacheLineAligned) {
  // Sizes that are not multiples of a line still round up to aligned
  // storage, whatever the element type.
  for (const std::size_t count : {1u, 3u, 17u, 63u, 65u}) {
    AlignedBuffer<float> f(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f.data()) % 64, 0u) << count;
    AlignedBuffer<double> d(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % 64, 0u) << count;
  }
}

TEST(AlignedBuffer, ZeroFillWorks) {
  AlignedBuffer<float> buf(257, /*zero_fill=*/true);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0f);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(10);
  a[3] = 42;
  int* raw = a.data();
  AlignedBuffer<int> b = std::move(a);
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(b[3], 42);
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, EmptyBufferIsSafe) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(CircularBuffer, FifoOrder) {
  CircularBuffer<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 4; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(CircularBuffer, TryPushFailsWhenFull) {
  CircularBuffer<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(CircularBuffer, CloseDrainsThenSignalsEnd) {
  CircularBuffer<int> q(8);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.push(3));
}

TEST(CircularBuffer, ProducerConsumerStress) {
  // A bounded queue between one producer and one consumer must deliver every
  // item exactly once, in order — the property the iFDK pipeline relies on.
  constexpr int kItems = 20000;
  CircularBuffer<int> q(16);
  std::vector<int> received;
  std::thread consumer([&] {
    while (auto v = q.pop()) received.push_back(*v);
  });
  for (int i = 0; i < kItems; ++i) q.push(i);
  q.close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i);
}

TEST(CircularBuffer, BlockingPushUnblocksOnPop) {
  CircularBuffer<int> q(1);
  q.push(0);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(1);
    pushed = true;
  });
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 0);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(MathUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(MathUtil, DivCeilAndRoundUp) {
  EXPECT_EQ(div_ceil(10, 3), 4u);
  EXPECT_EQ(div_ceil(9, 3), 3u);
  EXPECT_EQ(round_up(10, 4), 12u);
  EXPECT_EQ(round_up(12, 4), 12u);
}

TEST(MathUtil, GupsDefinition) {
  // Paper Section 2.3: GUPS = Nx*Ny*Nz*Np / (T * 2^30). A 1024^3 volume from
  // 1024 projections in 1 second is exactly 1024 GUPS.
  EXPECT_DOUBLE_EQ(gups(1024, 1024, 1024, 1024, 1.0), 1024.0);
  EXPECT_DOUBLE_EQ(gups(1024, 1024, 1024, 1024, 2.0), 512.0);
  EXPECT_EQ(gups(1024, 1024, 1024, 1024, 0.0), 0.0);
}

TEST(MathUtil, Rmse) {
  const float a[4] = {0, 0, 0, 0};
  const float b[4] = {1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(rmse(a, b, 4), 1.0);
  EXPECT_DOUBLE_EQ(rmse(a, a, 4), 0.0);
}

TEST(Cli, ParsesKeyValueForms) {
  CliParser cli("prog", "test");
  cli.option("size", "128", "problem size")
      .option("verbose", "false", "enable verbose output");
  const char* argv[] = {"prog", "--size=256", "--verbose=true", "input.raw"};
  cli.parse(4, argv);
  EXPECT_EQ(cli.get_int("size"), 256);
  EXPECT_TRUE(cli.get_bool("verbose"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.raw");
}

TEST(Cli, DefaultsApply) {
  CliParser cli("prog", "test");
  cli.option("np", "64", "projections");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.get_int("np"), 64);
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(cli.parse(2, argv), ConfigError);
}

TEST(TextTable, RendersAlignedWithNa) {
  TextTable t({"gpus", "time(s)", "reduce(s)"});
  t.row().add(static_cast<std::int64_t>(32)).add(70.2, 1).add(
      std::nan(""), 1);
  t.row().add(static_cast<std::int64_t>(64)).add(35.6, 1).add(5.0, 1);
  const std::string s = t.str();
  EXPECT_NE(s.find("N/A"), std::string::npos);
  EXPECT_NE(s.find("70.2"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(StageTimer, AccumulatesAndMerges) {
  StageTimer a;
  a.add("bp", 1.5);
  a.add("bp", 0.5);
  StageTimer b;
  b.add("bp", 1.0);
  b.add("flt", 2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get("bp"), 3.0);
  EXPECT_DOUBLE_EQ(a.get("flt"), 2.0);
  EXPECT_DOUBLE_EQ(a.get("missing"), 0.0);
}

TEST(StageTimer, SetMaxKeepsTheLargerValue) {
  StageTimer t;
  t.set_max("bp", 2.0);
  EXPECT_DOUBLE_EQ(t.get("bp"), 2.0);
  t.set_max("bp", 1.0);  // smaller: no-op
  EXPECT_DOUBLE_EQ(t.get("bp"), 2.0);
  t.set_max("bp", 3.5);
  EXPECT_DOUBLE_EQ(t.get("bp"), 3.5);
  t.set_max("new", 0.25);  // creates the stage
  EXPECT_DOUBLE_EQ(t.get("new"), 0.25);
}

TEST(StageTimer, MaxMergeIsPerStageCriticalPath) {
  // The rank-stats merge of the distributed framework: each stage reports
  // the slowest rank, independently per stage.
  StageTimer out;
  StageTimer rank0;
  rank0.add("load", 1.0);
  rank0.add("bp", 5.0);
  StageTimer rank1;
  rank1.add("load", 3.0);
  rank1.add("bp", 2.0);
  rank1.add("reduce", 0.5);
  out.max_merge(rank0);
  out.max_merge(rank1);
  EXPECT_DOUBLE_EQ(out.get("load"), 3.0);    // rank1 was slower
  EXPECT_DOUBLE_EQ(out.get("bp"), 5.0);      // rank0 was slower
  EXPECT_DOUBLE_EQ(out.get("reduce"), 0.5);  // only rank1 has it
  // Merging the same timers again changes nothing (idempotent).
  out.max_merge(rank0);
  out.max_merge(rank1);
  EXPECT_DOUBLE_EQ(out.get("load"), 3.0);
  EXPECT_DOUBLE_EQ(out.get("bp"), 5.0);
}

TEST(Image2D, TransposeRoundTrip) {
  Image2D img(5, 3);
  for (std::size_t v = 0; v < 3; ++v) {
    for (std::size_t u = 0; u < 5; ++u) {
      img.at(u, v) = static_cast<float>(10 * v + u);
    }
  }
  const Image2D t = img.transposed();
  EXPECT_EQ(t.width(), 3u);
  EXPECT_EQ(t.height(), 5u);
  for (std::size_t v = 0; v < 3; ++v) {
    for (std::size_t u = 0; u < 5; ++u) {
      EXPECT_EQ(t.at(v, u), img.at(u, v));
    }
  }
  const Image2D rt = t.transposed();
  for (std::size_t v = 0; v < 3; ++v) {
    for (std::size_t u = 0; u < 5; ++u) {
      EXPECT_EQ(rt.at(u, v), img.at(u, v));
    }
  }
}

TEST(Volume, LayoutIndexing) {
  Volume x(4, 3, 2, VolumeLayout::kXMajor);
  Volume z(4, 3, 2, VolumeLayout::kZMajor);
  // X-major: i contiguous. Z-major: k contiguous.
  EXPECT_EQ(x.index(1, 0, 0) - x.index(0, 0, 0), 1u);
  EXPECT_EQ(z.index(0, 0, 1) - z.index(0, 0, 0), 1u);
}

TEST(Volume, ReshapePreservesValues) {
  Volume v(3, 4, 5, VolumeLayout::kZMajor);
  float n = 0;
  for (std::size_t k = 0; k < 5; ++k) {
    for (std::size_t j = 0; j < 4; ++j) {
      for (std::size_t i = 0; i < 3; ++i) v.at(i, j, k) = n++;
    }
  }
  const Volume x = v.reshaped(VolumeLayout::kXMajor);
  for (std::size_t k = 0; k < 5; ++k) {
    for (std::size_t j = 0; j < 4; ++j) {
      for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(x.at(i, j, k), v.at(i, j, k));
      }
    }
  }
  // X-major slices are contiguous Nx*Ny planes.
  EXPECT_EQ(x.slice(1) - x.slice(0),
            static_cast<std::ptrdiff_t>(x.nx() * x.ny()));
}

}  // namespace
}  // namespace ifdk
