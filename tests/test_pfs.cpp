// PFS model tests: object-store semantics, concurrent access, the
// shared-aggregate-bandwidth cost model, and striping accounting.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "pfs/async_writer.h"
#include "pfs/pfs.h"

namespace ifdk::pfs {
namespace {

TEST(Pfs, WriteReadRoundTrip) {
  ParallelFileSystem fs;
  std::vector<float> data{1.5f, -2.5f, 3.25f};
  fs.write_object("proj/0", data.data(), data.size() * sizeof(float));
  ASSERT_TRUE(fs.exists("proj/0"));
  EXPECT_EQ(fs.object_size("proj/0"), data.size() * sizeof(float));

  std::vector<float> back(3, 0.0f);
  fs.read_object("proj/0", back.data(), back.size() * sizeof(float));
  EXPECT_EQ(back, data);
}

TEST(Pfs, MissingObjectThrows) {
  ParallelFileSystem fs;
  char buf[4];
  EXPECT_THROW(fs.read_object("nope", buf, 4), IoError);
  EXPECT_THROW(fs.object_size("nope"), IoError);
  EXPECT_FALSE(fs.exists("nope"));
}

TEST(Pfs, SizeMismatchThrows) {
  ParallelFileSystem fs;
  const int value = 7;
  fs.write_object("x", &value, sizeof(value));
  char buf[8];
  EXPECT_THROW(fs.read_object("x", buf, 8), IoError);
}

TEST(Pfs, OverwriteAndRemove) {
  ParallelFileSystem fs;
  const int a = 1, b = 2;
  fs.write_object("x", &a, sizeof(a));
  fs.write_object("x", &b, sizeof(b));
  int out = 0;
  fs.read_object("x", &out, sizeof(out));
  EXPECT_EQ(out, 2);
  fs.remove_object("x");
  EXPECT_FALSE(fs.exists("x"));
}

TEST(Pfs, ListAndTotalBytes) {
  ParallelFileSystem fs;
  const char data[100] = {};
  fs.write_object("vol/slice_000", data, 100);
  fs.write_object("vol/slice_001", data, 50);
  EXPECT_EQ(fs.list_objects().size(), 2u);
  EXPECT_EQ(fs.total_bytes_stored(), 150u);
}

TEST(Pfs, ConcurrentWritersAndReaders) {
  // Many ranks store projection objects simultaneously (exactly what the
  // iFDK store stage does); every object must arrive intact.
  ParallelFileSystem fs;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fs, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int payload = t * 1000 + i;
        fs.write_object("obj_" + std::to_string(t) + "_" + std::to_string(i),
                        &payload, sizeof(payload));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fs.list_objects().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  int out = 0;
  fs.read_object("obj_3_17", &out, sizeof(out));
  EXPECT_EQ(out, 3017);
}

TEST(Pfs, CostModelMatchesPaperTstore) {
  // Eq. (16) with ABCI's GPFS: storing a 4096^3 volume (256 GiB) at
  // 28.5 GB/s takes ~9.6 s (the paper's model bar prints 9.0 with GB=1e9:
  // 256e9/28.5e9 ~ 9.0).
  ParallelFileSystem fs;
  const std::uint64_t vol4k = 4096ull * 4096 * 4096 * 4;
  const double t = fs.estimate_write_seconds(vol4k);
  EXPECT_NEAR(t, static_cast<double>(vol4k) / 28.5e9, 0.01);
  // 8K volume: 2 TiB -> ~77 s, an ~8x jump (the figure 5b store bar).
  const std::uint64_t vol8k = 8192ull * 8192 * 8192 * 4;
  EXPECT_NEAR(fs.estimate_write_seconds(vol8k) / t, 8.0, 0.1);
}

TEST(Pfs, AggregateBandwidthDoesNotScaleWithRanks) {
  // The defining property of the shared PFS link (and why Tstore is flat in
  // Figs. 5a-5d): more writers do not make the store faster.
  ParallelFileSystem fs;
  const std::uint64_t bytes = 100ull << 30;
  const double t1 = fs.estimate_write_seconds(bytes, 1);
  const double t512 = fs.estimate_write_seconds(bytes, 512);
  EXPECT_NEAR(t1, t512, 1e-9);
}

TEST(Pfs, StripeAccounting) {
  PfsConfig cfg;
  cfg.stripe_bytes = 1 << 20;
  cfg.num_targets = 8;
  ParallelFileSystem fs(cfg);
  EXPECT_EQ(fs.stripes_for(0), 0u);
  EXPECT_EQ(fs.stripes_for(1), 1u);
  EXPECT_EQ(fs.stripes_for(1 << 20), 1u);
  EXPECT_EQ(fs.stripes_for((1 << 20) + 1), 2u);
  // A 4 MiB slice keeps 4 of 8 targets busy; a 64 MiB slice saturates.
  EXPECT_DOUBLE_EQ(fs.stripe_utilization(4 << 20), 0.5);
  EXPECT_DOUBLE_EQ(fs.stripe_utilization(64 << 20), 1.0);
}

TEST(AsyncWriter, WritesEverythingBeforeFinishReturns) {
  ParallelFileSystem fs;
  AsyncWriter writer(fs, /*queue_capacity=*/4);
  constexpr int kObjects = 37;  // more than the queue holds: back-pressure
  for (int i = 0; i < kObjects; ++i) {
    writer.enqueue("vol/" + std::to_string(i),
                   std::vector<float>(16, static_cast<float>(i)));
  }
  writer.finish();
  EXPECT_EQ(writer.writes_completed(), static_cast<std::size_t>(kObjects));
  for (int i = 0; i < kObjects; ++i) {
    std::vector<float> back(16);
    fs.read_object("vol/" + std::to_string(i), back.data(),
                   back.size() * sizeof(float));
    EXPECT_EQ(back[0], static_cast<float>(i));
  }
  EXPECT_GT(writer.busy_seconds(), 0.0);
}

TEST(AsyncWriter, FinishIsIdempotentAndEnqueueAfterFinishThrows) {
  ParallelFileSystem fs;
  AsyncWriter writer(fs);
  writer.enqueue("a", {1.0f});
  writer.finish();
  writer.finish();  // idempotent
  EXPECT_THROW(writer.enqueue("b", {2.0f}), Error);
}

TEST(AsyncWriter, DestructorDrainsWithoutFinish) {
  ParallelFileSystem fs;
  {
    AsyncWriter writer(fs);
    writer.enqueue("drained", {4.0f});
  }
  EXPECT_TRUE(fs.exists("drained"));
}

/// Store that fails every write: the error must come back out of finish()
/// (or a later enqueue), not vanish on the writer thread.
class AlwaysFailingFs : public ParallelFileSystem {
 public:
  void write_object(const std::string& name, const void*,
                    std::size_t) override {
    throw IoError("injected write failure: " + name);
  }
};

TEST(AsyncWriter, WriterThreadErrorSurfacesFromFinish) {
  AlwaysFailingFs fs;
  AsyncWriter writer(fs);
  writer.enqueue("x", {1.0f});
  EXPECT_THROW(writer.finish(), IoError);
  EXPECT_EQ(writer.writes_completed(), 0u);
}

/// Store that fails writes whose names carry a given prefix; everything
/// else succeeds — the per-volume fault the multiplexed streams isolate.
class PrefixFailingFs : public ParallelFileSystem {
 public:
  explicit PrefixFailingFs(std::string prefix) : prefix_(std::move(prefix)) {}

  void write_object(const std::string& name, const void* data,
                    std::size_t bytes) override {
    if (name.rfind(prefix_, 0) == 0) {
      throw IoError("injected write failure: " + name);
    }
    ParallelFileSystem::write_object(name, data, bytes);
  }

 private:
  std::string prefix_;
};

TEST(AsyncWriter, StreamsMultiplexAndIsolateErrors) {
  // Two volumes share one writer thread; all of "bad"'s writes fail. The
  // failure must surface from bad's finish_stream only — good's stream
  // keeps writing through and after the failure.
  PrefixFailingFs fs("bad/");
  AsyncWriter writer(fs, /*queue_capacity=*/2);
  const AsyncWriter::StreamId good = writer.open_stream();
  const AsyncWriter::StreamId bad = writer.open_stream();

  EXPECT_TRUE(writer.enqueue(good, "good/0", {1.0f}));
  writer.enqueue(bad, "bad/0", {2.0f});  // poisons the bad stream
  // Interleave more work on both streams: the poisoned stream eventually
  // refuses (returns false), the good one never does.
  bool bad_refused = false;
  for (int i = 1; i < 20; ++i) {
    EXPECT_TRUE(writer.enqueue(good, "good/" + std::to_string(i),
                               {static_cast<float>(i)}));
    if (!writer.enqueue(bad, "bad/" + std::to_string(i),
                        {static_cast<float>(i)})) {
      bad_refused = true;
    }
  }
  EXPECT_TRUE(bad_refused);

  EXPECT_THROW(writer.finish_stream(bad), IoError);
  writer.finish_stream(bad);  // error already claimed: second call is clean
  writer.finish_stream(good);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(fs.exists("good/" + std::to_string(i))) << i;
    EXPECT_FALSE(fs.exists("bad/" + std::to_string(i))) << i;
  }
  writer.finish();  // no unclaimed errors remain
}

TEST(AsyncWriter, FinishStreamWaitsForItsWrites) {
  ParallelFileSystem fs;
  AsyncWriter writer(fs, /*queue_capacity=*/2);
  const AsyncWriter::StreamId a = writer.open_stream();
  const AsyncWriter::StreamId b = writer.open_stream();
  for (int i = 0; i < 8; ++i) {
    writer.enqueue(a, "a/" + std::to_string(i), {0.5f});
    writer.enqueue(b, "b/" + std::to_string(i), {1.5f});
  }
  writer.finish_stream(a);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(fs.exists("a/" + std::to_string(i))) << i;
  }
  // Stream b stays usable after a's finish.
  writer.enqueue(b, "b/late", {2.5f});
  writer.finish_stream(b);
  EXPECT_TRUE(fs.exists("b/late"));
  writer.finish();
}

TEST(AsyncWriter, UnclaimedStreamErrorSurfacesFromFinish) {
  PrefixFailingFs fs("bad/");
  AsyncWriter writer(fs);
  const AsyncWriter::StreamId bad = writer.open_stream();
  writer.enqueue(bad, "bad/x", {1.0f});
  // No finish_stream(bad): the error must still come out of finish().
  EXPECT_THROW(writer.finish(), IoError);
}

TEST(AsyncWriter, OpenStreamAfterFinishThrows) {
  ParallelFileSystem fs;
  AsyncWriter writer(fs);
  writer.finish();
  EXPECT_THROW(writer.open_stream(), Error);
}

TEST(AsyncWriter, WriterThreadErrorSurfacesFromBlockedEnqueue) {
  // After the writer dies, the queue closes; a producer pushing into it must
  // get the root-cause IoError instead of blocking forever.
  AlwaysFailingFs fs;
  AsyncWriter writer(fs, /*queue_capacity=*/1);
  EXPECT_THROW(
      {
        for (int i = 0; i < 1000; ++i) {
          std::string name = "x";  // avoids a gcc-12 -Wrestrict false
          name += std::to_string(i);  // positive on operator+(char*, &&)
          writer.enqueue(std::move(name), std::vector<float>(1024, 0.0f));
        }
      },
      IoError);
}

}  // namespace
}  // namespace ifdk::pfs
