// Streaming-4DCT pipeline tests: run_streaming(N volumes) must be
// bitwise-identical to N sequential run_distributed calls on every tested
// grid shape, volume count, reduce fan-in, and worker mode — plus the
// failure-semantics contract: a PFS write error on volume v fails only that
// volume, while a rank abort mid-stream unwinds every in-flight collective
// epoch without hangs (guarded by the suite's ctest TIMEOUT).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/math_util.h"
#include "ifdk/framework.h"
#include "phantom/phantom.h"

namespace ifdk {
namespace {

/// One respiratory phase of a moving-lesion phantom: every temporal frame
/// projects a *different* object, so a streaming bug that crosses volume
/// boundaries (stale slab, swapped round, misrouted slice) cannot cancel out.
phantom::Phantom frame_phantom(double phase) {
  phantom::Phantom p;
  phantom::Ellipsoid body;
  body.semi_axes = {0.8, 0.7, 0.85};
  body.density = 0.4;
  p.ellipsoids.push_back(body);

  phantom::Ellipsoid lesion;
  lesion.center = {0.25, 0.0, 0.3 * std::sin(2.0 * kPi * phase)};
  lesion.semi_axes = {0.15, 0.15, 0.2};
  lesion.density = 0.7;
  p.ellipsoids.push_back(lesion);
  return p;
}

struct StreamScene {
  geo::CbctGeometry g;
  std::vector<std::vector<Image2D>> frames;  ///< per-volume projections
  std::vector<JobSpec> volumes;         ///< per-volume I/O prefixes
};

StreamScene make_stream_scene(std::size_t n_volumes) {
  StreamScene s{geo::make_standard_geometry({{32, 32, 16}, {12, 12, 12}}),
                {},
                {}};
  for (std::size_t v = 0; v < n_volumes; ++v) {
    const double phase =
        static_cast<double>(v) / static_cast<double>(n_volumes);
    s.frames.push_back(phantom::project_all(frame_phantom(phase), s.g));
    s.volumes.push_back(JobSpec{"in" + std::to_string(v) + "/",
                                     "out" + std::to_string(v) + "/slice_",
                                     {}});
  }
  return s;
}

void stage_all(pfs::ParallelFileSystem& fs, const StreamScene& s) {
  for (std::size_t v = 0; v < s.frames.size(); ++v) {
    stage_projections(fs, s.volumes[v].input_prefix, s.frames[v]);
  }
}

/// The sequential reference: one run_distributed per volume, same options.
void run_sequential(const StreamScene& s, pfs::ParallelFileSystem& fs,
                    IfdkOptions options) {
  for (const JobSpec& vol : s.volumes) {
    options.input_prefix = vol.input_prefix;
    options.output_prefix = vol.output_prefix;
    run_distributed(s.g, fs, options);
  }
}

void expect_bitwise_equal_volume(const pfs::ParallelFileSystem& a,
                                 const pfs::ParallelFileSystem& b,
                                 const StreamScene& s, std::size_t v,
                                 const std::string& context) {
  const Volume va = load_volume(a, s.volumes[v].output_prefix, s.g.vol_dims());
  const Volume vb = load_volume(b, s.volumes[v].output_prefix, s.g.vol_dims());
  for (std::size_t n = 0; n < va.voxels(); ++n) {
    ASSERT_EQ(va.data()[n], vb.data()[n])
        << context << ", volume " << v << ", voxel " << n;
  }
}

struct GridCase {
  int ranks;
  int rows;
};

class StreamingEquivalence : public ::testing::TestWithParam<GridCase> {};

TEST_P(StreamingEquivalence, BitwiseMatchesSequentialRuns) {
  // The tentpole invariant, swept over volume count and reduce fan-in: the
  // streamed time series is bit-for-bit the same as reconstructing each
  // frame in its own world.
  const auto [ranks, rows] = GetParam();
  for (const std::size_t n_volumes : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
    const StreamScene s = make_stream_scene(n_volumes);
    for (const ReduceFanIn fan_in :
         {ReduceFanIn::kTree, ReduceFanIn::kLinear}) {
      IfdkOptions opts;
      opts.ranks = ranks;
      opts.rows = rows;
      opts.reduce_fan_in = fan_in;

      pfs::ParallelFileSystem fs_seq;
      stage_all(fs_seq, s);
      run_sequential(s, fs_seq, opts);

      pfs::ParallelFileSystem fs_stream;
      stage_all(fs_stream, s);
      const StreamingStats stats = run_streaming(s.g, fs_stream, opts,
                                                 s.volumes);
      EXPECT_EQ(stats.volumes, static_cast<int>(n_volumes));
      EXPECT_EQ(stats.grid.rows, rows);
      for (const std::string& err : stats.volume_errors) {
        EXPECT_TRUE(err.empty()) << err;
      }

      const std::string context =
          "grid " + std::to_string(rows) + "x" +
          std::to_string(ranks / rows) + ", " + std::to_string(n_volumes) +
          " volumes, " +
          (fan_in == ReduceFanIn::kTree ? "tree" : "linear") + " fan-in";
      for (std::size_t v = 0; v < n_volumes; ++v) {
        expect_bitwise_equal_volume(fs_seq, fs_stream, s, v, context);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, StreamingEquivalence,
    ::testing::Values(GridCase{1, 1},   // degenerate single rank
                      GridCase{2, 2},   // R=2, C=1: gather, no reduce
                      GridCase{2, 1},   // R=1, C=2: reduce, no gather
                      GridCase{4, 2})); // R=2, C=2: both collectives

TEST(Streaming, DedicatedFilterThreadMatchesFusedWorker) {
  // Both worker modes (fused filter+gather via irecv vs the dedicated
  // Filtering-thread) must produce identical bits.
  const StreamScene s = make_stream_scene(2);
  for (const ReduceFanIn fan_in : {ReduceFanIn::kTree, ReduceFanIn::kLinear}) {
    IfdkOptions opts;
    opts.ranks = 4;
    opts.rows = 2;
    opts.reduce_fan_in = fan_in;

    opts.fuse_filter_gather = true;
    pfs::ParallelFileSystem fs_fused;
    stage_all(fs_fused, s);
    const StreamingStats fused = run_streaming(s.g, fs_fused, opts, s.volumes);
    EXPECT_TRUE(fused.fused_filter_gather);

    opts.fuse_filter_gather = false;
    pfs::ParallelFileSystem fs_threaded;
    stage_all(fs_threaded, s);
    const StreamingStats threaded =
        run_streaming(s.g, fs_threaded, opts, s.volumes);
    EXPECT_FALSE(threaded.fused_filter_gather);

    for (std::size_t v = 0; v < s.volumes.size(); ++v) {
      expect_bitwise_equal_volume(fs_fused, fs_threaded, s, v,
                                  "fused vs threaded");
    }
  }
}

TEST(Streaming, SmallReduceSegmentsStreamSlicesBitExactly) {
  // Segment sizes around the slice granularity exercise the per-volume
  // slice streaming into the multiplexed writer.
  const StreamScene s = make_stream_scene(2);
  IfdkOptions reference;
  reference.ranks = 4;
  reference.rows = 2;
  pfs::ParallelFileSystem fs_seq;
  stage_all(fs_seq, s);
  run_sequential(s, fs_seq, reference);

  for (const std::size_t segment : {std::size_t{64}, std::size_t{1000}}) {
    IfdkOptions opts = reference;
    opts.reduce_segment_floats = segment;
    pfs::ParallelFileSystem fs_stream;
    stage_all(fs_stream, s);
    run_streaming(s.g, fs_stream, opts, s.volumes);
    // The reference used the default segment size: the reduce's summation
    // order (ascending rank per element) is segment-independent by design.
    for (std::size_t v = 0; v < s.volumes.size(); ++v) {
      expect_bitwise_equal_volume(fs_seq, fs_stream, s, v,
                                  "segment " + std::to_string(segment));
    }
  }
}

TEST(Streaming, StatsReportThroughputAndBusyWall) {
  const StreamScene s = make_stream_scene(3);
  pfs::ParallelFileSystem fs;
  stage_all(fs, s);
  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 2;
  const StreamingStats stats = run_streaming(s.g, fs, opts, s.volumes);
  EXPECT_EQ(stats.volumes, 3);
  EXPECT_GT(stats.wall_total, 0.0);
  EXPECT_GT(stats.volumes_per_second, 0.0);
  EXPECT_NEAR(stats.volumes_per_second, 3.0 / stats.wall_total, 1e-9);
  for (const char* stage : {"load", "filter", "allgather", "backprojection",
                            "transpose", "reduce", "store"}) {
    EXPECT_GT(stats.wall.get(stage), 0.0) << stage;
  }
  for (const char* thread :
       {"main_thread", "bp_thread", "reduce_thread", "store_thread"}) {
    const double eff = stats.overlap_efficiency.get(thread);
    EXPECT_GT(eff, 0.0) << thread;
    EXPECT_LE(eff, 1.0 + 1e-9) << thread;
  }
  // Fused mode: the dedicated filter thread does not exist.
  EXPECT_EQ(stats.overlap_efficiency.get("filter_thread"), 0.0);
}

TEST(Streaming, ZeroVolumesIsANoOp) {
  const StreamScene s = make_stream_scene(1);
  pfs::ParallelFileSystem fs;
  IfdkOptions opts;
  opts.ranks = 2;
  opts.rows = 1;
  const StreamingStats stats =
      run_streaming(s.g, fs, opts, std::span<const JobSpec>{});
  EXPECT_EQ(stats.volumes, 0);
  EXPECT_EQ(stats.wall_total, 0.0);
}

TEST(Streaming, RejectsInvalidDecompositions) {
  const StreamScene s = make_stream_scene(1);
  pfs::ParallelFileSystem fs;
  stage_all(fs, s);
  IfdkOptions opts;
  opts.ranks = 3;
  opts.rows = 2;  // 3 % 2 != 0, same contract as run_distributed
  EXPECT_THROW(run_streaming(s.g, fs, opts, s.volumes), ConfigError);
}

// ---- Mixed-geometry streaming ---------------------------------------------

/// A heterogeneous 4D-CT stream: volume v carries its own geometry (set on
/// JobSpec::geometry) and its own moving-phantom projections.
struct MixedScene {
  std::vector<geo::CbctGeometry> geoms;
  std::vector<std::vector<Image2D>> frames;
  std::vector<JobSpec> volumes;
};

MixedScene make_mixed_scene(std::span<const Problem> problems) {
  MixedScene s;
  for (std::size_t v = 0; v < problems.size(); ++v) {
    const double phase =
        static_cast<double>(v) / static_cast<double>(problems.size());
    s.geoms.push_back(geo::make_standard_geometry(problems[v]));
    s.frames.push_back(phantom::project_all(frame_phantom(phase),
                                            s.geoms.back()));
    s.volumes.push_back(JobSpec{"in" + std::to_string(v) + "/",
                                     "out" + std::to_string(v) + "/slice_",
                                     s.geoms.back()});
  }
  return s;
}

void stage_mixed(pfs::ParallelFileSystem& fs, const MixedScene& s) {
  for (std::size_t v = 0; v < s.frames.size(); ++v) {
    stage_projections(fs, s.volumes[v].input_prefix, s.frames[v]);
  }
}

/// The sequential reference: one run_distributed per volume with the
/// volume's own geometry and the same options.
void run_mixed_sequential(const MixedScene& s, pfs::ParallelFileSystem& fs,
                          IfdkOptions options) {
  for (std::size_t v = 0; v < s.volumes.size(); ++v) {
    options.input_prefix = s.volumes[v].input_prefix;
    options.output_prefix = s.volumes[v].output_prefix;
    run_distributed(s.geoms[v], fs, options);
  }
}

void expect_mixed_bitwise_equal(const pfs::ParallelFileSystem& a,
                                const pfs::ParallelFileSystem& b,
                                const MixedScene& s,
                                const std::string& context) {
  for (std::size_t v = 0; v < s.volumes.size(); ++v) {
    const VolDims dims = s.geoms[v].vol_dims();
    const Volume va = load_volume(a, s.volumes[v].output_prefix, dims);
    const Volume vb = load_volume(b, s.volumes[v].output_prefix, dims);
    for (std::size_t n = 0; n < va.voxels(); ++n) {
      ASSERT_EQ(va.data()[n], vb.data()[n])
          << context << ", volume " << v << ", voxel " << n;
    }
  }
}

/// Runs one mixed-geometry sequence streamed-vs-sequential across both
/// reduce fan-ins (and, when `sweep_worker_modes`, both worker modes).
void check_mixed_sequence(const MixedScene& s, IfdkOptions opts,
                          const std::string& name,
                          bool sweep_worker_modes = false) {
  for (const ReduceFanIn fan_in : {ReduceFanIn::kTree, ReduceFanIn::kLinear}) {
    for (const bool fuse : sweep_worker_modes
                               ? std::vector<bool>{true, false}
                               : std::vector<bool>{true}) {
      opts.reduce_fan_in = fan_in;
      opts.fuse_filter_gather = fuse;

      pfs::ParallelFileSystem fs_seq;
      stage_mixed(fs_seq, s);
      run_mixed_sequential(s, fs_seq, opts);

      pfs::ParallelFileSystem fs_stream;
      stage_mixed(fs_stream, s);
      // The run geometry argument is a fallback only: every volume carries
      // its own. Pass volume 0's to keep it valid.
      const StreamingStats stats =
          run_streaming(s.geoms[0], fs_stream, opts, s.volumes);
      ASSERT_EQ(stats.plans.size(), s.volumes.size());
      for (const std::string& err : stats.volume_errors) {
        EXPECT_TRUE(err.empty()) << err;
      }

      expect_mixed_bitwise_equal(
          fs_seq, fs_stream, s,
          name + (fan_in == ReduceFanIn::kTree ? ", tree" : ", linear") +
              (fuse ? ", fused" : ", threaded"));
    }
  }
}

TEST(MixedGeometryStreaming, AlternatingSliceCountsMatchSequential) {
  // Sequence 1: Nz alternates 12 / 8 across four frames (same grid, new
  // slab extents every epoch); both worker modes swept.
  const Problem problems[] = {{{32, 32, 16}, {12, 12, 12}},
                              {{32, 32, 16}, {12, 12, 8}},
                              {{32, 32, 16}, {12, 12, 12}},
                              {{32, 32, 16}, {12, 12, 8}}};
  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 2;
  check_mixed_sequence(make_mixed_scene(problems), opts, "alternating Nz",
                       /*sweep_worker_modes=*/true);
}

TEST(MixedGeometryStreaming, VaryingProjectionCountsMatchSequential) {
  // Sequence 2: Np alternates 16 / 8 (different round counts per epoch,
  // exercising the per-volume rounds bookkeeping in every pipeline thread).
  const Problem problems[] = {{{32, 32, 16}, {12, 12, 12}},
                              {{32, 32, 8}, {12, 12, 12}},
                              {{32, 32, 16}, {12, 12, 12}}};
  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 2;
  check_mixed_sequence(make_mixed_scene(problems), opts, "varying Np");
}

TEST(MixedGeometryStreaming, GridResplitMatchesSequential) {
  // Sequence 3: rows = 0 with a sub-volume budget tuned so the small frames
  // resolve R=1 (1x4 grid) and the large ones R=2 (2x2) — consecutive
  // epochs genuinely re-split the world and ride different communicators.
  const Problem problems[] = {{{32, 32, 16}, {12, 12, 12}},
                              {{32, 32, 16}, {12, 12, 16}},
                              {{32, 32, 16}, {12, 12, 12}},
                              {{32, 32, 16}, {12, 12, 16}}};
  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 0;
  opts.microbench.sub_volume_bytes = 8192;  // 12^3 fits once, 12*12*16 twice
  const MixedScene s = make_mixed_scene(problems);
  check_mixed_sequence(s, opts, "grid re-split",
                       /*sweep_worker_modes=*/true);

  // The sequence must actually have re-split (guards the tuning above).
  pfs::ParallelFileSystem fs;
  stage_mixed(fs, s);
  const StreamingStats stats = run_streaming(s.geoms[0], fs, opts, s.volumes);
  ASSERT_EQ(stats.plans.size(), 4u);
  EXPECT_EQ(stats.plans[0].grid.rows, 1);
  EXPECT_EQ(stats.plans[0].grid.columns, 4);
  EXPECT_EQ(stats.plans[1].grid.rows, 2);
  EXPECT_EQ(stats.plans[1].grid.columns, 2);
  EXPECT_FALSE(stats.plans[0].same_grid(stats.plans[1]));
}

TEST(MixedGeometryStreaming, ConfigErrorsNameTheOffendingVolume) {
  // A bad frame in a long series must be identifiable from the message
  // alone: the volume index and the offending values are all named.
  const StreamScene good = make_stream_scene(1);
  const auto expect_stream_error =
      [&](const std::vector<JobSpec>& volumes, const IfdkOptions& opts,
          std::initializer_list<const char*> fragments) {
        pfs::ParallelFileSystem fs;
        try {
          run_streaming(good.g, fs, opts, volumes);
          FAIL() << "expected ConfigError";
        } catch (const ConfigError& e) {
          const std::string what = e.what();
          for (const char* fragment : fragments) {
            EXPECT_NE(what.find(fragment), std::string::npos)
                << "message \"" << what << "\" lacks \"" << fragment << "\"";
          }
        }
      };

  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 2;

  // Volume 1's Nz is not divisible by 2*rows.
  std::vector<JobSpec> bad_nz = {
      JobSpec{"in0/", "out0/slice_", {}},
      JobSpec{"in1/", "out1/slice_",
                   geo::make_standard_geometry({{32, 32, 16}, {12, 12, 18}})}};
  expect_stream_error(bad_nz, opts, {"volume 1", "Nz (18)", "2*rows (4)"});

  // Volume 2's Np does not divide across the ranks.
  std::vector<JobSpec> bad_np = {
      JobSpec{"in0/", "out0/slice_", {}},
      JobSpec{"in1/", "out1/slice_", {}},
      JobSpec{"in2/", "out2/slice_",
                   geo::make_standard_geometry({{32, 32, 10}, {12, 12, 12}})}};
  expect_stream_error(bad_np, opts, {"volume 2", "Np (10)", "ranks=4"});

  // A ranks/rows mismatch fails on the first volume, by name.
  IfdkOptions bad_ranks = opts;
  bad_ranks.ranks = 3;
  expect_stream_error({JobSpec{"in0/", "out0/slice_", {}}}, bad_ranks,
                      {"volume 0", "ranks (3)", "row count R (2)"});
}

/// PFS wrapper that fails writes whose names carry the given prefix,
/// starting with the Nth such write: the fault lands on exactly one
/// volume's output stream while every other stream stays healthy.
class VolumeWriteFailFs : public pfs::ParallelFileSystem {
 public:
  VolumeWriteFailFs(std::string prefix, int fail_from)
      : prefix_(std::move(prefix)), fail_from_(fail_from) {}

  void write_object(const std::string& name, const void* data,
                    std::size_t bytes) override {
    if (name.rfind(prefix_, 0) == 0 && writes_.fetch_add(1) >= fail_from_) {
      throw IoError("injected PFS write failure: " + name);
    }
    pfs::ParallelFileSystem::write_object(name, data, bytes);
  }

 private:
  std::string prefix_;
  int fail_from_;
  std::atomic<int> writes_{0};
};

TEST(StreamingFailure, WriteErrorFailsOnlyThatVolume) {
  // A writer error on volume 1 must fail volume 1's finish and leave its
  // output incomplete — while volumes 0 and 2 stream through bit-exactly.
  const StreamScene s = make_stream_scene(3);
  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 2;
  opts.reduce_segment_floats = 256;  // several segments (and slices) per slab

  pfs::ParallelFileSystem fs_seq;
  stage_all(fs_seq, s);
  run_sequential(s, fs_seq, opts);

  VolumeWriteFailFs fs(s.volumes[1].output_prefix, /*fail_from=*/1);
  stage_all(fs, s);
  const StreamingStats stats = run_streaming(s.g, fs, opts, s.volumes);

  EXPECT_TRUE(stats.volume_errors[0].empty()) << stats.volume_errors[0];
  EXPECT_NE(stats.volume_errors[1].find("injected PFS write failure"),
            std::string::npos)
      << "volume 1 error: \"" << stats.volume_errors[1] << "\"";
  EXPECT_TRUE(stats.volume_errors[2].empty()) << stats.volume_errors[2];

  // Healthy volumes: complete and bitwise-identical to the reference.
  expect_bitwise_equal_volume(fs_seq, fs, s, 0, "write failure on volume 1");
  expect_bitwise_equal_volume(fs_seq, fs, s, 2, "write failure on volume 1");

  // Failed volume: at least one slice must be missing (no torn complete
  // volume may masquerade as a success).
  std::size_t stored = 0;
  for (std::size_t k = 0; k < s.g.nz; ++k) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%06zu", k);
    if (fs.exists(s.volumes[1].output_prefix + buf)) ++stored;
  }
  EXPECT_LT(stored, s.g.nz);
}

/// PFS wrapper that throws on the Nth projection read (across all ranks):
/// the fault hits one rank's load path mid-stream.
class FailingReadFs : public pfs::ParallelFileSystem {
 public:
  explicit FailingReadFs(int fail_at) : fail_at_(fail_at) {}

  void read_object(const std::string& name, void* data,
                   std::size_t bytes) const override {
    if (reads_.fetch_add(1) == fail_at_) {
      throw IoError("injected PFS read failure: " + name);
    }
    pfs::ParallelFileSystem::read_object(name, data, bytes);
  }

 private:
  int fail_at_;
  mutable std::atomic<int> reads_{0};
};

TEST(StreamingFailure, RankAbortMidStreamUnwindsAllEpochs) {
  // A read failure while volume 1 is in flight (volume 0's reduce epochs
  // possibly still outstanding) must abort the world and rethrow — not
  // hang any rank's worker, bp, or reduce thread. The suite's ctest TIMEOUT
  // property is the hang guard. Swept over both worker modes and fault
  // positions early/mid/late in the stream.
  const StreamScene s = make_stream_scene(3);
  const int reads_per_volume = static_cast<int>(s.g.np);
  for (const bool fuse : {true, false}) {
    for (const int fail_at :
         {0, reads_per_volume + 3, 2 * reads_per_volume + 5}) {
      FailingReadFs fs(fail_at);
      stage_all(fs, s);
      IfdkOptions opts;
      opts.ranks = 4;
      opts.rows = 2;
      opts.fuse_filter_gather = fuse;
      opts.queue_capacity = 2;  // small queues: exercises blocked producers
      EXPECT_THROW(run_streaming(s.g, fs, opts, s.volumes), Error)
          << "fuse " << fuse << ", fail_at " << fail_at;
    }
  }
}

TEST(StreamingFailure, ReadFailureSurfacesRootCause) {
  // The rethrown error must be the injected IoError, not a queue-shutdown
  // or world-abort symptom.
  const StreamScene s = make_stream_scene(2);
  FailingReadFs fs(/*fail_at=*/5);
  stage_all(fs, s);
  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 2;
  try {
    run_streaming(s.g, fs, opts, s.volumes);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("injected PFS read failure"),
              std::string::npos);
  }
}

TEST(StreamingCompression, WireOnOffBitwiseIdenticalAcrossGridSets) {
  // The wire-compression pin: streaming with IfdkOptions::compress_wire on
  // versus off must produce identical volumes (bitwise) and identical
  // StreamingStats::volume_errors across the same heterogeneous grid sets
  // the MixedGeometryStreaming equivalence tests sweep — the lossless frame
  // codec may change only the bytes on the wire, never the fold.
  struct GridSet {
    const char* name;
    std::vector<Problem> problems;
    int rows;
    std::size_t sub_volume_bytes;  ///< 0 = keep the microbench default
  };
  const GridSet sets[] = {
      {"alternating Nz",
       {{{32, 32, 16}, {12, 12, 12}}, {{32, 32, 16}, {12, 12, 8}},
        {{32, 32, 16}, {12, 12, 12}}, {{32, 32, 16}, {12, 12, 8}}},
       2, 0},
      {"varying Np",
       {{{32, 32, 16}, {12, 12, 12}}, {{32, 32, 8}, {12, 12, 12}},
        {{32, 32, 16}, {12, 12, 12}}},
       2, 0},
      {"grid re-split",
       {{{32, 32, 16}, {12, 12, 12}}, {{32, 32, 16}, {12, 12, 16}},
        {{32, 32, 16}, {12, 12, 12}}, {{32, 32, 16}, {12, 12, 16}}},
       0, 8192},
  };
  for (const GridSet& set : sets) {
    const MixedScene s = make_mixed_scene(set.problems);
    for (const ReduceFanIn fan_in :
         {ReduceFanIn::kTree, ReduceFanIn::kLinear}) {
      IfdkOptions opts;
      opts.ranks = 4;
      opts.rows = set.rows;
      if (set.sub_volume_bytes > 0) {
        opts.microbench.sub_volume_bytes = set.sub_volume_bytes;
      }
      opts.reduce_fan_in = fan_in;

      pfs::ParallelFileSystem fs_off;
      stage_mixed(fs_off, s);
      opts.compress_wire = false;
      const StreamingStats off = run_streaming(s.geoms[0], fs_off, opts,
                                               s.volumes);

      pfs::ParallelFileSystem fs_on;
      stage_mixed(fs_on, s);
      opts.compress_wire = true;
      const StreamingStats on = run_streaming(s.geoms[0], fs_on, opts,
                                              s.volumes);

      const std::string context =
          std::string(set.name) +
          (fan_in == ReduceFanIn::kTree ? ", tree" : ", linear") +
          ", wire on vs off";
      ASSERT_EQ(off.volume_errors, on.volume_errors) << context;
      expect_mixed_bitwise_equal(fs_off, fs_on, s, context);

      // The accounting must reflect what actually happened: no framed
      // traffic when off, a measured ratio when on. Full-precision partial
      // sums are mantissa noise, so these tiny volumes ride the raw-frame
      // fallback and the ratio sits just under 1 (per-frame header
      // overhead) — the lossless guarantee is the bound, not a win.
      EXPECT_EQ(off.wire_encoded_bytes, 0u) << context;
      EXPECT_GT(on.wire_raw_bytes, 0u) << context;
      EXPECT_GT(on.wire_ratio(), 0.9) << context;
      EXPECT_LE(on.wire_encoded_bytes,
                on.wire_raw_bytes + (on.wire_raw_bytes / 10))
          << context;
    }
  }
}

TEST(StreamingCompression, CompressedStoreBoundedErrorAndStats) {
  // JobSpec::compress_store stores serialized CompressedVolume slices: the
  // readback must match the raw-store run within half a quantization step,
  // and StreamingStats must record the per-volume PSNR plus a store ratio
  // above 1 (the phantom is RLE-friendly).
  const StreamScene s = make_stream_scene(2);
  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 2;

  pfs::ParallelFileSystem fs_raw;
  stage_all(fs_raw, s);
  const StreamingStats raw = run_streaming(s.g, fs_raw, opts, s.volumes);
  for (const std::string& err : raw.volume_errors) {
    EXPECT_TRUE(err.empty()) << err;
  }
  EXPECT_EQ(raw.store_raw_bytes, raw.store_stored_bytes);
  ASSERT_EQ(raw.volume_store_psnr_db.size(), 2u);
  EXPECT_TRUE(std::isinf(raw.volume_store_psnr_db[0]));  // bit-exact store

  std::vector<JobSpec> volumes = s.volumes;
  volumes[1].compress_store = true;
  volumes[1].store_bits = 12;
  pfs::ParallelFileSystem fs_cmp;
  stage_all(fs_cmp, s);
  const StreamingStats cmp = run_streaming(s.g, fs_cmp, opts, volumes);
  for (const std::string& err : cmp.volume_errors) {
    EXPECT_TRUE(err.empty()) << err;
  }

  // Volume 0 stayed raw: still bitwise-identical to the raw run.
  expect_bitwise_equal_volume(fs_raw, fs_cmp, s, 0, "compressed store");

  // Volume 1: quantized, bounded by half a step of each slice's range —
  // the whole-volume range bounds every per-slice range.
  const VolDims dims = s.g.vol_dims();
  const Volume ref = load_volume(fs_raw, s.volumes[1].output_prefix, dims);
  const Volume back = load_volume(fs_cmp, s.volumes[1].output_prefix, dims,
                                  /*compressed_store=*/true);
  float lo = ref.data()[0], hi = ref.data()[0];
  for (std::size_t n = 0; n < ref.voxels(); ++n) {
    lo = std::min(lo, ref.data()[n]);
    hi = std::max(hi, ref.data()[n]);
  }
  const float step = (hi - lo) / static_cast<float>((1u << 12) - 1);
  for (std::size_t n = 0; n < ref.voxels(); ++n) {
    ASSERT_NEAR(ref.data()[n], back.data()[n], 0.5f * step + 1e-7f)
        << "voxel " << n;
  }

  ASSERT_EQ(cmp.volume_store_psnr_db.size(), 2u);
  EXPECT_TRUE(std::isinf(cmp.volume_store_psnr_db[0]));
  EXPECT_TRUE(std::isfinite(cmp.volume_store_psnr_db[1]));
  EXPECT_GT(cmp.volume_store_psnr_db[1], 40.0);  // 12-bit quantization
  EXPECT_LT(cmp.store_stored_bytes, cmp.store_raw_bytes);
  EXPECT_GT(cmp.store_ratio(), 1.0);
}

}  // namespace
}  // namespace ifdk
