// Integration tests for the iFDK distributed framework: end-to-end
// distributed reconstruction against the single-node reference, every grid
// shape, slab-pair decomposition correctness, device-memory enforcement, and
// the staging helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <initializer_list>
#include <string>

#include "backproj/backprojector.h"
#include "common/error.h"
#include "ifdk/fdk.h"
#include "ifdk/framework.h"
#include "minimpi/minimpi.h"
#include "phantom/phantom.h"

namespace ifdk {
namespace {

struct Scene {
  geo::CbctGeometry g;
  std::vector<Image2D> projections;
  Volume reference;  // single-node FDK, X-major
};

Scene make_scene(std::size_t nu, std::size_t np, std::size_t n) {
  Scene s{geo::make_standard_geometry({{nu, nu, np}, {n, n, n}}), {}, {}};
  s.projections = phantom::project_all(phantom::shepp_logan(), s.g);
  FdkOptions opts;
  s.reference = reconstruct_fdk(s.g, s.projections, opts).volume;
  return s;
}

double relative_rmse(const Volume& a, const Volume& b) {
  double acc = 0, peak = 0;
  for (std::size_t k = 0; k < a.nz(); ++k) {
    for (std::size_t j = 0; j < a.ny(); ++j) {
      for (std::size_t i = 0; i < a.nx(); ++i) {
        const double d = a.at(i, j, k) - b.at(i, j, k);
        acc += d * d;
        peak = std::max(peak, std::abs(static_cast<double>(a.at(i, j, k))));
      }
    }
  }
  return std::sqrt(acc / static_cast<double>(a.voxels())) / peak;
}

TEST(SlabPairKernel, CoversFullVolumeWhenTiled) {
  // Back-projecting into all R slab pairs separately and stitching must
  // reproduce the full-volume kernel exactly.
  const auto g = geo::make_standard_geometry({{48, 48, 16}, {24, 24, 24}});
  const auto projections = phantom::project_all(phantom::shepp_logan(), g);
  const auto matrices = geo::make_all_projection_matrices(g);

  bp::BpConfig full_cfg;
  Volume full(g.nx, g.ny, g.nz, VolumeLayout::kZMajor);
  bp::Backprojector(g, full_cfg).accumulate(full, projections, matrices);

  constexpr std::size_t kRows = 3;
  const std::size_t h = g.nz / (2 * kRows);
  Volume stitched(g.nx, g.ny, g.nz, VolumeLayout::kZMajor);
  for (std::size_t r = 0; r < kRows; ++r) {
    bp::BpConfig cfg;
    cfg.k_begin = r * h;
    cfg.k_half = h;
    Volume slab(g.nx, g.ny, 2 * h, VolumeLayout::kZMajor);
    bp::Backprojector(g, cfg).accumulate(slab, projections, matrices);
    for (std::size_t k_local = 0; k_local < 2 * h; ++k_local) {
      const std::size_t k_global =
          k_local < h ? r * h + k_local : g.nz - (r + 1) * h + (k_local - h);
      for (std::size_t j = 0; j < g.ny; ++j) {
        for (std::size_t i = 0; i < g.nx; ++i) {
          stitched.at(i, j, k_global) = slab.at(i, j, k_local);
        }
      }
    }
  }
  for (std::size_t n = 0; n < full.voxels(); ++n) {
    ASSERT_EQ(stitched.data()[n], full.data()[n]) << "voxel " << n;
  }
}

TEST(SlabPairKernel, RejectsBadSlabConfigs) {
  const auto g = geo::make_standard_geometry({{48, 48, 8}, {16, 16, 16}});
  bp::BpConfig cfg;
  cfg.k_begin = 6;
  cfg.k_half = 4;  // 6 + 4 > nz/2 = 8
  EXPECT_THROW(bp::Backprojector(g, cfg), ConfigError);

  bp::BpConfig no_sym;
  no_sym.symmetry = false;
  no_sym.k_begin = 0;
  no_sym.k_half = 4;
  EXPECT_THROW(bp::Backprojector(g, no_sym), ConfigError);
}

class GridShapes
    : public ::testing::TestWithParam<std::pair<int, int>> {};  // ranks, rows

TEST_P(GridShapes, DistributedMatchesSingleNode) {
  const auto [ranks, rows] = GetParam();
  const Scene s = make_scene(48, 24, 12);

  pfs::ParallelFileSystem fs;
  stage_projections(fs, "proj/", s.projections);

  IfdkOptions opts;
  opts.ranks = ranks;
  opts.rows = rows;
  const IfdkStats stats = run_distributed(s.g, fs, opts);
  EXPECT_EQ(stats.grid.rows, rows);
  EXPECT_EQ(stats.grid.columns, ranks / rows);

  const Volume result = load_volume(fs, "vol/slice_", s.g.vol_dims());
  // Same arithmetic, different accumulation grouping: near-exact agreement.
  EXPECT_LT(relative_rmse(s.reference, result), 1e-6)
      << "grid " << rows << "x" << ranks / rows;
}

INSTANTIATE_TEST_SUITE_P(
    AllGrids, GridShapes,
    ::testing::Values(std::pair<int, int>{1, 1},   // single rank
                      std::pair<int, int>{2, 2},   // R=2, C=1 (no reduce)
                      std::pair<int, int>{2, 1},   // R=1, C=2
                      std::pair<int, int>{4, 2},   // R=2, C=2
                      std::pair<int, int>{6, 3},   // R=3, C=2
                      std::pair<int, int>{12, 6},  // R=6, C=2 minimal slabs
                      std::pair<int, int>{8, 2})); // R=2, C=4

class OverlapEquivalence
    : public ::testing::TestWithParam<std::pair<int, int>> {};  // ranks, rows

TEST_P(OverlapEquivalence, OverlappedVolumeIsBitwiseIdenticalToBlocking) {
  // The tentpole invariant: the overlapped pipeline (nonblocking ring
  // AllGather double-buffered across rounds, segmented pipelined row
  // ireduce, async PFS store) must reproduce the blocking path bit for bit.
  const auto [ranks, rows] = GetParam();
  const Scene s = make_scene(48, 24, 12);

  pfs::ParallelFileSystem fs_blocking;
  stage_projections(fs_blocking, "proj/", s.projections);
  IfdkOptions blocking;
  blocking.ranks = ranks;
  blocking.rows = rows;
  blocking.overlap = false;
  run_distributed(s.g, fs_blocking, blocking);
  const Volume ref = load_volume(fs_blocking, "vol/slice_", s.g.vol_dims());

  // Exercise segment sizes around the slice granularity: smaller than a
  // slice, non-divisible, and the default (larger than the whole slab).
  for (const std::size_t segment :
       {std::size_t{64}, std::size_t{1000},
        mpi::Comm::kDefaultReduceSegment}) {
    pfs::ParallelFileSystem fs;
    stage_projections(fs, "proj/", s.projections);
    IfdkOptions overlapped;
    overlapped.ranks = ranks;
    overlapped.rows = rows;
    overlapped.overlap = true;
    overlapped.reduce_segment_floats = segment;
    const IfdkStats stats = run_distributed(s.g, fs, overlapped);
    EXPECT_TRUE(stats.overlapped);
    const Volume vol = load_volume(fs, "vol/slice_", s.g.vol_dims());
    for (std::size_t n = 0; n < ref.voxels(); ++n) {
      ASSERT_EQ(vol.data()[n], ref.data()[n])
          << "grid " << rows << "x" << ranks / rows << ", segment " << segment
          << ", voxel " << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, OverlapEquivalence,
    ::testing::Values(std::pair<int, int>{1, 1},   // degenerate single rank
                      std::pair<int, int>{2, 2},   // R=2, C=1 (no reduce)
                      std::pair<int, int>{2, 1},   // R=1, C=2 (no gather)
                      std::pair<int, int>{4, 2},   // R=2, C=2
                      std::pair<int, int>{6, 3})); // R=3, C=2

TEST(Framework, OverlapStatsExposeThreadEfficiencies) {
  const Scene s = make_scene(48, 12, 12);
  pfs::ParallelFileSystem fs;
  stage_projections(fs, "proj/", s.projections);
  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 2;
  const IfdkStats stats = run_distributed(s.g, fs, opts);
  ASSERT_TRUE(stats.overlapped);
  for (const char* thread :
       {"filter_thread", "main_thread", "bp_thread", "store_thread"}) {
    const double eff = stats.overlap_efficiency.get(thread);
    EXPECT_GT(eff, 0.0) << thread;
    EXPECT_LE(eff, 1.0 + 1e-9) << thread;
  }
}

TEST(Framework, ReconstructsPhantomAccurately) {
  // Beyond matching the reference implementation: the distributed output
  // must actually reconstruct the phantom (absolute quality check).
  const auto g = geo::make_standard_geometry({{64, 64, 96}, {32, 32, 32}});
  const auto phan = phantom::shepp_logan();
  const auto projections = phantom::project_all(phan, g);

  pfs::ParallelFileSystem fs;
  stage_projections(fs, "proj/", projections);
  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 2;
  run_distributed(g, fs, opts);
  const Volume result = load_volume(fs, "vol/slice_", g.vol_dims());

  const Volume truth = phantom::voxelize(phan, g);
  double acc = 0;
  std::size_t count = 0;
  const double c = 15.5;
  for (std::size_t k = 0; k < 32; ++k) {
    for (std::size_t j = 0; j < 32; ++j) {
      for (std::size_t i = 0; i < 32; ++i) {
        const double r = std::sqrt((i - c) * (i - c) + (j - c) * (j - c) +
                                   (k - c) * (k - c)) /
                         16.0;
        if (r < 0.5) {
          const double d = result.at(i, j, k) - truth.at(i, j, k);
          acc += d * d;
          ++count;
        }
      }
    }
  }
  EXPECT_LT(std::sqrt(acc / static_cast<double>(count)), 0.03);

  // Guard against degenerate all-zero output (which would pass the interior
  // RMSE check alone — the brain interior is nearly zero): the skull shell
  // must reconstruct as a high-density ring.
  float row_max = 0.0f;
  for (std::size_t j = 0; j < 32; ++j) {
    row_max = std::max(row_max, result.at(16, j, 16));
  }
  EXPECT_GT(row_max, 0.5f);
}

TEST(Framework, StatsExposePipelineStages) {
  const Scene s = make_scene(48, 12, 12);
  pfs::ParallelFileSystem fs;
  stage_projections(fs, "proj/", s.projections);
  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 2;
  const IfdkStats stats = run_distributed(s.g, fs, opts);
  for (const char* stage :
       {"load", "filter", "allgather", "backprojection", "reduce", "store"}) {
    EXPECT_GT(stats.wall.get(stage), 0.0) << stage;
  }
  EXPECT_GT(stats.wall_total, 0.0);
  // The modeled V100 ledger must be populated too.
  EXPECT_GT(stats.device_model.get("v_kernel"), 0.0);
  EXPECT_GT(stats.device_model.get("v_h2d"), 0.0);
  EXPECT_GT(stats.device_model.get("v_d2h"), 0.0);
}

TEST(Framework, AutoRowSelectionUsesPerfModel) {
  // With the default 8 GB sub-volume target, any toy volume selects R=1;
  // shrink the device model so R must grow.
  const Scene s = make_scene(48, 8, 12);
  pfs::ParallelFileSystem fs;
  stage_projections(fs, "proj/", s.projections);
  IfdkOptions opts;
  opts.ranks = 2;
  opts.rows = 0;  // auto
  const IfdkStats stats = run_distributed(s.g, fs, opts);
  EXPECT_EQ(stats.grid.rows, 1);
  EXPECT_EQ(stats.grid.columns, 2);
}

TEST(Framework, DeviceTooSmallThrows) {
  const Scene s = make_scene(48, 8, 12);
  pfs::ParallelFileSystem fs;
  stage_projections(fs, "proj/", s.projections);
  IfdkOptions opts;
  opts.ranks = 2;
  opts.rows = 1;
  opts.device.memory_bytes = 1024;  // cannot hold anything
  EXPECT_THROW(run_distributed(s.g, fs, opts), DeviceOutOfMemory);
}

TEST(Framework, RejectsInvalidDecompositions) {
  const Scene s = make_scene(48, 8, 12);
  pfs::ParallelFileSystem fs;
  stage_projections(fs, "proj/", s.projections);

  // Every validation error must name the offending values, so a bad run
  // script can be fixed from the message alone.
  const auto expect_config_error = [&](const IfdkOptions& opts,
                                       std::initializer_list<const char*>
                                           fragments) {
    try {
      run_distributed(s.g, fs, opts);
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
      const std::string what = e.what();
      for (const char* fragment : fragments) {
        EXPECT_NE(what.find(fragment), std::string::npos)
            << "message \"" << what << "\" lacks \"" << fragment << "\"";
      }
    }
  };

  IfdkOptions bad_ranks;
  bad_ranks.ranks = 3;
  bad_ranks.rows = 2;  // 3 % 2 != 0
  expect_config_error(bad_ranks, {"ranks (3)", "row count R (2)"});

  IfdkOptions bad_np;
  bad_np.ranks = 16;  // 8 projections across 16 ranks
  bad_np.rows = 2;
  expect_config_error(bad_np, {"Np (8)", "ranks=16"});

  IfdkOptions bad_nz;
  bad_nz.ranks = 8;
  bad_nz.rows = 8;  // nz=12 not divisible by 2*8
  expect_config_error(bad_nz, {"Nz (12)", "2*rows (16)"});
}

TEST(Framework, MissingProjectionsSurfaceAsIoError) {
  const Scene s = make_scene(48, 8, 12);
  pfs::ParallelFileSystem fs;  // nothing staged
  IfdkOptions opts;
  opts.ranks = 2;
  opts.rows = 1;
  EXPECT_THROW(run_distributed(s.g, fs, opts), Error);
}

/// PFS wrapper that throws on the Nth read — the fault hits exactly one
/// rank's Filtering-thread mid-pipeline while every other rank is healthy.
class FailingReadFs : public pfs::ParallelFileSystem {
 public:
  explicit FailingReadFs(int fail_at) : fail_at_(fail_at) {}

  void read_object(const std::string& name, void* data,
                   std::size_t bytes) const override {
    if (reads_.fetch_add(1) == fail_at_) {
      throw IoError("injected PFS read failure: " + name);
    }
    pfs::ParallelFileSystem::read_object(name, data, bytes);
  }

 private:
  int fail_at_;
  mutable std::atomic<int> reads_{0};
};

TEST(Framework, InjectedReadFailureSurfacesAndUnblocksAllRanks) {
  // A PFS read that throws on one rank must surface as an exception from
  // run_distributed — not hang the collectives of the healthy ranks, and
  // not silently complete with a partial volume. Sweep the fault across
  // pipeline positions (first read, mid-stream, near the end).
  const Scene s = make_scene(48, 12, 12);
  for (const int fail_at : {0, 5, 11}) {
    FailingReadFs fs(fail_at);
    stage_projections(fs, "proj/", s.projections);  // writes don't count
    IfdkOptions opts;
    opts.ranks = 4;
    opts.rows = 2;
    opts.queue_capacity = 2;  // small queue: exercises producer blocking
    EXPECT_THROW(run_distributed(s.g, fs, opts), Error) << "fail_at "
                                                        << fail_at;
    // No partial volume may have been stored as a completed result: the
    // fault fired before every output slice could be written.
    std::size_t stored = 0;
    for (std::size_t k = 0; k < s.g.nz; ++k) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%06zu", k);
      if (fs.exists("vol/slice_" + std::string(buf))) ++stored;
    }
    EXPECT_LT(stored, s.g.nz) << "fail_at " << fail_at;
  }
}

TEST(Framework, InjectedReadFailureOnBlockingPath) {
  // The blocking reference pipeline must keep the same abort guarantees.
  const Scene s = make_scene(48, 12, 12);
  FailingReadFs fs(/*fail_at=*/5);
  stage_projections(fs, "proj/", s.projections);
  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 2;
  opts.overlap = false;
  EXPECT_THROW(run_distributed(s.g, fs, opts), Error);
}

/// PFS wrapper that throws on the Nth *slice* write: the fault hits the row
/// root's async writer thread while the pipelined reduce is still feeding it.
class FailingWriteFs : public pfs::ParallelFileSystem {
 public:
  explicit FailingWriteFs(int fail_at) : fail_at_(fail_at) {}

  void write_object(const std::string& name, const void* data,
                    std::size_t bytes) override {
    if (name.rfind("vol/", 0) == 0 && writes_.fetch_add(1) == fail_at_) {
      throw IoError("injected PFS write failure: " + name);
    }
    pfs::ParallelFileSystem::write_object(name, data, bytes);
  }

 private:
  int fail_at_;
  std::atomic<int> writes_{0};
};

TEST(Framework, InjectedWriteFailureSurfacesFromAsyncStore) {
  // A store failure on the async writer thread must surface from
  // run_distributed on both pipeline paths, not hang the other ranks.
  const Scene s = make_scene(48, 12, 12);
  for (const bool overlap : {true, false}) {
    for (const int fail_at : {0, 7}) {
      FailingWriteFs fs(fail_at);
      stage_projections(fs, "proj/", s.projections);
      IfdkOptions opts;
      opts.ranks = 4;
      opts.rows = 2;
      opts.overlap = overlap;
      opts.reduce_segment_floats = 256;  // several segments per slab
      EXPECT_THROW(run_distributed(s.g, fs, opts), Error)
          << "overlap " << overlap << ", fail_at " << fail_at;
    }
  }
}

TEST(Framework, InjectedReadFailureWithRingAllgather) {
  // Same fault with the ring AllGather: the neighbour-exchange steps block
  // pairwise, so the abort protocol must unblock a partially completed ring.
  const Scene s = make_scene(48, 12, 12);
  FailingReadFs fs(/*fail_at=*/3);
  stage_projections(fs, "proj/", s.projections);
  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 2;
  opts.use_ring_allgather = true;
  EXPECT_THROW(run_distributed(s.g, fs, opts), Error);
}

TEST(StagingHelpers, RoundTripVolume) {
  pfs::ParallelFileSystem fs;
  Volume vol(4, 3, 2);
  for (std::size_t n = 0; n < vol.voxels(); ++n) {
    vol.data()[n] = static_cast<float>(n) * 0.5f;
  }
  for (std::size_t k = 0; k < 2; ++k) {
    fs.write_object("out/slice_" + std::string(k == 0 ? "000000" : "000001"),
                    vol.slice(k), 4 * 3 * sizeof(float));
  }
  const Volume back = load_volume(fs, "out/slice_", {4, 3, 2});
  for (std::size_t n = 0; n < vol.voxels(); ++n) {
    EXPECT_EQ(back.data()[n], vol.data()[n]);
  }
}

}  // namespace
}  // namespace ifdk
