// Scheduler tests: the (i-block × k-slab) plan must be an exact grid
// partition of the kernel's iteration space (anything else is a data race or
// a dropped voxel), scale its task count with the pool, and respect the
// minimum slab depth that keeps the Theorem-2/3 rehoist negligible.
#include <gtest/gtest.h>

#include <vector>

#include "backproj/slab_schedule.h"

namespace ifdk::bp {
namespace {

SlabPlanParams params(std::size_t nx, std::size_t t_count,
                      std::size_t threads) {
  SlabPlanParams p;
  p.nx = nx;
  p.t_count = t_count;
  p.num_threads = threads;
  return p;
}

// Every (i, t) cell covered exactly once, and exactly one slab per column
// ends at t_count (the slab that owns the odd center plane).
void expect_exact_partition(const SlabPlanParams& p) {
  const auto tasks = plan_slab_tasks(p);
  std::vector<int> cover(p.nx * std::max<std::size_t>(1, p.t_count), 0);
  std::vector<int> end_owner(p.nx, 0);
  for (const auto& task : tasks) {
    ASSERT_LE(task.i_begin, task.i_end);
    ASSERT_LE(task.i_end, p.nx);
    ASSERT_LE(task.t_begin, task.t_end);
    ASSERT_LE(task.t_end, p.t_count);
    for (std::size_t i = task.i_begin; i < task.i_end; ++i) {
      if (task.t_end == p.t_count) ++end_owner[i];
      for (std::size_t t = task.t_begin; t < task.t_end; ++t) {
        ++cover[i * std::max<std::size_t>(1, p.t_count) + t];
      }
    }
  }
  if (p.t_count > 0) {
    for (std::size_t n = 0; n < cover.size(); ++n) {
      EXPECT_EQ(cover[n], 1) << "cell " << n;
    }
  }
  for (std::size_t i = 0; i < p.nx; ++i) {
    EXPECT_EQ(end_owner[i], 1) << "column " << i;
  }
}

TEST(SlabSchedule, ExactPartitionAcrossShapes) {
  expect_exact_partition(params(1, 1, 1));
  expect_exact_partition(params(7, 13, 3));
  expect_exact_partition(params(64, 32, 8));
  expect_exact_partition(params(256, 512, 16));
  expect_exact_partition(params(3, 1024, 48));
}

TEST(SlabSchedule, DegenerateDepthStillCoversAllColumns) {
  // t_count == 0 happens for Nz == 1 under symmetry: the kernel is only the
  // center-plane update, which hangs off the t_end == t_count tasks.
  expect_exact_partition(params(16, 0, 4));
}

TEST(SlabSchedule, EmptyVolumeYieldsNoTasks) {
  EXPECT_TRUE(plan_slab_tasks(params(0, 128, 8)).empty());
}

TEST(SlabSchedule, ScalesTaskCountWithThreads) {
  const auto few = plan_slab_tasks(params(256, 256, 2));
  const auto many = plan_slab_tasks(params(256, 256, 32));
  EXPECT_GE(many.size(), 32u);  // at least one task per worker
  EXPECT_GE(many.size(), few.size());
}

TEST(SlabSchedule, RespectsMinimumSlabDepth) {
  // Even under heavy thread pressure, slabs never get thinner than
  // min(32, t_count): balance comes from i-blocks instead.
  for (const auto& task : plan_slab_tasks(params(8, 256, 64))) {
    EXPECT_GE(task.t_end - task.t_begin, 32u);
  }
  for (const auto& task : plan_slab_tasks(params(8, 20, 64))) {
    EXPECT_EQ(task.t_end - task.t_begin, 20u);
  }
}

TEST(SlabSchedule, CacheBudgetBoundsSlabDepth) {
  SlabPlanParams p = params(4, 4096, 4);
  p.batch = 32;
  p.cache_budget_bytes = 256 * 1024;
  // 32 projections × 2 mirror streams × 64B per step → depth ≈ 63.
  for (const auto& task : plan_slab_tasks(p)) {
    EXPECT_LE(task.t_end - task.t_begin, 64u);
  }
}

}  // namespace
}  // namespace ifdk::bp
