// FFT substrate tests: transforms against a naive DFT oracle, round trips,
// Parseval, convolution identities, and the RowConvolver used by the
// filtering stage.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "fft/fft.h"
#include "filter/ramp.h"

namespace ifdk::fft {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> out(n);
  for (auto& v : out) {
    v = Complex(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  }
  return out;
}

double max_err(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto signal = random_signal(n, n);
  auto oracle = naive_dft(signal);
  forward(signal);
  EXPECT_LT(max_err(signal, oracle), 1e-8 * static_cast<double>(n))
      << "size " << n;
}

TEST_P(FftSizes, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  auto signal = random_signal(n, 17 * n + 1);
  auto copy = signal;
  forward(signal);
  inverse(signal);
  EXPECT_LT(max_err(signal, copy), 1e-10 * static_cast<double>(n));
}

// Power-of-two sizes exercise radix-2; the rest exercise Bluestein,
// including primes (13, 127) and highly composite non-pow2 (96, 100).
INSTANTIATE_TEST_SUITE_P(AllSizes, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 13, 16, 32, 64, 96, 100,
                                           127, 128, 256, 1000, 1024));

TEST(Fft, ParsevalTheorem) {
  const std::size_t n = 512;
  auto signal = random_signal(n, 99);
  double time_energy = 0;
  for (const auto& v : signal) time_energy += std::norm(v);
  forward(signal);
  double freq_energy = 0;
  for (const auto& v : signal) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-8);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<Complex> delta(64, Complex(0, 0));
  delta[0] = Complex(1, 0);
  forward(delta);
  for (const auto& v : delta) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, LinearityHolds) {
  const std::size_t n = 128;
  auto a = random_signal(n, 1);
  auto b = random_signal(n, 2);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  forward(a);
  forward(b);
  forward(sum);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(sum[i] - (2.0 * a[i] + 3.0 * b[i])), 1e-9);
  }
}

TEST(Fft, CircularConvolutionMatchesDirect) {
  const std::size_t n = 64;
  Rng rng(5);
  std::vector<double> a(n), b(n);
  for (auto& v : a) v = rng.next_double();
  for (auto& v : b) v = rng.next_double();

  auto fast = circular_convolve(a, b);

  for (std::size_t i = 0; i < n; ++i) {
    double direct = 0;
    for (std::size_t j = 0; j < n; ++j) {
      direct += a[j] * b[(i + n - j) % n];
    }
    EXPECT_NEAR(fast[i], direct, 1e-9) << "lag " << i;
  }
}

TEST(RowConvolver, IdentityKernelPreservesRow) {
  // A centered unit impulse kernel must return the row unchanged.
  std::vector<double> kernel(9, 0.0);
  kernel[4] = 1.0;
  RowConvolver conv(32, kernel);
  std::vector<float> row(32);
  for (std::size_t i = 0; i < row.size(); ++i) row[i] = static_cast<float>(i);
  auto expected = row;
  conv.convolve_row(row.data());
  for (std::size_t i = 0; i < row.size(); ++i) {
    EXPECT_NEAR(row[i], expected[i], 1e-4f);
  }
}

TEST(RowConvolver, BoxKernelSmooths) {
  std::vector<double> kernel(3, 1.0 / 3.0);
  RowConvolver conv(16, kernel);
  std::vector<float> row(16, 0.0f);
  row[8] = 3.0f;
  conv.convolve_row(row.data());
  EXPECT_NEAR(row[7], 1.0f, 1e-4f);
  EXPECT_NEAR(row[8], 1.0f, 1e-4f);
  EXPECT_NEAR(row[9], 1.0f, 1e-4f);
  EXPECT_NEAR(row[5], 0.0f, 1e-4f);
}

TEST(RowConvolver, MatchesDirectLinearConvolution) {
  Rng rng(11);
  std::vector<double> kernel(17);
  for (auto& v : kernel) v = rng.next_double() - 0.5;
  const std::size_t n = 40;
  std::vector<float> row(n);
  for (auto& v : row) v = static_cast<float>(rng.next_double());
  std::vector<float> orig(row);

  RowConvolver conv(n, kernel);
  conv.convolve_row(row.data());

  const std::ptrdiff_t center = static_cast<std::ptrdiff_t>(kernel.size() / 2);
  for (std::size_t i = 0; i < n; ++i) {
    double direct = 0;
    for (std::size_t t = 0; t < kernel.size(); ++t) {
      // Linear convolution: out[i + center] = sum_t kernel[t] * in[i + center - t]
      const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(i) + center -
                                 static_cast<std::ptrdiff_t>(t);
      if (src >= 0 && src < static_cast<std::ptrdiff_t>(n)) {
        direct += kernel[t] * orig[static_cast<std::size_t>(src)];
      }
    }
    EXPECT_NEAR(row[i], direct, 1e-4) << "sample " << i;
  }
}

TEST(RowConvolver, PaddedSizeIsPowerOfTwoAndSufficient) {
  std::vector<double> kernel(33, 0.1);
  RowConvolver conv(100, kernel);
  EXPECT_TRUE(is_pow2(conv.padded_size()));
  EXPECT_GE(conv.padded_size(), 100 + 33 - 1);
}

// ---------------------------------------------------------------------------
// Property suite: the FFT convolver against direct O(n^2) linear convolution
// ---------------------------------------------------------------------------

// Direct linear convolution reference, windowed exactly like convolve_row:
// out[i] = sum_t kernel[t] * in[i + center - t].
std::vector<float> direct_convolve(const std::vector<float>& in,
                                   const std::vector<double>& kernel) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(in.size());
  const std::ptrdiff_t center = static_cast<std::ptrdiff_t>(kernel.size() / 2);
  std::vector<float> out(in.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    double acc = 0;
    for (std::ptrdiff_t t = 0;
         t < static_cast<std::ptrdiff_t>(kernel.size()); ++t) {
      const std::ptrdiff_t src = i + center - t;
      if (src >= 0 && src < n) {
        acc += kernel[static_cast<std::size_t>(t)] *
               static_cast<double>(in[static_cast<std::size_t>(src)]);
      }
    }
    out[static_cast<std::size_t>(i)] = static_cast<float>(acc);
  }
  return out;
}

// Odd and even row lengths, including ones whose padded power of two sits
// just above/below the naive guess; ramp half-widths both full (Nu - 1) and
// truncated.
TEST(RowConvolverProperty, MatchesDirectAcrossRowLengthsAndWindows) {
  const std::size_t row_lengths[] = {7, 8, 31, 32, 33, 64, 100, 101};
  std::uint64_t seed = 1;
  for (const std::size_t nu : row_lengths) {
    for (const auto w :
         {filter::RampWindow::kRamLak, filter::RampWindow::kSheppLogan,
          filter::RampWindow::kCosine, filter::RampWindow::kHamming,
          filter::RampWindow::kHann}) {
      for (const std::size_t half_width : {nu - 1, nu / 2, std::size_t{1}}) {
        const auto kernel =
            filter::make_ramp_kernel(half_width, 0.8, w, 1.7);
        Rng rng(seed++);
        std::vector<float> row(nu);
        for (auto& v : row) v = static_cast<float>(rng.next_double() * 2 - 1);
        const auto expected = direct_convolve(row, kernel);
        RowConvolver conv(nu, kernel);
        conv.convolve_row(row.data());
        for (std::size_t i = 0; i < nu; ++i) {
          EXPECT_NEAR(row[i], expected[i], 2e-4)
              << "nu=" << nu << " window=" << filter::to_string(w)
              << " half_width=" << half_width << " sample " << i;
        }
      }
    }
  }
}

TEST(RowConvolverProperty, BatchedMatchesDirectOnPartialBatches) {
  // Row counts straddling the resolved kernel's lane boundary: partial
  // batches, one exact batch, and a batch-plus-remainder all reduce to the
  // same direct convolution.
  const std::size_t nu = 45;
  const auto kernel = filter::make_ramp_kernel(nu - 1, 1.1,
                                               filter::RampWindow::kHamming,
                                               0.9);
  RowConvolver conv(nu, kernel);
  const std::size_t lanes = conv.batch_lanes();
  for (const std::size_t count : {std::size_t{1}, std::size_t{3}, lanes,
                                  lanes + 1, 3 * lanes + 2}) {
    Rng rng(41 + count);
    std::vector<float> rows(count * nu);
    for (auto& v : rows) v = static_cast<float>(rng.next_double() * 2 - 1);
    std::vector<std::vector<float>> expected;
    for (std::size_t r = 0; r < count; ++r) {
      const std::vector<float> one(rows.begin() +
                                       static_cast<std::ptrdiff_t>(r * nu),
                                   rows.begin() +
                                       static_cast<std::ptrdiff_t>((r + 1) *
                                                                   nu));
      expected.push_back(direct_convolve(one, kernel));
    }
    conv.convolve_rows(rows.data(), count);
    for (std::size_t r = 0; r < count; ++r) {
      for (std::size_t i = 0; i < nu; ++i) {
        EXPECT_NEAR(rows[r * nu + i], expected[r][i], 2e-4)
            << "count=" << count << " row " << r << " sample " << i;
      }
    }
  }
}

// The convolver itself always pads to a power of two, so its radix-2 plan
// never hits Bluestein; the chirp-z path serves the generic transforms.
// Pin the non-power-of-two circular convolution (forward + multiply +
// inverse through Bluestein) against the direct O(n^2) sum.
TEST(FftProperty, BluesteinCircularConvolutionMatchesDirect) {
  for (const std::size_t n :
       {std::size_t{6}, std::size_t{10}, std::size_t{24}, std::size_t{50},
        std::size_t{96}, std::size_t{250}}) {
    Rng rng(7 * n);
    std::vector<double> a(n), b(n);
    for (auto& v : a) v = rng.next_double() - 0.5;
    for (auto& v : b) v = rng.next_double() - 0.5;
    const auto fast = circular_convolve(a, b);
    for (std::size_t i = 0; i < n; ++i) {
      double direct = 0;
      for (std::size_t j = 0; j < n; ++j) {
        direct += a[j] * b[(i + n - j) % n];
      }
      EXPECT_NEAR(fast[i], direct, 1e-9) << "n=" << n << " lag " << i;
    }
  }
}

}  // namespace
}  // namespace ifdk::fft
