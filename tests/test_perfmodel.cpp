// Performance model tests: R selection (Eq. 7 + memory constraint), every
// equation of Section 4.2.2 against hand-computed values, and shape agreement
// with the paper's published scaling numbers (Table 5, Figs. 5-6).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "perfmodel/model.h"
#include "perfmodel/paper_reference.h"

namespace ifdk::perfmodel {
namespace {

Problem problem_4k() {
  return {{2048, 2048, 4096}, {4096, 4096, 4096}};
}
Problem problem_8k() {
  return {{2048, 2048, 4096}, {8192, 8192, 8192}};
}

TEST(SelectRows, MatchesPaperChoices) {
  // Section 5.3: R=32 for 4096^3 and R=256 for 8192^3 with 8 GB sub-volumes.
  EXPECT_EQ(select_rows(problem_4k()), 32);
  EXPECT_EQ(select_rows(problem_8k()), 256);
  // 2048^3 volume = 32 GiB -> R = 4 (Fig. 7 uses R=4).
  EXPECT_EQ(select_rows({{2048, 2048, 4096}, {2048, 2048, 2048}}), 4);
}

TEST(SelectRows, RespectsMemoryConstraint) {
  // Shrink the device: an 8 GB sub-volume no longer fits beside the batch,
  // so R must double.
  MicroBench mb;
  mb.gpu_memory_bytes = 8ull << 30;
  mb.sub_volume_bytes = 8ull << 30;
  const int r = select_rows(problem_4k(), mb);
  EXPECT_GE(r, 64);
  // Constraint: volume/R + batch <= memory.
  const auto problem = problem_4k();
  EXPECT_LE(problem.out.bytes() / static_cast<unsigned>(r) +
                problem.in.bytes_per_projection() * mb.batch,
            mb.gpu_memory_bytes);
}

TEST(SelectRows, PowerOfTwo) {
  for (std::size_t n : {1024u, 1536u, 2048u, 3072u, 4096u, 6144u}) {
    const int r = select_rows({{2048, 2048, 4096}, {n, n, n}});
    EXPECT_EQ(r & (r - 1), 0) << "R must be a power of two, got " << r;
  }
}

TEST(MakeGrid, DividesGpusByRows) {
  const GridShape g = make_grid(problem_4k(), 128);
  EXPECT_EQ(g.rows, 32);
  EXPECT_EQ(g.columns, 4);
  EXPECT_EQ(g.ranks(), 128);
  EXPECT_THROW(make_grid(problem_4k(), 48), ifdk::ConfigError);   // not a multiple
  EXPECT_THROW(make_grid(problem_8k(), 128), ifdk::ConfigError);  // fewer than R
}

TEST(Predict, EquationsMatchHandComputedValues) {
  // Hand-evaluate every equation for the 4K problem at 128 GPUs (R=32, C=4)
  // with the ABCI defaults.
  const Problem p = problem_4k();
  const MicroBench mb;
  const Breakdown b = predict(p, {32, 4}, mb);

  const double bytes_in = 2048.0 * 2048 * 4096 * 4;
  const double bytes_out = 4096.0 * 4096 * 4096 * 4;
  EXPECT_NEAR(b.t_load, bytes_in / 400e9, 1e-9);                     // Eq. 8
  EXPECT_NEAR(b.t_flt, 4096.0 * 4 / (4 * 32 * 366.0), 1e-9);         // Eq. 9
  EXPECT_NEAR(b.t_allgather, 4096.0 / (4 * 32 * 4.07), 1e-6);        // Eq. 10
  EXPECT_NEAR(b.t_h2d, bytes_in * 4 / (4 * 11.9e9 * 2), 1e-6);       // Eq. 11
  const double th_bp = 200.0 * 1073741824.0 / (bytes_out / 4 / 32);  // proj/s
  EXPECT_NEAR(b.t_bp, b.t_h2d + 4096.0 / (4 * th_bp), 1e-6);         // Eq. 12
  EXPECT_NEAR(b.t_d2h, bytes_out * 4 / (32 * 11.9e9 * 2), 1e-6);     // Eq. 14
  EXPECT_NEAR(b.t_reduce, bytes_out / (32 * (8.0e9 / 2.7)), 1e-6);   // Eq. 15
  EXPECT_NEAR(b.t_store, bytes_out / 28.5e9, 1e-6);                  // Eq. 16
  EXPECT_DOUBLE_EQ(
      b.t_compute,
      std::max({b.t_load, b.t_flt, b.t_allgather, b.t_bp}));          // Eq. 17
  EXPECT_DOUBLE_EQ(b.t_runtime, b.t_compute + b.t_post);              // Eq. 19
}

TEST(Predict, ReduceIsZeroWhenCEqualsOne) {
  const Breakdown b = predict(problem_4k(), {32, 1});
  EXPECT_EQ(b.t_reduce, 0.0);
  const Breakdown b2 = predict(problem_4k(), {32, 2});
  EXPECT_GT(b2.t_reduce, 0.0);
}

TEST(Predict, StrongScalingHalvesCompute) {
  // Eq. 9/10/12 are all ~1/C: doubling GPUs at fixed R should nearly halve
  // Tcompute while Tpost stays constant (the paper's scalability conclusion).
  const Problem p = problem_4k();
  Breakdown prev = predict(p, {32, 1});
  for (int c = 2; c <= 64; c *= 2) {
    const Breakdown cur = predict(p, {32, c});
    EXPECT_NEAR(cur.t_bp, prev.t_bp / 2, prev.t_bp * 0.01);
    EXPECT_NEAR(cur.t_store, prev.t_store, 1e-9);
    EXPECT_NEAR(cur.t_d2h, prev.t_d2h, 1e-9);
    prev = cur;
  }
}

TEST(Predict, ComputeTimesTrackTable5) {
  // Our model's Tbp for the paper's strong-scaling rows must land within
  // ~25% of the published Table 5 Tbp (the constants are the paper's own
  // micro-benchmarks, so only modeling error separates us).
  for (const auto& row : paper::table5()) {
    const Problem p =
        row.volume_n == 4096 ? problem_4k() : problem_8k();
    const int r = select_rows(p);
    const GridShape grid{r, row.gpus / r};
    const Breakdown b = predict(p, grid);
    // 4K rows land within 25%; the 8K slabs (8192 x 8192 x 32 extreme
    // aspect ratio) run below the 200 GUPS the flat-rate model assumes, so
    // the paper's measured Tbp sits ~1.6x above the model there — the same
    // gap the paper itself shows between its model and measured bars.
    const double tolerance = row.volume_n == 4096 ? 0.25 : 0.45;
    EXPECT_NEAR(b.t_bp, row.t_bp, row.t_bp * tolerance)
        << row.volume_n << "^3 @ " << row.gpus << " GPUs";
    // Tflt is tiny and bounded by 0.7s-ish in the paper's rows.
    if (row.t_flt_is_bound) {
      EXPECT_LT(b.t_flt, row.t_flt * 1.6);
    }
  }
}

TEST(Predict, StorePostMatchesFig5Bars) {
  // Model store bar: 9.0 s for 4K, 71.8 s for 8K in the paper's figures.
  const Breakdown b4 = predict(problem_4k(), {32, 4});
  EXPECT_NEAR(b4.t_store, 9.6, 0.8);  // 256 GiB / 28.5 GB/s
  const Breakdown b8 = predict(problem_8k(), {256, 4});
  EXPECT_NEAR(b8.t_store, 77.2, 6.0);  // 2 TiB / 28.5 GB/s
}

TEST(Predict, WeakScalingComputeIsFlat) {
  // Fig. 5c: Np = 16 * Ngpus at fixed R=32 -> Tcompute stays ~constant.
  const MicroBench mb;
  double first = 0;
  for (int gpus = 32; gpus <= 2048; gpus *= 2) {
    Problem p = problem_4k();
    p.in.np = static_cast<std::size_t>(16 * gpus);
    const Breakdown b = predict(p, {32, gpus / 32}, mb);
    if (first == 0) {
      first = b.t_compute;
    } else {
      EXPECT_NEAR(b.t_compute, first, first * 0.05) << gpus;
    }
  }
}

TEST(Predict, GupsImprovesWithScaleAndSaturates) {
  // Fig. 6 shape: GUPS grows with GPU count but sub-linearly (Tpost is the
  // serial fraction — Amdahl).
  const Problem p = problem_4k();
  double prev_gups = 0;
  double prev_eff = std::numeric_limits<double>::infinity();
  double first_gups = 0;
  for (int gpus = 32; gpus <= 2048; gpus *= 2) {
    const Breakdown b = predict(p, {32, gpus / 32});
    const double g = predicted_gups(p, b);
    EXPECT_GE(g, prev_gups);  // plateaus (Tpost floor) but never regresses
    const double eff = g / gpus;
    EXPECT_LT(eff, prev_eff);  // per-GPU efficiency strictly degrades
    if (first_gups == 0) first_gups = g;
    prev_gups = g;
    prev_eff = eff;
  }
  EXPECT_GT(prev_gups, 3.0 * first_gups);  // and overall scaling is real
}

TEST(Predict, EightKScalesBetterThanFourK) {
  // Paper §5.3.3: "iFDK scales better in generating 8192^3 than 4096^3"
  // (better device utilization). Compare GUPS ratios at 2048 vs 256 GPUs.
  const Breakdown b4_lo = predict(problem_4k(), {32, 256 / 32});
  const Breakdown b4_hi = predict(problem_4k(), {32, 2048 / 32});
  const Breakdown b8_lo = predict(problem_8k(), {256, 1});
  const Breakdown b8_hi = predict(problem_8k(), {256, 8});
  const double speedup_4k =
      predicted_gups(problem_4k(), b4_hi) / predicted_gups(problem_4k(), b4_lo);
  const double speedup_8k =
      predicted_gups(problem_8k(), b8_hi) / predicted_gups(problem_8k(), b8_lo);
  EXPECT_GT(speedup_8k, speedup_4k);
}

TEST(Predict, DeltaExceedsOneOnPaperConfigs) {
  // Table 5: delta > 1 for every row — the pipeline overlap wins.
  for (const auto& row : paper::table5()) {
    const Problem p = row.volume_n == 4096 ? problem_4k() : problem_8k();
    const int r = select_rows(p);
    const Breakdown b = predict(p, {r, row.gpus / r});
    EXPECT_GT(b.delta(), 1.0) << row.gpus;
  }
}

TEST(PaperReference, TablesAreComplete) {
  EXPECT_EQ(paper::table4().size(), 15u);
  EXPECT_EQ(paper::table5().size(), 8u);
  EXPECT_EQ(paper::fig5a().size(), 7u);
  EXPECT_EQ(paper::fig5b().size(), 4u);
  EXPECT_EQ(paper::fig5c().size(), 7u);
  EXPECT_EQ(paper::fig5d().size(), 4u);
  EXPECT_EQ(paper::fig6_2048().size(), 10u);
  EXPECT_EQ(paper::fig6_4096().size(), 6u);
  EXPECT_EQ(paper::fig6_8192().size(), 4u);
  // Sanity: the paper's headline numbers. 4K within 30 s, 8K within 2 min.
  EXPECT_LT(paper::fig5a().back().compute + paper::fig5a().back().d2h +
                paper::fig5a().back().store + paper::fig5a().back().reduce,
            30.0);
  EXPECT_LT(paper::fig5b().back().compute + paper::fig5b().back().d2h +
                paper::fig5b().back().store + paper::fig5b().back().reduce,
            120.0);
}

}  // namespace
}  // namespace ifdk::perfmodel
