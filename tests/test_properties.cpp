// Cross-module property-based tests: invariants that must hold over swept
// parameter spaces rather than single examples.
//
//   * geometry fuzz: Theorems 1-3 hold for random valid geometries,
//   * FDK linearity and rotation equivariance,
//   * distributed == single-node over a (grid x Np) sweep,
//   * simulator monotonicity/consistency over GPU counts and problem sizes,
//   * compression ratio monotone in quantization depth.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/simulator.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "geometry/cbct.h"
#include "ifdk/fdk.h"
#include "ifdk/framework.h"
#include "iterative/iterative.h"
#include "phantom/phantom.h"
#include "postproc/compression.h"

namespace ifdk {
namespace {

// ---------------------------------------------------------------------------
// Geometry fuzz
// ---------------------------------------------------------------------------

geo::CbctGeometry random_geometry(Rng& rng) {
  geo::CbctGeometry g;
  g.nu = 32 + rng.next_below(64);
  g.nv = 32 + rng.next_below(64);
  g.np = 8 + rng.next_below(56);
  g.du = rng.next_float(0.5f, 2.0f);
  g.dv = rng.next_float(0.5f, 2.0f);
  g.nx = 8 + rng.next_below(40);
  g.ny = 8 + rng.next_below(40);
  g.nz = 8 + rng.next_below(40);
  g.d = rng.next_float(200.0f, 800.0f);
  g.D = g.d * rng.next_float(1.2f, 2.5f);
  // Fit the voxels so validate() passes (same formula as the factory).
  const double half_u = 0.5 * static_cast<double>(g.nu) * g.du;
  const double half_v = 0.5 * static_cast<double>(g.nv) * g.dv;
  const double target = 0.9 * half_u;
  const double r_xy = target * g.d / (g.D + target);
  const double diag = std::sqrt(static_cast<double>(g.nx * g.nx) +
                                static_cast<double>(g.ny * g.ny)) / 2.0;
  g.dx = g.dy = r_xy / diag;
  const double mag = g.D / (g.d - r_xy);
  g.dz = 0.9 * half_v / mag * 2.0 / static_cast<double>(g.nz);
  return g;
}

TEST(GeometryFuzz, TheoremsHoldForRandomGeometries) {
  Rng rng(2026);
  for (int trial = 0; trial < 25; ++trial) {
    const geo::CbctGeometry g = random_geometry(rng);
    ASSERT_NO_THROW(g.validate()) << "trial " << trial;
    for (int sample = 0; sample < 8; ++sample) {
      const double beta = rng.next_double() * 2.0 * kPi;
      const geo::Mat34 p = geo::make_projection_matrix(g, beta);
      const double i = rng.next_double() * static_cast<double>(g.nx - 1);
      const double j = rng.next_double() * static_cast<double>(g.ny - 1);
      const double k = rng.next_double() * static_cast<double>(g.nz - 1);

      // Theorem 1: mirrored voxels share u, and their v's sum to Nv-1.
      const auto a = geo::project_voxel(p, i, j, k);
      const auto b = geo::project_voxel(
          p, i, j, static_cast<double>(g.nz) - 1.0 - k);
      EXPECT_NEAR(a.u, b.u, 1e-8);
      EXPECT_NEAR(a.v + b.v, static_cast<double>(g.nv) - 1.0, 1e-8);

      // Theorem 3: closed-form depth, independent of k.
      EXPECT_NEAR(a.z, geo::theorem3_depth(g, beta, i, j), 1e-8);
      EXPECT_NEAR(a.z, b.z, 1e-8);
    }
  }
}

TEST(GeometryFuzz, ProjectionMatrixAgreesWithWorldRays) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const geo::CbctGeometry g = random_geometry(rng);
    const double beta = rng.next_double() * 2.0 * kPi;
    const geo::Mat34 p = geo::make_projection_matrix(g, beta);
    const double i = rng.next_double() * static_cast<double>(g.nx - 1);
    const double j = rng.next_double() * static_cast<double>(g.ny - 1);
    const double k = rng.next_double() * static_cast<double>(g.nz - 1);
    const auto pt = geo::project_voxel(p, i, j, k);
    const geo::Vec3 src = geo::source_position(g, beta);
    const geo::Vec3 vox = geo::voxel_world_position(g, i, j, k);
    const geo::Vec3 pix = geo::detector_pixel_position(g, beta, pt.u, pt.v);
    EXPECT_NEAR((vox - src).normalized().dot((pix - src).normalized()), 1.0,
                1e-9);
  }
}

// ---------------------------------------------------------------------------
// FDK operator properties
// ---------------------------------------------------------------------------

TEST(FdkProperties, ReconstructionIsLinear) {
  // FDK(a*p1 + b*p2) == a*FDK(p1) + b*FDK(p2): every stage (weighting,
  // convolution, back-projection) is linear in the projection data.
  const auto g = geo::make_standard_geometry({{48, 48, 24}, {16, 16, 16}});
  const auto p1 = phantom::project_all(phantom::shepp_logan(), g);
  const auto p2 = phantom::project_all(phantom::industrial_part(), g);

  std::vector<Image2D> combo;
  for (std::size_t s = 0; s < g.np; ++s) {
    Image2D img(g.nu, g.nv, false);
    for (std::size_t n = 0; n < img.pixels(); ++n) {
      img.data()[n] = 2.0f * p1[s].data()[n] - 0.5f * p2[s].data()[n];
    }
    combo.push_back(std::move(img));
  }

  const Volume v1 = reconstruct_fdk(g, p1).volume;
  const Volume v2 = reconstruct_fdk(g, p2).volume;
  const Volume vc = reconstruct_fdk(g, combo).volume;

  double peak = 0;
  for (std::size_t n = 0; n < vc.voxels(); ++n) {
    peak = std::max(peak, std::abs(static_cast<double>(vc.data()[n])));
  }
  for (std::size_t n = 0; n < vc.voxels(); ++n) {
    const double expected = 2.0 * v1.data()[n] - 0.5 * v2.data()[n];
    EXPECT_NEAR(vc.data()[n], expected, 2e-4 * peak + 1e-5) << n;
  }
}

TEST(FdkProperties, ZeroProjectionsGiveZeroVolume) {
  const auto g = geo::make_standard_geometry({{32, 32, 8}, {12, 12, 12}});
  std::vector<Image2D> zeros;
  for (std::size_t s = 0; s < g.np; ++s) zeros.emplace_back(g.nu, g.nv);
  const Volume v = reconstruct_fdk(g, zeros).volume;
  for (std::size_t n = 0; n < v.voxels(); ++n) {
    EXPECT_EQ(v.data()[n], 0.0f);
  }
}

TEST(FdkProperties, RotationEquivariance) {
  // Rotating the phantom by one angular step equals shifting the projection
  // assignment by one view (up to interpolation differences): the volume
  // reconstructed from views [1..Np, 0] of the original phantom matches the
  // volume of the phantom rotated by -theta.
  const auto g = geo::make_standard_geometry({{48, 48, 16}, {16, 16, 16}});
  auto phan = phantom::shepp_logan();
  const auto straight = phantom::project_all(phan, g);

  // Rotate every ellipsoid by +theta about Z.
  auto rotated = phan;
  for (auto& e : rotated.ellipsoids) {
    const double c = std::cos(g.theta());
    const double s = std::sin(g.theta());
    const geo::Vec3 ctr = e.center;
    e.center = {ctr.x * c - ctr.y * s, ctr.x * s + ctr.y * c, ctr.z};
    e.phi += g.theta();
  }
  const auto rotated_projs = phantom::project_all(rotated, g);
  // Rotating the object by +theta is equivalent to advancing the gantry by
  // +theta: view s of the rotated phantom equals view s+1 of the original,
  // to projector accuracy.
  double err = 0, peak = 0;
  for (std::size_t s = 0; s + 1 < g.np; ++s) {
    for (std::size_t n = 0; n < straight[s].pixels(); ++n) {
      const double d = rotated_projs[s].data()[n] - straight[s + 1].data()[n];
      err += d * d;
      peak = std::max(peak,
                      std::abs(static_cast<double>(straight[s].data()[n])));
    }
  }
  err = std::sqrt(err / static_cast<double>((g.np - 1) * g.nu * g.nv));
  EXPECT_LT(err / peak, 1e-6);
}

// ---------------------------------------------------------------------------
// Distributed sweep
// ---------------------------------------------------------------------------

struct GridCase {
  int ranks;
  int rows;
  std::size_t np;
  bool ring;
};

class DistributedSweep : public ::testing::TestWithParam<GridCase> {};

TEST_P(DistributedSweep, MatchesSingleNode) {
  const GridCase c = GetParam();
  const auto g =
      geo::make_standard_geometry({{48, 48, c.np}, {12, 12, 12}});
  const auto projections = phantom::project_all(phantom::shepp_logan(), g);
  const Volume reference = reconstruct_fdk(g, projections).volume;

  pfs::ParallelFileSystem fs;
  stage_projections(fs, "proj/", projections);
  IfdkOptions opts;
  opts.ranks = c.ranks;
  opts.rows = c.rows;
  opts.use_ring_allgather = c.ring;
  run_distributed(g, fs, opts);
  const Volume result = load_volume(fs, "vol/slice_", g.vol_dims());

  double err = 0, peak = 0;
  for (std::size_t n = 0; n < result.voxels(); ++n) {
    const double d = result.data()[n] - reference.data()[n];
    err += d * d;
    peak = std::max(peak, std::abs(static_cast<double>(reference.data()[n])));
  }
  EXPECT_LT(std::sqrt(err / static_cast<double>(result.voxels())) / peak,
            1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    GridsTimesViews, DistributedSweep,
    ::testing::Values(GridCase{4, 2, 16, false}, GridCase{4, 2, 16, true},
                      GridCase{6, 2, 24, true}, GridCase{6, 6, 12, false},
                      GridCase{9, 3, 18, true}, GridCase{8, 2, 32, false}));

// ---------------------------------------------------------------------------
// Simulator sweeps
// ---------------------------------------------------------------------------

TEST(SimulatorProperties, ComputeMonotoneInGpusForAllOutputs) {
  for (std::size_t n : {2048u, 4096u, 8192u}) {
    const Problem p{{2048, 2048, 4096}, {n, n, n}};
    const int r = perfmodel::select_rows(p);
    double prev = 1e30;
    for (int gpus = r; gpus <= 2048; gpus *= 2) {
      const double t = cluster::simulate(p, gpus).t_compute;
      EXPECT_LT(t, prev) << n << "^3 @ " << gpus;
      prev = t;
    }
  }
}

TEST(SimulatorProperties, RuntimeScalesWithProjectionCount) {
  for (std::size_t np : {1024u, 2048u, 4096u, 8192u}) {
    const Problem small{{2048, 2048, np}, {4096, 4096, 4096}};
    const Problem big{{2048, 2048, 2 * np}, {4096, 4096, 4096}};
    EXPECT_LT(cluster::simulate(small, 256).t_compute,
              cluster::simulate(big, 256).t_compute)
        << np;
  }
}

TEST(SimulatorProperties, StageTotalsConsistentWithRates) {
  // t_bp total equals rounds * per-round cost by construction; check the
  // exposed totals satisfy the Table-5 identity delta * Tcompute = sums.
  for (int gpus : {64, 256, 1024}) {
    const Problem p{{2048, 2048, 4096}, {4096, 4096, 4096}};
    const auto sim = cluster::simulate(p, gpus);
    EXPECT_NEAR(sim.delta * sim.t_compute,
                sim.t_flt + sim.t_allgather + sim.t_bp,
                1e-9 * sim.t_compute);
  }
}

// ---------------------------------------------------------------------------
// Compression sweep
// ---------------------------------------------------------------------------

TEST(CompressionProperties, RatioMonotoneInBitsOnSmoothData) {
  const auto g = geo::make_standard_geometry({{48, 48, 8}, {20, 20, 20}});
  const Volume vol = phantom::voxelize(phantom::shepp_logan(), g);
  double prev_ratio = 0;
  double prev_psnr = 0;
  for (int bits : {16, 12, 10, 8}) {  // decreasing depth
    const auto c = postproc::compress(vol, bits);
    const double p = postproc::psnr_db(vol, postproc::decompress(c));
    EXPECT_GE(c.ratio(), prev_ratio) << bits;  // coarser -> longer runs
    if (prev_psnr > 0) {
      EXPECT_LT(p, prev_psnr) << bits;  // and lower fidelity
    }
    prev_ratio = c.ratio();
    prev_psnr = p;
  }
}

// ---------------------------------------------------------------------------
// ART regression
// ---------------------------------------------------------------------------

TEST(ArtProperties, ArtConvergesLikeFineGrainedSart) {
  const auto g = geo::make_standard_geometry({{40, 40, 18}, {14, 14, 14}});
  const auto phan = phantom::shepp_logan();
  const auto projections = phantom::project_all(phan, g);
  const Volume truth = phantom::voxelize(phan, g);

  iterative::IterOptions opts;
  opts.iterations = 4;
  opts.lambda = 0.5;
  const Volume recon = iterative::art(g, projections, opts);
  Volume zero(g.nx, g.ny, g.nz);
  EXPECT_LT(rmse(recon.data(), truth.data(), truth.voxels()),
            rmse(zero.data(), truth.data(), truth.voxels()));
  const double resid = iterative::residual_rmse(g, recon, projections);
  const double base = iterative::residual_rmse(g, zero, projections);
  EXPECT_LT(resid, 0.5 * base);
}


// ---------------------------------------------------------------------------
// Precision (paper §5.2: "we do not sacrifice the quality by using lower
// precision" — check that 16-bit detector quantization of the *input* also
// leaves the reconstruction essentially unchanged, which is why scanners
// shipping uint16 frames are compatible with the float pipeline)
// ---------------------------------------------------------------------------

TEST(PrecisionProperties, U16InputQuantizationIsHarmless) {
  const auto g = geo::make_standard_geometry({{48, 48, 24}, {16, 16, 16}});
  const auto phan = phantom::shepp_logan();
  const auto clean = phantom::project_all(phan, g);

  float full_scale = 0;
  for (const auto& p : clean) {
    for (std::size_t n = 0; n < p.pixels(); ++n) {
      full_scale = std::max(full_scale, p.data()[n]);
    }
  }
  // Simulate the detector's 16-bit quantization in memory.
  std::vector<Image2D> quantized;
  const float step = full_scale / 65535.0f;
  for (const auto& p : clean) {
    Image2D q(p.width(), p.height(), false);
    for (std::size_t n = 0; n < p.pixels(); ++n) {
      q.data()[n] =
          std::round(p.data()[n] / step) * step;
    }
    quantized.push_back(std::move(q));
  }

  const Volume a = reconstruct_fdk(g, clean).volume;
  const Volume b = reconstruct_fdk(g, quantized).volume;
  double peak = 0;
  for (std::size_t n = 0; n < a.voxels(); ++n) {
    peak = std::max(peak, std::abs(static_cast<double>(a.data()[n])));
  }
  EXPECT_LT(rmse(a.data(), b.data(), a.voxels()) / peak, 1e-4);
}

}  // namespace
}  // namespace ifdk
