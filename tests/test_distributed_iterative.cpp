// Distributed iterative solver tests: the parity contract of
// iterative::run_iterative against the single-node solvers — BITWISE on one
// rank (where the owned-view order and every fold pins the sequential
// arithmetic exactly) and tight-tolerance on multi-rank grids (where the
// all-reduce folds rank partials in a different deterministic order) — plus
// monotone residual decrease on a noiseless phantom, rerun determinism,
// rank-consistent early stop, and workload-selector validation.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/math_util.h"
#include "ifdk/framework.h"
#include "iterative/distributed.h"
#include "iterative/iterative.h"
#include "phantom/phantom.h"

namespace ifdk::iterative {
namespace {

struct Scene {
  geo::CbctGeometry g;
  std::vector<Image2D> projections;
};

/// Noiseless Shepp-Logan scene sized so every grid in the suite divides it:
/// Np = 8 splits across 1/2/4 ranks, Nz = 12 satisfies Nz % 2R for R in
/// {1, 2}.
Scene make_scene(std::size_t np = 8) {
  Scene s{geo::make_standard_geometry({{32, 32, np}, {12, 12, 12}}), {}};
  s.projections = phantom::project_all(phantom::shepp_logan(), s.g);
  return s;
}

JobSpec make_iter_job(const IterParams& params, const std::string& tag) {
  JobSpec spec;
  spec.input_prefix = "in_" + tag + "/";
  spec.output_prefix = "out_" + tag + "/slice_";
  spec.workload = WorkloadKind::kIterative;
  spec.iterative = params;
  return spec;
}

IfdkOptions grid_options(int ranks, int rows) {
  IfdkOptions opts;
  opts.ranks = ranks;
  opts.rows = rows;  // explicit: Eq. (7) auto-selection targets larger worlds
  return opts;
}

/// Stages the scene, runs the distributed solver, and loads the result.
Volume run_distributed_iter(const Scene& s, const IfdkOptions& opts,
                            const JobSpec& spec, IterStats* stats = nullptr) {
  pfs::ParallelFileSystem fs;
  stage_projections(fs, spec.input_prefix, s.projections);
  const IterStats st = run_iterative(s.g, fs, opts, spec);
  if (stats != nullptr) *stats = st;
  return load_volume(fs, spec.output_prefix, s.g.vol_dims());
}

/// Single-node reference with the identical solver parameters.
IterOptions reference_options(const IterParams& params) {
  IterOptions opts;
  opts.iterations = params.iterations;
  opts.lambda = params.lambda;
  opts.subsets = params.subsets;
  opts.step_fraction = params.step_fraction;
  return opts;
}

// ---- Single-rank parity: BITWISE --------------------------------------------
//
// On P = 1 the distributed workload owns all views in ascending order and
// every fold degenerates to a local copy, so each update expression matches
// the single-node solver float for float. These tests assert exact equality.

TEST(DistributedSart, SingleRankBitwiseMatchesSingleNode) {
  const Scene s = make_scene();
  for (const int subsets : {1, 2}) {  // 1 = SART, 2 = OS-SART
    IterParams params;
    params.algorithm = subsets > 1 ? Algorithm::kOsSart : Algorithm::kSart;
    params.iterations = 3;
    params.subsets = subsets;
    const Volume dist = run_distributed_iter(
        s, grid_options(1, 1),
        make_iter_job(params, "sart_p1_s" + std::to_string(subsets)));
    const Volume ref = sart(s.g, s.projections, reference_options(params));
    for (std::size_t n = 0; n < ref.voxels(); ++n) {
      ASSERT_EQ(dist.data()[n], ref.data()[n])
          << subsets << " subset(s), voxel " << n;
    }
  }
}

TEST(DistributedMlem, SingleRankBitwiseMatchesSingleNode) {
  const Scene s = make_scene();
  IterParams params;
  params.algorithm = Algorithm::kMlem;
  params.iterations = 4;
  IterStats stats;
  const Volume dist = run_distributed_iter(s, grid_options(1, 1),
                                           make_iter_job(params, "mlem_p1"),
                                           &stats);
  const Volume ref = mlem(s.g, s.projections, reference_options(params));
  for (std::size_t n = 0; n < ref.voxels(); ++n) {
    ASSERT_EQ(dist.data()[n], ref.data()[n]) << "voxel " << n;
  }
  EXPECT_EQ(stats.algorithm, "mlem");
  EXPECT_EQ(stats.iterations_run, 4);
}

// ---- Multi-rank parity: TOLERANCE -------------------------------------------
//
// On P > 1 the volume all-reduce folds rank partials in tree order, not the
// sequential view order, so float addition reassociates: results are
// deterministic but only tolerance-equal to the single-node solver.

TEST(DistributedSart, MultiRankMatchesSingleNodeToTolerance) {
  const Scene s = make_scene();
  IterParams params;
  params.iterations = 3;
  const Volume ref = sart(s.g, s.projections, reference_options(params));

  struct Grid {
    int ranks;
    int rows;
  };
  for (const Grid grid : {Grid{2, 2}, Grid{4, 2}}) {
    IterStats stats;
    const Volume dist = run_distributed_iter(
        s, grid_options(grid.ranks, grid.rows),
        make_iter_job(params, "sart_p" + std::to_string(grid.ranks)), &stats);
    EXPECT_EQ(stats.grid.rows, grid.rows);
    EXPECT_EQ(stats.grid.ranks(), grid.ranks);
    double max_diff = 0;
    for (std::size_t n = 0; n < ref.voxels(); ++n) {
      max_diff = std::max(
          max_diff, std::abs(static_cast<double>(dist.data()[n]) -
                             static_cast<double>(ref.data()[n])));
    }
    // Reassociation noise only: well below any voxel feature (~1e-1).
    EXPECT_LT(max_diff, 1e-4) << grid.ranks << " ranks";
    EXPECT_LT(rmse(dist.data(), ref.data(), ref.voxels()), 1e-5)
        << grid.ranks << " ranks";
  }
}

// ---- Convergence ------------------------------------------------------------

TEST(DistributedSart, ResidualMonotoneNonIncreasingOnNoiselessPhantom) {
  const Scene s = make_scene();
  IterParams params;
  params.iterations = 6;
  IterStats stats;
  run_distributed_iter(s, grid_options(4, 2),
                       make_iter_job(params, "sart_resid"), &stats);
  ASSERT_EQ(stats.residual_rmse.size(), 6u);
  EXPECT_GT(stats.residual_rmse.front(), 0.0);
  for (std::size_t i = 1; i < stats.residual_rmse.size(); ++i) {
    // Noiseless data: each relaxed sweep must not increase the residual
    // (tiny slack for float reassociation across the all-reduce).
    EXPECT_LE(stats.residual_rmse[i], stats.residual_rmse[i - 1] * 1.0001)
        << "iteration " << i;
  }
  // And it must actually converge, not just not diverge. (residual_rmse[i]
  // is measured from the iterate sweep i STARTED from, so even the last
  // entry lags the final volume by one sweep — hence the soft 0.6 bound.)
  EXPECT_LT(stats.residual_rmse.back(), 0.6 * stats.residual_rmse.front());
  EXPECT_EQ(stats.iterations_run, 6);
  EXPECT_GT(stats.wall_total, 0.0);
  EXPECT_GT(stats.iterations_per_second, 0.0);
}

TEST(DistributedIterative, DeterministicAcrossReruns) {
  const Scene s = make_scene();
  IterParams params;
  params.iterations = 3;
  params.subsets = 2;
  params.algorithm = Algorithm::kOsSart;
  IterStats first_stats;
  const Volume first = run_distributed_iter(
      s, grid_options(4, 2), make_iter_job(params, "det"), &first_stats);
  IterStats second_stats;
  const Volume second = run_distributed_iter(
      s, grid_options(4, 2), make_iter_job(params, "det"), &second_stats);
  for (std::size_t n = 0; n < first.voxels(); ++n) {
    ASSERT_EQ(first.data()[n], second.data()[n]) << "voxel " << n;
  }
  ASSERT_EQ(first_stats.residual_rmse.size(),
            second_stats.residual_rmse.size());
  for (std::size_t i = 0; i < first_stats.residual_rmse.size(); ++i) {
    EXPECT_EQ(first_stats.residual_rmse[i], second_stats.residual_rmse[i])
        << "iteration " << i;
  }
}

TEST(DistributedIterative, EarlyStopIsRankConsistent) {
  // stop_rmse above the first residual: every rank must agree to stop after
  // iteration 1 (the decision compares the identical all-reduced value); a
  // rank-inconsistent stop would deadlock the next collective and trip the
  // suite timeout.
  const Scene s = make_scene();
  IterParams params;
  params.iterations = 8;
  params.stop_rmse = 1e6;
  IterStats stats;
  run_distributed_iter(s, grid_options(4, 2),
                       make_iter_job(params, "early_stop"), &stats);
  EXPECT_EQ(stats.iterations_run, 1);
  ASSERT_EQ(stats.residual_rmse.size(), 1u);
  EXPECT_EQ(stats.algorithm, "sart");
}

// ---- Workload-selector validation -------------------------------------------

TEST(DistributedIterative, RejectsMisroutedAndMalformedJobs) {
  const Scene s = make_scene();
  pfs::ParallelFileSystem fs;
  const IfdkOptions opts = grid_options(1, 1);

  // An FDK job must not reach the iterative runtime...
  JobSpec fdk_job;
  fdk_job.input_prefix = "in/";
  fdk_job.output_prefix = "out/slice_";
  EXPECT_THROW(run_iterative(s.g, fs, opts, fdk_job), ConfigError);

  // ...and an iterative job must not reach the FDK streaming runtime.
  IterParams params;
  const JobSpec iter_job = make_iter_job(params, "misroute");
  try {
    run_streaming(s.g, fs, opts, std::vector<JobSpec>{iter_job});
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("run_streaming executes FDK jobs"),
              std::string::npos)
        << e.what();
  }

  // Solver-parameter validation runs through JobSpec::validate.
  IterParams bad_lambda;
  bad_lambda.lambda = 2.5;
  EXPECT_THROW(
      run_iterative(s.g, fs, opts, make_iter_job(bad_lambda, "bad_lambda")),
      ConfigError);
  IterParams mlem_subsets;
  mlem_subsets.algorithm = Algorithm::kMlem;
  mlem_subsets.subsets = 3;
  EXPECT_THROW(
      run_iterative(s.g, fs, opts, make_iter_job(mlem_subsets, "mlem_os")),
      ConfigError);
}

}  // namespace
}  // namespace ifdk::iterative
