// Cluster simulator tests: agreement with the paper's measured scaling
// numbers (Figs. 5a-5d, Table 5, Fig. 6) within calibrated tolerances, and
// the pipeline-dynamics properties (delta > 1, back-pressure, startup).
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/platforms.h"
#include "cluster/simulator.h"
#include "common/error.h"
#include "perfmodel/paper_reference.h"

namespace ifdk::cluster {
namespace {

Problem problem_4k() { return {{2048, 2048, 4096}, {4096, 4096, 4096}}; }
Problem problem_8k() { return {{2048, 2048, 4096}, {8192, 8192, 8192}}; }
Problem problem_2k() { return {{2048, 2048, 4096}, {2048, 2048, 2048}}; }

double rel_err(double ours, double paper) {
  return std::abs(ours - paper) / paper;
}

TEST(Simulator, Fig5aStrongScalingCompute) {
  // Measured Tcompute of Fig. 5a within 15% at every GPU count.
  for (const auto& bar : paper::fig5a()) {
    const SimResult sim = simulate(problem_4k(), bar.gpus);
    EXPECT_LT(rel_err(sim.t_compute, bar.compute), 0.15)
        << bar.gpus << " GPUs: sim " << sim.t_compute << " vs paper "
        << bar.compute;
  }
}

TEST(Simulator, Fig5aPostPhases) {
  const SimResult sim = simulate(problem_4k(), 128);
  const auto& bar = paper::fig5a()[2];  // 128 GPUs
  EXPECT_LT(rel_err(sim.t_d2h, bar.d2h), 0.15);
  EXPECT_LT(rel_err(sim.t_store, bar.store), 0.15);
  EXPECT_LT(rel_err(sim.t_reduce, bar.reduce), 0.25);
}

TEST(Simulator, Fig5bEightKCompute) {
  for (const auto& bar : paper::fig5b()) {
    const SimResult sim = simulate(problem_8k(), bar.gpus);
    EXPECT_LT(rel_err(sim.t_compute, bar.compute), 0.20)
        << bar.gpus << " GPUs: sim " << sim.t_compute << " vs paper "
        << bar.compute;
    EXPECT_LT(rel_err(sim.t_store, bar.store), 0.15);
  }
}

TEST(Simulator, Fig5cWeakScalingFlat) {
  // Np = 16 * Ngpus: Tcompute must stay nearly constant (the paper measures
  // 9.9 -> 11.0 s from 32 to 2048 GPUs, a 11% drift).
  double first = 0;
  for (const auto& bar : paper::fig5c()) {
    Problem p = problem_4k();
    p.in.np = static_cast<std::size_t>(16 * bar.gpus);
    const SimResult sim = simulate(p, bar.gpus, {}, /*rows=*/32);
    EXPECT_LT(rel_err(sim.t_compute, bar.compute), 0.25) << bar.gpus;
    if (first == 0) first = sim.t_compute;
    // The paper itself drifts 11% (9.9 -> 11.0 s); allow 20%.
    EXPECT_LT(rel_err(sim.t_compute, first), 0.20) << "drift at " << bar.gpus;
  }
}

TEST(Simulator, Fig5dWeakScalingEightK) {
  for (const auto& bar : paper::fig5d()) {
    Problem p = problem_8k();
    p.in.np = static_cast<std::size_t>(4 * bar.gpus);
    const SimResult sim = simulate(p, bar.gpus, {}, /*rows=*/256);
    EXPECT_LT(rel_err(sim.t_compute, bar.compute), 0.25)
        << bar.gpus << ": sim " << sim.t_compute << " vs " << bar.compute;
  }
}

TEST(Simulator, Table5StageTotalsAndDelta) {
  for (const auto& row : paper::table5()) {
    const Problem p = row.volume_n == 4096 ? problem_4k() : problem_8k();
    const SimResult sim = simulate(p, row.gpus);
    EXPECT_LT(rel_err(sim.t_allgather, row.t_allgather), 0.25)
        << row.volume_n << "@" << row.gpus;
    EXPECT_LT(rel_err(sim.t_bp, row.t_bp), 0.25)
        << row.volume_n << "@" << row.gpus;
    // delta: overlap factor in (1, 2), tracking the paper's value loosely.
    EXPECT_GT(sim.delta, 1.0);
    EXPECT_LT(sim.delta, 2.0);
    EXPECT_NEAR(sim.delta, row.delta, 0.45) << row.volume_n << "@" << row.gpus;
  }
}

TEST(Simulator, HeadlineClaims) {
  // Abstract: 4K solved within 30 seconds on 2048 GPUs, 8K within 2 minutes
  // (both including I/O).
  const SimResult four_k = simulate(problem_4k(), 2048);
  EXPECT_LT(four_k.t_runtime, 30.0);
  const SimResult eight_k = simulate(problem_8k(), 2048);
  EXPECT_LT(eight_k.t_runtime, 120.0);
}

TEST(Simulator, Fig6GupsCurve2048) {
  // 2048^3 output: GUPS within 25% of Fig. 6 at every measured point
  // (the store phase is small here, so Eq.-19 GUPS is comparable).
  for (const auto& pt : paper::fig6_2048()) {
    const SimResult sim = simulate(problem_2k(), pt.gpus);
    // 30%: at >= 1024 GPUs the 2048^3 runtime is post-phase dominated and
    // Fig. 6's own GUPS appear to exclude part of it (see EXPERIMENTS.md).
    EXPECT_LT(rel_err(sim.gups, pt.gups), 0.30)
        << pt.gpus << " GPUs: sim " << sim.gups << " vs paper " << pt.gups;
  }
}

TEST(Simulator, Fig6OrderingAcrossOutputSizes) {
  // At any GPU count where both are defined, bigger outputs yield higher
  // GUPS (better device utilization — the paper's Section 5.3.3 point).
  for (int gpus : {256, 512, 1024, 2048}) {
    const double g2 = simulate(problem_2k(), gpus).gups;
    const double g4 = simulate(problem_4k(), gpus).gups;
    const double g8 = simulate(problem_8k(), gpus).gups;
    EXPECT_GT(g4, g2) << gpus;
    EXPECT_GT(g8, g4) << gpus;
  }
}

TEST(Simulator, DeltaReflectsPipelineOverlap) {
  // Removing the overlap (serializing stages) is exactly delta = 1; the
  // recurrence must always land in [1, sum/max] and above 1.1 on the
  // paper's configs where AllGather is substantial.
  const SimResult sim = simulate(problem_4k(), 64);
  EXPECT_GT(sim.delta, 1.1);
  const double serial_sum = sim.t_flt + sim.t_allgather + sim.t_bp;
  EXPECT_LT(sim.t_compute, serial_sum);  // overlap strictly helps
}

TEST(Simulator, StartupAndBackPressureVisibleInTimeline) {
  const SimResult sim = simulate(problem_4k(), 2048);
  ASSERT_GE(sim.timeline.size(), 2u);
  // Monotone stage completion per round, bp after allgather after filter.
  for (std::size_t t = 0; t < sim.timeline.size(); ++t) {
    EXPECT_LE(sim.timeline[t].filter_done, sim.timeline[t].allgather_done);
    EXPECT_LE(sim.timeline[t].allgather_done, sim.timeline[t].bp_done);
    if (t > 0) {
      EXPECT_GE(sim.timeline[t].bp_done, sim.timeline[t - 1].bp_done);
    }
  }
  // The last bp completion is the compute span.
  EXPECT_DOUBLE_EQ(sim.timeline.back().bp_done, sim.t_compute);
}

TEST(Simulator, ReduceNaWhenSingleColumn) {
  const SimResult sim = simulate(problem_4k(), 32);  // R=32 -> C=1
  EXPECT_EQ(sim.grid.columns, 1);
  EXPECT_EQ(sim.t_reduce, 0.0);
  const SimResult sim2 = simulate(problem_4k(), 64);  // C=2
  EXPECT_GT(sim2.t_reduce, 0.0);
}

TEST(Simulator, RejectsInvalidGpuCounts) {
  EXPECT_THROW(simulate(problem_4k(), 48), ifdk::ConfigError);
  EXPECT_THROW(simulate(problem_8k(), 128), ifdk::ConfigError);
}

TEST(Simulator, QueueCapacityLimitsRunahead) {
  // With a deep queue the filter thread runs ahead; with capacity 1 it is
  // lock-stepped to the AllGather, lengthening (or preserving) the span.
  SimConfig deep;
  deep.queue_capacity = 64;
  SimConfig shallow;
  shallow.queue_capacity = 1;
  const double t_deep = simulate(problem_4k(), 256, deep).t_compute;
  const double t_shallow = simulate(problem_4k(), 256, shallow).t_compute;
  EXPECT_GE(t_shallow, t_deep - 1e-9);
}

TEST(Simulator, FlatRateFallbackWithoutKernelModel) {
  SimConfig cfg;
  cfg.use_kernel_model = false;
  const SimResult sim = simulate(problem_4k(), 128, cfg);
  EXPECT_GT(sim.t_compute, 0.0);
  // Flat 200 GUPS is close to the model's slab rate for 4K: within 20%.
  const SimResult with_model = simulate(problem_4k(), 128);
  EXPECT_NEAR(sim.t_compute, with_model.t_compute,
              0.2 * with_model.t_compute);
}


TEST(Simulator, PostOverlapHelpsLittleAtScale) {
  // §4.1.4 future work, quantified: at small scale (long compute) the post
  // phase hides almost entirely; at 2048 GPUs compute is ~2 s while
  // D2H+Reduce is ~10 s, so most of it stays serial — confirming the
  // paper's decision not to implement it.
  SimConfig overlap;
  overlap.overlap_post = true;

  const SimResult small_plain = simulate(problem_4k(), 64);
  const SimResult small_over = simulate(problem_4k(), 64, overlap);
  const double saved_small = small_plain.t_runtime - small_over.t_runtime;
  EXPECT_NEAR(saved_small, small_plain.t_d2h + small_plain.t_reduce, 0.5);

  const SimResult big_plain = simulate(problem_4k(), 2048);
  const SimResult big_over = simulate(problem_4k(), 2048, overlap);
  const double saved_big = big_plain.t_runtime - big_over.t_runtime;
  EXPECT_LT(saved_big, 0.5 * (big_plain.t_d2h + big_plain.t_reduce));
  // Never slower, never better than removing the whole post phase.
  EXPECT_LE(big_over.t_runtime, big_plain.t_runtime);
  EXPECT_GE(big_over.t_runtime, big_plain.t_compute + big_plain.t_store);
}

TEST(Platforms, AwsUnderHundredDollars) {
  // Section 6.2.1: a 4K reconstruction on 256 p3.8xlarge instances costs
  // less than $100 with per-second billing.
  const auto est = platforms::estimate_aws(problem_4k(), 256 * 4);
  EXPECT_EQ(est.instances, 256);
  EXPECT_LT(est.cost_usd, 100.0);
  EXPECT_GT(est.cost_usd, 1.0);  // and it is not free
  // The 10 Gbps network makes the collective-bound pipeline slower than
  // ABCI's InfiniBand at equal GPU count (total runtime can still win
  // because per-instance NICs aggregate more store bandwidth than the
  // shared GPFS).
  const SimResult abci = simulate(problem_4k(), 1024);
  EXPECT_GT(est.sim.t_compute, abci.t_compute);
  EXPECT_GT(est.sim.t_allgather, abci.t_allgather);
}

TEST(Platforms, AwsRequiresWholeInstances) {
  EXPECT_THROW(platforms::estimate_aws(problem_4k(), 130), ifdk::ConfigError);
}

// ---- Plan-driven simulation ------------------------------------------------

/// ABCI-scale plan for `problem` on `ranks` ranks (R via Eq. 7).
DecompositionPlan make_plan(const Problem& problem, int ranks,
                            std::size_t resident_slabs = 1) {
  IfdkOptions options;
  options.ranks = ranks;
  options.rows = 0;
  return DecompositionPlan::make(geo::make_standard_geometry(problem),
                                 options, -1, resident_slabs);
}

TEST(SimulatorPlan, MatchesProblemLevelSimulate) {
  // simulate_plan must reproduce simulate() exactly when the plan resolves
  // the same grid — one recurrence, two entry points.
  for (const int gpus : {128, 512, 2048}) {
    const DecompositionPlan plan = make_plan(problem_4k(), gpus);
    const SimResult from_plan = simulate_plan(plan);
    const SimResult from_problem =
        simulate(problem_4k(), gpus, {}, plan.grid.rows);
    EXPECT_EQ(from_plan.grid.rows, from_problem.grid.rows);
    EXPECT_EQ(from_plan.rounds, from_problem.rounds);
    EXPECT_DOUBLE_EQ(from_plan.t_compute, from_problem.t_compute);
    EXPECT_DOUBLE_EQ(from_plan.t_runtime, from_problem.t_runtime);
    EXPECT_DOUBLE_EQ(from_plan.gups, from_problem.gups);
  }
}

TEST(SimulatorStream, PipeliningBeatsSequentialAndRespectsBounds) {
  // N identical volumes streamed through one world: the stream must finish
  // faster than N sequential runs (volume v+1's compute hides behind volume
  // v's post phase) but no faster than N times the bp-bound compute.
  const DecompositionPlan plan = make_plan(problem_4k(), 2048, 2);
  const std::size_t n = 6;
  const std::vector<DecompositionPlan> plans(n, plan);
  const StreamSimResult stream = simulate_stream(plans);
  const SimResult single = simulate_plan(plan);

  ASSERT_EQ(stream.volumes, n);
  EXPECT_EQ(stream.ranks, 2048);
  EXPECT_EQ(stream.regrids, 0u);
  EXPECT_GT(stream.t_total, single.t_runtime);
  EXPECT_LT(stream.t_total, static_cast<double>(n) * single.t_runtime);
  EXPECT_NEAR(stream.volumes_per_second,
              static_cast<double>(n) / stream.t_total, 1e-12);

  // Per-epoch timeline is monotone and consistent.
  ASSERT_EQ(stream.epochs.size(), n);
  double prev_done = 0;
  for (const EpochSim& e : stream.epochs) {
    EXPECT_LE(e.bp_done, e.post_start + 1e-12);
    EXPECT_LT(e.post_start, e.done);
    EXPECT_GT(e.done, prev_done);
    prev_done = e.done;
  }
  EXPECT_DOUBLE_EQ(stream.t_total, stream.epochs.back().done);
}

TEST(SimulatorStream, MixedGeometrySequenceResplitsAndStillPipelines) {
  // Alternating 4K / half-depth frames resolve different R (64 vs 32 with
  // the streaming double buffer resident): the simulator must count the
  // re-splits, charge them, and still predict a pipelined stream.
  const Problem full = problem_4k();
  const Problem half{{2048, 2048, 4096}, {4096, 4096, 2048}};
  std::vector<DecompositionPlan> plans;
  for (int v = 0; v < 6; ++v) {
    plans.push_back(make_plan(v % 2 == 0 ? full : half, 2048, 2));
  }
  ASSERT_NE(plans[0].grid.rows, plans[1].grid.rows);

  const StreamSimResult stream = simulate_stream(plans);
  EXPECT_EQ(stream.regrids, 5u);  // every boundary changes the grid
  for (std::size_t v = 0; v < stream.epochs.size(); ++v) {
    EXPECT_EQ(stream.epochs[v].regrid, v > 0);
    EXPECT_EQ(stream.epochs[v].grid.rows, plans[v].grid.rows);
  }

  // Against the homogeneous stream of only full-size frames, the mixed
  // stream (half the work on odd frames) must be faster per volume.
  const std::vector<DecompositionPlan> all_full(6, plans[0]);
  EXPECT_GT(stream.volumes_per_second,
            simulate_stream(all_full).volumes_per_second);

  // A replan cost of zero can only help; a large one must hurt.
  SimConfig free_replan;
  free_replan.replan_s = 0.0;
  SimConfig slow_replan;
  slow_replan.replan_s = 10.0;
  EXPECT_LE(simulate_stream(plans, free_replan).t_total, stream.t_total);
  EXPECT_GT(simulate_stream(plans, slow_replan).t_total, stream.t_total);
}

TEST(SimulatorStream, RejectsMixedRankCounts) {
  std::vector<DecompositionPlan> plans;
  plans.push_back(make_plan(problem_4k(), 2048));
  plans.push_back(make_plan(problem_4k(), 1024));
  EXPECT_THROW(simulate_stream(plans), ifdk::ConfigError);
}

// ---- Iterate-loop recurrence ------------------------------------------------

TEST(SimulatorIterative, PhasesComposeAndScaleWithIterationsSubsetsRanks) {
  const DecompositionPlan plan = make_plan(problem_2k(), 128);
  const IterSimResult five = simulate_iterative(plan, 5, 1);
  EXPECT_GT(five.t_setup, 0.0);
  EXPECT_GT(five.t_iteration, 0.0);
  EXPECT_GT(five.t_total, five.t_setup + 5 * five.t_iteration);

  // The recurrence is linear in the iteration count: five more iterations
  // cost exactly five more t_iteration.
  const IterSimResult ten = simulate_iterative(plan, 10, 1);
  EXPECT_DOUBLE_EQ(ten.t_iteration, five.t_iteration);
  EXPECT_DOUBLE_EQ(ten.t_total - five.t_total, 5 * five.t_iteration);

  // More subsets = same compute per iteration but one volume all-reduce per
  // sweep instead of one total: strictly more collective time.
  const IterSimResult os = simulate_iterative(plan, 5, 4);
  EXPECT_GT(os.t_iteration, five.t_iteration);

  // More ranks shrink the per-rank view share, so the compute-dominated
  // iteration shortens.
  const IterSimResult wide = simulate_iterative(make_plan(problem_2k(), 512),
                                                5, 1);
  EXPECT_LT(wide.t_iteration, five.t_iteration);

  // One rank: the all-reduce degenerates to a local copy (free), so the
  // single-subset iteration is pure compute.
  IfdkOptions solo;
  solo.ranks = 1;
  solo.rows = 1;
  const DecompositionPlan p1 = DecompositionPlan::make(
      geo::make_standard_geometry({{64, 64, 8}, {32, 32, 32}}), solo);
  const IterSimResult single = simulate_iterative(p1, 3, 1);
  EXPECT_GT(single.t_iteration, 0.0);
}

TEST(SimulatorQueue, MixedQueueComposesStreamsAndSerialIterativeJobs) {
  const DecompositionPlan plan = make_plan(problem_2k(), 128);

  // An all-FDK queue predicts exactly what the plan-span overload predicts.
  const std::vector<QueuedJob> all_fdk = {{plan}, {plan}, {plan}};
  const std::vector<DecompositionPlan> plans = {plan, plan, plan};
  const std::vector<double> mixed_entry =
      predict_queue_completion(std::span<const QueuedJob>(all_fdk));
  const std::vector<double> plan_entry =
      predict_queue_completion(std::span<const DecompositionPlan>(plans));
  ASSERT_EQ(mixed_entry.size(), plan_entry.size());
  for (std::size_t i = 0; i < plan_entry.size(); ++i) {
    EXPECT_DOUBLE_EQ(mixed_entry[i], plan_entry[i]) << "job " << i;
  }

  // FDK, ITER, FDK: the iterative job runs serially between the two FDK
  // streams, so each completion is the running clock plus that job's own
  // recurrence — and the order is strictly increasing.
  const std::vector<QueuedJob> mixed = {
      {plan}, {plan, /*iterative=*/true, /*iterations=*/4, /*subsets=*/2},
      {plan}};
  const std::vector<double> done =
      predict_queue_completion(std::span<const QueuedJob>(mixed));
  ASSERT_EQ(done.size(), 3u);
  EXPECT_GT(done[0], 0.0);
  EXPECT_LT(done[0], done[1]);
  EXPECT_LT(done[1], done[2]);
  const StreamSimResult solo_fdk = simulate_stream({&plan, 1});
  const IterSimResult iter = simulate_iterative(plan, 4, 2);
  EXPECT_DOUBLE_EQ(done[1], solo_fdk.t_total + iter.t_total);
  EXPECT_DOUBLE_EQ(done[2],
                   solo_fdk.t_total + iter.t_total + solo_fdk.t_total);
}

TEST(Platforms, Dgx2ReasonableForFourKAndFastForTwoK) {
  // Section 6.2.2 claims 4K "within a minute" on a DGX-2; our model, which
  // charges the two sequential slab passes a 16-GPU box needs for R=32,
  // lands within ~2x of that claim (see EXPERIMENTS.md) and well under the
  // 2048-GPU 8K time. 2048^3 fits in one pass and finishes fast.
  const auto four_k = platforms::estimate_dgx2(problem_4k());
  EXPECT_LT(four_k.t_runtime, 150.0);
  EXPECT_GT(four_k.t_runtime, 30.0);  // one box is not a supercomputer
  const auto two_k = platforms::estimate_dgx2(problem_2k());
  EXPECT_LT(two_k.t_runtime, 30.0);
  EXPECT_LT(two_k.t_runtime, four_k.t_runtime);
}

TEST(SimulatorCompression, ByteDiscountsShrinkReduceAndStorePhases) {
  // The bytes-on-the-wire discount: feeding measured compression ratios
  // into SimConfig must shrink exactly the phases that move the discounted
  // bytes — t_reduce for the wire ratio, t_store for the store ratio — and
  // leave the compute pipeline untouched.
  const DecompositionPlan plan = make_plan(problem_4k(), 2048, 2);
  const SimResult base = simulate_plan(plan);

  SimConfig wire;
  wire.wire_compression_ratio = 2.0;
  const SimResult wired = simulate_plan(plan, wire);
  EXPECT_LT(wired.t_reduce, base.t_reduce);
  EXPECT_DOUBLE_EQ(wired.t_store, base.t_store);
  EXPECT_DOUBLE_EQ(wired.t_compute, base.t_compute);
  EXPECT_LT(wired.t_runtime, base.t_runtime);

  SimConfig store;
  store.store_compression_ratio = 3.0;
  const SimResult stored = simulate_plan(plan, store);
  EXPECT_LT(stored.t_store, base.t_store);
  EXPECT_DOUBLE_EQ(stored.t_reduce, base.t_reduce);
  EXPECT_DOUBLE_EQ(stored.t_compute, base.t_compute);
  // The stripe-efficiency term is applied to the DISCOUNTED slices, so the
  // store phase shrinks by LESS than the raw ratio (smaller objects waste
  // more of each PFS stripe) — the discount must not be double-counted as
  // a free 3x.
  EXPECT_GT(stored.t_store, base.t_store / 3.0);

  // A ratio below 1 (header-overhead regime measured on small runs) must
  // model a cost, not a win.
  SimConfig bloat;
  bloat.wire_compression_ratio = 0.99;
  EXPECT_GT(simulate_plan(plan, bloat).t_reduce, base.t_reduce);

  // The streaming forecast inherits the discounts: a 2,048-rank stream
  // with both ratios applied finishes measurably earlier.
  const std::vector<DecompositionPlan> plans(4, plan);
  SimConfig both;
  both.wire_compression_ratio = 2.0;
  both.store_compression_ratio = 3.0;
  const StreamSimResult fast = simulate_stream(plans, both);
  const StreamSimResult slow = simulate_stream(plans);
  EXPECT_LT(fast.t_total, slow.t_total);
  EXPECT_GT(fast.volumes_per_second, slow.volumes_per_second);
}

}  // namespace
}  // namespace ifdk::cluster
