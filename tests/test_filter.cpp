// Filtering stage tests: ramp kernel structure, window behaviour, cosine
// weighting table, and the frequency response of the full row filter.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/math_util.h"
#include "common/thread_pool.h"
#include "filter/filter_engine.h"
#include "filter/ramp.h"
#include "geometry/cbct.h"

namespace ifdk::filter {
namespace {

geo::CbctGeometry small_geometry() {
  return geo::make_standard_geometry({{64, 64, 90}, {48, 48, 48}});
}

TEST(Ramp, RamLakStructure) {
  const double tau = 1.0;
  const auto k = make_ramp_kernel(8, tau, RampWindow::kRamLak, 1.0);
  ASSERT_EQ(k.size(), 17u);
  EXPECT_DOUBLE_EQ(k[8], 0.25);                 // center: 1/(4 tau^2)
  EXPECT_DOUBLE_EQ(k[9], -1.0 / (kPi * kPi));   // n = 1
  EXPECT_DOUBLE_EQ(k[10], 0.0);                 // n = 2 (even taps vanish)
  EXPECT_DOUBLE_EQ(k[11], -1.0 / (9 * kPi * kPi));
  // Symmetry.
  for (std::size_t n = 0; n <= 8; ++n) EXPECT_DOUBLE_EQ(k[8 - n], k[8 + n]);
}

TEST(Ramp, TauScaling) {
  const auto k1 = make_ramp_kernel(4, 1.0, RampWindow::kRamLak, 1.0);
  const auto k2 = make_ramp_kernel(4, 2.0, RampWindow::kRamLak, 1.0);
  for (std::size_t i = 0; i < k1.size(); ++i) {
    EXPECT_NEAR(k2[i], k1[i] / 4.0, 1e-12);  // 1/tau^2 scaling
  }
}

TEST(Ramp, DcResponseNearZero) {
  // The ramp suppresses DC: the kernel taps must sum to ~0 (exactly 0 in the
  // infinite limit; the truncated sum is the residual 1/(pi^2) tail).
  const auto k = make_ramp_kernel(512, 1.0, RampWindow::kRamLak, 1.0);
  const double sum = std::accumulate(k.begin(), k.end(), 0.0);
  EXPECT_LT(std::abs(sum), 2e-3);
}

TEST(Ramp, WindowsAttenuateHighFrequencies) {
  // At mid-band (w = pi/2) the window gains order strictly:
  // RamLak (1.0) > SheppLogan (sinc(pi/4) ~ .90) > Cosine (cos(pi/4) ~ .71)
  // > Hamming (.54) > Hann (.50).
  const std::size_t hw = 64;
  auto response_at = [&](RampWindow w, double omega) {
    const auto k = make_ramp_kernel(hw, 1.0, w, 1.0);
    double re = 0, im = 0;
    for (std::size_t n = 0; n < k.size(); ++n) {
      const double ph =
          omega * (static_cast<double>(n) - static_cast<double>(hw));
      re += k[n] * std::cos(ph);
      im -= k[n] * std::sin(ph);
    }
    return std::sqrt(re * re + im * im);
  };
  const double omega = kPi / 2.0;
  const double ramlak = response_at(RampWindow::kRamLak, omega);
  const double shepp = response_at(RampWindow::kSheppLogan, omega);
  const double cosine = response_at(RampWindow::kCosine, omega);
  const double hamming = response_at(RampWindow::kHamming, omega);
  const double hann = response_at(RampWindow::kHann, omega);
  EXPECT_GT(ramlak, shepp);
  EXPECT_GT(shepp, cosine);
  EXPECT_GT(cosine, hamming);
  EXPECT_GT(hamming, hann);
  // Quantitative: the gains track the analytic window values on the
  // ramp's mid-band response |H| ~ pi/2.
  EXPECT_NEAR(shepp / ramlak, std::sin(kPi / 4) / (kPi / 4), 0.03);
  EXPECT_NEAR(cosine / ramlak, std::cos(kPi / 4), 0.03);
  EXPECT_NEAR(hamming / ramlak, 0.54, 0.03);
  EXPECT_NEAR(hann / ramlak, 0.50, 0.03);
  // And at Nyquist, cosine and Hann suppress (almost) everything.
  EXPECT_LT(response_at(RampWindow::kCosine, kPi),
            0.05 * response_at(RampWindow::kRamLak, kPi));
  EXPECT_LT(response_at(RampWindow::kHann, kPi),
            0.05 * response_at(RampWindow::kRamLak, kPi));
}

TEST(Ramp, WindowRoundTrip) {
  for (auto w : {RampWindow::kRamLak, RampWindow::kSheppLogan,
                 RampWindow::kCosine, RampWindow::kHamming, RampWindow::kHann}) {
    EXPECT_EQ(ramp_window_from_string(to_string(w)), w);
  }
  EXPECT_THROW(ramp_window_from_string("boxcar"), ConfigError);
}

TEST(Ramp, WindowParsingIsCaseInsensitive) {
  EXPECT_EQ(ramp_window_from_string("Ram-Lak"), RampWindow::kRamLak);
  EXPECT_EQ(ramp_window_from_string("SHEPP-LOGAN"), RampWindow::kSheppLogan);
  EXPECT_EQ(ramp_window_from_string("Cosine"), RampWindow::kCosine);
  EXPECT_EQ(ramp_window_from_string("HaMMinG"), RampWindow::kHamming);
  EXPECT_EQ(ramp_window_from_string("HANN"), RampWindow::kHann);
}

TEST(Ramp, UnknownWindowErrorNamesTheValidOptions) {
  try {
    ramp_window_from_string("boxcar");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown ramp window \"boxcar\""), std::string::npos)
        << msg;
    for (const char* name :
         {"ram-lak", "shepp-logan", "cosine", "hamming", "hann"}) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg << " missing "
                                                   << name;
    }
  }
}

TEST(Ramp, ZeroHalfWidthIsAConfigError) {
  EXPECT_THROW(make_ramp_kernel(0, 1.0, RampWindow::kRamLak, 1.0),
               ConfigError);
}

TEST(FilterEngine, CosineTableShape) {
  const auto g = small_geometry();
  FilterEngine engine(g);
  const Image2D& cos = engine.cosine_table();
  ASSERT_EQ(cos.width(), g.nu);
  ASSERT_EQ(cos.height(), g.nv);
  // Maximum at the detector center, strictly below 1 at the corners, and
  // symmetric in both axes.
  const float center = 0.25f * (cos.at(31, 31) + cos.at(32, 31) +
                                cos.at(31, 32) + cos.at(32, 32));
  EXPECT_NEAR(center, 1.0f, 1e-4f);
  EXPECT_LT(cos.at(0, 0), center);
  for (std::size_t v = 0; v < g.nv; v += 7) {
    for (std::size_t u = 0; u < g.nu; u += 5) {
      EXPECT_FLOAT_EQ(cos.at(u, v), cos.at(g.nu - 1 - u, v));
      EXPECT_FLOAT_EQ(cos.at(u, v), cos.at(u, g.nv - 1 - v));
    }
  }
  // Closed form at a corner.
  const double cu = (static_cast<double>(g.nu) - 1) / 2 * g.du;
  const double cv = (static_cast<double>(g.nv) - 1) / 2 * g.dv;
  const double expected = g.D / std::sqrt(g.D * g.D + cu * cu + cv * cv);
  EXPECT_NEAR(cos.at(0, 0), expected, 1e-6);
}

TEST(FilterEngine, ConstantRowFiltersToNearZero) {
  // A constant signal has no ramp response: after filtering, a uniform
  // projection must be near zero away from the row edges.
  const auto g = small_geometry();
  FilterEngine engine(g);
  Image2D proj(g.nu, g.nv);
  proj.fill(1.0f);
  engine.apply(proj);
  // Compare against the peak response of an impulse to set the scale.
  Image2D impulse(g.nu, g.nv);
  impulse.at(32, 32) = 1.0f;
  FilterEngine engine2(g);
  engine2.apply(impulse);
  const float peak = std::abs(impulse.at(32, 32));
  EXPECT_GT(peak, 0);
  for (std::size_t u = 16; u < 48; ++u) {
    EXPECT_LT(std::abs(proj.at(u, 32)), 0.25f * peak) << "u=" << u;
  }
}

TEST(FilterEngine, ImpulseResponseMatchesKernel) {
  const auto g = small_geometry();
  FilterEngine engine(g);
  Image2D proj(g.nu, g.nv);
  const std::size_t uc = 32, vc = 20;
  proj.at(uc, vc) = 1.0f;
  const float w = engine.cosine_table().at(uc, vc);
  engine.apply(proj);
  const auto& k = engine.kernel();
  const std::size_t half = k.size() / 2;
  for (std::ptrdiff_t off = -8; off <= 8; ++off) {
    const float expected =
        w * static_cast<float>(k[half + static_cast<std::size_t>(off + 8) - 8]);
    (void)expected;
    const std::size_t u = uc + static_cast<std::size_t>(off + 32) - 32;
    EXPECT_NEAR(proj.at(u, vc),
                w * static_cast<float>(k[static_cast<std::size_t>(
                    static_cast<std::ptrdiff_t>(half) + off)]),
                1e-5f * std::abs(w) + 1e-7f);
  }
  // Other rows remain zero (the filter is row-local).
  for (std::size_t u = 0; u < g.nu; ++u) {
    EXPECT_EQ(proj.at(u, vc + 1), 0.0f);
    EXPECT_EQ(proj.at(u, vc - 1), 0.0f);
  }
}

TEST(FilterEngine, BatchMatchesSequential) {
  const auto g = small_geometry();
  ThreadPool pool(3);

  std::vector<Image2D> batch;
  std::vector<Image2D> reference;
  for (int n = 0; n < 5; ++n) {
    Image2D img(g.nu, g.nv);
    for (std::size_t v = 0; v < g.nv; ++v) {
      for (std::size_t u = 0; u < g.nu; ++u) {
        img.at(u, v) = static_cast<float>((u * 13 + v * 7 + n * 31) % 17) -
                       8.0f;
      }
    }
    Image2D copy(g.nu, g.nv, false);
    for (std::size_t i = 0; i < img.pixels(); ++i) {
      copy.data()[i] = img.data()[i];
    }
    batch.push_back(std::move(img));
    reference.push_back(std::move(copy));
  }

  FilterOptions with_pool;
  with_pool.pool = &pool;
  FilterEngine parallel_engine(g, with_pool);
  parallel_engine.apply_batch(batch);

  FilterEngine serial_engine(g);
  for (auto& r : reference) serial_engine.apply(r);

  for (std::size_t n = 0; n < batch.size(); ++n) {
    for (std::size_t i = 0; i < batch[n].pixels(); ++i) {
      EXPECT_NEAR(batch[n].data()[i], reference[n].data()[i], 1e-6f)
          << "projection " << n << " pixel " << i;
    }
  }
}

TEST(FilterEngine, RejectsMismatchedProjection) {
  const auto g = small_geometry();
  FilterEngine engine(g);
  Image2D wrong(32, 32);
  EXPECT_THROW(engine.apply(wrong), ConfigError);
}

TEST(FilterEngine, RejectsOversizedKernelHalfWidth) {
  // An oversized half-width used to silently inflate padded_size(); now the
  // constructor rejects it, naming both the offending value and Nu.
  const auto g = small_geometry();
  FilterOptions options;
  options.kernel_half_width = g.nu;  // first invalid value
  try {
    FilterEngine engine(g, options);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("kernel_half_width"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(g.nu)), std::string::npos) << msg;
  }
  // The largest valid width is Nu - 1, which is also what 0 selects.
  options.kernel_half_width = g.nu - 1;
  EXPECT_NO_THROW(FilterEngine(g, options));
}

TEST(FilterEngine, DefaultHalfWidthEqualsExplicitFullRow) {
  // 0 means "cover the row": the default engine and an explicit Nu - 1 must
  // build the identical kernel.
  const auto g = small_geometry();
  FilterOptions expl;
  expl.kernel_half_width = g.nu - 1;
  FilterEngine a(g), b(g, expl);
  ASSERT_EQ(a.kernel().size(), 2 * (g.nu - 1) + 1);
  ASSERT_EQ(a.kernel().size(), b.kernel().size());
  for (std::size_t i = 0; i < a.kernel().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.kernel()[i], b.kernel()[i]) << "tap " << i;
  }
}

TEST(FilterEngine, WindowChangesKernelNotCost) {
  // Paper §2.2.2: the window shape affects image quality, not the compute
  // cost. All windows must produce a kernel of identical support.
  const auto g = small_geometry();
  FilterOptions a, b;
  a.window = RampWindow::kRamLak;
  b.window = RampWindow::kHann;
  FilterEngine ea(g, a), eb(g, b);
  EXPECT_EQ(ea.kernel().size(), eb.kernel().size());
  // And the Hann kernel's center tap is strictly smaller (smoother filter).
  const std::size_t c = ea.kernel().size() / 2;
  EXPECT_LT(eb.kernel()[c], ea.kernel()[c]);
}

}  // namespace
}  // namespace ifdk::filter
