// gpusim tests: device memory accounting and OOM behaviour (the constraint
// behind Section 4.1.5's R selection), transfer cost accounting, and the
// Table-4-calibrated kernel throughput model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/kernel_model.h"
#include "perfmodel/paper_reference.h"

namespace ifdk::gpusim {
namespace {

DeviceSpec small_spec() {
  DeviceSpec spec;
  spec.memory_bytes = 1 << 20;  // 1 MiB toy device
  return spec;
}

TEST(Device, AllocateTracksUsage) {
  Device dev(small_spec());
  EXPECT_EQ(dev.used_bytes(), 0u);
  {
    DeviceBuffer a = dev.allocate(1000);
    EXPECT_GE(dev.used_bytes(), 1000u);
    DeviceBuffer b = dev.allocate(2000);
    EXPECT_GE(dev.used_bytes(), 3000u);
  }
  // RAII frees both.
  EXPECT_EQ(dev.used_bytes(), 0u);
}

TEST(Device, OutOfMemoryThrows) {
  Device dev(small_spec());
  DeviceBuffer big = dev.allocate(900 << 10);
  EXPECT_THROW(dev.allocate(200 << 10), DeviceOutOfMemory);
  // After the failed allocation the device is still usable.
  DeviceBuffer small = dev.allocate(50 << 10);
  EXPECT_TRUE(small.valid());
}

TEST(Device, SubVolumePlusBatchMatchesPaperConstraint) {
  // Section 4.1.5: 4 * (Nx*Ny*Nz/R + Nu*Nv*Nbatch) <= 16 GB with
  // Nsub_vol = 8 GB: an 8 GB sub-volume plus a 32-projection batch of
  // 2048^2 images must fit on a 16 GB device, but two sub-volumes must not.
  Device dev;  // default 16 GB V100
  DeviceBuffer sub = dev.allocate(8ull << 30);
  DeviceBuffer batch = dev.allocate(2048ull * 2048 * 32 * sizeof(float));
  EXPECT_TRUE(batch.valid());
  EXPECT_THROW(dev.allocate(8ull << 30), DeviceOutOfMemory);
}

TEST(Device, MoveTransfersOwnership) {
  Device dev(small_spec());
  DeviceBuffer a = dev.allocate(4096);
  const std::uint64_t used = dev.used_bytes();
  DeviceBuffer b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(dev.used_bytes(), used);
}

TEST(Device, TransfersCopyDataAndChargeClock) {
  Device dev(small_spec());
  DeviceBuffer buf = dev.allocate(16 * sizeof(float));
  std::vector<float> host{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  const double up = dev.h2d(buf, host.data(), host.size() * sizeof(float));
  EXPECT_GT(up, 0);

  std::vector<float> back(16, 0.0f);
  const double down = dev.d2h(back.data(), buf, back.size() * sizeof(float));
  EXPECT_GT(down, 0);
  EXPECT_EQ(back, host);

  EXPECT_DOUBLE_EQ(dev.virtual_h2d_seconds(), up);
  EXPECT_DOUBLE_EQ(dev.virtual_d2h_seconds(), down);
}

TEST(Device, TransferCostMatchesBandwidthModel) {
  DeviceSpec spec;
  spec.memory_bytes = 1ull << 30;
  spec.pcie_bandwidth_bytes_per_s = 11.9e9;
  spec.pcie_latency_s = 0;
  Device dev(spec);
  DeviceBuffer buf = dev.allocate(256ull << 20);
  std::vector<float> host((256ull << 20) / sizeof(float), 0.0f);
  const double t = dev.h2d(buf, host.data(), 256ull << 20);
  EXPECT_NEAR(t, (256.0 * (1 << 20)) / 11.9e9, 1e-9);
}

TEST(Device, KernelChargeAccumulates) {
  Device dev(small_spec());
  dev.charge_kernel(0.5);
  dev.charge_kernel(0.25);
  EXPECT_NEAR(dev.virtual_kernel_seconds(),
              0.75 + 2 * dev.spec().launch_latency_s, 1e-12);
}

// ---------------------------------------------------------------------------
// KernelModel
// ---------------------------------------------------------------------------

TEST(KernelModel, ReproducesTable4Exactly) {
  KernelModel model;
  for (const auto& row : paper::table4()) {
    const double rtk = model.predict_gups(bp::KernelVariant::kRtk32, row.problem);
    if (std::isnan(row.rtk32)) {
      EXPECT_TRUE(std::isnan(rtk)) << row.problem.to_string();
    } else {
      EXPECT_DOUBLE_EQ(rtk, row.rtk32) << row.problem.to_string();
    }
    EXPECT_DOUBLE_EQ(model.predict_gups(bp::KernelVariant::kL1Tran, row.problem),
                     row.l1_tran);
    EXPECT_DOUBLE_EQ(model.predict_gups(bp::KernelVariant::kBpTex, row.problem),
                     row.bp_tex);
  }
}

TEST(KernelModel, ProposedBeatsRtkForLargeOutputs) {
  // Table 4's headline: L1-Tran wins (up to 1.6x and beyond) whenever the
  // output dominates (alpha <= 32 in every calibration row).
  KernelModel model;
  for (const auto& row : paper::table4()) {
    if (std::isnan(row.rtk32) || row.alpha > 32) continue;
    EXPECT_GT(model.predict_gups(bp::KernelVariant::kL1Tran, row.problem),
              model.predict_gups(bp::KernelVariant::kRtk32, row.problem))
        << row.problem.to_string();
  }
}

TEST(KernelModel, InterpolatesBetweenCalibrationPoints) {
  KernelModel model;
  // alpha = 4 problem not in the table for 512^2 input: 512^2 x 1k -> ~368^3.
  Problem p{{512, 512, 1024}, {512, 512, 128}};  // alpha = 8
  const double gups = model.predict_gups(bp::KernelVariant::kL1Tran, p);
  // Must land between the alpha=16 (188.6) and alpha=2 (206.0)-ish levels.
  EXPECT_GT(gups, 150.0);
  EXPECT_LT(gups, 215.0);
}

TEST(KernelModel, PredictionsStayInsideCalibrationEnvelope) {
  // Table 4 is not strictly monotone in alpha alone (input size matters in
  // the cache-bound large-alpha regime), so the model interpolates; every
  // prediction must stay inside the measured min/max for the variant, and
  // the coarse ordering small-alpha >> large-alpha must hold (§4.1.5 II).
  KernelModel model;
  double lo = 1e30, hi = 0;
  for (const auto& row : paper::table4()) {
    lo = std::min(lo, row.l1_tran);
    hi = std::max(hi, row.l1_tran);
  }
  for (double alpha_exp = 10; alpha_exp >= -3; alpha_exp -= 0.5) {
    const auto voxels = static_cast<std::size_t>(
        std::cbrt(512.0 * 512 * 1024 / std::exp2(alpha_exp)));
    if (voxels < 8) continue;
    Problem p{{512, 512, 1024}, {voxels, voxels, voxels}};
    const double gups = model.predict_gups(bp::KernelVariant::kL1Tran, p);
    EXPECT_GE(gups, lo - 1e-9) << "alpha 2^" << alpha_exp;
    EXPECT_LE(gups, hi + 1e-9) << "alpha 2^" << alpha_exp;
  }
  // Output-dominated problems run an order of magnitude faster than
  // input-dominated ones.
  Problem small_alpha{{512, 512, 1024}, {1024, 1024, 2048}};
  Problem large_alpha{{2048, 2048, 1024}, {128, 128, 128}};
  EXPECT_GT(model.predict_gups(bp::KernelVariant::kL1Tran, small_alpha),
            5.0 * model.predict_gups(bp::KernelVariant::kL1Tran, large_alpha));
}

TEST(KernelModel, RtkCannotRunEightGbOutputs) {
  KernelModel model;
  Problem big{{2048, 2048, 4096}, {2048, 2048, 4096}};  // 64 GB output
  EXPECT_TRUE(std::isnan(model.predict_gups(bp::KernelVariant::kRtk32, big)));
  EXPECT_FALSE(std::isnan(model.predict_gups(bp::KernelVariant::kL1Tran, big)));
}

TEST(KernelModel, KernelSecondsMatchesGupsDefinition) {
  KernelModel model;
  const Problem p = paper::table4()[3].problem;  // 512^2x1k -> 1k^3, 211.4
  const double secs = model.kernel_seconds(bp::KernelVariant::kL1Tran, p);
  const double updates = p.updates();
  EXPECT_NEAR(updates / (secs * 1073741824.0), 211.4, 1e-6);
}

TEST(KernelModel, SubVolumeProblemNearPaperKernelRate) {
  // The paper's scaling runs give each GPU an 8 GB sub-volume slab of the
  // 4096^3 volume and report ~200 GUPS for the kernel; the model must
  // predict within ~15% of that.
  KernelModel model;
  Problem p{{2048, 2048, 4096}, {4096, 4096, 128}};  // 8 GB slab
  const double gups = model.predict_gups(bp::KernelVariant::kL1Tran, p);
  EXPECT_GT(gups, 170.0);
  EXPECT_LT(gups, 230.0);
}

}  // namespace
}  // namespace ifdk::gpusim
