// Nonblocking-collective tests: iallgather_ring / ireduce correctness
// against their blocking references, adversarial interleaving with
// point-to-point traffic and other collectives on the same communicator,
// out-of-order waits, pipelined segment callbacks, and failure injection
// (one rank aborting mid-collective) — the PR 2 failure-injection suite
// extended to the overlap primitives.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <utility>
#include <vector>

#include "minimpi/minimpi.h"

namespace ifdk::mpi {
namespace {

TEST(NonblockingCollectives, IallgatherRingMatchesBlocking) {
  for (int ranks : {1, 2, 3, 5, 8}) {
    run_world(ranks, [ranks](Comm& comm) {
      std::array<float, 3> mine{};
      for (int i = 0; i < 3; ++i) {
        mine[static_cast<std::size_t>(i)] =
            static_cast<float>(comm.rank() * 10 + i);
      }
      const std::size_t total = static_cast<std::size_t>(3 * comm.size());
      std::vector<float> blocking(total), nonblocking(total);
      comm.allgather_ring(mine.data(), sizeof(mine), blocking.data());
      Comm::CollectiveRequest req =
          comm.iallgather_ring(mine.data(), sizeof(mine), nonblocking.data());
      req.wait();
      EXPECT_FALSE(req.valid());
      EXPECT_EQ(blocking, nonblocking) << ranks << " ranks";
    });
  }
}

TEST(NonblockingCollectives, IreduceBitwiseMatchesBlockingReduce) {
  // Every segment size must give bitwise-identical sums to the blocking
  // linear reduce (same ascending-rank fold), including segments that do
  // not divide the count and a segment larger than the payload.
  for (const std::size_t segment : {std::size_t{1}, std::size_t{7},
                                    std::size_t{64}, std::size_t{100000}}) {
    run_world(5, [segment](Comm& comm) {
      constexpr std::size_t kCount = 1000;
      std::vector<float> mine(kCount);
      for (std::size_t i = 0; i < kCount; ++i) {
        mine[i] = (comm.rank() % 2 == 0 ? 1.0f : -1.0f) *
                  (1.0f + static_cast<float>(i) * 1e-6f) *
                  static_cast<float>(1 + comm.rank());
      }
      std::vector<float> blocking(kCount), nonblocking(kCount);
      comm.reduce(mine.data(), blocking.data(), kCount, ReduceOp::kSum, 0);
      Comm::CollectiveRequest req =
          comm.ireduce(mine.data(), nonblocking.data(), kCount, ReduceOp::kSum,
                       /*root=*/0, segment);
      req.wait();
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < kCount; ++i) {
          EXPECT_EQ(blocking[i], nonblocking[i])
              << "segment " << segment << ", element " << i;
        }
      }
    });
  }
}

TEST(NonblockingCollectives, IreduceNonZeroRootMaxAndMin) {
  run_world(6, [](Comm& comm) {
    const float mine = static_cast<float>((comm.rank() * 7) % 5);
    float max_out = -1, min_out = -1;
    Comm::CollectiveRequest rmax =
        comm.ireduce(&mine, &max_out, 1, ReduceOp::kMax, 4, 1);
    Comm::CollectiveRequest rmin =
        comm.ireduce(&mine, &min_out, 1, ReduceOp::kMin, 4, 1);
    rmax.wait();
    rmin.wait();
    if (comm.rank() == 4) {
      EXPECT_FLOAT_EQ(max_out, 4.0f);  // values are 0,2,4,1,3,0
      EXPECT_FLOAT_EQ(min_out, 0.0f);
    }
  });
}

TEST(NonblockingCollectives, IreduceSegmentCallbackStreamsPrefixes) {
  run_world(3, [](Comm& comm) {
    constexpr std::size_t kCount = 10;
    constexpr std::size_t kSegment = 4;  // segments: 4, 4, 2
    std::vector<float> mine(kCount, static_cast<float>(comm.rank() + 1));
    std::vector<float> out(kCount);
    std::vector<std::pair<std::size_t, std::size_t>> seen;
    Comm::CollectiveRequest req = comm.ireduce(
        mine.data(), out.data(), kCount, ReduceOp::kSum, 0, kSegment,
        comm.rank() == 0
            ? Comm::SegmentCallback([&](std::size_t off, std::size_t len) {
                // The reduced prefix must already hold final values when
                // the callback fires.
                for (std::size_t i = off; i < off + len; ++i) {
                  EXPECT_FLOAT_EQ(out[i], 6.0f);
                }
                seen.emplace_back(off, len);
              })
            : Comm::SegmentCallback{});
    req.wait();
    if (comm.rank() == 0) {
      ASSERT_EQ(seen.size(), 3u);
      EXPECT_EQ(seen[0], (std::pair<std::size_t, std::size_t>{0, 4}));
      EXPECT_EQ(seen[1], (std::pair<std::size_t, std::size_t>{4, 4}));
      EXPECT_EQ(seen[2], (std::pair<std::size_t, std::size_t>{8, 2}));
    }
  });
}

TEST(NonblockingCollectives, OutOfOrderWaits) {
  // Initiate an iallgather and an ireduce back to back, then wait them in
  // reverse order: tag reservation at initiation must keep the two message
  // streams separate.
  run_world(4, [](Comm& comm) {
    const float gathered = static_cast<float>(comm.rank() + 1);
    const float summed = static_cast<float>(10 * (comm.rank() + 1));
    std::vector<float> gather_out(4);
    float reduce_out = 0;
    Comm::CollectiveRequest gather =
        comm.iallgather_ring(&gathered, sizeof(float), gather_out.data());
    Comm::CollectiveRequest reduce =
        comm.ireduce(&summed, &reduce_out, 1, ReduceOp::kSum, 0, 1);
    reduce.wait();  // waited before the earlier-initiated gather
    gather.wait();
    for (int r = 0; r < 4; ++r) {
      EXPECT_FLOAT_EQ(gather_out[static_cast<std::size_t>(r)],
                      static_cast<float>(r + 1));
    }
    if (comm.rank() == 0) {
      EXPECT_FLOAT_EQ(reduce_out, 100.0f);
    }
  });
}

TEST(NonblockingCollectives, TwoOutstandingIallgathers) {
  // The double-buffered pattern run_distributed uses: round t+1 initiated
  // while round t is still outstanding, into separate buffers.
  run_world(3, [](Comm& comm) {
    constexpr int kRounds = 6;
    std::vector<float> bufs[2];
    bufs[0].resize(3);
    bufs[1].resize(3);
    Comm::CollectiveRequest pending;
    int pending_round = -1;
    auto check = [&](int round, const std::vector<float>& buf) {
      for (int r = 0; r < 3; ++r) {
        EXPECT_FLOAT_EQ(buf[static_cast<std::size_t>(r)],
                        static_cast<float>(100 * round + r));
      }
    };
    for (int t = 0; t < kRounds; ++t) {
      const float mine = static_cast<float>(100 * t + comm.rank());
      Comm::CollectiveRequest req =
          comm.iallgather_ring(&mine, sizeof(float), bufs[t % 2].data());
      if (pending.valid()) {
        pending.wait();
        check(pending_round, bufs[pending_round % 2]);
      }
      pending = std::move(req);
      pending_round = t;
    }
    pending.wait();
    check(pending_round, bufs[pending_round % 2]);
  });
}

TEST(NonblockingCollectives, InterleaveWithPointToPointAndCollectives) {
  // While a nonblocking gather and a segmented reduce are outstanding, run
  // user-tag point-to-point traffic and a blocking collective on the same
  // communicator; nothing may cross-match.
  for (int ranks : {2, 4}) {
    run_world(ranks, [](Comm& comm) {
      const int p = comm.size();
      for (int round = 0; round < 3; ++round) {
        const float mine = static_cast<float>(comm.rank() + 1 + round);
        std::vector<float> gather_out(static_cast<std::size_t>(p));
        float sum_out = 0;
        Comm::CollectiveRequest gather =
            comm.iallgather_ring(&mine, sizeof(float), gather_out.data());
        Comm::CollectiveRequest reduce =
            comm.ireduce(&mine, &sum_out, 1, ReduceOp::kSum, 0, 1);

        // User point-to-point traffic in the gap (ring neighbour exchange).
        const int right = (comm.rank() + 1) % p;
        const int left = (comm.rank() + p - 1) % p;
        int token = comm.rank() * 1000 + round;
        int from_left = -1;
        comm.sendrecv(right, &token, left, &from_left, sizeof(int),
                      /*tag=*/round);
        EXPECT_EQ(from_left, left * 1000 + round);

        // A blocking collective initiated while both requests are in
        // flight: its tags come after the reserved blocks.
        float bcast_val = comm.rank() == 0 ? 42.0f + round : 0.0f;
        comm.bcast(&bcast_val, sizeof(float), 0);
        EXPECT_FLOAT_EQ(bcast_val, 42.0f + round);

        gather.wait();
        reduce.wait();
        for (int r = 0; r < p; ++r) {
          EXPECT_FLOAT_EQ(gather_out[static_cast<std::size_t>(r)],
                          static_cast<float>(r + 1 + round));
        }
        if (comm.rank() == 0) {
          EXPECT_FLOAT_EQ(sum_out,
                          static_cast<float>(p * (p + 1) / 2 + p * round));
        }
      }
    });
  }
}

TEST(NonblockingCollectives, OnSubCommunicators) {
  // The iFDK shape: iallgather down the columns, ireduce across the rows of
  // a 2x2 grid, both nonblocking and outstanding simultaneously.
  static constexpr int kR = 2, kC = 2;
  run_world(kR * kC, [](Comm& comm) {
    const int col = comm.rank() / kR;
    const int row = comm.rank() % kR;
    Comm col_comm = comm.split(col, row);
    Comm row_comm = comm.split(row, col);

    const float mine = static_cast<float>(comm.rank() + 1);
    std::vector<float> gathered(kR);
    float reduced = 0;
    Comm::CollectiveRequest g =
        col_comm.iallgather_ring(&mine, sizeof(float), gathered.data());
    Comm::CollectiveRequest r =
        row_comm.ireduce(&mine, &reduced, 1, ReduceOp::kSum, 0, 1);
    g.wait();
    r.wait();
    for (int rr = 0; rr < kR; ++rr) {
      EXPECT_FLOAT_EQ(gathered[static_cast<std::size_t>(rr)],
                      static_cast<float>(col * kR + rr + 1));
    }
    if (col == 0) {
      EXPECT_FLOAT_EQ(reduced, static_cast<float>((row + 1) + (kR + row + 1)));
    }
  });
}

TEST(NonblockingCollectives, RankAbortMidIreduceUnblocksTheWorld) {
  // One rank initiates the segmented reduce, then dies before contributing
  // its wait; the root is blocked folding segments. The abort protocol must
  // unblock every rank and surface the original error.
  EXPECT_THROW(
      run_world(4,
                [](Comm& comm) {
                  constexpr std::size_t kCount = 1 << 12;
                  std::vector<float> mine(kCount, 1.0f);
                  std::vector<float> out(comm.rank() == 0 ? kCount : 0);
                  if (comm.rank() == 2) {
                    // Post only the first segment's worth by aborting right
                    // after initiation of an unrelated op would be racy;
                    // instead die before initiating at all so the root
                    // never receives rank 2's segments.
                    throw ConfigError("rank 2 exploded mid-pipeline");
                  }
                  Comm::CollectiveRequest req = comm.ireduce(
                      mine.data(), comm.rank() == 0 ? out.data() : nullptr,
                      kCount, ReduceOp::kSum, 0, /*segment_floats=*/64);
                  req.wait();  // root blocks on rank 2's segments -> abort
                }),
      Error);
}

TEST(NonblockingCollectives, RankAbortMidIallgatherUnblocksTheWorld) {
  // A rank dies while its neighbours' ring exchanges are in flight: waits
  // on the surviving ranks must throw instead of hanging.
  EXPECT_THROW(
      run_world(3,
                [](Comm& comm) {
                  const float mine = static_cast<float>(comm.rank());
                  std::vector<float> out(3);
                  if (comm.rank() == 1) {
                    throw ConfigError("rank 1 exploded before the gather");
                  }
                  Comm::CollectiveRequest req =
                      comm.iallgather_ring(&mine, sizeof(float), out.data());
                  req.wait();
                }),
      Error);
}

TEST(NonblockingCollectives, TreeFanInBitwiseMatchesLinearAndBlocking) {
  // The tree relays only concatenate; the root folds ascending-rank — so
  // the tree fan-in must equal both the linear ireduce and the blocking
  // reduce bit for bit, on every world size (power-of-two and not) and
  // segment size.
  for (int ranks : {1, 2, 3, 4, 5, 7, 8}) {
    for (const std::size_t segment :
         {std::size_t{1}, std::size_t{7}, std::size_t{64},
          std::size_t{100000}}) {
      run_world(ranks, [ranks, segment](Comm& comm) {
        constexpr std::size_t kCount = 1000;
        std::vector<float> mine(kCount);
        for (std::size_t i = 0; i < kCount; ++i) {
          mine[i] = (comm.rank() % 2 == 0 ? 1.0f : -1.0f) *
                    (1.0f + static_cast<float>(i) * 1e-6f) *
                    static_cast<float>(1 + comm.rank());
        }
        std::vector<float> blocking(kCount), linear(kCount), tree(kCount);
        comm.reduce(mine.data(), blocking.data(), kCount, ReduceOp::kSum, 0);
        Comm::CollectiveRequest lin =
            comm.ireduce(mine.data(), linear.data(), kCount, ReduceOp::kSum,
                         0, segment, {}, ReduceAlgo::kLinear);
        lin.wait();
        Comm::CollectiveRequest tr =
            comm.ireduce(mine.data(), tree.data(), kCount, ReduceOp::kSum, 0,
                         segment, {}, ReduceAlgo::kTree);
        tr.wait();
        if (comm.rank() == 0) {
          for (std::size_t i = 0; i < kCount; ++i) {
            ASSERT_EQ(blocking[i], linear[i])
                << ranks << " ranks, segment " << segment << ", element " << i;
            ASSERT_EQ(blocking[i], tree[i])
                << ranks << " ranks, segment " << segment << ", element " << i;
          }
        }
      });
    }
  }
}

TEST(NonblockingCollectives, TreeFanInNonZeroRootAllOps) {
  // Rotated tree: non-zero roots exercise the vrank mapping; max/min and
  // sum must all match the blocking reference exactly.
  for (int root : {1, 3, 5}) {
    run_world(6, [root](Comm& comm) {
      constexpr std::size_t kCount = 97;
      std::vector<float> mine(kCount);
      for (std::size_t i = 0; i < kCount; ++i) {
        mine[i] = static_cast<float>((comm.rank() * 13 + static_cast<int>(i)) %
                                     29) -
                  7.0f;
      }
      for (const ReduceOp op :
           {ReduceOp::kSum, ReduceOp::kMax, ReduceOp::kMin}) {
        std::vector<float> blocking(kCount), tree(kCount);
        comm.reduce(mine.data(),
                    comm.rank() == root ? blocking.data() : nullptr, kCount,
                    op, root);
        Comm::CollectiveRequest req = comm.ireduce(
            mine.data(), comm.rank() == root ? tree.data() : nullptr, kCount,
            op, root, /*segment_floats=*/16, {}, ReduceAlgo::kTree);
        req.wait();
        if (comm.rank() == root) {
          for (std::size_t i = 0; i < kCount; ++i) {
            ASSERT_EQ(blocking[i], tree[i]) << "root " << root << ", element "
                                            << i;
          }
        }
      }
    });
  }
}

TEST(NonblockingCollectives, TreeFanInSegmentCallbackStreamsPrefixes) {
  // The root's per-segment streaming contract is fan-in independent.
  run_world(5, [](Comm& comm) {
    constexpr std::size_t kCount = 10;
    constexpr std::size_t kSegment = 4;  // segments: 4, 4, 2
    std::vector<float> mine(kCount, static_cast<float>(comm.rank() + 1));
    std::vector<float> out(kCount);
    std::vector<std::pair<std::size_t, std::size_t>> seen;
    Comm::CollectiveRequest req = comm.ireduce(
        mine.data(), out.data(), kCount, ReduceOp::kSum, 0, kSegment,
        comm.rank() == 0
            ? Comm::SegmentCallback([&](std::size_t off, std::size_t len) {
                for (std::size_t i = off; i < off + len; ++i) {
                  EXPECT_FLOAT_EQ(out[i], 15.0f);  // 1+2+3+4+5
                }
                seen.emplace_back(off, len);
              })
            : Comm::SegmentCallback{},
        ReduceAlgo::kTree);
    req.wait();
    if (comm.rank() == 0) {
      ASSERT_EQ(seen.size(), 3u);
      EXPECT_EQ(seen[0], (std::pair<std::size_t, std::size_t>{0, 4}));
      EXPECT_EQ(seen[1], (std::pair<std::size_t, std::size_t>{4, 4}));
      EXPECT_EQ(seen[2], (std::pair<std::size_t, std::size_t>{8, 2}));
    }
  });
}

TEST(NonblockingCollectives, TwoConcurrentIreduceEpochsDifferentSegments) {
  // Regression for the tag-block audit: the accounting must support
  // MULTIPLE ireduce epochs in flight on one communicator — each epoch
  // reserves its own block at initiation, sized by ITS segment count — so
  // per-volume epochs compose in the streaming pipeline. Waits run in
  // initiation-reversed order, with different segment sizes, roots, and
  // fan-ins per epoch.
  for (const auto& algos :
       {std::pair{ReduceAlgo::kLinear, ReduceAlgo::kLinear},
        std::pair{ReduceAlgo::kTree, ReduceAlgo::kTree},
        std::pair{ReduceAlgo::kTree, ReduceAlgo::kLinear}}) {
    run_world(4, [algos](Comm& comm) {
      constexpr std::size_t kCountA = 1000;
      constexpr std::size_t kCountB = 333;
      std::vector<float> a(kCountA), b(kCountB);
      for (std::size_t i = 0; i < kCountA; ++i) {
        a[i] = static_cast<float>(comm.rank() + 1) +
               static_cast<float>(i) * 0.25f;
      }
      for (std::size_t i = 0; i < kCountB; ++i) {
        b[i] = static_cast<float>(10 * (comm.rank() + 1)) -
               static_cast<float>(i) * 0.5f;
      }
      std::vector<float> ref_a(kCountA), ref_b(kCountB);
      comm.reduce(a.data(), comm.rank() == 0 ? ref_a.data() : nullptr,
                  kCountA, ReduceOp::kSum, 0);
      comm.reduce(b.data(), comm.rank() == 2 ? ref_b.data() : nullptr,
                  kCountB, ReduceOp::kSum, 2);

      std::vector<float> out_a(comm.rank() == 0 ? kCountA : 0);
      std::vector<float> out_b(comm.rank() == 2 ? kCountB : 0);
      // Epoch A: 7-float segments (143 tags). Epoch B, initiated while A is
      // outstanding: 50-float segments (7 tags), different root.
      Comm::CollectiveRequest ra = comm.ireduce(
          a.data(), comm.rank() == 0 ? out_a.data() : nullptr, kCountA,
          ReduceOp::kSum, 0, /*segment_floats=*/7, {}, algos.first);
      Comm::CollectiveRequest rb = comm.ireduce(
          b.data(), comm.rank() == 2 ? out_b.data() : nullptr, kCountB,
          ReduceOp::kSum, 2, /*segment_floats=*/50, {}, algos.second);
      rb.wait();  // initiation-reversed wait order (identical on all ranks)
      ra.wait();
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < kCountA; ++i) {
          ASSERT_EQ(out_a[i], ref_a[i]) << "epoch A element " << i;
        }
      }
      if (comm.rank() == 2) {
        for (std::size_t i = 0; i < kCountB; ++i) {
          ASSERT_EQ(out_b[i], ref_b[i]) << "epoch B element " << i;
        }
      }
    });
  }
}

TEST(NonblockingCollectives, RankAbortMidTreeIreduceUnblocksTheWorld) {
  // With the tree fan-in a *relay* rank does its forwarding inside wait();
  // killing a leaf leaves both the relay and the root blocked mid-epoch.
  // The abort protocol must unblock the whole chain.
  EXPECT_THROW(
      run_world(5,
                [](Comm& comm) {
                  constexpr std::size_t kCount = 1 << 12;
                  std::vector<float> mine(kCount, 1.0f);
                  std::vector<float> out(comm.rank() == 0 ? kCount : 0);
                  if (comm.rank() == 3) {  // a leaf of relay vrank 2
                    throw ConfigError("rank 3 exploded mid-stream");
                  }
                  Comm::CollectiveRequest req = comm.ireduce(
                      mine.data(), comm.rank() == 0 ? out.data() : nullptr,
                      kCount, ReduceOp::kSum, 0, /*segment_floats=*/64, {},
                      ReduceAlgo::kTree);
                  req.wait();
                }),
      Error);
}

TEST(NonblockingCollectives, SingleRankDegenerateCases) {
  run_world(1, [](Comm& comm) {
    const float mine = 3.25f;
    float gathered = 0, reduced = 0;
    Comm::CollectiveRequest g =
        comm.iallgather_ring(&mine, sizeof(float), &gathered);
    Comm::CollectiveRequest r =
        comm.ireduce(&mine, &reduced, 1, ReduceOp::kSum, 0);
    g.wait();
    r.wait();
    EXPECT_FLOAT_EQ(gathered, 3.25f);
    EXPECT_FLOAT_EQ(reduced, 3.25f);
  });
}

TEST(NonblockingCollectives, MoveSemantics) {
  run_world(2, [](Comm& comm) {
    const float mine = static_cast<float>(comm.rank());
    std::vector<float> out(2);
    Comm::CollectiveRequest a =
        comm.iallgather_ring(&mine, sizeof(float), out.data());
    Comm::CollectiveRequest b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    b.wait();
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    EXPECT_FLOAT_EQ(out[1], 1.0f);
  });
}

}  // namespace
}  // namespace ifdk::mpi
