// Service-layer tests: the ReconService front door must (1) reject
// impossible jobs at admission with typed errors naming the numbers,
// (2) dispatch by priority then EDF-within-band — a deadline can never
// promote a job across priority bands, (3) isolate per-job failures while
// batch-mates and later jobs store bit-exactly, and (4) produce volumes
// bitwise-identical to sequential run_distributed calls, including across
// grid re-splits and an injected PFS write failure (the PR acceptance run).
// The consolidated validation messages (IfdkOptions::validate /
// JobSpec::validate) are pinned here across all three entry points.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/math_util.h"
#include "ifdk/framework.h"
#include "iterative/distributed.h"
#include "phantom/phantom.h"
#include "service/recon_service.h"

namespace ifdk {
namespace {

using service::AdmissionError;
using service::JobHandle;
using service::JobState;
using service::ReconService;
using service::ServiceOptions;
using service::ServiceStats;

/// Moving-lesion phantom (same idea as the streaming suite): every job
/// reconstructs a different object, so cross-job contamination in the
/// scheduler or the stream cannot cancel out.
phantom::Phantom job_phantom(double phase) {
  phantom::Phantom p;
  phantom::Ellipsoid body;
  body.semi_axes = {0.8, 0.7, 0.85};
  body.density = 0.4;
  p.ellipsoids.push_back(body);
  phantom::Ellipsoid lesion;
  lesion.center = {0.25, 0.0, 0.3 * std::sin(2.0 * kPi * phase)};
  lesion.semi_axes = {0.15, 0.15, 0.2};
  lesion.density = 0.7;
  p.ellipsoids.push_back(lesion);
  return p;
}

/// One service job plus everything needed to stage and verify it.
struct ServiceJob {
  JobSpec spec;
  geo::CbctGeometry g;
  std::vector<Image2D> projections;
};

ServiceJob make_job(std::size_t index, const geo::CbctGeometry& g) {
  ServiceJob job;
  job.g = g;
  job.projections =
      phantom::project_all(job_phantom(0.13 * static_cast<double>(index)), g);
  job.spec.input_prefix = "in" + std::to_string(index) + "/";
  job.spec.output_prefix = "out" + std::to_string(index) + "/slice_";
  return job;
}

void stage_jobs(pfs::ParallelFileSystem& fs,
                const std::vector<ServiceJob>& jobs) {
  for (const ServiceJob& job : jobs) {
    stage_projections(fs, job.spec.input_prefix, job.projections);
  }
}

/// The sequential reference: one run_distributed per job, same options.
void run_sequential(const std::vector<ServiceJob>& jobs,
                    pfs::ParallelFileSystem& fs, IfdkOptions options) {
  for (const ServiceJob& job : jobs) {
    options.input_prefix = job.spec.input_prefix;
    options.output_prefix = job.spec.output_prefix;
    run_distributed(job.g, fs, options);
  }
}

void expect_bitwise_equal_job(const pfs::ParallelFileSystem& a,
                              const pfs::ParallelFileSystem& b,
                              const ServiceJob& job,
                              const std::string& context) {
  const Volume va = load_volume(a, job.spec.output_prefix, job.g.vol_dims());
  const Volume vb = load_volume(b, job.spec.output_prefix, job.g.vol_dims());
  for (std::size_t n = 0; n < va.voxels(); ++n) {
    ASSERT_EQ(va.data()[n], vb.data()[n]) << context << ", voxel " << n;
  }
}

geo::CbctGeometry small_geometry() {
  return geo::make_standard_geometry({{32, 32, 16}, {12, 12, 12}});
}

/// PFS wrapper that fails writes under one output prefix (the same
/// fault-injection idiom the streaming suite uses).
class VolumeWriteFailFs : public pfs::ParallelFileSystem {
 public:
  explicit VolumeWriteFailFs(std::string prefix)
      : prefix_(std::move(prefix)) {}

  void write_object(const std::string& name, const void* data,
                    std::size_t bytes) override {
    if (name.rfind(prefix_, 0) == 0) {
      throw IoError("injected PFS write failure: " + name);
    }
    pfs::ParallelFileSystem::write_object(name, data, bytes);
  }

 private:
  std::string prefix_;
};

// ---- Admission --------------------------------------------------------------

TEST(ServiceAdmission, DeviceMisfitRejectsAtSubmitNamingTheNumbers) {
  pfs::ParallelFileSystem fs;
  ServiceOptions opts;
  opts.ifdk.ranks = 4;
  opts.ifdk.rows = 2;  // fixed R: the §4.1.5 doubling loop cannot rescue it
  opts.ifdk.device.memory_bytes = 4096;
  ReconService svc(small_geometry(), fs, opts);

  try {
    svc.submit(JobSpec{"in/", "out/slice_"});
    FAIL() << "expected AdmissionError";
  } catch (const AdmissionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rejected at admission"), std::string::npos) << what;
    EXPECT_NE(what.find("device has 4096"), std::string::npos) << what;
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST(ServiceAdmission, TagBudgetOverflowRejectsAtSubmitNamingTheNumbers) {
  // Nz = 1024 at R = 2 puts 2 * 256 * 64 * 64 = 2,097,152 floats in one
  // slab pair; one-float segments need one collective tag per float —
  // double the 1,048,576-tag communicator window. The job can never run,
  // so it must never be queued.
  pfs::ParallelFileSystem fs;
  ServiceOptions opts;
  opts.ifdk.ranks = 4;
  opts.ifdk.rows = 2;
  opts.ifdk.reduce_segment_floats = 1;
  const auto g = geo::make_standard_geometry({{8, 8, 8}, {64, 64, 1024}});
  ReconService svc(g, fs, opts);

  try {
    svc.submit(JobSpec{"in/", "out/slice_"});
    FAIL() << "expected AdmissionError";
  } catch (const AdmissionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2097152"), std::string::npos) << what;
    EXPECT_NE(what.find("1048576"), std::string::npos) << what;
    EXPECT_NE(what.find("reduce_segment_floats"), std::string::npos) << what;
  }
  EXPECT_EQ(svc.stats().rejected, 1u);
}

TEST(ServiceAdmission, ByteAccountingTracksAdmissionAndCompression) {
  // Admission charges each tenant the job's raw output bytes (4 * voxels of
  // its plan) the moment it is accepted; after dispatch the service-wide
  // wire/store counters report what the streams actually moved, so
  // ratio-of-sums is the service's achieved compression.
  const auto g = small_geometry();  // 12^3 output = 6912 raw bytes
  std::vector<ServiceJob> jobs;
  for (std::size_t i = 0; i < 3; ++i) jobs.push_back(make_job(i, g));
  jobs[0].spec.tenant = "alice";
  jobs[1].spec.tenant = "bob";
  jobs[2].spec.tenant = "alice";
  jobs[2].spec.compress_store = true;
  jobs[2].spec.store_bits = 12;

  pfs::ParallelFileSystem fs;
  stage_jobs(fs, jobs);
  ServiceOptions opts;
  opts.ifdk.ranks = 4;
  opts.ifdk.rows = 2;
  opts.ifdk.compress_wire = true;
  opts.start_paused = true;
  ReconService svc(g, fs, opts);
  std::vector<JobHandle> handles;
  for (const ServiceJob& job : jobs) handles.push_back(svc.submit(job.spec));

  const std::size_t job_bytes = 12 * 12 * 12 * sizeof(float);
  const ServiceStats queued = svc.stats();
  EXPECT_EQ(queued.admitted_output_bytes, 3 * job_bytes);
  EXPECT_EQ(queued.tenants.at("alice").admitted_output_bytes, 2 * job_bytes);
  EXPECT_EQ(queued.tenants.at("bob").admitted_output_bytes, job_bytes);
  // Nothing dispatched yet: the measured counters are still zero.
  EXPECT_EQ(queued.wire_raw_bytes, 0u);
  EXPECT_EQ(queued.store_raw_bytes, 0u);

  svc.drain();
  for (const JobHandle& h : handles) {
    ASSERT_EQ(h.state(), JobState::kStored) << h.error();
  }

  const ServiceStats done = svc.stats();
  EXPECT_EQ(done.admitted_output_bytes, 3 * job_bytes);
  EXPECT_GT(done.wire_raw_bytes, 0u);        // compress_wire was on
  EXPECT_GT(done.wire_encoded_bytes, 0u);
  EXPECT_EQ(done.store_raw_bytes, 3 * job_bytes);
  // One of three volumes stored compressed: fewer bytes hit the PFS than
  // were handed to the store path.
  EXPECT_LT(done.store_stored_bytes, done.store_raw_bytes);
  EXPECT_GT(done.store_stored_bytes, 2 * job_bytes);
}

// ---- Scheduling order -------------------------------------------------------

TEST(ServiceScheduling, PriorityDominatesDeadlineAcrossBands) {
  // The deadline-inversion case: the priority-0 job has the EARLIEST
  // deadline of the whole queue, but EDF applies within a band only — every
  // priority-1 job must still dispatch first, ordered by their own
  // deadlines (unset sorts last).
  std::vector<ServiceJob> jobs;
  for (std::size_t i = 0; i < 4; ++i) jobs.push_back(make_job(i, small_geometry()));
  jobs[0].spec.priority = 0;
  jobs[0].spec.deadline_s = 0.001;  // earliest deadline, lowest band
  jobs[1].spec.priority = 1;        // no deadline: last within its band
  jobs[2].spec.priority = 1;
  jobs[2].spec.deadline_s = 5.0;
  jobs[3].spec.priority = 1;
  jobs[3].spec.deadline_s = 1.0;

  pfs::ParallelFileSystem fs;
  stage_jobs(fs, jobs);
  ServiceOptions opts;
  opts.ifdk.ranks = 4;
  opts.ifdk.rows = 2;
  opts.start_paused = true;  // collect the whole queue, then dispatch once
  ReconService svc(small_geometry(), fs, opts);

  std::vector<JobHandle> handles;
  for (const ServiceJob& job : jobs) handles.push_back(svc.submit(job.spec));
  svc.drain();

  // Expected dispatch order: job3 (deadline 1.0), job2 (deadline 5.0),
  // job1 (no deadline), then — only then — job0 from the lower band.
  EXPECT_EQ(handles[3].dispatch_seq(), 0);
  EXPECT_EQ(handles[2].dispatch_seq(), 1);
  EXPECT_EQ(handles[1].dispatch_seq(), 2);
  EXPECT_EQ(handles[0].dispatch_seq(), 3);
  for (const JobHandle& h : handles) {
    EXPECT_EQ(h.state(), JobState::kStored) << h.error();
  }
}

// ---- Failure isolation ------------------------------------------------------

TEST(ServiceFailure, FailedJobIsIsolatedAndHealthyJobsStoreBitExactly) {
  std::vector<ServiceJob> jobs;
  for (std::size_t i = 0; i < 3; ++i) jobs.push_back(make_job(i, small_geometry()));

  IfdkOptions run_opts;
  run_opts.ranks = 4;
  run_opts.rows = 2;
  pfs::ParallelFileSystem fs_seq;
  stage_jobs(fs_seq, jobs);
  run_sequential(jobs, fs_seq, run_opts);

  VolumeWriteFailFs fs(jobs[1].spec.output_prefix);
  stage_jobs(fs, jobs);
  ServiceOptions opts;
  opts.ifdk = run_opts;
  opts.start_paused = true;  // one batch: in-batch isolation is the point
  ReconService svc(small_geometry(), fs, opts);
  std::vector<JobHandle> handles;
  for (const ServiceJob& job : jobs) handles.push_back(svc.submit(job.spec));
  svc.drain();

  EXPECT_EQ(handles[0].wait(), JobState::kStored) << handles[0].error();
  EXPECT_EQ(handles[1].wait(), JobState::kFailed);
  EXPECT_NE(handles[1].error().find("injected PFS write failure"),
            std::string::npos)
      << handles[1].error();
  EXPECT_EQ(handles[2].wait(), JobState::kStored) << handles[2].error();

  expect_bitwise_equal_job(fs_seq, fs, jobs[0], "behind a failed batch-mate");
  expect_bitwise_equal_job(fs_seq, fs, jobs[2], "behind a failed batch-mate");

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.stored, 2u);
  EXPECT_EQ(stats.failed, 1u);

  // The service survives the failure: a job submitted afterwards runs.
  ServiceJob late = make_job(9, small_geometry());
  stage_projections(fs, late.spec.input_prefix, late.projections);
  JobHandle h = svc.submit(late.spec);
  EXPECT_EQ(h.wait(), JobState::kStored) << h.error();
}

// ---- The acceptance run -----------------------------------------------------

TEST(ServiceAcceptance, MixedPriorityJobsMatchSequentialBitwise) {
  // N mixed-priority jobs through one service, including (a) a geometry
  // whose plan resolves a different R (forcing a grid re-split between
  // batches) and (b) one job with an injected PFS write failure. Every
  // healthy job's volume must be bitwise-identical to a sequential
  // run_distributed call; the failed job is reported on its handle.
  const auto geom_a = small_geometry();  // R=1 under the budget below
  const auto geom_b =
      geo::make_standard_geometry({{32, 32, 16}, {12, 12, 16}});  // R=2

  IfdkOptions run_opts;
  run_opts.ranks = 4;
  run_opts.rows = 0;  // auto-select via Eq. (7)
  run_opts.microbench.sub_volume_bytes = 8192;  // 12^3 once, 12*12*16 twice

  std::vector<ServiceJob> jobs;
  jobs.push_back(make_job(0, geom_a));
  jobs.push_back(make_job(1, geom_b));
  jobs.push_back(make_job(2, geom_a));  // the poisoned job
  jobs.push_back(make_job(3, geom_a));
  jobs.push_back(make_job(4, geom_b));
  jobs[0].spec.tenant = "alice";
  jobs[0].spec.priority = 1;
  jobs[1].spec.tenant = "bob";
  jobs[1].spec.priority = 1;
  jobs[2].spec.tenant = "alice";
  jobs[2].spec.priority = 0;
  jobs[3].spec.tenant = "bob";
  jobs[3].spec.priority = 0;
  jobs[4].spec.tenant = "carol";
  jobs[4].spec.priority = 2;
  jobs[4].spec.deadline_s = 10.0;
  for (ServiceJob& job : jobs) job.spec.geometry = job.g;

  pfs::ParallelFileSystem fs_seq;
  stage_jobs(fs_seq, jobs);
  run_sequential(jobs, fs_seq, run_opts);

  VolumeWriteFailFs fs(jobs[2].spec.output_prefix);
  stage_jobs(fs, jobs);
  ServiceOptions opts;
  opts.ifdk = run_opts;
  opts.start_paused = true;
  ReconService svc(geom_a, fs, opts);

  std::vector<JobHandle> handles;
  for (const ServiceJob& job : jobs) handles.push_back(svc.submit(job.spec));
  // Predictions are published for the whole queue before anything runs.
  for (const JobHandle& h : handles) {
    EXPECT_GT(h.predicted_completion_s(), 0.0);
  }
  svc.drain();

  // Dispatch order: job4 (band 2), then band 1 in submit order (job0,
  // job1), then band 0 (job2, job3). Grids along that order are
  // B, A, B, A, A — so batches are {4}, {0}, {1}, {2, 3} and the scheduler
  // re-split three times.
  EXPECT_EQ(handles[4].dispatch_seq(), 0);
  EXPECT_EQ(handles[0].dispatch_seq(), 1);
  EXPECT_EQ(handles[1].dispatch_seq(), 2);
  EXPECT_EQ(handles[2].dispatch_seq(), 3);
  EXPECT_EQ(handles[3].dispatch_seq(), 4);

  for (const std::size_t healthy : {std::size_t{0}, std::size_t{1},
                                    std::size_t{3}, std::size_t{4}}) {
    EXPECT_EQ(handles[healthy].state(), JobState::kStored)
        << "job " << healthy << ": " << handles[healthy].error();
    expect_bitwise_equal_job(fs_seq, fs, jobs[healthy],
                             "job " + std::to_string(healthy));
  }
  EXPECT_EQ(handles[2].state(), JobState::kFailed);
  EXPECT_NE(handles[2].error().find("injected PFS write failure"),
            std::string::npos)
      << handles[2].error();

  // The re-split jobs really resolved different grids.
  EXPECT_EQ(handles[0].grid().rows, 1);
  EXPECT_EQ(handles[1].grid().rows, 2);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.stored, 4u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.batches, 4u);
  EXPECT_EQ(stats.resplits, 3u);
  EXPECT_GT(stats.jobs_per_second, 0.0);
  EXPECT_GE(stats.mean_queue_latency_s, 0.0);
  ASSERT_EQ(stats.tenants.count("alice"), 1u);
  EXPECT_EQ(stats.tenants.at("alice").submitted, 2u);
  EXPECT_EQ(stats.tenants.at("alice").stored, 1u);
  EXPECT_EQ(stats.tenants.at("alice").failed, 1u);
  EXPECT_EQ(stats.tenants.at("carol").stored, 1u);
  EXPECT_GT(stats.tenants.at("carol").volumes_per_second, 0.0);

  // Per-job IfdkStats-like timings: the stream that carried the job.
  EXPECT_GT(handles[0].wall().get("backprojection"), 0.0);
  EXPECT_GE(handles[0].queue_latency_s(), 0.0);
}

TEST(ServiceAcceptance, MixedFdkAndIterativeQueueWithFailureIsolation) {
  // The mixed-workload acceptance run: FDK and iterative jobs ride ONE
  // queue. The dispatcher may only batch a same-workload prefix — submit
  // order FDK, ITER, FDK, ITER, ITER must dispatch as four batches
  // {0}, {1}, {2}, {3, 4} — every job gets a predicted completion from the
  // mixed-queue recurrence before anything runs, an injected PFS write
  // failure on one iterative job fails only that job (its iterative
  // batch-mate still stores), and every healthy job's volume is
  // bitwise-identical to a direct run_distributed / run_iterative call.
  const auto g = small_geometry();
  IfdkOptions run_opts;
  run_opts.ranks = 4;
  run_opts.rows = 2;

  std::vector<ServiceJob> jobs;
  for (std::size_t i = 0; i < 5; ++i) jobs.push_back(make_job(i, g));
  for (const std::size_t iter_job : {std::size_t{1}, std::size_t{3},
                                     std::size_t{4}}) {
    jobs[iter_job].spec.workload = WorkloadKind::kIterative;
    jobs[iter_job].spec.iterative.iterations = 2;
  }
  jobs[4].spec.iterative.algorithm = iterative::Algorithm::kMlem;

  // The references: sequential FDK runs plus direct run_iterative calls
  // with the identical options (both are deterministic, so "same entry
  // point, no scheduler" is the bitwise yardstick).
  pfs::ParallelFileSystem fs_ref;
  stage_jobs(fs_ref, jobs);
  for (const std::size_t fdk_job : {std::size_t{0}, std::size_t{2}}) {
    IfdkOptions o = run_opts;
    o.input_prefix = jobs[fdk_job].spec.input_prefix;
    o.output_prefix = jobs[fdk_job].spec.output_prefix;
    run_distributed(g, fs_ref, o);
  }
  for (const std::size_t iter_job : {std::size_t{1}, std::size_t{4}}) {
    iterative::run_iterative(g, fs_ref, run_opts, jobs[iter_job].spec);
  }

  VolumeWriteFailFs fs(jobs[3].spec.output_prefix);
  stage_jobs(fs, jobs);
  ServiceOptions opts;
  opts.ifdk = run_opts;
  opts.start_paused = true;  // collect the whole mixed queue first
  ReconService svc(g, fs, opts);
  std::vector<JobHandle> handles;
  for (const ServiceJob& job : jobs) handles.push_back(svc.submit(job.spec));

  // Per-job predicted completions over the MIXED queue, before anything
  // runs: positive and nondecreasing along the dispatch order.
  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_GT(handles[i].predicted_completion_s(), 0.0) << "job " << i;
    if (i > 0) {
      EXPECT_GE(handles[i].predicted_completion_s(),
                handles[i - 1].predicted_completion_s())
          << "job " << i;
    }
  }
  svc.drain();

  // Same priority everywhere: dispatch order is submit order, but the
  // workload boundary splits it into four batches (the FDK singletons, the
  // iterative singleton, and the iterative pair).
  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_EQ(handles[i].dispatch_seq(), static_cast<int>(i));
  }
  EXPECT_EQ(svc.stats().batches, 4u);

  for (const std::size_t healthy : {std::size_t{0}, std::size_t{1},
                                    std::size_t{2}, std::size_t{4}}) {
    EXPECT_EQ(handles[healthy].state(), JobState::kStored)
        << "job " << healthy << ": " << handles[healthy].error();
    expect_bitwise_equal_job(fs_ref, fs, jobs[healthy],
                             "mixed-queue job " + std::to_string(healthy));
  }
  // The poisoned iterative job failed alone — its batch-mate (job 4, same
  // iterative batch) and every FDK job stored bit-exactly above.
  EXPECT_EQ(handles[3].state(), JobState::kFailed);
  EXPECT_NE(handles[3].error().find("injected PFS write failure"),
            std::string::npos)
      << handles[3].error();

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.stored, 4u);
  EXPECT_EQ(stats.failed, 1u);
  // Iterative handles publish the grid their plan resolved, like FDK ones.
  EXPECT_EQ(handles[1].grid().rows, 2);
  EXPECT_EQ(handles[1].grid().columns, 2);
}

// ---- Validation consolidation ----------------------------------------------

TEST(ValidationConsolidation, OptionErrorsAreIdenticalAcrossEntryPoints) {
  // The pinned pre-run messages must come out of IfdkOptions::validate /
  // DecompositionPlan::make verbatim from every entry point: the blocking
  // runtime, the streaming runtime, and the service front door.
  const auto g = small_geometry();
  IfdkOptions opts;
  opts.ranks = 3;
  opts.rows = 2;
  const auto expect_fragments = [](const std::string& what) {
    EXPECT_NE(what.find("ranks (3)"), std::string::npos) << what;
    EXPECT_NE(what.find("row count R (2)"), std::string::npos) << what;
  };

  pfs::ParallelFileSystem fs;
  try {
    run_distributed(g, fs, opts);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    expect_fragments(e.what());
  }
  const std::vector<JobSpec> volumes = {JobSpec{"in/", "out/slice_"}};
  try {
    run_streaming(g, fs, opts, volumes);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    // Streaming prefixes the offending volume, wording otherwise identical.
    EXPECT_NE(std::string(e.what()).find("volume 0"), std::string::npos);
    expect_fragments(e.what());
  }
  try {
    ServiceOptions bad;
    bad.ifdk = opts;
    ReconService svc_bad(g, fs, bad);
    JobHandle h = svc_bad.submit(JobSpec{"in/", "out/slice_"});
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    expect_fragments(e.what());
  }
}

TEST(ValidationConsolidation, OptionInvariantsThrowBeforeAnyWork) {
  const auto g = small_geometry();
  pfs::ParallelFileSystem fs;
  {
    IfdkOptions opts;
    opts.ranks = 0;
    try {
      run_distributed(g, fs, opts);
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("ranks (0) must be at least 1"),
                std::string::npos)
          << e.what();
    }
  }
  {
    IfdkOptions opts;
    opts.ranks = 4;
    opts.rows = 2;
    opts.reduce_segment_floats = 0;
    EXPECT_THROW(run_distributed(g, fs, opts), ConfigError);
    // The service rejects the same misconfiguration at construction.
    ServiceOptions sopts;
    sopts.ifdk = opts;
    EXPECT_THROW(ReconService(g, fs, sopts), ConfigError);
  }
}

TEST(ValidationConsolidation, JobSpecErrorsNameTheFieldAndVolume) {
  const auto g = small_geometry();
  pfs::ParallelFileSystem fs;
  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 2;

  // Direct: the one-line contract of JobSpec::validate.
  try {
    JobSpec{"", "out/slice_"}.validate();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("input_prefix must not be empty"),
              std::string::npos)
        << e.what();
  }

  // Streaming names the offending volume.
  const std::vector<JobSpec> volumes = {JobSpec{"in0/", "out0/slice_"},
                                        JobSpec{"in1/", ""}};
  try {
    run_streaming(g, fs, opts, volumes);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("volume 1"), std::string::npos) << what;
    EXPECT_NE(what.find("output_prefix must not be empty"), std::string::npos)
        << what;
  }

  // The service checks the same contract before admission.
  ServiceOptions sopts;
  sopts.ifdk = opts;
  ReconService svc(g, fs, sopts);
  EXPECT_THROW(svc.submit(JobSpec{"", "out/slice_"}), ConfigError);
}

// ---- StreamingStats::grid single-source-of-truth ---------------------------

TEST(StreamingStatsGrid, AlwaysMatchesFirstExecutedPlan) {
  // The summary field is populated from the executed plan sequence in one
  // place: a volume-0 geometry override must drive BOTH fields identically.
  const auto geom_run = small_geometry();  // would resolve R=1 at this budget
  const auto geom_v0 =
      geo::make_standard_geometry({{32, 32, 16}, {12, 12, 16}});  // R=2
  IfdkOptions opts;
  opts.ranks = 4;
  opts.rows = 0;
  opts.microbench.sub_volume_bytes = 8192;

  pfs::ParallelFileSystem fs;
  ServiceJob job = make_job(0, geom_v0);
  stage_projections(fs, job.spec.input_prefix, job.projections);
  job.spec.geometry = geom_v0;
  const std::vector<JobSpec> volumes = {job.spec};
  const StreamingStats stats = run_streaming(geom_run, fs, opts, volumes);
  ASSERT_EQ(stats.plans.size(), 1u);
  EXPECT_EQ(stats.grid.rows, stats.plans[0].grid.rows);
  EXPECT_EQ(stats.grid.columns, stats.plans[0].grid.columns);
  EXPECT_EQ(stats.grid.rows, 2);  // the override's grid, not the run's

  // Zero volumes: fall back to the run geometry's plan.
  const StreamingStats empty =
      run_streaming(geom_run, fs, opts, std::span<const JobSpec>{});
  EXPECT_EQ(empty.grid.rows, 1);
  EXPECT_TRUE(empty.plans.empty());
}

}  // namespace
}  // namespace ifdk
