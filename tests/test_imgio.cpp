// imgio tests: MHD/RAW round trip, header contents, PGM structure, and error
// paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "imgio/imgio.h"

namespace ifdk::imgio {
namespace {

class ImgioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "ifdk_imgio_test";
  }
  void TearDown() override {
    std::remove((base_ + ".raw").c_str());
    std::remove((base_ + ".mhd").c_str());
    std::remove((base_ + ".pgm").c_str());
  }
  std::string base_;
};

TEST_F(ImgioTest, MhdRawRoundTrip) {
  Volume vol(5, 4, 3);
  for (std::size_t n = 0; n < vol.voxels(); ++n) {
    vol.data()[n] = static_cast<float>(n) * 0.25f - 3.0f;
  }
  write_mhd(vol, base_, 0.5, 0.5, 1.25);
  const Volume back = read_raw_volume(base_, 5, 4, 3);
  for (std::size_t n = 0; n < vol.voxels(); ++n) {
    EXPECT_EQ(back.data()[n], vol.data()[n]);
  }
}

TEST_F(ImgioTest, MhdHeaderContents) {
  Volume vol(8, 8, 2);
  write_mhd(vol, base_, 0.5, 0.5, 1.25);
  std::ifstream mhd(base_ + ".mhd");
  std::stringstream ss;
  ss << mhd.rdbuf();
  const std::string header = ss.str();
  EXPECT_NE(header.find("DimSize = 8 8 2"), std::string::npos);
  EXPECT_NE(header.find("ElementSpacing = 0.5 0.5 1.25"), std::string::npos);
  EXPECT_NE(header.find("ElementType = MET_FLOAT"), std::string::npos);
  EXPECT_NE(header.find("ElementDataFile = ifdk_imgio_test.raw"),
            std::string::npos);
}

TEST_F(ImgioTest, MhdRejectsZMajor) {
  Volume vol(4, 4, 4, VolumeLayout::kZMajor);
  EXPECT_THROW(write_mhd(vol, base_), ConfigError);
}

TEST_F(ImgioTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_raw_volume(base_ + "_nope", 2, 2, 2), IoError);
}

TEST_F(ImgioTest, PgmStructureAndScaling) {
  Image2D img(4, 2);
  img.at(0, 0) = -1.0f;
  img.at(3, 1) = 1.0f;
  write_pgm(img, base_ + ".pgm");
  std::ifstream pgm(base_ + ".pgm", std::ios::binary);
  std::string magic, dims;
  std::getline(pgm, magic);
  EXPECT_EQ(magic, "P5");
  std::getline(pgm, dims);
  EXPECT_EQ(dims, "4 2");
  std::string maxval;
  std::getline(pgm, maxval);
  EXPECT_EQ(maxval, "255");
  unsigned char pixels[8];
  pgm.read(reinterpret_cast<char*>(pixels), 8);
  EXPECT_EQ(pgm.gcount(), 8);
  EXPECT_EQ(pixels[0], 0);    // min maps to black
  EXPECT_EQ(pixels[7], 255);  // max maps to white
  EXPECT_EQ(pixels[1], 127);  // zeros land mid-scale
}

TEST_F(ImgioTest, SliceExport) {
  Volume vol(3, 3, 2);
  vol.at(1, 1, 1) = 5.0f;
  write_slice_pgm(vol, 1, base_ + ".pgm");
  std::ifstream pgm(base_ + ".pgm", std::ios::binary);
  EXPECT_TRUE(pgm.good());
  EXPECT_THROW(write_slice_pgm(vol, 2, base_ + ".pgm"), ConfigError);
}


TEST_F(ImgioTest, ProjectionRawRoundTrip) {
  Image2D img(6, 4);
  for (std::size_t n = 0; n < img.pixels(); ++n) {
    img.data()[n] = static_cast<float>(n) * -0.75f;
  }
  write_projection_raw(img, base_ + ".raw");
  const Image2D back = read_projection_raw(base_ + ".raw", 6, 4);
  for (std::size_t n = 0; n < img.pixels(); ++n) {
    EXPECT_EQ(back.data()[n], img.data()[n]);
  }
  EXPECT_THROW(read_projection_raw(base_ + ".raw", 8, 8), IoError);
}

TEST_F(ImgioTest, ProjectionU16RoundTripBoundedError) {
  Image2D img(8, 8);
  for (std::size_t n = 0; n < img.pixels(); ++n) {
    img.data()[n] = static_cast<float>(n % 13) * 0.77f;
  }
  const float full_scale = 12.0f * 0.77f;
  write_projection_u16(img, base_ + ".raw", full_scale);
  const Image2D back =
      read_projection_u16(base_ + ".raw", 8, 8, full_scale / 65535.0f);
  // 16-bit quantization error is bounded by half a step.
  const float step = full_scale / 65535.0f;
  for (std::size_t n = 0; n < img.pixels(); ++n) {
    EXPECT_NEAR(back.data()[n], img.data()[n], 0.51f * step);
  }
}

TEST_F(ImgioTest, U16ClampsOutOfRange) {
  Image2D img(2, 1);
  img.at(0, 0) = -5.0f;   // below range -> 0
  img.at(1, 0) = 100.0f;  // above full scale -> 65535
  write_projection_u16(img, base_ + ".raw", 1.0f);
  const Image2D back = read_projection_u16(base_ + ".raw", 2, 1, 1.0f / 65535.0f);
  EXPECT_EQ(back.at(0, 0), 0.0f);
  EXPECT_NEAR(back.at(1, 0), 1.0f, 1e-6f);
}

}  // namespace
}  // namespace ifdk::imgio
