// Compression corruption-injection + property suite (ctest label
// `compression`, also in the ASan/UBSan lane): the lossless wire codec must
// round-trip every bit pattern exactly and never exceed the raw-fallback
// size, and BOTH decoders (wire frames and serialized CompressedVolume
// store objects) must reject truncated, bit-flipped, and length-lying
// payloads with a typed CompressionError naming the offending offset —
// never UB. Randomized cases are seeded and print their seed on failure,
// like test_collective_stress. The mid-ireduce injection test pins the
// 3-class error protocol: a corrupted frame surfaces as the decode
// failure, not as a queue-shutdown or world-abort symptom.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "minimpi/minimpi.h"
#include "postproc/compression.h"

namespace ifdk::postproc {
namespace {

std::string hex_seed(std::uint64_t seed) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seed 0x%llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

/// Bitwise comparison: NaNs with equal bit patterns compare equal, so the
/// codec's "never interprets the bits as floats" promise is testable.
void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint32_t ba = 0, bb = 0;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    ASSERT_EQ(ba, bb) << "word " << i;
  }
}

std::vector<float> round_trip(const std::vector<float>& data) {
  const std::vector<std::uint8_t> frame = encode_frame(data.data(),
                                                       data.size());
  // Ratio >= 1 by construction: the payload is never larger than raw.
  EXPECT_LE(frame.size(), kFrameHeaderBytes + data.size() * sizeof(float));
  std::vector<float> out(data.size());
  const std::size_t consumed =
      decode_frame(frame.data(), frame.size(), out.data(), data.size());
  EXPECT_EQ(consumed, frame.size());
  return out;
}

// ---- lossless codec property tests -----------------------------------------

TEST(WireFrameProperties, RandomBuffersRoundTripBitwise) {
  for (const std::uint64_t seed :
       {std::uint64_t{0x1}, std::uint64_t{0xc0de}, std::uint64_t{0x51ab},
        std::uint64_t{0x9e3779b9}, std::uint64_t{0xfeedface}}) {
    SCOPED_TRACE(hex_seed(seed));
    Rng rng(seed);
    for (int round = 0; round < 8; ++round) {
      const std::size_t count = 1 + rng.next_below(4095);
      std::vector<float> data(count);
      // Mix plateaus (compressible) with full-range noise (incompressible)
      // so both encoder modes are exercised from one distribution.
      float plateau = rng.next_float(-10.0f, 10.0f);
      for (std::size_t i = 0; i < count; ++i) {
        if (rng.next_below(16) == 0) plateau = rng.next_float(-10.0f, 10.0f);
        data[i] = rng.next_below(4) == 0
                      ? rng.next_float(-1e30f, 1e30f)
                      : plateau;
      }
      expect_bitwise_equal(data, round_trip(data));
    }
  }
}

TEST(WireFrameProperties, AdversarialExtremesRoundTripBitwise) {
  // All-equal: the best case — must land far below raw.
  std::vector<float> equal(10000, 7.25f);
  expect_bitwise_equal(equal, round_trip(equal));
  EXPECT_LT(encode_frame(equal.data(), equal.size()).size(),
            equal.size() * sizeof(float) / 8);

  // All-distinct noise: the worst case — raw fallback, still exact.
  Rng rng(0xd15717c7);
  std::vector<float> noise(4096);
  for (float& v : noise) v = rng.next_float(-1e3f, 1e3f);
  expect_bitwise_equal(noise, round_trip(noise));

  // NaN/Inf-laced: the codec never interprets payload bits as floats, so
  // every non-finite pattern survives bit-exactly.
  std::vector<float> weird = {std::numeric_limits<float>::quiet_NaN(),
                              std::numeric_limits<float>::infinity(),
                              -std::numeric_limits<float>::infinity(),
                              std::numeric_limits<float>::signaling_NaN(),
                              -0.0f,
                              std::numeric_limits<float>::denorm_min()};
  for (int i = 0; i < 500; ++i) weird.push_back(weird[i % 6]);
  expect_bitwise_equal(weird, round_trip(weird));

  // Zero-length: a header-only frame that decodes to zero words.
  const std::vector<std::uint8_t> empty = encode_frame(nullptr, 0);
  EXPECT_EQ(empty.size(), kFrameHeaderBytes);
  float sentinel = 42.0f;
  EXPECT_EQ(decode_frame(empty.data(), empty.size(), &sentinel, 0),
            kFrameHeaderBytes);
  EXPECT_EQ(sentinel, 42.0f);
}

TEST(WireFrameProperties, ConcatenatedFramesParseSequentially) {
  // The relay contract: back-to-back frames are parseable with no
  // out-of-band length info, exactly how tree-ireduce blocks are decoded.
  Rng rng(0xcafe);
  std::vector<std::vector<float>> segments;
  std::vector<std::uint8_t> block;
  for (int s = 0; s < 5; ++s) {
    std::vector<float> seg(128);
    for (float& v : seg) {
      v = rng.next_below(2) == 0 ? 1.5f : rng.next_float(-2.0f, 2.0f);
    }
    const std::vector<std::uint8_t> frame = encode_frame(seg.data(),
                                                         seg.size());
    block.insert(block.end(), frame.begin(), frame.end());
    segments.push_back(std::move(seg));
  }
  std::size_t off = 0;
  for (const std::vector<float>& seg : segments) {
    std::vector<float> out(seg.size());
    off += decode_frame(block.data() + off, block.size() - off, out.data(),
                        seg.size());
    expect_bitwise_equal(seg, out);
  }
  EXPECT_EQ(off, block.size());
}

// ---- wire-frame corruption injection ---------------------------------------

/// A compressible frame (RLE mode) for corruption sweeps.
std::vector<std::uint8_t> rle_frame(std::vector<float>* data_out = nullptr) {
  std::vector<float> data(512, 3.0f);
  for (std::size_t i = 0; i < data.size(); i += 17) {
    data[i] = static_cast<float>(i);
  }
  if (data_out != nullptr) *data_out = data;
  std::vector<std::uint8_t> frame = encode_frame(data.data(), data.size());
  EXPECT_EQ(frame[4], 1) << "test frame must resolve to RLE mode";
  return frame;
}

TEST(WireFrameCorruption, TruncationAtEveryLengthThrowsTyped) {
  const std::vector<std::uint8_t> frame = rle_frame();
  std::vector<float> out(512);
  for (std::size_t bytes = 0; bytes < frame.size(); ++bytes) {
    EXPECT_THROW(decode_frame(frame.data(), bytes, out.data(), 512),
                 CompressionError)
        << "truncated to " << bytes << " bytes";
  }
}

TEST(WireFrameCorruption, EveryBitFlipThrowsTyped) {
  // Flip every bit of the frame in turn: header flips break the magic,
  // mode, count, length, reserved, or checksum fields; payload flips break
  // the checksum. Any silent success would mean a corrupt reduce
  // contribution folds into the result.
  const std::vector<std::uint8_t> frame = rle_frame();
  std::vector<float> out(512);
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bad = frame;
      bad[byte] = static_cast<std::uint8_t>(bad[byte] ^ (1u << bit));
      EXPECT_THROW(decode_frame(bad.data(), bad.size(), out.data(), 512),
                   CompressionError)
          << "bit " << bit << " of byte " << byte;
    }
  }
}

TEST(WireFrameCorruption, ErrorsNameTheOffendingOffset) {
  const std::vector<std::uint8_t> frame = rle_frame();
  std::vector<float> out(512);

  const auto message_of = [&](const std::vector<std::uint8_t>& bad,
                              std::size_t bytes) -> std::string {
    try {
      decode_frame(bad.data(), bytes, out.data(), 512);
    } catch (const CompressionError& e) {
      return e.what();
    }
    return "";
  };

  // Truncated header: offset = the bytes that were present.
  EXPECT_NE(message_of(frame, 7).find("at offset 7"), std::string::npos);
  // Bad magic: offset 0.
  std::vector<std::uint8_t> bad_magic = frame;
  bad_magic[0] ^= 0xff;
  EXPECT_NE(message_of(bad_magic, frame.size()).find("at offset 0"),
            std::string::npos);
  // Lying word count: offset 8.
  std::vector<std::uint8_t> bad_count = frame;
  bad_count[8] ^= 0x01;
  EXPECT_NE(message_of(bad_count, frame.size()).find("at offset 8"),
            std::string::npos);
  // Corrupt payload byte: the checksum catches it, named at offset 16.
  std::vector<std::uint8_t> bad_payload = frame;
  bad_payload[kFrameHeaderBytes + 5] ^= 0x10;
  EXPECT_NE(message_of(bad_payload, frame.size())
                .find("checksum mismatch at offset 16"),
            std::string::npos);
}

TEST(WireFrameCorruption, LengthLyingHeadersCannotReadOutOfBounds) {
  // A header claiming more payload than the buffer holds must be rejected
  // against bytes_available BEFORE any payload access (ASan would flag an
  // overread here if validation were reordered).
  std::vector<float> data;
  std::vector<std::uint8_t> frame = rle_frame(&data);
  const std::size_t payload = frame.size() - kFrameHeaderBytes;
  std::vector<float> out(512);

  // Inflate the payload-length field past the buffer end.
  std::vector<std::uint8_t> inflate = frame;
  const std::uint32_t lie = static_cast<std::uint32_t>(payload + 1000);
  std::memcpy(inflate.data() + 12, &lie, sizeof(lie));
  EXPECT_THROW(decode_frame(inflate.data(), inflate.size(), out.data(), 512),
               CompressionError);

  // Deflate it: the truncated payload no longer matches the checksum (and a
  // plane prefix would overrun it first).
  std::vector<std::uint8_t> deflate = frame;
  const std::uint32_t small = static_cast<std::uint32_t>(payload / 2);
  std::memcpy(deflate.data() + 12, &small, sizeof(small));
  EXPECT_THROW(decode_frame(deflate.data(), deflate.size(), out.data(), 512),
               CompressionError);

  // A raw-mode frame whose length disagrees with 4 * count.
  std::vector<float> noise(64);
  Rng rng(0xbadf00d);
  for (float& v : noise) v = rng.next_float(-1e6f, 1e6f);
  std::vector<std::uint8_t> raw = encode_frame(noise.data(), noise.size());
  ASSERT_EQ(raw[4], 0) << "noise must resolve to raw mode";
  const std::uint32_t short_raw = 64 * sizeof(float) - 4;
  std::memcpy(raw.data() + 12, &short_raw, sizeof(short_raw));
  std::vector<float> raw_out(64);
  EXPECT_THROW(decode_frame(raw.data(), raw.size(), raw_out.data(), 64),
               CompressionError);
}

TEST(WireFrameCorruption, PlaneRecordsDecodingPastWordCountThrow) {
  // Hand-build a mode-1 frame whose plane RLE decodes more words than the
  // header's count: bounds-checked decode must throw, not scribble. The
  // payload (28 bytes) stays under 4*count so the RLE-smaller-than-raw
  // header check passes and the defensive plane parsing is what trips.
  const std::size_t count = 100;
  std::vector<std::uint8_t> payload;
  for (std::size_t plane = 0; plane < 4; ++plane) {
    // length prefix: one 3-byte record
    payload.push_back(3);
    payload.push_back(0);
    payload.push_back(0);
    payload.push_back(0);
    payload.push_back(200);  // run of 200 > count = 100
    payload.push_back(0);
    payload.push_back(0x42);
  }
  std::vector<std::uint8_t> frame;
  const std::uint32_t magic = 0x31465746u;
  frame.resize(20);
  std::memcpy(frame.data(), &magic, 4);
  frame[4] = 1;
  const std::uint32_t count32 = count;
  std::memcpy(frame.data() + 8, &count32, 4);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(frame.data() + 12, &len, 4);
  // Valid checksum so the defensive plane parsing is what trips.
  std::uint32_t hash = 2166136261u;
  for (std::uint8_t b : payload) {
    hash ^= b;
    hash *= 16777619u;
  }
  std::memcpy(frame.data() + 16, &hash, 4);
  frame.insert(frame.end(), payload.begin(), payload.end());

  std::vector<float> out(count);
  try {
    decode_frame(frame.data(), frame.size(), out.data(), count);
    FAIL() << "expected CompressionError";
  } catch (const CompressionError& e) {
    EXPECT_NE(std::string(e.what()).find("decodes past word count"),
              std::string::npos)
        << e.what();
  }
}

// ---- store-object corruption + header validation ---------------------------

Volume store_volume() {
  Volume vol(6, 5, 4, VolumeLayout::kXMajor, /*zero_fill=*/false);
  for (std::size_t i = 0; i < vol.voxels(); ++i) {
    vol.data()[i] = static_cast<float>(i % 9) * 0.125f;
  }
  return vol;
}

TEST(StoreObjectCorruption, SerializedRoundTripIsExact) {
  const CompressedVolume cv = compress(store_volume(), 12);
  const std::vector<std::uint8_t> blob = serialize_volume(cv);
  const CompressedVolume back = deserialize_volume(blob.data(), blob.size());
  EXPECT_EQ(back.nx, cv.nx);
  EXPECT_EQ(back.ny, cv.ny);
  EXPECT_EQ(back.nz, cv.nz);
  EXPECT_EQ(back.layout, cv.layout);
  EXPECT_EQ(back.bits, cv.bits);
  EXPECT_EQ(back.min_value, cv.min_value);
  EXPECT_EQ(back.max_value, cv.max_value);
  EXPECT_EQ(back.payload, cv.payload);
}

TEST(StoreObjectCorruption, TruncationAndBitFlipsThrowTyped) {
  const std::vector<std::uint8_t> blob =
      serialize_volume(compress(store_volume(), 12));
  for (std::size_t bytes = 0; bytes < blob.size(); ++bytes) {
    EXPECT_THROW(deserialize_volume(blob.data(), bytes), CompressionError)
        << "truncated to " << bytes << " bytes";
  }
  for (std::size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bad = blob;
      bad[byte] = static_cast<std::uint8_t>(bad[byte] ^ (1u << bit));
      // deserialize_volume validates magic, layout/bits ranges, reserved
      // bytes, payload length, and the payload checksum; the dimension and
      // quantization-range fields are carried through untrusted and it is
      // decompress() that cross-checks dims against the decoded word
      // count. So every flip must resolve to a typed CompressionError from
      // ONE of the two stages — except flips confined to the
      // layout/bits/min/max fields that happen to stay in-range, which
      // legally describe a different (still decodable) volume. Nothing may
      // escape as UB or a non-typed exception (the ASan lane enforces the
      // first half of that claim).
      const bool reinterpretable_field =
          byte == 16 || byte == 17 || (byte >= 20 && byte < 28);
      const bool dim_field = byte >= 4 && byte < 16;
      try {
        const CompressedVolume back = deserialize_volume(bad.data(),
                                                         bad.size());
        ASSERT_TRUE(dim_field || reinterpretable_field)
            << "bit " << bit << " of byte " << byte << " parsed silently";
        try {
          const Volume out = decompress(back);
          // Only an in-range layout/bits/min/max reinterpretation may
          // decode; a flipped dimension always changes nx*ny*nz away from
          // the RLE stream's word count.
          ASSERT_TRUE(reinterpretable_field)
              << "bit " << bit << " of byte " << byte
              << " decompressed silently";
          EXPECT_EQ(out.voxels(), store_volume().voxels());
        } catch (const CompressionError&) {
          // typed rejection at the decompress stage
        }
      } catch (const CompressionError&) {
        // typed rejection at the parse stage
      }
    }
  }
}

TEST(StoreObjectCorruption, HeaderVoxelCountMustMatchDecodedWords) {
  // The satellite fix: a header whose nx*ny*nz disagrees with the RLE
  // stream's decoded word count must be rejected — in BOTH directions.
  CompressedVolume cv = compress(store_volume(), 12);
  CompressedVolume bigger = cv;
  bigger.nz = cv.nz + 1;
  try {
    decompress(bigger);
    FAIL() << "expected CompressionError";
  } catch (const CompressionError& e) {
    EXPECT_NE(std::string(e.what()).find("header claims"), std::string::npos)
        << e.what();
  }
  CompressedVolume smaller = cv;
  smaller.nz = cv.nz - 1;
  EXPECT_THROW(decompress(smaller), CompressionError);

  CompressedVolume empty = cv;
  empty.nx = 0;
  EXPECT_THROW(decompress(empty), CompressionError);
}

TEST(StoreObjectCorruption, HeaderProductOverflowIsGuarded) {
  // nx*ny*nz (and *sizeof(float)) must be overflow-checked BEFORE any
  // allocation: a lying header cannot wrap the size computation into a
  // small allocation that the RLE decode then overruns.
  CompressedVolume lying = compress(store_volume(), 12);
  lying.nx = std::numeric_limits<std::size_t>::max() / 2;
  lying.ny = 3;
  lying.nz = 3;
  try {
    decompress(lying);
    FAIL() << "expected CompressionError";
  } catch (const CompressionError& e) {
    EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos)
        << e.what();
  }

  // The nx*ny*nz*sizeof(float) product can overflow even when the voxel
  // count itself does not.
  CompressedVolume byte_lying = compress(store_volume(), 12);
  byte_lying.nx = std::numeric_limits<std::size_t>::max() / 2;
  byte_lying.ny = 1;
  byte_lying.nz = 1;
  try {
    decompress(byte_lying);
    FAIL() << "expected CompressionError";
  } catch (const CompressionError& e) {
    EXPECT_NE(std::string(e.what()).find("sizeof(float)"), std::string::npos)
        << e.what();
  }

  CompressedVolume bad_bits = compress(store_volume(), 12);
  bad_bits.bits = 99;  // out-of-range depth is rejected up front too
  EXPECT_THROW(decompress(bad_bits), CompressionError);
}

// ---- mid-ireduce corrupted-frame injection ---------------------------------

TEST(IreduceCorruption, CorruptedFrameSurfacesDecodeFailureNotSymptom) {
  // Rank 2's encoder flips one payload byte in its second segment. The
  // folding root's decode must throw CompressionError, the world must
  // abort (no hung rank — the suite TIMEOUT is the guard), and run_world's
  // 3-class protocol must surface the DECODE failure, not the
  // WorldAbortedError / queue-shutdown symptoms of the healthy ranks.
  for (const mpi::ReduceAlgo algo :
       {mpi::ReduceAlgo::kTree, mpi::ReduceAlgo::kLinear}) {
    try {
      mpi::run_world(4, [algo](mpi::Comm& comm) {
        mpi::WireCodec codec = engine::make_wire_codec(nullptr);
        if (comm.rank() == 2) {
          codec.encode = [](const float* data, std::size_t count) {
            std::vector<std::uint8_t> frame = encode_frame(data, count);
            static thread_local int calls = 0;
            if (++calls == 2 && frame.size() > kFrameHeaderBytes) {
              frame[kFrameHeaderBytes] ^= 0x40;  // payload bit flip
            }
            return frame;
          };
        }
        std::vector<float> mine(300, static_cast<float>(comm.rank() + 1));
        std::vector<float> sum(mine.size());
        auto req = comm.ireduce(mine.data(), sum.data(), mine.size(),
                                mpi::ReduceOp::kSum, /*root=*/0,
                                /*segment_floats=*/128, {}, algo, &codec);
        req.wait();
      });
      FAIL() << "expected CompressionError";
    } catch (const CompressionError& e) {
      EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(IreduceCorruption, PickRootCausePrefersDecodeFailure) {
  // The 3-class protocol in isolation: a CompressionError (class 0, a real
  // failure) must win over both symptom classes regardless of slot order.
  const auto as_ptr = [](auto&& e) {
    return std::make_exception_ptr(std::forward<decltype(e)>(e));
  };
  const std::exception_ptr decode =
      as_ptr(CompressionError("wire frame: payload checksum mismatch"));
  const std::exception_ptr abort_symptom =
      as_ptr(mpi::WorldAbortedError("fetch on aborted world"));
  const std::exception_ptr queue_symptom =
      as_ptr(engine::QueueClosedError("queue closed"));

  for (const auto& slots :
       {std::vector<std::exception_ptr>{queue_symptom, abort_symptom, decode},
        std::vector<std::exception_ptr>{decode, abort_symptom, queue_symptom},
        std::vector<std::exception_ptr>{abort_symptom, decode, nullptr}}) {
    const std::exception_ptr winner = engine::pick_root_cause(slots);
    ASSERT_TRUE(winner);
    EXPECT_THROW(std::rethrow_exception(winner), CompressionError);
  }
}

TEST(IreduceCorruption, LosslessCodecKeepsReduceBitwiseIdentical) {
  // The framing contract the streaming pin builds on, at the collective
  // level: with the real (uncorrupted) codec, framed ireduce results are
  // bitwise identical to unframed ones for both fan-ins.
  for (const mpi::ReduceAlgo algo :
       {mpi::ReduceAlgo::kTree, mpi::ReduceAlgo::kLinear}) {
    mpi::run_world(5, [algo](mpi::Comm& comm) {
      engine::WireStats stats;
      const mpi::WireCodec codec = engine::make_wire_codec(&stats);
      Rng rng(0xabcdef ^ static_cast<std::uint64_t>(comm.rank()));
      std::vector<float> mine(700);
      for (float& v : mine) {
        v = rng.next_below(3) == 0 ? 0.0f : rng.next_float(-5.0f, 5.0f);
      }
      std::vector<float> framed(mine.size()), unframed(mine.size());
      comm.ireduce(mine.data(), unframed.data(), mine.size(),
                   mpi::ReduceOp::kSum, 0, 256, {}, algo)
          .wait();
      comm.ireduce(mine.data(), framed.data(), mine.size(),
                   mpi::ReduceOp::kSum, 0, 256, {}, algo, &codec)
          .wait();
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < mine.size(); ++i) {
          ASSERT_EQ(framed[i], unframed[i]) << "element " << i;
        }
      } else {
        // Non-roots sent framed traffic; the counters must reflect it and
        // the lossless guarantee bounds encoded <= raw + header overhead.
        EXPECT_GT(stats.raw_bytes, 0u);
        EXPECT_LE(stats.encoded_bytes,
                  stats.raw_bytes + 3 * kFrameHeaderBytes);
      }
    });
  }
}

}  // namespace
}  // namespace ifdk::postproc
