// DecompositionPlan property tests: over randomized geometries and grids,
// the slab extents must disjointly cover [0, Nz), the projection shards must
// disjointly cover [0, Np), and the per-epoch collective tag budgets must
// bound what an epoch's collectives actually reserve through minimpi
// (measured against the live Comm::collective_tags_reserved() counter).
// Plus the plan's ConfigError / DeviceOutOfMemory message contracts.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "geometry/cbct.h"
#include "ifdk/plan.h"
#include "minimpi/minimpi.h"

namespace ifdk {
namespace {

/// A random valid decomposition case: grid shape, per-rank round count, and
/// slab half-height drive Np and Nz so every divisibility constraint holds
/// by construction — the properties under test are the cover invariants,
/// not the validation.
struct RandomCase {
  geo::CbctGeometry geometry;
  IfdkOptions options;
  int rows;
  int cols;
};

RandomCase random_case(Rng& rng) {
  RandomCase c;
  c.rows = 1 << rng.next_below(3);             // R in {1, 2, 4}
  c.cols = 1 + static_cast<int>(rng.next_below(4));  // C in {1..4}
  const std::size_t rounds = 1 + rng.next_below(5);
  const std::size_t slab_h = 1 + rng.next_below(4);
  const std::size_t n = 8 + 2 * rng.next_below(5);  // Nx=Ny in {8..16}
  const Problem problem{
      {2 * n, 2 * n,
       rounds * static_cast<std::size_t>(c.rows) *
           static_cast<std::size_t>(c.cols)},
      {n, n, 2 * static_cast<std::size_t>(c.rows) * slab_h}};
  c.geometry = geo::make_standard_geometry(problem);
  c.options.ranks = c.rows * c.cols;
  c.options.rows = c.rows;
  c.options.reduce_segment_floats = 1 + rng.next_below(4096);
  return c;
}

TEST(PlanProperties, SlabExtentsDisjointlyCoverNz) {
  Rng rng(0x5eed0001);
  for (int trial = 0; trial < 50; ++trial) {
    const RandomCase c = random_case(rng);
    const DecompositionPlan plan =
        DecompositionPlan::make(c.geometry, c.options);
    ASSERT_EQ(plan.grid.rows, c.rows);
    ASSERT_EQ(plan.grid.columns, c.cols);

    std::vector<int> owner(c.geometry.nz, -1);
    for (int row = 0; row < plan.grid.rows; ++row) {
      const SlabExtent e = plan.slab_extent(row);
      EXPECT_EQ(e.low_end - e.low_begin, plan.slab_h);
      EXPECT_EQ(e.high_end - e.high_begin, plan.slab_h);
      for (std::size_t k = e.low_begin; k < e.low_end; ++k) {
        ASSERT_EQ(owner[k], -1) << "slice " << k << " double-owned";
        owner[k] = row;
      }
      for (std::size_t k = e.high_begin; k < e.high_end; ++k) {
        ASSERT_EQ(owner[k], -1) << "slice " << k << " double-owned";
        owner[k] = row;
      }
      // global_slice must enumerate exactly the extent, low then mirror.
      for (std::size_t local_k = 0; local_k < 2 * plan.slab_h; ++local_k) {
        const std::size_t k = plan.global_slice(row, local_k);
        EXPECT_EQ(owner[k], row);
      }
    }
    for (std::size_t k = 0; k < c.geometry.nz; ++k) {
      ASSERT_NE(owner[k], -1) << "slice " << k << " unowned";
    }
  }
}

TEST(PlanProperties, ProjectionShardsDisjointlyCoverNp) {
  Rng rng(0x5eed0002);
  for (int trial = 0; trial < 50; ++trial) {
    const RandomCase c = random_case(rng);
    const DecompositionPlan plan =
        DecompositionPlan::make(c.geometry, c.options);

    std::vector<int> owner(c.geometry.np, -1);
    for (int col = 0; col < plan.grid.columns; ++col) {
      for (int row = 0; row < plan.grid.rows; ++row) {
        const int rank = col * plan.grid.rows + row;
        EXPECT_EQ(plan.row_of(rank), row);
        EXPECT_EQ(plan.col_of(rank), col);
        const std::vector<std::size_t> shard = plan.projection_shard(row, col);
        ASSERT_EQ(shard.size(), plan.rounds);
        for (const std::size_t s : shard) {
          ASSERT_LT(s, c.geometry.np);
          ASSERT_EQ(owner[s], -1) << "projection " << s << " double-owned";
          owner[s] = rank;
        }
        // Each column's shards stay inside its contiguous Np/C block.
        const std::size_t base = plan.column_base(col);
        for (const std::size_t s : shard) {
          EXPECT_GE(s, base);
          EXPECT_LT(s, base + plan.rounds * static_cast<std::size_t>(
                                                plan.grid.rows));
        }
      }
    }
    for (std::size_t s = 0; s < c.geometry.np; ++s) {
      ASSERT_NE(owner[s], -1) << "projection " << s << " unowned";
    }
  }
}

TEST(PlanProperties, BudgetsAndBytesAreConsistent) {
  Rng rng(0x5eed0003);
  for (int trial = 0; trial < 50; ++trial) {
    const RandomCase c = random_case(rng);
    const DecompositionPlan plan =
        DecompositionPlan::make(c.geometry, c.options);

    // Segment count covers the slab exactly.
    const std::uint64_t segments = plan.reduce_segments();
    EXPECT_GE(segments * plan.reduce_segment_floats, plan.slab_floats());
    EXPECT_LT((segments - 1) * plan.reduce_segment_floats,
              plan.slab_floats());
    EXPECT_EQ(plan.reduce_tag_budget(), segments);

    // Gather budgets: one ring (R-1 tags) per round; zero when fused.
    EXPECT_EQ(plan.gather_tags_per_round(false),
              static_cast<std::uint64_t>(plan.grid.rows - 1));
    EXPECT_EQ(plan.gather_tag_budget(false),
              plan.rounds * static_cast<std::uint64_t>(plan.grid.rows - 1));
    EXPECT_EQ(plan.gather_tag_budget(true), 0u);

    // Byte accounting matches the shapes.
    EXPECT_EQ(plan.allgather_bytes_per_round(),
              static_cast<std::uint64_t>(plan.grid.rows - 1) * plan.pixels *
                  sizeof(float));
    EXPECT_EQ(plan.reduce_bytes_per_epoch(), plan.slab_bytes());
    EXPECT_EQ(plan.slab_floats(), 2 * plan.slab_h * plan.slice_px);

    plan.check_invariants();  // must hold on every random case
  }
}

TEST(PlanTagBudget, LiveEpochNeverExceedsTheBudget) {
  // Drive a real minimpi world through the collectives one streaming epoch
  // issues — plan.rounds ring AllGathers on the column comm, one segmented
  // ireduce on the row comm — and check the live tag counter against the
  // plan's budgets. Swept over random cases and both fan-ins.
  Rng rng(0x5eed0004);
  for (int trial = 0; trial < 8; ++trial) {
    const RandomCase c = random_case(rng);
    const DecompositionPlan plan =
        DecompositionPlan::make(c.geometry, c.options);
    const mpi::ReduceAlgo algo = trial % 2 == 0 ? mpi::ReduceAlgo::kTree
                                                : mpi::ReduceAlgo::kLinear;

    mpi::run_world(plan.ranks(), [&](mpi::Comm& world) {
      const int rank = world.rank();
      const int row = plan.row_of(rank);
      const int col = plan.col_of(rank);
      mpi::Comm col_comm = world.split(col, row);
      mpi::Comm row_comm = world.split(row, col);

      // Column epoch: one ring AllGather per round.
      const std::uint64_t col_before = col_comm.collective_tags_reserved();
      std::vector<float> block(plan.pixels, static_cast<float>(rank));
      std::vector<float> gathered(
          static_cast<std::size_t>(plan.grid.rows) * plan.pixels);
      for (std::size_t t = 0; t < plan.rounds; ++t) {
        col_comm
            .iallgather_ring(block.data(), plan.pixels * sizeof(float),
                             gathered.data())
            .wait();
      }
      const std::uint64_t col_used =
          col_comm.collective_tags_reserved() - col_before;
      EXPECT_LE(col_used, plan.gather_tag_budget(/*fused=*/false));
      EXPECT_EQ(col_used, plan.gather_tag_budget(/*fused=*/false));

      // Row epoch: one segmented ireduce of the slab pair.
      const std::uint64_t row_before = row_comm.collective_tags_reserved();
      std::vector<float> partial(plan.slab_floats(), 1.0f);
      std::vector<float> reduced(col == 0 ? plan.slab_floats() : 0);
      row_comm
          .ireduce(partial.data(), col == 0 ? reduced.data() : nullptr,
                   partial.size(), mpi::ReduceOp::kSum, /*root=*/0,
                   plan.reduce_segment_floats, {}, algo)
          .wait();
      const std::uint64_t row_used =
          row_comm.collective_tags_reserved() - row_before;
      EXPECT_LE(row_used, plan.reduce_tag_budget());
      EXPECT_EQ(row_used, plan.reduce_tag_budget());
      if (col == 0) {
        for (const float x : reduced) {
          EXPECT_EQ(x, static_cast<float>(plan.grid.columns));
        }
      }
    });
  }
}

TEST(PlanErrors, MessagesNameTheOffendingValues) {
  const geo::CbctGeometry g =
      geo::make_standard_geometry({{32, 32, 16}, {12, 12, 12}});
  const auto expect_error = [&](const geo::CbctGeometry& geom,
                                const IfdkOptions& opts, int volume_index,
                                std::initializer_list<const char*> fragments) {
    try {
      DecompositionPlan::make(geom, opts, volume_index);
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
      const std::string what = e.what();
      for (const char* fragment : fragments) {
        EXPECT_NE(what.find(fragment), std::string::npos)
            << "message \"" << what << "\" lacks \"" << fragment << "\"";
      }
    }
  };

  IfdkOptions bad_ranks;
  bad_ranks.ranks = 3;
  bad_ranks.rows = 2;
  expect_error(g, bad_ranks, -1, {"ranks (3)", "row count R (2)"});
  // The same failure in streaming mode names the volume.
  expect_error(g, bad_ranks, 5, {"volume 5: ", "ranks (3)"});

  IfdkOptions bad_np;
  bad_np.ranks = 32;  // 16 projections over 32 ranks
  bad_np.rows = 2;
  expect_error(g, bad_np, -1, {"Np (16)", "ranks=32"});
  expect_error(g, bad_np, 0, {"volume 0: ", "Np (16)"});

  IfdkOptions bad_nz;
  bad_nz.ranks = 8;
  bad_nz.rows = 8;  // 2*8 does not divide Nz=12
  expect_error(geo::make_standard_geometry({{32, 32, 16}, {12, 12, 12}}),
               bad_nz, 2, {"volume 2: ", "Nz (12)", "2*rows (16)"});
}

TEST(PlanMemory, DeviceFitCheckNamesTheNumbers) {
  const geo::CbctGeometry g =
      geo::make_standard_geometry({{32, 32, 16}, {12, 12, 12}});
  IfdkOptions opts;
  opts.ranks = 2;
  opts.rows = 1;
  const DecompositionPlan plan = DecompositionPlan::make(g, opts);
  gpusim::DeviceSpec tiny;
  tiny.memory_bytes = 1024;
  try {
    plan.check_device_fit(tiny);
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(std::to_string(plan.device_bytes())),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("1024"), std::string::npos) << what;
  }
  // The 16 GB default fits comfortably.
  plan.check_device_fit(gpusim::DeviceSpec{});
}

TEST(PlanMemory, AutoRowSelectionAccountsForResidentSlabs) {
  // With rows = 0 the plan doubles R until resident_slabs slab pairs plus a
  // batch fit the device — streaming (2 resident slabs) can resolve a
  // bigger R than a single-volume run on the same device.
  const geo::CbctGeometry g =
      geo::make_standard_geometry({{32, 32, 32}, {16, 16, 16}});
  IfdkOptions opts;
  opts.ranks = 8;
  opts.rows = 0;
  opts.microbench.sub_volume_bytes = 64ull << 30;  // Eq. (7) alone says R=1
  opts.microbench.gpu_memory_bytes = 64ull << 30;
  // Volume is 16*16*16*4 = 16384 B; batch is 32*32*32*4 = 131072 B. A
  // device that only fits one slab + batch at R=2 forces streaming to R=4.
  opts.device.memory_bytes = 131072 + 16384 / 2 + 512;

  const DecompositionPlan single = DecompositionPlan::make(g, opts, -1, 1);
  EXPECT_EQ(single.grid.rows, 2);
  const DecompositionPlan streaming = DecompositionPlan::make(g, opts, -1, 2);
  EXPECT_EQ(streaming.grid.rows, 4);
  streaming.check_device_fit(opts.device);
}

}  // namespace
}  // namespace ifdk
