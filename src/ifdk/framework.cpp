#include "ifdk/framework.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "backproj/backprojector.h"
#include "common/circular_buffer.h"
#include "common/error.h"
#include "gpusim/kernel_model.h"
#include "minimpi/minimpi.h"
#include "pfs/async_writer.h"

namespace ifdk {

namespace {

std::string object_name(const std::string& prefix, std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06zu", index);
  return prefix + buf;
}

/// Secondary pipeline error: a stage observed its queue closed because the
/// thread at the other end died first. Typed (rather than matched by
/// message text) so the rethrow logic can reliably prefer the root cause.
class QueueClosedError : public Error {
 public:
  explicit QueueClosedError(const std::string& what) : Error(what) {}
};

/// Per-rank result handed back to the coordinator after run_world.
struct RankStats {
  StageTimer wall;
  /// Busy/wall per pipeline thread (see IfdkStats::overlap_efficiency).
  StageTimer efficiency;
  double v_h2d = 0;
  double v_kernel = 0;
  double v_d2h = 0;
  double total = 0;
};

}  // namespace

void stage_projections(pfs::ParallelFileSystem& fs,
                       const std::string& input_prefix,
                       std::span<const Image2D> projections) {
  for (std::size_t s = 0; s < projections.size(); ++s) {
    fs.write_object(object_name(input_prefix, s), projections[s].data(),
                    projections[s].bytes());
  }
}

Volume load_volume(const pfs::ParallelFileSystem& fs,
                   const std::string& output_prefix, const VolDims& dims) {
  Volume vol(dims.nx, dims.ny, dims.nz, VolumeLayout::kXMajor,
             /*zero_fill=*/false);
  for (std::size_t k = 0; k < dims.nz; ++k) {
    fs.read_object(object_name(output_prefix, k), vol.slice(k),
                   dims.nx * dims.ny * sizeof(float));
  }
  return vol;
}

// The framework-level default must track the minimpi tuning constant (the
// header cannot include minimpi.h just for a default value).
static_assert(IfdkOptions{}.reduce_segment_floats ==
              mpi::Comm::kDefaultReduceSegment);

IfdkStats run_distributed(const geo::CbctGeometry& geometry,
                          pfs::ParallelFileSystem& fs,
                          const IfdkOptions& options) {
  geometry.validate();
  const Problem problem = geometry.problem();

  const int rows = options.rows > 0
                       ? options.rows
                       : perfmodel::select_rows(problem, options.microbench);
  if (options.ranks < rows || options.ranks % rows != 0) {
    throw ConfigError("ranks (" + std::to_string(options.ranks) +
                      ") must be a positive multiple of the row count R (" +
                      std::to_string(rows) + ")");
  }
  const int cols = options.ranks / rows;
  if (geometry.np % static_cast<std::size_t>(options.ranks) != 0) {
    throw ConfigError("Np (" + std::to_string(geometry.np) +
                      ") must divide evenly across the rank grid (ranks=" +
                      std::to_string(options.ranks) + ")");
  }
  if (geometry.nz % (2 * static_cast<std::size_t>(rows)) != 0) {
    throw ConfigError("Nz (" + std::to_string(geometry.nz) +
                      ") must be divisible by 2*rows (" +
                      std::to_string(2 * rows) +
                      "): each row owns a symmetric slab pair");
  }
  IFDK_REQUIRE(options.reduce_segment_floats > 0,
               "reduce_segment_floats must be positive");

  const std::size_t slab_h = geometry.nz / (2 * static_cast<std::size_t>(rows));
  const std::size_t per_rank =
      geometry.np / static_cast<std::size_t>(options.ranks);
  const std::size_t pixels = geometry.nu * geometry.nv;

  std::vector<RankStats> rank_stats(static_cast<std::size_t>(options.ranks));

  mpi::run_world(options.ranks, [&](mpi::Comm& world) {
    const int rank = world.rank();
    const int col = rank / rows;
    const int row = rank % rows;
    RankStats& stats = rank_stats[static_cast<std::size_t>(rank)];
    Timer rank_timer;

    // Fig. 3b: AllGather across the column, Reduce across the row.
    mpi::Comm col_comm = world.split(col, row);
    mpi::Comm row_comm = world.split(row, col);

    // Per-rank engines. The filter engine is what the Filtering-thread runs
    // on "CPUs"; the back-projector is the Bp-thread's "GPU" kernel.
    filter::FilterEngine engine(geometry, options.filter);

    bp::BpConfig bp_cfg;
    bp_cfg.batch = options.bp_batch;
    bp_cfg.k_begin = static_cast<std::size_t>(row) * slab_h;
    bp_cfg.k_half = slab_h;
    bp::Backprojector backprojector(geometry, bp_cfg);
    const auto matrices = geo::make_all_projection_matrices(geometry);

    // Device memory: the slab pair plus a batch of projections must fit
    // (Section 4.1.5's constraint); allocation failure here means R was
    // chosen too small.
    gpusim::Device device(options.device);
    const std::uint64_t slab_bytes =
        2ull * slab_h * geometry.nx * geometry.ny * sizeof(float);
    gpusim::DeviceBuffer vol_buf = device.allocate(slab_bytes);
    gpusim::DeviceBuffer batch_buf = device.allocate(
        static_cast<std::uint64_t>(options.bp_batch) * pixels * sizeof(float));
    gpusim::KernelModel kernel_model;

    Volume slab(geometry.nx, geometry.ny, 2 * slab_h, VolumeLayout::kZMajor,
                /*zero_fill=*/true);

    // Projection index owned by this rank in AllGather round t
    // (Section 4.1.1: each column handles a contiguous block of Np/C).
    const std::size_t column_base =
        static_cast<std::size_t>(col) * per_rank * static_cast<std::size_t>(rows);
    auto owned_index = [&](std::size_t t) {
      return column_base + t * static_cast<std::size_t>(rows) +
             static_cast<std::size_t>(row);
    };

    struct Filtered {
      std::size_t index;
      Image2D image;
    };
    CircularBuffer<Filtered> q_filtered(options.queue_capacity);
    CircularBuffer<std::vector<Filtered>> q_gathered(options.queue_capacity);

    // Worker-thread errors are carried back to the rank body and rethrown
    // there, so run_world's abort protocol unblocks the other ranks. A
    // refused queue push is itself a pipeline error: it means the consumer
    // side shut down early, and silently dropping the item would make this
    // rank emit a wrong (partially accumulated) volume.
    std::exception_ptr filter_error;
    std::exception_ptr bp_error;
    std::exception_ptr main_error;

    // ---- Filtering-thread: load from PFS + filter (Fig. 4a left) ----------
    StageTimer filter_timer;
    std::thread filtering_thread([&] {
      try {
        for (std::size_t t = 0; t < per_rank; ++t) {
          const std::size_t s = owned_index(t);
          Image2D img(geometry.nu, geometry.nv, /*zero_fill=*/false);
          filter_timer.time("load", [&] {
            fs.read_object(object_name(options.input_prefix, s), img.data(),
                           img.bytes());
          });
          filter_timer.time("filter", [&] { engine.apply(img); });
          if (!q_filtered.push(Filtered{s, std::move(img)})) {
            throw QueueClosedError(
                "iFDK pipeline: filtered-projection queue closed before all "
                "rounds were delivered");
          }
        }
      } catch (...) {
        filter_error = std::current_exception();
      }
      q_filtered.close();
    });

    // ---- Bp-thread: H2D + back-projection (Fig. 4a right) -----------------
    StageTimer bp_timer;
    std::thread bp_thread([&] {
      while (auto batch = q_gathered.pop()) {
        if (bp_error) continue;  // drain remaining rounds after a failure
        try {
        // The kernels execute on the CPU against host memory, so transfers
        // are accounting-only: charge the PCIe cost the modeled V100 would
        // pay to stage this round (the allocation above reserved the space).
        for (const Filtered& f : *batch) {
          device.charge_h2d(f.image.bytes());
        }
        std::vector<Image2D> images;
        std::vector<geo::Mat34> mats;
        images.reserve(batch->size());
        mats.reserve(batch->size());
        for (Filtered& f : *batch) {
          mats.push_back(matrices[f.index]);
          images.push_back(std::move(f.image));
        }
        bp_timer.time("backprojection", [&] {
          backprojector.accumulate(slab, images, mats);
        });
        // Modeled V100 cost of the same launch on this rank's sub-problem.
        const Problem sub{{geometry.nu, geometry.nv, images.size()},
                          {geometry.nx, geometry.ny, 2 * slab_h}};
        const double v100 =
            kernel_model.kernel_seconds(bp::KernelVariant::kL1Tran, sub);
        device.charge_kernel(v100);
        } catch (...) {
          bp_error = std::current_exception();
          // Stop accepting rounds so the main thread notices promptly
          // instead of filling the queue against a dead consumer.
          q_gathered.close();
        }
      }
    });

    // ---- Main-thread: AllGather per round (Fig. 4a middle) ----------------
    // Collectives throw when another rank aborts the world; catching here
    // (instead of unwinding past the worker threads) guarantees both workers
    // are always joined and this rank exits cleanly.
    StageTimer main_timer;
    // Two round buffers: in the overlapped pipeline the ring exchange for
    // round t+1 is in flight into one buffer while round t is packaged out
    // of the other.
    std::vector<float> gather_recv[2];
    gather_recv[0].resize(static_cast<std::size_t>(rows) * pixels);
    if (options.overlap) {
      gather_recv[1].resize(static_cast<std::size_t>(rows) * pixels);
    }
    // Repackages the rank-ordered gather buffer of round `t` into per-
    // projection images and hands them to the Bp-thread (blocks on queue
    // back-pressure — exactly the Fig. 4a coupling of gather and bp rates).
    auto deliver_round = [&](std::size_t t, const std::vector<float>& recv) {
      std::vector<Filtered> round;
      round.reserve(static_cast<std::size_t>(rows));
      for (int r = 0; r < rows; ++r) {
        Image2D img(geometry.nu, geometry.nv, /*zero_fill=*/false);
        const float* src = recv.data() + static_cast<std::size_t>(r) * pixels;
        std::copy(src, src + pixels, img.data());
        round.push_back(Filtered{
            column_base + t * static_cast<std::size_t>(rows) +
                static_cast<std::size_t>(r),
            std::move(img)});
      }
      if (!q_gathered.push(std::move(round))) {
        throw QueueClosedError(
            "iFDK pipeline: gathered-projection queue closed before all "
            "rounds were delivered");
      }
    };
    try {
      // Handle to the in-flight gather of round `pending_t` (overlap only).
      // Declared inside the try block: on a world abort the unwinding path
      // may drop it unwaited (see CollectiveRequest).
      mpi::Comm::CollectiveRequest pending;
      std::size_t pending_t = 0;
      for (std::size_t t = 0; t < per_rank; ++t) {
        auto mine = q_filtered.pop();
        if (!mine.has_value()) {
          // Filtering thread failed; its error is the root cause (rethrown
          // below), but the gather stream must not end silently short.
          throw QueueClosedError(
              "iFDK pipeline: filtered-projection queue closed before all "
              "rounds were gathered");
        }
        IFDK_ASSERT(mine->index == owned_index(t));
        if (options.overlap) {
          // Initiate round t (posting this rank's block to the ring), THEN
          // complete round t-1 and deliver it: neighbours waiting on our
          // t-contribution never stall behind our bp back-pressure.
          mpi::Comm::CollectiveRequest req;
          main_timer.time("allgather", [&] {
            req = col_comm.iallgather_ring(mine->image.data(),
                                           pixels * sizeof(float),
                                           gather_recv[t % 2].data());
          });
          if (pending.valid()) {
            main_timer.time("allgather", [&] { pending.wait(); });
            deliver_round(pending_t, gather_recv[pending_t % 2]);
          }
          pending = std::move(req);
          pending_t = t;
        } else {
          main_timer.time("allgather", [&] {
            if (options.use_ring_allgather) {
              col_comm.allgather_ring(mine->image.data(),
                                      pixels * sizeof(float),
                                      gather_recv[0].data());
            } else {
              col_comm.allgather(mine->image.data(), pixels * sizeof(float),
                                 gather_recv[0].data());
            }
          });
          deliver_round(t, gather_recv[0]);
        }
      }
      if (pending.valid()) {  // drain the last overlapped round
        main_timer.time("allgather", [&] { pending.wait(); });
        deliver_round(pending_t, gather_recv[pending_t % 2]);
      }
    } catch (...) {
      main_error = std::current_exception();
    }
    q_gathered.close();
    // Unblock a filtering thread stalled on a full queue after an early
    // exit; harmless on the success path (the producer has already closed).
    q_filtered.close();

    filtering_thread.join();
    bp_thread.join();
    // Rethrow the root cause, not a symptom: when one thread dies its queue
    // closes, and the threads at the other end fail with a secondary
    // QueueClosedError. A bp failure makes the main push fail; a filter
    // failure ends the main thread's pop early; a remote-rank abort surfaces
    // in the main thread's collective. Prefer the first error that is not a
    // queue-shutdown symptom.
    const auto is_queue_symptom = [](const std::exception_ptr& e) {
      try {
        std::rethrow_exception(e);
      } catch (const QueueClosedError&) {
        return true;
      } catch (...) {
        return false;
      }
    };
    const std::exception_ptr errors[] = {bp_error, main_error, filter_error};
    std::exception_ptr first;
    for (const std::exception_ptr& e : errors) {
      if (!e) continue;
      if (!first) first = e;
      if (!is_queue_symptom(e)) {
        first = e;
        break;
      }
    }
    if (first) std::rethrow_exception(first);
    const double compute_span = rank_timer.seconds();

    // ---- Post: D2H, row Reduce, store (Fig. 4b) ----------------------------
    main_timer.time("d2h", [&] { device.charge_d2h(slab.bytes()); });

    // Global slice index of local slab-pair slice `local_k`: local t <
    // slab_h is global row*h + t; local slab_h + t is global
    // Nz - (row+1)*h + t.
    auto global_slice = [&](std::size_t local_k) {
      return local_k < slab_h
                 ? static_cast<std::size_t>(row) * slab_h + local_k
                 : geometry.nz - (static_cast<std::size_t>(row) + 1) * slab_h +
                       (local_k - slab_h);
    };
    const std::size_t slice_px = geometry.nx * geometry.ny;
    // Extracts slice `local_k` of a z-major slab pair into a slice-major
    // destination. Shared by both pipeline paths: the overlap-equivalence
    // guarantee depends on the permutation being identical.
    auto extract_slice = [&](const float* zmajor, std::size_t local_k,
                             float* dst) {
      for (std::size_t j = 0; j < geometry.ny; ++j) {
        for (std::size_t i = 0; i < geometry.nx; ++i) {
          dst[j * geometry.nx + i] =
              zmajor[(i * geometry.ny + j) * 2 * slab_h + local_k];
        }
      }
    };
    // Seconds the async writer thread spent writing (overlapped root only);
    // the numerator of the store thread's overlap efficiency.
    double store_busy = 0;

    if (options.overlap) {
      // Every rank transposes its partial slab to slice-major (the same
      // permutation the blocking store applies after reducing), so the row
      // ireduce completes *whole slices* front to back and the root can
      // stream each finished slice to the async writer while later segments
      // are still being folded. The per-voxel fold order is unchanged
      // (ascending rank), so stored bits match the blocking path exactly.
      std::vector<float> partial(2 * slab_h * slice_px);
      main_timer.time("transpose", [&] {
        for (std::size_t local_k = 0; local_k < 2 * slab_h; ++local_k) {
          extract_slice(slab.data(), local_k,
                        partial.data() + local_k * slice_px);
        }
      });

      std::vector<float> reduced(col == 0 ? partial.size() : 0);
      std::optional<pfs::AsyncWriter> writer;
      std::size_t next_slice = 0;
      mpi::Comm::SegmentCallback on_segment;
      if (col == 0) {
        writer.emplace(fs, options.queue_capacity);
        on_segment = [&](std::size_t offset, std::size_t length) {
          // Enqueue every slice fully contained in the reduced prefix; the
          // writer thread performs the PFS writes while the next segments
          // are still in flight.
          const std::size_t prefix = offset + length;
          while (next_slice < 2 * slab_h &&
                 (next_slice + 1) * slice_px <= prefix) {
            const float* src = reduced.data() + next_slice * slice_px;
            writer->enqueue(
                object_name(options.output_prefix, global_slice(next_slice)),
                std::vector<float>(src, src + slice_px));
            ++next_slice;
          }
        };
      }
      mpi::Comm::CollectiveRequest reduce_req = row_comm.ireduce(
          partial.data(), col == 0 ? reduced.data() : nullptr, partial.size(),
          mpi::ReduceOp::kSum, /*root=*/0, options.reduce_segment_floats,
          std::move(on_segment));
      main_timer.time("reduce", [&] { reduce_req.wait(); });
      if (col == 0) {
        // "store" on the main thread is only the residual drain: writes that
        // had not finished when the last reduce segment completed.
        main_timer.time("store", [&] { writer->finish(); });
        store_busy = writer->busy_seconds();
      }
    } else {
      Volume reduced(geometry.nx, geometry.ny, 2 * slab_h,
                     VolumeLayout::kZMajor, /*zero_fill=*/col == 0);
      main_timer.time("reduce", [&] {
        row_comm.reduce(slab.data(), col == 0 ? reduced.data() : nullptr,
                        slab.voxels(), mpi::ReduceOp::kSum, /*root=*/0);
      });

      if (col == 0) {
        // Blocking reference store: extract and write slices serially.
        main_timer.time("store", [&] {
          std::vector<float> slice(slice_px);
          for (std::size_t local_k = 0; local_k < 2 * slab_h; ++local_k) {
            extract_slice(reduced.data(), local_k, slice.data());
            fs.write_object(
                object_name(options.output_prefix, global_slice(local_k)),
                slice.data(), slice.size() * sizeof(float));
          }
        });
      }
    }
    world.barrier();

    stats.wall.merge(filter_timer);
    stats.wall.merge(bp_timer);
    stats.wall.merge(main_timer);
    stats.wall.add("compute", compute_span);
    // Overlapped store: report the larger of writer busy time and residual
    // drain as the stage cost (the drain alone under-reports when writes
    // fully overlap the reduce).
    stats.wall.set_max("store", store_busy);
    stats.v_h2d = device.virtual_h2d_seconds();
    stats.v_kernel = device.virtual_kernel_seconds();
    stats.v_d2h = device.virtual_d2h_seconds();
    stats.total = rank_timer.seconds();

    // Busy/wall per pipeline thread: how much of this rank's wall clock each
    // stage thread spent doing useful work. bp_thread near 1 means the
    // pipeline reached the paper's back-projection-bound regime.
    if (stats.total > 0) {
      stats.efficiency.add(
          "filter_thread",
          (filter_timer.get("load") + filter_timer.get("filter")) /
              stats.total);
      stats.efficiency.add(
          "main_thread",
          (main_timer.get("allgather") + main_timer.get("d2h") +
           main_timer.get("transpose") + main_timer.get("reduce") +
           main_timer.get("store")) /
              stats.total);
      stats.efficiency.add("bp_thread",
                           bp_timer.get("backprojection") / stats.total);
      stats.efficiency.add("store_thread", store_busy / stats.total);
    }
  });

  // Merge: report the per-stage maximum across ranks (the critical path).
  IfdkStats out;
  out.grid = {rows, cols};
  out.overlapped = options.overlap;
  for (const RankStats& rs : rank_stats) {
    out.wall.max_merge(rs.wall);
    out.overlap_efficiency.max_merge(rs.efficiency);
    out.device_model.set_max("v_h2d", rs.v_h2d);
    out.device_model.set_max("v_kernel", rs.v_kernel);
    out.device_model.set_max("v_d2h", rs.v_d2h);
    out.wall_total = std::max(out.wall_total, rs.total);
  }
  return out;
}

}  // namespace ifdk
