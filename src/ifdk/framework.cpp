#include "ifdk/framework.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "backproj/backprojector.h"
#include "common/circular_buffer.h"
#include "common/error.h"
#include "gpusim/kernel_model.h"
#include "minimpi/minimpi.h"

namespace ifdk {

namespace {

std::string object_name(const std::string& prefix, std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06zu", index);
  return prefix + buf;
}

/// Per-rank result handed back to the coordinator after run_world.
struct RankStats {
  StageTimer wall;
  double v_h2d = 0;
  double v_kernel = 0;
  double v_d2h = 0;
  double total = 0;
};

}  // namespace

void stage_projections(pfs::ParallelFileSystem& fs,
                       const std::string& input_prefix,
                       std::span<const Image2D> projections) {
  for (std::size_t s = 0; s < projections.size(); ++s) {
    fs.write_object(object_name(input_prefix, s), projections[s].data(),
                    projections[s].bytes());
  }
}

Volume load_volume(const pfs::ParallelFileSystem& fs,
                   const std::string& output_prefix, const VolDims& dims) {
  Volume vol(dims.nx, dims.ny, dims.nz, VolumeLayout::kXMajor,
             /*zero_fill=*/false);
  for (std::size_t k = 0; k < dims.nz; ++k) {
    fs.read_object(object_name(output_prefix, k), vol.slice(k),
                   dims.nx * dims.ny * sizeof(float));
  }
  return vol;
}

IfdkStats run_distributed(const geo::CbctGeometry& geometry,
                          pfs::ParallelFileSystem& fs,
                          const IfdkOptions& options) {
  geometry.validate();
  const Problem problem = geometry.problem();

  const int rows = options.rows > 0
                       ? options.rows
                       : perfmodel::select_rows(problem, options.microbench);
  IFDK_REQUIRE(options.ranks >= rows && options.ranks % rows == 0,
               "ranks must be a positive multiple of the row count R");
  const int cols = options.ranks / rows;
  IFDK_REQUIRE(geometry.np % static_cast<std::size_t>(options.ranks) == 0,
               "Np must divide evenly across the rank grid");
  IFDK_REQUIRE(geometry.nz % (2 * static_cast<std::size_t>(rows)) == 0,
               "Nz must be divisible by 2*R (each row owns a symmetric "
               "slab pair)");

  const std::size_t slab_h = geometry.nz / (2 * static_cast<std::size_t>(rows));
  const std::size_t per_rank =
      geometry.np / static_cast<std::size_t>(options.ranks);
  const std::size_t pixels = geometry.nu * geometry.nv;

  std::vector<RankStats> rank_stats(static_cast<std::size_t>(options.ranks));

  mpi::run_world(options.ranks, [&](mpi::Comm& world) {
    const int rank = world.rank();
    const int col = rank / rows;
    const int row = rank % rows;
    RankStats& stats = rank_stats[static_cast<std::size_t>(rank)];
    Timer rank_timer;

    // Fig. 3b: AllGather across the column, Reduce across the row.
    mpi::Comm col_comm = world.split(col, row);
    mpi::Comm row_comm = world.split(row, col);

    // Per-rank engines. The filter engine is what the Filtering-thread runs
    // on "CPUs"; the back-projector is the Bp-thread's "GPU" kernel.
    filter::FilterEngine engine(geometry, options.filter);

    bp::BpConfig bp_cfg;
    bp_cfg.batch = options.bp_batch;
    bp_cfg.k_begin = static_cast<std::size_t>(row) * slab_h;
    bp_cfg.k_half = slab_h;
    bp::Backprojector backprojector(geometry, bp_cfg);
    const auto matrices = geo::make_all_projection_matrices(geometry);

    // Device memory: the slab pair plus a batch of projections must fit
    // (Section 4.1.5's constraint); allocation failure here means R was
    // chosen too small.
    gpusim::Device device(options.device);
    const std::uint64_t slab_bytes =
        2ull * slab_h * geometry.nx * geometry.ny * sizeof(float);
    gpusim::DeviceBuffer vol_buf = device.allocate(slab_bytes);
    gpusim::DeviceBuffer batch_buf = device.allocate(
        static_cast<std::uint64_t>(options.bp_batch) * pixels * sizeof(float));
    gpusim::KernelModel kernel_model;

    Volume slab(geometry.nx, geometry.ny, 2 * slab_h, VolumeLayout::kZMajor,
                /*zero_fill=*/true);

    // Projection index owned by this rank in AllGather round t
    // (Section 4.1.1: each column handles a contiguous block of Np/C).
    const std::size_t column_base =
        static_cast<std::size_t>(col) * per_rank * static_cast<std::size_t>(rows);
    auto owned_index = [&](std::size_t t) {
      return column_base + t * static_cast<std::size_t>(rows) +
             static_cast<std::size_t>(row);
    };

    struct Filtered {
      std::size_t index;
      Image2D image;
    };
    CircularBuffer<Filtered> q_filtered(options.queue_capacity);
    CircularBuffer<std::vector<Filtered>> q_gathered(options.queue_capacity);

    // Worker-thread errors are carried back to the rank body and rethrown
    // there, so run_world's abort protocol unblocks the other ranks. A
    // refused queue push is itself a pipeline error: it means the consumer
    // side shut down early, and silently dropping the item would make this
    // rank emit a wrong (partially accumulated) volume.
    std::exception_ptr filter_error;
    std::exception_ptr bp_error;
    std::exception_ptr main_error;

    // ---- Filtering-thread: load from PFS + filter (Fig. 4a left) ----------
    StageTimer filter_timer;
    std::thread filtering_thread([&] {
      try {
        for (std::size_t t = 0; t < per_rank; ++t) {
          const std::size_t s = owned_index(t);
          Image2D img(geometry.nu, geometry.nv, /*zero_fill=*/false);
          filter_timer.time("load", [&] {
            fs.read_object(object_name(options.input_prefix, s), img.data(),
                           img.bytes());
          });
          filter_timer.time("filter", [&] { engine.apply(img); });
          if (!q_filtered.push(Filtered{s, std::move(img)})) {
            throw Error(
                "iFDK pipeline: filtered-projection queue closed before all "
                "rounds were delivered");
          }
        }
      } catch (...) {
        filter_error = std::current_exception();
      }
      q_filtered.close();
    });

    // ---- Bp-thread: H2D + back-projection (Fig. 4a right) -----------------
    StageTimer bp_timer;
    std::thread bp_thread([&] {
      while (auto batch = q_gathered.pop()) {
        if (bp_error) continue;  // drain remaining rounds after a failure
        try {
        // The kernels execute on the CPU against host memory, so transfers
        // are accounting-only: charge the PCIe cost the modeled V100 would
        // pay to stage this round (the allocation above reserved the space).
        for (const Filtered& f : *batch) {
          device.charge_h2d(f.image.bytes());
        }
        std::vector<Image2D> images;
        std::vector<geo::Mat34> mats;
        images.reserve(batch->size());
        mats.reserve(batch->size());
        for (Filtered& f : *batch) {
          mats.push_back(matrices[f.index]);
          images.push_back(std::move(f.image));
        }
        bp_timer.time("backprojection", [&] {
          backprojector.accumulate(slab, images, mats);
        });
        // Modeled V100 cost of the same launch on this rank's sub-problem.
        const Problem sub{{geometry.nu, geometry.nv, images.size()},
                          {geometry.nx, geometry.ny, 2 * slab_h}};
        const double v100 =
            kernel_model.kernel_seconds(bp::KernelVariant::kL1Tran, sub);
        device.charge_kernel(v100);
        } catch (...) {
          bp_error = std::current_exception();
          // Stop accepting rounds so the main thread notices promptly
          // instead of filling the queue against a dead consumer.
          q_gathered.close();
        }
      }
    });

    // ---- Main-thread: AllGather per round (Fig. 4a middle) ----------------
    // Collectives throw when another rank aborts the world; catching here
    // (instead of unwinding past the worker threads) guarantees both workers
    // are always joined and this rank exits cleanly.
    StageTimer main_timer;
    std::vector<float> gather_recv(static_cast<std::size_t>(rows) * pixels);
    try {
      for (std::size_t t = 0; t < per_rank; ++t) {
        auto mine = q_filtered.pop();
        if (!mine.has_value()) break;  // filtering thread failed; see below
        IFDK_ASSERT(mine->index == owned_index(t));
        main_timer.time("allgather", [&] {
          if (options.use_ring_allgather) {
            col_comm.allgather_ring(mine->image.data(), pixels * sizeof(float),
                                    gather_recv.data());
          } else {
            col_comm.allgather(mine->image.data(), pixels * sizeof(float),
                               gather_recv.data());
          }
        });
        std::vector<Filtered> round;
        round.reserve(static_cast<std::size_t>(rows));
        for (int r = 0; r < rows; ++r) {
          Image2D img(geometry.nu, geometry.nv, /*zero_fill=*/false);
          const float* src =
              gather_recv.data() + static_cast<std::size_t>(r) * pixels;
          std::copy(src, src + pixels, img.data());
          round.push_back(Filtered{
              column_base + t * static_cast<std::size_t>(rows) +
                  static_cast<std::size_t>(r),
              std::move(img)});
        }
        if (!q_gathered.push(std::move(round))) {
          throw Error(
              "iFDK pipeline: gathered-projection queue closed before all "
              "rounds were delivered");
        }
      }
    } catch (...) {
      main_error = std::current_exception();
    }
    q_gathered.close();
    // Unblock a filtering thread stalled on a full queue after an early
    // exit; harmless on the success path (the producer has already closed).
    q_filtered.close();

    filtering_thread.join();
    bp_thread.join();
    // Rethrow the root cause first: a bp failure closes q_gathered, which
    // makes the main push and then the filter push fail as secondary errors;
    // a remote-rank abort surfaces in the main thread's collective.
    if (bp_error) std::rethrow_exception(bp_error);
    if (main_error) std::rethrow_exception(main_error);
    if (filter_error) std::rethrow_exception(filter_error);
    const double compute_span = rank_timer.seconds();

    // ---- Post: D2H, row Reduce, store (Fig. 4b) ----------------------------
    main_timer.time("d2h", [&] { device.charge_d2h(slab.bytes()); });

    Volume reduced(geometry.nx, geometry.ny, 2 * slab_h, VolumeLayout::kZMajor,
                   /*zero_fill=*/col == 0);
    main_timer.time("reduce", [&] {
      row_comm.reduce(slab.data(), col == 0 ? reduced.data() : nullptr,
                      slab.voxels(), mpi::ReduceOp::kSum, /*root=*/0);
    });

    if (col == 0) {
      // Store the slab pair as global slices: local t < slab_h is global
      // slice row*h + t; local slab_h + t is global Nz - (row+1)*h + t.
      main_timer.time("store", [&] {
        std::vector<float> slice(geometry.nx * geometry.ny);
        for (std::size_t local_k = 0; local_k < 2 * slab_h; ++local_k) {
          const std::size_t global_k =
              local_k < slab_h
                  ? static_cast<std::size_t>(row) * slab_h + local_k
                  : geometry.nz -
                        (static_cast<std::size_t>(row) + 1) * slab_h +
                        (local_k - slab_h);
          for (std::size_t j = 0; j < geometry.ny; ++j) {
            for (std::size_t i = 0; i < geometry.nx; ++i) {
              slice[j * geometry.nx + i] =
                  reduced.data()[(i * geometry.ny + j) * 2 * slab_h + local_k];
            }
          }
          fs.write_object(object_name(options.output_prefix, global_k),
                          slice.data(), slice.size() * sizeof(float));
        }
      });
    }
    world.barrier();

    stats.wall.merge(filter_timer);
    stats.wall.merge(bp_timer);
    stats.wall.merge(main_timer);
    stats.wall.add("compute", compute_span);
    stats.v_h2d = device.virtual_h2d_seconds();
    stats.v_kernel = device.virtual_kernel_seconds();
    stats.v_d2h = device.virtual_d2h_seconds();
    stats.total = rank_timer.seconds();
  });

  // Merge: report the per-stage maximum across ranks (the critical path).
  IfdkStats out;
  out.grid = {rows, cols};
  for (const RankStats& rs : rank_stats) {
    out.wall.max_merge(rs.wall);
    out.device_model.set_max("v_h2d", rs.v_h2d);
    out.device_model.set_max("v_kernel", rs.v_kernel);
    out.device_model.set_max("v_d2h", rs.v_d2h);
    out.wall_total = std::max(out.wall_total, rs.total);
  }
  return out;
}

}  // namespace ifdk
