#include "ifdk/framework.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "backproj/backprojector.h"
#include "common/circular_buffer.h"
#include "common/error.h"
#include "gpusim/kernel_model.h"
#include "minimpi/minimpi.h"
#include "pfs/async_writer.h"

namespace ifdk {

namespace {

std::string object_name(const std::string& prefix, std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06zu", index);
  return prefix + buf;
}

/// Secondary pipeline error: a stage observed its queue closed because the
/// thread at the other end died first. Typed (rather than matched by
/// message text) so the rethrow logic can reliably prefer the root cause.
class QueueClosedError : public Error {
 public:
  explicit QueueClosedError(const std::string& what) : Error(what) {}
};

/// Severity class for root-cause selection: real failures beat world-abort
/// symptoms (another rank owns the root cause — run_world() deprioritizes
/// these globally), which beat queue-shutdown symptoms (a sibling thread of
/// this rank owns it). A rank whose errors are all symptoms must rethrow
/// the *abort* one, so the faulty rank's real error wins at run_world no
/// matter which rank's body exits first.
int error_class(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const QueueClosedError&) {
    return 2;
  } catch (const mpi::WorldAbortedError&) {
    return 1;
  } catch (...) {
    return 0;
  }
}

/// Picks the most root-cause-like error (lowest class, earliest wins ties);
/// null when none set.
std::exception_ptr pick_root_cause(std::span<const std::exception_ptr> errors) {
  std::exception_ptr best;
  int best_class = 3;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    const int c = error_class(e);
    if (c < best_class) {
      best_class = c;
      best = e;
    }
  }
  return best;
}

/// Per-rank result handed back to the coordinator after run_world.
struct RankStats {
  StageTimer wall;
  /// Busy/wall per pipeline thread (see IfdkStats::overlap_efficiency).
  StageTimer efficiency;
  double v_h2d = 0;
  double v_kernel = 0;
  double v_d2h = 0;
  double total = 0;
};

mpi::ReduceAlgo to_mpi_algo(ReduceFanIn fan_in) {
  return fan_in == ReduceFanIn::kLinear ? mpi::ReduceAlgo::kLinear
                                        : mpi::ReduceAlgo::kTree;
}

/// Asserts one epoch's collective-tag consumption against the plan's budget
/// (the "budget >= actual traffic" invariant). Reservations are sequential,
/// so at most one deterministic wrap skip (< window) can land inside an
/// epoch, and only when the budget does not fit before the window top —
/// the check is exact in both cases.
void assert_tag_budget(std::uint64_t before, std::uint64_t after,
                       std::uint64_t budget, const char* what) {
  const std::uint64_t window = mpi::Comm::kCollectiveTagWindow;
  const std::uint64_t offset = before % window;
  const std::uint64_t allowed =
      offset + budget <= window ? budget : budget + (window - offset);
  IFDK_ASSERT_MSG(after - before <= allowed, what);
}

/// Extracts slice `local_k` of a z-major slab pair into a slice-major
/// destination. Shared by every pipeline path: the bitwise-equivalence
/// guarantees depend on the permutation being identical.
void extract_zmajor_slice(const float* zmajor, std::size_t nx, std::size_t ny,
                          std::size_t pair_depth, std::size_t local_k,
                          float* dst) {
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      dst[j * nx + i] = zmajor[(i * ny + j) * pair_depth + local_k];
    }
  }
}

/// The single overlapped execution core (defined below, after its per-rank
/// stats type): run_streaming validates and forwards to it, and
/// run_distributed's overlapped path wraps it with a one-volume stream.
StreamingStats stream_core(const geo::CbctGeometry& geometry,
                           pfs::ParallelFileSystem& fs,
                           const IfdkOptions& options,
                           std::span<const JobSpec> volumes);

}  // namespace

void stage_projections(pfs::ParallelFileSystem& fs,
                       const std::string& input_prefix,
                       std::span<const Image2D> projections) {
  for (std::size_t s = 0; s < projections.size(); ++s) {
    fs.write_object(object_name(input_prefix, s), projections[s].data(),
                    projections[s].bytes());
  }
}

Volume load_volume(const pfs::ParallelFileSystem& fs,
                   const std::string& output_prefix, const VolDims& dims) {
  Volume vol(dims.nx, dims.ny, dims.nz, VolumeLayout::kXMajor,
             /*zero_fill=*/false);
  for (std::size_t k = 0; k < dims.nz; ++k) {
    fs.read_object(object_name(output_prefix, k), vol.slice(k),
                   dims.nx * dims.ny * sizeof(float));
  }
  return vol;
}

IfdkStats run_distributed(const geo::CbctGeometry& geometry,
                          pfs::ParallelFileSystem& fs,
                          const IfdkOptions& options) {
  if (options.overlap) {
    // The documented one-volume wrapper over the streaming execution core:
    // a JobSpec carrying the options' I/O prefixes rides the exact
    // plan/epoch machinery of run_streaming, with the dedicated
    // Filtering-thread (not the fused worker) so the classic stats contract
    // — filter/main/bp/store thread efficiencies, per-stage wall seconds,
    // the modeled-V100 ledger — still holds. The core's per-volume store
    // isolation is converted back to this API's throwing contract: the one
    // volume's failure IS the run's failure.
    IfdkOptions stream_options = options;
    stream_options.fuse_filter_gather = false;
    const JobSpec job{options.input_prefix, options.output_prefix, {}};
    const StreamingStats streamed = stream_core(
        geometry, fs, stream_options, std::span<const JobSpec>(&job, 1));
    if (!streamed.volume_errors[0].empty()) {
      throw IoError(streamed.volume_errors[0]);
    }
    IfdkStats out;
    out.grid = streamed.grid;
    out.overlapped = true;
    out.wall = streamed.wall;
    out.device_model = streamed.device_model;
    out.overlap_efficiency = streamed.overlap_efficiency;
    out.wall_total = streamed.wall_total;
    return out;
  }

  // ---- Blocking reference path (overlap = false) ---------------------------
  // Self-contained Fig. 4a pipeline with blocking collectives and a serial
  // slice store: the bitwise reference the overlapped core is tested
  // against, and the only consumer of the blocking allgather/reduce
  // primitives. The plan is the single source of truth for the
  // decomposition: grid, slab extents, projection shards, and the memory
  // check.
  const DecompositionPlan plan = DecompositionPlan::make(geometry, options);
  plan.check_device_fit(options.device);
  const int rows = plan.grid.rows;
  const int cols = plan.grid.columns;
  const std::size_t slab_h = plan.slab_h;
  const std::size_t per_rank = plan.rounds;
  const std::size_t pixels = plan.pixels;

  std::vector<RankStats> rank_stats(static_cast<std::size_t>(options.ranks));

  mpi::run_world(options.ranks, [&](mpi::Comm& world) {
    const int rank = world.rank();
    const int col = plan.col_of(rank);
    const int row = plan.row_of(rank);
    RankStats& stats = rank_stats[static_cast<std::size_t>(rank)];
    Timer rank_timer;

    // Fig. 3b: AllGather across the column, Reduce across the row.
    mpi::Comm col_comm = world.split(col, row);
    mpi::Comm row_comm = world.split(row, col);

    // Per-rank engines. The filter engine is what the Filtering-thread runs
    // on "CPUs"; the back-projector is the Bp-thread's "GPU" kernel.
    filter::FilterEngine engine(geometry, options.filter);

    bp::BpConfig bp_cfg;
    bp_cfg.batch = options.bp_batch;
    bp_cfg.k_begin = static_cast<std::size_t>(row) * slab_h;
    bp_cfg.k_half = slab_h;
    bp::Backprojector backprojector(geometry, bp_cfg);
    const auto matrices = geo::make_all_projection_matrices(geometry);

    // Device memory: the slab pair plus a batch of projections must fit
    // (the plan's Section 4.1.5 check, re-enforced by the allocator).
    gpusim::Device device(options.device);
    gpusim::DeviceBuffer vol_buf = device.allocate(plan.slab_bytes());
    gpusim::DeviceBuffer batch_buf = device.allocate(
        static_cast<std::uint64_t>(options.bp_batch) * pixels * sizeof(float));
    gpusim::KernelModel kernel_model;

    Volume slab(geometry.nx, geometry.ny, 2 * slab_h, VolumeLayout::kZMajor,
                /*zero_fill=*/true);

    auto owned_index = [&](std::size_t t) {
      return plan.owned_projection(row, col, t);
    };

    struct Filtered {
      std::size_t index;
      Image2D image;
    };
    CircularBuffer<Filtered> q_filtered(options.queue_capacity);
    CircularBuffer<std::vector<Filtered>> q_gathered(options.queue_capacity);

    // Worker-thread errors are carried back to the rank body and rethrown
    // there, so run_world's abort protocol unblocks the other ranks. A
    // refused queue push is itself a pipeline error: it means the consumer
    // side shut down early, and silently dropping the item would make this
    // rank emit a wrong (partially accumulated) volume.
    std::exception_ptr filter_error;
    std::exception_ptr bp_error;
    std::exception_ptr main_error;

    // ---- Filtering-thread: load from PFS + filter (Fig. 4a left) ----------
    StageTimer filter_timer;
    std::thread filtering_thread([&] {
      try {
        for (std::size_t t = 0; t < per_rank; ++t) {
          const std::size_t s = owned_index(t);
          Image2D img(geometry.nu, geometry.nv, /*zero_fill=*/false);
          filter_timer.time("load", [&] {
            fs.read_object(object_name(options.input_prefix, s), img.data(),
                           img.bytes());
          });
          filter_timer.time("filter", [&] { engine.apply(img); });
          if (!q_filtered.push(Filtered{s, std::move(img)})) {
            throw QueueClosedError(
                "iFDK pipeline: filtered-projection queue closed before all "
                "rounds were delivered");
          }
        }
      } catch (...) {
        filter_error = std::current_exception();
      }
      q_filtered.close();
    });

    // ---- Bp-thread: H2D + back-projection (Fig. 4a right) -----------------
    StageTimer bp_timer;
    std::thread bp_thread([&] {
      while (auto batch = q_gathered.pop()) {
        if (bp_error) continue;  // drain remaining rounds after a failure
        try {
        // The kernels execute on the CPU against host memory, so transfers
        // are accounting-only: charge the PCIe cost the modeled V100 would
        // pay to stage this round (the allocation above reserved the space).
        for (const Filtered& f : *batch) {
          device.charge_h2d(f.image.bytes());
        }
        std::vector<Image2D> images;
        std::vector<geo::Mat34> mats;
        images.reserve(batch->size());
        mats.reserve(batch->size());
        for (Filtered& f : *batch) {
          mats.push_back(matrices[f.index]);
          images.push_back(std::move(f.image));
        }
        bp_timer.time("backprojection", [&] {
          backprojector.accumulate(slab, images, mats);
        });
        // Modeled V100 cost of the same launch on this rank's sub-problem.
        const Problem sub{{geometry.nu, geometry.nv, images.size()},
                          {geometry.nx, geometry.ny, 2 * slab_h}};
        const double v100 =
            kernel_model.kernel_seconds(bp::KernelVariant::kL1Tran, sub);
        device.charge_kernel(v100);
        } catch (...) {
          bp_error = std::current_exception();
          // Stop accepting rounds so the main thread notices promptly
          // instead of filling the queue against a dead consumer.
          q_gathered.close();
        }
      }
    });

    // ---- Main-thread: AllGather per round (Fig. 4a middle) ----------------
    // Collectives throw when another rank aborts the world; catching here
    // (instead of unwinding past the worker threads) guarantees both workers
    // are always joined and this rank exits cleanly.
    StageTimer main_timer;
    std::vector<float> gather_recv(static_cast<std::size_t>(rows) * pixels);
    // Repackages the rank-ordered gather buffer of round `t` into per-
    // projection images and hands them to the Bp-thread (blocks on queue
    // back-pressure — exactly the Fig. 4a coupling of gather and bp rates).
    auto deliver_round = [&](std::size_t t, const std::vector<float>& recv) {
      std::vector<Filtered> round;
      round.reserve(static_cast<std::size_t>(rows));
      for (int r = 0; r < rows; ++r) {
        Image2D img(geometry.nu, geometry.nv, /*zero_fill=*/false);
        const float* src = recv.data() + static_cast<std::size_t>(r) * pixels;
        std::copy(src, src + pixels, img.data());
        round.push_back(Filtered{plan.owned_projection(r, col, t),
                                 std::move(img)});
      }
      if (!q_gathered.push(std::move(round))) {
        throw QueueClosedError(
            "iFDK pipeline: gathered-projection queue closed before all "
            "rounds were delivered");
      }
    };
    try {
      for (std::size_t t = 0; t < per_rank; ++t) {
        auto mine = q_filtered.pop();
        if (!mine.has_value()) {
          // Filtering thread failed; its error is the root cause (rethrown
          // below), but the gather stream must not end silently short.
          throw QueueClosedError(
              "iFDK pipeline: filtered-projection queue closed before all "
              "rounds were gathered");
        }
        IFDK_ASSERT(mine->index == owned_index(t));
        main_timer.time("allgather", [&] {
          if (options.use_ring_allgather) {
            col_comm.allgather_ring(mine->image.data(),
                                    pixels * sizeof(float),
                                    gather_recv.data());
          } else {
            col_comm.allgather(mine->image.data(), pixels * sizeof(float),
                               gather_recv.data());
          }
        });
        deliver_round(t, gather_recv);
      }
    } catch (...) {
      main_error = std::current_exception();
    }
    q_gathered.close();
    // Unblock a filtering thread stalled on a full queue after an early
    // exit; harmless on the success path (the producer has already closed).
    q_filtered.close();

    filtering_thread.join();
    bp_thread.join();
    // Rethrow the root cause, not a symptom: when one thread dies its queue
    // closes, and the threads at the other end fail with a secondary
    // QueueClosedError. A bp failure makes the main push fail; a filter
    // failure ends the main thread's pop early; a remote-rank abort surfaces
    // in the main thread's collective.
    const std::exception_ptr errors[] = {bp_error, main_error, filter_error};
    if (const std::exception_ptr first = pick_root_cause(errors)) {
      std::rethrow_exception(first);
    }
    const double compute_span = rank_timer.seconds();

    // ---- Post: D2H, row Reduce, store (Fig. 4b) ----------------------------
    main_timer.time("d2h", [&] { device.charge_d2h(slab.bytes()); });

    auto global_slice = [&](std::size_t local_k) {
      return plan.global_slice(row, local_k);
    };
    const std::size_t slice_px = plan.slice_px;
    auto extract_slice = [&](const float* zmajor, std::size_t local_k,
                             float* dst) {
      extract_zmajor_slice(zmajor, geometry.nx, geometry.ny, 2 * slab_h,
                           local_k, dst);
    };
    Volume reduced(geometry.nx, geometry.ny, 2 * slab_h,
                   VolumeLayout::kZMajor, /*zero_fill=*/col == 0);
    main_timer.time("reduce", [&] {
      row_comm.reduce(slab.data(), col == 0 ? reduced.data() : nullptr,
                      slab.voxels(), mpi::ReduceOp::kSum, /*root=*/0);
    });

    if (col == 0) {
      // Blocking reference store: extract and write slices serially.
      main_timer.time("store", [&] {
        std::vector<float> slice(slice_px);
        for (std::size_t local_k = 0; local_k < 2 * slab_h; ++local_k) {
          extract_slice(reduced.data(), local_k, slice.data());
          fs.write_object(
              object_name(options.output_prefix, global_slice(local_k)),
              slice.data(), slice.size() * sizeof(float));
        }
      });
    }
    world.barrier();

    stats.wall.merge(filter_timer);
    stats.wall.merge(bp_timer);
    stats.wall.merge(main_timer);
    stats.wall.add("compute", compute_span);
    stats.v_h2d = device.virtual_h2d_seconds();
    stats.v_kernel = device.virtual_kernel_seconds();
    stats.v_d2h = device.virtual_d2h_seconds();
    stats.total = rank_timer.seconds();

    // Busy/wall per pipeline thread: how much of this rank's wall clock each
    // stage thread spent doing useful work. bp_thread near 1 means the
    // pipeline reached the paper's back-projection-bound regime.
    if (stats.total > 0) {
      stats.efficiency.add(
          "filter_thread",
          (filter_timer.get("load") + filter_timer.get("filter")) /
              stats.total);
      stats.efficiency.add(
          "main_thread",
          (main_timer.get("allgather") + main_timer.get("d2h") +
           main_timer.get("transpose") + main_timer.get("reduce") +
           main_timer.get("store")) /
              stats.total);
      stats.efficiency.add("bp_thread",
                           bp_timer.get("backprojection") / stats.total);
    }
  });

  // Merge: report the per-stage maximum across ranks (the critical path).
  IfdkStats out;
  out.grid = {rows, cols};
  out.overlapped = false;
  for (const RankStats& rs : rank_stats) {
    out.wall.max_merge(rs.wall);
    out.overlap_efficiency.max_merge(rs.efficiency);
    out.device_model.set_max("v_h2d", rs.v_h2d);
    out.device_model.set_max("v_kernel", rs.v_kernel);
    out.device_model.set_max("v_d2h", rs.v_d2h);
    out.wall_total = std::max(out.wall_total, rs.total);
  }
  return out;
}

namespace {

/// Per-rank result of a streaming run.
struct StreamRankStats {
  StageTimer wall;
  StageTimer efficiency;
  double total = 0;
  /// Stream start to the Bp-thread's last accumulation: the
  /// load+filter+gather+bp span ("compute"), written by the Bp-thread and
  /// read after its join.
  double compute = 0;
  double v_h2d = 0;    ///< modeled PCIe H2D seconds (device ledger)
  double v_kernel = 0; ///< modeled V100 kernel seconds
  double v_d2h = 0;    ///< modeled PCIe D2H seconds
  std::vector<std::string> volume_errors;  ///< row roots only; "" = stored
};

/// The single overlapped execution core (Fig. 4a/4b with streaming epochs):
/// run_streaming validates the jobs and forwards here, and run_distributed's
/// overlapped path wraps it with a one-volume stream. Callers have already
/// validated `volumes`; this function builds the per-volume plans and runs
/// the world.
StreamingStats stream_core(const geo::CbctGeometry& geometry,
                           pfs::ParallelFileSystem& fs,
                           const IfdkOptions& options,
                           std::span<const JobSpec> volumes) {
  const std::size_t n_volumes = volumes.size();
  // One DecompositionPlan per volume: the volume's own geometry when set,
  // the run geometry otherwise. Validation errors name the volume. With
  // more than one volume the bp/reduce double buffer keeps TWO slab pairs
  // resident, which the plan's memory-aware row selection accounts for.
  const std::size_t resident = n_volumes > 1 ? 2 : 1;
  std::vector<DecompositionPlan> plans;
  plans.reserve(n_volumes);
  for (std::size_t v = 0; v < n_volumes; ++v) {
    plans.push_back(DecompositionPlan::make(
        volumes[v].geometry.value_or(geometry), options,
        static_cast<int>(v), resident));
  }

  StreamingStats out;
  out.volumes = static_cast<int>(n_volumes);
  out.fused_filter_gather = options.fuse_filter_gather;
  out.volume_errors.assign(n_volumes, "");
  out.plans = plans;
  // The ONLY place StreamingStats::grid is assigned: always the first
  // executed plan's grid, so the summary field can never drift from `plans`
  // (a zero-volume stream still validates the run configuration and reports
  // the grid it would have used).
  out.grid = out.plans.empty()
                 ? DecompositionPlan::make(geometry, options).grid
                 : out.plans.front().grid;
  if (n_volumes == 0) {
    return out;
  }

  // Stream-level memory constraint: the resident slab pairs span *adjacent*
  // volumes of possibly different geometries, so the worst case is the
  // largest slab in the stream, twice, plus the largest batch.
  std::uint64_t max_slab_bytes = 0;
  std::uint64_t max_batch_bytes = 0;
  std::size_t max_gather_floats = 0;  // largest rows * pixels in the stream
  for (const DecompositionPlan& plan : plans) {
    max_slab_bytes = std::max(max_slab_bytes, plan.slab_bytes());
    max_batch_bytes = std::max(
        max_batch_bytes, static_cast<std::uint64_t>(plan.bp_batch) *
                             plan.pixels * sizeof(float));
    max_gather_floats =
        std::max(max_gather_floats,
                 static_cast<std::size_t>(plan.grid.rows) * plan.pixels);
  }
  if (resident * max_slab_bytes + max_batch_bytes >
      options.device.memory_bytes) {
    throw DeviceOutOfMemory(
        "streaming needs " +
        std::to_string(resident * max_slab_bytes + max_batch_bytes) +
        " B of device memory (" + std::to_string(resident) +
        " resident slab pair(s) of up to " + std::to_string(max_slab_bytes) +
        " B + a batch of " + std::to_string(max_batch_bytes) +
        " B) but the device has " +
        std::to_string(options.device.memory_bytes) + " B");
  }

  const mpi::ReduceAlgo algo = to_mpi_algo(options.reduce_fan_in);
  std::vector<StreamRankStats> rank_stats(
      static_cast<std::size_t>(options.ranks));

  mpi::run_world(options.ranks, [&](mpi::Comm& world) {
    const int rank = world.rank();
    StreamRankStats& stats = rank_stats[static_cast<std::size_t>(rank)];
    stats.volume_errors.assign(n_volumes, "");
    Timer rank_timer;

    // ---- Per-epoch communicators (the grid re-split) ----------------------
    // A split is a collective on the parent communicator, so every rank must
    // perform the same sequence — build the per-volume comms up front, one
    // col/row pair per distinct row count (with `ranks` fixed, R determines
    // the grid). Consecutive volumes with the same grid share a pair, which
    // is what lets their collective epochs stay in flight together; a
    // geometry whose plan resolves a different R gets its own pair, and the
    // stream "re-splits" by switching pairs at the volume boundary.
    struct EpochComms {
      mpi::Comm col;
      mpi::Comm row;
    };
    std::map<int, EpochComms> comms_by_rows;
    std::vector<EpochComms*> epoch_comms(n_volumes, nullptr);
    for (std::size_t v = 0; v < n_volumes; ++v) {
      const int rows_v = plans[v].grid.rows;
      auto it = comms_by_rows.find(rows_v);
      if (it == comms_by_rows.end()) {
        mpi::Comm col_comm = world.split(rank / rows_v, rank % rows_v);
        mpi::Comm row_comm = world.split(rank % rows_v, rank / rows_v);
        it = comms_by_rows
                 .emplace(rows_v,
                          EpochComms{std::move(col_comm), std::move(row_comm)})
                 .first;
      }
      epoch_comms[v] = &it->second;
    }

    // Streaming keeps TWO slab pairs resident per device: the one the
    // Bp-thread is accumulating (volume v+1) and the one draining through
    // the row reduce (volume v) — both sized for the stream's largest slab.
    gpusim::Device device(options.device);
    gpusim::DeviceBuffer bp_slab_buf = device.allocate(max_slab_bytes);
    gpusim::DeviceBuffer reduce_slab_buf =
        device.allocate(n_volumes > 1 ? max_slab_bytes : 0);
    gpusim::DeviceBuffer batch_buf = device.allocate(max_batch_bytes);
    gpusim::KernelModel kernel_model;

    struct Filtered {
      std::size_t vol;
      std::size_t index;
      Image2D image;
    };
    struct Round {
      std::size_t vol;
      std::vector<Filtered> images;
    };
    struct SlabPair {
      std::size_t vol;
      Volume slab;
    };
    CircularBuffer<Filtered> q_filtered(options.queue_capacity);
    CircularBuffer<Round> q_gathered(options.queue_capacity);
    // Depth-1 handoff: the Bp-thread may run at most one volume ahead of
    // the reduce (bounding resident slabs to the double buffer above).
    CircularBuffer<SlabPair> q_slabs(1);

    std::exception_ptr filter_error;
    std::exception_ptr bp_error;
    std::exception_ptr reduce_error;
    std::exception_ptr main_error;

    // ---- Filtering-thread (only when not fused onto the worker) -----------
    StageTimer filter_timer;
    std::thread filtering_thread;
    if (!options.fuse_filter_gather) {
      filtering_thread = std::thread([&] {
        try {
          std::optional<filter::FilterEngine> engine;
          const geo::CbctGeometry* engine_geom = nullptr;
          for (std::size_t v = 0; v < n_volumes; ++v) {
            const DecompositionPlan& plan = plans[v];
            if (engine_geom == nullptr || !(*engine_geom == plan.geometry)) {
              engine.emplace(plan.geometry, options.filter);
              engine_geom = &plan.geometry;
            }
            const int row = plan.row_of(rank);
            const int col = plan.col_of(rank);
            for (std::size_t t = 0; t < plan.rounds; ++t) {
              const std::size_t s = plan.owned_projection(row, col, t);
              Image2D img(plan.geometry.nu, plan.geometry.nv,
                          /*zero_fill=*/false);
              filter_timer.time("load", [&] {
                fs.read_object(object_name(volumes[v].input_prefix, s),
                               img.data(), img.bytes());
              });
              filter_timer.time("filter", [&] { engine->apply(img); });
              if (!q_filtered.push(Filtered{v, s, std::move(img)})) {
                throw QueueClosedError(
                    "iFDK streaming: filtered-projection queue closed before "
                    "all volumes were delivered");
              }
            }
          }
        } catch (...) {
          filter_error = std::current_exception();
        }
        q_filtered.close();
      });
    }

    // ---- Bp-thread: accumulate rounds; hand each finished slab over -------
    StageTimer bp_timer;
    std::thread bp_thread([&] {
      std::optional<bp::Backprojector> backprojector;
      std::vector<geo::Mat34> matrices;
      const geo::CbctGeometry* bp_geom = nullptr;
      Volume slab;
      // (Re)builds the per-volume kernel state: new projection matrices on
      // a geometry change, a new Backprojector when the geometry or this
      // rank's slab assignment (row, slab_h) changed, and a fresh
      // zero-filled slab pair in the volume's own dimensions.
      auto prepare_volume = [&](std::size_t v) {
        const DecompositionPlan& plan = plans[v];
        const bool geom_changed =
            bp_geom == nullptr || !(*bp_geom == plan.geometry);
        if (geom_changed) {
          matrices = geo::make_all_projection_matrices(plan.geometry);
        }
        if (geom_changed || v == 0 || !plans[v - 1].same_grid(plan)) {
          bp::BpConfig bp_cfg;
          bp_cfg.batch = options.bp_batch;
          bp_cfg.k_begin =
              static_cast<std::size_t>(plan.row_of(rank)) * plan.slab_h;
          bp_cfg.k_half = plan.slab_h;
          backprojector.emplace(plan.geometry, bp_cfg);
        }
        bp_geom = &plan.geometry;
        slab = Volume(plan.geometry.nx, plan.geometry.ny, 2 * plan.slab_h,
                      VolumeLayout::kZMajor, /*zero_fill=*/true);
      };
      std::size_t current_vol = 0;
      std::size_t rounds_done = 0;
      bool prepared = false;
      while (auto round = q_gathered.pop()) {
        if (bp_error) continue;  // drain remaining rounds after a failure
        try {
          IFDK_ASSERT(round->vol == current_vol);
          const DecompositionPlan& plan = plans[current_vol];
          if (!prepared) {
            prepare_volume(current_vol);
            prepared = true;
          }
          for (const Filtered& f : round->images) {
            device.charge_h2d(f.image.bytes());
          }
          std::vector<Image2D> images;
          std::vector<geo::Mat34> mats;
          images.reserve(round->images.size());
          mats.reserve(round->images.size());
          for (Filtered& f : round->images) {
            mats.push_back(matrices[f.index]);
            images.push_back(std::move(f.image));
          }
          bp_timer.time("backprojection", [&] {
            backprojector->accumulate(slab, images, mats);
          });
          const Problem sub{
              {plan.geometry.nu, plan.geometry.nv, images.size()},
              {plan.geometry.nx, plan.geometry.ny, 2 * plan.slab_h}};
          device.charge_kernel(
              kernel_model.kernel_seconds(bp::KernelVariant::kL1Tran, sub));
          if (++rounds_done == plan.rounds) {
            bp_timer.time("d2h", [&] { device.charge_d2h(slab.bytes()); });
            if (!q_slabs.push(SlabPair{current_vol, std::move(slab)})) {
              throw QueueClosedError(
                  "iFDK streaming: slab queue closed before all volumes were "
                  "back-projected");
            }
            rounds_done = 0;
            ++current_vol;
            if (current_vol < n_volumes) {
              prepare_volume(current_vol);
            }
          }
        } catch (...) {
          bp_error = std::current_exception();
          q_gathered.close();
          q_slabs.close();
        }
      }
      // The load+filter+gather+bp span, same meaning as the classic
      // pipeline's "compute" stage (the join below publishes the write).
      stats.compute = rank_timer.seconds();
      if (!bp_error) q_slabs.close();
    });

    // ---- Reduce-thread: transpose + row ireduce + store, volume by volume --
    // Runs the per-volume collective epochs while the worker threads above
    // are already filtering/gathering/back-projecting the NEXT volumes.
    StageTimer reduce_timer;
    double store_busy = 0;
    std::thread reduce_thread([&] {
      try {
        // One multiplexed writer per rank that roots ANY volume's row; which
        // rank that is can change per volume when the grid re-splits.
        bool any_root = false;
        for (std::size_t v = 0; v < n_volumes; ++v) {
          if (plans[v].col_of(rank) == 0) any_root = true;
        }
        std::optional<pfs::AsyncWriter> writer;
        std::vector<pfs::AsyncWriter::StreamId> streams(n_volumes);
        if (any_root) {
          writer.emplace(fs, options.queue_capacity);
          for (std::size_t v = 0; v < n_volumes; ++v) {
            if (plans[v].col_of(rank) == 0) {
              streams[v] = writer->open_stream();
            }
          }
        }
        std::vector<float> partial;
        std::vector<float> reduced;
        for (std::size_t v = 0; v < n_volumes; ++v) {
          const DecompositionPlan& plan = plans[v];
          const int row = plan.row_of(rank);
          const int col = plan.col_of(rank);
          const std::size_t slice_px = plan.slice_px;
          const std::size_t pair_depth = 2 * plan.slab_h;
          mpi::Comm& row_comm = epoch_comms[v]->row;
          auto slab = q_slabs.pop();
          if (!slab.has_value()) {
            throw QueueClosedError(
                "iFDK streaming: slab queue closed before all volumes were "
                "reduced");
          }
          IFDK_ASSERT(slab->vol == v);
          partial.resize(plan.slab_floats());
          reduced.resize(col == 0 ? plan.slab_floats() : 0);
          reduce_timer.time("transpose", [&] {
            for (std::size_t k = 0; k < pair_depth; ++k) {
              extract_zmajor_slice(slab->slab.data(), plan.geometry.nx,
                                   plan.geometry.ny, pair_depth, k,
                                   partial.data() + k * slice_px);
            }
          });
          std::size_t next_slice = 0;
          bool stream_open = true;
          mpi::Comm::SegmentCallback on_segment;
          if (col == 0) {
            on_segment = [&](std::size_t offset, std::size_t length) {
              const std::size_t prefix = offset + length;
              while (next_slice < pair_depth &&
                     (next_slice + 1) * slice_px <= prefix) {
                const float* src = reduced.data() + next_slice * slice_px;
                if (stream_open) {
                  // A poisoned stream (write error on THIS volume) refuses
                  // further slices; volume v fails at finish_stream below
                  // while every other volume keeps flowing.
                  stream_open = writer->enqueue(
                      streams[v],
                      object_name(volumes[v].output_prefix,
                                  plan.global_slice(row, next_slice)),
                      std::vector<float>(src, src + slice_px));
                }
                ++next_slice;
              }
            };
          }
          const std::uint64_t tags_before =
              row_comm.collective_tags_reserved();
          mpi::Comm::CollectiveRequest req = row_comm.ireduce(
              partial.data(), col == 0 ? reduced.data() : nullptr,
              partial.size(), mpi::ReduceOp::kSum, /*root=*/0,
              options.reduce_segment_floats, std::move(on_segment), algo);
          reduce_timer.time("reduce", [&] { req.wait(); });
          assert_tag_budget(tags_before, row_comm.collective_tags_reserved(),
                            plan.reduce_tag_budget(),
                            "row-reduce epoch exceeded the plan's tag budget");
          if (col == 0) {
            try {
              reduce_timer.time("store",
                                [&] { writer->finish_stream(streams[v]); });
            } catch (const std::exception& e) {
              stats.volume_errors[v] = e.what();
            }
          }
        }
        if (writer) {
          writer->finish();  // all stream errors were claimed above
          store_busy = writer->busy_seconds();
        }
      } catch (...) {
        reduce_error = std::current_exception();
        // Unblock a Bp-thread stalled on the slab handoff; the closed queue
        // propagates the shutdown up the pipeline.
        q_slabs.close();
      }
    });

    // ---- Worker (main) thread: filter (fused) + column gather per round ----
    StageTimer main_timer;
    // Both gather buffers are sized for the largest rows x pixels in the
    // stream, so a geometry change never resizes a buffer with an exchange
    // still in flight into its sibling.
    std::vector<float> gather_recv[2];
    gather_recv[0].resize(max_gather_floats);
    gather_recv[1].resize(max_gather_floats);
    // Repackages round `t` of volume `v` from the rank-ordered buffer.
    auto deliver_round = [&](std::size_t v, std::size_t t,
                             const std::vector<float>& recv) {
      const DecompositionPlan& plan = plans[v];
      const int col = plan.col_of(rank);
      std::vector<Filtered> images;
      images.reserve(static_cast<std::size_t>(plan.grid.rows));
      for (int r = 0; r < plan.grid.rows; ++r) {
        Image2D img(plan.geometry.nu, plan.geometry.nv, /*zero_fill=*/false);
        const float* src =
            recv.data() + static_cast<std::size_t>(r) * plan.pixels;
        std::copy(src, src + plan.pixels, img.data());
        images.push_back(
            Filtered{v, plan.owned_projection(r, col, t), std::move(img)});
      }
      if (!q_gathered.push(Round{v, std::move(images)})) {
        throw QueueClosedError(
            "iFDK streaming: gathered-projection queue closed before all "
            "rounds were delivered");
      }
    };
    try {
      if (options.fuse_filter_gather) {
        // Same-thread overlap via irecv: post round g's receives, then
        // load+filter round g+1 while g's blocks are in transit, then wait
        // g's receives and deliver. Tags are per-round user tags — the
        // column communicators are framework-private, so the space is free
        // (and per-comm, so a re-split epoch cannot collide with an earlier
        // grid's in-flight round).
        std::optional<filter::FilterEngine> engine;
        const geo::CbctGeometry* engine_geom = nullptr;
        std::vector<mpi::Comm::Request> reqs[2];
        bool have_pending = false;
        std::size_t pending_v = 0;
        std::size_t pending_t = 0;
        std::size_t pending_buf = 0;
        std::size_t g = 0;  // global round counter across the whole stream
        for (std::size_t v = 0; v < n_volumes; ++v) {
          const DecompositionPlan& plan = plans[v];
          if (engine_geom == nullptr || !(*engine_geom == plan.geometry)) {
            engine.emplace(plan.geometry, options.filter);
            engine_geom = &plan.geometry;
          }
          const int row = plan.row_of(rank);
          const int col = plan.col_of(rank);
          mpi::Comm& col_comm = epoch_comms[v]->col;
          const std::uint64_t tags_before =
              col_comm.collective_tags_reserved();
          for (std::size_t t = 0; t < plan.rounds; ++t, ++g) {
            const std::size_t s = plan.owned_projection(row, col, t);
            Image2D img(plan.geometry.nu, plan.geometry.nv,
                        /*zero_fill=*/false);
            main_timer.time("load", [&] {
              fs.read_object(object_name(volumes[v].input_prefix, s),
                             img.data(), img.bytes());
            });
            main_timer.time("filter", [&] { engine->apply(img); });
            main_timer.time("allgather", [&] {
              const int tag = static_cast<int>(g % (std::size_t{1} << 20));
              std::vector<float>& buf = gather_recv[g % 2];
              std::copy(img.data(), img.data() + plan.pixels,
                        buf.data() +
                            static_cast<std::size_t>(row) * plan.pixels);
              std::vector<mpi::Comm::Request>& rr = reqs[g % 2];
              rr.clear();
              for (int r = 0; r < plan.grid.rows; ++r) {
                if (r == row) continue;
                col_comm.isend(r, tag, img.data(),
                               plan.pixels * sizeof(float))
                    .wait();  // buffered: completion is immediate
                rr.push_back(col_comm.irecv(
                    r, tag,
                    buf.data() + static_cast<std::size_t>(r) * plan.pixels,
                    plan.pixels * sizeof(float)));
              }
            });
            if (have_pending) {
              main_timer.time("allgather", [&] {
                mpi::Comm::wait_all(reqs[pending_buf]);
              });
              deliver_round(pending_v, pending_t, gather_recv[pending_buf]);
            }
            pending_v = v;
            pending_t = t;
            pending_buf = g % 2;
            have_pending = true;
          }
          // The fused exchange runs over user tags: its collective budget
          // is zero, and the plan says so.
          assert_tag_budget(tags_before, col_comm.collective_tags_reserved(),
                            plan.gather_tag_budget(/*fused=*/true),
                            "fused gather epoch reserved collective tags");
        }
        if (have_pending) {
          main_timer.time("allgather",
                          [&] { mpi::Comm::wait_all(reqs[pending_buf]); });
          deliver_round(pending_v, pending_t, gather_recv[pending_buf]);
        }
      } else {
        // Dedicated filtering thread feeds us; double-buffered nonblocking
        // ring gather across the whole round stream, volume boundaries
        // included (round t of volume v+1 is initiated while the last round
        // of volume v is still outstanding — even across a grid re-split,
        // where the two rounds ride different communicators).
        mpi::Comm::CollectiveRequest pending;
        std::size_t pending_v = 0;
        std::size_t pending_t = 0;
        std::size_t pending_buf = 0;
        std::size_t g = 0;
        for (std::size_t v = 0; v < n_volumes; ++v) {
          const DecompositionPlan& plan = plans[v];
          const int row = plan.row_of(rank);
          const int col = plan.col_of(rank);
          mpi::Comm& col_comm = epoch_comms[v]->col;
          const std::uint64_t tags_before =
              col_comm.collective_tags_reserved();
          for (std::size_t t = 0; t < plan.rounds; ++t, ++g) {
            auto mine = q_filtered.pop();
            if (!mine.has_value()) {
              throw QueueClosedError(
                  "iFDK streaming: filtered-projection queue closed before "
                  "all rounds were gathered");
            }
            IFDK_ASSERT(mine->vol == v &&
                        mine->index == plan.owned_projection(row, col, t));
            mpi::Comm::CollectiveRequest req;
            main_timer.time("allgather", [&] {
              req = col_comm.iallgather_ring(mine->image.data(),
                                             plan.pixels * sizeof(float),
                                             gather_recv[g % 2].data());
            });
            if (pending.valid()) {
              main_timer.time("allgather", [&] { pending.wait(); });
              deliver_round(pending_v, pending_t, gather_recv[pending_buf]);
            }
            pending = std::move(req);
            pending_v = v;
            pending_t = t;
            pending_buf = g % 2;
          }
          // All of volume v's rings are initiated (and their tags reserved)
          // by now, even though the last one may still be in flight.
          assert_tag_budget(tags_before, col_comm.collective_tags_reserved(),
                            plan.gather_tag_budget(/*fused=*/false),
                            "column gather epoch exceeded the plan's tag "
                            "budget");
        }
        if (pending.valid()) {
          main_timer.time("allgather", [&] { pending.wait(); });
          deliver_round(pending_v, pending_t, gather_recv[pending_buf]);
        }
      }
    } catch (...) {
      main_error = std::current_exception();
      // Sibling threads of THIS rank may be blocked inside collectives whose
      // remote peers will never progress past our failure; poison the world
      // before joining them so every epoch unwinds instead of hanging. The
      // local root cause still wins the error report (run_world prefers
      // non-abort errors).
      world.abort_world();
    }
    q_gathered.close();
    q_filtered.close();

    if (filtering_thread.joinable()) filtering_thread.join();
    bp_thread.join();
    reduce_thread.join();

    // Rethrow the root cause: real failures > world-abort symptoms >
    // queue-shutdown symptoms (same policy as run_distributed).
    const std::exception_ptr errors[] = {bp_error, reduce_error, main_error,
                                         filter_error};
    if (const std::exception_ptr first = pick_root_cause(errors)) {
      std::rethrow_exception(first);
    }
    world.barrier();

    stats.wall.merge(filter_timer);
    stats.wall.merge(bp_timer);
    stats.wall.merge(main_timer);
    stats.wall.merge(reduce_timer);
    stats.wall.set_max("store", store_busy);
    stats.wall.add("compute", stats.compute);
    stats.v_h2d = device.virtual_h2d_seconds();
    stats.v_kernel = device.virtual_kernel_seconds();
    stats.v_d2h = device.virtual_d2h_seconds();
    stats.total = rank_timer.seconds();
    if (stats.total > 0) {
      stats.efficiency.add(
          "filter_thread",
          (filter_timer.get("load") + filter_timer.get("filter")) /
              stats.total);
      stats.efficiency.add(
          "main_thread",
          (main_timer.get("load") + main_timer.get("filter") +
           main_timer.get("allgather")) /
              stats.total);
      stats.efficiency.add("bp_thread",
                           bp_timer.get("backprojection") / stats.total);
      stats.efficiency.add(
          "reduce_thread",
          (reduce_timer.get("transpose") + reduce_timer.get("reduce") +
           reduce_timer.get("store")) /
              stats.total);
      stats.efficiency.add("store_thread", store_busy / stats.total);
    }
  });

  double wall_total = 0;
  for (const StreamRankStats& rs : rank_stats) {
    out.wall.max_merge(rs.wall);
    out.overlap_efficiency.max_merge(rs.efficiency);
    out.device_model.set_max("v_h2d", rs.v_h2d);
    out.device_model.set_max("v_kernel", rs.v_kernel);
    out.device_model.set_max("v_d2h", rs.v_d2h);
    wall_total = std::max(wall_total, rs.total);
    for (std::size_t v = 0; v < n_volumes; ++v) {
      if (out.volume_errors[v].empty() && !rs.volume_errors[v].empty()) {
        out.volume_errors[v] = rs.volume_errors[v];
      }
    }
  }
  out.wall_total = wall_total;
  out.volumes_per_second =
      wall_total > 0 ? static_cast<double>(n_volumes) / wall_total : 0;
  return out;
}

}  // namespace

StreamingStats run_streaming(const geo::CbctGeometry& geometry,
                             pfs::ParallelFileSystem& fs,
                             const IfdkOptions& options,
                             std::span<const JobSpec> volumes) {
  // The public entry point is validation + forwarding: every JobSpec is
  // checked with its volume index (so a bad frame in a long series names
  // itself), then the shared execution core runs the stream. The service
  // layer calls the same core through this function after admission.
  options.validate();
  for (std::size_t v = 0; v < volumes.size(); ++v) {
    volumes[v].validate(static_cast<int>(v));
  }
  return stream_core(geometry, fs, options, volumes);
}

}  // namespace ifdk
