#include "ifdk/framework.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "backproj/backprojector.h"
#include "common/circular_buffer.h"
#include "common/error.h"
#include "gpusim/kernel_model.h"
#include "minimpi/minimpi.h"
#include "pfs/async_writer.h"

namespace ifdk {

namespace {

std::string object_name(const std::string& prefix, std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06zu", index);
  return prefix + buf;
}

/// Secondary pipeline error: a stage observed its queue closed because the
/// thread at the other end died first. Typed (rather than matched by
/// message text) so the rethrow logic can reliably prefer the root cause.
class QueueClosedError : public Error {
 public:
  explicit QueueClosedError(const std::string& what) : Error(what) {}
};

/// Severity class for root-cause selection: real failures beat world-abort
/// symptoms (another rank owns the root cause — run_world() deprioritizes
/// these globally), which beat queue-shutdown symptoms (a sibling thread of
/// this rank owns it). A rank whose errors are all symptoms must rethrow
/// the *abort* one, so the faulty rank's real error wins at run_world no
/// matter which rank's body exits first.
int error_class(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const QueueClosedError&) {
    return 2;
  } catch (const mpi::WorldAbortedError&) {
    return 1;
  } catch (...) {
    return 0;
  }
}

/// Picks the most root-cause-like error (lowest class, earliest wins ties);
/// null when none set.
std::exception_ptr pick_root_cause(std::span<const std::exception_ptr> errors) {
  std::exception_ptr best;
  int best_class = 3;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    const int c = error_class(e);
    if (c < best_class) {
      best_class = c;
      best = e;
    }
  }
  return best;
}

/// Per-rank result handed back to the coordinator after run_world.
struct RankStats {
  StageTimer wall;
  /// Busy/wall per pipeline thread (see IfdkStats::overlap_efficiency).
  StageTimer efficiency;
  double v_h2d = 0;
  double v_kernel = 0;
  double v_d2h = 0;
  double total = 0;
};

mpi::ReduceAlgo to_mpi_algo(ReduceFanIn fan_in) {
  return fan_in == ReduceFanIn::kLinear ? mpi::ReduceAlgo::kLinear
                                        : mpi::ReduceAlgo::kTree;
}

/// The validated R x C decomposition shared by run_distributed and
/// run_streaming (identical constraints, identical error messages).
struct Decomposition {
  int rows = 0;
  int cols = 0;
  std::size_t slab_h = 0;    ///< half-height of each row's slab pair
  std::size_t per_rank = 0;  ///< projections loaded (= gather rounds) per rank
  std::size_t pixels = 0;    ///< nu * nv
};

Decomposition validate_decomposition(const geo::CbctGeometry& geometry,
                                     const IfdkOptions& options) {
  geometry.validate();
  const Problem problem = geometry.problem();

  const int rows = options.rows > 0
                       ? options.rows
                       : perfmodel::select_rows(problem, options.microbench);
  if (options.ranks < rows || options.ranks % rows != 0) {
    throw ConfigError("ranks (" + std::to_string(options.ranks) +
                      ") must be a positive multiple of the row count R (" +
                      std::to_string(rows) + ")");
  }
  if (geometry.np % static_cast<std::size_t>(options.ranks) != 0) {
    throw ConfigError("Np (" + std::to_string(geometry.np) +
                      ") must divide evenly across the rank grid (ranks=" +
                      std::to_string(options.ranks) + ")");
  }
  if (geometry.nz % (2 * static_cast<std::size_t>(rows)) != 0) {
    throw ConfigError("Nz (" + std::to_string(geometry.nz) +
                      ") must be divisible by 2*rows (" +
                      std::to_string(2 * rows) +
                      "): each row owns a symmetric slab pair");
  }
  IFDK_REQUIRE(options.reduce_segment_floats > 0,
               "reduce_segment_floats must be positive");

  Decomposition d;
  d.rows = rows;
  d.cols = options.ranks / rows;
  d.slab_h = geometry.nz / (2 * static_cast<std::size_t>(rows));
  d.per_rank = geometry.np / static_cast<std::size_t>(options.ranks);
  d.pixels = geometry.nu * geometry.nv;
  return d;
}

/// Global slice index of local slab-pair slice `local_k` of row `row`:
/// local k < slab_h is global row*h + k; local slab_h + k is global
/// Nz - (row+1)*h + k (Theorem 1's symmetric pairing).
std::size_t global_slice_index(std::size_t nz, std::size_t slab_h, int row,
                               std::size_t local_k) {
  return local_k < slab_h
             ? static_cast<std::size_t>(row) * slab_h + local_k
             : nz - (static_cast<std::size_t>(row) + 1) * slab_h +
                   (local_k - slab_h);
}

/// Extracts slice `local_k` of a z-major slab pair into a slice-major
/// destination. Shared by every pipeline path: the bitwise-equivalence
/// guarantees depend on the permutation being identical.
void extract_zmajor_slice(const float* zmajor, std::size_t nx, std::size_t ny,
                          std::size_t pair_depth, std::size_t local_k,
                          float* dst) {
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      dst[j * nx + i] = zmajor[(i * ny + j) * pair_depth + local_k];
    }
  }
}

}  // namespace

void stage_projections(pfs::ParallelFileSystem& fs,
                       const std::string& input_prefix,
                       std::span<const Image2D> projections) {
  for (std::size_t s = 0; s < projections.size(); ++s) {
    fs.write_object(object_name(input_prefix, s), projections[s].data(),
                    projections[s].bytes());
  }
}

Volume load_volume(const pfs::ParallelFileSystem& fs,
                   const std::string& output_prefix, const VolDims& dims) {
  Volume vol(dims.nx, dims.ny, dims.nz, VolumeLayout::kXMajor,
             /*zero_fill=*/false);
  for (std::size_t k = 0; k < dims.nz; ++k) {
    fs.read_object(object_name(output_prefix, k), vol.slice(k),
                   dims.nx * dims.ny * sizeof(float));
  }
  return vol;
}

// The framework-level default must track the minimpi tuning constant (the
// header cannot include minimpi.h just for a default value).
static_assert(IfdkOptions{}.reduce_segment_floats ==
              mpi::Comm::kDefaultReduceSegment);

IfdkStats run_distributed(const geo::CbctGeometry& geometry,
                          pfs::ParallelFileSystem& fs,
                          const IfdkOptions& options) {
  const Decomposition decomp = validate_decomposition(geometry, options);
  const int rows = decomp.rows;
  const int cols = decomp.cols;
  const std::size_t slab_h = decomp.slab_h;
  const std::size_t per_rank = decomp.per_rank;
  const std::size_t pixels = decomp.pixels;

  std::vector<RankStats> rank_stats(static_cast<std::size_t>(options.ranks));

  mpi::run_world(options.ranks, [&](mpi::Comm& world) {
    const int rank = world.rank();
    const int col = rank / rows;
    const int row = rank % rows;
    RankStats& stats = rank_stats[static_cast<std::size_t>(rank)];
    Timer rank_timer;

    // Fig. 3b: AllGather across the column, Reduce across the row.
    mpi::Comm col_comm = world.split(col, row);
    mpi::Comm row_comm = world.split(row, col);

    // Per-rank engines. The filter engine is what the Filtering-thread runs
    // on "CPUs"; the back-projector is the Bp-thread's "GPU" kernel.
    filter::FilterEngine engine(geometry, options.filter);

    bp::BpConfig bp_cfg;
    bp_cfg.batch = options.bp_batch;
    bp_cfg.k_begin = static_cast<std::size_t>(row) * slab_h;
    bp_cfg.k_half = slab_h;
    bp::Backprojector backprojector(geometry, bp_cfg);
    const auto matrices = geo::make_all_projection_matrices(geometry);

    // Device memory: the slab pair plus a batch of projections must fit
    // (Section 4.1.5's constraint); allocation failure here means R was
    // chosen too small.
    gpusim::Device device(options.device);
    const std::uint64_t slab_bytes =
        2ull * slab_h * geometry.nx * geometry.ny * sizeof(float);
    gpusim::DeviceBuffer vol_buf = device.allocate(slab_bytes);
    gpusim::DeviceBuffer batch_buf = device.allocate(
        static_cast<std::uint64_t>(options.bp_batch) * pixels * sizeof(float));
    gpusim::KernelModel kernel_model;

    Volume slab(geometry.nx, geometry.ny, 2 * slab_h, VolumeLayout::kZMajor,
                /*zero_fill=*/true);

    // Projection index owned by this rank in AllGather round t
    // (Section 4.1.1: each column handles a contiguous block of Np/C).
    const std::size_t column_base =
        static_cast<std::size_t>(col) * per_rank * static_cast<std::size_t>(rows);
    auto owned_index = [&](std::size_t t) {
      return column_base + t * static_cast<std::size_t>(rows) +
             static_cast<std::size_t>(row);
    };

    struct Filtered {
      std::size_t index;
      Image2D image;
    };
    CircularBuffer<Filtered> q_filtered(options.queue_capacity);
    CircularBuffer<std::vector<Filtered>> q_gathered(options.queue_capacity);

    // Worker-thread errors are carried back to the rank body and rethrown
    // there, so run_world's abort protocol unblocks the other ranks. A
    // refused queue push is itself a pipeline error: it means the consumer
    // side shut down early, and silently dropping the item would make this
    // rank emit a wrong (partially accumulated) volume.
    std::exception_ptr filter_error;
    std::exception_ptr bp_error;
    std::exception_ptr main_error;

    // ---- Filtering-thread: load from PFS + filter (Fig. 4a left) ----------
    StageTimer filter_timer;
    std::thread filtering_thread([&] {
      try {
        for (std::size_t t = 0; t < per_rank; ++t) {
          const std::size_t s = owned_index(t);
          Image2D img(geometry.nu, geometry.nv, /*zero_fill=*/false);
          filter_timer.time("load", [&] {
            fs.read_object(object_name(options.input_prefix, s), img.data(),
                           img.bytes());
          });
          filter_timer.time("filter", [&] { engine.apply(img); });
          if (!q_filtered.push(Filtered{s, std::move(img)})) {
            throw QueueClosedError(
                "iFDK pipeline: filtered-projection queue closed before all "
                "rounds were delivered");
          }
        }
      } catch (...) {
        filter_error = std::current_exception();
      }
      q_filtered.close();
    });

    // ---- Bp-thread: H2D + back-projection (Fig. 4a right) -----------------
    StageTimer bp_timer;
    std::thread bp_thread([&] {
      while (auto batch = q_gathered.pop()) {
        if (bp_error) continue;  // drain remaining rounds after a failure
        try {
        // The kernels execute on the CPU against host memory, so transfers
        // are accounting-only: charge the PCIe cost the modeled V100 would
        // pay to stage this round (the allocation above reserved the space).
        for (const Filtered& f : *batch) {
          device.charge_h2d(f.image.bytes());
        }
        std::vector<Image2D> images;
        std::vector<geo::Mat34> mats;
        images.reserve(batch->size());
        mats.reserve(batch->size());
        for (Filtered& f : *batch) {
          mats.push_back(matrices[f.index]);
          images.push_back(std::move(f.image));
        }
        bp_timer.time("backprojection", [&] {
          backprojector.accumulate(slab, images, mats);
        });
        // Modeled V100 cost of the same launch on this rank's sub-problem.
        const Problem sub{{geometry.nu, geometry.nv, images.size()},
                          {geometry.nx, geometry.ny, 2 * slab_h}};
        const double v100 =
            kernel_model.kernel_seconds(bp::KernelVariant::kL1Tran, sub);
        device.charge_kernel(v100);
        } catch (...) {
          bp_error = std::current_exception();
          // Stop accepting rounds so the main thread notices promptly
          // instead of filling the queue against a dead consumer.
          q_gathered.close();
        }
      }
    });

    // ---- Main-thread: AllGather per round (Fig. 4a middle) ----------------
    // Collectives throw when another rank aborts the world; catching here
    // (instead of unwinding past the worker threads) guarantees both workers
    // are always joined and this rank exits cleanly.
    StageTimer main_timer;
    // Two round buffers: in the overlapped pipeline the ring exchange for
    // round t+1 is in flight into one buffer while round t is packaged out
    // of the other.
    std::vector<float> gather_recv[2];
    gather_recv[0].resize(static_cast<std::size_t>(rows) * pixels);
    if (options.overlap) {
      gather_recv[1].resize(static_cast<std::size_t>(rows) * pixels);
    }
    // Repackages the rank-ordered gather buffer of round `t` into per-
    // projection images and hands them to the Bp-thread (blocks on queue
    // back-pressure — exactly the Fig. 4a coupling of gather and bp rates).
    auto deliver_round = [&](std::size_t t, const std::vector<float>& recv) {
      std::vector<Filtered> round;
      round.reserve(static_cast<std::size_t>(rows));
      for (int r = 0; r < rows; ++r) {
        Image2D img(geometry.nu, geometry.nv, /*zero_fill=*/false);
        const float* src = recv.data() + static_cast<std::size_t>(r) * pixels;
        std::copy(src, src + pixels, img.data());
        round.push_back(Filtered{
            column_base + t * static_cast<std::size_t>(rows) +
                static_cast<std::size_t>(r),
            std::move(img)});
      }
      if (!q_gathered.push(std::move(round))) {
        throw QueueClosedError(
            "iFDK pipeline: gathered-projection queue closed before all "
            "rounds were delivered");
      }
    };
    try {
      // Handle to the in-flight gather of round `pending_t` (overlap only).
      // Declared inside the try block: on a world abort the unwinding path
      // may drop it unwaited (see CollectiveRequest).
      mpi::Comm::CollectiveRequest pending;
      std::size_t pending_t = 0;
      for (std::size_t t = 0; t < per_rank; ++t) {
        auto mine = q_filtered.pop();
        if (!mine.has_value()) {
          // Filtering thread failed; its error is the root cause (rethrown
          // below), but the gather stream must not end silently short.
          throw QueueClosedError(
              "iFDK pipeline: filtered-projection queue closed before all "
              "rounds were gathered");
        }
        IFDK_ASSERT(mine->index == owned_index(t));
        if (options.overlap) {
          // Initiate round t (posting this rank's block to the ring), THEN
          // complete round t-1 and deliver it: neighbours waiting on our
          // t-contribution never stall behind our bp back-pressure.
          mpi::Comm::CollectiveRequest req;
          main_timer.time("allgather", [&] {
            req = col_comm.iallgather_ring(mine->image.data(),
                                           pixels * sizeof(float),
                                           gather_recv[t % 2].data());
          });
          if (pending.valid()) {
            main_timer.time("allgather", [&] { pending.wait(); });
            deliver_round(pending_t, gather_recv[pending_t % 2]);
          }
          pending = std::move(req);
          pending_t = t;
        } else {
          main_timer.time("allgather", [&] {
            if (options.use_ring_allgather) {
              col_comm.allgather_ring(mine->image.data(),
                                      pixels * sizeof(float),
                                      gather_recv[0].data());
            } else {
              col_comm.allgather(mine->image.data(), pixels * sizeof(float),
                                 gather_recv[0].data());
            }
          });
          deliver_round(t, gather_recv[0]);
        }
      }
      if (pending.valid()) {  // drain the last overlapped round
        main_timer.time("allgather", [&] { pending.wait(); });
        deliver_round(pending_t, gather_recv[pending_t % 2]);
      }
    } catch (...) {
      main_error = std::current_exception();
    }
    q_gathered.close();
    // Unblock a filtering thread stalled on a full queue after an early
    // exit; harmless on the success path (the producer has already closed).
    q_filtered.close();

    filtering_thread.join();
    bp_thread.join();
    // Rethrow the root cause, not a symptom: when one thread dies its queue
    // closes, and the threads at the other end fail with a secondary
    // QueueClosedError. A bp failure makes the main push fail; a filter
    // failure ends the main thread's pop early; a remote-rank abort surfaces
    // in the main thread's collective.
    const std::exception_ptr errors[] = {bp_error, main_error, filter_error};
    if (const std::exception_ptr first = pick_root_cause(errors)) {
      std::rethrow_exception(first);
    }
    const double compute_span = rank_timer.seconds();

    // ---- Post: D2H, row Reduce, store (Fig. 4b) ----------------------------
    main_timer.time("d2h", [&] { device.charge_d2h(slab.bytes()); });

    auto global_slice = [&](std::size_t local_k) {
      return global_slice_index(geometry.nz, slab_h, row, local_k);
    };
    const std::size_t slice_px = geometry.nx * geometry.ny;
    auto extract_slice = [&](const float* zmajor, std::size_t local_k,
                             float* dst) {
      extract_zmajor_slice(zmajor, geometry.nx, geometry.ny, 2 * slab_h,
                           local_k, dst);
    };
    // Seconds the async writer thread spent writing (overlapped root only);
    // the numerator of the store thread's overlap efficiency.
    double store_busy = 0;

    if (options.overlap) {
      // Every rank transposes its partial slab to slice-major (the same
      // permutation the blocking store applies after reducing), so the row
      // ireduce completes *whole slices* front to back and the root can
      // stream each finished slice to the async writer while later segments
      // are still being folded. The per-voxel fold order is unchanged
      // (ascending rank), so stored bits match the blocking path exactly.
      std::vector<float> partial(2 * slab_h * slice_px);
      main_timer.time("transpose", [&] {
        for (std::size_t local_k = 0; local_k < 2 * slab_h; ++local_k) {
          extract_slice(slab.data(), local_k,
                        partial.data() + local_k * slice_px);
        }
      });

      std::vector<float> reduced(col == 0 ? partial.size() : 0);
      std::optional<pfs::AsyncWriter> writer;
      std::size_t next_slice = 0;
      mpi::Comm::SegmentCallback on_segment;
      if (col == 0) {
        writer.emplace(fs, options.queue_capacity);
        on_segment = [&](std::size_t offset, std::size_t length) {
          // Enqueue every slice fully contained in the reduced prefix; the
          // writer thread performs the PFS writes while the next segments
          // are still in flight.
          const std::size_t prefix = offset + length;
          while (next_slice < 2 * slab_h &&
                 (next_slice + 1) * slice_px <= prefix) {
            const float* src = reduced.data() + next_slice * slice_px;
            writer->enqueue(
                object_name(options.output_prefix, global_slice(next_slice)),
                std::vector<float>(src, src + slice_px));
            ++next_slice;
          }
        };
      }
      mpi::Comm::CollectiveRequest reduce_req = row_comm.ireduce(
          partial.data(), col == 0 ? reduced.data() : nullptr, partial.size(),
          mpi::ReduceOp::kSum, /*root=*/0, options.reduce_segment_floats,
          std::move(on_segment), to_mpi_algo(options.reduce_fan_in));
      main_timer.time("reduce", [&] { reduce_req.wait(); });
      if (col == 0) {
        // "store" on the main thread is only the residual drain: writes that
        // had not finished when the last reduce segment completed.
        main_timer.time("store", [&] { writer->finish(); });
        store_busy = writer->busy_seconds();
      }
    } else {
      Volume reduced(geometry.nx, geometry.ny, 2 * slab_h,
                     VolumeLayout::kZMajor, /*zero_fill=*/col == 0);
      main_timer.time("reduce", [&] {
        row_comm.reduce(slab.data(), col == 0 ? reduced.data() : nullptr,
                        slab.voxels(), mpi::ReduceOp::kSum, /*root=*/0);
      });

      if (col == 0) {
        // Blocking reference store: extract and write slices serially.
        main_timer.time("store", [&] {
          std::vector<float> slice(slice_px);
          for (std::size_t local_k = 0; local_k < 2 * slab_h; ++local_k) {
            extract_slice(reduced.data(), local_k, slice.data());
            fs.write_object(
                object_name(options.output_prefix, global_slice(local_k)),
                slice.data(), slice.size() * sizeof(float));
          }
        });
      }
    }
    world.barrier();

    stats.wall.merge(filter_timer);
    stats.wall.merge(bp_timer);
    stats.wall.merge(main_timer);
    stats.wall.add("compute", compute_span);
    // Overlapped store: report the larger of writer busy time and residual
    // drain as the stage cost (the drain alone under-reports when writes
    // fully overlap the reduce).
    stats.wall.set_max("store", store_busy);
    stats.v_h2d = device.virtual_h2d_seconds();
    stats.v_kernel = device.virtual_kernel_seconds();
    stats.v_d2h = device.virtual_d2h_seconds();
    stats.total = rank_timer.seconds();

    // Busy/wall per pipeline thread: how much of this rank's wall clock each
    // stage thread spent doing useful work. bp_thread near 1 means the
    // pipeline reached the paper's back-projection-bound regime.
    if (stats.total > 0) {
      stats.efficiency.add(
          "filter_thread",
          (filter_timer.get("load") + filter_timer.get("filter")) /
              stats.total);
      stats.efficiency.add(
          "main_thread",
          (main_timer.get("allgather") + main_timer.get("d2h") +
           main_timer.get("transpose") + main_timer.get("reduce") +
           main_timer.get("store")) /
              stats.total);
      stats.efficiency.add("bp_thread",
                           bp_timer.get("backprojection") / stats.total);
      stats.efficiency.add("store_thread", store_busy / stats.total);
    }
  });

  // Merge: report the per-stage maximum across ranks (the critical path).
  IfdkStats out;
  out.grid = {rows, cols};
  out.overlapped = options.overlap;
  for (const RankStats& rs : rank_stats) {
    out.wall.max_merge(rs.wall);
    out.overlap_efficiency.max_merge(rs.efficiency);
    out.device_model.set_max("v_h2d", rs.v_h2d);
    out.device_model.set_max("v_kernel", rs.v_kernel);
    out.device_model.set_max("v_d2h", rs.v_d2h);
    out.wall_total = std::max(out.wall_total, rs.total);
  }
  return out;
}

namespace {

/// Per-rank result of a streaming run.
struct StreamRankStats {
  StageTimer wall;
  StageTimer efficiency;
  double total = 0;
  std::vector<std::string> volume_errors;  ///< row roots only; "" = stored
};

}  // namespace

StreamingStats run_streaming(const geo::CbctGeometry& geometry,
                             pfs::ParallelFileSystem& fs,
                             const IfdkOptions& options,
                             std::span<const StreamVolume> volumes) {
  const Decomposition decomp = validate_decomposition(geometry, options);
  const int rows = decomp.rows;
  const std::size_t slab_h = decomp.slab_h;
  const std::size_t per_rank = decomp.per_rank;
  const std::size_t pixels = decomp.pixels;
  const std::size_t n_volumes = volumes.size();
  const mpi::ReduceAlgo algo = to_mpi_algo(options.reduce_fan_in);

  StreamingStats out;
  out.grid = {rows, decomp.cols};
  out.volumes = static_cast<int>(n_volumes);
  out.fused_filter_gather = options.fuse_filter_gather;
  out.volume_errors.assign(n_volumes, "");
  if (n_volumes == 0) return out;

  std::vector<StreamRankStats> rank_stats(
      static_cast<std::size_t>(options.ranks));

  mpi::run_world(options.ranks, [&](mpi::Comm& world) {
    const int rank = world.rank();
    const int col = rank / rows;
    const int row = rank % rows;
    StreamRankStats& stats = rank_stats[static_cast<std::size_t>(rank)];
    stats.volume_errors.assign(n_volumes, "");
    Timer rank_timer;

    mpi::Comm col_comm = world.split(col, row);
    mpi::Comm row_comm = world.split(row, col);

    filter::FilterEngine engine(geometry, options.filter);

    bp::BpConfig bp_cfg;
    bp_cfg.batch = options.bp_batch;
    bp_cfg.k_begin = static_cast<std::size_t>(row) * slab_h;
    bp_cfg.k_half = slab_h;
    bp::Backprojector backprojector(geometry, bp_cfg);
    const auto matrices = geo::make_all_projection_matrices(geometry);

    // Streaming keeps TWO slab pairs resident per device: the one the
    // Bp-thread is accumulating (volume v+1) and the one draining through
    // the row reduce (volume v) — the double buffer that lets back-
    // projection run ahead of the previous volume's reduce/store.
    gpusim::Device device(options.device);
    const std::uint64_t slab_bytes =
        2ull * slab_h * geometry.nx * geometry.ny * sizeof(float);
    gpusim::DeviceBuffer bp_slab_buf = device.allocate(slab_bytes);
    gpusim::DeviceBuffer reduce_slab_buf =
        device.allocate(n_volumes > 1 ? slab_bytes : 0);
    gpusim::DeviceBuffer batch_buf = device.allocate(
        static_cast<std::uint64_t>(options.bp_batch) * pixels * sizeof(float));
    gpusim::KernelModel kernel_model;

    const std::size_t column_base = static_cast<std::size_t>(col) * per_rank *
                                    static_cast<std::size_t>(rows);
    auto owned_index = [&](std::size_t t) {
      return column_base + t * static_cast<std::size_t>(rows) +
             static_cast<std::size_t>(row);
    };

    struct Filtered {
      std::size_t vol;
      std::size_t index;
      Image2D image;
    };
    struct Round {
      std::size_t vol;
      std::vector<Filtered> images;
    };
    struct SlabPair {
      std::size_t vol;
      Volume slab;
    };
    CircularBuffer<Filtered> q_filtered(options.queue_capacity);
    CircularBuffer<Round> q_gathered(options.queue_capacity);
    // Depth-1 handoff: the Bp-thread may run at most one volume ahead of
    // the reduce (bounding resident slabs to the double buffer above).
    CircularBuffer<SlabPair> q_slabs(1);

    std::exception_ptr filter_error;
    std::exception_ptr bp_error;
    std::exception_ptr reduce_error;
    std::exception_ptr main_error;

    // ---- Filtering-thread (only when not fused onto the worker) -----------
    StageTimer filter_timer;
    std::thread filtering_thread;
    if (!options.fuse_filter_gather) {
      filtering_thread = std::thread([&] {
        try {
          for (std::size_t v = 0; v < n_volumes; ++v) {
            for (std::size_t t = 0; t < per_rank; ++t) {
              const std::size_t s = owned_index(t);
              Image2D img(geometry.nu, geometry.nv, /*zero_fill=*/false);
              filter_timer.time("load", [&] {
                fs.read_object(object_name(volumes[v].input_prefix, s),
                               img.data(), img.bytes());
              });
              filter_timer.time("filter", [&] { engine.apply(img); });
              if (!q_filtered.push(Filtered{v, s, std::move(img)})) {
                throw QueueClosedError(
                    "iFDK streaming: filtered-projection queue closed before "
                    "all volumes were delivered");
              }
            }
          }
        } catch (...) {
          filter_error = std::current_exception();
        }
        q_filtered.close();
      });
    }

    // ---- Bp-thread: accumulate rounds; hand each finished slab over -------
    StageTimer bp_timer;
    std::thread bp_thread([&] {
      Volume slab(geometry.nx, geometry.ny, 2 * slab_h, VolumeLayout::kZMajor,
                  /*zero_fill=*/true);
      std::size_t current_vol = 0;
      std::size_t rounds_done = 0;
      while (auto round = q_gathered.pop()) {
        if (bp_error) continue;  // drain remaining rounds after a failure
        try {
          IFDK_ASSERT(round->vol == current_vol);
          for (const Filtered& f : round->images) {
            device.charge_h2d(f.image.bytes());
          }
          std::vector<Image2D> images;
          std::vector<geo::Mat34> mats;
          images.reserve(round->images.size());
          mats.reserve(round->images.size());
          for (Filtered& f : round->images) {
            mats.push_back(matrices[f.index]);
            images.push_back(std::move(f.image));
          }
          bp_timer.time("backprojection", [&] {
            backprojector.accumulate(slab, images, mats);
          });
          const Problem sub{{geometry.nu, geometry.nv, images.size()},
                            {geometry.nx, geometry.ny, 2 * slab_h}};
          device.charge_kernel(
              kernel_model.kernel_seconds(bp::KernelVariant::kL1Tran, sub));
          if (++rounds_done == per_rank) {
            bp_timer.time("d2h", [&] { device.charge_d2h(slab.bytes()); });
            if (!q_slabs.push(SlabPair{current_vol, std::move(slab)})) {
              throw QueueClosedError(
                  "iFDK streaming: slab queue closed before all volumes were "
                  "back-projected");
            }
            rounds_done = 0;
            ++current_vol;
            if (current_vol < n_volumes) {
              slab = Volume(geometry.nx, geometry.ny, 2 * slab_h,
                            VolumeLayout::kZMajor, /*zero_fill=*/true);
            }
          }
        } catch (...) {
          bp_error = std::current_exception();
          q_gathered.close();
          q_slabs.close();
        }
      }
      if (!bp_error) q_slabs.close();
    });

    // ---- Reduce-thread: transpose + row ireduce + store, volume by volume --
    // Runs the per-volume collective epochs while the worker threads above
    // are already filtering/gathering/back-projecting the NEXT volumes.
    StageTimer reduce_timer;
    double store_busy = 0;
    std::thread reduce_thread([&] {
      try {
        const std::size_t slice_px = geometry.nx * geometry.ny;
        std::optional<pfs::AsyncWriter> writer;
        std::vector<pfs::AsyncWriter::StreamId> streams(n_volumes);
        if (col == 0) {
          writer.emplace(fs, options.queue_capacity);
          for (std::size_t v = 0; v < n_volumes; ++v) {
            streams[v] = writer->open_stream();
          }
        }
        std::vector<float> partial(2 * slab_h * slice_px);
        std::vector<float> reduced(col == 0 ? partial.size() : 0);
        for (std::size_t v = 0; v < n_volumes; ++v) {
          auto slab = q_slabs.pop();
          if (!slab.has_value()) {
            throw QueueClosedError(
                "iFDK streaming: slab queue closed before all volumes were "
                "reduced");
          }
          IFDK_ASSERT(slab->vol == v);
          reduce_timer.time("transpose", [&] {
            for (std::size_t k = 0; k < 2 * slab_h; ++k) {
              extract_zmajor_slice(slab->slab.data(), geometry.nx,
                                   geometry.ny, 2 * slab_h, k,
                                   partial.data() + k * slice_px);
            }
          });
          std::size_t next_slice = 0;
          bool stream_open = true;
          mpi::Comm::SegmentCallback on_segment;
          if (col == 0) {
            on_segment = [&](std::size_t offset, std::size_t length) {
              const std::size_t prefix = offset + length;
              while (next_slice < 2 * slab_h &&
                     (next_slice + 1) * slice_px <= prefix) {
                const float* src = reduced.data() + next_slice * slice_px;
                if (stream_open) {
                  // A poisoned stream (write error on THIS volume) refuses
                  // further slices; volume v fails at finish_stream below
                  // while every other volume keeps flowing.
                  stream_open = writer->enqueue(
                      streams[v],
                      object_name(volumes[v].output_prefix,
                                  global_slice_index(geometry.nz, slab_h, row,
                                                     next_slice)),
                      std::vector<float>(src, src + slice_px));
                }
                ++next_slice;
              }
            };
          }
          mpi::Comm::CollectiveRequest req = row_comm.ireduce(
              partial.data(), col == 0 ? reduced.data() : nullptr,
              partial.size(), mpi::ReduceOp::kSum, /*root=*/0,
              options.reduce_segment_floats, std::move(on_segment), algo);
          reduce_timer.time("reduce", [&] { req.wait(); });
          if (col == 0) {
            try {
              reduce_timer.time("store",
                                [&] { writer->finish_stream(streams[v]); });
            } catch (const std::exception& e) {
              stats.volume_errors[v] = e.what();
            }
          }
        }
        if (col == 0) {
          writer->finish();  // all stream errors were claimed above
          store_busy = writer->busy_seconds();
        }
      } catch (...) {
        reduce_error = std::current_exception();
        // Unblock a Bp-thread stalled on the slab handoff; the closed queue
        // propagates the shutdown up the pipeline.
        q_slabs.close();
      }
    });

    // ---- Worker (main) thread: filter (fused) + column gather per round ----
    StageTimer main_timer;
    auto deliver_round = [&](std::size_t g, const std::vector<float>& recv) {
      const std::size_t v = g / per_rank;
      const std::size_t t = g % per_rank;
      std::vector<Filtered> images;
      images.reserve(static_cast<std::size_t>(rows));
      for (int r = 0; r < rows; ++r) {
        Image2D img(geometry.nu, geometry.nv, /*zero_fill=*/false);
        const float* src = recv.data() + static_cast<std::size_t>(r) * pixels;
        std::copy(src, src + pixels, img.data());
        images.push_back(Filtered{
            v,
            column_base + t * static_cast<std::size_t>(rows) +
                static_cast<std::size_t>(r),
            std::move(img)});
      }
      if (!q_gathered.push(Round{v, std::move(images)})) {
        throw QueueClosedError(
            "iFDK streaming: gathered-projection queue closed before all "
            "rounds were delivered");
      }
    };
    const std::size_t total_rounds = n_volumes * per_rank;
    try {
      std::vector<float> gather_recv[2];
      gather_recv[0].resize(static_cast<std::size_t>(rows) * pixels);
      gather_recv[1].resize(static_cast<std::size_t>(rows) * pixels);
      if (options.fuse_filter_gather) {
        // Same-thread overlap via irecv: post round g's receives, then
        // load+filter round g+1 while g's blocks are in transit, then wait
        // g's receives and deliver. Tags are per-round user tags — the
        // column communicator is framework-private, so the space is free.
        std::vector<mpi::Comm::Request> reqs[2];
        std::size_t pending = 0;
        bool have_pending = false;
        for (std::size_t g = 0; g < total_rounds; ++g) {
          const std::size_t v = g / per_rank;
          const std::size_t t = g % per_rank;
          const std::size_t s = owned_index(t);
          Image2D img(geometry.nu, geometry.nv, /*zero_fill=*/false);
          main_timer.time("load", [&] {
            fs.read_object(object_name(volumes[v].input_prefix, s),
                           img.data(), img.bytes());
          });
          main_timer.time("filter", [&] { engine.apply(img); });
          main_timer.time("allgather", [&] {
            const int tag = static_cast<int>(g % (std::size_t{1} << 20));
            std::vector<float>& buf = gather_recv[g % 2];
            std::copy(img.data(), img.data() + pixels,
                      buf.data() + static_cast<std::size_t>(row) * pixels);
            std::vector<mpi::Comm::Request>& rr = reqs[g % 2];
            rr.clear();
            for (int r = 0; r < rows; ++r) {
              if (r == row) continue;
              col_comm.isend(r, tag, img.data(), pixels * sizeof(float))
                  .wait();  // buffered: completion is immediate
              rr.push_back(col_comm.irecv(
                  r, tag, buf.data() + static_cast<std::size_t>(r) * pixels,
                  pixels * sizeof(float)));
            }
          });
          if (have_pending) {
            main_timer.time("allgather", [&] {
              mpi::Comm::wait_all(reqs[pending % 2]);
            });
            deliver_round(pending, gather_recv[pending % 2]);
          }
          pending = g;
          have_pending = true;
        }
        if (have_pending) {
          main_timer.time("allgather",
                          [&] { mpi::Comm::wait_all(reqs[pending % 2]); });
          deliver_round(pending, gather_recv[pending % 2]);
        }
      } else {
        // Dedicated filtering thread feeds us; double-buffered nonblocking
        // ring gather across the whole round stream, volume boundaries
        // included (round g of volume v+1 is initiated while the last round
        // of volume v is still outstanding).
        mpi::Comm::CollectiveRequest pending;
        std::size_t pending_g = 0;
        for (std::size_t g = 0; g < total_rounds; ++g) {
          const std::size_t t = g % per_rank;
          auto mine = q_filtered.pop();
          if (!mine.has_value()) {
            throw QueueClosedError(
                "iFDK streaming: filtered-projection queue closed before all "
                "rounds were gathered");
          }
          IFDK_ASSERT(mine->vol == g / per_rank &&
                      mine->index == owned_index(t));
          mpi::Comm::CollectiveRequest req;
          main_timer.time("allgather", [&] {
            req = col_comm.iallgather_ring(mine->image.data(),
                                           pixels * sizeof(float),
                                           gather_recv[g % 2].data());
          });
          if (pending.valid()) {
            main_timer.time("allgather", [&] { pending.wait(); });
            deliver_round(pending_g, gather_recv[pending_g % 2]);
          }
          pending = std::move(req);
          pending_g = g;
        }
        if (pending.valid()) {
          main_timer.time("allgather", [&] { pending.wait(); });
          deliver_round(pending_g, gather_recv[pending_g % 2]);
        }
      }
    } catch (...) {
      main_error = std::current_exception();
      // Sibling threads of THIS rank may be blocked inside collectives whose
      // remote peers will never progress past our failure; poison the world
      // before joining them so every epoch unwinds instead of hanging. The
      // local root cause still wins the error report (run_world prefers
      // non-abort errors).
      world.abort_world();
    }
    q_gathered.close();
    q_filtered.close();

    if (filtering_thread.joinable()) filtering_thread.join();
    bp_thread.join();
    reduce_thread.join();

    // Rethrow the root cause: real failures > world-abort symptoms >
    // queue-shutdown symptoms (same policy as run_distributed).
    const std::exception_ptr errors[] = {bp_error, reduce_error, main_error,
                                         filter_error};
    if (const std::exception_ptr first = pick_root_cause(errors)) {
      std::rethrow_exception(first);
    }
    world.barrier();

    stats.wall.merge(filter_timer);
    stats.wall.merge(bp_timer);
    stats.wall.merge(main_timer);
    stats.wall.merge(reduce_timer);
    stats.wall.set_max("store", store_busy);
    stats.total = rank_timer.seconds();
    if (stats.total > 0) {
      stats.efficiency.add(
          "filter_thread",
          (filter_timer.get("load") + filter_timer.get("filter")) /
              stats.total);
      stats.efficiency.add(
          "main_thread",
          (main_timer.get("load") + main_timer.get("filter") +
           main_timer.get("allgather")) /
              stats.total);
      stats.efficiency.add("bp_thread",
                           bp_timer.get("backprojection") / stats.total);
      stats.efficiency.add(
          "reduce_thread",
          (reduce_timer.get("transpose") + reduce_timer.get("reduce") +
           reduce_timer.get("store")) /
              stats.total);
      stats.efficiency.add("store_thread", store_busy / stats.total);
    }
  });

  double wall_total = 0;
  for (const StreamRankStats& rs : rank_stats) {
    out.wall.max_merge(rs.wall);
    out.overlap_efficiency.max_merge(rs.efficiency);
    wall_total = std::max(wall_total, rs.total);
    for (std::size_t v = 0; v < n_volumes; ++v) {
      if (out.volume_errors[v].empty() && !rs.volume_errors[v].empty()) {
        out.volume_errors[v] = rs.volume_errors[v];
      }
    }
  }
  out.wall_total = wall_total;
  out.volumes_per_second =
      wall_total > 0 ? static_cast<double>(n_volumes) / wall_total : 0;
  return out;
}

}  // namespace ifdk
