#include "ifdk/framework.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "backproj/backprojector.h"
#include "common/circular_buffer.h"
#include "common/error.h"
#include "engine/engine.h"
#include "fft/fft.h"
#include "gpusim/kernel_model.h"
#include "minimpi/minimpi.h"

namespace ifdk {

namespace {

using engine::object_name;
using engine::QueueClosedError;

mpi::ReduceAlgo to_mpi_algo(ReduceFanIn fan_in) {
  return fan_in == ReduceFanIn::kLinear ? mpi::ReduceAlgo::kLinear
                                        : mpi::ReduceAlgo::kTree;
}

/// The single overlapped execution core (defined below, after its per-rank
/// stats type): run_streaming validates and forwards to it, and
/// run_distributed's overlapped path wraps it with a one-volume stream.
StreamingStats stream_core(const geo::CbctGeometry& geometry,
                           pfs::ParallelFileSystem& fs,
                           const IfdkOptions& options,
                           std::span<const JobSpec> volumes);

}  // namespace

void stage_projections(pfs::ParallelFileSystem& fs,
                       const std::string& input_prefix,
                       std::span<const Image2D> projections) {
  for (std::size_t s = 0; s < projections.size(); ++s) {
    fs.write_object(object_name(input_prefix, s), projections[s].data(),
                    projections[s].bytes());
  }
}

Volume load_volume(const pfs::ParallelFileSystem& fs,
                   const std::string& output_prefix, const VolDims& dims,
                   bool compressed_store) {
  Volume vol(dims.nx, dims.ny, dims.nz, VolumeLayout::kXMajor,
             /*zero_fill=*/false);
  const std::size_t slice_px = dims.nx * dims.ny;
  for (std::size_t k = 0; k < dims.nz; ++k) {
    const std::string name = object_name(output_prefix, k);
    if (compressed_store) {
      const std::vector<float> slice = pfs::read_compressed_object(fs, name);
      IFDK_REQUIRE(slice.size() == slice_px,
                   "load_volume: compressed slice " + name + " holds " +
                       std::to_string(slice.size()) + " values, expected " +
                       std::to_string(slice_px));
      std::copy(slice.begin(), slice.end(), vol.slice(k));
    } else {
      fs.read_object(name, vol.slice(k), slice_px * sizeof(float));
    }
  }
  return vol;
}

namespace {

/// Per-rank device ledger of the blocking reference path (the generic
/// wall/efficiency/total stats ride the engine's RankContext instead).
struct BlockingRankDevice {
  double v_h2d = 0;
  double v_kernel = 0;
  double v_d2h = 0;
};

/// The blocking reference path (overlap = false) as an engine Workload:
/// self-contained Fig. 4a pipeline with blocking collectives and a serial
/// slice store — the bitwise reference the overlapped core is tested
/// against, and the only consumer of the blocking allgather/reduce
/// primitives. The plan is the single source of truth for the
/// decomposition: grid, slab extents, projection shards, and the memory
/// check.
class BlockingFdkWorkload final : public engine::Workload {
 public:
  BlockingFdkWorkload(const geo::CbctGeometry& geometry,
                      pfs::ParallelFileSystem& fs, const IfdkOptions& options,
                      const DecompositionPlan& plan)
      : geometry_(geometry), fs_(fs), options_(options), plan_(plan) {
    device_.resize(static_cast<std::size_t>(options.ranks));
  }

  /// Device-model ledger of rank `rank`, merged by the caller.
  const BlockingRankDevice& device(std::size_t rank) const {
    return device_[rank];
  }

  /// The classic three-thread pipeline of one rank (Fig. 4a + 4b).
  void run_rank(engine::RankContext& ctx) override {
    const geo::CbctGeometry& geometry = geometry_;
    const IfdkOptions& options = options_;
    const DecompositionPlan& plan = plan_;
    const int rows = plan.grid.rows;
    const std::size_t slab_h = plan.slab_h;
    const std::size_t per_rank = plan.rounds;
    const std::size_t pixels = plan.pixels;

    mpi::Comm& world = ctx.world;
    const int rank = ctx.rank;
    const int col = plan.col_of(rank);
    const int row = plan.row_of(rank);
    Timer rank_timer;

    // Fig. 3b: AllGather across the column, Reduce across the row.
    mpi::Comm col_comm = world.split(col, row);
    mpi::Comm row_comm = world.split(row, col);

    // Per-rank engines. The filter engine is what the Filtering-thread runs
    // on "CPUs"; the back-projector is the Bp-thread's "GPU" kernel.
    filter::FilterEngine engine(geometry, options.filter);

    bp::BpConfig bp_cfg;
    bp_cfg.batch = options.bp_batch;
    bp_cfg.simd_backend = options.simd_backend;
    bp_cfg.k_begin = static_cast<std::size_t>(row) * slab_h;
    bp_cfg.k_half = slab_h;
    bp::Backprojector backprojector(geometry, bp_cfg);
    const auto matrices = geo::make_all_projection_matrices(geometry);

    // Device memory: the slab pair plus a batch of projections must fit
    // (the plan's Section 4.1.5 check, re-enforced by the allocator).
    gpusim::Device device(options.device);
    gpusim::DeviceBuffer vol_buf = device.allocate(plan.slab_bytes());
    gpusim::DeviceBuffer batch_buf = device.allocate(
        static_cast<std::uint64_t>(options.bp_batch) * pixels * sizeof(float));
    gpusim::KernelModel kernel_model;

    Volume slab(geometry.nx, geometry.ny, 2 * slab_h, VolumeLayout::kZMajor,
                /*zero_fill=*/true);

    auto owned_index = [&](std::size_t t) {
      return plan.owned_projection(row, col, t);
    };

    struct Filtered {
      std::size_t index;
      Image2D image;
    };
    CircularBuffer<Filtered> q_filtered(options.queue_capacity);
    CircularBuffer<std::vector<Filtered>> q_gathered(options.queue_capacity);

    // Worker-thread errors are carried back to the rank body and rethrown
    // there, so run_world's abort protocol unblocks the other ranks. A
    // refused queue push is itself a pipeline error: it means the consumer
    // side shut down early, and silently dropping the item would make this
    // rank emit a wrong (partially accumulated) volume.
    std::exception_ptr filter_error;
    std::exception_ptr bp_error;
    std::exception_ptr main_error;

    // ---- Filtering-thread: load from PFS + filter (Fig. 4a left) ----------
    StageTimer filter_timer;
    std::thread filtering_thread([&] {
      try {
        // Thread-owned FFT scratch: one allocation for the whole run instead
        // of one per filtered row.
        fft::Workspace fft_ws;
        for (std::size_t t = 0; t < per_rank; ++t) {
          const std::size_t s = owned_index(t);
          Image2D img(geometry.nu, geometry.nv, /*zero_fill=*/false);
          filter_timer.time("load", [&] {
            fs_.read_object(object_name(options.input_prefix, s), img.data(),
                            img.bytes());
          });
          filter_timer.time("filter", [&] { engine.apply(img, fft_ws); });
          if (!q_filtered.push(Filtered{s, std::move(img)})) {
            throw QueueClosedError(
                "iFDK pipeline: filtered-projection queue closed before all "
                "rounds were delivered");
          }
        }
      } catch (...) {
        filter_error = std::current_exception();
      }
      q_filtered.close();
    });

    // ---- Bp-thread: H2D + back-projection (Fig. 4a right) -----------------
    StageTimer bp_timer;
    std::thread bp_thread([&] {
      while (auto batch = q_gathered.pop()) {
        if (bp_error) continue;  // drain remaining rounds after a failure
        try {
        // The kernels execute on the CPU against host memory, so transfers
        // are accounting-only: charge the PCIe cost the modeled V100 would
        // pay to stage this round (the allocation above reserved the space).
        for (const Filtered& f : *batch) {
          device.charge_h2d(f.image.bytes());
        }
        std::vector<Image2D> images;
        std::vector<geo::Mat34> mats;
        images.reserve(batch->size());
        mats.reserve(batch->size());
        for (Filtered& f : *batch) {
          mats.push_back(matrices[f.index]);
          images.push_back(std::move(f.image));
        }
        bp_timer.time("backprojection", [&] {
          backprojector.accumulate(slab, images, mats);
        });
        // Modeled V100 cost of the same launch on this rank's sub-problem.
        const Problem sub{{geometry.nu, geometry.nv, images.size()},
                          {geometry.nx, geometry.ny, 2 * slab_h}};
        const double v100 =
            kernel_model.kernel_seconds(bp::KernelVariant::kL1Tran, sub);
        device.charge_kernel(v100);
        } catch (...) {
          bp_error = std::current_exception();
          // Stop accepting rounds so the main thread notices promptly
          // instead of filling the queue against a dead consumer.
          q_gathered.close();
        }
      }
    });

    // ---- Main-thread: AllGather per round (Fig. 4a middle) ----------------
    // Collectives throw when another rank aborts the world; catching here
    // (instead of unwinding past the worker threads) guarantees both workers
    // are always joined and this rank exits cleanly.
    StageTimer main_timer;
    std::vector<float> gather_recv(static_cast<std::size_t>(rows) * pixels);
    // Repackages the rank-ordered gather buffer of round `t` into per-
    // projection images and hands them to the Bp-thread (blocks on queue
    // back-pressure — exactly the Fig. 4a coupling of gather and bp rates).
    auto deliver_round = [&](std::size_t t, const std::vector<float>& recv) {
      std::vector<Filtered> round;
      round.reserve(static_cast<std::size_t>(rows));
      for (int r = 0; r < rows; ++r) {
        Image2D img(geometry.nu, geometry.nv, /*zero_fill=*/false);
        const float* src = recv.data() + static_cast<std::size_t>(r) * pixels;
        std::copy(src, src + pixels, img.data());
        round.push_back(Filtered{plan.owned_projection(r, col, t),
                                 std::move(img)});
      }
      if (!q_gathered.push(std::move(round))) {
        throw QueueClosedError(
            "iFDK pipeline: gathered-projection queue closed before all "
            "rounds were delivered");
      }
    };
    try {
      for (std::size_t t = 0; t < per_rank; ++t) {
        auto mine = q_filtered.pop();
        if (!mine.has_value()) {
          // Filtering thread failed; its error is the root cause (rethrown
          // below), but the gather stream must not end silently short.
          throw QueueClosedError(
              "iFDK pipeline: filtered-projection queue closed before all "
              "rounds were gathered");
        }
        IFDK_ASSERT(mine->index == owned_index(t));
        main_timer.time("allgather", [&] {
          if (options.use_ring_allgather) {
            col_comm.allgather_ring(mine->image.data(),
                                    pixels * sizeof(float),
                                    gather_recv.data());
          } else {
            col_comm.allgather(mine->image.data(), pixels * sizeof(float),
                               gather_recv.data());
          }
        });
        deliver_round(t, gather_recv);
      }
    } catch (...) {
      main_error = std::current_exception();
    }
    q_gathered.close();
    // Unblock a filtering thread stalled on a full queue after an early
    // exit; harmless on the success path (the producer has already closed).
    q_filtered.close();

    filtering_thread.join();
    bp_thread.join();
    // Rethrow the root cause, not a symptom: when one thread dies its queue
    // closes, and the threads at the other end fail with a secondary
    // QueueClosedError. A bp failure makes the main push fail; a filter
    // failure ends the main thread's pop early; a remote-rank abort surfaces
    // in the main thread's collective.
    const std::exception_ptr errors[] = {bp_error, main_error, filter_error};
    if (const std::exception_ptr first = engine::pick_root_cause(errors)) {
      std::rethrow_exception(first);
    }
    const double compute_span = rank_timer.seconds();

    // ---- Post: D2H, row Reduce, store (Fig. 4b) ----------------------------
    main_timer.time("d2h", [&] { device.charge_d2h(slab.bytes()); });

    auto global_slice = [&](std::size_t local_k) {
      return plan.global_slice(row, local_k);
    };
    const std::size_t slice_px = plan.slice_px;
    auto extract_slice = [&](const float* zmajor, std::size_t local_k,
                             float* dst) {
      engine::extract_zmajor_slice(zmajor, geometry.nx, geometry.ny,
                                   2 * slab_h, local_k, dst);
    };
    Volume reduced(geometry.nx, geometry.ny, 2 * slab_h,
                   VolumeLayout::kZMajor, /*zero_fill=*/col == 0);
    main_timer.time("reduce", [&] {
      row_comm.reduce(slab.data(), col == 0 ? reduced.data() : nullptr,
                      slab.voxels(), mpi::ReduceOp::kSum, /*root=*/0);
    });

    if (col == 0) {
      // Blocking reference store: extract and write slices serially.
      main_timer.time("store", [&] {
        std::vector<float> slice(slice_px);
        for (std::size_t local_k = 0; local_k < 2 * slab_h; ++local_k) {
          extract_slice(reduced.data(), local_k, slice.data());
          fs_.write_object(
              object_name(options.output_prefix, global_slice(local_k)),
              slice.data(), slice.size() * sizeof(float));
        }
      });
    }
    world.barrier();

    ctx.wall.merge(filter_timer);
    ctx.wall.merge(bp_timer);
    ctx.wall.merge(main_timer);
    ctx.wall.add("compute", compute_span);
    BlockingRankDevice& dev = device_[static_cast<std::size_t>(rank)];
    dev.v_h2d = device.virtual_h2d_seconds();
    dev.v_kernel = device.virtual_kernel_seconds();
    dev.v_d2h = device.virtual_d2h_seconds();
    ctx.total = rank_timer.seconds();

    // Busy/wall per pipeline thread: how much of this rank's wall clock each
    // stage thread spent doing useful work. bp_thread near 1 means the
    // pipeline reached the paper's back-projection-bound regime.
    if (ctx.total > 0) {
      ctx.efficiency.add(
          "filter_thread",
          (filter_timer.get("load") + filter_timer.get("filter")) /
              ctx.total);
      ctx.efficiency.add(
          "main_thread",
          (main_timer.get("allgather") + main_timer.get("d2h") +
           main_timer.get("transpose") + main_timer.get("reduce") +
           main_timer.get("store")) /
              ctx.total);
      ctx.efficiency.add("bp_thread",
                         bp_timer.get("backprojection") / ctx.total);
    }
  }

 private:
  const geo::CbctGeometry& geometry_;
  pfs::ParallelFileSystem& fs_;
  const IfdkOptions& options_;
  const DecompositionPlan& plan_;
  std::vector<BlockingRankDevice> device_;
};

}  // namespace

IfdkStats run_distributed(const geo::CbctGeometry& geometry,
                          pfs::ParallelFileSystem& fs,
                          const IfdkOptions& options) {
  if (options.overlap) {
    // The documented one-volume wrapper over the streaming execution core:
    // a JobSpec carrying the options' I/O prefixes rides the exact
    // plan/epoch machinery of run_streaming, with the dedicated
    // Filtering-thread (not the fused worker) so the classic stats contract
    // — filter/main/bp/store thread efficiencies, per-stage wall seconds,
    // the modeled-V100 ledger — still holds. The core's per-volume store
    // isolation is converted back to this API's throwing contract: the one
    // volume's failure IS the run's failure.
    IfdkOptions stream_options = options;
    stream_options.fuse_filter_gather = false;
    const JobSpec job{options.input_prefix, options.output_prefix, {}};
    const StreamingStats streamed = stream_core(
        geometry, fs, stream_options, std::span<const JobSpec>(&job, 1));
    if (!streamed.volume_errors[0].empty()) {
      throw IoError(streamed.volume_errors[0]);
    }
    IfdkStats out;
    out.grid = streamed.grid;
    out.overlapped = true;
    out.wall = streamed.wall;
    out.device_model = streamed.device_model;
    out.overlap_efficiency = streamed.overlap_efficiency;
    out.wall_total = streamed.wall_total;
    out.wire_raw_bytes = streamed.wire_raw_bytes;
    out.wire_encoded_bytes = streamed.wire_encoded_bytes;
    return out;
  }

  const DecompositionPlan plan = DecompositionPlan::make(geometry, options);
  plan.check_device_fit(options.device);

  BlockingFdkWorkload workload(geometry, fs, options, plan);
  const engine::EngineStats engine_stats =
      engine::run(options.ranks, workload);

  // Merge: report the per-stage maximum across ranks (the critical path).
  // The engine already merged the generic wall/efficiency/total stats; the
  // modeled-V100 ledger is workload-owned and merged here.
  IfdkStats out;
  out.grid = plan.grid;
  out.overlapped = false;
  out.wall = engine_stats.wall;
  out.overlap_efficiency = engine_stats.efficiency;
  out.wall_total = engine_stats.wall_total;
  for (std::size_t r = 0; r < static_cast<std::size_t>(options.ranks); ++r) {
    const BlockingRankDevice& dev = workload.device(r);
    out.device_model.set_max("v_h2d", dev.v_h2d);
    out.device_model.set_max("v_kernel", dev.v_kernel);
    out.device_model.set_max("v_d2h", dev.v_d2h);
  }
  return out;
}

namespace {

/// Per-rank workload-owned results of a streaming run (the generic
/// wall/efficiency/total stats ride the engine's RankContext instead).
struct StreamRankStats {
  /// Stream start to the Bp-thread's last accumulation: the
  /// load+filter+gather+bp span ("compute"), written by the Bp-thread and
  /// read after its join.
  double compute = 0;
  double v_h2d = 0;    ///< modeled PCIe H2D seconds (device ledger)
  double v_kernel = 0; ///< modeled V100 kernel seconds
  double v_d2h = 0;    ///< modeled PCIe D2H seconds
  std::vector<std::string> volume_errors;  ///< row roots only; "" = stored
  /// This rank's framed reduce-encoder traffic (zero unless compress_wire).
  engine::WireStats wire;
  /// Per-volume store accounting of the volumes this rank roots (all other
  /// entries stay default); every column-0 rank of a grid is a row root, so
  /// the cross-rank merge must SUM sse/values/bytes and MAX the peak.
  std::vector<pfs::StreamStats> store;
};

/// FDK streaming as an engine Workload: the Fig. 4a/4b per-rank pipeline
/// with streaming epochs — optional Filtering-thread, fused filter/gather
/// worker, Bp-thread with the depth-1 slab handoff, and the Reduce-thread
/// running per-volume collective epochs through the engine's communicator
/// cache and writer plumbing.
class FdkStreamWorkload final : public engine::Workload {
 public:
  FdkStreamWorkload(pfs::ParallelFileSystem& fs, const IfdkOptions& options,
                    std::span<const JobSpec> volumes,
                    std::span<const DecompositionPlan> plans,
                    std::uint64_t max_slab_bytes,
                    std::uint64_t max_batch_bytes,
                    std::size_t max_gather_floats)
      : fs_(fs),
        options_(options),
        volumes_(volumes),
        plans_(plans),
        max_slab_bytes_(max_slab_bytes),
        max_batch_bytes_(max_batch_bytes),
        max_gather_floats_(max_gather_floats),
        algo_(to_mpi_algo(options.reduce_fan_in)) {
    rank_stats_.resize(static_cast<std::size_t>(options.ranks));
  }

  /// Workload-owned per-rank results (device ledger, compute span,
  /// per-volume store errors), merged by the caller.
  const StreamRankStats& rank_stats(std::size_t rank) const {
    return rank_stats_[rank];
  }

  /// The streaming per-rank pipeline (four threads, per-volume epochs).
  void run_rank(engine::RankContext& ctx) override {
    pfs::ParallelFileSystem& fs = fs_;
    const IfdkOptions& options = options_;
    std::span<const JobSpec> volumes = volumes_;
    std::span<const DecompositionPlan> plans = plans_;
    const std::size_t n_volumes = volumes.size();
    const std::uint64_t max_slab_bytes = max_slab_bytes_;
    const std::uint64_t max_batch_bytes = max_batch_bytes_;
    const std::size_t max_gather_floats = max_gather_floats_;
    const mpi::ReduceAlgo algo = algo_;

    mpi::Comm& world = ctx.world;
    const int rank = ctx.rank;
    StreamRankStats& stats = rank_stats_[static_cast<std::size_t>(rank)];
    stats.volume_errors.assign(n_volumes, "");
    stats.store.assign(n_volumes, pfs::StreamStats{});
    Timer rank_timer;

    // ---- Per-epoch communicators (the grid re-split) ----------------------
    // The engine's communicator cache: one col/row pair per distinct row
    // count, built up front in volume order (a split is a collective, so
    // every rank must perform the same sequence). Consecutive volumes with
    // the same grid share a pair, which is what lets their collective
    // epochs stay in flight together; the stream "re-splits" by switching
    // pairs at the volume boundary.
    std::vector<int> rows_per_volume;
    rows_per_volume.reserve(n_volumes);
    for (const DecompositionPlan& plan : plans) {
      rows_per_volume.push_back(plan.grid.rows);
    }
    engine::EpochComms epoch_comms(world, rows_per_volume);

    // Streaming keeps TWO slab pairs resident per device: the one the
    // Bp-thread is accumulating (volume v+1) and the one draining through
    // the row reduce (volume v) — both sized for the stream's largest slab.
    gpusim::Device device(options.device);
    gpusim::DeviceBuffer bp_slab_buf = device.allocate(max_slab_bytes);
    gpusim::DeviceBuffer reduce_slab_buf =
        device.allocate(n_volumes > 1 ? max_slab_bytes : 0);
    gpusim::DeviceBuffer batch_buf = device.allocate(max_batch_bytes);
    gpusim::KernelModel kernel_model;

    struct Filtered {
      std::size_t vol;
      std::size_t index;
      Image2D image;
    };
    struct Round {
      std::size_t vol;
      std::vector<Filtered> images;
    };
    struct SlabPair {
      std::size_t vol;
      Volume slab;
    };
    CircularBuffer<Filtered> q_filtered(options.queue_capacity);
    CircularBuffer<Round> q_gathered(options.queue_capacity);
    // Depth-1 handoff: the Bp-thread may run at most one volume ahead of
    // the reduce (bounding resident slabs to the double buffer above).
    CircularBuffer<SlabPair> q_slabs(1);

    std::exception_ptr filter_error;
    std::exception_ptr bp_error;
    std::exception_ptr reduce_error;
    std::exception_ptr main_error;

    // ---- Filtering-thread (only when not fused onto the worker) -----------
    StageTimer filter_timer;
    std::thread filtering_thread;
    if (!options.fuse_filter_gather) {
      filtering_thread = std::thread([&] {
        try {
          std::optional<filter::FilterEngine> engine;
          const geo::CbctGeometry* engine_geom = nullptr;
          // Thread-owned FFT scratch, reused across volumes (Workspace only
          // grows, so a geometry change at most reallocates once).
          fft::Workspace fft_ws;
          for (std::size_t v = 0; v < n_volumes; ++v) {
            const DecompositionPlan& plan = plans[v];
            if (engine_geom == nullptr || !(*engine_geom == plan.geometry)) {
              engine.emplace(plan.geometry, options.filter);
              engine_geom = &plan.geometry;
            }
            const int row = plan.row_of(rank);
            const int col = plan.col_of(rank);
            for (std::size_t t = 0; t < plan.rounds; ++t) {
              const std::size_t s = plan.owned_projection(row, col, t);
              Image2D img(plan.geometry.nu, plan.geometry.nv,
                          /*zero_fill=*/false);
              filter_timer.time("load", [&] {
                fs.read_object(object_name(volumes[v].input_prefix, s),
                               img.data(), img.bytes());
              });
              filter_timer.time("filter", [&] { engine->apply(img, fft_ws); });
              if (!q_filtered.push(Filtered{v, s, std::move(img)})) {
                throw QueueClosedError(
                    "iFDK streaming: filtered-projection queue closed before "
                    "all volumes were delivered");
              }
            }
          }
        } catch (...) {
          filter_error = std::current_exception();
        }
        q_filtered.close();
      });
    }

    // ---- Bp-thread: accumulate rounds; hand each finished slab over -------
    StageTimer bp_timer;
    std::thread bp_thread([&] {
      std::optional<bp::Backprojector> backprojector;
      std::vector<geo::Mat34> matrices;
      const geo::CbctGeometry* bp_geom = nullptr;
      Volume slab;
      // (Re)builds the per-volume kernel state: new projection matrices on
      // a geometry change, a new Backprojector when the geometry or this
      // rank's slab assignment (row, slab_h) changed, and a fresh
      // zero-filled slab pair in the volume's own dimensions.
      auto prepare_volume = [&](std::size_t v) {
        const DecompositionPlan& plan = plans[v];
        const bool geom_changed =
            bp_geom == nullptr || !(*bp_geom == plan.geometry);
        if (geom_changed) {
          matrices = geo::make_all_projection_matrices(plan.geometry);
        }
        if (geom_changed || v == 0 || !plans[v - 1].same_grid(plan)) {
          bp::BpConfig bp_cfg;
          bp_cfg.batch = options.bp_batch;
          bp_cfg.simd_backend = options.simd_backend;
          bp_cfg.k_begin =
              static_cast<std::size_t>(plan.row_of(rank)) * plan.slab_h;
          bp_cfg.k_half = plan.slab_h;
          backprojector.emplace(plan.geometry, bp_cfg);
        }
        bp_geom = &plan.geometry;
        slab = Volume(plan.geometry.nx, plan.geometry.ny, 2 * plan.slab_h,
                      VolumeLayout::kZMajor, /*zero_fill=*/true);
      };
      std::size_t current_vol = 0;
      std::size_t rounds_done = 0;
      bool prepared = false;
      while (auto round = q_gathered.pop()) {
        if (bp_error) continue;  // drain remaining rounds after a failure
        try {
          IFDK_ASSERT(round->vol == current_vol);
          const DecompositionPlan& plan = plans[current_vol];
          if (!prepared) {
            prepare_volume(current_vol);
            prepared = true;
          }
          for (const Filtered& f : round->images) {
            device.charge_h2d(f.image.bytes());
          }
          std::vector<Image2D> images;
          std::vector<geo::Mat34> mats;
          images.reserve(round->images.size());
          mats.reserve(round->images.size());
          for (Filtered& f : round->images) {
            mats.push_back(matrices[f.index]);
            images.push_back(std::move(f.image));
          }
          bp_timer.time("backprojection", [&] {
            backprojector->accumulate(slab, images, mats);
          });
          const Problem sub{
              {plan.geometry.nu, plan.geometry.nv, images.size()},
              {plan.geometry.nx, plan.geometry.ny, 2 * plan.slab_h}};
          device.charge_kernel(
              kernel_model.kernel_seconds(bp::KernelVariant::kL1Tran, sub));
          if (++rounds_done == plan.rounds) {
            bp_timer.time("d2h", [&] { device.charge_d2h(slab.bytes()); });
            if (!q_slabs.push(SlabPair{current_vol, std::move(slab)})) {
              throw QueueClosedError(
                  "iFDK streaming: slab queue closed before all volumes were "
                  "back-projected");
            }
            rounds_done = 0;
            ++current_vol;
            if (current_vol < n_volumes) {
              prepare_volume(current_vol);
            }
          }
        } catch (...) {
          bp_error = std::current_exception();
          q_gathered.close();
          q_slabs.close();
        }
      }
      // The load+filter+gather+bp span, same meaning as the classic
      // pipeline's "compute" stage (the join below publishes the write).
      stats.compute = rank_timer.seconds();
      if (!bp_error) q_slabs.close();
    });

    // ---- Reduce-thread: transpose + row ireduce + store, volume by volume --
    // Runs the per-volume collective epochs while the worker threads above
    // are already filtering/gathering/back-projecting the NEXT volumes.
    StageTimer reduce_timer;
    double store_busy = 0;
    std::thread reduce_thread([&] {
      try {
        // The engine's writer plumbing: one multiplexed writer per rank
        // that roots ANY volume's row; which rank that is can change per
        // volume when the grid re-splits.
        std::vector<bool> roots(n_volumes, false);
        std::vector<int> store_bits(n_volumes, 0);
        for (std::size_t v = 0; v < n_volumes; ++v) {
          roots[v] = plans[v].col_of(rank) == 0;
          store_bits[v] =
              volumes[v].compress_store ? volumes[v].store_bits : 0;
        }
        engine::VolumeWriterSet writers(fs, options.queue_capacity, roots,
                                        store_bits);
        // One codec for the whole stream: the counters live in this rank's
        // stat sink and are only ever bumped from this thread.
        const mpi::WireCodec wire_codec = engine::make_wire_codec(&stats.wire);
        std::vector<float> partial;
        std::vector<float> reduced;
        for (std::size_t v = 0; v < n_volumes; ++v) {
          const DecompositionPlan& plan = plans[v];
          const int row = plan.row_of(rank);
          const int col = plan.col_of(rank);
          const std::size_t slice_px = plan.slice_px;
          const std::size_t pair_depth = 2 * plan.slab_h;
          mpi::Comm& row_comm = epoch_comms.of(v).row;
          auto slab = q_slabs.pop();
          if (!slab.has_value()) {
            throw QueueClosedError(
                "iFDK streaming: slab queue closed before all volumes were "
                "reduced");
          }
          IFDK_ASSERT(slab->vol == v);
          partial.resize(plan.slab_floats());
          reduced.resize(col == 0 ? plan.slab_floats() : 0);
          reduce_timer.time("transpose", [&] {
            for (std::size_t k = 0; k < pair_depth; ++k) {
              engine::extract_zmajor_slice(slab->slab.data(),
                                           plan.geometry.nx, plan.geometry.ny,
                                           pair_depth, k,
                                           partial.data() + k * slice_px);
            }
          });
          std::size_t next_slice = 0;
          bool stream_open = true;
          mpi::Comm::SegmentCallback on_segment;
          if (col == 0) {
            on_segment = [&](std::size_t offset, std::size_t length) {
              const std::size_t prefix = offset + length;
              while (next_slice < pair_depth &&
                     (next_slice + 1) * slice_px <= prefix) {
                const float* src = reduced.data() + next_slice * slice_px;
                if (stream_open) {
                  // A poisoned stream (write error on THIS volume) refuses
                  // further slices; volume v fails at finish_volume below
                  // while every other volume keeps flowing.
                  stream_open = writers.enqueue(
                      v,
                      object_name(volumes[v].output_prefix,
                                  plan.global_slice(row, next_slice)),
                      std::vector<float>(src, src + slice_px));
                }
                ++next_slice;
              }
            };
          }
          const std::uint64_t tags_before =
              row_comm.collective_tags_reserved();
          mpi::Comm::CollectiveRequest req = row_comm.ireduce(
              partial.data(), col == 0 ? reduced.data() : nullptr,
              partial.size(), mpi::ReduceOp::kSum, /*root=*/0,
              options.reduce_segment_floats, std::move(on_segment), algo,
              options.compress_wire ? &wire_codec : nullptr);
          reduce_timer.time("reduce", [&] { req.wait(); });
          engine::assert_tag_budget(
              tags_before, row_comm.collective_tags_reserved(),
              plan.reduce_tag_budget(),
              "row-reduce epoch exceeded the plan's tag budget");
          if (col == 0) {
            reduce_timer.time("store", [&] {
              stats.volume_errors[v] = writers.finish_volume(v);
            });
            stats.store[v] = writers.volume_store_stats(v);
          }
        }
        writers.finish();  // all stream errors were claimed above
        store_busy = writers.busy_seconds();
      } catch (...) {
        reduce_error = std::current_exception();
        // Unblock a Bp-thread stalled on the slab handoff; the closed queue
        // propagates the shutdown up the pipeline.
        q_slabs.close();
      }
    });

    // ---- Worker (main) thread: filter (fused) + column gather per round ----
    StageTimer main_timer;
    // Both gather buffers are sized for the largest rows x pixels in the
    // stream, so a geometry change never resizes a buffer with an exchange
    // still in flight into its sibling.
    std::vector<float> gather_recv[2];
    gather_recv[0].resize(max_gather_floats);
    gather_recv[1].resize(max_gather_floats);
    // Repackages round `t` of volume `v` from the rank-ordered buffer.
    auto deliver_round = [&](std::size_t v, std::size_t t,
                             const std::vector<float>& recv) {
      const DecompositionPlan& plan = plans[v];
      const int col = plan.col_of(rank);
      std::vector<Filtered> images;
      images.reserve(static_cast<std::size_t>(plan.grid.rows));
      for (int r = 0; r < plan.grid.rows; ++r) {
        Image2D img(plan.geometry.nu, plan.geometry.nv, /*zero_fill=*/false);
        const float* src =
            recv.data() + static_cast<std::size_t>(r) * plan.pixels;
        std::copy(src, src + plan.pixels, img.data());
        images.push_back(
            Filtered{v, plan.owned_projection(r, col, t), std::move(img)});
      }
      if (!q_gathered.push(Round{v, std::move(images)})) {
        throw QueueClosedError(
            "iFDK streaming: gathered-projection queue closed before all "
            "rounds were delivered");
      }
    };
    try {
      if (options.fuse_filter_gather) {
        // Same-thread overlap via irecv: post round g's receives, then
        // load+filter round g+1 while g's blocks are in transit, then wait
        // g's receives and deliver. Tags are per-round user tags — the
        // column communicators are framework-private, so the space is free
        // (and per-comm, so a re-split epoch cannot collide with an earlier
        // grid's in-flight round).
        std::optional<filter::FilterEngine> engine;
        const geo::CbctGeometry* engine_geom = nullptr;
        // Worker-owned FFT scratch for the fused filter stage.
        fft::Workspace fft_ws;
        std::vector<mpi::Comm::Request> reqs[2];
        bool have_pending = false;
        std::size_t pending_v = 0;
        std::size_t pending_t = 0;
        std::size_t pending_buf = 0;
        std::size_t g = 0;  // global round counter across the whole stream
        for (std::size_t v = 0; v < n_volumes; ++v) {
          const DecompositionPlan& plan = plans[v];
          if (engine_geom == nullptr || !(*engine_geom == plan.geometry)) {
            engine.emplace(plan.geometry, options.filter);
            engine_geom = &plan.geometry;
          }
          const int row = plan.row_of(rank);
          const int col = plan.col_of(rank);
          mpi::Comm& col_comm = epoch_comms.of(v).col;
          const std::uint64_t tags_before =
              col_comm.collective_tags_reserved();
          for (std::size_t t = 0; t < plan.rounds; ++t, ++g) {
            const std::size_t s = plan.owned_projection(row, col, t);
            Image2D img(plan.geometry.nu, plan.geometry.nv,
                        /*zero_fill=*/false);
            main_timer.time("load", [&] {
              fs.read_object(object_name(volumes[v].input_prefix, s),
                             img.data(), img.bytes());
            });
            main_timer.time("filter", [&] { engine->apply(img, fft_ws); });
            main_timer.time("allgather", [&] {
              const int tag = static_cast<int>(g % (std::size_t{1} << 20));
              std::vector<float>& buf = gather_recv[g % 2];
              std::copy(img.data(), img.data() + plan.pixels,
                        buf.data() +
                            static_cast<std::size_t>(row) * plan.pixels);
              std::vector<mpi::Comm::Request>& rr = reqs[g % 2];
              rr.clear();
              for (int r = 0; r < plan.grid.rows; ++r) {
                if (r == row) continue;
                col_comm.isend(r, tag, img.data(),
                               plan.pixels * sizeof(float))
                    .wait();  // buffered: completion is immediate
                rr.push_back(col_comm.irecv(
                    r, tag,
                    buf.data() + static_cast<std::size_t>(r) * plan.pixels,
                    plan.pixels * sizeof(float)));
              }
            });
            if (have_pending) {
              main_timer.time("allgather", [&] {
                mpi::Comm::wait_all(reqs[pending_buf]);
              });
              deliver_round(pending_v, pending_t, gather_recv[pending_buf]);
            }
            pending_v = v;
            pending_t = t;
            pending_buf = g % 2;
            have_pending = true;
          }
          // The fused exchange runs over user tags: its collective budget
          // is zero, and the plan says so.
          engine::assert_tag_budget(
              tags_before, col_comm.collective_tags_reserved(),
              plan.gather_tag_budget(/*fused=*/true),
              "fused gather epoch reserved collective tags");
        }
        if (have_pending) {
          main_timer.time("allgather",
                          [&] { mpi::Comm::wait_all(reqs[pending_buf]); });
          deliver_round(pending_v, pending_t, gather_recv[pending_buf]);
        }
      } else {
        // Dedicated filtering thread feeds us; double-buffered nonblocking
        // ring gather across the whole round stream, volume boundaries
        // included (round t of volume v+1 is initiated while the last round
        // of volume v is still outstanding — even across a grid re-split,
        // where the two rounds ride different communicators).
        mpi::Comm::CollectiveRequest pending;
        std::size_t pending_v = 0;
        std::size_t pending_t = 0;
        std::size_t pending_buf = 0;
        std::size_t g = 0;
        for (std::size_t v = 0; v < n_volumes; ++v) {
          const DecompositionPlan& plan = plans[v];
          const int row = plan.row_of(rank);
          const int col = plan.col_of(rank);
          mpi::Comm& col_comm = epoch_comms.of(v).col;
          const std::uint64_t tags_before =
              col_comm.collective_tags_reserved();
          for (std::size_t t = 0; t < plan.rounds; ++t, ++g) {
            auto mine = q_filtered.pop();
            if (!mine.has_value()) {
              throw QueueClosedError(
                  "iFDK streaming: filtered-projection queue closed before "
                  "all rounds were gathered");
            }
            IFDK_ASSERT(mine->vol == v &&
                        mine->index == plan.owned_projection(row, col, t));
            mpi::Comm::CollectiveRequest req;
            main_timer.time("allgather", [&] {
              req = col_comm.iallgather_ring(mine->image.data(),
                                             plan.pixels * sizeof(float),
                                             gather_recv[g % 2].data());
            });
            if (pending.valid()) {
              main_timer.time("allgather", [&] { pending.wait(); });
              deliver_round(pending_v, pending_t, gather_recv[pending_buf]);
            }
            pending = std::move(req);
            pending_v = v;
            pending_t = t;
            pending_buf = g % 2;
          }
          // All of volume v's rings are initiated (and their tags reserved)
          // by now, even though the last one may still be in flight.
          engine::assert_tag_budget(
              tags_before, col_comm.collective_tags_reserved(),
              plan.gather_tag_budget(/*fused=*/false),
              "column gather epoch exceeded the plan's tag budget");
        }
        if (pending.valid()) {
          main_timer.time("allgather", [&] { pending.wait(); });
          deliver_round(pending_v, pending_t, gather_recv[pending_buf]);
        }
      }
    } catch (...) {
      main_error = std::current_exception();
      // Sibling threads of THIS rank may be blocked inside collectives whose
      // remote peers will never progress past our failure; poison the world
      // before joining them so every epoch unwinds instead of hanging. The
      // local root cause still wins the error report (run_world prefers
      // non-abort errors).
      world.abort_world();
    }
    q_gathered.close();
    q_filtered.close();

    if (filtering_thread.joinable()) filtering_thread.join();
    bp_thread.join();
    reduce_thread.join();

    // Rethrow the root cause: real failures > world-abort symptoms >
    // queue-shutdown symptoms (same policy as run_distributed).
    const std::exception_ptr errors[] = {bp_error, reduce_error, main_error,
                                         filter_error};
    if (const std::exception_ptr first = engine::pick_root_cause(errors)) {
      std::rethrow_exception(first);
    }
    world.barrier();

    ctx.wall.merge(filter_timer);
    ctx.wall.merge(bp_timer);
    ctx.wall.merge(main_timer);
    ctx.wall.merge(reduce_timer);
    ctx.wall.set_max("store", store_busy);
    ctx.wall.add("compute", stats.compute);
    stats.v_h2d = device.virtual_h2d_seconds();
    stats.v_kernel = device.virtual_kernel_seconds();
    stats.v_d2h = device.virtual_d2h_seconds();
    ctx.total = rank_timer.seconds();
    if (ctx.total > 0) {
      ctx.efficiency.add(
          "filter_thread",
          (filter_timer.get("load") + filter_timer.get("filter")) /
              ctx.total);
      ctx.efficiency.add(
          "main_thread",
          (main_timer.get("load") + main_timer.get("filter") +
           main_timer.get("allgather")) /
              ctx.total);
      ctx.efficiency.add("bp_thread",
                         bp_timer.get("backprojection") / ctx.total);
      ctx.efficiency.add(
          "reduce_thread",
          (reduce_timer.get("transpose") + reduce_timer.get("reduce") +
           reduce_timer.get("store")) /
              ctx.total);
      ctx.efficiency.add("store_thread", store_busy / ctx.total);
    }
  }

 private:
  pfs::ParallelFileSystem& fs_;
  const IfdkOptions& options_;
  std::span<const JobSpec> volumes_;
  std::span<const DecompositionPlan> plans_;
  std::uint64_t max_slab_bytes_;
  std::uint64_t max_batch_bytes_;
  std::size_t max_gather_floats_;
  mpi::ReduceAlgo algo_;
  std::vector<StreamRankStats> rank_stats_;
};

/// The single overlapped execution core (Fig. 4a/4b with streaming epochs):
/// run_streaming validates the jobs and forwards here, and run_distributed's
/// overlapped path wraps it with a one-volume stream. Callers have already
/// validated `volumes`; this function builds the per-volume plans and runs
/// the FDK workload on the engine.
StreamingStats stream_core(const geo::CbctGeometry& geometry,
                           pfs::ParallelFileSystem& fs,
                           const IfdkOptions& options,
                           std::span<const JobSpec> volumes) {
  const std::size_t n_volumes = volumes.size();
  // One DecompositionPlan per volume: the volume's own geometry when set,
  // the run geometry otherwise. Validation errors name the volume. With
  // more than one volume the bp/reduce double buffer keeps TWO slab pairs
  // resident, which the plan's memory-aware row selection accounts for.
  const std::size_t resident = n_volumes > 1 ? 2 : 1;
  std::vector<DecompositionPlan> plans;
  plans.reserve(n_volumes);
  for (std::size_t v = 0; v < n_volumes; ++v) {
    plans.push_back(DecompositionPlan::make(
        volumes[v].geometry.value_or(geometry), options,
        static_cast<int>(v), resident));
  }

  StreamingStats out;
  out.volumes = static_cast<int>(n_volumes);
  out.fused_filter_gather = options.fuse_filter_gather;
  out.volume_errors.assign(n_volumes, "");
  out.plans = plans;
  // The ONLY place StreamingStats::grid is assigned: always the first
  // executed plan's grid, so the summary field can never drift from `plans`
  // (a zero-volume stream still validates the run configuration and reports
  // the grid it would have used).
  out.grid = out.plans.empty()
                 ? DecompositionPlan::make(geometry, options).grid
                 : out.plans.front().grid;
  if (n_volumes == 0) {
    return out;
  }

  // Stream-level memory constraint: the resident slab pairs span *adjacent*
  // volumes of possibly different geometries, so the worst case is the
  // largest slab in the stream, twice, plus the largest batch.
  std::uint64_t max_slab_bytes = 0;
  std::uint64_t max_batch_bytes = 0;
  std::size_t max_gather_floats = 0;  // largest rows * pixels in the stream
  for (const DecompositionPlan& plan : plans) {
    max_slab_bytes = std::max(max_slab_bytes, plan.slab_bytes());
    max_batch_bytes = std::max(
        max_batch_bytes, static_cast<std::uint64_t>(plan.bp_batch) *
                             plan.pixels * sizeof(float));
    max_gather_floats =
        std::max(max_gather_floats,
                 static_cast<std::size_t>(plan.grid.rows) * plan.pixels);
  }
  if (resident * max_slab_bytes + max_batch_bytes >
      options.device.memory_bytes) {
    throw DeviceOutOfMemory(
        "streaming needs " +
        std::to_string(resident * max_slab_bytes + max_batch_bytes) +
        " B of device memory (" + std::to_string(resident) +
        " resident slab pair(s) of up to " + std::to_string(max_slab_bytes) +
        " B + a batch of " + std::to_string(max_batch_bytes) +
        " B) but the device has " +
        std::to_string(options.device.memory_bytes) + " B");
  }

  FdkStreamWorkload workload(fs, options, volumes, plans, max_slab_bytes,
                             max_batch_bytes, max_gather_floats);
  const engine::EngineStats engine_stats =
      engine::run(options.ranks, workload);

  out.wall = engine_stats.wall;
  out.overlap_efficiency = engine_stats.efficiency;
  const double wall_total = engine_stats.wall_total;
  // Every column-0 rank is a row root, so per-volume store accounting is
  // scattered across R ranks: merge by summing the byte/error sums and
  // maxing the PSNR peak (the merged stats ARE the whole volume's store).
  std::vector<pfs::StreamStats> store(n_volumes);
  for (std::size_t r = 0; r < static_cast<std::size_t>(options.ranks); ++r) {
    const StreamRankStats& rs = workload.rank_stats(r);
    out.device_model.set_max("v_h2d", rs.v_h2d);
    out.device_model.set_max("v_kernel", rs.v_kernel);
    out.device_model.set_max("v_d2h", rs.v_d2h);
    out.wire_raw_bytes += rs.wire.raw_bytes;
    out.wire_encoded_bytes += rs.wire.encoded_bytes;
    for (std::size_t v = 0; v < n_volumes; ++v) {
      if (out.volume_errors[v].empty() && !rs.volume_errors[v].empty()) {
        out.volume_errors[v] = rs.volume_errors[v];
      }
      store[v].raw_bytes += rs.store[v].raw_bytes;
      store[v].stored_bytes += rs.store[v].stored_bytes;
      store[v].sum_squared_error += rs.store[v].sum_squared_error;
      store[v].peak = std::max(store[v].peak, rs.store[v].peak);
      store[v].values += rs.store[v].values;
    }
  }
  out.volume_store_psnr_db.reserve(n_volumes);
  for (std::size_t v = 0; v < n_volumes; ++v) {
    out.store_raw_bytes += store[v].raw_bytes;
    out.store_stored_bytes += store[v].stored_bytes;
    out.volume_store_psnr_db.push_back(store[v].psnr_db());
  }
  out.wall_total = wall_total;
  out.volumes_per_second =
      wall_total > 0 ? static_cast<double>(n_volumes) / wall_total : 0;
  return out;
}

}  // namespace

StreamingStats run_streaming(const geo::CbctGeometry& geometry,
                             pfs::ParallelFileSystem& fs,
                             const IfdkOptions& options,
                             std::span<const JobSpec> volumes) {
  // The public entry point is validation + forwarding: every JobSpec is
  // checked with its volume index (so a bad frame in a long series names
  // itself), then the shared execution core runs the stream. The service
  // layer calls the same core through this function after admission.
  options.validate();
  for (std::size_t v = 0; v < volumes.size(); ++v) {
    volumes[v].validate(static_cast<int>(v));
    if (volumes[v].workload != WorkloadKind::kFdk) {
      throw ConfigError("volume " + std::to_string(v) +
                        ": run_streaming executes FDK jobs only; iterative "
                        "jobs dispatch through iterative::run_iterative (or "
                        "the service front door)");
    }
  }
  return stream_core(geometry, fs, options, volumes);
}

}  // namespace ifdk
