#include "ifdk/plan.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "minimpi/minimpi.h"

namespace ifdk {

namespace {

/// "volume 2: " when the plan belongs to a streaming volume, "" otherwise —
/// streaming validation errors must name the offending volume so a bad
/// frame in a long 4D-CT series can be found from the message alone.
std::string volume_prefix(int volume_index) {
  return volume_index >= 0 ? "volume " + std::to_string(volume_index) + ": "
                           : std::string{};
}

}  // namespace

// The plan-level default must track the minimpi tuning constant (the header
// cannot include minimpi.h just for a default value).
static_assert(IfdkOptions{}.reduce_segment_floats ==
              mpi::Comm::kDefaultReduceSegment);

void IfdkOptions::validate() const {
  IFDK_REQUIRE(ranks >= 1, "ranks (" + std::to_string(ranks) +
                               ") must be at least 1");
  IFDK_REQUIRE(bp_batch >= 1, "bp_batch must be positive");
  IFDK_REQUIRE(queue_capacity >= 1, "queue_capacity must be positive");
  IFDK_REQUIRE(reduce_segment_floats > 0,
               "reduce_segment_floats must be positive");
}

DecompositionPlan DecompositionPlan::make(const geo::CbctGeometry& geometry,
                                          const IfdkOptions& options,
                                          int volume_index,
                                          std::size_t resident_slabs) {
  geometry.validate();
  options.validate();
  IFDK_REQUIRE(resident_slabs >= 1, "resident_slabs must be at least 1");
  const std::string prefix = volume_prefix(volume_index);
  const Problem problem = geometry.problem();

  int rows = options.rows;
  if (rows <= 0) {
    // Eq. (7) against the paper's micro-benchmark constants, then the same
    // §4.1.5 doubling loop against the *actual* simulated device, with
    // resident_slabs slab pairs (streaming keeps the bp/reduce double
    // buffer resident).
    rows = perfmodel::select_rows(problem, options.microbench);
    rows = perfmodel::constrain_rows_to_memory(
        problem, rows, options.device.memory_bytes,
        static_cast<std::uint64_t>(options.bp_batch) * geometry.nu *
            geometry.nv * sizeof(float),
        resident_slabs);
  }

  if (options.ranks < rows || options.ranks % rows != 0) {
    throw ConfigError(prefix + "ranks (" + std::to_string(options.ranks) +
                      ") must be a positive multiple of the row count R (" +
                      std::to_string(rows) + ")");
  }
  if (geometry.np % static_cast<std::size_t>(options.ranks) != 0) {
    throw ConfigError(prefix + "Np (" + std::to_string(geometry.np) +
                      ") must divide evenly across the rank grid (ranks=" +
                      std::to_string(options.ranks) + ")");
  }
  if (geometry.nz % (2 * static_cast<std::size_t>(rows)) != 0) {
    throw ConfigError(prefix + "Nz (" + std::to_string(geometry.nz) +
                      ") must be divisible by 2*rows (" +
                      std::to_string(2 * rows) +
                      "): each row owns a symmetric slab pair");
  }

  DecompositionPlan plan;
  plan.grid = {rows, options.ranks / rows};
  plan.geometry = geometry;
  plan.slab_h = geometry.nz / (2 * static_cast<std::size_t>(rows));
  plan.rounds = geometry.np / static_cast<std::size_t>(options.ranks);
  plan.pixels = geometry.nu * geometry.nv;
  plan.slice_px = geometry.nx * geometry.ny;
  plan.reduce_segment_floats = options.reduce_segment_floats;
  plan.bp_batch = options.bp_batch;
  plan.resident_slabs = resident_slabs;
  plan.check_invariants();
  return plan;
}

SlabExtent DecompositionPlan::slab_extent(int row) const {
  const std::size_t r = static_cast<std::size_t>(row);
  return SlabExtent{r * slab_h, (r + 1) * slab_h,
                    geometry.nz - (r + 1) * slab_h, geometry.nz - r * slab_h};
}

std::size_t DecompositionPlan::global_slice(int row,
                                            std::size_t local_k) const {
  return local_k < slab_h
             ? static_cast<std::size_t>(row) * slab_h + local_k
             : geometry.nz - (static_cast<std::size_t>(row) + 1) * slab_h +
                   (local_k - slab_h);
}

std::size_t DecompositionPlan::column_base(int col) const {
  return static_cast<std::size_t>(col) * rounds *
         static_cast<std::size_t>(grid.rows);
}

std::size_t DecompositionPlan::owned_projection(int row, int col,
                                                std::size_t t) const {
  return column_base(col) + t * static_cast<std::size_t>(grid.rows) +
         static_cast<std::size_t>(row);
}

std::vector<std::size_t> DecompositionPlan::projection_shard(int row,
                                                             int col) const {
  std::vector<std::size_t> shard;
  shard.reserve(rounds);
  for (std::size_t t = 0; t < rounds; ++t) {
    shard.push_back(owned_projection(row, col, t));
  }
  return shard;
}

std::uint64_t DecompositionPlan::reduce_segments() const {
  return (slab_floats() + reduce_segment_floats - 1) / reduce_segment_floats;
}

std::uint64_t DecompositionPlan::iter_reduce_segments() const {
  return (volume_floats() + reduce_segment_floats - 1) /
         reduce_segment_floats;
}

std::uint64_t DecompositionPlan::iter_iteration_tag_budget(
    int subsets) const {
  return static_cast<std::uint64_t>(subsets) * iter_sweep_tag_budget() + 2;
}

std::uint64_t DecompositionPlan::iter_setup_tag_budget(int subsets) const {
  return static_cast<std::uint64_t>(subsets) * iter_sweep_tag_budget();
}

std::uint64_t DecompositionPlan::iter_allreduce_bytes_per_sweep() const {
  return static_cast<std::uint64_t>(volume_floats()) * sizeof(float);
}

std::uint64_t DecompositionPlan::iter_device_bytes(int subsets) const {
  // x + one accumulator + per-subset column norms, all full volumes, plus
  // this rank's projection shard and its forward-projection scratch.
  return (2 + static_cast<std::uint64_t>(subsets)) * volume_floats() *
             sizeof(float) +
         2 * static_cast<std::uint64_t>(rounds) * pixels * sizeof(float);
}

std::uint64_t DecompositionPlan::allgather_bytes_per_round() const {
  return static_cast<std::uint64_t>(grid.rows - 1) * pixels * sizeof(float);
}

std::uint64_t DecompositionPlan::device_bytes() const {
  return static_cast<std::uint64_t>(resident_slabs) * slab_bytes() +
         static_cast<std::uint64_t>(bp_batch) * pixels * sizeof(float);
}

void DecompositionPlan::check_device_fit(const gpusim::DeviceSpec& spec) const {
  if (device_bytes() > spec.memory_bytes) {
    throw DeviceOutOfMemory(
        "decomposition needs " + std::to_string(device_bytes()) +
        " B of device memory (" + std::to_string(resident_slabs) +
        " slab pair(s) of " + std::to_string(slab_bytes()) + " B + a " +
        std::to_string(bp_batch) + "-projection batch) but the device has " +
        std::to_string(spec.memory_bytes) + " B; increase rows R (" +
        std::to_string(grid.rows) + ") or shrink the batch");
  }
}

void DecompositionPlan::check_invariants() const {
  // The R slab pairs disjointly cover [0, Nz).
  std::vector<bool> slice_owned(geometry.nz, false);
  for (int row = 0; row < grid.rows; ++row) {
    const SlabExtent e = slab_extent(row);
    IFDK_ASSERT_MSG(e.low_begin < e.low_end && e.low_end <= e.high_begin &&
                        e.high_begin < e.high_end &&
                        e.high_end <= geometry.nz,
                    "slab extent out of order");
    for (std::size_t local_k = 0; local_k < 2 * slab_h; ++local_k) {
      const std::size_t k = global_slice(row, local_k);
      IFDK_ASSERT_MSG(k < geometry.nz && !slice_owned[k],
                      "slab pairs must disjointly cover [0, Nz)");
      IFDK_ASSERT_MSG((local_k < slab_h &&
                       k >= e.low_begin && k < e.low_end) ||
                          (local_k >= slab_h &&
                           k >= e.high_begin && k < e.high_end),
                      "global_slice must land inside the row's slab extent");
      slice_owned[k] = true;
    }
  }
  for (std::size_t k = 0; k < geometry.nz; ++k) {
    IFDK_ASSERT_MSG(slice_owned[k], "slab pairs must cover every slice");
  }

  // The R*C projection shards disjointly cover [0, Np).
  std::vector<bool> proj_owned(geometry.np, false);
  for (int col = 0; col < grid.columns; ++col) {
    for (int row = 0; row < grid.rows; ++row) {
      for (const std::size_t s : projection_shard(row, col)) {
        IFDK_ASSERT_MSG(s < geometry.np && !proj_owned[s],
                        "projection shards must disjointly cover [0, Np)");
        proj_owned[s] = true;
      }
    }
  }
  for (std::size_t s = 0; s < geometry.np; ++s) {
    IFDK_ASSERT_MSG(proj_owned[s], "projection shards must cover every index");
  }
}

}  // namespace ifdk
