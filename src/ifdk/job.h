// The job-centric request type of the reconstruction service front door.
//
// A JobSpec describes ONE reconstruction request end to end: where its
// projections live, where its slices go, which geometry decomposes it,
// which workload reconstructs it (FDK or an iterative solver), and — for
// the multi-tenant scheduler (src/service) — who asked, how urgent it
// is, and by when it should be done. The same type is what run_streaming
// consumes per volume (a streamed 4D-CT frame IS a job with default
// scheduling fields), so the service, the streaming runtime, and the
// simulator all speak one request vocabulary.
#pragma once

#include <optional>
#include <string>

#include "geometry/cbct.h"
#include "iterative/params.h"

namespace ifdk {

/// Which reconstruction workload a job runs on the execution engine.
enum class WorkloadKind {
  kFdk,        ///< filtered back-projection (the streaming FDK pipeline)
  kIterative,  ///< SART / OS-SART / MLEM via iterative::run_iterative
};

/// One reconstruction request: a volume to reconstruct from staged
/// projections, plus the scheduling metadata the service front door orders
/// the queue by. Aggregate-initializable with the historical field order
/// `{input_prefix, output_prefix, geometry}`; the workload defaults to FDK
/// and the scheduling fields to a lowest-urgency anonymous job.
struct JobSpec {
  /// Projections are read from `<input_prefix><s>`, s in [0, Np).
  std::string input_prefix;
  /// Slices are written to `<output_prefix><k>`, k in [0, Nz).
  std::string output_prefix;
  /// Per-job geometry override; unset = the run/service default geometry.
  std::optional<geo::CbctGeometry> geometry = std::nullopt;

  // -- workload selector ----------------------------------------------------

  /// Which reconstruction algorithm family runs this job. FDK jobs batch
  /// through run_streaming; iterative jobs dispatch one at a time through
  /// iterative::run_iterative.
  WorkloadKind workload = WorkloadKind::kFdk;
  /// Solver parameters for kIterative jobs (ignored by FDK); validated as
  /// part of JobSpec::validate.
  iterative::IterParams iterative = {};

  // -- store options --------------------------------------------------------

  /// Store this job's slices as quantized+RLE CompressedVolume objects
  /// (the lossy postproc codec) instead of raw floats. Opt-in per job: the
  /// store shrinks by the achieved ratio at a bounded quantization error,
  /// and the per-volume PSNR and ratio are recorded in StreamingStats.
  /// Read the slices back with load_volume(..., compressed_store=true).
  bool compress_store = false;
  /// Quantization depth of the compressed store, 8..16 bits per voxel
  /// (only meaningful with compress_store=true).
  int store_bits = 12;

  // -- scheduling metadata (service layer; ignored by run_streaming) --------

  /// Who submitted the job; ServiceStats aggregates throughput per tenant.
  std::string tenant = "default";
  /// Dispatch priority: higher runs first. The scheduler never reorders
  /// across priority bands (a deadline cannot promote a low-priority job
  /// past a high-priority one — EDF applies within a band only).
  int priority = 0;
  /// Optional completion deadline in seconds from submit (the SLO the
  /// service predicts against via cluster::simulate_stream). Within one
  /// priority band, earlier deadlines dispatch first; unset sorts last.
  std::optional<double> deadline_s = std::nullopt;

  /// Validates the request shape: both prefixes must be non-empty, a
  /// per-job geometry, when set, must be self-consistent
  /// (geo::CbctGeometry::validate), a compressed store's quantization depth
  /// must be 8..16 bits, and an iterative job's solver
  /// parameters must pass IterParams::validate. Throws ConfigError naming
  /// the offending field; when `volume_index >= 0` the message is prefixed
  /// with the offending volume ("volume 2: ..."), matching the plan
  /// layer's convention. Called by run_streaming per volume and by
  /// service::ReconService::submit before admission.
  void validate(int volume_index = -1) const;
};

}  // namespace ifdk
