// The job-centric request type of the reconstruction service front door.
//
// A JobSpec describes ONE reconstruction request end to end: where its
// projections live, where its slices go, which geometry decomposes it, and —
// for the multi-tenant scheduler (src/service) — who asked, how urgent it
// is, and by when it should be done. The same type is what run_streaming
// consumes per volume (a streamed 4D-CT frame IS a job with default
// scheduling fields), so the service, the streaming runtime, and the
// simulator all speak one request vocabulary.
//
// StreamVolume, the pre-service name of the first three fields, remains a
// source-compatible alias below; new code should say JobSpec.
#pragma once

#include <optional>
#include <string>

#include "geometry/cbct.h"

namespace ifdk {

/// One reconstruction request: a volume to reconstruct from staged
/// projections, plus the scheduling metadata the service front door orders
/// the queue by. Aggregate-initializable with the historical StreamVolume
/// field order `{input_prefix, output_prefix, geometry}`; the scheduling
/// fields default to a lowest-urgency anonymous job.
struct JobSpec {
  /// Projections are read from `<input_prefix><s>`, s in [0, Np).
  std::string input_prefix;
  /// Slices are written to `<output_prefix><k>`, k in [0, Nz).
  std::string output_prefix;
  /// Per-job geometry override; unset = the run/service default geometry.
  std::optional<geo::CbctGeometry> geometry = std::nullopt;

  // -- scheduling metadata (service layer; ignored by run_streaming) --------

  /// Who submitted the job; ServiceStats aggregates throughput per tenant.
  std::string tenant = "default";
  /// Dispatch priority: higher runs first. The scheduler never reorders
  /// across priority bands (a deadline cannot promote a low-priority job
  /// past a high-priority one — EDF applies within a band only).
  int priority = 0;
  /// Optional completion deadline in seconds from submit (the SLO the
  /// service predicts against via cluster::simulate_stream). Within one
  /// priority band, earlier deadlines dispatch first; unset sorts last.
  std::optional<double> deadline_s = std::nullopt;

  /// Validates the request shape: both prefixes must be non-empty and a
  /// per-job geometry, when set, must be self-consistent
  /// (geo::CbctGeometry::validate). Throws ConfigError naming the offending
  /// field; when `volume_index >= 0` the message is prefixed with the
  /// offending volume ("volume 2: ..."), matching the plan layer's
  /// convention. Called by run_streaming per volume and by
  /// service::ReconService::submit before admission.
  void validate(int volume_index = -1) const;
};

/// Deprecated pre-service name for JobSpec (one frame of a 4D-CT time
/// series). Source-compatible — the first three JobSpec fields are exactly
/// the historical StreamVolume layout — but new code should say JobSpec.
using StreamVolume = JobSpec;

}  // namespace ifdk
