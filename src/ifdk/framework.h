// The iFDK distributed framework (paper Section 4).
//
// Nranks = R * C ranks form a 2-D grid (Fig. 3a; one rank per simulated
// GPU). Ranks are numbered column-major as in the paper's figure: column
// c = rank / R holds ranks c*R .. c*R + R - 1.
//
//   * Each *column* loads and filters a disjoint 1/C of the projections;
//     rank (r, c) loads indices { c*Np/C + t*R + r } and the column
//     AllGathers one projection per rank per round (Section 4.1.3).
//   * Each *row* owns one symmetric pair of Z-slabs of the volume
//     ("2*R sub-volumes", Fig. 3a) and back-projects its column's
//     projections into it with the proposed Algorithm-4 kernel.
//   * A single MPI-Reduce per row combines the C partial slab pairs
//     (Fig. 3b), and the row root stores the slabs to the PFS as Nz slices
//     of Nx x Ny (Section 4.1.3).
//
// Inside every rank three threads pipeline the work through two circular
// buffers exactly as Fig. 4a: Filtering-thread -> Main-thread (AllGather) ->
// Bp-thread. Projection *loading* is sharded across the column: each rank
// reads only its 1/R of the column's Np/C share and the AllGather fills in
// the rest, so no projection is read from the PFS more than once per column.
//
// With IfdkOptions::overlap (the default) the stages genuinely overlap the
// way Fig. 4 requires for the end-to-end time to approach the
// back-projection lower bound:
//   * the column AllGather is the nonblocking ring (iallgather_ring),
//     double-buffered across rounds — round t+1's exchange is initiated
//     before round t is handed to the Bp-thread, so a rank never serializes
//     "gather, then enqueue" against its neighbours;
//   * the row Reduce is the chunked, pipelined ireduce: the slab is
//     transposed to slice-major on every rank and reduced segment by
//     segment, so the fold of segment s overlaps the delivery of s+1 —
//     bitwise-identical to the blocking linear reduce;
//   * the row root streams every completed slice into a pfs::AsyncWriter,
//     so PFS stores overlap the tail of the reduce instead of starting
//     after it.
// overlap=false selects the blocking reference path; both paths produce
// bitwise-identical volumes (asserted by tests across all grid shapes).
//
// Wall-clock per stage is recorded per rank and merged, along with a
// per-thread overlap efficiency (busy/wall); a gpusim::Device per rank
// enforces the 16 GB memory constraint and keeps the modeled-V100 ledger.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/image.h"
#include "common/timer.h"
#include "common/volume.h"
#include "geometry/cbct.h"
#include "ifdk/job.h"
#include "ifdk/plan.h"
#include "perfmodel/model.h"
#include "pfs/pfs.h"

// Re-exported request vocabulary: ifdk::JobSpec lives in ifdk/job.h so the
// service layer can name it without pulling in the runtime; framework.h
// remains the one-stop include for runtime callers.

namespace ifdk {

struct IfdkStats {
  /// The R x C grid the run actually used (after Eq. (7) auto-selection).
  perfmodel::GridShape grid;
  /// Wall-clock stage seconds, max over ranks (the pipeline-critical rank):
  /// "load", "filter", "allgather", "backprojection", "d2h", "transpose"
  /// (overlapped path only), "reduce", "store", "compute"
  /// (load+filter+allgather+bp span).
  StageTimer wall;
  /// Modeled V100 seconds summed over the device ledger of the *slowest*
  /// rank: "v_h2d", "v_kernel", "v_d2h".
  StageTimer device_model;
  /// Per-thread overlap efficiency, max over ranks: busy seconds of each
  /// pipeline thread divided by that rank's wall-clock. Entries:
  /// "filter_thread" (load+filter), "main_thread" (column gather),
  /// "bp_thread" (back-projection), "reduce_thread" (transpose + row
  /// reduce + store drain; overlapped path only), "store_thread" (async
  /// writer; 0 unless overlapped). An efficiency near 1 means the thread —
  /// and therefore its stage — is the pipeline bottleneck; the paper's
  /// overlap claim holds when bp_thread dominates.
  StageTimer overlap_efficiency;
  /// Whether the overlapped pipeline ran (IfdkOptions::overlap).
  bool overlapped = false;
  double wall_total = 0;
  /// Bytes the framed row-reduce encoder was fed, summed over ranks
  /// (0 unless IfdkOptions::compress_wire on the overlapped path).
  std::size_t wire_raw_bytes = 0;
  /// Frame bytes that actually went on the wire (headers included).
  std::size_t wire_encoded_bytes = 0;
  /// Achieved wire compression ratio raw/encoded (1 when no framed traffic
  /// was sent).
  double wire_ratio() const {
    return wire_encoded_bytes == 0
               ? 1.0
               : static_cast<double>(wire_raw_bytes) /
                     static_cast<double>(wire_encoded_bytes);
  }
};

/// Aggregate result of a run_streaming call.
struct StreamingStats {
  /// The R x C grid of the FIRST volume (after Eq. (7) auto-selection);
  /// heterogeneous-geometry streams may re-split per volume — see `plans`.
  /// Always `plans.front().grid` (populated from the executed plan sequence
  /// in one place, so a volume-0 geometry override can never make the two
  /// drift); kept as a field only for callers that drop `plans`. Streams of
  /// zero volumes fall back to the run geometry's plan.
  perfmodel::GridShape grid;
  /// The per-volume decomposition plans the run actually executed, in
  /// volume order — hand these to cluster::simulate_stream to predict the
  /// same stream's throughput at scale.
  std::vector<DecompositionPlan> plans;
  /// Number of volumes pushed through the world.
  int volumes = 0;
  /// Wall-clock of the slowest rank, volume 0's first load to the last
  /// volume's store.
  double wall_total = 0;
  /// volumes / wall_total — the streaming throughput headline.
  double volumes_per_second = 0;
  /// Per-stage busy seconds summed over all volumes, max over ranks:
  /// "load", "filter", "allgather", "backprojection", "transpose",
  /// "reduce", "store", "d2h".
  StageTimer wall;
  /// Busy/wall per pipeline thread, max over ranks: "filter_thread" (0 in
  /// fused mode, where load+filter bill to the worker), "main_thread"
  /// (filter+gather worker), "bp_thread", "reduce_thread" (transpose +
  /// row-reduce + store drain), "store_thread" (async writer).
  StageTimer overlap_efficiency;
  /// Per-volume store outcome, merged over row roots: empty string =
  /// every slice of that volume was stored; otherwise the first error the
  /// writer hit. A failed volume never aborts the stream — later volumes
  /// keep flowing and must stay bit-exact (asserted by tests).
  std::vector<std::string> volume_errors;
  /// Whether the fused filter/gather worker ran (IfdkOptions).
  bool fused_filter_gather = false;
  /// Modeled V100 seconds summed over the device ledger of the slowest
  /// rank, whole stream: "v_h2d", "v_kernel", "v_d2h".
  StageTimer device_model;

  // -- compression accounting -----------------------------------------------

  /// Bytes the framed row-reduce encoder was fed, summed over ranks
  /// (0 unless IfdkOptions::compress_wire).
  std::size_t wire_raw_bytes = 0;
  /// Frame bytes that actually went on the wire (headers included).
  std::size_t wire_encoded_bytes = 0;
  /// Bytes row roots handed the store path (4 * voxels stored).
  std::size_t store_raw_bytes = 0;
  /// Bytes that actually hit the PFS (serialized compressed objects for
  /// compress_store volumes; equals the raw count otherwise).
  std::size_t store_stored_bytes = 0;
  /// Per-volume quantization PSNR of the stored slices in dB, merged over
  /// row roots; +inf for volumes stored raw (bit-exact store).
  std::vector<double> volume_store_psnr_db;
  /// Achieved wire compression ratio raw/encoded (1 when no framed traffic
  /// was sent).
  double wire_ratio() const {
    return wire_encoded_bytes == 0
               ? 1.0
               : static_cast<double>(wire_raw_bytes) /
                     static_cast<double>(wire_encoded_bytes);
  }
  /// Achieved store compression ratio raw/stored (1 when nothing stored).
  double store_ratio() const {
    return store_stored_bytes == 0
               ? 1.0
               : static_cast<double>(store_raw_bytes) /
                     static_cast<double>(store_stored_bytes);
  }
};

/// Streams `volumes.size()` independent jobs (e.g. a 4D-CT time series)
/// through ONE rank world: volume v+1's filtering and column gather begin
/// while volume v is still back-projecting, row-reducing, and storing.
/// Each JobSpec is validated (JobSpec::validate) and executed from its own
/// DecompositionPlan (built with the job's geometry when JobSpec::geometry
/// is set, the run geometry otherwise; same constraints and error messages
/// as run_distributed, with the offending volume index prefixed); the
/// scheduling fields (tenant/priority/deadline) are ignored here — ordering
/// is the service layer's concern, and volumes execute in span order. When
/// consecutive plans resolve to different R x C grids the ranks re-split
/// the world between epochs. Output volumes are bitwise-identical to
/// volumes.size() sequential run_distributed calls with the same options
/// and per-volume geometries. A PFS *write* failure on volume v fails only
/// that volume (see StreamingStats::volume_errors); any other rank failure
/// aborts the world and is rethrown, with every in-flight collective epoch
/// unwound.
StreamingStats run_streaming(const geo::CbctGeometry& geometry,
                             pfs::ParallelFileSystem& fs,
                             const IfdkOptions& options,
                             std::span<const JobSpec> volumes);

/// Runs the full distributed pipeline for ONE volume: reads projections
/// `<input_prefix><s>` (raw float Nu*Nv objects, s in [0, Np)) from `fs`,
/// writes slices `<output_prefix><k>` (raw float Nx*Ny objects, k in
/// [0, Nz)). Requires Np % ranks == 0 and even Nz divisible by 2*rows;
/// violations throw ConfigError naming the offending values. A failure on
/// any rank (I/O, device memory, PFS write, ...) is rethrown here; no
/// complete output volume is left behind in that case.
///
/// With IfdkOptions::overlap (the default) this is a documented one-volume
/// wrapper over the streaming execution core — the exact plan/epoch
/// machinery run_streaming and the service layer use, with a dedicated
/// Filtering-thread — so there is a single overlapped pipeline
/// implementation to maintain. overlap=false runs the self-contained
/// blocking reference path (plain allgather + blocking reduce + serial
/// store); both produce bitwise-identical volumes.
IfdkStats run_distributed(const geo::CbctGeometry& geometry,
                          pfs::ParallelFileSystem& fs,
                          const IfdkOptions& options);

/// Helper: stores all projections of a stack into `fs` under
/// `<input_prefix><s>` so examples/tests can stage inputs the way a scanner
/// or the RTK forward projector would.
void stage_projections(pfs::ParallelFileSystem& fs,
                       const std::string& input_prefix,
                       std::span<const Image2D> projections);

/// Helper: reads the reconstructed volume back from slice objects. With
/// `compressed_store` the slices are parsed as the serialized
/// CompressedVolume objects a JobSpec::compress_store job writes (corrupt
/// objects throw CompressionError) instead of raw floats.
Volume load_volume(const pfs::ParallelFileSystem& fs,
                   const std::string& output_prefix, const VolDims& dims,
                   bool compressed_store = false);

}  // namespace ifdk
