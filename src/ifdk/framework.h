// The iFDK distributed framework (paper Section 4).
//
// Nranks = R * C ranks form a 2-D grid (Fig. 3a; one rank per simulated
// GPU). Ranks are numbered column-major as in the paper's figure: column
// c = rank / R holds ranks c*R .. c*R + R - 1.
//
//   * Each *column* loads and filters a disjoint 1/C of the projections;
//     rank (r, c) loads indices { c*Np/C + t*R + r } and the column
//     AllGathers one projection per rank per round (Section 4.1.3).
//   * Each *row* owns one symmetric pair of Z-slabs of the volume
//     ("2*R sub-volumes", Fig. 3a) and back-projects its column's
//     projections into it with the proposed Algorithm-4 kernel.
//   * A single MPI-Reduce per row combines the C partial slab pairs
//     (Fig. 3b), and the row root stores the slabs to the PFS as Nz slices
//     of Nx x Ny (Section 4.1.3).
//
// Inside every rank three threads pipeline the work through two circular
// buffers exactly as Fig. 4a: Filtering-thread -> Main-thread (AllGather) ->
// Bp-thread. Wall-clock per stage is recorded per rank and merged; a
// gpusim::Device per rank enforces the 16 GB memory constraint and keeps the
// modeled-V100 time ledger.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "common/image.h"
#include "common/timer.h"
#include "common/volume.h"
#include "filter/filter_engine.h"
#include "geometry/cbct.h"
#include "gpusim/device.h"
#include "perfmodel/model.h"
#include "pfs/pfs.h"

namespace ifdk {

struct IfdkOptions {
  /// Total ranks (= simulated GPUs). Must be a multiple of the row count.
  int ranks = 4;
  /// Rows R of the 2-D grid; 0 = choose via Eq. (7) + the memory constraint
  /// (Section 4.1.5) using `microbench`.
  int rows = 0;
  perfmodel::MicroBench microbench;
  filter::FilterOptions filter;
  /// Ramp window etc.; the back-projection kernel is always the proposed
  /// Algorithm 4 in slab-pair mode.
  std::size_t bp_batch = 32;
  std::size_t queue_capacity = 8;  ///< circular-buffer depth (Fig. 4a)
  /// Use the ring AllGather instead of gather+bcast for the column
  /// collective (identical results; the bandwidth-optimal algorithm the
  /// simulator's cost model assumes).
  bool use_ring_allgather = false;
  gpusim::DeviceSpec device;
  std::string input_prefix = "proj/";
  std::string output_prefix = "vol/slice_";
};

struct IfdkStats {
  perfmodel::GridShape grid;
  /// Wall-clock stage seconds, max over ranks (the pipeline-critical rank):
  /// "load", "filter", "allgather", "backprojection", "d2h", "reduce",
  /// "store", "compute" (load+filter+allgather+bp span), "total".
  StageTimer wall;
  /// Modeled V100 seconds summed over the device ledger of the *slowest*
  /// rank: "v_h2d", "v_kernel", "v_d2h".
  StageTimer device_model;
  double wall_total = 0;
};

/// Runs the full distributed pipeline: reads projections
/// `<input_prefix><s>` (raw float Nu*Nv objects, s in [0, Np)) from `fs`,
/// writes slices `<output_prefix><k>` (raw float Nx*Ny objects, k in
/// [0, Nz)). Requires Np % ranks == 0 and even Nz divisible by 2*rows.
IfdkStats run_distributed(const geo::CbctGeometry& geometry,
                          pfs::ParallelFileSystem& fs,
                          const IfdkOptions& options);

/// Helper: stores all projections of a stack into `fs` under
/// `<input_prefix><s>` so examples/tests can stage inputs the way a scanner
/// or the RTK forward projector would.
void stage_projections(pfs::ParallelFileSystem& fs,
                       const std::string& input_prefix,
                       std::span<const Image2D> projections);

/// Helper: reads the reconstructed volume back from slice objects.
Volume load_volume(const pfs::ParallelFileSystem& fs,
                   const std::string& output_prefix, const VolDims& dims);

}  // namespace ifdk
