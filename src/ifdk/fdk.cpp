#include "ifdk/fdk.h"

#include <utility>

#include "common/error.h"
#include "fft/fft.h"

namespace ifdk {

FdkResult reconstruct_fdk(const geo::CbctGeometry& geometry,
                          std::span<const Image2D> projections,
                          const FdkOptions& options) {
  IFDK_REQUIRE(projections.size() == geometry.np,
               "reconstruct_fdk expects one projection per gantry angle");
  FdkResult result;

  // Filtering stage (on "CPU", Section 3.1). Projections are copied so the
  // caller's raw data survives — the distributed pipeline streams instead.
  std::vector<Image2D> filtered;
  result.timings.time("filter", [&] {
    filter::FilterEngine engine(geometry, options.filter);
    // One FFT workspace for the whole stage: the scratch planes allocate
    // once and every projection reuses them.
    fft::Workspace fft_ws;
    filtered.reserve(projections.size());
    for (const auto& p : projections) {
      Image2D copy(p.width(), p.height(), /*zero_fill=*/false);
      for (std::size_t n = 0; n < p.pixels(); ++n) {
        copy.data()[n] = p.data()[n];
      }
      engine.apply(copy, fft_ws);
      filtered.push_back(std::move(copy));
    }
  });

  // Back-projection stage (on "GPU", Section 3.2/3.3).
  Volume working(geometry.nx, geometry.ny, geometry.nz,
                 options.backprojection.layout, /*zero_fill=*/true);
  result.timings.time("backprojection", [&] {
    bp::Backprojector bp(geometry, options.backprojection);
    const auto matrices = geo::make_all_projection_matrices(geometry);
    bp.accumulate(working, filtered, matrices);
  });

  if (working.layout() != options.output_layout) {
    result.timings.time("reshape", [&] {
      result.volume = working.reshaped(options.output_layout);
    });
  } else {
    result.volume = std::move(working);
  }
  return result;
}

}  // namespace ifdk
