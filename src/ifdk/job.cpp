#include "ifdk/job.h"

#include "common/error.h"

namespace ifdk {

void JobSpec::validate(int volume_index) const {
  const std::string prefix =
      volume_index >= 0 ? "volume " + std::to_string(volume_index) + ": "
                        : std::string{};
  if (input_prefix.empty()) {
    throw ConfigError(prefix +
                      "input_prefix must not be empty: projections are read "
                      "from <input_prefix><s>");
  }
  if (output_prefix.empty()) {
    throw ConfigError(prefix +
                      "output_prefix must not be empty: slices are written "
                      "to <output_prefix><k>");
  }
  if (geometry.has_value()) {
    geometry->validate();
  }
  if (compress_store && (store_bits < 8 || store_bits > 16)) {
    throw ConfigError(prefix + "store_bits (" + std::to_string(store_bits) +
                      ") must be 8..16 when compress_store is set");
  }
  if (workload == WorkloadKind::kIterative) {
    iterative.validate(volume_index);
  }
}

}  // namespace ifdk
