// Single-node FDK reference pipeline: filtering (Algorithm 1) followed by
// back-projection (Algorithm 2 or 4). This is both the correctness oracle
// for the distributed framework and the single-GPU baseline the paper's
// Table 4 benchmarks.
#pragma once

#include <span>
#include <vector>

#include "backproj/backprojector.h"
#include "common/image.h"
#include "common/timer.h"
#include "common/volume.h"
#include "filter/filter_engine.h"
#include "geometry/cbct.h"

namespace ifdk {

struct FdkOptions {
  /// Filtering stage configuration (ramp window, padding).
  filter::FilterOptions filter;
  /// Kernel variant/schedule for the back-projection stage.
  bp::BpConfig backprojection;
  /// Return the volume in this layout regardless of the kernel's working
  /// layout (a reshape is appended when they differ, Alg. 4 line 22).
  VolumeLayout output_layout = VolumeLayout::kXMajor;
};

struct FdkResult {
  Volume volume;
  StageTimer timings;  ///< stages: "filter", "backprojection", "reshape"
};

/// Full FDK reconstruction. `projections` are consumed (filtered in place is
/// avoided — a copy is filtered) and must be ordered by gantry angle s with
/// beta = s * 2*pi/Np.
FdkResult reconstruct_fdk(const geo::CbctGeometry& geometry,
                          std::span<const Image2D> projections,
                          const FdkOptions& options = {});

}  // namespace ifdk
