// The decomposition plan: every data-placement decision of paper Section 4.1
// as one first-class object.
//
// Historically the Eq. (7) row selection, slab-pair extents, column
// projection sharding, collective tag budgets, and the Section 4.1.5 memory
// constraint lived as inline arithmetic inside the runtime
// (src/ifdk/framework.cpp). A DecompositionPlan captures all of them up
// front — given a CbctGeometry, the decomposition-relevant IfdkOptions, and
// a gpusim::DeviceSpec — so that three independent consumers act on the
// *same* resolved decomposition:
//
//   * the runtime (`run_distributed` / `run_streaming`) executes it,
//   * the virtual-time simulator (`cluster::simulate_plan` /
//     `cluster::simulate_stream`) replays its timing at scales one machine
//     cannot execute,
//   * the benches (`bench_smoke`'s `plan` JSON block) record it per revision.
//
// Invariants are enforced in one place (`check_invariants`, run at
// construction): the R slab pairs disjointly cover [0, Nz), the R*C
// projection shards disjointly cover [0, Np), and the per-epoch collective
// tag budgets bound the traffic the runtime actually reserves through
// minimpi's `reserve_collective_tags` (asserted per epoch by the runtime and
// property-tested against a live tag counter in tests/test_plan.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "backproj/simd/column_kernel.h"
#include "filter/filter_engine.h"
#include "geometry/cbct.h"
#include "gpusim/device.h"
#include "perfmodel/model.h"

namespace ifdk {

/// Fan-in topology of the segmented row ireduce (mirrors mpi::ReduceAlgo;
/// this header deliberately does not include minimpi.h).
/// kTree is the default; kLinear is kept for bitwise back-compat tests —
/// both produce bitwise-identical volumes because the tree relays only
/// concatenate and the root folds in ascending-rank order either way.
enum class ReduceFanIn { kTree, kLinear };

struct IfdkOptions {
  /// Total ranks (= simulated GPUs). Must be a multiple of the row count.
  int ranks = 4;
  /// Rows R of the 2-D grid; 0 = choose via Eq. (7) + the memory constraint
  /// (Section 4.1.5) using `microbench` (and, for streaming plans, the
  /// resident-slab count — see DecompositionPlan::make).
  int rows = 0;
  /// Measured per-GPU rates feeding the Eq. (7) row selection.
  perfmodel::MicroBench microbench;
  /// Ramp window etc.; the back-projection kernel is always the proposed
  /// Algorithm 4 in slab-pair mode. FilterOptions::fft_backend picks the
  /// filtering stage's SIMD backend.
  filter::FilterOptions filter;
  /// SIMD column backend for the back-projection stage (the counterpart of
  /// filter.fft_backend): kAuto resolves at runtime to the widest supported
  /// backend; a concrete value forces one on every rank and throws where
  /// unavailable.
  bp::simd::Backend simd_backend = bp::simd::Backend::kAuto;
  /// Projections per simulated H2D+kernel launch on the Bp-thread.
  std::size_t bp_batch = 32;
  /// Circular-buffer depth (Fig. 4a); also the async store queue depth.
  std::size_t queue_capacity = 8;
  /// Use the ring AllGather instead of gather+bcast for the column
  /// collective (identical results; the bandwidth-optimal algorithm the
  /// simulator's cost model assumes). Only meaningful when overlap=false:
  /// the overlapped pipeline always uses the nonblocking ring.
  bool use_ring_allgather = false;
  /// Run the overlapped pipeline: double-buffered nonblocking column
  /// AllGather across rounds, segmented pipelined row ireduce, and an async
  /// PFS store on the row root. false selects the blocking reference path.
  /// Both paths produce bitwise-identical volumes.
  bool overlap = true;
  /// Floats per row-ireduce segment (must be identical on every rank).
  /// Smaller segments start the store earlier; larger ones amortize
  /// per-message cost. Matches mpi::Comm::kDefaultReduceSegment.
  std::size_t reduce_segment_floats = std::size_t{1} << 16;
  /// Fan-in topology of the segmented row ireduce (overlapped path and
  /// streaming mode). Tree and linear produce bitwise-identical volumes.
  ReduceFanIn reduce_fan_in = ReduceFanIn::kTree;
  /// Streaming mode only: fuse filtering onto the gather worker thread —
  /// the worker posts its filtered block and the irecvs for round t, then
  /// filters round t+1 while t's messages are in flight, then waits the
  /// irecvs (the paper's same-thread overlap). false runs the dedicated
  /// Filtering-thread exactly like run_distributed. Both settings produce
  /// bitwise-identical volumes.
  bool fuse_filter_gather = true;
  /// Frame the row-ireduce wire traffic with the lossless postproc codec
  /// (byte-plane shuffle + RLE, raw fallback): senders compress segments,
  /// tree relays concatenate the self-describing frames verbatim, the root
  /// decompresses before the fold. Lossless by construction, so volumes are
  /// bitwise identical to compress_wire=false (pinned by test); the achieved
  /// ratio is reported in StreamingStats/IfdkStats.
  bool compress_wire = false;
  /// Simulated per-rank GPU (memory budget + modeled PCIe/kernel rates).
  gpusim::DeviceSpec device;
  /// Projection objects are read from `<input_prefix><s>`, s in [0, Np).
  std::string input_prefix = "proj/";
  /// Volume slices are written to `<output_prefix><k>`, k in [0, Nz).
  std::string output_prefix = "vol/slice_";

  /// Validates the geometry-independent option invariants (positive ranks,
  /// batch, queue depth, reduce segment) in one place; throws ConfigError
  /// naming the offending value. DecompositionPlan::make, both runtimes,
  /// and service::ReconService all call this — a new pre-run check belongs
  /// here, not inline at a call site (message wording is pinned by tests).
  void validate() const;
};

/// The two half-slabs owned by one row of the grid: the low slab
/// [low_begin, low_end) and its Theorem-1 mirror [high_begin, high_end),
/// both as global Z slice indices. Across the R rows the extents disjointly
/// cover [0, Nz) — the invariant check_invariants() enforces.
struct SlabExtent {
  std::size_t low_begin = 0;
  std::size_t low_end = 0;
  std::size_t high_begin = 0;
  std::size_t high_end = 0;
};

/// A fully resolved data decomposition for one volume on one rank world.
/// Immutable after make(); the runtime, the simulator, and the benches all
/// consume the same object (see the header comment).
struct DecompositionPlan {
  /// The resolved R x C grid (after Eq. (7) auto-selection).
  perfmodel::GridShape grid;
  /// The geometry the plan decomposes (copied: a plan outlives its inputs).
  geo::CbctGeometry geometry;
  /// Half-height of each row's symmetric slab pair: Nz / (2R).
  std::size_t slab_h = 0;
  /// Column-gather rounds per rank (= projections loaded per rank): Np/ranks.
  std::size_t rounds = 0;
  /// Pixels per projection (Nu * Nv).
  std::size_t pixels = 0;
  /// Pixels per volume slice (Nx * Ny).
  std::size_t slice_px = 0;
  /// Floats per row-ireduce segment (IfdkOptions::reduce_segment_floats).
  std::size_t reduce_segment_floats = 0;
  /// Projections per simulated H2D+kernel launch (IfdkOptions::bp_batch).
  std::size_t bp_batch = 0;
  /// Slab pairs resident per device while this plan executes (1 for
  /// run_distributed; 2 in streaming mode, where the Bp-thread accumulates
  /// volume v+1 while volume v drains through the row reduce).
  std::size_t resident_slabs = 1;

  /// Builds and validates a plan. `rows = 0` selects R via Eq. (7), then
  /// doubles it until `resident_slabs` slab pairs plus one projection batch
  /// fit in `options.device.memory_bytes` (the Section 4.1.5 constraint,
  /// extended to the streaming double buffer). Throws ConfigError naming
  /// the offending values when ranks/rows/Np/Nz are inconsistent; when
  /// `volume_index >= 0` (streaming mode) every message is prefixed with
  /// the offending volume, e.g. "volume 2: Nz (18) must be ...".
  static DecompositionPlan make(const geo::CbctGeometry& geometry,
                                const IfdkOptions& options,
                                int volume_index = -1,
                                std::size_t resident_slabs = 1);

  /// Total ranks R * C.
  int ranks() const { return grid.ranks(); }
  /// Row of a world rank (column-major numbering, paper Fig. 3a).
  int row_of(int rank) const { return rank % grid.rows; }
  /// Column of a world rank.
  int col_of(int rank) const { return rank / grid.rows; }

  // -- volume decomposition (rows) ------------------------------------------

  /// Floats in one slab pair: 2 * slab_h * Nx * Ny.
  std::size_t slab_floats() const { return 2 * slab_h * slice_px; }
  /// Bytes in one slab pair.
  std::uint64_t slab_bytes() const {
    return static_cast<std::uint64_t>(slab_floats()) * sizeof(float);
  }
  /// Global slice extents of `row`'s slab pair (Theorem 1's symmetric
  /// pairing: low slab row*h..(row+1)*h, mirror Nz-(row+1)*h..Nz-row*h).
  SlabExtent slab_extent(int row) const;
  /// Global slice index of local slab-pair slice `local_k` of `row`:
  /// local k < slab_h maps into the low slab, the rest into the mirror.
  std::size_t global_slice(int row, std::size_t local_k) const;

  // -- projection decomposition (columns) -----------------------------------

  /// First projection index of column `col`'s contiguous Np/C share.
  std::size_t column_base(int col) const;
  /// Projection index rank (row, col) loads in gather round `t`
  /// (Section 4.1.1: base + t*R + row).
  std::size_t owned_projection(int row, int col, std::size_t t) const;
  /// All `rounds` projection indices rank (row, col) loads. Across the R*C
  /// ranks these shards disjointly cover [0, Np) (checked at construction).
  std::vector<std::size_t> projection_shard(int row, int col) const;

  // -- collective message/tag budgets ---------------------------------------
  //
  // Budgets bound the collective sequence numbers one volume epoch reserves
  // through mpi::Comm::reserve_collective_tags. The runtime asserts actual
  // traffic against them per epoch (observable via
  // Comm::collective_tags_reserved()), which is what lets any number of
  // per-volume epochs compose on long-lived communicators.

  /// Segments of one row-ireduce epoch: ceil(slab_floats / segment).
  std::uint64_t reduce_segments() const;
  /// Collective tags one row-reduce epoch reserves (one per segment,
  /// identical for tree and linear fan-in).
  std::uint64_t reduce_tag_budget() const { return reduce_segments(); }
  /// Collective tags one ring AllGather round reserves on the column
  /// communicator (p - 1 = R - 1; zero for the fused worker, which
  /// exchanges over user tags).
  std::uint64_t gather_tags_per_round(bool fused) const {
    return fused ? 0 : static_cast<std::uint64_t>(grid.rows - 1);
  }
  /// Collective tags one full volume epoch reserves on the column
  /// communicator: rounds * gather_tags_per_round.
  std::uint64_t gather_tag_budget(bool fused) const {
    return static_cast<std::uint64_t>(rounds) * gather_tags_per_round(fused);
  }

  /// Bytes one rank sends per ring-AllGather round: (R - 1) blocks of one
  /// projection each (the fused worker sends the same payload over p2p).
  std::uint64_t allgather_bytes_per_round() const;
  /// Bytes one non-root rank contributes to a row-reduce epoch (the slab
  /// pair; tree relays forward concatenations on top of this).
  std::uint64_t reduce_bytes_per_epoch() const { return slab_bytes(); }

  // -- iterative workload budgets (per-iteration collective epochs) ---------
  //
  // The distributed iterative workload (iterative::run_iterative) replicates
  // the volume and shards views, so its collective unit is a volume-wide
  // all-reduce (segmented tree ireduce to rank 0 + bcast) instead of the
  // FDK row reduce. The same tag-window discipline applies: the workload
  // asserts its actual reservations against these budgets per iteration.

  /// Floats in one full replicated volume: Nx * Ny * Nz — the payload of
  /// one iterative all-reduce sweep.
  std::size_t volume_floats() const { return slice_px * geometry.nz; }
  /// Segments of one volume-wide ireduce: ceil(volume_floats / segment).
  std::uint64_t iter_reduce_segments() const;
  /// Collective tags one volume all-reduce reserves on the world
  /// communicator: one per ireduce segment plus one for the bcast back out.
  std::uint64_t iter_sweep_tag_budget() const {
    return iter_reduce_segments() + 1;
  }
  /// Collective tags one full iteration reserves: one volume all-reduce per
  /// subset sweep plus the residual-norm allreduce (reduce + bcast).
  std::uint64_t iter_iteration_tag_budget(int subsets) const;
  /// Collective tags the normalization setup reserves before iterating:
  /// one volume all-reduce per subset (SART's per-subset B*1 column norms;
  /// MLEM's single sensitivity volume has subsets = 1).
  std::uint64_t iter_setup_tag_budget(int subsets) const;
  /// Bytes one rank contributes to one volume all-reduce sweep.
  std::uint64_t iter_allreduce_bytes_per_sweep() const;
  /// Device bytes the iterative workload keeps resident per rank: the
  /// estimate, one update/ratio accumulator, the per-subset column-norm
  /// volumes, plus this rank's projection shard and forward buffer.
  std::uint64_t iter_device_bytes(int subsets) const;

  // -- memory constraint (Section 4.1.5) ------------------------------------

  /// Device bytes this plan keeps resident: resident_slabs slab pairs plus
  /// one projection batch.
  std::uint64_t device_bytes() const;
  /// Throws DeviceOutOfMemory (naming the numbers) when device_bytes() does
  /// not fit `spec.memory_bytes`. The runtime still enforces the budget at
  /// allocation time; this front-loads the failure with a better message.
  void check_device_fit(const gpusim::DeviceSpec& spec) const;

  /// True when `other` resolves to the same R x C grid — the condition
  /// under which streaming reuses the previous epoch's communicators
  /// instead of re-splitting the world.
  bool same_grid(const DecompositionPlan& other) const {
    return grid.rows == other.grid.rows && grid.columns == other.grid.columns;
  }

  /// Re-checks the structural invariants (disjoint slab cover of [0, Nz),
  /// disjoint projection cover of [0, Np)); aborts via IFDK_ASSERT on
  /// violation. make() runs this — exposed for property tests.
  void check_invariants() const;
};

}  // namespace ifdk
