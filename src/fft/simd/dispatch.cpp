// Runtime backend selection for the batched filter FFT: what was compiled in
// (CMake decides whether the AVX2 TU exists) crossed with what the executing
// CPU supports (CPUID via common/cpu_features). Mirrors the back-projection
// dispatcher so one binary picks the fastest kernel on any host.
#include "common/cpu_features.h"
#include "common/error.h"
#include "fft/simd/batch_kernel.h"

namespace ifdk::fft::simd {

#if defined(IFDK_HAVE_AVX2)
const BatchKernel& avx2_kernel_impl();  // defined in batch_avx2.cpp
#endif

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kAuto:   return "auto";
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2:   return "avx2";
  }
  return "?";
}

bool avx2_compiled() {
#if defined(IFDK_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool avx2_supported() {
  const CpuFeatures& cpu = cpu_features();
  return avx2_compiled() && cpu.avx2 && cpu.fma;
}

const BatchKernel& select(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return scalar_kernel();
    case Backend::kAvx2:
      IFDK_REQUIRE(avx2_supported(),
                   "the AVX2 FFT backend is not available "
                   "(not compiled in, or the CPU lacks AVX2/FMA)");
#if defined(IFDK_HAVE_AVX2)
      return avx2_kernel_impl();
#else
      break;  // unreachable: the REQUIRE above threw
#endif
    case Backend::kAuto:
#if defined(IFDK_HAVE_AVX2)
      if (avx2_supported()) return avx2_kernel_impl();
#endif
      return scalar_kernel();
  }
  return scalar_kernel();
}

}  // namespace ifdk::fft::simd
