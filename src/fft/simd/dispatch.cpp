// The batch-kernel table: maps the Backend enumerator that
// ifdk::simd::resolve() settles on to this layer's kernel struct. All
// policy (compiled/supported predicates, kAuto preference order, error
// wording) lives in common/simd_dispatch; this file only knows which
// translation units exist in the FFT layer.
#include "fft/simd/batch_kernel.h"

namespace ifdk::fft::simd {

#if defined(IFDK_HAVE_AVX2)
const BatchKernel& avx2_kernel_impl();  // defined in batch_avx2.cpp
#endif
#if defined(IFDK_HAVE_AVX512)
const BatchKernel& avx512_kernel_impl();  // defined in batch_avx512.cpp
#endif
#if defined(IFDK_HAVE_NEON)
const BatchKernel& neon_kernel_impl();  // defined in batch_neon.cpp
#endif

const BatchKernel& select(Backend backend) {
  switch (ifdk::simd::resolve(backend, "FFT batch")) {
#if defined(IFDK_HAVE_AVX2)
    case Backend::kAvx2:
      return avx2_kernel_impl();
#endif
#if defined(IFDK_HAVE_AVX512)
    case Backend::kAvx512:
      return avx512_kernel_impl();
#endif
#if defined(IFDK_HAVE_NEON)
    case Backend::kNeon:
      return neon_kernel_impl();
#endif
    default:
      return scalar_kernel();
  }
}

}  // namespace ifdk::fft::simd
