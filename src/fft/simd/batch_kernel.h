// SIMD backend layer for the ramp-filter FFT (paper Section 2.2.3).
//
// The filtering stage convolves every detector row with one fixed kernel via
// forward FFT -> spectrum multiply -> inverse FFT. Rows are independent and
// all share one plan (same padded length, same twiddles, same kernel
// spectrum), so the natural vector unit of work is a BATCH of rows in SoA
// layout: the workspace holds one row per vector lane — element i of lane l
// lives at index i * W + l of the re/im planes, where W is the backend's
// lane width (BatchKernel::lanes) — and every butterfly, spectrum multiply,
// and scale is the *same* scalar operation applied to W rows at once.
// Because lanes never mix, a vector backend that mirrors the scalar
// operation order per lane is bitwise-identical to the scalar path (and a
// batch of N rows is bitwise-identical to N single-row calls) by
// construction, whatever its width.
//
// Backends (lane width in parentheses):
//   * scalar (4) — straight-line reference; reproduces the historical
//     RowConvolver::convolve_row arithmetic operation for operation (same
//     twiddle recurrence, same complex-multiply association, same 1/N
//     scaling), one lane at a time.
//   * avx2 (4) — one __m256d per index covers all four double lanes.
//   * avx512 (8) — one __m512d per index covers eight double lanes, halving
//     the number of butterfly passes per row throughput-wise.
//   * neon (4) — two float64x2_t per index cover the four double lanes on
//     AArch64.
// Availability and kAuto resolution live in common/simd_dispatch (shared
// with the back-projection column layer); every vector TU builds with
// -ffp-contract=off so no mul/add pair of the scalar sequence is fused into
// a differently-rounded FMA.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/simd_dispatch.h"

namespace ifdk::fft::simd {

/// One Backend enum for every vectorized layer; see common/simd_dispatch.h.
using Backend = ifdk::simd::Backend;
using ifdk::simd::compiled;
using ifdk::simd::supported;
using ifdk::simd::to_string;

/// The widest lane count of any backend (avx512's 8): workspaces sized for
/// kMaxLanes rows fit whichever kernel dispatch settles on.
inline constexpr std::size_t kMaxLanes = 8;

/// Read-only view of one RowConvolver plan: everything the batch kernel
/// needs that does not depend on the row data. All pointers stay owned by
/// the RowConvolver and outlive the call.
struct PlanView {
  std::size_t n = 0;  ///< padded FFT length (a power of two)
  /// Bit-reversal permutation as precomputed swap pairs (from < to).
  const std::uint32_t* swap_from = nullptr;
  const std::uint32_t* swap_to = nullptr;
  std::size_t swaps = 0;
  /// Stage-packed butterfly twiddles (n - 1 values each): stage len starts
  /// at offset len/2 - 1 and holds len/2 entries, exactly the w of the
  /// radix-2 recurrence w *= wn.
  const double* fwd_re = nullptr;
  const double* fwd_im = nullptr;
  const double* inv_re = nullptr;
  const double* inv_im = nullptr;
  /// Forward spectrum of the (zero-padded) kernel, n values per component.
  const double* kernel_re = nullptr;
  const double* kernel_im = nullptr;
  double inv_n = 0.0;  ///< inverse-FFT normalization, 1/n
};

/// One batch of work: forward-transform, spectrum-multiply, inverse-transform
/// and normalize `lanes` rows held in the SoA planes re/im. The SoA stride
/// is the kernel's own lane width (BatchKernel::lanes); inactive lanes up to
/// that width are zero-filled by the caller. On return the filtered row
/// values sit in the real plane; the caller windows out
/// [kernel_center, kernel_center + row_length).
using ConvolveFn = void (*)(const PlanView& plan, double* re, double* im,
                            std::size_t lanes);

struct BatchKernel {
  const char* name;
  /// SoA stride and rows per batch — a backend property (see header doc).
  std::size_t lanes;
  ConvolveFn convolve;
};

/// The scalar reference backend (always available).
const BatchKernel& scalar_kernel();

/// Resolves a backend choice to a kernel via ifdk::simd::resolve: kAuto
/// prefers the widest supported backend; an explicit request for an
/// unavailable backend throws ConfigError.
const BatchKernel& select(Backend backend);

}  // namespace ifdk::fft::simd
