// SIMD backend layer for the ramp-filter FFT (paper Section 2.2.3).
//
// The filtering stage convolves every detector row with one fixed kernel via
// forward FFT -> spectrum multiply -> inverse FFT. Rows are independent and
// all share one plan (same padded length, same twiddles, same kernel
// spectrum), so the natural vector unit of work is a BATCH of rows in SoA
// layout: the workspace holds kLanes interleaved rows — element i of lane l
// lives at index i * kLanes + l of the re/im planes — and every butterfly,
// spectrum multiply, and scale is the *same* scalar operation applied to
// kLanes rows at once. Because lanes never mix, a vector backend that
// mirrors the scalar operation order per lane is bitwise-identical to the
// scalar path (and a batch of N rows is bitwise-identical to N single-row
// calls) by construction.
//
// Backends:
//   * scalar — straight-line reference; reproduces the historical
//     RowConvolver::convolve_row arithmetic operation for operation (same
//     twiddle recurrence, same complex-multiply association, same 1/N
//     scaling), one lane at a time.
//   * avx2 — one __m256d per index covers all four double lanes. Built only
//     when the toolchain targets x86 and IFDK_DISABLE_AVX2 is off; selected
//     at runtime only when CPUID reports AVX2+FMA. Compiled with
//     -ffp-contract=off so no mul/add pair of the scalar sequence is fused
//     into a differently-rounded FMA.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ifdk::fft::simd {

/// Rows per SoA batch: one detector row per vector lane (__m256d holds four
/// doubles, so four rows saturate the AVX2 backend).
inline constexpr std::size_t kLanes = 4;

/// Which FFT batch backend a RowConvolver uses. kAuto resolves at runtime to
/// the fastest backend the executing CPU supports.
enum class Backend { kAuto, kScalar, kAvx2 };

/// Human-readable backend name ("auto" / "scalar" / "avx2").
const char* to_string(Backend backend);

/// Read-only view of one RowConvolver plan: everything the batch kernel
/// needs that does not depend on the row data. All pointers stay owned by
/// the RowConvolver and outlive the call.
struct PlanView {
  std::size_t n = 0;  ///< padded FFT length (a power of two)
  /// Bit-reversal permutation as precomputed swap pairs (from < to).
  const std::uint32_t* swap_from = nullptr;
  const std::uint32_t* swap_to = nullptr;
  std::size_t swaps = 0;
  /// Stage-packed butterfly twiddles (n - 1 values each): stage len starts
  /// at offset len/2 - 1 and holds len/2 entries, exactly the w of the
  /// radix-2 recurrence w *= wn.
  const double* fwd_re = nullptr;
  const double* fwd_im = nullptr;
  const double* inv_re = nullptr;
  const double* inv_im = nullptr;
  /// Forward spectrum of the (zero-padded) kernel, n values per component.
  const double* kernel_re = nullptr;
  const double* kernel_im = nullptr;
  double inv_n = 0.0;  ///< inverse-FFT normalization, 1/n
};

/// One batch of work: forward-transform, spectrum-multiply, inverse-transform
/// and normalize `lanes` rows held in the SoA planes re/im (stride kLanes,
/// inactive lanes zero-filled by the caller). On return the filtered row
/// values sit in the real plane; the caller windows out
/// [kernel_center, kernel_center + row_length).
using ConvolveFn = void (*)(const PlanView& plan, double* re, double* im,
                            std::size_t lanes);

struct BatchKernel {
  const char* name;
  ConvolveFn convolve;
};

/// The scalar reference backend (always available).
const BatchKernel& scalar_kernel();

/// True when the AVX2 translation unit was built into this binary.
bool avx2_compiled();

/// True when the AVX2 backend is built in *and* the executing CPU reports
/// AVX2+FMA — i.e. select(Backend::kAvx2) will succeed.
bool avx2_supported();

/// Resolves a backend choice to a kernel. kAuto prefers AVX2 when supported;
/// an explicit kAvx2 request throws ConfigError when unsupported.
const BatchKernel& select(Backend backend);

}  // namespace ifdk::fft::simd
