// AVX-512 backend: the same radix-2 passes as the scalar reference, with one
// __m512d covering eight double lanes of the SoA batch — twice the AVX2
// width, so one batch filters eight detector rows. The twiddle (and
// kernel-spectrum) factors are lane-invariant broadcasts, and element i's
// eight lanes sit contiguously at [i * kStride, i * kStride + 8), so every
// butterfly is two 64-byte loads, the mul/sub/add sequence of the scalar
// backend, and two 64-byte stores — no shuffles, no gathers, no cross-lane
// mixing, and (unlike the column kernel) no masking: inactive lanes are
// zero-filled by the caller and 0 stays 0 through every butterfly.
//
// This translation unit is compiled with -mavx512f -mavx512dq -mavx512vl
// -mfma -ffp-contract=off and only linked when CMake enables it
// (IFDK_HAVE_AVX512); runtime CPUID dispatch decides whether it actually
// runs. -ffp-contract=off matters: fusing any mul/add pair of the butterfly
// into an FMA would round differently from the scalar backend and break the
// bitwise-equivalence contract.
#include "fft/simd/batch_kernel.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__)

#include <immintrin.h>

#include <cstddef>

namespace ifdk::fft::simd {

namespace {

/// This backend's SoA stride (= BatchKernel::lanes): one __m512d.
constexpr std::size_t kStride = 8;

// One radix-2 pass over all eight lanes at once: same swap pairs, same stage
// order, same per-lane arithmetic as the scalar fft_lane.
void fft_pass(const PlanView& p, double* re, double* im, const double* tw_re,
              const double* tw_im) {
  for (std::size_t s = 0; s < p.swaps; ++s) {
    double* const ra = re + static_cast<std::size_t>(p.swap_from[s]) * kStride;
    double* const rb = re + static_cast<std::size_t>(p.swap_to[s]) * kStride;
    const __m512d va = _mm512_loadu_pd(ra);
    const __m512d vb = _mm512_loadu_pd(rb);
    _mm512_storeu_pd(ra, vb);
    _mm512_storeu_pd(rb, va);
    double* const ia = im + static_cast<std::size_t>(p.swap_from[s]) * kStride;
    double* const ib = im + static_cast<std::size_t>(p.swap_to[s]) * kStride;
    const __m512d wa = _mm512_loadu_pd(ia);
    const __m512d wb = _mm512_loadu_pd(ib);
    _mm512_storeu_pd(ia, wb);
    _mm512_storeu_pd(ib, wa);
  }

  for (std::size_t len = 2; len <= p.n; len <<= 1) {
    const std::size_t half = len / 2;
    const double* wr = tw_re + (half - 1);
    const double* wi = tw_im + (half - 1);
    for (std::size_t i = 0; i < p.n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const __m512d wre = _mm512_set1_pd(wr[k]);
        const __m512d wim = _mm512_set1_pd(wi[k]);
        double* const pru = re + (i + k) * kStride;
        double* const piu = im + (i + k) * kStride;
        double* const prv = re + (i + k + half) * kStride;
        double* const piv = im + (i + k + half) * kStride;
        const __m512d bre = _mm512_loadu_pd(prv);
        const __m512d bim = _mm512_loadu_pd(piv);
        const __m512d vre =
            _mm512_sub_pd(_mm512_mul_pd(bre, wre), _mm512_mul_pd(bim, wim));
        const __m512d vim =
            _mm512_add_pd(_mm512_mul_pd(bre, wim), _mm512_mul_pd(bim, wre));
        const __m512d ure = _mm512_loadu_pd(pru);
        const __m512d uim = _mm512_loadu_pd(piu);
        _mm512_storeu_pd(pru, _mm512_add_pd(ure, vre));
        _mm512_storeu_pd(piu, _mm512_add_pd(uim, vim));
        _mm512_storeu_pd(prv, _mm512_sub_pd(ure, vre));
        _mm512_storeu_pd(piv, _mm512_sub_pd(uim, vim));
      }
    }
  }
}

void convolve(const PlanView& p, double* re, double* im,
              std::size_t /*lanes*/) {
  fft_pass(p, re, im, p.fwd_re, p.fwd_im);
  for (std::size_t i = 0; i < p.n; ++i) {
    const __m512d br = _mm512_set1_pd(p.kernel_re[i]);
    const __m512d bi = _mm512_set1_pd(p.kernel_im[i]);
    double* const pr = re + i * kStride;
    double* const pi = im + i * kStride;
    const __m512d ar = _mm512_loadu_pd(pr);
    const __m512d ai = _mm512_loadu_pd(pi);
    _mm512_storeu_pd(
        pr, _mm512_sub_pd(_mm512_mul_pd(ar, br), _mm512_mul_pd(ai, bi)));
    _mm512_storeu_pd(
        pi, _mm512_add_pd(_mm512_mul_pd(ar, bi), _mm512_mul_pd(ai, br)));
  }
  fft_pass(p, re, im, p.inv_re, p.inv_im);
  const __m512d scale = _mm512_set1_pd(p.inv_n);
  for (std::size_t i = 0; i < p.n; ++i) {
    double* const pr = re + i * kStride;
    double* const pi = im + i * kStride;
    _mm512_storeu_pd(pr, _mm512_mul_pd(_mm512_loadu_pd(pr), scale));
    _mm512_storeu_pd(pi, _mm512_mul_pd(_mm512_loadu_pd(pi), scale));
  }
}

}  // namespace

const BatchKernel& avx512_kernel_impl() {
  static constexpr BatchKernel kernel{"avx512", kStride, convolve};
  return kernel;
}

}  // namespace ifdk::fft::simd

#endif  // __AVX512F__ && __AVX512DQ__ && __AVX512VL__
