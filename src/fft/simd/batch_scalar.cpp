// Scalar reference backend: the historical RowConvolver::convolve_row
// arithmetic (radix-2 DIT forward, spectrum multiply, radix-2 inverse, 1/N
// scale) replayed one lane at a time over the SoA batch. Twiddles come from
// the plan tables — the exact values the seed computed per call with the
// w *= wn recurrence — and the complex multiplies spell out the
// (ac - bd, ad + bc) association of std::complex's finite fast path, so this
// backend is bitwise-identical to the seed output and is the reference the
// vector backends must match lane for lane.
#include <cstddef>
#include <utility>

#include "fft/simd/batch_kernel.h"

namespace ifdk::fft::simd {

namespace {

/// This backend's SoA stride (= BatchKernel::lanes).
constexpr std::size_t kStride = 4;

// One radix-2 pass over lane `l`: bit-reversal permutation (precomputed swap
// pairs), then the butterfly stages with stage-packed twiddles. Identical
// loop structure and operation order to the seed's radix2().
void fft_lane(const PlanView& p, double* re, double* im, std::size_t l,
              const double* tw_re, const double* tw_im) {
  for (std::size_t s = 0; s < p.swaps; ++s) {
    const std::size_t a =
        static_cast<std::size_t>(p.swap_from[s]) * kStride + l;
    const std::size_t b = static_cast<std::size_t>(p.swap_to[s]) * kStride + l;
    std::swap(re[a], re[b]);
    std::swap(im[a], im[b]);
  }

  for (std::size_t len = 2; len <= p.n; len <<= 1) {
    const std::size_t half = len / 2;
    const double* wr = tw_re + (half - 1);
    const double* wi = tw_im + (half - 1);
    for (std::size_t i = 0; i < p.n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const std::size_t ua = (i + k) * kStride + l;
        const std::size_t vb = (i + k + half) * kStride + l;
        // v = a[i+k+half] * w, complex multiply in the std::complex finite
        // fast-path order: (re*re - im*im, re*im + im*re).
        const double bre = re[vb];
        const double bim = im[vb];
        const double vre = bre * wr[k] - bim * wi[k];
        const double vim = bre * wi[k] + bim * wr[k];
        const double ure = re[ua];
        const double uim = im[ua];
        re[ua] = ure + vre;
        im[ua] = uim + vim;
        re[vb] = ure - vre;
        im[vb] = uim - vim;
      }
    }
  }
}

void convolve(const PlanView& p, double* re, double* im, std::size_t lanes) {
  // Lanes are fully independent rows: processing them one at a time here and
  // four at a time in the AVX2 backend yields bitwise-identical planes. Only
  // the active lanes are touched, so a single-row call does 1/kStride of the
  // work rather than transforming zero-filled padding.
  for (std::size_t l = 0; l < lanes; ++l) {
    fft_lane(p, re, im, l, p.fwd_re, p.fwd_im);
    for (std::size_t i = 0; i < p.n; ++i) {
      const std::size_t x = i * kStride + l;
      const double ar = re[x];
      const double ai = im[x];
      re[x] = ar * p.kernel_re[i] - ai * p.kernel_im[i];
      im[x] = ar * p.kernel_im[i] + ai * p.kernel_re[i];
    }
    fft_lane(p, re, im, l, p.inv_re, p.inv_im);
    for (std::size_t i = 0; i < p.n; ++i) {
      const std::size_t x = i * kStride + l;
      re[x] *= p.inv_n;
      im[x] *= p.inv_n;
    }
  }
}

}  // namespace

const BatchKernel& scalar_kernel() {
  static constexpr BatchKernel kernel{"scalar", kStride, convolve};
  return kernel;
}

}  // namespace ifdk::fft::simd
