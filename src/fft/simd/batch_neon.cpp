// NEON backend: the same radix-2 passes as the scalar reference, with a
// pair of float64x2_t covering the four double lanes of the SoA batch
// (AArch64 NEON registers are 128 bits, so element i's four lanes at
// [i * kStride, i * kStride + 4) take two loads). The twiddle (and
// kernel-spectrum) factors are lane-invariant broadcasts and lanes never
// mix, so every butterfly is the mul/sub/add sequence of the scalar backend
// applied to both register halves.
//
// This translation unit is compiled with -ffp-contract=off (AArch64 needs
// no extra arch flag: Advanced SIMD is baseline) and only linked when CMake
// enables it (IFDK_HAVE_NEON). AArch64 NEON double arithmetic is fully
// IEEE-754 compliant, and keeping contraction off preserves the scalar
// rounding of every mul/add pair, so the output planes are
// bitwise-identical to the scalar backend — pinned by
// tests/test_fft_backends.cpp.
#include "fft/simd/batch_kernel.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>

namespace ifdk::fft::simd {

namespace {

/// This backend's SoA stride (= BatchKernel::lanes): two float64x2_t.
constexpr std::size_t kStride = 4;

/// Four doubles as a NEON register pair, with the scalar-order arithmetic
/// applied half by half.
struct V4 {
  float64x2_t lo, hi;
};

inline V4 load4(const double* p) { return {vld1q_f64(p), vld1q_f64(p + 2)}; }
inline void store4(double* p, V4 v) {
  vst1q_f64(p, v.lo);
  vst1q_f64(p + 2, v.hi);
}
inline V4 splat4(double x) { return {vdupq_n_f64(x), vdupq_n_f64(x)}; }
inline V4 add4(V4 a, V4 b) {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline V4 sub4(V4 a, V4 b) {
  return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
}
inline V4 mul4(V4 a, V4 b) {
  return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}

// One radix-2 pass over all four lanes at once: same swap pairs, same stage
// order, same per-lane arithmetic as the scalar fft_lane.
void fft_pass(const PlanView& p, double* re, double* im, const double* tw_re,
              const double* tw_im) {
  for (std::size_t s = 0; s < p.swaps; ++s) {
    double* const ra = re + static_cast<std::size_t>(p.swap_from[s]) * kStride;
    double* const rb = re + static_cast<std::size_t>(p.swap_to[s]) * kStride;
    const V4 va = load4(ra);
    const V4 vb = load4(rb);
    store4(ra, vb);
    store4(rb, va);
    double* const ia = im + static_cast<std::size_t>(p.swap_from[s]) * kStride;
    double* const ib = im + static_cast<std::size_t>(p.swap_to[s]) * kStride;
    const V4 wa = load4(ia);
    const V4 wb = load4(ib);
    store4(ia, wb);
    store4(ib, wa);
  }

  for (std::size_t len = 2; len <= p.n; len <<= 1) {
    const std::size_t half = len / 2;
    const double* wr = tw_re + (half - 1);
    const double* wi = tw_im + (half - 1);
    for (std::size_t i = 0; i < p.n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const V4 wre = splat4(wr[k]);
        const V4 wim = splat4(wi[k]);
        double* const pru = re + (i + k) * kStride;
        double* const piu = im + (i + k) * kStride;
        double* const prv = re + (i + k + half) * kStride;
        double* const piv = im + (i + k + half) * kStride;
        const V4 bre = load4(prv);
        const V4 bim = load4(piv);
        const V4 vre = sub4(mul4(bre, wre), mul4(bim, wim));
        const V4 vim = add4(mul4(bre, wim), mul4(bim, wre));
        const V4 ure = load4(pru);
        const V4 uim = load4(piu);
        store4(pru, add4(ure, vre));
        store4(piu, add4(uim, vim));
        store4(prv, sub4(ure, vre));
        store4(piv, sub4(uim, vim));
      }
    }
  }
}

void convolve(const PlanView& p, double* re, double* im,
              std::size_t /*lanes*/) {
  fft_pass(p, re, im, p.fwd_re, p.fwd_im);
  for (std::size_t i = 0; i < p.n; ++i) {
    const V4 br = splat4(p.kernel_re[i]);
    const V4 bi = splat4(p.kernel_im[i]);
    double* const pr = re + i * kStride;
    double* const pi = im + i * kStride;
    const V4 ar = load4(pr);
    const V4 ai = load4(pi);
    store4(pr, sub4(mul4(ar, br), mul4(ai, bi)));
    store4(pi, add4(mul4(ar, bi), mul4(ai, br)));
  }
  fft_pass(p, re, im, p.inv_re, p.inv_im);
  const V4 scale = splat4(p.inv_n);
  for (std::size_t i = 0; i < p.n; ++i) {
    double* const pr = re + i * kStride;
    double* const pi = im + i * kStride;
    store4(pr, mul4(load4(pr), scale));
    store4(pi, mul4(load4(pi), scale));
  }
}

}  // namespace

const BatchKernel& neon_kernel_impl() {
  static constexpr BatchKernel kernel{"neon", kStride, convolve};
  return kernel;
}

}  // namespace ifdk::fft::simd

#endif  // defined(__aarch64__)
