// AVX2 backend: the same radix-2 passes as the scalar reference, with one
// __m256d covering the four double lanes of the SoA batch. The twiddle (and
// kernel-spectrum) factors are lane-invariant broadcasts, and element i's
// four lanes sit contiguously at [i * kStride, i * kStride + 4), so every
// butterfly is two 32-byte loads, the mul/sub/add sequence of the scalar
// backend, and two 32-byte stores — no shuffles, no gathers, no
// cross-lane mixing.
//
// This translation unit is compiled with -mavx2 -mfma -ffp-contract=off and
// only linked when CMake enables it (IFDK_HAVE_AVX2); runtime CPUID dispatch
// decides whether it actually runs. -ffp-contract=off matters: fusing any
// mul/add pair of the butterfly into an FMA would round differently from the
// scalar backend and break the bitwise-equivalence contract. Inactive lanes
// are zero-filled by the caller, so transforming all four unconditionally is
// harmless (0 stays 0 through every butterfly).
#include "fft/simd/batch_kernel.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstddef>

namespace ifdk::fft::simd {

namespace {

/// This backend's SoA stride (= BatchKernel::lanes): one __m256d.
constexpr std::size_t kStride = 4;

// One radix-2 pass over all four lanes at once: same swap pairs, same stage
// order, same per-lane arithmetic as the scalar fft_lane.
void fft_pass(const PlanView& p, double* re, double* im, const double* tw_re,
              const double* tw_im) {
  for (std::size_t s = 0; s < p.swaps; ++s) {
    double* const ra = re + static_cast<std::size_t>(p.swap_from[s]) * kStride;
    double* const rb = re + static_cast<std::size_t>(p.swap_to[s]) * kStride;
    const __m256d va = _mm256_loadu_pd(ra);
    const __m256d vb = _mm256_loadu_pd(rb);
    _mm256_storeu_pd(ra, vb);
    _mm256_storeu_pd(rb, va);
    double* const ia = im + static_cast<std::size_t>(p.swap_from[s]) * kStride;
    double* const ib = im + static_cast<std::size_t>(p.swap_to[s]) * kStride;
    const __m256d wa = _mm256_loadu_pd(ia);
    const __m256d wb = _mm256_loadu_pd(ib);
    _mm256_storeu_pd(ia, wb);
    _mm256_storeu_pd(ib, wa);
  }

  for (std::size_t len = 2; len <= p.n; len <<= 1) {
    const std::size_t half = len / 2;
    const double* wr = tw_re + (half - 1);
    const double* wi = tw_im + (half - 1);
    for (std::size_t i = 0; i < p.n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const __m256d wre = _mm256_set1_pd(wr[k]);
        const __m256d wim = _mm256_set1_pd(wi[k]);
        double* const pru = re + (i + k) * kStride;
        double* const piu = im + (i + k) * kStride;
        double* const prv = re + (i + k + half) * kStride;
        double* const piv = im + (i + k + half) * kStride;
        const __m256d bre = _mm256_loadu_pd(prv);
        const __m256d bim = _mm256_loadu_pd(piv);
        const __m256d vre =
            _mm256_sub_pd(_mm256_mul_pd(bre, wre), _mm256_mul_pd(bim, wim));
        const __m256d vim =
            _mm256_add_pd(_mm256_mul_pd(bre, wim), _mm256_mul_pd(bim, wre));
        const __m256d ure = _mm256_loadu_pd(pru);
        const __m256d uim = _mm256_loadu_pd(piu);
        _mm256_storeu_pd(pru, _mm256_add_pd(ure, vre));
        _mm256_storeu_pd(piu, _mm256_add_pd(uim, vim));
        _mm256_storeu_pd(prv, _mm256_sub_pd(ure, vre));
        _mm256_storeu_pd(piv, _mm256_sub_pd(uim, vim));
      }
    }
  }
}

void convolve(const PlanView& p, double* re, double* im,
              std::size_t /*lanes*/) {
  fft_pass(p, re, im, p.fwd_re, p.fwd_im);
  for (std::size_t i = 0; i < p.n; ++i) {
    const __m256d br = _mm256_set1_pd(p.kernel_re[i]);
    const __m256d bi = _mm256_set1_pd(p.kernel_im[i]);
    double* const pr = re + i * kStride;
    double* const pi = im + i * kStride;
    const __m256d ar = _mm256_loadu_pd(pr);
    const __m256d ai = _mm256_loadu_pd(pi);
    _mm256_storeu_pd(
        pr, _mm256_sub_pd(_mm256_mul_pd(ar, br), _mm256_mul_pd(ai, bi)));
    _mm256_storeu_pd(
        pi, _mm256_add_pd(_mm256_mul_pd(ar, bi), _mm256_mul_pd(ai, br)));
  }
  fft_pass(p, re, im, p.inv_re, p.inv_im);
  const __m256d scale = _mm256_set1_pd(p.inv_n);
  for (std::size_t i = 0; i < p.n; ++i) {
    double* const pr = re + i * kStride;
    double* const pi = im + i * kStride;
    _mm256_storeu_pd(pr, _mm256_mul_pd(_mm256_loadu_pd(pr), scale));
    _mm256_storeu_pd(pi, _mm256_mul_pd(_mm256_loadu_pd(pi), scale));
  }
}

}  // namespace

const BatchKernel& avx2_kernel_impl() {
  static constexpr BatchKernel kernel{"avx2", kStride, convolve};
  return kernel;
}

}  // namespace ifdk::fft::simd

#endif  // defined(__AVX2__)
