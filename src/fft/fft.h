// FFT substrate for the filtering stage (paper Section 2.2.3).
//
// The ramp-filter convolution of Algorithm 1 is executed in the frequency
// domain via the Convolution Theorem. The paper uses Intel IPP on the CPU;
// this module is a from-scratch replacement providing:
//   * an iterative radix-2 Cooley-Tukey transform for power-of-two sizes,
//   * Bluestein's chirp-z algorithm for arbitrary sizes,
//   * real-input convenience wrappers and a frequency-domain convolver.
//
// All transforms are unnormalized in the forward direction; inverse applies
// the 1/N factor (matching FFTW/IPP conventions).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace ifdk::fft {

using Complex = std::complex<double>;

/// In-place forward FFT. `data.size()` may be any positive length; radix-2 is
/// used when the length is a power of two, Bluestein otherwise.
void forward(std::vector<Complex>& data);

/// In-place inverse FFT (includes the 1/N normalization).
void inverse(std::vector<Complex>& data);

/// Forward FFT of a real signal; returns the full complex spectrum of length
/// `signal.size()`.
std::vector<Complex> forward_real(const std::vector<double>& signal);

/// Inverse FFT returning only the real part (the imaginary part of the result
/// is discarded; callers use it when the spectrum has Hermitian symmetry).
std::vector<double> inverse_real(std::vector<Complex> spectrum);

/// Circular convolution of two equal-length real signals via FFT.
std::vector<double> circular_convolve(const std::vector<double>& a,
                                      const std::vector<double>& b);

/// Plan for repeated convolution of many rows with one fixed real kernel:
/// the kernel spectrum is computed once, each row is transformed, multiplied
/// and inverse-transformed. This is exactly the per-row work of Algorithm 1
/// line 4. Rows are zero-padded to `padded_size()` internally.
class RowConvolver {
 public:
  /// `row_length` is Nu; `kernel` is the spatial-domain filter whose length
  /// determines the zero-padding (linear convolution requires
  /// padded >= row_length + kernel.size() - 1; we round up to a power of two).
  RowConvolver(std::size_t row_length, const std::vector<double>& kernel);

  std::size_t row_length() const { return row_length_; }
  std::size_t padded_size() const { return padded_; }

  /// Convolves one row in place: row[0..Nu) <- (row * kernel)[Nu window].
  /// The output window is centered so that a symmetric kernel leaves features
  /// in place (standard FBP filtering alignment).
  void convolve_row(float* row) const;

 private:
  std::size_t row_length_;
  std::size_t padded_;
  std::size_t kernel_center_;
  std::vector<Complex> kernel_spectrum_;
};

/// Naive O(N^2) DFT used only by tests as an oracle.
std::vector<Complex> naive_dft(const std::vector<Complex>& data);

}  // namespace ifdk::fft
