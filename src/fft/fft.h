// FFT substrate for the filtering stage (paper Section 2.2.3).
//
// The ramp-filter convolution of Algorithm 1 is executed in the frequency
// domain via the Convolution Theorem. The paper uses Intel IPP on the CPU;
// this module is a from-scratch replacement providing:
//   * an iterative radix-2 Cooley-Tukey transform for power-of-two sizes,
//   * Bluestein's chirp-z algorithm for arbitrary sizes,
//   * real-input convenience wrappers and a frequency-domain convolver.
//
// All transforms are unnormalized in the forward direction; inverse applies
// the 1/N factor (matching FFTW/IPP conventions).
//
// The hot path — RowConvolver — runs on the batch backends of fft/simd/:
// rows are packed batch_lanes() at a time into an SoA workspace (one
// detector row per vector lane; the lane count is a backend property — 8
// for avx512, 4 for scalar/avx2/neon) and transformed by a
// runtime-dispatched kernel. Every backend executes the same per-lane
// operation sequence, so all backends — and batched vs single-row calls —
// produce bitwise-identical filtered rows.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "fft/simd/batch_kernel.h"

namespace ifdk::fft {

using Complex = std::complex<double>;

/// Backend selector for the batched row-convolution kernels, re-exported
/// from fft::simd so callers configure `fft::Backend::kScalar` etc. without
/// reaching into the backend namespace.
using Backend = simd::Backend;

/// Upper bound on rows per SoA batch across every backend (avx512's 8);
/// workspaces are sized for this so one Workspace serves any kernel. The
/// actual rows-per-batch of a planned convolver is
/// RowConvolver::batch_lanes().
inline constexpr std::size_t kMaxBatchLanes = simd::kMaxLanes;

/// In-place forward FFT. `data.size()` may be any positive length; radix-2 is
/// used when the length is a power of two, Bluestein otherwise.
void forward(std::vector<Complex>& data);

/// In-place inverse FFT (includes the 1/N normalization).
void inverse(std::vector<Complex>& data);

/// Forward FFT of a real signal; returns the full complex spectrum of length
/// `signal.size()`.
std::vector<Complex> forward_real(const std::vector<double>& signal);

/// Inverse FFT returning only the real part (the imaginary part of the result
/// is discarded; callers use it when the spectrum has Hermitian symmetry).
std::vector<double> inverse_real(std::vector<Complex> spectrum);

/// Circular convolution of two equal-length real signals via FFT.
std::vector<double> circular_convolve(const std::vector<double>& a,
                                      const std::vector<double>& b);

/// Caller-owned scratch for RowConvolver: two 64-byte-aligned SoA planes
/// (real/imaginary) holding kMaxBatchLanes zero-padded rows. A Workspace is
/// NOT thread-safe — each thread uses its own (or the per-thread one from
/// thread_workspace()) — which is what lets RowConvolver stay const and be
/// shared freely across pooled threads. Reused across calls so steady-state
/// filtering performs no heap allocation (the seed allocated a padded
/// complex vector per row; see allocations()).
class Workspace {
 public:
  /// Grows the planes to hold `padded` complex samples per lane; no-op when
  /// already large enough. Called by RowConvolver before each batch.
  void ensure(std::size_t padded);

  /// Number of heap (re)allocations performed so far. Tests pin this to
  /// prove that filtering any number of rows through one workspace
  /// allocates at most once.
  std::size_t allocations() const { return allocations_; }

  /// Capacity in padded complex samples per lane.
  std::size_t capacity() const { return capacity_; }

  /// Real plane: capacity() * kMaxBatchLanes doubles; element i of lane l
  /// sits at index i * W + l, where W is the batch_lanes() of the convolver
  /// using the workspace.
  double* re() { return re_.data(); }

  /// Imaginary plane, same layout as re().
  double* im() { return im_.data(); }

 private:
  AlignedBuffer<double> re_;
  AlignedBuffer<double> im_;
  std::size_t capacity_ = 0;
  std::size_t allocations_ = 0;
};

/// The calling thread's lazily-created Workspace. Backing store for the
/// convenience overloads below and for pool workers that have no natural
/// place to own scratch across tasks.
Workspace& thread_workspace();

/// Plan for repeated convolution of many rows with one fixed real kernel:
/// the kernel spectrum, bit-reversal swaps and per-stage twiddle factors are
/// computed once; each row batch is transformed, multiplied and
/// inverse-transformed by the selected simd backend. This is exactly the
/// per-row work of Algorithm 1 line 4. Rows are zero-padded to
/// `padded_size()` inside the workspace.
class RowConvolver {
 public:
  /// `row_length` is Nu; `kernel` is the spatial-domain filter whose length
  /// determines the zero-padding (linear convolution requires
  /// padded >= row_length + kernel.size() - 1; we round up to a power of
  /// two, so the radix-2 kernels always apply). `backend` picks the batch
  /// kernel; kAuto resolves here, once, to the fastest supported one.
  RowConvolver(std::size_t row_length, const std::vector<double>& kernel,
               Backend backend = Backend::kAuto);

  /// Row length Nu this convolver was planned for.
  std::size_t row_length() const { return row_length_; }

  /// Power-of-two padded FFT length.
  std::size_t padded_size() const { return padded_; }

  /// Name of the batch kernel actually selected ("scalar", "avx2",
  /// "avx512" or "neon").
  const char* backend_name() const { return kernel_->name; }

  /// Rows per SoA batch of the selected kernel (its lane width): 8 for
  /// avx512, 4 for scalar/avx2/neon. Also the SoA stride of the workspace
  /// planes during this convolver's batches.
  std::size_t batch_lanes() const { return kernel_->lanes; }

  /// Convolves one row in place: row[0..Nu) <- (row * kernel)[Nu window].
  /// The output window is centered so that a symmetric kernel leaves
  /// features in place (standard FBP filtering alignment). `ws` provides
  /// the scratch planes and must not be shared across threads.
  void convolve_row(float* row, Workspace& ws) const;

  /// Convenience overload of convolve_row using thread_workspace().
  void convolve_row(float* row) const;

  /// Convolves `count` contiguous rows (row r at rows + r * row_length())
  /// in place, batch_lanes() rows per backend call plus one partial batch.
  /// Bitwise-identical to `count` convolve_row calls.
  void convolve_rows(float* rows, std::size_t count, Workspace& ws) const;

  /// Convenience overload of convolve_rows using thread_workspace().
  void convolve_rows(float* rows, std::size_t count) const;

 private:
  /// One backend call: packs `lanes` <= batch_lanes() rows into the SoA
  /// planes, convolves, unpacks the centered output window.
  void convolve_batch(float* rows, std::size_t lanes, Workspace& ws) const;

  /// Assembles the read-only view the batch kernels consume.
  simd::PlanView plan_view() const;

  std::size_t row_length_;
  std::size_t padded_;
  std::size_t kernel_center_;
  const simd::BatchKernel* kernel_;
  double inv_n_;
  std::vector<std::uint32_t> swap_from_;
  std::vector<std::uint32_t> swap_to_;
  std::vector<double> fwd_re_;
  std::vector<double> fwd_im_;
  std::vector<double> inv_re_;
  std::vector<double> inv_im_;
  std::vector<double> kernel_re_;
  std::vector<double> kernel_im_;
};

/// Naive O(N^2) DFT used only by tests as an oracle.
std::vector<Complex> naive_dft(const std::vector<Complex>& data);

}  // namespace ifdk::fft
