#include "fft/fft.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace ifdk::fft {

namespace {

// Iterative radix-2 Cooley-Tukey, decimation in time. `sign` is -1 for the
// forward transform (engineering convention, e^{-i2πkn/N}) and +1 for inverse.
void radix2(std::vector<Complex>& a, int sign) {
  const std::size_t n = a.size();
  IFDK_ASSERT(is_pow2(n));

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * kPi / static_cast<double>(len);
    const Complex wn(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wn;
      }
    }
  }
}

// Bluestein chirp-z transform: expresses an arbitrary-length DFT as a
// circular convolution of power-of-two length.
void bluestein(std::vector<Complex>& a, int sign) {
  const std::size_t n = a.size();
  const std::size_t m = next_pow2(2 * n + 1);

  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Use k^2 mod 2n to avoid catastrophic angle growth for large k.
    const std::size_t k2 = (static_cast<unsigned long long>(k) * k) % (2 * n);
    const double angle =
        sign * kPi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }

  std::vector<Complex> x(m, Complex(0, 0));
  std::vector<Complex> y(m, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * chirp[k];
  y[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    y[k] = y[m - k] = std::conj(chirp[k]);
  }

  radix2(x, -1);
  radix2(y, -1);
  for (std::size_t k = 0; k < m; ++k) x[k] *= y[k];
  radix2(x, +1);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    a[k] = x[k] * inv_m * chirp[k];
  }
}

void transform(std::vector<Complex>& data, int sign) {
  const std::size_t n = data.size();
  IFDK_ASSERT(n > 0);
  if (n == 1) return;
  if (is_pow2(n)) {
    radix2(data, sign);
  } else {
    bluestein(data, sign);
  }
}

}  // namespace

void forward(std::vector<Complex>& data) { transform(data, -1); }

void inverse(std::vector<Complex>& data) {
  transform(data, +1);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (auto& v : data) v *= inv_n;
}

std::vector<Complex> forward_real(const std::vector<double>& signal) {
  std::vector<Complex> data(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) data[i] = Complex(signal[i], 0);
  forward(data);
  return data;
}

std::vector<double> inverse_real(std::vector<Complex> spectrum) {
  inverse(spectrum);
  std::vector<double> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = spectrum[i].real();
  return out;
}

std::vector<double> circular_convolve(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  IFDK_ASSERT(a.size() == b.size());
  auto sa = forward_real(a);
  auto sb = forward_real(b);
  for (std::size_t i = 0; i < sa.size(); ++i) sa[i] *= sb[i];
  return inverse_real(std::move(sa));
}

RowConvolver::RowConvolver(std::size_t row_length,
                           const std::vector<double>& kernel)
    : row_length_(row_length) {
  IFDK_ASSERT(row_length > 0);
  IFDK_ASSERT(!kernel.empty());
  // The ramp kernel is symmetric around its center; linear convolution output
  // sample i of the original row lives at padded index i + kernel_center.
  kernel_center_ = kernel.size() / 2;
  padded_ = next_pow2(row_length + kernel.size() - 1);
  std::vector<Complex> k(padded_, Complex(0, 0));
  for (std::size_t i = 0; i < kernel.size(); ++i) k[i] = Complex(kernel[i], 0);
  forward(k);
  kernel_spectrum_ = std::move(k);
}

void RowConvolver::convolve_row(float* row) const {
  std::vector<Complex> buf(padded_, Complex(0, 0));
  for (std::size_t i = 0; i < row_length_; ++i) {
    buf[i] = Complex(static_cast<double>(row[i]), 0);
  }
  forward(buf);
  for (std::size_t i = 0; i < padded_; ++i) buf[i] *= kernel_spectrum_[i];
  inverse(buf);
  for (std::size_t i = 0; i < row_length_; ++i) {
    row[i] = static_cast<float>(buf[i + kernel_center_].real());
  }
}

std::vector<Complex> naive_dft(const std::vector<Complex>& data) {
  const std::size_t n = data.size();
  std::vector<Complex> out(n, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double angle =
          -2.0 * kPi * static_cast<double>(k * t) / static_cast<double>(n);
      out[k] += data[t] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

}  // namespace ifdk::fft
