#include "fft/fft.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/math_util.h"

namespace ifdk::fft {

namespace {

// Iterative radix-2 Cooley-Tukey, decimation in time. `sign` is -1 for the
// forward transform (engineering convention, e^{-i2πkn/N}) and +1 for inverse.
void radix2(std::vector<Complex>& a, int sign) {
  const std::size_t n = a.size();
  IFDK_ASSERT(is_pow2(n));

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * kPi / static_cast<double>(len);
    const Complex wn(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wn;
      }
    }
  }
}

// Bluestein chirp-z transform: expresses an arbitrary-length DFT as a
// circular convolution of power-of-two length.
void bluestein(std::vector<Complex>& a, int sign) {
  const std::size_t n = a.size();
  const std::size_t m = next_pow2(2 * n + 1);

  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Use k^2 mod 2n to avoid catastrophic angle growth for large k.
    const std::size_t k2 = (static_cast<unsigned long long>(k) * k) % (2 * n);
    const double angle =
        sign * kPi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }

  std::vector<Complex> x(m, Complex(0, 0));
  std::vector<Complex> y(m, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * chirp[k];
  y[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    y[k] = y[m - k] = std::conj(chirp[k]);
  }

  radix2(x, -1);
  radix2(y, -1);
  for (std::size_t k = 0; k < m; ++k) x[k] *= y[k];
  radix2(x, +1);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    a[k] = x[k] * inv_m * chirp[k];
  }
}

void transform(std::vector<Complex>& data, int sign) {
  const std::size_t n = data.size();
  IFDK_ASSERT(n > 0);
  if (n == 1) return;
  if (is_pow2(n)) {
    radix2(data, sign);
  } else {
    bluestein(data, sign);
  }
}

}  // namespace

void forward(std::vector<Complex>& data) { transform(data, -1); }

void inverse(std::vector<Complex>& data) {
  transform(data, +1);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (auto& v : data) v *= inv_n;
}

std::vector<Complex> forward_real(const std::vector<double>& signal) {
  std::vector<Complex> data(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) data[i] = Complex(signal[i], 0);
  forward(data);
  return data;
}

std::vector<double> inverse_real(std::vector<Complex> spectrum) {
  inverse(spectrum);
  std::vector<double> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = spectrum[i].real();
  return out;
}

std::vector<double> circular_convolve(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  IFDK_ASSERT(a.size() == b.size());
  auto sa = forward_real(a);
  auto sb = forward_real(b);
  for (std::size_t i = 0; i < sa.size(); ++i) sa[i] *= sb[i];
  return inverse_real(std::move(sa));
}

void Workspace::ensure(std::size_t padded) {
  if (padded <= capacity_) return;
  // Sized for the widest backend so one workspace serves whichever kernel
  // dispatch settled on (and the allocation count stays at one even if two
  // convolvers with different lane widths share it).
  re_.allocate(padded * kMaxBatchLanes);
  im_.allocate(padded * kMaxBatchLanes);
  capacity_ = padded;
  ++allocations_;
}

Workspace& thread_workspace() {
  thread_local Workspace ws;
  return ws;
}

RowConvolver::RowConvolver(std::size_t row_length,
                           const std::vector<double>& kernel, Backend backend)
    : row_length_(row_length), kernel_(&simd::select(backend)) {
  IFDK_ASSERT(row_length > 0);
  IFDK_ASSERT(!kernel.empty());
  // The ramp kernel is symmetric around its center; linear convolution output
  // sample i of the original row lives at padded index i + kernel_center.
  kernel_center_ = kernel.size() / 2;
  padded_ = next_pow2(row_length + kernel.size() - 1);
  IFDK_ASSERT(padded_ <= std::numeric_limits<std::uint32_t>::max());
  inv_n_ = 1.0 / static_cast<double>(padded_);

  std::vector<Complex> k(padded_, Complex(0, 0));
  for (std::size_t i = 0; i < kernel.size(); ++i) k[i] = Complex(kernel[i], 0);
  forward(k);
  kernel_re_.resize(padded_);
  kernel_im_.resize(padded_);
  for (std::size_t i = 0; i < padded_; ++i) {
    kernel_re_[i] = k[i].real();
    kernel_im_[i] = k[i].imag();
  }

  // Bit-reversal permutation as explicit swap pairs: the same (i, j) swaps
  // radix2() performs, recorded once so the batch kernels replay them
  // without recomputing the reversed index per call.
  for (std::size_t i = 1, j = 0; i < padded_; ++i) {
    std::size_t bit = padded_ >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      swap_from_.push_back(static_cast<std::uint32_t>(i));
      swap_to_.push_back(static_cast<std::uint32_t>(j));
    }
  }

  // Stage-packed twiddle tables: stage len occupies [len/2 - 1, len - 1)
  // and holds exactly the w values of radix2()'s w *= wn recurrence, so a
  // plan-driven transform rounds identically to the seed's per-call one.
  const auto build = [this](int sign, std::vector<double>& tre,
                            std::vector<double>& tim) {
    tre.reserve(padded_ - 1);
    tim.reserve(padded_ - 1);
    for (std::size_t len = 2; len <= padded_; len <<= 1) {
      const double angle = sign * 2.0 * kPi / static_cast<double>(len);
      const Complex wn(std::cos(angle), std::sin(angle));
      Complex w(1.0, 0.0);
      for (std::size_t k2 = 0; k2 < len / 2; ++k2) {
        tre.push_back(w.real());
        tim.push_back(w.imag());
        w *= wn;
      }
    }
  };
  build(-1, fwd_re_, fwd_im_);
  build(+1, inv_re_, inv_im_);
}

simd::PlanView RowConvolver::plan_view() const {
  simd::PlanView p;
  p.n = padded_;
  p.swap_from = swap_from_.data();
  p.swap_to = swap_to_.data();
  p.swaps = swap_from_.size();
  p.fwd_re = fwd_re_.data();
  p.fwd_im = fwd_im_.data();
  p.inv_re = inv_re_.data();
  p.inv_im = inv_im_.data();
  p.kernel_re = kernel_re_.data();
  p.kernel_im = kernel_im_.data();
  p.inv_n = inv_n_;
  return p;
}

void RowConvolver::convolve_batch(float* rows, std::size_t lanes,
                                  Workspace& ws) const {
  const std::size_t width = kernel_->lanes;  // SoA stride of this backend
  IFDK_ASSERT(lanes >= 1 && lanes <= width);
  ws.ensure(padded_);
  double* re = ws.re();
  double* im = ws.im();
  // Zero everything: the pad region must be zero for linear convolution,
  // and inactive lanes must be zero so the vector backends (which always
  // transform all `width` lanes) work on clean data.
  const std::size_t total = padded_ * width;
  std::fill(re, re + total, 0.0);
  std::fill(im, im + total, 0.0);
  for (std::size_t l = 0; l < lanes; ++l) {
    const float* row = rows + l * row_length_;
    for (std::size_t i = 0; i < row_length_; ++i) {
      re[i * width + l] = static_cast<double>(row[i]);
    }
  }
  kernel_->convolve(plan_view(), re, im, lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    float* row = rows + l * row_length_;
    for (std::size_t i = 0; i < row_length_; ++i) {
      row[i] = static_cast<float>(re[(i + kernel_center_) * width + l]);
    }
  }
}

void RowConvolver::convolve_row(float* row, Workspace& ws) const {
  convolve_batch(row, 1, ws);
}

void RowConvolver::convolve_row(float* row) const {
  convolve_batch(row, 1, thread_workspace());
}

void RowConvolver::convolve_rows(float* rows, std::size_t count,
                                 Workspace& ws) const {
  const std::size_t width = kernel_->lanes;
  std::size_t r = 0;
  for (; r + width <= count; r += width) {
    convolve_batch(rows + r * row_length_, width, ws);
  }
  if (r < count) {
    convolve_batch(rows + r * row_length_, count - r, ws);
  }
}

void RowConvolver::convolve_rows(float* rows, std::size_t count) const {
  convolve_rows(rows, count, thread_workspace());
}

std::vector<Complex> naive_dft(const std::vector<Complex>& data) {
  const std::size_t n = data.size();
  std::vector<Complex> out(n, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double angle =
          -2.0 * kPi * static_cast<double>(k * t) / static_cast<double>(n);
      out[k] += data[t] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

}  // namespace ifdk::fft
