// Volume and image I/O against the real filesystem.
//
// The paper verifies outputs by rendering volumes in ImageJ (Section 5.1);
// this module writes the formats that workflow expects:
//   * RAW + MHD — the MetaImage header ITK/ImageJ/RTK read natively,
//   * PGM       — single slices / projections for quick eyeballing,
// plus raw round-trip helpers used by the examples.
#pragma once

#include <string>

#include "common/image.h"
#include "common/volume.h"

namespace ifdk::imgio {

/// Writes `<path_base>.raw` (float32 little-endian, X fastest) and
/// `<path_base>.mhd` describing it. The volume must be kXMajor.
/// `spacing_*` are the voxel pitches recorded in the header [mm].
void write_mhd(const Volume& volume, const std::string& path_base,
               double spacing_x = 1.0, double spacing_y = 1.0,
               double spacing_z = 1.0);

/// Reads a volume back from `<path_base>.raw` given its dimensions
/// (header parsing is intentionally out of scope — the repo writes its own).
Volume read_raw_volume(const std::string& path_base, std::size_t nx,
                       std::size_t ny, std::size_t nz);

/// Writes an 8-bit PGM, linearly mapping [lo, hi] -> [0, 255]; when
/// lo == hi the image's own min/max are used.
void write_pgm(const Image2D& image, const std::string& path, float lo = 0.0f,
               float hi = 0.0f);

/// Writes XY slice k of an X-major volume as PGM (auto-scaled).
void write_slice_pgm(const Volume& volume, std::size_t k,
                     const std::string& path);

// --- projection I/O (scanner-style raw frames) -----------------------------

/// Writes one projection as raw float32 (u fastest).
void write_projection_raw(const Image2D& image, const std::string& path);

/// Reads a raw float32 projection of known dimensions.
Image2D read_projection_raw(const std::string& path, std::size_t nu,
                            std::size_t nv);

/// Reads a raw little-endian uint16 projection (what flat panel detectors
/// actually emit) and scales it to float by `scale` (value = raw * scale).
Image2D read_projection_u16(const std::string& path, std::size_t nu,
                            std::size_t nv, float scale = 1.0f);

/// Writes a projection as raw uint16, mapping [0, max_value] -> [0, 65535]
/// (the inverse of read_projection_u16 with scale = max_value / 65535).
void write_projection_u16(const Image2D& image, const std::string& path,
                          float max_value);

}  // namespace ifdk::imgio
