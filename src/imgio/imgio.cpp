#include "imgio/imgio.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "common/error.h"

namespace ifdk::imgio {

void write_mhd(const Volume& volume, const std::string& path_base,
               double spacing_x, double spacing_y, double spacing_z) {
  IFDK_REQUIRE(volume.layout() == VolumeLayout::kXMajor,
               "MHD export expects the on-disk (X-major) layout");
  {
    std::ofstream raw(path_base + ".raw", std::ios::binary);
    if (!raw) throw IoError("cannot open " + path_base + ".raw for writing");
    raw.write(reinterpret_cast<const char*>(volume.data()),
              static_cast<std::streamsize>(volume.bytes()));
    if (!raw) throw IoError("short write to " + path_base + ".raw");
  }
  std::ofstream mhd(path_base + ".mhd");
  if (!mhd) throw IoError("cannot open " + path_base + ".mhd for writing");
  // Strip any directory part for the data-file reference.
  std::string raw_name = path_base + ".raw";
  const auto slash = raw_name.find_last_of('/');
  if (slash != std::string::npos) raw_name = raw_name.substr(slash + 1);
  mhd << "ObjectType = Image\n"
      << "NDims = 3\n"
      << "BinaryData = True\n"
      << "BinaryDataByteOrderMSB = False\n"
      << "DimSize = " << volume.nx() << " " << volume.ny() << " "
      << volume.nz() << "\n"
      << "ElementSpacing = " << spacing_x << " " << spacing_y << " "
      << spacing_z << "\n"
      << "ElementType = MET_FLOAT\n"
      << "ElementDataFile = " << raw_name << "\n";
}

Volume read_raw_volume(const std::string& path_base, std::size_t nx,
                       std::size_t ny, std::size_t nz) {
  Volume volume(nx, ny, nz, VolumeLayout::kXMajor, /*zero_fill=*/false);
  std::ifstream raw(path_base + ".raw", std::ios::binary);
  if (!raw) throw IoError("cannot open " + path_base + ".raw for reading");
  raw.read(reinterpret_cast<char*>(volume.data()),
           static_cast<std::streamsize>(volume.bytes()));
  if (raw.gcount() != static_cast<std::streamsize>(volume.bytes())) {
    throw IoError("short read from " + path_base + ".raw");
  }
  return volume;
}

void write_pgm(const Image2D& image, const std::string& path, float lo,
               float hi) {
  if (lo == hi) {
    lo = hi = image.data()[0];
    for (std::size_t n = 0; n < image.pixels(); ++n) {
      lo = std::min(lo, image.data()[n]);
      hi = std::max(hi, image.data()[n]);
    }
    if (lo == hi) hi = lo + 1.0f;  // constant image -> all black
  }
  std::ofstream pgm(path, std::ios::binary);
  if (!pgm) throw IoError("cannot open " + path + " for writing");
  pgm << "P5\n" << image.width() << " " << image.height() << "\n255\n";
  const float scale = 255.0f / (hi - lo);
  for (std::size_t n = 0; n < image.pixels(); ++n) {
    const float v = std::clamp((image.data()[n] - lo) * scale, 0.0f, 255.0f);
    pgm.put(static_cast<char>(static_cast<unsigned char>(v)));
  }
  if (!pgm) throw IoError("short write to " + path);
}

void write_slice_pgm(const Volume& volume, std::size_t k,
                     const std::string& path) {
  IFDK_REQUIRE(volume.layout() == VolumeLayout::kXMajor,
               "slice export expects the X-major layout");
  IFDK_REQUIRE(k < volume.nz(), "slice index out of range");
  Image2D slice(volume.nx(), volume.ny(), /*zero_fill=*/false);
  const float* src = volume.slice(k);
  std::copy(src, src + slice.pixels(), slice.data());
  write_pgm(slice, path);
}

void write_projection_raw(const Image2D& image, const std::string& path) {
  std::ofstream raw(path, std::ios::binary);
  if (!raw) throw IoError("cannot open " + path + " for writing");
  raw.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.bytes()));
  if (!raw) throw IoError("short write to " + path);
}

Image2D read_projection_raw(const std::string& path, std::size_t nu,
                            std::size_t nv) {
  Image2D image(nu, nv, /*zero_fill=*/false);
  std::ifstream raw(path, std::ios::binary);
  if (!raw) throw IoError("cannot open " + path + " for reading");
  raw.read(reinterpret_cast<char*>(image.data()),
           static_cast<std::streamsize>(image.bytes()));
  if (raw.gcount() != static_cast<std::streamsize>(image.bytes())) {
    throw IoError("short read from " + path);
  }
  return image;
}

Image2D read_projection_u16(const std::string& path, std::size_t nu,
                            std::size_t nv, float scale) {
  std::vector<std::uint16_t> raw_pixels(nu * nv);
  std::ifstream raw(path, std::ios::binary);
  if (!raw) throw IoError("cannot open " + path + " for reading");
  const auto bytes =
      static_cast<std::streamsize>(raw_pixels.size() * sizeof(std::uint16_t));
  raw.read(reinterpret_cast<char*>(raw_pixels.data()), bytes);
  if (raw.gcount() != bytes) throw IoError("short read from " + path);
  Image2D image(nu, nv, /*zero_fill=*/false);
  for (std::size_t n = 0; n < raw_pixels.size(); ++n) {
    image.data()[n] = static_cast<float>(raw_pixels[n]) * scale;
  }
  return image;
}

void write_projection_u16(const Image2D& image, const std::string& path,
                          float max_value) {
  IFDK_REQUIRE(max_value > 0, "u16 export needs a positive full-scale value");
  std::vector<std::uint16_t> raw_pixels(image.pixels());
  const float scale = 65535.0f / max_value;
  for (std::size_t n = 0; n < raw_pixels.size(); ++n) {
    const float v = std::clamp(image.data()[n] * scale, 0.0f, 65535.0f);
    raw_pixels[n] = static_cast<std::uint16_t>(v + 0.5f);
  }
  std::ofstream raw(path, std::ios::binary);
  if (!raw) throw IoError("cannot open " + path + " for writing");
  raw.write(reinterpret_cast<const char*>(raw_pixels.data()),
            static_cast<std::streamsize>(raw_pixels.size() *
                                         sizeof(std::uint16_t)));
  if (!raw) throw IoError("short write to " + path);
}

}  // namespace ifdk::imgio
