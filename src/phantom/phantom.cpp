#include "phantom/phantom.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace ifdk::phantom {

namespace {

/// Rotates (x, y) by -phi about Z (into the ellipsoid's own frame).
geo::Vec3 to_ellipsoid_frame(const Ellipsoid& e, const geo::Vec3& p) {
  const geo::Vec3 q = p - e.center;
  const double c = std::cos(e.phi);
  const double s = std::sin(e.phi);
  return {q.x * c + q.y * s, -q.x * s + q.y * c, q.z};
}

geo::Vec3 rotate_dir(const Ellipsoid& e, const geo::Vec3& d) {
  const double c = std::cos(e.phi);
  const double s = std::sin(e.phi);
  return {d.x * c + d.y * s, -d.x * s + d.y * c, d.z};
}

}  // namespace

bool Ellipsoid::contains(const geo::Vec3& p) const {
  const geo::Vec3 q = to_ellipsoid_frame(*this, p);
  const double nx = q.x / semi_axes.x;
  const double ny = q.y / semi_axes.y;
  const double nz = q.z / semi_axes.z;
  return nx * nx + ny * ny + nz * nz <= 1.0;
}

double Ellipsoid::intersect_length(const geo::Vec3& origin,
                                   const geo::Vec3& dir) const {
  // Map the ray into the frame where the ellipsoid is the unit sphere and
  // solve |o + t d|^2 = 1 for t.
  const geo::Vec3 o_e = to_ellipsoid_frame(*this, origin);
  const geo::Vec3 d_e = rotate_dir(*this, dir);
  const geo::Vec3 o{o_e.x / semi_axes.x, o_e.y / semi_axes.y,
                    o_e.z / semi_axes.z};
  const geo::Vec3 d{d_e.x / semi_axes.x, d_e.y / semi_axes.y,
                    d_e.z / semi_axes.z};

  const double a = d.dot(d);
  if (a == 0.0) return 0.0;
  const double b = 2.0 * o.dot(d);
  const double c = o.dot(o) - 1.0;
  const double disc = b * b - 4.0 * a * c;
  if (disc <= 0.0) return 0.0;
  const double sqrt_disc = std::sqrt(disc);
  const double t1 = (-b - sqrt_disc) / (2.0 * a);
  const double t2 = (-b + sqrt_disc) / (2.0 * a);
  // Geometric chord length in the *original* units: (t2 - t1) * |dir|.
  return (t2 - t1) * dir.norm();
}

double Phantom::density_at(const geo::Vec3& p) const {
  double acc = 0.0;
  for (const auto& e : ellipsoids) {
    if (e.contains(p)) acc += e.density;
  }
  return acc;
}

double Phantom::line_integral(const geo::Vec3& origin,
                              const geo::Vec3& dir) const {
  double acc = 0.0;
  for (const auto& e : ellipsoids) {
    acc += e.density * e.intersect_length(origin, dir);
  }
  return acc;
}

namespace {

Ellipsoid make(double a, double b, double c, double x0, double y0, double z0,
               double phi_deg, double density) {
  Ellipsoid e;
  e.semi_axes = {a, b, c};
  e.center = {x0, y0, z0};
  e.phi = phi_deg * kPi / 180.0;
  e.density = density;
  return e;
}

}  // namespace

Phantom shepp_logan() {
  // The classical 3-D Shepp-Logan head (Kak & Slaney values extended to 3-D;
  // same table as MATLAB's phantom3d and RTK's SheppLoganPhantomSource).
  Phantom p;
  p.ellipsoids = {
      make(0.6900, 0.9200, 0.810, 0.00, 0.0000, 0.000, 0.0, 1.00),
      make(0.6624, 0.8740, 0.780, 0.00, -0.0184, 0.000, 0.0, -0.98),
      make(0.1100, 0.3100, 0.220, 0.22, 0.0000, 0.000, -18.0, -0.02),
      make(0.1600, 0.4100, 0.280, -0.22, 0.0000, 0.000, 18.0, -0.02),
      make(0.2100, 0.2500, 0.410, 0.00, 0.3500, -0.150, 0.0, 0.01),
      make(0.0460, 0.0460, 0.050, 0.00, 0.1000, 0.250, 0.0, 0.01),
      make(0.0460, 0.0460, 0.050, 0.00, -0.1000, 0.250, 0.0, 0.01),
      make(0.0460, 0.0230, 0.050, -0.08, -0.6050, 0.000, 0.0, 0.01),
      make(0.0230, 0.0230, 0.020, 0.00, -0.6060, 0.000, 0.0, 0.01),
      make(0.0230, 0.0460, 0.020, 0.06, -0.6050, 0.000, 0.0, 0.01),
  };
  return p;
}

Phantom modified_shepp_logan() {
  Phantom p = shepp_logan();
  const double densities[] = {1.0, -0.8, -0.2, -0.2, 0.1,
                              0.1, 0.1,  0.1,  0.1,  0.1};
  for (std::size_t i = 0; i < p.ellipsoids.size(); ++i) {
    p.ellipsoids[i].density = densities[i];
  }
  return p;
}

Phantom industrial_part() {
  Phantom p;
  // Aluminium block (flattened ellipsoid) ...
  p.ellipsoids.push_back(make(0.8, 0.8, 0.5, 0, 0, 0, 0, 2.70));
  // ... with a 3x3 grid of drilled holes (negative density cylinders
  // approximated by tall thin ellipsoids) ...
  for (int gx = -1; gx <= 1; ++gx) {
    for (int gy = -1; gy <= 1; ++gy) {
      p.ellipsoids.push_back(
          make(0.05, 0.05, 0.45, 0.4 * gx, 0.4 * gy, 0, 0, -2.70));
    }
  }
  // ... two thin internal cracks (defects an inspector must find) ...
  p.ellipsoids.push_back(make(0.30, 0.012, 0.08, 0.18, 0.22, 0.20, 30, -2.70));
  p.ellipsoids.push_back(make(0.22, 0.010, 0.06, -0.25, -0.15, -0.22, -45, -2.70));
  // ... and one dense tungsten inclusion.
  p.ellipsoids.push_back(make(0.04, 0.04, 0.04, -0.3, 0.3, 0.1, 0, 16.6));
  return p;
}

double phantom_scale(const geo::CbctGeometry& g) {
  const double hx = 0.5 * static_cast<double>(g.nx) * g.dx;
  const double hy = 0.5 * static_cast<double>(g.ny) * g.dy;
  const double hz = 0.5 * static_cast<double>(g.nz) * g.dz;
  return std::min({hx, hy, hz});
}

Volume voxelize(const Phantom& phantom, const geo::CbctGeometry& g,
                VolumeLayout layout) {
  Volume vol(g.nx, g.ny, g.nz, layout, /*zero_fill=*/false);
  const double inv_scale = 1.0 / phantom_scale(g);
  for (std::size_t k = 0; k < g.nz; ++k) {
    for (std::size_t j = 0; j < g.ny; ++j) {
      for (std::size_t i = 0; i < g.nx; ++i) {
        const geo::Vec3 w = geo::voxel_world_position(
            g, static_cast<double>(i), static_cast<double>(j),
            static_cast<double>(k));
        const geo::Vec3 n = w * inv_scale;
        vol.at(i, j, k) = static_cast<float>(phantom.density_at(n));
      }
    }
  }
  return vol;
}

Image2D project(const Phantom& phantom, const geo::CbctGeometry& g,
                double beta) {
  Image2D img(g.nu, g.nv, /*zero_fill=*/false);
  const double scale = phantom_scale(g);
  const double inv_scale = 1.0 / scale;
  const geo::Vec3 src = geo::source_position(g, beta) * inv_scale;
  for (std::size_t v = 0; v < g.nv; ++v) {
    for (std::size_t u = 0; u < g.nu; ++u) {
      const geo::Vec3 pix =
          geo::detector_pixel_position(g, beta, static_cast<double>(u),
                                       static_cast<double>(v)) *
          inv_scale;
      const geo::Vec3 dir = pix - src;
      // line_integral is in normalized units; scale restores millimetres so
      // FDK reconstructs the phantom's density values directly.
      img.at(u, v) = static_cast<float>(phantom.line_integral(src, dir) * scale);
    }
  }
  return img;
}

std::vector<Image2D> project_all(const Phantom& phantom,
                                 const geo::CbctGeometry& g) {
  std::vector<Image2D> out;
  out.reserve(g.np);
  for (std::size_t s = 0; s < g.np; ++s) {
    out.push_back(project(phantom, g, g.beta(s)));
  }
  return out;
}

}  // namespace ifdk::phantom
