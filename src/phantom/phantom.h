// Ellipsoid phantoms and the analytic cone-beam projector.
//
// The paper's measurement methodology (Section 5.1) generates projections of
// the standard Shepp-Logan phantom with RTK's forward projector. Here the
// phantom is an explicit list of ellipsoids, which admits *exact* cone-beam
// line integrals (ray/ellipsoid intersection lengths), so reconstruction
// quality can be judged against closed-form ground truth rather than another
// numeric code.
//
// Phantom coordinates are normalized to the unit cube [-1, 1]^3 and scaled to
// world millimetres by the caller-provided `scale` (usually the volume
// half-extent), matching the classical Shepp-Logan definition.
#pragma once

#include <cstddef>
#include <vector>

#include "common/image.h"
#include "common/volume.h"
#include "geometry/cbct.h"
#include "geometry/vec.h"

namespace ifdk::phantom {

/// One ellipsoid: center, semi-axes, rotation about the Z axis (phi, radians)
/// and *additive* density. Overlapping ellipsoids sum, which is how the
/// Shepp-Logan head expresses its internal structures.
struct Ellipsoid {
  geo::Vec3 center;      ///< normalized coordinates, |c| <= 1
  geo::Vec3 semi_axes;   ///< normalized semi-axes (a, b, c)
  double phi = 0.0;      ///< rotation about Z [rad]
  double density = 0.0;  ///< additive attenuation

  /// True when the (normalized) point lies inside the ellipsoid.
  bool contains(const geo::Vec3& p) const;

  /// Length of the intersection of the ray {origin + t*dir, t in R} with the
  /// ellipsoid, in the units of `origin`/`dir` (dir need not be normalized;
  /// the returned value is scaled by |dir|).
  double intersect_length(const geo::Vec3& origin, const geo::Vec3& dir) const;
};

/// A phantom is a set of ellipsoids in the normalized cube.
struct Phantom {
  std::vector<Ellipsoid> ellipsoids;

  /// Sum of densities at normalized point p.
  double density_at(const geo::Vec3& p) const;

  /// Exact line integral along origin -> origin + dir (infinite line),
  /// normalized units.
  double line_integral(const geo::Vec3& origin, const geo::Vec3& dir) const;
};

/// The standard 3-D Shepp-Logan head phantom (Kak & Slaney, Table 3.1 layout
/// extended to 3-D as commonly used by RTK/TIGRE).
Phantom shepp_logan();

/// A variant with stronger contrast, common for visual inspection.
Phantom modified_shepp_logan();

/// A synthetic industrial part: an aluminium block with a grid of drilled
/// holes and two cracks; used by the defect-inspection example (paper §6.1
/// motivates industrial CT inspection).
Phantom industrial_part();

/// Samples the phantom onto a voxel grid (ground truth for RMSE checks).
/// `scale` maps normalized units to millimetres; pass the value returned by
/// phantom_scale(geometry) to align with projections.
Volume voxelize(const Phantom& phantom, const geo::CbctGeometry& g,
                VolumeLayout layout = VolumeLayout::kXMajor);

/// The normalization scale used to embed the phantom into a geometry: the
/// smallest half-extent of the volume in world mm, so the unit sphere fits.
double phantom_scale(const geo::CbctGeometry& g);

/// Renders one cone-beam projection at gantry angle beta by exact ray
/// integration from the source through every detector pixel center.
Image2D project(const Phantom& phantom, const geo::CbctGeometry& g,
                double beta);

/// Renders all Np projections (s in [0, Np)); the workhorse that replaces
/// RTK's forward-projection tool in the paper's methodology.
std::vector<Image2D> project_all(const Phantom& phantom,
                                 const geo::CbctGeometry& g);

}  // namespace ifdk::phantom
