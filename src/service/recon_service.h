// Reconstruction-as-a-service: the multi-tenant job scheduler front door
// over the plan layer (src/ifdk/plan.h) and both engine workloads — the
// streaming FDK runtime (ifdk::run_streaming) and the distributed iterative
// solvers (iterative::run_iterative). JobSpec::workload selects which one
// runs a job; both kinds ride one queue, one dispatch order, and one
// prediction model (cluster::predict_queue_completion over the mixed
// queue).
//
// A ReconService owns ONE rank world worth of configuration and a background
// dispatch loop. Callers submit(JobSpec) — the job-centric request type the
// streaming runtime already consumes per volume — and get back a JobHandle
// that tracks the job through its lifecycle:
//
//   submit --> [admission] --> kQueued --> kAdmitted --> kRunning
//                  |                                        |
//             AdmissionError                        kStored / kFailed
//
// The scheduler makes four promises, each pinned by tests/test_service.cpp:
//
//   * Admission (§4.1.5 + tag budgets): a job whose DecompositionPlan cannot
//     fit the simulated device, or whose per-epoch collective tag budget
//     cannot fit inside mpi::Comm::kCollectiveTagWindow, is rejected AT
//     SUBMIT with a typed AdmissionError naming the offending numbers —
//     it never poisons the queue.
//   * Batching: queued jobs are ordered by priority (higher first), then
//     earliest deadline within a priority band (EDF; a deadline can never
//     promote a job past a higher band), then submit order. The dispatcher
//     hands the longest contiguous same-grid, same-workload prefix of that
//     order to one dispatch: FDK batches stream through run_streaming on
//     warm same-grid communicators; iterative batches execute job by job
//     through run_iterative, each behind its own failure barrier.
//   * Prediction: whenever the queue changes, the live queue's plan sequence
//     is fed through cluster::predict_queue_completion (the simulate_stream
//     recurrence) and every queued job's predicted completion is published
//     on its handle; ServiceStats aggregates per-tenant throughput, queue
//     latency, admission rejections, and the re-split count.
//   * Isolation: a PFS write failure fails only that job (the streaming
//     core's StreamingStats::volume_errors contract); every other job in
//     the batch — and behind it — still stores bit-exact output.
//
// The service executes jobs with exactly the run_streaming entry the rest of
// the repo uses, so a service run of N jobs is bitwise-identical to N
// sequential run_distributed calls with the same options and geometries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "cluster/simulator.h"
#include "common/error.h"
#include "common/timer.h"
#include "geometry/cbct.h"
#include "ifdk/job.h"
#include "ifdk/plan.h"
#include "perfmodel/model.h"
#include "pfs/pfs.h"

namespace ifdk::service {

/// Thrown by ReconService::submit when a job can never run on this
/// service's device/communicator budget: the decomposition does not fit the
/// simulated device (§4.1.5), or one collective epoch would reserve more
/// tags than the communicator window holds. The message names the numbers
/// (bytes needed vs available, tags needed vs window) so the caller can fix
/// the geometry or options instead of retrying.
class AdmissionError : public Error {
 public:
  /// Wraps the human-readable admission verdict.
  explicit AdmissionError(const std::string& what) : Error(what) {}
};

/// Lifecycle of a submitted job (see the header diagram). kQueued means
/// admitted and waiting; kAdmitted means selected into the batch being
/// dispatched; kRunning means its stream is executing; kStored / kFailed
/// are terminal.
enum class JobState { kQueued, kAdmitted, kRunning, kStored, kFailed };

/// Human-readable state name ("queued", "admitted", "running", "stored",
/// "failed") for logs and examples.
const char* to_string(JobState state);

/// Configuration of one ReconService instance.
struct ServiceOptions {
  /// The rank world every dispatched stream runs with (ranks, device,
  /// queue depths, reduce segmenting, I/O prefixes are per-job instead).
  IfdkOptions ifdk;
  /// Maximum jobs handed to one run_streaming dispatch. Larger batches
  /// amortize world spin-up over more volumes; 1 degenerates to job-at-a-
  /// time dispatch.
  std::size_t max_batch = 8;
  /// Virtual-time model used for predicted completions
  /// (cluster::predict_queue_completion over the live queue).
  cluster::SimConfig sim;
  /// Start with the dispatcher paused: jobs accumulate in the queue until
  /// resume(). Tests use this to submit a full mixed-priority queue and
  /// observe the exact dispatch order.
  bool start_paused = false;
};

/// Per-tenant slice of ServiceStats.
struct TenantStats {
  std::size_t submitted = 0;  ///< jobs accepted past admission
  std::size_t stored = 0;     ///< jobs fully stored
  std::size_t failed = 0;     ///< jobs that ended kFailed
  /// Raw output bytes (4 * voxels) this tenant has pushed past admission —
  /// the tenant's claim on the store, accounted when the job is accepted.
  std::size_t admitted_output_bytes = 0;
  /// Stored volumes per wall-clock second since the service started.
  double volumes_per_second = 0;
};

/// Aggregate service counters, a consistent snapshot via
/// ReconService::stats().
struct ServiceStats {
  std::size_t submitted = 0;  ///< jobs accepted past admission
  std::size_t rejected = 0;   ///< AdmissionError count (never queued)
  std::size_t stored = 0;     ///< terminal kStored
  std::size_t failed = 0;     ///< terminal kFailed
  std::size_t queued = 0;     ///< currently waiting (kQueued + kAdmitted)
  std::size_t batches = 0;    ///< run_streaming dispatches so far
  /// Grid changes between consecutively dispatched batches: how often the
  /// scheduler had to abandon warm communicators because the next-priority
  /// work resolved a different R x C grid.
  std::size_t resplits = 0;
  /// Stored jobs per wall-clock second since the service started.
  double jobs_per_second = 0;
  /// Mean submit-to-dispatch latency over all dispatched jobs.
  double mean_queue_latency_s = 0;

  // -- byte accounting -------------------------------------------------------
  // Admission counts what a job WILL move (its raw output volume); the
  // measured counters below report what dispatched streams actually moved,
  // so ratio-of-sums = the service's achieved compression.

  /// Raw output bytes (4 * voxels) accepted past admission, all tenants.
  std::size_t admitted_output_bytes = 0;
  /// Bytes fed to the framed row-reduce wire encoder across all dispatched
  /// FDK streams (0 unless IfdkOptions::compress_wire).
  std::size_t wire_raw_bytes = 0;
  /// Frame bytes that actually crossed the wire (headers included).
  std::size_t wire_encoded_bytes = 0;
  /// Bytes row roots handed the store path across all dispatched streams.
  std::size_t store_raw_bytes = 0;
  /// Bytes that actually hit the PFS (serialized compressed objects for
  /// JobSpec::compress_store jobs; raw bytes otherwise).
  std::size_t store_stored_bytes = 0;
  /// Per-tenant throughput breakdown, keyed by JobSpec::tenant.
  std::map<std::string, TenantStats> tenants;
};

namespace detail {
struct ServiceState;
struct JobRecord;
}  // namespace detail

/// Caller-side view of one submitted job. Handles are cheap shared
/// references into the service's job table and stay valid after the
/// ReconService is destroyed (terminal states are sticky).
class JobHandle {
 public:
  /// Service-unique job id, in submit order.
  std::uint64_t id() const;
  /// Current lifecycle state (see JobState).
  JobState state() const;
  /// The failure reason when state() == kFailed; "" otherwise.
  std::string error() const;
  /// Predicted completion of this job in *virtual* seconds from the moment
  /// the queue in front of it starts streaming — the simulate_stream
  /// epochs[i].done value republished on every queue change. 0 until the
  /// first prediction; frozen at dispatch (compare against wall measurement).
  double predicted_completion_s() const;
  /// Wall-clock seconds this job waited between submit and dispatch
  /// (0 until dispatched).
  double queue_latency_s() const;
  /// Global dispatch sequence number (0-based) assigned when the scheduler
  /// selected this job into a batch; -1 while still queued. Exposes the
  /// priority-then-EDF order for tests and tooling.
  int dispatch_seq() const;
  /// The R x C grid the job's plan resolved (valid once dispatched).
  perfmodel::GridShape grid() const;
  /// Per-stage wall seconds of the stream that carried this job (the
  /// IfdkStats-like timing breakdown: load/filter/allgather/backprojection/
  /// transpose/reduce/store/compute, max over ranks). Batch-level: jobs
  /// dispatched together share one stream and therefore one breakdown.
  StageTimer wall() const;
  /// Blocks until the job reaches a terminal state and returns it.
  JobState wait() const;

 private:
  friend class ReconService;
  JobHandle(std::shared_ptr<detail::ServiceState> state,
            std::shared_ptr<detail::JobRecord> job);
  std::shared_ptr<detail::ServiceState> state_;
  std::shared_ptr<detail::JobRecord> job_;
};

/// The service front door: owns the dispatch thread, the job queue, and the
/// counters. One instance per rank-world configuration; `fs` must outlive
/// the service.
class ReconService {
 public:
  /// Validates `options.ifdk` (IfdkOptions::validate) and starts the
  /// dispatch loop; `geometry` is the default for jobs without a per-job
  /// override (JobSpec::geometry).
  ReconService(const geo::CbctGeometry& geometry, pfs::ParallelFileSystem& fs,
               ServiceOptions options = {});
  ~ReconService();
  ReconService(const ReconService&) = delete;
  ReconService& operator=(const ReconService&) = delete;

  /// Admits or rejects `spec` synchronously, then enqueues it. Throws
  /// ConfigError on a malformed spec (JobSpec::validate) or an inconsistent
  /// decomposition, and AdmissionError when the resolved plan cannot fit
  /// the device or the collective tag window (counted in
  /// ServiceStats::rejected). On success the job is kQueued and its
  /// predicted completion is published on the returned handle.
  JobHandle submit(JobSpec spec);

  /// Stops dispatching new batches (the in-flight batch, if any, finishes).
  void pause();
  /// Resumes dispatching after pause().
  void resume();
  /// Blocks until the queue is empty and no batch is in flight. Implicitly
  /// resumes a paused service — drain means "run everything I submitted".
  void drain();
  /// Consistent snapshot of the aggregate counters.
  ServiceStats stats() const;

 private:
  void dispatch_loop();

  geo::CbctGeometry geometry_;
  pfs::ParallelFileSystem& fs_;
  ServiceOptions options_;
  std::shared_ptr<detail::ServiceState> state_;
  std::thread dispatcher_;
};

}  // namespace ifdk::service
