#include "service/recon_service.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "ifdk/framework.h"
#include "iterative/distributed.h"
#include "minimpi/minimpi.h"

namespace ifdk::service {

namespace detail {

/// One submitted job: the spec, its admission-time plan, and everything a
/// JobHandle can observe. Guarded by ServiceState::mu.
struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  DecompositionPlan plan;  ///< resolved at admission (resident_slabs = 2)
  JobState state = JobState::kQueued;
  std::string error;
  double submit_time = 0;    ///< seconds since service start
  double dispatch_time = 0;  ///< seconds since service start; 0 until then
  int dispatch_seq = -1;
  double predicted_completion_s = 0;
  perfmodel::GridShape grid{};
  StageTimer wall;  ///< batch-level stage breakdown once terminal
};

/// Shared control block: the queue, the counters, and the synchronization
/// primitives. JobHandles keep it alive past the ReconService's lifetime so
/// a handle can always be queried.
struct ServiceState {
  mutable std::mutex mu;
  std::condition_variable work_cv;  ///< wakes the dispatcher
  std::condition_variable done_cv;  ///< wakes waiters/drainers
  std::deque<std::shared_ptr<JobRecord>> queue;
  bool paused = false;
  bool stopping = false;
  bool dispatching = false;  ///< a batch is inside run_streaming
  std::uint64_t next_id = 1;
  int next_dispatch_seq = 0;
  std::size_t submitted = 0;
  std::size_t rejected = 0;
  std::size_t stored = 0;
  std::size_t failed = 0;
  std::size_t batches = 0;
  std::size_t resplits = 0;
  std::size_t admitted_output_bytes = 0;  ///< raw output bytes past admission
  std::size_t wire_raw_bytes = 0;         ///< framed-reduce encoder input
  std::size_t wire_encoded_bytes = 0;     ///< frame bytes on the wire
  std::size_t store_raw_bytes = 0;        ///< bytes handed the store path
  std::size_t store_stored_bytes = 0;     ///< bytes that hit the PFS
  bool have_last_grid = false;
  perfmodel::GridShape last_grid{};
  double queue_latency_sum = 0;
  std::size_t dispatched_jobs = 0;
  std::map<std::string, TenantStats> tenants;
  Timer clock;  ///< service wall clock (throughput denominators)
};

}  // namespace detail

namespace {

using detail::JobRecord;
using detail::ServiceState;

/// The streaming double buffer keeps two slab pairs resident (the plan
/// layer's resident_slabs argument); admission must be conservative against
/// the same budget the dispatched stream will actually allocate.
constexpr std::size_t kResidentSlabs = 2;

/// Scheduler order: priority band first (higher runs first — a deadline can
/// never promote a job across bands), earliest deadline within a band
/// (unset deadlines sort last), submit id as the stable tiebreak.
bool dispatches_before(const std::shared_ptr<JobRecord>& a,
                       const std::shared_ptr<JobRecord>& b) {
  if (a->spec.priority != b->spec.priority) {
    return a->spec.priority > b->spec.priority;
  }
  const bool a_has = a->spec.deadline_s.has_value();
  const bool b_has = b->spec.deadline_s.has_value();
  if (a_has != b_has) return a_has;
  if (a_has && *a->spec.deadline_s != *b->spec.deadline_s) {
    return *a->spec.deadline_s < *b->spec.deadline_s;
  }
  return a->id < b->id;
}

/// Effective subset count of an iterative job (MLEM iterates whole sweeps).
int effective_subsets(const JobSpec& spec) {
  return spec.iterative.algorithm == iterative::Algorithm::kMlem
             ? 1
             : spec.iterative.subsets;
}

/// Re-sorts the queue into dispatch order and republishes every queued
/// job's predicted completion from the mixed-queue recurrence (FDK runs
/// stream together through simulate_stream; iterative jobs run serially
/// through simulate_iterative). Caller holds ServiceState::mu.
void reorder_and_predict_locked(ServiceState& st,
                                const cluster::SimConfig& sim) {
  std::stable_sort(st.queue.begin(), st.queue.end(), dispatches_before);
  std::vector<cluster::QueuedJob> jobs;
  jobs.reserve(st.queue.size());
  for (const auto& job : st.queue) {
    cluster::QueuedJob q;
    q.plan = job->plan;
    if (job->spec.workload == WorkloadKind::kIterative) {
      q.iterative = true;
      q.iterations = job->spec.iterative.iterations;
      q.subsets = effective_subsets(job->spec);
    }
    jobs.push_back(std::move(q));
  }
  const std::vector<double> done =
      cluster::predict_queue_completion(jobs, sim);
  for (std::size_t i = 0; i < st.queue.size(); ++i) {
    st.queue[i]->predicted_completion_s = done[i];
  }
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kAdmitted:
      return "admitted";
    case JobState::kRunning:
      return "running";
    case JobState::kStored:
      return "stored";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

// ---- JobHandle --------------------------------------------------------------

JobHandle::JobHandle(std::shared_ptr<detail::ServiceState> state,
                     std::shared_ptr<detail::JobRecord> job)
    : state_(std::move(state)), job_(std::move(job)) {}

std::uint64_t JobHandle::id() const {
  std::lock_guard lock(state_->mu);
  return job_->id;
}

JobState JobHandle::state() const {
  std::lock_guard lock(state_->mu);
  return job_->state;
}

std::string JobHandle::error() const {
  std::lock_guard lock(state_->mu);
  return job_->error;
}

double JobHandle::predicted_completion_s() const {
  std::lock_guard lock(state_->mu);
  return job_->predicted_completion_s;
}

double JobHandle::queue_latency_s() const {
  std::lock_guard lock(state_->mu);
  return job_->dispatch_seq >= 0 ? job_->dispatch_time - job_->submit_time
                                 : 0.0;
}

int JobHandle::dispatch_seq() const {
  std::lock_guard lock(state_->mu);
  return job_->dispatch_seq;
}

perfmodel::GridShape JobHandle::grid() const {
  std::lock_guard lock(state_->mu);
  return job_->grid;
}

StageTimer JobHandle::wall() const {
  std::lock_guard lock(state_->mu);
  return job_->wall;
}

JobState JobHandle::wait() const {
  std::unique_lock lock(state_->mu);
  state_->done_cv.wait(lock, [&] {
    return job_->state == JobState::kStored ||
           job_->state == JobState::kFailed;
  });
  return job_->state;
}

// ---- ReconService -----------------------------------------------------------

ReconService::ReconService(const geo::CbctGeometry& geometry,
                           pfs::ParallelFileSystem& fs, ServiceOptions options)
    : geometry_(geometry),
      fs_(fs),
      options_(std::move(options)),
      state_(std::make_shared<detail::ServiceState>()) {
  geometry_.validate();
  options_.ifdk.validate();
  IFDK_REQUIRE(options_.max_batch >= 1, "max_batch must be positive");
  state_->paused = options_.start_paused;
  std::thread([this] { dispatch_loop(); }).swap(dispatcher_);
}

ReconService::~ReconService() {
  {
    std::lock_guard lock(state_->mu);
    // Graceful shutdown: stop accepting, un-pause, and let the dispatcher
    // drain everything already admitted before the thread exits.
    state_->stopping = true;
    state_->paused = false;
  }
  state_->work_cv.notify_all();
  dispatcher_.join();
}

JobHandle ReconService::submit(JobSpec spec) {
  spec.validate();
  const geo::CbctGeometry& job_geometry =
      spec.geometry.has_value() ? *spec.geometry : geometry_;

  const bool is_iterative = spec.workload == WorkloadKind::kIterative;

  // Admission, phase 1: resolve the decomposition the dispatched workload
  // would execute. Shape inconsistencies (ranks/Np/Nz) are ConfigErrors —
  // the caller wrote a bad request, not one that merely does not fit. An
  // iterative job replicates the volume (no streaming slab double buffer),
  // so its plan keeps one resident slab pair.
  const DecompositionPlan plan = DecompositionPlan::make(
      job_geometry, options_.ifdk, /*volume_index=*/-1,
      is_iterative ? 1 : kResidentSlabs);

  // Admission, phase 2: can this plan ever run here? Device fit (§4.1.5,
  // against the workload's actual working set) and the per-epoch collective
  // tag budgets against the communicator window. Rejections are typed
  // AdmissionErrors naming the numbers and are counted, never queued.
  auto reject = [&](const std::string& why) -> AdmissionError {
    std::lock_guard lock(state_->mu);
    ++state_->rejected;
    return AdmissionError("job rejected at admission: " + why);
  };
  const std::uint64_t window = mpi::Comm::kCollectiveTagWindow;
  if (is_iterative) {
    const int subsets = effective_subsets(spec);
    if (plan.iter_device_bytes(subsets) > options_.ifdk.device.memory_bytes) {
      throw reject("iterative job needs " +
                   std::to_string(plan.iter_device_bytes(subsets)) +
                   " B of device memory (replicated volume + " +
                   std::to_string(subsets) +
                   " column-norm volume(s) + the view shard) but the device "
                   "has " +
                   std::to_string(options_.ifdk.device.memory_bytes) + " B");
    }
    if (plan.iter_iteration_tag_budget(subsets) > window) {
      throw reject(
          "one iterative iteration reserves " +
          std::to_string(plan.iter_iteration_tag_budget(subsets)) +
          " collective tags but the communicator tag window holds " +
          std::to_string(window) + "; raise reduce_segment_floats (" +
          std::to_string(plan.reduce_segment_floats) + ")");
    }
  } else {
    try {
      plan.check_device_fit(options_.ifdk.device);
    } catch (const DeviceOutOfMemory& e) {
      throw reject(e.what());
    }
    if (plan.reduce_tag_budget() > window) {
      throw reject(
          "one row-reduce epoch reserves " +
          std::to_string(plan.reduce_tag_budget()) +
          " collective tags but the communicator tag window holds " +
          std::to_string(window) + "; raise reduce_segment_floats (" +
          std::to_string(plan.reduce_segment_floats) + ") or rows R (" +
          std::to_string(plan.grid.rows) + ")");
    }
    const std::uint64_t gather_budget =
        plan.gather_tag_budget(options_.ifdk.fuse_filter_gather);
    if (gather_budget > window) {
      throw reject("one column-gather epoch reserves " +
                   std::to_string(gather_budget) +
                   " collective tags but the communicator tag window holds " +
                   std::to_string(window));
    }
  }

  auto job = std::make_shared<detail::JobRecord>();
  job->spec = std::move(spec);
  job->plan = plan;
  job->grid = plan.grid;
  {
    std::lock_guard lock(state_->mu);
    IFDK_REQUIRE(!state_->stopping,
                 "submit on a ReconService that is shutting down");
    job->id = state_->next_id++;
    job->submit_time = state_->clock.seconds();
    ++state_->submitted;
    TenantStats& tenant = state_->tenants[job->spec.tenant];
    ++tenant.submitted;
    // Admission byte accounting: the job's claim on the store is its raw
    // output volume, counted the moment it is accepted (what it WILL move;
    // the measured wire/store counters report what dispatch actually moved).
    const std::size_t output_bytes = plan.volume_floats() * sizeof(float);
    tenant.admitted_output_bytes += output_bytes;
    state_->admitted_output_bytes += output_bytes;
    state_->queue.push_back(job);
    reorder_and_predict_locked(*state_, options_.sim);
  }
  state_->work_cv.notify_all();
  return JobHandle(state_, job);
}

void ReconService::pause() {
  std::lock_guard lock(state_->mu);
  state_->paused = true;
}

void ReconService::resume() {
  {
    std::lock_guard lock(state_->mu);
    state_->paused = false;
  }
  state_->work_cv.notify_all();
}

void ReconService::drain() {
  std::unique_lock lock(state_->mu);
  state_->paused = false;
  state_->work_cv.notify_all();
  state_->done_cv.wait(
      lock, [&] { return state_->queue.empty() && !state_->dispatching; });
}

ServiceStats ReconService::stats() const {
  std::lock_guard lock(state_->mu);
  ServiceState& st = *state_;
  ServiceStats out;
  out.submitted = st.submitted;
  out.rejected = st.rejected;
  out.stored = st.stored;
  out.failed = st.failed;
  out.queued = st.queue.size();
  out.batches = st.batches;
  out.resplits = st.resplits;
  const double elapsed = st.clock.seconds();
  out.jobs_per_second =
      elapsed > 0 ? static_cast<double>(st.stored) / elapsed : 0;
  out.mean_queue_latency_s =
      st.dispatched_jobs > 0
          ? st.queue_latency_sum / static_cast<double>(st.dispatched_jobs)
          : 0;
  out.admitted_output_bytes = st.admitted_output_bytes;
  out.wire_raw_bytes = st.wire_raw_bytes;
  out.wire_encoded_bytes = st.wire_encoded_bytes;
  out.store_raw_bytes = st.store_raw_bytes;
  out.store_stored_bytes = st.store_stored_bytes;
  out.tenants = st.tenants;
  for (auto& [tenant, ts] : out.tenants) {
    (void)tenant;
    ts.volumes_per_second =
        elapsed > 0 ? static_cast<double>(ts.stored) / elapsed : 0;
  }
  return out;
}

void ReconService::dispatch_loop() {
  ServiceState& st = *state_;
  std::unique_lock lock(st.mu);
  for (;;) {
    st.work_cv.wait(lock, [&] {
      return st.stopping || (!st.paused && !st.queue.empty());
    });
    if (st.queue.empty()) {
      if (st.stopping) return;
      continue;
    }

    // Select the batch: the longest contiguous same-grid, same-workload
    // prefix of the dispatch order, capped at max_batch. Contiguity in the
    // *sorted* queue is what keeps the priority promise — the scheduler
    // never skips a higher-priority job to pack a warmer batch behind it.
    // FDK batches stream as one run_streaming call; iterative batches
    // dispatch job by job (each run_iterative is its own world).
    reorder_and_predict_locked(st, options_.sim);
    std::vector<std::shared_ptr<JobRecord>> batch;
    batch.push_back(st.queue.front());
    while (batch.size() < options_.max_batch &&
           batch.size() < st.queue.size() &&
           st.queue[batch.size()]->plan.same_grid(batch.front()->plan) &&
           st.queue[batch.size()]->spec.workload ==
               batch.front()->spec.workload) {
      batch.push_back(st.queue[batch.size()]);
    }
    st.queue.erase(st.queue.begin(),
                   st.queue.begin() + static_cast<std::ptrdiff_t>(batch.size()));

    const double now = st.clock.seconds();
    std::vector<JobSpec> specs;
    specs.reserve(batch.size());
    for (const auto& job : batch) {
      job->state = JobState::kAdmitted;
      job->dispatch_seq = st.next_dispatch_seq++;
      job->dispatch_time = now;
      st.queue_latency_sum += now - job->submit_time;
      ++st.dispatched_jobs;
      specs.push_back(job->spec);
    }
    ++st.batches;
    if (st.have_last_grid &&
        (st.last_grid.rows != batch.front()->plan.grid.rows ||
         st.last_grid.columns != batch.front()->plan.grid.columns)) {
      ++st.resplits;
    }
    st.have_last_grid = true;
    st.last_grid = batch.front()->plan.grid;
    for (const auto& job : batch) job->state = JobState::kRunning;
    st.dispatching = true;

    // Execute outside the lock: submit/stats/handles stay responsive while
    // the workload runs. The batch jobs are out of the queue, so only this
    // thread touches them until the re-lock below.
    const bool iterative_batch =
        batch.front()->spec.workload == WorkloadKind::kIterative;
    lock.unlock();
    StreamingStats streamed;
    std::string batch_error;
    // Per-job outcome of an iterative batch (error "" = stored). Each job
    // runs its own rank world behind its own try — one diverging solve or
    // failed store never touches its batch-mates, the service's failure-
    // isolation promise in iterative form.
    std::vector<std::string> iter_errors(batch.size());
    std::vector<perfmodel::GridShape> iter_grids(batch.size());
    std::vector<StageTimer> iter_walls(batch.size());
    if (iterative_batch) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        try {
          const iterative::IterStats run =
              iterative::run_iterative(geometry_, fs_, options_.ifdk,
                                       specs[i]);
          iter_grids[i] = run.grid;
          iter_walls[i] = run.wall;
        } catch (const std::exception& e) {
          iter_errors[i] = e.what();
          iter_grids[i] = batch[i]->plan.grid;
        }
      }
    } else {
      try {
        streamed = run_streaming(geometry_, fs_, options_.ifdk, specs);
      } catch (const std::exception& e) {
        // A non-store failure (bad read, aborted world) takes down the whole
        // dispatch; the failure is isolated to THIS batch — the service
        // keeps running and later jobs still dispatch.
        batch_error = e.what();
      }
    }
    lock.lock();

    if (!iterative_batch && batch_error.empty()) {
      // Measured byte movement of the dispatched stream: what the framed
      // reduce wire and the store path actually carried, summed across
      // batches so stats() reports ratio-of-sums.
      st.wire_raw_bytes += streamed.wire_raw_bytes;
      st.wire_encoded_bytes += streamed.wire_encoded_bytes;
      st.store_raw_bytes += streamed.store_raw_bytes;
      st.store_stored_bytes += streamed.store_stored_bytes;
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
      JobRecord& job = *batch[i];
      if (iterative_batch) {
        if (!iter_errors[i].empty()) {
          job.state = JobState::kFailed;
          job.error = iter_errors[i];
        } else {
          job.state = JobState::kStored;
        }
        job.grid = iter_grids[i];
        job.wall = iter_walls[i];
      } else if (!batch_error.empty()) {
        job.state = JobState::kFailed;
        job.error = batch_error;
      } else if (!streamed.volume_errors[i].empty()) {
        // The streaming core's per-volume isolation: only this job's store
        // failed; its batch-mates are intact.
        job.state = JobState::kFailed;
        job.error = streamed.volume_errors[i];
      } else {
        job.state = JobState::kStored;
      }
      if (!iterative_batch && batch_error.empty()) {
        job.grid = streamed.plans[i].grid;
        job.wall = streamed.wall;
      }
      TenantStats& tenant = st.tenants[job.spec.tenant];
      if (job.state == JobState::kStored) {
        ++st.stored;
        ++tenant.stored;
      } else {
        ++st.failed;
        ++tenant.failed;
      }
    }
    st.dispatching = false;
    st.done_cv.notify_all();
  }
}

}  // namespace ifdk::service
