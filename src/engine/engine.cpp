#include "engine/engine.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "postproc/compression.h"

namespace ifdk::engine {

int error_class(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const QueueClosedError&) {
    return 2;
  } catch (const mpi::WorldAbortedError&) {
    return 1;
  } catch (...) {
    return 0;
  }
}

std::exception_ptr pick_root_cause(std::span<const std::exception_ptr> errors) {
  std::exception_ptr best;
  int best_class = 3;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    const int c = error_class(e);
    if (c < best_class) {
      best_class = c;
      best = e;
    }
  }
  return best;
}

std::string object_name(const std::string& prefix, std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06zu", index);
  return prefix + buf;
}

void assert_tag_budget(std::uint64_t before, std::uint64_t after,
                       std::uint64_t budget, const char* what) {
  const std::uint64_t window = mpi::Comm::kCollectiveTagWindow;
  const std::uint64_t offset = before % window;
  const std::uint64_t allowed =
      offset + budget <= window ? budget : budget + (window - offset);
  IFDK_ASSERT_MSG(after - before <= allowed, what);
}

mpi::WireCodec make_wire_codec(WireStats* stats) {
  mpi::WireCodec codec;
  codec.encode = [stats](const float* data, std::size_t count) {
    std::vector<std::uint8_t> frame = postproc::encode_frame(data, count);
    if (stats != nullptr) {
      stats->raw_bytes += count * sizeof(float);
      stats->encoded_bytes += frame.size();
    }
    return frame;
  };
  codec.decode = [](const std::uint8_t* data, std::size_t bytes, float* out,
                    std::size_t count) {
    return postproc::decode_frame(data, bytes, out, count);
  };
  return codec;
}

void extract_zmajor_slice(const float* zmajor, std::size_t nx, std::size_t ny,
                          std::size_t pair_depth, std::size_t local_k,
                          float* dst) {
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      dst[j * nx + i] = zmajor[(i * ny + j) * pair_depth + local_k];
    }
  }
}

EpochComms::EpochComms(mpi::Comm& world,
                       std::span<const int> rows_per_volume) {
  const int rank = world.rank();
  per_volume_.reserve(rows_per_volume.size());
  for (const int rows_v : rows_per_volume) {
    auto it = by_rows_.find(rows_v);
    if (it == by_rows_.end()) {
      mpi::Comm col_comm = world.split(rank / rows_v, rank % rows_v);
      mpi::Comm row_comm = world.split(rank % rows_v, rank / rows_v);
      it = by_rows_
               .emplace(rows_v,
                        Pair{std::move(col_comm), std::move(row_comm)})
               .first;
    }
    per_volume_.push_back(&it->second);
  }
}

VolumeWriterSet::VolumeWriterSet(pfs::ParallelFileSystem& fs,
                                 std::size_t queue_capacity,
                                 const std::vector<bool>& roots,
                                 const std::vector<int>& store_bits)
    : streams_(roots.size()), roots_(roots) {
  IFDK_ASSERT_MSG(store_bits.empty() || store_bits.size() == roots.size(),
                  "VolumeWriterSet: store_bits must be empty or per-volume");
  const bool any_root =
      std::find(roots.begin(), roots.end(), true) != roots.end();
  if (!any_root) return;
  writer_.emplace(fs, queue_capacity);
  for (std::size_t v = 0; v < roots.size(); ++v) {
    if (!roots[v]) continue;
    std::optional<pfs::StreamCompression> compression;
    if (!store_bits.empty() && store_bits[v] != 0) {
      compression = pfs::StreamCompression{store_bits[v]};
    }
    streams_[v] = writer_->open_stream(compression);
  }
}

pfs::StreamStats VolumeWriterSet::volume_store_stats(
    std::size_t volume) const {
  IFDK_ASSERT(roots_[volume] && writer_.has_value());
  return writer_->stream_stats(streams_[volume]);
}

bool VolumeWriterSet::enqueue(std::size_t volume, std::string name,
                              std::vector<float> payload) {
  IFDK_ASSERT(roots_[volume] && writer_.has_value());
  return writer_->enqueue(streams_[volume], std::move(name),
                          std::move(payload));
}

std::string VolumeWriterSet::finish_volume(std::size_t volume) {
  IFDK_ASSERT(roots_[volume] && writer_.has_value());
  try {
    writer_->finish_stream(streams_[volume]);
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

void VolumeWriterSet::finish() {
  if (!writer_.has_value()) return;
  writer_->finish();  // per-volume errors were claimed by finish_volume
  busy_ = writer_->busy_seconds();
}

EngineStats run(int ranks, Workload& workload) {
  struct RankOut {
    StageTimer wall;
    StageTimer efficiency;
    double total = 0;
  };
  std::vector<RankOut> outs(static_cast<std::size_t>(ranks));

  mpi::run_world(ranks, [&](mpi::Comm& world) {
    RankContext ctx{world, world.rank(), {}, {}, 0};
    workload.run_rank(ctx);
    RankOut& out = outs[static_cast<std::size_t>(ctx.rank)];
    out.wall = std::move(ctx.wall);
    out.efficiency = std::move(ctx.efficiency);
    out.total = ctx.total;
  });

  EngineStats merged;
  for (const RankOut& out : outs) {
    merged.wall.max_merge(out.wall);
    merged.efficiency.max_merge(out.efficiency);
    merged.wall_total = std::max(merged.wall_total, out.total);
  }
  return merged;
}

}  // namespace ifdk::engine
