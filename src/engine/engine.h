// The workload-agnostic distributed execution engine.
//
// Everything the per-rank pipeline of src/ifdk/framework.cpp needed but that
// is not FDK-specific lives here, so a second workload (the distributed
// iterative solvers of src/iterative/distributed.h) can run on the same
// machinery instead of growing a parallel copy:
//
//   * Workload / RankContext / run() — the seam itself: run() spins up one
//     rank world (mpi::run_world), hands each rank a RankContext, and merges
//     the per-rank stage timers into EngineStats exactly the way the FDK
//     runtime always merged them (max across ranks = the critical path);
//   * EpochComms — the per-grid communicator cache behind the streaming
//     re-split: one col/row pair per distinct row count, built up front in a
//     deterministic order so the split collectives agree on every rank;
//   * VolumeWriterSet — the pfs::AsyncWriter stream plumbing: one
//     multiplexed writer per rank that roots any volume, per-volume streams,
//     and the poison-isolation contract (a write failure fails ONE volume);
//   * error-class selection — QueueClosedError, error_class(),
//     pick_root_cause(): real failures beat world-abort symptoms beat
//     queue-shutdown symptoms, so the faulty rank's real error wins at
//     run_world no matter which rank's body exits first;
//   * assert_tag_budget() — the per-epoch collective tag-budget assertion
//     that lets any number of epochs compose on long-lived communicators;
//   * object_name() / extract_zmajor_slice() — the PFS naming convention and
//     the shared z-major -> slice-major permutation the bitwise-equivalence
//     guarantees depend on.
//
// The engine deliberately knows nothing about plans, geometries, or kernels:
// workloads bring their own decomposition (ifdk::DecompositionPlan) and
// compute stages, and the engine supplies the rank world, the communicator
// cache, the writer plumbing, and the error protocol.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/timer.h"
#include "minimpi/minimpi.h"
#include "pfs/async_writer.h"
#include "pfs/pfs.h"

namespace ifdk::engine {

/// Secondary pipeline error: a stage observed its queue closed because the
/// thread at the other end died first. Typed (rather than matched by
/// message text) so the rethrow logic can reliably prefer the root cause.
class QueueClosedError : public Error {
 public:
  /// Wraps the human-readable shutdown symptom.
  explicit QueueClosedError(const std::string& what) : Error(what) {}
};

/// Severity class for root-cause selection: real failures (0) beat
/// world-abort symptoms (1 — another rank owns the root cause; run_world()
/// deprioritizes these globally), which beat queue-shutdown symptoms (2 — a
/// sibling thread of this rank owns it).
int error_class(const std::exception_ptr& e);

/// Picks the most root-cause-like error (lowest class, earliest wins ties);
/// null when none set. Workloads pass their per-thread error slots in a
/// fixed order so tie-breaks stay deterministic.
std::exception_ptr pick_root_cause(std::span<const std::exception_ptr> errors);

/// PFS object naming convention: `<prefix><index>` with the index rendered
/// as a fixed six-digit decimal — projections, slices, and every staged
/// object in the repo use this one formatter.
std::string object_name(const std::string& prefix, std::size_t index);

/// Asserts one epoch's collective-tag consumption against a plan budget
/// (the "budget >= actual traffic" invariant). Reservations are sequential,
/// so at most one deterministic wrap skip (< window) can land inside an
/// epoch, and only when the budget does not fit before the window top —
/// the check is exact in both cases.
void assert_tag_budget(std::uint64_t before, std::uint64_t after,
                       std::uint64_t budget, const char* what);

/// Extracts slice `local_k` of a z-major slab pair into a slice-major
/// destination. Shared by every pipeline path: the bitwise-equivalence
/// guarantees depend on the permutation being identical.
void extract_zmajor_slice(const float* zmajor, std::size_t nx, std::size_t ny,
                          std::size_t pair_depth, std::size_t local_k,
                          float* dst);

/// Byte counters of one rank's framed reduce traffic: what its encoder was
/// fed (raw) versus what actually hit the wire (encoded, headers included).
/// raw/encoded is the rank's wire compression ratio; the lossless frame
/// codec guarantees encoded <= raw + per-frame header overhead. Accumulated
/// on the single thread that drives the codec (the reduce thread), so the
/// counters need no atomics.
struct WireStats {
  /// Bytes handed to the encoder (4 * floats sent).
  std::size_t raw_bytes = 0;
  /// Frame bytes actually posted (compressed payloads + headers).
  std::size_t encoded_bytes = 0;
};

/// Builds the mpi::WireCodec used for framed row-reduce traffic, backed by
/// the lossless postproc frame codec (byte-plane shuffle + RLE with raw
/// fallback), so reduced results stay bitwise identical to unframed runs.
/// `stats` (may be null) accumulates this codec's encoder traffic; it must
/// outlive every ireduce initiated with the returned codec and is bumped
/// from the calling thread only.
mpi::WireCodec make_wire_codec(WireStats* stats);

/// Per-volume col/row communicator cache — the grid re-split machinery.
///
/// A split is a collective on the parent communicator, so every rank must
/// perform the same sequence: the constructor walks the volumes in order and
/// builds one col/row pair per DISTINCT row count (with the rank count
/// fixed, R determines the grid). Consecutive volumes with the same grid
/// share a pair, which is what lets their collective epochs stay in flight
/// together; a volume that resolves a different R gets its own pair, and
/// the stream "re-splits" by switching pairs at the volume boundary.
class EpochComms {
 public:
  /// The column communicator (ranks of one column, keyed by row) and the
  /// row communicator (ranks of one row, keyed by column) of one grid.
  struct Pair {
    mpi::Comm col;
    mpi::Comm row;
  };

  /// Splits `world` once per distinct entry of `rows_per_volume` (in first-
  /// appearance order — identical on every rank, as the split collective
  /// requires). Ranks are column-major: row = rank % R, column = rank / R.
  EpochComms(mpi::Comm& world, std::span<const int> rows_per_volume);

  /// The communicator pair volume `v` runs its collective epochs on.
  Pair& of(std::size_t volume) { return *per_volume_[volume]; }

 private:
  std::map<int, Pair> by_rows_;
  std::vector<Pair*> per_volume_;
};

/// The pfs::AsyncWriter stream plumbing of a streaming rank: one multiplexed
/// writer for every volume this rank roots, one stream per rooted volume,
/// and the poison-isolation contract — a write failure poisons ONLY that
/// volume's stream (its finish_volume reports the error; every other volume
/// keeps flowing). Ranks that root nothing hold no writer and every call is
/// a cheap no-op.
class VolumeWriterSet {
 public:
  /// Opens one stream per volume with `roots[v]` set; no writer thread is
  /// started when this rank roots nothing. `fs` must outlive this object.
  /// `store_bits` (empty = every volume raw) gives volume v's store codec:
  /// 0 stores raw floats, 8..16 opens volume v's stream in the compressed
  /// mode (quantized CompressedVolume objects at that depth).
  VolumeWriterSet(pfs::ParallelFileSystem& fs, std::size_t queue_capacity,
                  const std::vector<bool>& roots,
                  const std::vector<int>& store_bits = {});

  /// Byte/error accounting of volume `v`'s stream (rooted volumes only);
  /// complete once finish_volume(v) returned. Reports the store ratio and
  /// the quantization PSNR for compressed volumes.
  pfs::StreamStats volume_store_stats(std::size_t volume) const;

  /// Queues one object write on volume `v`'s stream. Returns false once the
  /// stream is poisoned (the caller should stop feeding that volume; the
  /// error surfaces from finish_volume).
  bool enqueue(std::size_t volume, std::string name,
               std::vector<float> payload);

  /// Drains volume `v`'s stream and returns its first write error ("" =
  /// every slice stored). Other volumes are unaffected.
  std::string finish_volume(std::size_t volume);

  /// Final drain after every rooted volume was finished; records the writer
  /// thread's busy seconds for busy_seconds().
  void finish();

  /// Wall-clock seconds the writer thread spent writing (the "store_thread"
  /// overlap-efficiency numerator); valid after finish().
  double busy_seconds() const { return busy_; }

 private:
  std::optional<pfs::AsyncWriter> writer_;
  std::vector<pfs::AsyncWriter::StreamId> streams_;
  std::vector<bool> roots_;
  double busy_ = 0;
};

/// Everything the engine hands one rank of a workload: the world
/// communicator, the rank id, and the stat sinks the engine merges across
/// ranks after the world joins (wall: per-stage busy seconds, max-merged;
/// efficiency: busy/wall per pipeline thread, max-merged; total: the rank's
/// wall clock, max-merged into EngineStats::wall_total). The workload owns
/// filling them — the engine only aggregates.
struct RankContext {
  /// The world communicator of this rank (split into grids via EpochComms).
  mpi::Comm& world;
  /// This rank's world rank.
  int rank = 0;
  /// Per-stage busy seconds of this rank (max-merged across ranks).
  StageTimer wall;
  /// Busy/wall per pipeline thread of this rank (max-merged across ranks).
  StageTimer efficiency;
  /// This rank's wall-clock seconds (max across ranks = EngineStats total).
  double total = 0;
};

/// One workload on the engine: FDK streaming (src/ifdk/framework.cpp) and
/// the distributed iterative solvers (src/iterative/distributed.cpp) are the
/// two implementations. run_rank is called once per rank inside the engine's
/// rank world and must follow the engine error protocol: catch worker-thread
/// errors into slots, rethrow the pick_root_cause winner, and let collective
/// failures unwind through mpi::WorldAbortedError.
class Workload {
 public:
  virtual ~Workload() = default;
  /// The per-rank body; `ctx` is this rank's context and stat sink.
  virtual void run_rank(RankContext& ctx) = 0;
};

/// Cross-rank merge of the per-rank stat sinks (the critical-path view the
/// FDK runtime always reported): per-stage maxima, per-thread efficiency
/// maxima, and the slowest rank's wall clock.
struct EngineStats {
  /// Per-stage busy seconds, max over ranks.
  StageTimer wall;
  /// Busy/wall per pipeline thread, max over ranks.
  StageTimer efficiency;
  /// Wall-clock of the slowest rank.
  double wall_total = 0;
};

/// Runs `workload` on a fresh `ranks`-thread world (mpi::run_world) and
/// merges every rank's RankContext stats. Exceptions thrown by any rank are
/// rethrown here after all ranks joined (run_world's protocol: a rank's
/// non-abort error is preferred over the abort symptoms it caused).
EngineStats run(int ranks, Workload& workload);

}  // namespace ifdk::engine
