// Digitized reference numbers from the paper's evaluation (Tables 4 and 5,
// Figures 5a-5d, 6). Benches print these next to our measured/simulated
// values, tests check *shape* agreement (ordering, scaling slopes,
// crossovers), and gpusim::KernelModel interpolates Table 4 to price kernel
// launches at V100 speed.
//
// Sources: Table 4 (back-projection GUPS on one V100), Table 5 (Tcompute
// breakdown), the stacked-bar labels of Figures 5a-5d, and the data labels of
// Figure 6. "N/A" entries are NaN.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "geometry/types.h"

namespace ifdk::paper {

// ---------------------------------------------------------------------------
// Table 4: back-projection kernel performance on a Tesla V100 (GUPS).
// ---------------------------------------------------------------------------

struct Table4Row {
  Problem problem;
  double alpha;     ///< input/output size ratio as printed in the paper
  double rtk32;     ///< RTK-32 (N/A = NaN: output exceeds RTK's dual buffer)
  double bp_tex;
  double tex_tran;
  double bp_l1;
  double l1_tran;
};

/// All 15 problem rows of Table 4.
const std::vector<Table4Row>& table4();

// ---------------------------------------------------------------------------
// Table 5: breakdown of Tcompute (seconds) for the strong-scaling runs.
// ---------------------------------------------------------------------------

struct Table5Row {
  std::size_t volume_n;   ///< 4096 or 8192 (volume is n^3)
  int gpus;
  int cpus;
  double t_flt;           ///< paper prints "<0.7" for most rows; stored value
  bool t_flt_is_bound;    ///< true when the paper printed an upper bound
  double t_allgather;
  double t_bp;
  double t_compute;
  double delta;           ///< (Tflt + TAllGather + Tbp) / Tcompute
};

const std::vector<Table5Row>& table5();

// ---------------------------------------------------------------------------
// Figures 5a-5d: stacked runtime bars (seconds). NaN = N/A (C = 1: no
// inter-rank reduction).
// ---------------------------------------------------------------------------

struct Fig5Bar {
  int gpus;
  double compute;   ///< measured Tcompute
  double d2h;       ///< measured TD2H
  double store;     ///< measured Tstore
  double reduce;    ///< measured Treduce (NaN when C = 1)
  double model_compute;  ///< the paper's "potential peak" model values
  double model_d2h;
  double model_store;
  double model_reduce;
};

/// Fig. 5a: strong scaling 2048^2 x 4096 -> 4096^3 (R=32).
const std::vector<Fig5Bar>& fig5a();
/// Fig. 5b: strong scaling 2048^2 x 4096 -> 8192^3 (R=256).
const std::vector<Fig5Bar>& fig5b();
/// Fig. 5c: weak scaling -> 4096^3, Np = 16 * Ngpus.
const std::vector<Fig5Bar>& fig5c();
/// Fig. 5d: weak scaling -> 8192^3, Np = 4 * Ngpus.
const std::vector<Fig5Bar>& fig5d();

// ---------------------------------------------------------------------------
// Figure 6: end-to-end GUPS (input 2048^2 x 4096).
// ---------------------------------------------------------------------------

struct Fig6Point {
  int gpus;
  double gups;
};

const std::vector<Fig6Point>& fig6_2048();  ///< output 2048^3
const std::vector<Fig6Point>& fig6_4096();  ///< output 4096^3
const std::vector<Fig6Point>& fig6_8192();  ///< output 8192^3

// ---------------------------------------------------------------------------
// Section 5.3.3 micro-benchmark constants (the paper's measured ABCI values).
// ---------------------------------------------------------------------------

struct AbciConstants {
  double pcie_bandwidth_bytes_per_s = 11.9e9;  ///< one PCIe gen3 x16
  int pcie_per_node = 2;                        ///< two switches per node
  int gpus_per_node = 4;
  int cpus_per_node = 2;
  double pfs_write_bytes_per_s = 28.5e9;        ///< GPFS sequential write
  double pfs_read_bytes_per_s = 28.5e9;         ///< assumed symmetric
  double bp_gups_single_gpu = 200.0;            ///< proposed kernel, §5.3.3
  /// Filtering throughput per node (2048^2 projections/s), back-computed
  /// from Table 5 row 1: Tflt = Np / (Nnodes * THflt) => 4096/(8*1.4) ~ 366.
  double filter_proj_per_s_per_node = 366.0;
  /// Effective per-rank AllGather throughput (projections/s), back-computed
  /// from Table 5 row 1: TAllGather = Np/(C*R*TH) => 4096/(32*31.4) ~ 4.07.
  double allgather_proj_per_s = 4.07;
  /// MPI-Reduce throughput per rank-group for 8 GB sub-volumes (GB/s),
  /// from §5.3.3: "reduce 8GB ... by dual InfiniBand per node ~ 2.7s".
  double reduce_bytes_per_s = 8.0e9 / 2.7;
  double gpu_memory_bytes = 16.0 * (1ull << 30);
  double sub_volume_bytes = 8.0 * (1ull << 30);  ///< Nsub_vol used in §5.3
};

const AbciConstants& abci();

}  // namespace ifdk::paper
