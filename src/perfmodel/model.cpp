#include "perfmodel/model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace ifdk::perfmodel {

int select_rows(const Problem& problem, const MicroBench& mb) {
  const std::uint64_t volume_bytes = problem.out.bytes();
  // Eq. (7): R = sizeof(float) * Nx*Ny*Nz / Nsub_vol, rounded up to a power
  // of two (Section 4.1.5: "the value of R is often power of two").
  std::uint64_t r = div_ceil(volume_bytes, mb.sub_volume_bytes);
  r = next_pow2(std::max<std::uint64_t>(1, r));
  return constrain_rows_to_memory(problem, static_cast<int>(r),
                                  mb.gpu_memory_bytes,
                                  problem.in.bytes_per_projection() * mb.batch);
}

int constrain_rows_to_memory(const Problem& problem, int min_rows,
                             std::uint64_t memory_bytes,
                             std::uint64_t batch_bytes,
                             std::uint64_t resident_slabs) {
  IFDK_REQUIRE(min_rows >= 1 && resident_slabs >= 1,
               "rows and resident_slabs must be positive");
  const std::uint64_t volume_bytes = problem.out.bytes();
  // Memory constraint (§4.1.5, generalized to the streaming double buffer):
  // Nresident * Nx*Ny*Nz*4/R + Nu*Nv*Nbatch*4 <= Ngpu_mem_size.
  std::uint64_t r = static_cast<std::uint64_t>(min_rows);
  while (resident_slabs * (volume_bytes / r) + batch_bytes > memory_bytes) {
    r *= 2;
    IFDK_REQUIRE(r <= (1ull << 24),
                 "no feasible R: a projection batch alone exceeds GPU memory");
  }
  return static_cast<int>(r);
}

GridShape make_grid(const Problem& problem, int gpus, const MicroBench& mb) {
  const int rows = select_rows(problem, mb);
  IFDK_REQUIRE(gpus >= rows, "fewer GPUs than the minimum rows R");
  IFDK_REQUIRE(gpus % rows == 0,
               "GPU count must be a multiple of R so that C = Ngpus / R");
  return GridShape{rows, gpus / rows};
}

Breakdown predict(const Problem& problem, const GridShape& grid,
                  const MicroBench& mb) {
  IFDK_REQUIRE(grid.rows >= 1 && grid.columns >= 1, "grid must be non-empty");
  const double bytes_in = static_cast<double>(problem.in.total_bytes());
  const double bytes_out = static_cast<double>(problem.out.bytes());
  const double np = static_cast<double>(problem.in.np);
  const double r = grid.rows;
  const double c = grid.columns;
  const double gpn = mb.gpus_per_node;

  Breakdown b;
  // Eq. (8): aggregate read of all projections.
  b.t_load = bytes_in / mb.bw_load;
  // Eq. (9): Tflt = Np * Ngpu_per_node / (C * R * THflt).
  b.t_flt = np * gpn / (c * r * mb.th_flt);
  // Eq. (10).
  b.t_allgather = np / (c * r * mb.th_allgather);
  // Eq. (11): each node pushes its column-share of projections over its
  // NPCIe links.
  b.t_h2d = bytes_in * gpn /
            (c * mb.bw_pcie * static_cast<double>(mb.pcie_per_node));
  // Eq. (12): THbp in projections/s per rank for this sub-volume size.
  const double sub_voxels =
      static_cast<double>(problem.out.voxels()) / r;
  const double th_bp = mb.bp_gups * 1073741824.0 / sub_voxels;  // proj/s
  b.t_bp = b.t_h2d + np / (c * th_bp);
  // Eq. (13).
  b.t_trans = bytes_out / (r * mb.th_trans);
  // Eq. (14): each node pulls Ngpu_per_node sub-volumes of Vol/R bytes.
  b.t_d2h = bytes_out * gpn /
            (r * mb.bw_pcie * static_cast<double>(mb.pcie_per_node));
  // Eq. (15): one reduction of the sub-volume per row group; no reduction at
  // all when C == 1 (the figures' N/A case).
  b.t_reduce = grid.columns > 1 ? bytes_out / (r * mb.th_reduce) : 0.0;
  // Eq. (16).
  b.t_store = bytes_out / mb.bw_store;

  // Eq. (17)-(19).
  b.t_compute = std::max({b.t_load, b.t_flt, b.t_allgather, b.t_bp});
  b.t_post = b.t_trans + b.t_d2h + b.t_reduce + b.t_store;
  b.t_runtime = b.t_compute + b.t_post;
  return b;
}

double predicted_gups(const Problem& problem, const Breakdown& breakdown) {
  return gups(problem.out.nx, problem.out.ny, problem.out.nz, problem.in.np,
              breakdown.t_runtime);
}

}  // namespace ifdk::perfmodel
