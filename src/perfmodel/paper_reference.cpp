#include "perfmodel/paper_reference.h"

#include <cmath>
#include <limits>

namespace ifdk::paper {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Problem make_problem(std::size_t nu, std::size_t nv, std::size_t np,
                     std::size_t nx, std::size_t ny, std::size_t nz) {
  return Problem{{nu, nv, np}, {nx, ny, nz}};
}
}  // namespace

const std::vector<Table4Row>& table4() {
  static const std::vector<Table4Row> rows = {
      // 512^2 x 1k input
      {make_problem(512, 512, 1024, 128, 128, 128), 128, 65.3, 38.8, 46.5, 23.7, 118.0},
      {make_problem(512, 512, 1024, 256, 256, 256), 16, 107.4, 96.2, 98.9, 28.0, 188.6},
      {make_problem(512, 512, 1024, 512, 512, 512), 2, 115.1, 105.8, 106.1, 34.0, 206.0},
      {make_problem(512, 512, 1024, 1024, 1024, 1024), 1, 118.1, 107.3, 107.3, 64.9, 211.4},
      {make_problem(512, 512, 1024, 1024, 1024, 2048), 1.0 / 8, kNaN, 107.4, 107.6, 112.1, 212.7},
      // 1k^3 input
      {make_problem(1024, 1024, 1024, 128, 128, 128), 512, 41.9, 13.8, 13.5, 5.7, 27.2},
      {make_problem(1024, 1024, 1024, 256, 256, 256), 64, 77.4, 35.9, 43.2, 12.8, 83.7},
      {make_problem(1024, 1024, 1024, 512, 512, 512), 8, 115.7, 95.5, 98.1, 25.1, 190.3},
      {make_problem(1024, 1024, 1024, 1024, 1024, 1024), 1, 117.9, 105.8, 105.8, 34.0, 205.7},
      {make_problem(1024, 1024, 1024, 1024, 1024, 2048), 1.0 / 2, kNaN, 106.3, 106.5, 65.0, 207.9},
      // 2k^2 x 1k input
      {make_problem(2048, 2048, 1024, 128, 128, 128), 1024, 16.1, 5.8, 8.5, 2.8, 7.7},
      {make_problem(2048, 2048, 1024, 256, 256, 256), 256, 38.6, 12.7, 12.6, 4.4, 24.1},
      {make_problem(2048, 2048, 1024, 512, 512, 512), 32, 80.2, 35.5, 42.5, 13.9, 81.6},
      {make_problem(2048, 2048, 1024, 1024, 1024, 1024), 4, 116.9, 94.4, 97.8, 23.9, 186.9},
      {make_problem(2048, 2048, 1024, 1024, 1024, 2048), 1, kNaN, 102.9, 104.1, 33.4, 198.7},
  };
  return rows;
}

const std::vector<Table5Row>& table5() {
  // volume_n, gpus, cpus, Tflt, bound?, TAllGather, Tbp, Tcompute, delta
  static const std::vector<Table5Row> rows = {
      {4096, 32, 16, 1.4, false, 31.4, 54.8, 70.2, 1.2},
      {4096, 64, 32, 0.8, false, 20.7, 27.5, 35.6, 1.4},
      {4096, 128, 64, 0.7, true, 15.2, 14.0, 18.9, 1.6},
      {4096, 256, 128, 0.7, true, 7.4, 7.0, 10.2, 1.5},
      {8192, 256, 128, 0.7, true, 46.9, 83.0, 101.3, 1.3},
      {8192, 512, 256, 0.7, true, 26.9, 41.5, 53.1, 1.3},
      {8192, 1024, 512, 0.7, true, 17.0, 20.8, 29.7, 1.3},
      {8192, 2048, 1024, 0.7, true, 8.6, 10.4, 17.2, 1.2},
  };
  return rows;
}

const std::vector<Fig5Bar>& fig5a() {
  // gpus, compute, d2h, store, reduce, model: compute, d2h, store, reduce
  static const std::vector<Fig5Bar> bars = {
      {32, 70.2, 4.8, 11.2, kNaN, 54.8, 2.6, 9.0, kNaN},
      {64, 35.6, 4.8, 11.2, 4.4, 27.5, 2.6, 9.0, 2.4},
      {128, 18.9, 4.8, 11.2, 5.0, 14.0, 2.6, 9.0, 2.7},
      {256, 10.2, 4.8, 11.2, 4.8, 7.0, 2.6, 9.0, 2.8},
      {512, 5.6, 4.8, 11.2, 4.7, 3.5, 2.6, 9.0, 2.9},
      {1024, 3.3, 4.8, 11.2, 4.7, 1.8, 2.6, 9.0, 3.0},
      {2048, 2.1, 4.8, 11.2, 4.7, 0.9, 2.6, 9.0, 4.2},
  };
  return bars;
}

const std::vector<Fig5Bar>& fig5b() {
  static const std::vector<Fig5Bar> bars = {
      {256, 101.3, 4.8, 78.7, kNaN, 83.0, 2.6, 71.8, kNaN},
      {512, 53.1, 4.8, 78.7, 5.4, 41.5, 2.6, 71.8, 5.1},
      {1024, 29.7, 4.8, 78.7, 7.6, 20.8, 2.6, 71.8, 7.1},
      {2048, 17.2, 4.8, 78.7, 6.5, 10.4, 2.6, 71.8, 5.7},
  };
  return bars;
}

const std::vector<Fig5Bar>& fig5c() {
  static const std::vector<Fig5Bar> bars = {
      {32, 9.9, 4.8, 11.2, kNaN, 7.6, 2.6, 9.0, kNaN},
      {64, 10.0, 4.8, 11.2, 4.4, 7.6, 2.6, 9.0, 2.4},
      {128, 10.1, 4.8, 11.2, 4.8, 7.6, 2.6, 9.0, 2.7},
      {256, 10.8, 4.8, 11.2, 4.8, 7.6, 2.6, 9.0, 2.8},
      {512, 10.9, 4.8, 11.2, 4.8, 7.6, 2.6, 9.0, 2.9},
      {1024, 11.0, 4.8, 11.2, 4.9, 7.6, 2.6, 9.0, 3.0},
      {2048, 11.0, 4.8, 11.2, 4.8, 7.6, 2.6, 9.0, 4.2},
  };
  return bars;
}

const std::vector<Fig5Bar>& fig5d() {
  static const std::vector<Fig5Bar> bars = {
      {256, 28.9, 4.8, 78.7, kNaN, 20.8, 2.6, 71.8, kNaN},
      {512, 29.1, 4.8, 78.7, 5.3, 20.8, 2.6, 71.8, 5.1},
      {1024, 30.0, 4.8, 78.7, 7.6, 20.8, 2.6, 71.8, 7.1},
      {2048, 30.6, 4.8, 78.7, 7.2, 20.8, 2.6, 71.8, 5.7},
  };
  return bars;
}

const std::vector<Fig6Point>& fig6_2048() {
  static const std::vector<Fig6Point> pts = {
      {4, 406},   {8, 694},    {16, 1134},  {32, 1680},  {64, 2229},
      {128, 2643}, {256, 2952}, {512, 3151}, {1024, 3274}, {2048, 3495},
  };
  return pts;
}

const std::vector<Fig6Point>& fig6_4096() {
  static const std::vector<Fig6Point> pts = {
      {32, 5851},   {64, 9134},   {128, 13240},
      {256, 17361}, {512, 20480}, {1024, 22599},
  };
  return pts;
}

const std::vector<Fig6Point>& fig6_8192() {
  static const std::vector<Fig6Point> pts = {
      {256, 19778}, {512, 33376}, {1024, 49863}, {2048, 74359},
  };
  return pts;
}

const AbciConstants& abci() {
  static const AbciConstants c{};
  return c;
}

}  // namespace ifdk::paper
