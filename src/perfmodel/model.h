// The iFDK performance model of paper Section 4.2: Equations (8)-(19),
// the R-selection rule of Section 4.1.5 (Eq. 7 + the device-memory
// constraint), and GUPS accounting.
//
// Micro-benchmark constants default to the paper's measured ABCI values
// (Section 5.3.3); substitute your own MicroBench to model another system.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geometry/types.h"

namespace ifdk::perfmodel {

/// Constants measured by micro-benchmarks on the target system (Section
/// 4.2.1). Defaults are ABCI's values as published in the paper.
struct MicroBench {
  /// PFS aggregate read bandwidth. The paper reports only the *write* path
  /// (28.5 GB/s sequential); its model bars (Fig. 5a: compute 0.9 s at 2048
  /// GPUs, i.e. Tload < Tbp ~ 0.8 s for a 256 GB input) imply an aggregate
  /// read bandwidth of several hundred GB/s — consistent with ABCI's GPFS
  /// read capability with many concurrent clients. 400 GB/s reproduces the
  /// published model series.
  double bw_load = 400e9;         ///< PFS aggregate read bandwidth [B/s]
  double bw_store = 28.5e9;       ///< PFS aggregate write bandwidth [B/s]
  double th_flt = 366.0;          ///< filtering throughput [proj/s per node]
  double th_allgather = 4.07;     ///< AllGather throughput [proj/s per rank]
  double bp_gups = 200.0;         ///< back-projection kernel GUPS (L1-Tran)
  double th_trans = 400e9;        ///< on-GPU volume transpose [B/s]
  double th_reduce = 8.0e9 / 2.7; ///< MPI-Reduce throughput [B/s per group]
  double bw_pcie = 11.9e9;        ///< one PCIe gen3 x16 link [B/s]
  int pcie_per_node = 2;
  int gpus_per_node = 4;
  int cpus_per_node = 2;
  std::uint64_t gpu_memory_bytes = 16ull << 30;
  std::uint64_t sub_volume_bytes = 8ull << 30;  ///< Nsub_vol (Section 5.3)
  std::size_t batch = 32;                       ///< Nbatch of Listing 1
};

/// The 2-D rank grid (Table 2): R rows x C columns, Nranks = R * C (Eq. 4),
/// one rank per GPU (Eq. 6).
struct GridShape {
  int rows = 1;     ///< R
  int columns = 1;  ///< C

  int ranks() const { return rows * columns; }
};

/// Eq. (7) + the §4.1.5 memory constraint: the smallest power-of-two R such
/// that the per-GPU sub-volume plus a projection batch fits in device memory.
/// R is also bounded below by sizeof(float)*Nx*Ny*Nz / Nsub_vol.
int select_rows(const Problem& problem, const MicroBench& mb = {});

/// The §4.1.5 doubling loop alone, parameterized: starting from `min_rows`,
/// doubles R until `resident_slabs` sub-volumes of volume_bytes/R plus
/// `batch_bytes` fit `memory_bytes`. select_rows delegates here with the
/// MicroBench constants and one resident slab; the DecompositionPlan layer
/// reuses it against the actual gpusim::DeviceSpec with the streaming
/// double buffer (resident_slabs = 2). Throws ConfigError when no feasible
/// R exists.
int constrain_rows_to_memory(const Problem& problem, int min_rows,
                             std::uint64_t memory_bytes,
                             std::uint64_t batch_bytes,
                             std::uint64_t resident_slabs = 1);

/// Grid for a given GPU count: R from select_rows, C = gpus / R.
/// Throws ConfigError when gpus is not a multiple of R.
GridShape make_grid(const Problem& problem, int gpus,
                    const MicroBench& mb = {});

/// All component times of Section 4.2.2 (seconds).
struct Breakdown {
  double t_load = 0;       ///< Eq. (8)
  double t_flt = 0;        ///< Eq. (9)
  double t_allgather = 0;  ///< Eq. (10)
  double t_h2d = 0;        ///< Eq. (11)
  double t_bp = 0;         ///< Eq. (12) (includes t_h2d)
  double t_trans = 0;      ///< Eq. (13)
  double t_d2h = 0;        ///< Eq. (14)
  double t_reduce = 0;     ///< Eq. (15); 0 when C == 1 (paper's N/A)
  double t_store = 0;      ///< Eq. (16)

  double t_compute = 0;    ///< Eq. (17): max(load, flt, allgather, bp)
  double t_post = 0;       ///< Eq. (18): d2h + reduce + store (trans folded)
  double t_runtime = 0;    ///< Eq. (19)

  /// Table 5's overlap factor: (Tflt + TAllGather + Tbp) / Tcompute.
  double delta() const {
    return t_compute > 0 ? (t_flt + t_allgather + t_bp) / t_compute : 0.0;
  }
};

/// Evaluates Equations (8)-(19) for `problem` on `grid`.
Breakdown predict(const Problem& problem, const GridShape& grid,
                  const MicroBench& mb = {});

/// End-to-end GUPS (Section 2.3) from a predicted runtime.
double predicted_gups(const Problem& problem, const Breakdown& breakdown);

}  // namespace ifdk::perfmodel
