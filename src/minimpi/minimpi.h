// minimpi: an in-process message-passing runtime with MPI semantics.
//
// The paper runs iFDK over Intel MPI on InfiniBand; this repository has no
// MPI installation, so the framework is written against this interface
// instead. Ranks are threads inside one process; messages are copied between
// rank-private mailboxes, so the programming model is identical to MPI's
// (no shared mutable state between ranks except through explicit messages —
// see the LLNL MPI programming model and Core Guidelines CP.mess).
//
// Supported surface (everything iFDK needs, Section 4.1):
//   * point-to-point: send / recv with tags (plus nonblocking isend/irecv),
//   * collectives: barrier, bcast, gather, allgather, reduce, allreduce,
//   * nonblocking collectives: iallgather_ring and a chunked, pipelined
//     ireduce (linear or binomial-tree fan-in per segment), each returning a
//     waitable CollectiveRequest (the overlap primitives of the Fig. 4
//     pipeline); tag blocks are reserved at initiation, so any number of
//     collective epochs compose on one communicator (the streaming-4DCT
//     mode keeps per-volume epochs in flight),
//   * communicator split (used to form the R x C rank grid of Fig. 3a).
//
// Collectives are implemented over point-to-point with deterministic
// (rank-ordered) reduction, so distributed results are reproducible and
// comparable against single-node references in tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/error.h"

namespace ifdk::mpi {

enum class ReduceOp { kSum, kMax, kMin };

/// Fan-in topology of the segmented ireduce.
///   * kLinear: every rank posts its segments straight to the root, which
///     folds them in ascending-rank order — the PR 3 algorithm, kept for
///     bitwise back-compat tests and as the degenerate p<=2 path.
///   * kTree: per-segment binomial fan-in. Contributions travel up a binomial
///     tree rooted (virtually) at the reduce root: each relay concatenates
///     its subtree's contributions and forwards one message, so the root
///     waits on ceil(log2 p) messages per segment instead of p-1, and the
///     fan-in latency is spread across the tree. The *summation order is the
///     same on every path* — relays never fold, only the root does, in
///     ascending-rank order — so results are bitwise identical to kLinear
///     (asserted by tests). Relays pay extra copy bandwidth, the in-process
///     analogue of the switch contention a flat fan-in causes on a real
///     fabric.
enum class ReduceAlgo { kLinear, kTree };

namespace detail {
class World;
}  // namespace detail

/// Optional lossless per-segment codec for ireduce wire traffic. When a
/// codec is supplied, every non-root contribution travels as a
/// self-describing *frame* (produced by `encode`) instead of raw floats:
/// leaves encode-on-send, relays concatenate frames verbatim (frames carry
/// their own length, so the binomial fan-in composes unchanged), and only
/// the folding root decodes. The codec must be lossless — the reduce
/// contract is that results stay bitwise identical to the uncompressed
/// path. minimpi stays codec-agnostic: the engine layer injects the
/// postproc frame codec through this seam (engine::make_wire_codec).
struct WireCodec {
  /// Encodes `count` floats into one self-describing frame.
  std::function<std::vector<std::uint8_t>(const float* data,
                                          std::size_t count)>
      encode;
  /// Decodes one frame from `data` (at most `bytes` available) into `out`
  /// (exactly `count` floats) and returns the frame bytes consumed, so
  /// concatenated frames parse sequentially. Must throw (CompressionError)
  /// on corrupt input rather than decode garbage.
  std::function<std::size_t(const std::uint8_t* data, std::size_t bytes,
                            float* out, std::size_t count)>
      decode;
};

/// Thrown from any blocked or initiated operation when the world was aborted
/// (another rank failed, or abort_world() was called). Typed so error
/// reporting can prefer the root cause over this secondary symptom:
/// run_world() rethrows a rank's non-abort error when one exists.
class WorldAbortedError : public Error {
 public:
  /// `what` names the failing operation; the root cause lives on the rank
  /// that aborted.
  explicit WorldAbortedError(const std::string& what) : Error(what) {}
};

/// A communicator: a subset of ranks with private tag space. Copyable handle
/// (like an MPI_Comm); all members must call collectives in the same order.
class Comm {
 public:
  /// This rank's id within the communicator, in [0, size()).
  int rank() const { return rank_; }
  /// Number of member ranks.
  int size() const { return static_cast<int>(members_.size()); }

  // -- point to point ------------------------------------------------------

  /// Blocking (buffered) send: copies `bytes` into the destination mailbox
  /// and returns. dest is a rank within this communicator.
  void send(int dest, int tag, const void* data, std::size_t bytes);

  /// Blocking receive of exactly `bytes` from `src` with `tag`.
  void recv(int src, int tag, void* data, std::size_t bytes);

  /// Typed convenience wrapper over send() (blocking, buffered).
  template <typename T>
  void send_span(int dest, int tag, std::span<const T> data) {
    send(dest, tag, data.data(), data.size_bytes());
  }
  /// Typed convenience wrapper over recv() (blocking).
  template <typename T>
  void recv_span(int src, int tag, std::span<T> data) {
    recv(src, tag, data.data(), data.size_bytes());
  }

  // -- nonblocking point to point -------------------------------------------

  /// Handle to an outstanding nonblocking operation. wait() must be called
  /// exactly once before destruction (asserted; like CollectiveRequest, an
  /// unwaited handle is tolerated only while an exception unwinds, i.e.
  /// during abort teardown), mirroring MPI_Request semantics without the
  /// free-floating MPI_REQUEST_NULL states.
  class Request {
   public:
    Request() = default;
    Request(Request&&) noexcept;
    Request& operator=(Request&&) noexcept;
    Request(const Request&) = delete;
    Request& operator=(const Request&) = delete;
    ~Request();

    /// Blocks until the operation completed (for isend: the payload was
    /// buffered at the destination; for irecv: the data arrived).
    void wait();
    /// True while an operation is attached (wait() has not consumed it).
    bool valid() const { return comm_ != nullptr; }

   private:
    friend class Comm;
    Comm* comm_ = nullptr;
    int peer_ = -1;
    int tag_ = -1;
    void* data_ = nullptr;
    std::size_t bytes_ = 0;
    bool is_recv_ = false;
    bool done_ = false;
  };

  /// Nonblocking send: the payload is copied immediately (buffered send), so
  /// the source buffer may be reused as soon as isend returns; wait() is a
  /// cheap formality kept for API symmetry.
  Request isend(int dest, int tag, const void* data, std::size_t bytes);

  /// Nonblocking receive: the message is matched and copied at wait() time.
  /// The receive buffer must stay alive until then.
  Request irecv(int src, int tag, void* data, std::size_t bytes);

  /// Waits on all requests in order.
  static void wait_all(std::span<Request> requests);

  // -- nonblocking collectives ----------------------------------------------

  /// Waitable handle to an outstanding nonblocking collective
  /// (iallgather_ring / ireduce). wait() must be called exactly once before
  /// destruction (asserted; dropping an unwaited handle is tolerated only
  /// while an exception unwinds, i.e. after a world abort). Handles may be
  /// waited out of order with respect to each other and to point-to-point
  /// traffic: every collective reserves its tag block at *initiation* time,
  /// so message matching cannot cross between operations regardless of
  /// completion order.
  class CollectiveRequest {
   public:
    CollectiveRequest() = default;
    CollectiveRequest(CollectiveRequest&&) noexcept;
    CollectiveRequest& operator=(CollectiveRequest&&) noexcept;
    CollectiveRequest(const CollectiveRequest&) = delete;
    CollectiveRequest& operator=(const CollectiveRequest&) = delete;
    ~CollectiveRequest();

    /// Drives the remaining steps of the collective to completion, blocking
    /// as needed. Throws Error if the world was aborted by another rank; the
    /// handle counts as completed either way (no second wait).
    void wait();
    /// True until wait() has been called (default-constructed handles are
    /// born completed).
    bool valid() const { return !done_; }

   private:
    friend class Comm;
    explicit CollectiveRequest(std::function<void()> complete);
    std::function<void()> complete_;
    bool done_ = true;
  };

  /// Invoked by ireduce's root after each segment has been fully reduced
  /// into the receive buffer; arguments are the segment's float offset and
  /// length. Runs on the thread that calls wait().
  using SegmentCallback = std::function<void(std::size_t offset,
                                             std::size_t length)>;

  /// Default ireduce segment: 64K floats (256 KiB), small enough that the
  /// reduction of segment s overlaps delivery of segment s+1, large enough
  /// to amortize per-message cost.
  static constexpr std::size_t kDefaultReduceSegment = std::size_t{1} << 16;

  /// Collective tags live in a window of this many sequence numbers; a tag
  /// block never straddles the wrap (reserve_collective_tags skips ahead
  /// deterministically), so two blocks can only collide after a full window
  /// of intervening traffic. Public so epoch budget checks against
  /// collective_tags_reserved() can account for the wrap skip exactly.
  static constexpr std::uint64_t kCollectiveTagWindow = std::uint64_t{1} << 20;

  /// Nonblocking ring AllGather. Semantics and output are identical to
  /// allgather_ring() (same tag consumption: p-1 collective sequence
  /// numbers, reserved at initiation). The caller's block is copied into
  /// `recv` and the first neighbour exchange is posted before returning, so
  /// neighbours that wait early never stall on this rank's initiation; the
  /// remaining p-2 exchange steps run inside wait(). `send_data` may be
  /// reused as soon as this call returns; `recv` must stay alive and
  /// untouched until wait() completes.
  CollectiveRequest iallgather_ring(const void* send_data,
                                    std::size_t bytes_per_rank, void* recv);

  /// Nonblocking, chunked, pipelined reduce to `root`. The payload is split
  /// into ceil(count / segment_floats) segments; leaf ranks post every
  /// segment eagerly (buffered) and their wait() is a no-op, while the root
  /// folds segments one at a time inside wait() — so the reduction of
  /// segment s overlaps the delivery of segment s+1, and `on_segment`
  /// (root only, may be empty) streams finished segments to a consumer
  /// (e.g. an async PFS writer) while later segments are still in flight.
  /// With ReduceAlgo::kTree (the default) segments fan in over a binomial
  /// tree whose relay ranks forward inside *their* wait(); with kLinear
  /// every rank posts straight to the root. Either way the per-element fold
  /// order is ascending rank, exactly like reduce(), so results are bitwise
  /// identical across algorithms and to the blocking linear reduce.
  /// `segment_floats` must be positive and identical on every rank (it
  /// determines the number of reserved tags; `algo` must match too).
  /// `recv` may be null on non-root ranks and must not alias `send_data` on
  /// the root. Multiple ireduce epochs may be in flight on one communicator
  /// (each reserves its own tag block at initiation) as long as every
  /// member initiates them in the same order.
  ///
  /// `wire` (must be set on every member or none — frames and raw floats
  /// cannot mix within one reduce) frames each contribution with the given
  /// lossless codec: senders encode, relays concatenate the self-describing
  /// frames verbatim, the root decodes before the fold. The fold order is
  /// untouched, so a lossless codec keeps results bitwise identical to the
  /// unframed path at unchanged tag budget (one sequence number per segment
  /// either way). The codec is copied at initiation; the caller's WireCodec
  /// need not outlive the call.
  CollectiveRequest ireduce(const float* send_data, float* recv,
                            std::size_t count, ReduceOp op, int root,
                            std::size_t segment_floats = kDefaultReduceSegment,
                            SegmentCallback on_segment = {},
                            ReduceAlgo algo = ReduceAlgo::kTree,
                            const WireCodec* wire = nullptr);

  // -- collectives ---------------------------------------------------------

  /// Blocks until every member of the communicator reached the barrier.
  void barrier();

  /// Broadcast `bytes` from `root` to every rank.
  void bcast(void* data, std::size_t bytes, int root);

  /// Every rank contributes `bytes_per_rank`; rank `root` receives the
  /// concatenation ordered by rank. `recv` may be null on non-root ranks.
  void gather(const void* send_data, std::size_t bytes_per_rank, void* recv,
              int root);

  /// Simultaneous send to `dest` and receive from `src` (same tag space as
  /// send/recv; deadlock-free like MPI_Sendrecv).
  void sendrecv(int dest, const void* send_data, int src, void* recv_data,
                std::size_t bytes, int tag);

  /// AllGather (the Fig. 3b column collective): every rank ends up with the
  /// rank-ordered concatenation of all contributions. Dispatches to the
  /// configured algorithm (gather+bcast by default; ring available).
  void allgather(const void* send_data, std::size_t bytes_per_rank,
                 void* recv);

  /// Ring AllGather: P-1 neighbour exchange steps, each moving one block —
  /// the bandwidth-optimal algorithm large MPI implementations use for big
  /// payloads (and the one the cluster simulator's cost model assumes).
  /// Output is identical to allgather().
  void allgather_ring(const void* send_data, std::size_t bytes_per_rank,
                      void* recv);

  /// Element-wise float reduction to `root` (the Fig. 3b row collective).
  /// Reduction order is fixed (ascending rank), making results deterministic.
  void reduce(const float* send_data, float* recv, std::size_t count,
              ReduceOp op, int root);

  /// Binomial-tree reduce: log2(P) rounds instead of P-1 messages at the
  /// root. Floating-point summation order differs from reduce() (pairwise
  /// instead of linear), so results are deterministic but not bitwise equal
  /// to the linear algorithm.
  void reduce_tree(const float* send_data, float* recv, std::size_t count,
                   ReduceOp op, int root);

  /// reduce followed by bcast.
  void allreduce(const float* send_data, float* recv, std::size_t count,
                 ReduceOp op);

  // -- introspection ---------------------------------------------------------

  /// Collective sequence numbers reserved so far on this communicator
  /// (every collective claims its exact tag budget through
  /// reserve_collective_tags at initiation). This is the observable the
  /// DecompositionPlan tag budgets are checked against: record it before an
  /// epoch, run the epoch, and the delta must not exceed the plan's budget
  /// (the runtime asserts this per streaming epoch; tests/test_plan.cpp
  /// property-tests it). Read it from the thread that drives this Comm.
  std::uint64_t collective_tags_reserved() const { return collective_seq_; }

  // -- error handling --------------------------------------------------------

  /// The MPI_Abort analogue: poisons the whole world so every rank's blocked
  /// or future operation throws WorldAbortedError. Call this when a local
  /// pipeline thread fails while *sibling threads of the same rank* may be
  /// blocked inside collectives whose remote peers will never progress —
  /// rethrowing from the rank body alone cannot unblock them, because the
  /// body must join those threads first. Idempotent.
  void abort_world();

  // -- communicator management ---------------------------------------------

  /// Splits into sub-communicators by color; ranks with equal color join the
  /// same sub-communicator, ordered by (key, old rank). Must be called by
  /// every member.
  Comm split(int color, int key);

 private:
  friend void run_world(int size, const std::function<void(Comm&)>& body);

  Comm(std::shared_ptr<detail::World> world, std::uint64_t comm_id,
       std::vector<int> members, int rank);

  /// Reserves a contiguous block of `n` collective tags and returns the
  /// first. Every collective (blocking or not) claims its exact tag budget
  /// through this single choke point at *initiation* time, so any number of
  /// collective epochs may be outstanding per communicator: blocks never
  /// interleave, and a block that would straddle the tag-window wrap is
  /// pushed past it (deterministically — the skip depends only on the
  /// sequence counter, which advances identically on every member).
  int reserve_collective_tags(std::uint64_t n);

  std::shared_ptr<detail::World> world_;
  std::uint64_t comm_id_ = 0;
  std::vector<int> members_;  ///< world ranks, index = rank in this comm
  int rank_ = -1;             ///< my rank within this communicator
  std::uint64_t collective_seq_ = 0;  ///< per-comm collective matching
  std::uint64_t split_seq_ = 0;       ///< per-comm split id generation
};

/// Launches `size` rank threads, each running `body(comm)` with a world
/// communicator, and joins them. Exceptions thrown by any rank are rethrown
/// (the first one) after all ranks have been joined or aborted.
void run_world(int size, const std::function<void(Comm&)>& body);

}  // namespace ifdk::mpi
