#include "minimpi/minimpi.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <tuple>

namespace ifdk::mpi {

namespace detail {

namespace {

/// splitmix64 mix, used to derive communicator ids deterministically.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

/// Shared state of one rank world: per-rank mailboxes plus an abort flag so
/// that an exception on one rank unblocks every other rank.
class World {
 public:
  explicit World(int size) : boxes_(static_cast<std::size_t>(size)) {}

  void post(std::uint64_t comm_id, int dest_world, int src_comm_rank, int tag,
            const void* data, std::size_t bytes) {
    Mailbox& box = boxes_[static_cast<std::size_t>(dest_world)];
    std::vector<char> payload(bytes);
    if (bytes > 0) std::memcpy(payload.data(), data, bytes);
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      check_alive();
      box.queues[Key{comm_id, src_comm_rank, tag}].push_back(
          std::move(payload));
    }
    box.cv.notify_all();
  }

  void fetch(std::uint64_t comm_id, int my_world, int src_comm_rank, int tag,
             void* data, std::size_t bytes) {
    Mailbox& box = boxes_[static_cast<std::size_t>(my_world)];
    const Key key{comm_id, src_comm_rank, tag};
    std::unique_lock<std::mutex> lock(box.mutex);
    box.cv.wait(lock, [&] {
      if (aborted_.load(std::memory_order_relaxed)) return true;
      auto it = box.queues.find(key);
      return it != box.queues.end() && !it->second.empty();
    });
    check_alive();
    auto& queue = box.queues[key];
    std::vector<char> payload = std::move(queue.front());
    queue.pop_front();
    IFDK_ASSERT_MSG(payload.size() == bytes,
                    "matched message has a different size than the receive "
                    "buffer (mismatched send/recv pair)");
    if (bytes > 0) std::memcpy(data, payload.data(), bytes);
  }

  /// Like fetch(), but returns the matched payload whatever its size. Wire
  /// frames are variable-length (a compressed segment's size depends on its
  /// content), so the framed ireduce paths cannot pre-size a receive buffer.
  std::vector<char> fetch_any(std::uint64_t comm_id, int my_world,
                              int src_comm_rank, int tag) {
    Mailbox& box = boxes_[static_cast<std::size_t>(my_world)];
    const Key key{comm_id, src_comm_rank, tag};
    std::unique_lock<std::mutex> lock(box.mutex);
    box.cv.wait(lock, [&] {
      if (aborted_.load(std::memory_order_relaxed)) return true;
      auto it = box.queues.find(key);
      return it != box.queues.end() && !it->second.empty();
    });
    check_alive();
    auto& queue = box.queues[key];
    std::vector<char> payload = std::move(queue.front());
    queue.pop_front();
    return payload;
  }

  void abort() {
    aborted_.store(true);
    for (auto& box : boxes_) {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.cv.notify_all();
    }
  }

  void check_alive() const {
    if (aborted_.load(std::memory_order_relaxed)) {
      throw WorldAbortedError(
          "minimpi world aborted because another rank failed");
    }
  }

 private:
  using Key = std::tuple<std::uint64_t, int, int>;  // comm, src rank, tag

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<Key, std::deque<std::vector<char>>> queues;
  };

  std::vector<Mailbox> boxes_;
  std::atomic<bool> aborted_{false};
};

}  // namespace detail

namespace {

// Collective operations use a reserved tag space far above user tags.
constexpr int kCollectiveTagBase = 1 << 24;

// The tag window itself is Comm::kCollectiveTagWindow (public, so epoch
// budget checks can account for the wrap skip); alias it locally.
constexpr std::uint64_t kCollectiveTagWindow = Comm::kCollectiveTagWindow;

float apply_op(ReduceOp op, float a, float b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kMax: return a > b ? a : b;
    case ReduceOp::kMin: return a < b ? a : b;
  }
  return a;
}

}  // namespace

Comm::Comm(std::shared_ptr<detail::World> world, std::uint64_t comm_id,
           std::vector<int> members, int rank)
    : world_(std::move(world)),
      comm_id_(comm_id),
      members_(std::move(members)),
      rank_(rank) {}

int Comm::reserve_collective_tags(std::uint64_t n) {
  IFDK_ASSERT_MSG(n > 0 && n <= kCollectiveTagWindow,
                  "collective tag block exceeds the tag window");
  const std::uint64_t offset = collective_seq_ % kCollectiveTagWindow;
  if (offset + n > kCollectiveTagWindow) {
    // Never hand out a block that straddles the window wrap: tags above the
    // window top would collide with a later epoch's wrapped block while both
    // are in flight. Skipping to the window start is deterministic — the
    // sequence counter advances identically on every member.
    collective_seq_ += kCollectiveTagWindow - offset;
  }
  const int tag = kCollectiveTagBase +
                  static_cast<int>(collective_seq_ % kCollectiveTagWindow);
  collective_seq_ += n;
  return tag;
}

void Comm::send(int dest, int tag, const void* data, std::size_t bytes) {
  IFDK_ASSERT(dest >= 0 && dest < size());
  IFDK_ASSERT_MSG(tag >= 0 && tag < kCollectiveTagBase,
                  "user tags must be below the collective tag space");
  world_->post(comm_id_, members_[static_cast<std::size_t>(dest)], rank_, tag,
               data, bytes);
}

void Comm::recv(int src, int tag, void* data, std::size_t bytes) {
  IFDK_ASSERT(src >= 0 && src < size());
  IFDK_ASSERT(tag >= 0 && tag < kCollectiveTagBase);
  world_->fetch(comm_id_, members_[static_cast<std::size_t>(rank_)], src, tag,
                data, bytes);
}

void Comm::barrier() {
  // Two-phase flat barrier through rank 0: notify, then release.
  const int tag = reserve_collective_tags(2);  // notify + release
  const int my_world = members_[static_cast<std::size_t>(rank_)];
  char token = 0;
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      world_->fetch(comm_id_, my_world, r, tag, &token, 1);
    }
    for (int r = 1; r < size(); ++r) {
      world_->post(comm_id_, members_[static_cast<std::size_t>(r)], 0, tag + 1,
                   &token, 1);
    }
  } else {
    world_->post(comm_id_, members_[0], rank_, tag, &token, 1);
    world_->fetch(comm_id_, my_world, 0, tag + 1, &token, 1);
  }
}

void Comm::bcast(void* data, std::size_t bytes, int root) {
  IFDK_ASSERT(root >= 0 && root < size());
  const int tag = reserve_collective_tags(1);
  const int my_world = members_[static_cast<std::size_t>(rank_)];
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      world_->post(comm_id_, members_[static_cast<std::size_t>(r)], root, tag,
                   data, bytes);
    }
  } else {
    world_->fetch(comm_id_, my_world, root, tag, data, bytes);
  }
}

void Comm::gather(const void* send_data, std::size_t bytes_per_rank,
                  void* recv, int root) {
  IFDK_ASSERT(root >= 0 && root < size());
  const int tag = reserve_collective_tags(1);
  const int my_world = members_[static_cast<std::size_t>(rank_)];
  if (rank_ == root) {
    IFDK_ASSERT_MSG(recv != nullptr, "gather root requires a receive buffer");
    char* out = static_cast<char*>(recv);
    std::memcpy(out + static_cast<std::size_t>(root) * bytes_per_rank,
                send_data, bytes_per_rank);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      world_->fetch(comm_id_, my_world, r, tag,
                    out + static_cast<std::size_t>(r) * bytes_per_rank,
                    bytes_per_rank);
    }
  } else {
    world_->post(comm_id_, members_[static_cast<std::size_t>(root)], rank_,
                 tag, send_data, bytes_per_rank);
  }
}

Comm::Request::Request(Request&& other) noexcept { *this = std::move(other); }

Comm::Request& Comm::Request::operator=(Request&& other) noexcept {
  if (this != &other) {
    IFDK_ASSERT_MSG(comm_ == nullptr || done_,
                    "overwriting an unwaited Request");
    comm_ = other.comm_;
    peer_ = other.peer_;
    tag_ = other.tag_;
    data_ = other.data_;
    bytes_ = other.bytes_;
    is_recv_ = other.is_recv_;
    done_ = other.done_;
    other.comm_ = nullptr;
    other.done_ = true;
  }
  return *this;
}

Comm::Request::~Request() {
  // Like CollectiveRequest: dropping an unwaited handle is tolerated only
  // while an exception unwinds (abort teardown of a half-posted round).
  IFDK_ASSERT_MSG(comm_ == nullptr || done_ || std::uncaught_exceptions() > 0,
                  "Request destroyed without wait()");
}

void Comm::Request::wait() {
  IFDK_ASSERT_MSG(comm_ != nullptr, "wait() on an empty Request");
  IFDK_ASSERT_MSG(!done_, "wait() called twice");
  if (is_recv_) {
    comm_->recv(peer_, tag_, data_, bytes_);
  }
  // isend was buffered at post time: nothing left to do.
  done_ = true;
}

Comm::Request Comm::isend(int dest, int tag, const void* data,
                          std::size_t bytes) {
  // Buffered-send semantics: post() copies the payload, so completion is
  // immediate and the caller's buffer is free.
  send(dest, tag, data, bytes);
  Request req;
  req.comm_ = this;
  req.peer_ = dest;
  req.tag_ = tag;
  req.is_recv_ = false;
  return req;
}

Comm::Request Comm::irecv(int src, int tag, void* data, std::size_t bytes) {
  Request req;
  req.comm_ = this;
  req.peer_ = src;
  req.tag_ = tag;
  req.data_ = data;
  req.bytes_ = bytes;
  req.is_recv_ = true;
  return req;
}

void Comm::wait_all(std::span<Request> requests) {
  for (Request& r : requests) {
    if (r.valid()) r.wait();
  }
}

Comm::CollectiveRequest::CollectiveRequest(std::function<void()> complete)
    : complete_(std::move(complete)), done_(false) {}

Comm::CollectiveRequest::CollectiveRequest(CollectiveRequest&& other) noexcept {
  *this = std::move(other);
}

Comm::CollectiveRequest& Comm::CollectiveRequest::operator=(
    CollectiveRequest&& other) noexcept {
  if (this != &other) {
    IFDK_ASSERT_MSG(done_, "overwriting an unwaited CollectiveRequest");
    complete_ = std::move(other.complete_);
    done_ = other.done_;
    other.complete_ = nullptr;
    other.done_ = true;
  }
  return *this;
}

Comm::CollectiveRequest::~CollectiveRequest() {
  // An unwaited handle may be dropped during exception unwinding (a world
  // abort throws out of a fetch while sibling requests are outstanding);
  // any other destruction without wait() is a protocol violation.
  IFDK_ASSERT_MSG(done_ || std::uncaught_exceptions() > 0,
                  "CollectiveRequest destroyed without wait()");
}

void Comm::CollectiveRequest::wait() {
  IFDK_ASSERT_MSG(!done_, "wait() on a completed CollectiveRequest");
  // Mark completed before running the steps: a world abort throws out of
  // fetch(), and the handle must not assert again during unwinding.
  done_ = true;
  if (complete_) complete_();
  complete_ = nullptr;
}

Comm::CollectiveRequest Comm::iallgather_ring(const void* send_data,
                                              std::size_t bytes_per_rank,
                                              void* recv) {
  const int p = size();
  char* out = static_cast<char*>(recv);
  std::memcpy(out + static_cast<std::size_t>(rank_) * bytes_per_rank,
              send_data, bytes_per_rank);
  if (p == 1) return CollectiveRequest([] {});

  // Same tag budget as the blocking ring (p-1 steps), reserved *now* so any
  // collective initiated while this one is outstanding gets later tags on
  // every rank.
  const int tag = reserve_collective_tags(static_cast<std::uint64_t>(p - 1));

  const int next = (rank_ + 1) % p;
  const int prev = (rank_ + p - 1) % p;
  // Step 0 forwards this rank's own block, which is available immediately:
  // post it before returning so a neighbour that waits early never stalls
  // on this rank's initiation.
  world_->post(comm_id_, members_[static_cast<std::size_t>(next)], rank_, tag,
               out + static_cast<std::size_t>(rank_) * bytes_per_rank,
               bytes_per_rank);

  // The completion owns copies of the comm state: the Comm handle may be
  // moved or destroyed while the request is outstanding.
  return CollectiveRequest([world = world_, comm_id = comm_id_,
                            members = members_, rank = rank_, p, next, prev,
                            tag, out, bytes_per_rank] {
    const int my_world = members[static_cast<std::size_t>(rank)];
    for (int s = 0; s < p - 1; ++s) {
      // Block received in step s is the one forwarded in step s+1.
      const int recv_block = (rank + p - s - 1) % p;
      char* block = out + static_cast<std::size_t>(recv_block) * bytes_per_rank;
      world->fetch(comm_id, my_world, prev, tag + s, block, bytes_per_rank);
      if (s + 1 < p - 1) {
        world->post(comm_id, members[static_cast<std::size_t>(next)], rank,
                    tag + s + 1, block, bytes_per_rank);
      }
    }
  });
}

namespace {

/// Binomial fan-in bookkeeping over virtual ranks (vrank 0 = the reduce
/// root). vrank v's subtree is the contiguous vrank range [v, v + span(v))
/// clipped to p, where span is p for the root and lowbit(v) otherwise; v's
/// children are v + 2^j for 2^j < span(v), and its parent is v - lowbit(v).
struct FanInTree {
  int p;

  int span(int v) const {
    const int raw = v == 0 ? p : (v & -v);
    return std::min(raw, p - v);
  }
  int parent(int v) const { return v - (v & -v); }
  /// Children in ascending vrank order (their subtrees tile [v+1, v+span)).
  std::vector<int> children(int v) const {
    std::vector<int> out;
    const int limit = v == 0 ? p : (v & -v);
    for (int step = 1; step < limit && v + step < p; step <<= 1) {
      out.push_back(v + step);
    }
    return out;
  }
};

}  // namespace

namespace {

/// Decodes the `frames` concatenated wire frames of a fan-in block (each
/// `len` floats, written to consecutive `len`-strided slots of `out`) and
/// requires the block to be exactly consumed — trailing bytes mean a peer
/// framed its message wrong or the block was corrupted in flight.
void decode_frame_block(const WireCodec& wire, const std::vector<char>& block,
                        std::size_t frames, std::size_t len, float* out) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(block.data());
  std::size_t off = 0;
  for (std::size_t f = 0; f < frames; ++f) {
    off += wire.decode(bytes + off, block.size() - off, out + f * len, len);
  }
  if (off != block.size()) {
    throw CompressionError("ireduce wire block: " +
                           std::to_string(block.size() - off) +
                           " trailing bytes after " + std::to_string(frames) +
                           " frames at offset " + std::to_string(off));
  }
}

}  // namespace

Comm::CollectiveRequest Comm::ireduce(const float* send_data, float* recv,
                                      std::size_t count, ReduceOp op, int root,
                                      std::size_t segment_floats,
                                      SegmentCallback on_segment,
                                      ReduceAlgo algo, const WireCodec* wire) {
  IFDK_ASSERT(root >= 0 && root < size());
  IFDK_ASSERT_MSG(segment_floats > 0,
                  "ireduce segment size must be positive (and identical on "
                  "every rank)");
  const std::size_t segments =
      count == 0 ? 0 : (count + segment_floats - 1) / segment_floats;
  IFDK_ASSERT_MSG(segments <= kCollectiveTagWindow,
                  "ireduce segment count exceeds the collective tag window");
  if (segments == 0) return CollectiveRequest([] {});
  // The codec is copied now (captured by value below): completion lambdas
  // may run long after the caller's WireCodec went out of scope.
  const bool use_wire = wire != nullptr;
  IFDK_ASSERT_MSG(!use_wire || (wire->encode && wire->decode),
                  "ireduce wire codec requires both encode and decode");
  const WireCodec codec = use_wire ? *wire : WireCodec{};
  // Per segment, every non-root vrank sends exactly one message to its
  // parent (the linear fan-in is the depth-1 tree), so both algorithms
  // consume the same tag budget: one sequence number per segment. Framing
  // changes message *sizes*, never message *count*, so the budget holds
  // with a wire codec too.
  const int tag = reserve_collective_tags(segments);
  const int p = size();

  if (algo == ReduceAlgo::kLinear && rank_ != root) {
    // Sends are buffered: post every segment eagerly and complete at once.
    // The pipelining happens at the root, which folds segment s while the
    // payload of s+1 is already sitting in its mailbox.
    for (std::size_t s = 0; s < segments; ++s) {
      const std::size_t offset = s * segment_floats;
      const std::size_t len = std::min(segment_floats, count - offset);
      if (use_wire) {
        const std::vector<std::uint8_t> frame =
            codec.encode(send_data + offset, len);
        world_->post(comm_id_, members_[static_cast<std::size_t>(root)],
                     rank_, tag + static_cast<int>(s), frame.data(),
                     frame.size());
      } else {
        world_->post(comm_id_, members_[static_cast<std::size_t>(root)],
                     rank_, tag + static_cast<int>(s), send_data + offset,
                     len * sizeof(float));
      }
    }
    return CollectiveRequest([] {});
  }

  if (algo == ReduceAlgo::kLinear) {
    IFDK_ASSERT_MSG(recv != nullptr, "ireduce root requires a receive buffer");
    return CollectiveRequest([world = world_, comm_id = comm_id_,
                              members = members_, rank = rank_, p, send_data,
                              recv, count, op, root, segment_floats, segments,
                              tag, use_wire, codec,
                              on_segment = std::move(on_segment)] {
      const int my_world = members[static_cast<std::size_t>(rank)];
      std::vector<float> incoming(std::min(segment_floats, count));
      for (std::size_t s = 0; s < segments; ++s) {
        const std::size_t offset = s * segment_floats;
        const std::size_t len = std::min(segment_floats, count - offset);
        // Identical fold order to the blocking reduce(): start from rank 0's
        // contribution, fold ascending — bitwise-equal results by design.
        for (int r = 0; r < p; ++r) {
          const float* contribution;
          if (r == root) {
            contribution = send_data + offset;
          } else if (use_wire) {
            const std::vector<char> block = world->fetch_any(
                comm_id, my_world, r, tag + static_cast<int>(s));
            decode_frame_block(codec, block, 1, len, incoming.data());
            contribution = incoming.data();
          } else {
            world->fetch(comm_id, my_world, r, tag + static_cast<int>(s),
                         incoming.data(), len * sizeof(float));
            contribution = incoming.data();
          }
          if (r == 0) {
            std::memcpy(recv + offset, contribution, len * sizeof(float));
          } else {
            for (std::size_t i = 0; i < len; ++i) {
              recv[offset + i] =
                  apply_op(op, recv[offset + i], contribution[i]);
            }
          }
        }
        if (on_segment) on_segment(offset, len);
      }
    });
  }

  // -- ReduceAlgo::kTree ----------------------------------------------------
  // Contributions climb a binomial tree of virtual ranks (vrank = rank
  // rotated so the root is vrank 0). Relays only *concatenate* — their
  // upward message is the ascending-vrank concatenation of every
  // contribution in their subtree — and the root alone folds, in ascending
  // *communicator* rank order, so the summation order is exactly reduce()'s
  // and the result is bitwise identical to ReduceAlgo::kLinear.
  const FanInTree tree{p};
  const int vrank = (rank_ - root + p) % p;

  if (tree.span(vrank) == 1 && vrank != 0) {
    // Leaf: one single-contribution message per segment to the parent,
    // posted eagerly exactly like the linear non-root path.
    const int parent =
        members_[static_cast<std::size_t>((tree.parent(vrank) + root) % p)];
    for (std::size_t s = 0; s < segments; ++s) {
      const std::size_t offset = s * segment_floats;
      const std::size_t len = std::min(segment_floats, count - offset);
      if (use_wire) {
        const std::vector<std::uint8_t> frame =
            codec.encode(send_data + offset, len);
        world_->post(comm_id_, parent, rank_, tag + static_cast<int>(s),
                     frame.data(), frame.size());
      } else {
        world_->post(comm_id_, parent, rank_, tag + static_cast<int>(s),
                     send_data + offset, len * sizeof(float));
      }
    }
    return CollectiveRequest([] {});
  }

  if (vrank != 0) {
    // Relay: per segment, gather the children's subtree blocks, splice in
    // this rank's own contribution at vrank position 0, and forward the
    // assembled [v, v+span) block to the parent. Runs inside wait().
    // With a wire codec the relay never decodes: frames are self-describing,
    // so the upward block is this rank's own frame followed by the children's
    // byte blocks verbatim — the concatenate-only invariant that keeps tree
    // results bitwise identical to linear carries over to framed traffic.
    return CollectiveRequest([world = world_, comm_id = comm_id_,
                              members = members_, rank = rank_, p, root,
                              vrank, tree, send_data, count, segment_floats,
                              segments, tag, use_wire, codec] {
      const int my_world = members[static_cast<std::size_t>(rank)];
      const int parent =
          members[static_cast<std::size_t>((tree.parent(vrank) + root) % p)];
      const std::vector<int> children = tree.children(vrank);
      const std::size_t span = static_cast<std::size_t>(tree.span(vrank));
      std::vector<float> block(use_wire ? 0
                                        : span * std::min(segment_floats,
                                                          count));
      std::vector<std::uint8_t> frames;
      for (std::size_t s = 0; s < segments; ++s) {
        const std::size_t offset = s * segment_floats;
        const std::size_t len = std::min(segment_floats, count - offset);
        if (use_wire) {
          frames = codec.encode(send_data + offset, len);
          for (const int child : children) {
            const int child_rank = (child + root) % p;
            const std::vector<char> child_block = world->fetch_any(
                comm_id, my_world, child_rank, tag + static_cast<int>(s));
            frames.insert(frames.end(), child_block.begin(),
                          child_block.end());
          }
          world->post(comm_id, parent, rank, tag + static_cast<int>(s),
                      frames.data(), frames.size());
          continue;
        }
        std::memcpy(block.data(), send_data + offset, len * sizeof(float));
        for (const int child : children) {
          const std::size_t child_span =
              static_cast<std::size_t>(tree.span(child));
          const int child_rank = (child + root) % p;
          world->fetch(comm_id, my_world, child_rank,
                       tag + static_cast<int>(s),
                       block.data() +
                           static_cast<std::size_t>(child - vrank) * len,
                       child_span * len * sizeof(float));
        }
        world->post(comm_id, parent, rank, tag + static_cast<int>(s),
                    block.data(), span * len * sizeof(float));
      }
    });
  }

  // Root (vrank 0): per segment, receive one block per child subtree, then
  // fold all p contributions in ascending communicator-rank order.
  IFDK_ASSERT_MSG(recv != nullptr, "ireduce root requires a receive buffer");
  return CollectiveRequest([world = world_, comm_id = comm_id_,
                            members = members_, rank = rank_, p, root, tree,
                            send_data, recv, count, op, segment_floats,
                            segments, tag, use_wire, codec,
                            on_segment = std::move(on_segment)] {
    const int my_world = members[static_cast<std::size_t>(rank)];
    const std::vector<int> children = tree.children(0);
    // Contributions indexed by vrank; vrank 0 (the root's own) is read from
    // send_data directly.
    std::vector<float> incoming(static_cast<std::size_t>(p) *
                                std::min(segment_floats, count));
    for (std::size_t s = 0; s < segments; ++s) {
      const std::size_t offset = s * segment_floats;
      const std::size_t len = std::min(segment_floats, count - offset);
      for (const int child : children) {
        const std::size_t child_span =
            static_cast<std::size_t>(tree.span(child));
        const int child_rank = (child + root) % p;
        if (use_wire) {
          // One concatenated block of child_span frames, in ascending vrank
          // order — decode them into the same vrank-indexed slots the raw
          // path receives into.
          const std::vector<char> child_block = world->fetch_any(
              comm_id, my_world, child_rank, tag + static_cast<int>(s));
          decode_frame_block(
              codec, child_block, child_span, len,
              incoming.data() + static_cast<std::size_t>(child) * len);
        } else {
          world->fetch(comm_id, my_world, child_rank,
                       tag + static_cast<int>(s),
                       incoming.data() + static_cast<std::size_t>(child) * len,
                       child_span * len * sizeof(float));
        }
      }
      // Ascending-rank fold, exactly like reduce(): rank r's contribution
      // sits at vrank (r - root + p) % p.
      for (int r = 0; r < p; ++r) {
        const int v = (r - root + p) % p;
        const float* contribution =
            v == 0 ? send_data + offset
                   : incoming.data() + static_cast<std::size_t>(v) * len;
        if (r == 0) {
          std::memcpy(recv + offset, contribution, len * sizeof(float));
        } else {
          for (std::size_t i = 0; i < len; ++i) {
            recv[offset + i] = apply_op(op, recv[offset + i], contribution[i]);
          }
        }
      }
      if (on_segment) on_segment(offset, len);
    }
  });
}

void Comm::abort_world() { world_->abort(); }

void Comm::sendrecv(int dest, const void* send_data, int src, void* recv_data,
                    std::size_t bytes, int tag) {
  // Sends are buffered (post() never blocks on the receiver), so posting
  // first and then receiving is deadlock-free for any communication graph.
  send(dest, tag, send_data, bytes);
  recv(src, tag, recv_data, bytes);
}

void Comm::allgather(const void* send_data, std::size_t bytes_per_rank,
                     void* recv) {
  // gather to rank 0 + bcast; both use their own collective tags.
  gather(send_data, bytes_per_rank, recv, 0);
  bcast(recv, bytes_per_rank * static_cast<std::size_t>(size()), 0);
}

void Comm::allgather_ring(const void* send_data, std::size_t bytes_per_rank,
                          void* recv) {
  const int p = size();
  char* out = static_cast<char*>(recv);
  auto block = [&](int r) {
    return out + static_cast<std::size_t>(r) * bytes_per_rank;
  };
  std::memcpy(block(rank_), send_data, bytes_per_rank);
  if (p == 1) return;  // no steps, no tags consumed

  // The p-1 neighbour-exchange steps use tags tag .. tag + p - 2; reserve
  // exactly that many sequence numbers so interleaving with other
  // collectives on this communicator stays in sync on every rank.
  const int tag = reserve_collective_tags(static_cast<std::uint64_t>(p - 1));

  const int next = (rank_ + 1) % p;
  const int prev = (rank_ + p - 1) % p;
  const int my_world = members_[static_cast<std::size_t>(rank_)];
  // Step s: forward the block originated by rank (rank - s) to the right
  // neighbour; after p-1 steps every rank holds every block.
  for (int s = 0; s < p - 1; ++s) {
    const int send_block = (rank_ + p - s) % p;
    const int recv_block = (rank_ + p - s - 1) % p;
    world_->post(comm_id_, members_[static_cast<std::size_t>(next)], rank_,
                 tag + s, block(send_block), bytes_per_rank);
    world_->fetch(comm_id_, my_world, prev, tag + s, block(recv_block),
                  bytes_per_rank);
  }
}

void Comm::reduce(const float* send_data, float* recv, std::size_t count,
                  ReduceOp op, int root) {
  IFDK_ASSERT(root >= 0 && root < size());
  const int tag = reserve_collective_tags(1);
  const int my_world = members_[static_cast<std::size_t>(rank_)];
  const std::size_t bytes = count * sizeof(float);
  if (rank_ == root) {
    IFDK_ASSERT_MSG(recv != nullptr, "reduce root requires a receive buffer");
    // Deterministic order: start from rank 0's contribution and fold ranks
    // in ascending order, regardless of arrival order.
    std::vector<float> incoming(count);
    if (root == 0) {
      std::memcpy(recv, send_data, bytes);
    }
    for (int r = 0; r < size(); ++r) {
      if (r == root && root == 0) continue;
      if (r == 0 && root != 0) {
        world_->fetch(comm_id_, my_world, r, tag, recv, bytes);
        continue;
      }
      const float* contribution;
      if (r == root) {
        contribution = send_data;
      } else {
        world_->fetch(comm_id_, my_world, r, tag, incoming.data(), bytes);
        contribution = incoming.data();
      }
      for (std::size_t i = 0; i < count; ++i) {
        recv[i] = apply_op(op, recv[i], contribution[i]);
      }
    }
  } else {
    world_->post(comm_id_, members_[static_cast<std::size_t>(root)], rank_,
                 tag, send_data, bytes);
  }
}

void Comm::reduce_tree(const float* send_data, float* recv, std::size_t count,
                       ReduceOp op, int root) {
  IFDK_ASSERT(root >= 0 && root < size());
  const int p = size();
  const int tag = reserve_collective_tags(1);
  const int my_world = members_[static_cast<std::size_t>(rank_)];
  // Rotate ranks so the tree is rooted at `root`.
  const int vrank = (rank_ - root + p) % p;
  std::vector<float> acc(send_data, send_data + count);
  std::vector<float> incoming(count);
  const std::size_t bytes = count * sizeof(float);

  // Binomial tree: in round k, virtual ranks with bit k set send their
  // partial to vrank - 2^k and drop out; others fold the received partial.
  for (int mask = 1; mask < p; mask <<= 1) {
    if (vrank & mask) {
      const int dst = ((vrank - mask) + root) % p;
      world_->post(comm_id_, members_[static_cast<std::size_t>(dst)], rank_,
                   tag, acc.data(), bytes);
      break;
    }
    const int src_v = vrank + mask;
    if (src_v < p) {
      const int src = (src_v + root) % p;
      world_->fetch(comm_id_, my_world, src, tag, incoming.data(), bytes);
      for (std::size_t i = 0; i < count; ++i) {
        acc[i] = apply_op(op, acc[i], incoming[i]);
      }
    }
  }
  if (rank_ == root) {
    IFDK_ASSERT_MSG(recv != nullptr, "reduce root requires a receive buffer");
    std::memcpy(recv, acc.data(), bytes);
  }
}

void Comm::allreduce(const float* send_data, float* recv, std::size_t count,
                     ReduceOp op) {
  reduce(send_data, recv, count, op, 0);
  bcast(recv, count * sizeof(float), 0);
}

Comm Comm::split(int color, int key) {
  // Exchange (color, key, old rank) across the parent communicator, then
  // every rank locally derives its group membership — the textbook
  // MPI_Comm_split algorithm.
  struct Entry {
    int color;
    int key;
    int old_rank;
  };
  const Entry mine{color, key, rank_};
  std::vector<Entry> all(static_cast<std::size_t>(size()));
  allgather(&mine, sizeof(Entry), all.data());

  std::vector<Entry> group;
  for (const Entry& e : all) {
    if (e.color == color) group.push_back(e);
  }
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.old_rank) < std::tie(b.key, b.old_rank);
  });

  std::vector<int> world_members;
  int new_rank = -1;
  for (const Entry& e : group) {
    if (e.old_rank == rank_) new_rank = static_cast<int>(world_members.size());
    world_members.push_back(members_[static_cast<std::size_t>(e.old_rank)]);
  }
  IFDK_ASSERT(new_rank >= 0);

  const std::uint64_t new_id = detail::mix64(
      comm_id_ ^ (split_seq_ << 32) ^ (static_cast<std::uint64_t>(color) + 1));
  ++split_seq_;
  return Comm(world_, new_id, std::move(world_members), new_rank);
}

void run_world(int size, const std::function<void(Comm&)>& body) {
  IFDK_REQUIRE(size > 0, "world size must be positive");
  auto world = std::make_shared<detail::World>(size);

  std::vector<std::thread> threads;
  std::mutex error_mutex;
  std::exception_ptr first_error;

  threads.reserve(static_cast<std::size_t>(size));
  std::vector<int> everyone(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) everyone[static_cast<std::size_t>(r)] = r;

  // Prefer a root cause over the WorldAbortedError symptoms every other
  // rank reports once the abort flag is up — regardless of which rank's
  // body happened to exit first (a body may abort_world() *before*
  // rethrowing, so arrival order no longer identifies the culprit).
  const auto is_abort_symptom = [](const std::exception_ptr& e) {
    try {
      std::rethrow_exception(e);
    } catch (const WorldAbortedError&) {
      return true;
    } catch (...) {
      return false;
    }
  };

  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, /*comm_id=*/0, everyone, r);
      try {
        body(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error || (is_abort_symptom(first_error) &&
                               !is_abort_symptom(std::current_exception()))) {
            first_error = std::current_exception();
          }
        }
        world->abort();  // unblock every other rank
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ifdk::mpi
