#include "projector/forward.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ifdk::projector {

ForwardProjector::ForwardProjector(const geo::CbctGeometry& geometry,
                                   ForwardOptions options)
    : geometry_(geometry), options_(options) {
  geometry_.validate();
  IFDK_REQUIRE(options_.step_fraction > 0 && options_.step_fraction <= 1.0,
               "step_fraction must be in (0, 1]");
}

float ForwardProjector::sample(const Volume& volume, double i, double j,
                               double k) {
  const auto nx = static_cast<std::ptrdiff_t>(volume.nx());
  const auto ny = static_cast<std::ptrdiff_t>(volume.ny());
  const auto nz = static_cast<std::ptrdiff_t>(volume.nz());
  if (i < 0.0 || j < 0.0 || k < 0.0 || i > static_cast<double>(nx - 1) ||
      j > static_cast<double>(ny - 1) || k > static_cast<double>(nz - 1)) {
    return 0.0f;
  }
  const auto i0 = static_cast<std::ptrdiff_t>(i);
  const auto j0 = static_cast<std::ptrdiff_t>(j);
  const auto k0 = static_cast<std::ptrdiff_t>(k);
  const float di = static_cast<float>(i - static_cast<double>(i0));
  const float dj = static_cast<float>(j - static_cast<double>(j0));
  const float dk = static_cast<float>(k - static_cast<double>(k0));

  // Clamp-to-edge neighbours: the +1 weight is zero exactly on the border.
  const std::ptrdiff_t i1 = i0 + 1 < nx ? i0 + 1 : i0;
  const std::ptrdiff_t j1 = j0 + 1 < ny ? j0 + 1 : j0;
  const std::ptrdiff_t k1 = k0 + 1 < nz ? k0 + 1 : k0;

  auto v = [&](std::ptrdiff_t a, std::ptrdiff_t b, std::ptrdiff_t c) {
    return volume.at(static_cast<std::size_t>(a), static_cast<std::size_t>(b),
                     static_cast<std::size_t>(c));
  };
  const float c00 = v(i0, j0, k0) * (1 - di) + v(i1, j0, k0) * di;
  const float c10 = v(i0, j1, k0) * (1 - di) + v(i1, j1, k0) * di;
  const float c01 = v(i0, j0, k1) * (1 - di) + v(i1, j0, k1) * di;
  const float c11 = v(i0, j1, k1) * (1 - di) + v(i1, j1, k1) * di;
  const float c0 = c00 * (1 - dj) + c10 * dj;
  const float c1 = c01 * (1 - dj) + c11 * dj;
  return c0 * (1 - dk) + c1 * dk;
}

Image2D ForwardProjector::project(const Volume& volume, double beta) const {
  IFDK_REQUIRE(volume.layout() == VolumeLayout::kXMajor,
               "forward projection expects the standard X-major layout");
  IFDK_REQUIRE(volume.nx() == geometry_.nx && volume.ny() == geometry_.ny &&
                   volume.nz() == geometry_.nz,
               "volume does not match the geometry");
  const geo::CbctGeometry& g = geometry_;
  Image2D img(g.nu, g.nv, /*zero_fill=*/true);

  const geo::Vec3 src = geo::source_position(g, beta);
  // Volume bounding box in world millimetres.
  const double hx = 0.5 * static_cast<double>(g.nx) * g.dx;
  const double hy = 0.5 * static_cast<double>(g.ny) * g.dy;
  const double hz = 0.5 * static_cast<double>(g.nz) * g.dz;
  const double step =
      options_.step_fraction * std::min({g.dx, g.dy, g.dz});
  // World -> fractional voxel index (inverse of M0):
  const double ci = (static_cast<double>(g.nx) - 1.0) / 2.0;
  const double cj = (static_cast<double>(g.ny) - 1.0) / 2.0;
  const double ck = (static_cast<double>(g.nz) - 1.0) / 2.0;

  auto row_task = [&](std::size_t v) {
    for (std::size_t u = 0; u < g.nu; ++u) {
      const geo::Vec3 pix = geo::detector_pixel_position(
          g, beta, static_cast<double>(u), static_cast<double>(v));
      const geo::Vec3 dir = pix - src;
      const double len = dir.norm();
      const geo::Vec3 d = dir * (1.0 / len);

      // Slab intersection with the bounding box.
      double t0 = 0.0, t1 = len;
      auto clip = [&](double origin, double direction, double half) {
        if (direction == 0.0) {
          if (std::abs(origin) > half) t0 = t1 + 1.0;  // miss
          return;
        }
        double ta = (-half - origin) / direction;
        double tb = (half - origin) / direction;
        if (ta > tb) std::swap(ta, tb);
        t0 = std::max(t0, ta);
        t1 = std::min(t1, tb);
      };
      clip(src.x, d.x, hx);
      clip(src.y, d.y, hy);
      clip(src.z, d.z, hz);
      if (t0 >= t1) continue;

      double acc = 0.0;
      for (double t = t0 + 0.5 * step; t < t1; t += step) {
        const geo::Vec3 p = src + d * t;
        const double fi = p.x / g.dx + ci;
        const double fj = -p.y / g.dy + cj;
        const double fk = -p.z / g.dz + ck;
        acc += sample(volume, fi, fj, fk);
      }
      img.at(u, v) = static_cast<float>(acc * step);
    }
  };

  if (options_.pool != nullptr) {
    options_.pool->parallel_for(0, g.nv, row_task);
  } else {
    for (std::size_t v = 0; v < g.nv; ++v) row_task(v);
  }
  return img;
}

}  // namespace ifdk::projector
