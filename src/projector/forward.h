// Ray-driven forward projection through a voxel volume.
//
// The FDK pipeline itself never needs this (projections come from the
// scanner, or analytically from the phantom), but two parts of the
// reproduction do:
//   * the iterative solvers of Section 6.2 (ART/SART/MLEM) need a matched
//     forward operator A to pair with the back-projection A^T;
//   * tests cross-check the analytic ellipsoid projector against ray
//     marching through the voxelized phantom.
//
// The sampler marches the source->pixel ray across the volume's bounding box
// with trilinear interpolation at `step_fraction * min_pitch` steps (the
// standard Siddon/Joseph-style sampling used by RTK's voxel projectors).
#pragma once

#include <cstddef>

#include "common/image.h"
#include "common/thread_pool.h"
#include "common/volume.h"
#include "geometry/cbct.h"

namespace ifdk::projector {

struct ForwardOptions {
  /// Step length as a fraction of the smallest voxel pitch.
  double step_fraction = 0.5;
  ThreadPool* pool = nullptr;
};

class ForwardProjector {
 public:
  /// Captures the geometry and sampling options; cheap (no precomputation),
  /// so a projector can be constructed per view or held for a whole solve.
  ForwardProjector(const geo::CbctGeometry& geometry,
                   ForwardOptions options = {});

  /// Renders the cone-beam projection of `volume` at gantry angle beta.
  /// The volume must be kXMajor.
  Image2D project(const Volume& volume, double beta) const;

  /// Trilinear sample of the volume at fractional voxel index (i, j, k);
  /// returns 0 outside. Exposed for the iterative solvers.
  static float sample(const Volume& volume, double i, double j, double k);

 private:
  geo::CbctGeometry geometry_;
  ForwardOptions options_;
};

}  // namespace ifdk::projector
