// Deterministic, seedable RNG (xoshiro256**).
//
// Benchmarks and tests must be reproducible across runs; std::mt19937 is
// avoided in hot paths because of its large state. xoshiro256** passes BigCrush
// and is a few instructions per draw.
#pragma once

#include <cstdint>

namespace ifdk {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 expansion of the seed into the 4-word state.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return next_u64() % bound;  // bias negligible for bound << 2^64
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ifdk
