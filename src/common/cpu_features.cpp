#include "common/cpu_features.h"

namespace ifdk {

namespace {

CpuFeatures probe() {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  // __builtin_cpu_supports folds in the XSAVE/XGETBV opmask+ZMM state
  // checks, so a true here means the OS saves the 512-bit register file.
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
  f.avx512dq = __builtin_cpu_supports("avx512dq") != 0;
  f.avx512vl = __builtin_cpu_supports("avx512vl") != 0;
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
  // AArch64 makes Advanced SIMD architecturally mandatory (and 32-bit ARM
  // builds only define __ARM_NEON when the target has it), so no runtime
  // probe is needed.
  f.neon = true;
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = probe();
  return features;
}

}  // namespace ifdk
