#include "common/cpu_features.h"

namespace ifdk {

namespace {

CpuFeatures probe() {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = probe();
  return features;
}

}  // namespace ifdk
