// 3-D float volume container with the two memory layouts the paper contrasts
// (Section 3.2.3):
//
//   kXMajor — the standard layout of Algorithm 2: index (k*Ny + j)*Nx + i,
//             i (the X axis) contiguous. This is the layout RTK/RabbitCT use
//             and the layout in which volumes are written to disk (Nz slices
//             of Nx*Ny).
//   kZMajor — the proposed layout of Algorithm 4: index (i*Ny + j)*Nz + k,
//             k (the Z axis) contiguous, so the half-Nz symmetric update
//             writes two contiguous streams. reshape() converts back.
#pragma once

#include <cstddef>

#include "common/aligned.h"
#include "common/error.h"

namespace ifdk {

enum class VolumeLayout {
  kXMajor,  ///< (k*Ny + j)*Nx + i — standard / on-disk layout
  kZMajor,  ///< (i*Ny + j)*Nz + k — proposed cache-friendly layout
};

class Volume {
 public:
  Volume() = default;

  Volume(std::size_t nx, std::size_t ny, std::size_t nz,
         VolumeLayout layout = VolumeLayout::kXMajor, bool zero_fill = true)
      : nx_(nx), ny_(ny), nz_(nz), layout_(layout),
        data_(nx * ny * nz, zero_fill) {}

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  std::size_t voxels() const { return nx_ * ny_ * nz_; }
  std::size_t bytes() const { return voxels() * sizeof(float); }
  VolumeLayout layout() const { return layout_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  std::size_t index(std::size_t i, std::size_t j, std::size_t k) const {
    IFDK_ASSERT(i < nx_ && j < ny_ && k < nz_);
    if (layout_ == VolumeLayout::kXMajor) {
      return (k * ny_ + j) * nx_ + i;
    }
    return (i * ny_ + j) * nz_ + k;
  }

  float& at(std::size_t i, std::size_t j, std::size_t k) {
    return data_[index(i, j, k)];
  }
  float at(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[index(i, j, k)];
  }

  void fill(float value) { data_.fill(value); }

  /// The paper's reshape (Alg. 4 line 22): returns a copy of this volume in
  /// the other layout. Voxel (i,j,k) keeps its logical position.
  Volume reshaped(VolumeLayout target) const {
    Volume out(nx_, ny_, nz_, target, /*zero_fill=*/false);
    if (target == layout_) {
      for (std::size_t n = 0; n < voxels(); ++n) out.data()[n] = data_[n];
      return out;
    }
    for (std::size_t k = 0; k < nz_; ++k) {
      for (std::size_t j = 0; j < ny_; ++j) {
        for (std::size_t i = 0; i < nx_; ++i) {
          out.at(i, j, k) = at(i, j, k);
        }
      }
    }
    return out;
  }

  /// Pointer to the start of XY slice k. Only valid for kXMajor, where the
  /// slice is contiguous (this is what gets written to the PFS, §4.1.3).
  const float* slice(std::size_t k) const {
    IFDK_ASSERT(layout_ == VolumeLayout::kXMajor);
    IFDK_ASSERT(k < nz_);
    return data_.data() + k * nx_ * ny_;
  }
  float* slice(std::size_t k) {
    IFDK_ASSERT(layout_ == VolumeLayout::kXMajor);
    IFDK_ASSERT(k < nz_);
    return data_.data() + k * nx_ * ny_;
  }

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  VolumeLayout layout_ = VolumeLayout::kXMajor;
  AlignedBuffer<float> data_;
};

}  // namespace ifdk
