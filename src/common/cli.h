// Tiny command-line parser for the examples and bench binaries.
//
// Supports --flag, --key=value and --key value forms, typed getters with
// defaults, and generates a usage string from the registered options.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ifdk {

class CliParser {
 public:
  CliParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Registers an option so it appears in usage(); returns *this for chaining.
  CliParser& option(const std::string& name, const std::string& default_value,
                    const std::string& help);

  /// Parses argv. Throws ifdk::ConfigError on unknown options.
  void parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Positional arguments (everything that does not start with "--").
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ifdk
