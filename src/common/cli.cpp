#include "common/cli.h"

#include <cstdlib>
#include <sstream>

#include "common/error.h"

namespace ifdk {

CliParser& CliParser::option(const std::string& name,
                             const std::string& default_value,
                             const std::string& help) {
  options_[name] = Option{default_value, help};
  return *this;
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string key;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      key = arg;
      // "--key value" form, unless the next token is another option or the
      // option is a registered boolean-style flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (key == "help") {
      values_[key] = "true";
      continue;
    }
    if (!options_.count(key)) {
      throw ConfigError("unknown option --" + key + "\n" + usage());
    }
    values_[key] = value;
  }
}

bool CliParser::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliParser::get_string(const std::string& name) const {
  auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  auto opt = options_.find(name);
  IFDK_ASSERT_MSG(opt != options_.end(), "option was never registered");
  return opt->second.default_value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::strtoll(get_string(name).c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name) const {
  return std::strtod(get_string(name).c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string CliParser::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    out << "  --" << name << " (default: "
        << (opt.default_value.empty() ? "<none>" : opt.default_value) << ")\n"
        << "      " << opt.help << "\n";
  }
  return out.str();
}

}  // namespace ifdk
