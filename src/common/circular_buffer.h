// Bounded blocking circular buffer (the Fig. 4a inter-thread queue).
//
// Each iFDK rank runs three threads (Filtering, Main, Back-projection) that
// exchange projections through two of these queues. The buffer provides
// blocking push/pop with a close() protocol so that downstream threads drain
// remaining items and then terminate cleanly.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/error.h"

namespace ifdk {

template <typename T>
class CircularBuffer {
 public:
  /// `capacity` is the maximum number of in-flight items; producers block
  /// when the buffer is full, which is exactly the back-pressure that couples
  /// the filtering rate to the back-projection rate in the paper's pipeline.
  explicit CircularBuffer(std::size_t capacity) : capacity_(capacity) {
    IFDK_ASSERT(capacity > 0);
  }

  CircularBuffer(const CircularBuffer&) = delete;
  CircularBuffer& operator=(const CircularBuffer&) = delete;

  /// Blocks until space is available. Returns false if the buffer was closed
  /// (the item is dropped in that case).
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the buffer is closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Signals end-of-stream: consumers drain remaining items, then pop()
  /// returns nullopt; producers' push() returns false.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ifdk
