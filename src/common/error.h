// Error handling primitives for the iFDK library.
//
// The library follows the C++ Core Guidelines (E.2/E.3): errors that the
// caller cannot reasonably recover from locally are reported by throwing an
// exception derived from ifdk::Error; programming errors (broken invariants)
// abort via IFDK_ASSERT in all build types, because a reconstruction that
// silently continues past a broken invariant produces garbage volumes.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ifdk {

/// Base class for all exceptions thrown by the iFDK library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a user-supplied configuration is inconsistent
/// (e.g. a rank grid that does not divide the projection count).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown when a simulated device runs out of memory; the framework's
/// R-selection logic (Section 4.1.5 of the paper) relies on catching this.
class DeviceOutOfMemory : public Error {
 public:
  explicit DeviceOutOfMemory(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures against the real filesystem or the PFS model.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when a compressed payload (a wire frame, an RLE stream, or a
/// serialized CompressedVolume) is truncated, bit-flipped, or lies about its
/// own length. Messages name the offending byte offset so a corrupt frame is
/// attributable; decoders validate *before* touching payload bytes, so a
/// corrupt stream can never become UB (the suites run under ASan/UBSan).
class CompressionError : public Error {
 public:
  explicit CompressionError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "ifdk assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}
}  // namespace detail

}  // namespace ifdk

/// Invariant check that is active in every build type.
#define IFDK_ASSERT(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::ifdk::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                  \
  } while (0)

#define IFDK_ASSERT_MSG(expr, msg)                                  \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::ifdk::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                               \
  } while (0)

/// Recoverable-error check: throws ifdk::ConfigError with the given message.
#define IFDK_REQUIRE(expr, msg)                  \
  do {                                           \
    if (!(expr)) {                               \
      throw ::ifdk::ConfigError(msg);            \
    }                                            \
  } while (0)
