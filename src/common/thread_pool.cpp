#include "common/thread_pool.h"

#include <algorithm>

#include "common/error.h"

namespace ifdk {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    IFDK_ASSERT_MSG(!stop_, "submit() after ThreadPool destruction began");
    tasks_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t count = end - begin;
  const std::size_t chunks =
      std::min((count + grain - 1) / grain, workers_.size() * 4);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t per_chunk = (count + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{chunks};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per_chunk;
    const std::size_t hi = std::min(end, lo + per_chunk);
    submit([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void serial_for(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = begin; i < end; ++i) fn(i);
}

}  // namespace ifdk
