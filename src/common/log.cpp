#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace ifdk {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const char* component, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);

  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%10.4f] [%s] [%s] %s\n", elapsed_seconds(),
               level_name(level), component, body);
}

}  // namespace ifdk
