// Wall-clock timing helpers.
//
// The paper measures CUDA kernels with cudaEvent and host code with
// MPI_Wtime; on CPU both collapse to a steady-clock stopwatch. StageTimer
// accumulates named intervals so that per-stage breakdowns (Table 5 style)
// can be printed from any pipeline.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace ifdk {

/// Simple steady-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall-clock time into named stages.
///
/// Not thread-safe by design: each pipeline thread owns its own StageTimer
/// and the owner merges them (CP.3: minimize shared writable data).
class StageTimer {
 public:
  /// Adds `seconds` to stage `name`.
  void add(const std::string& name, double seconds) {
    stages_[name] += seconds;
  }

  /// Runs `fn` and charges its duration to stage `name`.
  template <typename Fn>
  auto time(const std::string& name, Fn&& fn) {
    Timer t;
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      add(name, t.seconds());
    } else {
      auto result = fn();
      add(name, t.seconds());
      return result;
    }
  }

  double get(const std::string& name) const {
    auto it = stages_.find(name);
    return it == stages_.end() ? 0.0 : it->second;
  }

  const std::map<std::string, double>& stages() const { return stages_; }

  /// Merges another timer's stages into this one (summing).
  void merge(const StageTimer& other) {
    for (const auto& [name, secs] : other.stages_) stages_[name] += secs;
  }

  /// Raises stage `name` to at least `seconds` (no-op when already larger).
  void set_max(const std::string& name, double seconds) {
    double& slot = stages_[name];
    slot = std::max(slot, seconds);
  }

  /// Per-stage maximum with another timer — the critical-path merge used
  /// when combining per-rank breakdowns (the slowest rank bounds the stage).
  void max_merge(const StageTimer& other) {
    for (const auto& [name, secs] : other.stages_) set_max(name, secs);
  }

 private:
  std::map<std::string, double> stages_;
};

}  // namespace ifdk
