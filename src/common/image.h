// 2-D float image container used for projections.
//
// Layout is row-major: element (u, v) lives at v * width + u, i.e. the U
// (detector column) axis is contiguous. The proposed back-projection
// algorithm transposes projections (Alg. 4 line 3) so that the V axis becomes
// contiguous; a transposed image is simply an Image2D with swapped axes.
#pragma once

#include <cstddef>

#include "common/aligned.h"
#include "common/error.h"

namespace ifdk {

class Image2D {
 public:
  Image2D() = default;

  Image2D(std::size_t width, std::size_t height, bool zero_fill = true)
      : width_(width), height_(height), data_(width * height, zero_fill) {}

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  std::size_t pixels() const { return width_ * height_; }
  std::size_t bytes() const { return pixels() * sizeof(float); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(std::size_t u, std::size_t v) {
    IFDK_ASSERT(u < width_ && v < height_);
    return data_[v * width_ + u];
  }
  float at(std::size_t u, std::size_t v) const {
    IFDK_ASSERT(u < width_ && v < height_);
    return data_[v * width_ + u];
  }

  float* row(std::size_t v) {
    IFDK_ASSERT(v < height_);
    return data_.data() + v * width_;
  }
  const float* row(std::size_t v) const {
    IFDK_ASSERT(v < height_);
    return data_.data() + v * width_;
  }

  void fill(float value) { data_.fill(value); }

  /// Returns the transpose (width and height swapped).
  Image2D transposed() const {
    Image2D out(height_, width_, /*zero_fill=*/false);
    for (std::size_t v = 0; v < height_; ++v) {
      for (std::size_t u = 0; u < width_; ++u) {
        out.at(v, u) = at(u, v);
      }
    }
    return out;
  }

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  AlignedBuffer<float> data_;
};

}  // namespace ifdk
