#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace ifdk {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  IFDK_ASSERT(!headers_.empty());
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(const std::string& cell) {
  IFDK_ASSERT_MSG(!rows_.empty(), "call row() before add()");
  IFDK_ASSERT_MSG(rows_.back().size() < headers_.size(),
                  "more cells than headers");
  rows_.back().push_back(cell);
  return *this;
}

TextTable& TextTable::add(std::int64_t value) {
  return add(std::to_string(value));
}

TextTable& TextTable::add(double value, int precision) {
  if (std::isnan(value)) return add(std::string("N/A"));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return add(std::string(buf));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      out << (c == 0 ? "" : "  ");
      out << text << std::string(widths[c] - text.size(), ' ');
    }
    out << "\n";
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::print(std::ostream& out) const { out << str(); }

}  // namespace ifdk
