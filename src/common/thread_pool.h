// Work-stealing-free, fork-join thread pool.
//
// The paper's Filtering-thread spawns OpenMP threads; here a small pool with
// a parallel_for primitive plays that role. Tasks are indexed ranges (CP.4:
// think in terms of tasks), and exceptions thrown inside workers are
// transported back to the caller of parallel_for.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ifdk {

class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Submits a fire-and-forget task.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void wait_idle();

  /// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
  /// Work is divided into contiguous chunks (grain) to preserve the row-major
  /// access pattern the filtering stage depends on.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Serial fallback used by modules when no pool is supplied.
void serial_for(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& fn);

}  // namespace ifdk
