// Minimal leveled logger.
//
// iFDK runs pipelines with many threads; the logger serializes writes with a
// mutex and stamps each record with elapsed wall-clock time and the logical
// component that emitted it, which makes pipeline traces (Fig. 4c style)
// readable.
#pragma once

#include <cstdarg>
#include <string>

namespace ifdk {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Global log threshold; records below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging. `component` names the subsystem ("ifdk", "minimpi",
/// "pfs", ...). Thread-safe.
void log_message(LogLevel level, const char* component, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

}  // namespace ifdk

#define IFDK_LOG_TRACE(component, ...) \
  ::ifdk::log_message(::ifdk::LogLevel::kTrace, component, __VA_ARGS__)
#define IFDK_LOG_DEBUG(component, ...) \
  ::ifdk::log_message(::ifdk::LogLevel::kDebug, component, __VA_ARGS__)
#define IFDK_LOG_INFO(component, ...) \
  ::ifdk::log_message(::ifdk::LogLevel::kInfo, component, __VA_ARGS__)
#define IFDK_LOG_WARN(component, ...) \
  ::ifdk::log_message(::ifdk::LogLevel::kWarn, component, __VA_ARGS__)
#define IFDK_LOG_ERROR(component, ...) \
  ::ifdk::log_message(::ifdk::LogLevel::kError, component, __VA_ARGS__)
