#include "common/simd_dispatch.h"

#include <string>

#include "common/cpu_features.h"
#include "common/error.h"

namespace ifdk::simd {

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kAuto:   return "auto";
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2:   return "avx2";
    case Backend::kAvx512: return "avx512";
    case Backend::kNeon:   return "neon";
  }
  return "?";
}

bool compiled(Backend backend) {
  switch (backend) {
    case Backend::kAuto:
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(IFDK_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case Backend::kAvx512:
#if defined(IFDK_HAVE_AVX512)
      return true;
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(IFDK_HAVE_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool supported(Backend backend) {
  if (!compiled(backend)) return false;
  const CpuFeatures& cpu = cpu_features();
  switch (backend) {
    case Backend::kAuto:
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
      return cpu.avx2 && cpu.fma;
    case Backend::kAvx512:
      return cpu.avx512f && cpu.avx512dq && cpu.avx512vl;
    case Backend::kNeon:
      return cpu.neon;
  }
  return false;
}

std::vector<BackendInfo> list_backends() {
  std::vector<BackendInfo> info;
  for (const Backend b : kConcreteBackends) {
    info.push_back({b, compiled(b), supported(b)});
  }
  return info;
}

Backend resolve(Backend backend, const char* layer) {
  if (backend == Backend::kAuto) {
    for (const Backend b : kConcreteBackends) {
      if (supported(b)) return b;
    }
    return Backend::kScalar;
  }
  IFDK_REQUIRE(supported(backend),
               std::string("the ") + to_string(backend) + " " + layer +
                   " backend is not available (" +
                   (compiled(backend)
                        ? "the CPU lacks the required ISA extensions"
                        : "not compiled into this binary") +
                   ")");
  return backend;
}

}  // namespace ifdk::simd
