// The shared SIMD backend registry: one Backend enum, one compiled/supported
// predicate pair, and one kAuto resolution policy for every vectorized layer
// in the tree (today: the back-projection column kernels in backproj/simd and
// the FFT batch kernels in fft/simd).
//
// The split of responsibilities is deliberate:
//   * CMake decides per build which backend translation units exist and
//     defines IFDK_HAVE_AVX2 / IFDK_HAVE_AVX512 / IFDK_HAVE_NEON globally
//     (on ifdk::common, so every layer sees the same set) — `compiled()`.
//   * common/cpu_features reports what the executing CPU + OS allow —
//     crossed in `supported()`.
//   * `resolve()` turns a requested Backend into a concrete runnable one:
//     kAuto picks the widest supported backend, an explicit request for an
//     unavailable backend throws ConfigError naming the requesting layer.
//   * Each layer keeps only a kernel table: its dispatch.cpp maps the
//     resolved enumerator to its own kernel struct. Adding a backend to a
//     layer is one new TU plus one switch case — the probing, gating, and
//     error wording live here, once.
#pragma once

#include <vector>

namespace ifdk::simd {

/// Which SIMD backend a kernel runs. One enum for every vectorized layer:
/// kAuto resolves at runtime to the widest backend the executing CPU
/// supports; the concrete enumerators force one (and throw at construction
/// when it is unavailable).
enum class Backend { kAuto, kScalar, kAvx2, kAvx512, kNeon };

/// The concrete (non-kAuto) backends, widest first — the kAuto preference
/// order, and the iteration order for tests/benches that sweep the matrix.
inline constexpr Backend kConcreteBackends[] = {
    Backend::kAvx512, Backend::kAvx2, Backend::kNeon, Backend::kScalar};

/// Human-readable backend name ("auto" / "scalar" / "avx2" / "avx512" /
/// "neon").
const char* to_string(Backend backend);

/// True when the backend's translation units were built into this binary
/// (kScalar and kAuto always are; the vector backends depend on the target
/// arch and the IFDK_DISABLE_* CMake gates).
bool compiled(Backend backend);

/// True when the backend is compiled in *and* the executing CPU reports the
/// required ISA extensions (AVX2+FMA / AVX-512 F+DQ+VL / NEON) — i.e.
/// resolve() of that explicit backend will succeed. kScalar and kAuto are
/// always supported.
bool supported(Backend backend);

/// One row of the availability listing benches and the bench_smoke JSON
/// record: what this build knows about each concrete backend.
struct BackendInfo {
  Backend backend = Backend::kScalar;
  bool compiled = false;
  bool supported = false;
};

/// Availability of every concrete backend on this build + CPU, widest first.
std::vector<BackendInfo> list_backends();

/// Resolves a backend choice to a concrete runnable one. kAuto picks the
/// first supported entry of kConcreteBackends (scalar as the floor); an
/// explicit request for an unsupported backend throws ConfigError, naming
/// `layer` (e.g. "back-projection column") and the reason.
Backend resolve(Backend backend, const char* layer);

}  // namespace ifdk::simd
