// Cache-line / SIMD aligned storage.
//
// Volumes and projections are large contiguous float arrays; aligning them to
// 64 bytes keeps rows SIMD-friendly and avoids false sharing when pipeline
// threads write adjacent sub-volumes.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "common/error.h"

namespace ifdk {

inline constexpr std::size_t kCacheLineBytes = 64;

/// A move-only, 64-byte-aligned array of trivially copyable T.
///
/// Unlike std::vector this never default-initializes gigabyte buffers unless
/// asked to (zero_fill), which matters for multi-GB volumes.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer requires trivially copyable element types");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count, bool zero_fill = false) {
    allocate(count, zero_fill);
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  void allocate(std::size_t count, bool zero_fill = false) {
    release();
    if (count == 0) return;
    const std::size_t bytes =
        (count * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes *
        kCacheLineBytes;
    void* p = std::aligned_alloc(kCacheLineBytes, bytes);
    if (p == nullptr) throw std::bad_alloc();
    data_ = static_cast<T*>(p);
    size_ = count;
    if (zero_fill) fill(T{});
  }

  void fill(const T& value) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = value;
  }

  void release() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t size_bytes() const { return size_ * sizeof(T); }

  T& operator[](std::size_t i) {
    IFDK_ASSERT(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    IFDK_ASSERT(i < size_);
    return data_[i];
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ifdk
