// Runtime CPU feature detection for kernel dispatch.
//
// The SIMD back-projection backends are selected at runtime (one binary runs
// on any x86-64), so the dispatcher needs to know which vector extensions
// the executing CPU + OS actually support. On GCC/Clang x86 this delegates
// to __builtin_cpu_supports, which checks CPUID *and* the OS XSAVE state so
// AVX registers are guaranteed usable; on other targets every flag is false
// and callers fall back to scalar code.
#pragma once

namespace ifdk {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
};

/// The executing CPU's features; probed once and cached (thread-safe).
const CpuFeatures& cpu_features();

}  // namespace ifdk
