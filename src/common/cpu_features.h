// Runtime CPU feature detection for kernel dispatch.
//
// The SIMD backends (back-projection columns and FFT batches) are selected
// at runtime, so one binary runs optimally on any host: the dispatcher
// crosses what was compiled in (common/simd_dispatch) with what the
// executing CPU + OS actually support, which this probe reports. On
// GCC/Clang x86 it delegates to __builtin_cpu_supports, which checks CPUID
// *and* the OS XSAVE state so AVX/AVX-512 registers are guaranteed usable;
// on arm64 NEON (ASIMD) is architecturally mandatory, so it is reported
// directly; on other targets every flag is false and callers fall back to
// scalar code.
#pragma once

namespace ifdk {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  /// AVX-512 foundation + the double/quadword and vector-length extensions
  /// the 512-bit backends assume (every AVX-512 server part since Skylake-SP
  /// has all three; KNL-era F-only parts fall back to AVX2).
  bool avx512f = false;
  bool avx512dq = false;
  bool avx512vl = false;
  /// Advanced SIMD (NEON); mandatory on AArch64.
  bool neon = false;
};

/// The executing CPU's features; probed once and cached (thread-safe).
const CpuFeatures& cpu_features();

}  // namespace ifdk
