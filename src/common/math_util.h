// Small integer/float helpers shared across modules.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

namespace ifdk {

/// "12.5 GiB"-style human-readable byte counts (used in error messages and
/// bench output).
inline std::string human_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  return buf;
}

/// Smallest power of two >= n (n must be >= 1).
constexpr std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

constexpr std::size_t div_ceil(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

constexpr std::size_t round_up(std::size_t a, std::size_t b) {
  return div_ceil(a, b) * b;
}

inline constexpr double kPi = 3.14159265358979323846;

/// Root-mean-square error between two equal-length arrays.
template <typename T>
double rmse(const T* a, const T* b, std::size_t n) {
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

/// Max absolute difference between two equal-length arrays.
template <typename T>
double max_abs_diff(const T* a, const T* b, std::size_t n) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = std::abs(static_cast<double>(a[i]) -
                              static_cast<double>(b[i]));
    if (d > m) m = d;
  }
  return m;
}

/// GUPS as defined in paper Section 2.3:
/// Nx*Ny*Nz*Np / (T * 2^30), with T in seconds.
inline double gups(std::uint64_t nx, std::uint64_t ny, std::uint64_t nz,
                   std::uint64_t np, double seconds) {
  if (seconds <= 0.0) return 0.0;
  const double updates = static_cast<double>(nx) * static_cast<double>(ny) *
                         static_cast<double>(nz) * static_cast<double>(np);
  return updates / (seconds * 1073741824.0);
}

}  // namespace ifdk
