// Fixed-width text table printer used by every bench binary so that the
// regenerated tables/figures read like the paper's (one row per configuration,
// aligned columns, units in headers).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ifdk {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_* calls fill it left to right.
  TextTable& row();
  TextTable& add(const std::string& cell);
  TextTable& add(std::int64_t value);
  /// Formats with the given precision; NaN renders as "N/A" (as the paper
  /// does for the C=1 Reduce column).
  TextTable& add(double value, int precision = 2);

  /// Renders with a separator line under the header.
  std::string str() const;
  void print(std::ostream& out) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ifdk
