// Back-projection kernels: the standard scheme of Algorithm 2 (as
// implemented by RTK / RabbitCT / OSCaR) and the paper's proposed
// Algorithm 4, which cuts the projection-computation cost to 1/6 via
// Theorems 1-3 and improves locality via transposed projections and a
// k-major (Z-contiguous) volume layout.
//
// The proposed kernel is configurable so every optimization can be ablated
// independently (symmetry, u/Wdis reuse, projection transpose); the named
// Table-3 kernel variants map onto these configurations.
//
// All kernels *accumulate* into the target volume (I += ...), which is what
// lets the distributed framework batch projections and later MPI-Reduce
// partial volumes (Section 4.1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "backproj/simd/column_kernel.h"
#include "common/image.h"
#include "common/thread_pool.h"
#include "common/volume.h"
#include "geometry/cbct.h"

namespace ifdk::bp {

/// Work performed by a kernel run, for the paper's 1/6 cost claim. Computed
/// from the loop structure (the loops are deterministic), not from counters
/// in the hot path. Models the serial (single-slab) schedule: when a thread
/// pool tiles the k loop into cache slabs, the two k-independent hoisted
/// products are recomputed once per slab, which does not change any value
/// and adds only O(columns * slabs) work.
struct OpCounts {
  std::uint64_t inner_products = 0;  ///< 4-wide dot products with P rows
  std::uint64_t interp_calls = 0;    ///< bilinear fetches (Algorithm 3)
  std::uint64_t voxel_updates = 0;   ///< I(...) += terms

  /// Inner products per voxel update; 3.0 for Algorithm 2, -> 0.5 for
  /// Algorithm 4 as Nz grows (the paper's factor-6 reduction).
  double inner_products_per_update() const {
    return voxel_updates == 0
               ? 0.0
               : static_cast<double>(inner_products) /
                     static_cast<double>(voxel_updates);
  }
};

/// The five kernel flavours of paper Table 3.
enum class KernelVariant { kRtk32, kBpTex, kTexTran, kBpL1, kL1Tran };

const char* to_string(KernelVariant variant);

struct BpConfig {
  /// Theorem-1 half-Nz symmetric update (Algorithm 4 lines 11/15-17).
  bool symmetry = true;
  /// Theorems 2/3: hoist u and Wdis out of the k loop (lines 7-10). When
  /// false the kernel recomputes all three inner products per voxel like
  /// Algorithm 2 (but keeps the Algorithm-4 loop order).
  bool reuse_uw = true;
  /// Algorithm 4 line 3: transpose Q so the V axis is contiguous.
  bool transpose_projections = true;
  /// Volume layout written by the kernel.
  VolumeLayout layout = VolumeLayout::kZMajor;
  /// Projections back-projected per pass (the paper and RTK use 32; mirrors
  /// the CUDA-warp batch of Listing 1).
  std::size_t batch = 32;
  /// When set, the kernel tiles its iteration space into cache-blocked
  /// (i-block × k-slab) tasks (see backproj/slab_schedule.h) and runs them
  /// on the pool; results are bitwise identical to the serial schedule.
  ThreadPool* pool = nullptr;
  /// SIMD column backend for the proposed (Algorithm 4) kernel. kAuto picks
  /// the widest backend the executing CPU supports (runtime CPUID dispatch
  /// via common/simd_dispatch); kScalar forces the bitwise reference;
  /// kAvx2 / kAvx512 / kNeon throw at construction when the backend is
  /// unavailable. All backends produce bitwise-identical volumes. The
  /// standard (kXMajor) kernel ignores this.
  simd::Backend simd_backend = simd::Backend::kAuto;

  // --- Distributed slab-pair mode (Fig. 3: "2*R sub-volumes") -------------
  //
  // When k_half != npos the kernel computes only the symmetric slab pair
  //   k in [k_begin, k_begin + k_half)  union
  //   k in [Nz - k_begin - k_half, Nz - k_begin)
  // into a volume of local depth 2*k_half, stored as the concatenation of
  // the two slabs in ascending global k. This is how each iFDK rank-row owns
  // one mirrored pair of sub-volumes while the Theorem-1 symmetry still
  // saves half the projection arithmetic. Requires symmetry && kZMajor.
  static constexpr std::size_t kFullVolume = static_cast<std::size_t>(-1);
  std::size_t k_begin = 0;
  std::size_t k_half = kFullVolume;

  bool slab_mode() const { return k_half != kFullVolume; }
};

/// The configuration a Table-3 variant corresponds to. On the CPU the
/// texture/L1 distinction collapses (there is one cache hierarchy), so
/// kBpL1/kL1Tran map to the same memory behaviour as their Tex twins; the
/// GPU-side differences are modeled by gpusim::KernelModel.
BpConfig config_for(KernelVariant variant);

class Backprojector {
 public:
  Backprojector(const geo::CbctGeometry& geometry, BpConfig config);

  /// Back-projects `projections[b]` with matrix `matrices[b]` for all b,
  /// accumulating into `volume` (which must match the configured layout and
  /// the geometry's Nx/Ny/Nz). `matrices` are the P of Eq. 2 for the same
  /// gantry angles as the projections.
  void accumulate(Volume& volume, std::span<const Image2D> projections,
                  std::span<const geo::Mat34> matrices) const;

  /// Ops the given projection count costs under this configuration.
  OpCounts count_ops(std::size_t num_projections) const;

  const BpConfig& config() const { return config_; }

  /// Name of the resolved SIMD column backend ("scalar", "avx2"); what
  /// kAuto actually selected on this machine.
  const char* backend_name() const { return column_kernel_->name; }

 private:
  void run_standard(Volume& volume, std::span<const Image2D> projections,
                    std::span<const geo::Mat34> matrices) const;
  void run_proposed(Volume& volume, std::span<const Image2D> projections,
                    std::span<const geo::Mat34> matrices) const;

  geo::CbctGeometry geometry_;
  BpConfig config_;
  const simd::ColumnKernel* column_kernel_ = nullptr;
};

/// One-call convenience: filters nothing, just back-projects everything into
/// a fresh volume of the configured layout.
Volume backproject_all(const geo::CbctGeometry& geometry,
                       std::span<const Image2D> projections, BpConfig config);

}  // namespace ifdk::bp
