// Cache-blocked task partitioning for the proposed (Algorithm 4) kernel.
//
// The kernel's iteration space per projection batch is (i, j, t): X columns
// times Y rows times the per-column pair iterations t (half the depth under
// the Theorem-1 symmetry, the full depth without it). The scheduler tiles
// that space into (i-block × k-slab) tasks:
//
//  - a k-slab bounds the detector-V band a task touches, so the transposed
//    projection rows it streams stay resident in a worker's L2 share while
//    the task sweeps its columns (the CPU analogue of the paper's
//    texture/L1 locality argument, §3.2.3);
//  - i-blocks multiply the slab count up to a few tasks per worker so the
//    fork-join pool load-balances without grain-1 scheduling overhead.
//
// Tasks form an exact grid partition of (i, t): disjoint column ranges and
// disjoint pair ranges, so concurrent tasks never write the same voxel (the
// mirror write nzl-1-t of pair t stays inside the owning slab's image).
#pragma once

#include <cstddef>
#include <vector>

namespace ifdk::bp {

/// One unit of parallel back-projection work: columns [i_begin, i_end)
/// restricted to pair iterations [t_begin, t_end).
struct SlabTask {
  std::size_t i_begin = 0;
  std::size_t i_end = 0;
  std::size_t t_begin = 0;
  std::size_t t_end = 0;
};

/// Iteration-space shape and cache-model inputs for plan_slab_tasks.
struct SlabPlanParams {
  std::size_t nx = 0;       ///< columns along X
  std::size_t t_count = 0;  ///< pair iterations per column
  std::size_t batch = 32;   ///< projections per pass (streams per t step)
  std::size_t num_threads = 1;
  /// Per-task share of the last-level-per-core cache that may hold
  /// projection bands; sized for a common 256 KiB-to-1 MiB L2.
  std::size_t cache_budget_bytes = 256 * 1024;
};

/// Tiles the (i, t) space into cache-blocked tasks. Guarantees an exact grid
/// partition (every (i, t) pair covered exactly once), at least one task for
/// any nx > 0 (even when t_count == 0, so the caller can hang the odd
/// center-plane update off the t_end == t_count tasks), and slab depths no
/// smaller than min(32, t_count) so the per-slab rehoist of the Theorem-2/3
/// terms stays negligible.
std::vector<SlabTask> plan_slab_tasks(const SlabPlanParams& params);

}  // namespace ifdk::bp
