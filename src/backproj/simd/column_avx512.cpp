// AVX-512 backend: the Algorithm-4 column loop vectorized 16-wide over
// consecutive k values. The structure is the AVX2 backend's (broadcast the
// Theorem-2/3 terms, one vectorized inner product per k, four gathers per
// bilinear fetch, lane-reversed mirror store) at double the width, with one
// structural difference: remainders are handled by opmasks instead of a
// scalar tail. The final sub-width iteration runs through the same vector
// loop under a __mmask16 — masked gathers suppress faults, masked
// loads/stores touch only the active elements — and the odd-Nz center plane
// is a one-active-lane masked pass, so this backend never leaves the vector
// code path.
//
// This translation unit is compiled with -mavx512f -mavx512dq -mavx512vl
// -mfma -ffp-contract=off and only linked when CMake enables it
// (IFDK_HAVE_AVX512); runtime CPUID dispatch decides whether it actually
// runs. The arithmetic replays the scalar backend operation for operation —
// same association, division instead of reciprocal approximation, no FMA
// contraction — so per-voxel output is bitwise-identical to the scalar
// backend, which tests/test_simd_backends.cpp pins with memcmp.
#include "backproj/simd/column_kernel.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__)

#if defined(__GNUC__) && !defined(__clang__)
// GCC's AVX-512 intrinsics pass _mm512_undefined_epi32() as the ignored
// merge operand of unmasked operations, which trips -Wmaybe-uninitialized
// (GCC PR105593) when they inline here. The operand is dead by definition.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include <algorithm>
#include <array>
#include <cstddef>

namespace ifdk::bp::simd {

namespace {

/// Vector interp2 (Algorithm 3) for up to 16 samples of one image under an
/// activity mask. `a` is the coordinate along the contiguous axis (extent
/// w), `b` along the strided axis (extent h); element (a, b) lives at
/// b*w + a. Lanes outside the image — or outside `active` — contribute 0,
/// matching the scalar border rule; indices are clamped before the gather
/// and the gathers are masked, so inactive lanes (whose coordinates may be
/// inf/NaN from an extrapolated k) never touch memory.
inline __m512 interp2_gather(const float* img, int w, int h, __m512 a,
                             __m512 b, __mmask16 active) {
  const __m512 zero = _mm512_setzero_ps();
  const __m512 a_max = _mm512_set1_ps(static_cast<float>(w - 1));
  const __m512 b_max = _mm512_set1_ps(static_cast<float>(h - 1));
  const __mmask16 mask = active &
      _mm512_cmp_ps_mask(a, zero, _CMP_GE_OQ) &
      _mm512_cmp_ps_mask(a, a_max, _CMP_LE_OQ) &
      _mm512_cmp_ps_mask(b, zero, _CMP_GE_OQ) &
      _mm512_cmp_ps_mask(b, b_max, _CMP_LE_OQ);
  if (mask == 0) return zero;

  const __m512i izero = _mm512_setzero_si512();
  const __m512i ia_max = _mm512_set1_epi32(w - 1);
  const __m512i ib_max = _mm512_set1_epi32(h - 1);
  const __m512i one = _mm512_set1_epi32(1);
  // Truncation per Algorithm 3 line 2; cvttps truncates toward zero exactly
  // like the scalar size_t cast does for the in-bounds (non-negative) lanes.
  __m512i ia = _mm512_cvttps_epi32(a);
  __m512i ib = _mm512_cvttps_epi32(b);
  ia = _mm512_min_epi32(_mm512_max_epi32(ia, izero), ia_max);
  ib = _mm512_min_epi32(_mm512_max_epi32(ib, izero), ib_max);
  // The +1 neighbour is clamped on the last row/column (its weight is zero
  // there), matching the scalar kernel's clamp-to-edge.
  const __m512i ia1 = _mm512_min_epi32(_mm512_add_epi32(ia, one), ia_max);
  const __m512i ib1 = _mm512_min_epi32(_mm512_add_epi32(ib, one), ib_max);
  const __m512 da = _mm512_sub_ps(a, _mm512_cvtepi32_ps(ia));
  const __m512 db = _mm512_sub_ps(b, _mm512_cvtepi32_ps(ib));

  const __m512i wv = _mm512_set1_epi32(w);
  const __m512i row0 = _mm512_mullo_epi32(ib, wv);
  const __m512i row1 = _mm512_mullo_epi32(ib1, wv);
  const __m512 g00 = _mm512_mask_i32gather_ps(
      zero, mask, _mm512_add_epi32(row0, ia), img, 4);
  const __m512 g01 = _mm512_mask_i32gather_ps(
      zero, mask, _mm512_add_epi32(row0, ia1), img, 4);
  const __m512 g10 = _mm512_mask_i32gather_ps(
      zero, mask, _mm512_add_epi32(row1, ia), img, 4);
  const __m512 g11 = _mm512_mask_i32gather_ps(
      zero, mask, _mm512_add_epi32(row1, ia1), img, 4);

  const __m512 ones = _mm512_set1_ps(1.0f);
  const __m512 oda = _mm512_sub_ps(ones, da);
  const __m512 odb = _mm512_sub_ps(ones, db);
  const __m512 t1 =
      _mm512_add_ps(_mm512_mul_ps(g00, oda), _mm512_mul_ps(g01, da));
  const __m512 t2 =
      _mm512_add_ps(_mm512_mul_ps(g10, oda), _mm512_mul_ps(g11, da));
  const __m512 r =
      _mm512_add_ps(_mm512_mul_ps(t1, odb), _mm512_mul_ps(t2, db));
  // Masked lanes may hold NaN from the weight arithmetic; zero them like
  // the scalar border rule (and the AVX2 backend's AND) does.
  return _mm512_maskz_mov_ps(mask, r);
}

/// Detector fetch for up to 16 k-lanes: u is the detector column, v the
/// detector row. The storage layout decides which coordinate runs along the
/// contiguous axis.
inline __m512 fetch16(const BatchArgs& b, const float* img, __m512 u,
                      __m512 v, __mmask16 active) {
  if (b.transposed) {
    return interp2_gather(img, static_cast<int>(b.nv),
                          static_cast<int>(b.nu), v, u, active);
  }
  return interp2_gather(img, static_cast<int>(b.nu), static_cast<int>(b.nv),
                        u, v, active);
}

/// One masked 16-wide pass over pair iterations [t, t + n), n <= 16:
/// accumulates into col[t .. t+n) and, under symmetry, the lane-reversed
/// mirror block col[nzl-n-t .. nzl-t). The two ranges never overlap (pair
/// iterations stop below the column midpoint), so store order is free.
inline void run_block(const BatchArgs& b, const ColumnArgs& c, std::size_t t,
                      std::size_t n, float fk0) {
  const __mmask16 active = static_cast<__mmask16>(
      n == 16 ? 0xFFFFu : ((1u << n) - 1u));
  const __m512 lane = _mm512_setr_ps(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                     12, 13, 14, 15);
  const __m512 ones = _mm512_set1_ps(1.0f);
  // fk0 + lane: exact small integers, identical to the scalar casts.
  const __m512 fk = _mm512_add_ps(_mm512_set1_ps(fk0), lane);
  const __m512 v_mirror = _mm512_set1_ps(b.v_mirror);
  __m512 acc = _mm512_setzero_ps();
  __m512 acc_m = _mm512_setzero_ps();

  for (std::size_t s = 0; s < b.count; ++s) {
    const float* m = b.pmat[s].data();
    __m512 u, f, wdis;
    if (b.reuse_uw) {
      u = _mm512_set1_ps(c.u_s[s]);
      f = _mm512_set1_ps(c.f_s[s]);
      wdis = _mm512_set1_ps(c.w_s[s]);
    } else {
      // dot_row associates ((m0*i + m1*j) + m2*k) + m3; the i/j part is
      // k-independent and computed once in scalar, preserving the order.
      const float xij = m[0] * c.fi + m[1] * c.fj;
      const float zij = m[8] * c.fi + m[9] * c.fj;
      const __m512 x = _mm512_add_ps(
          _mm512_add_ps(_mm512_set1_ps(xij),
                        _mm512_mul_ps(_mm512_set1_ps(m[2]), fk)),
          _mm512_set1_ps(m[3]));
      const __m512 z = _mm512_add_ps(
          _mm512_add_ps(_mm512_set1_ps(zij),
                        _mm512_mul_ps(_mm512_set1_ps(m[10]), fk)),
          _mm512_set1_ps(m[11]));
      f = _mm512_div_ps(ones, z);
      u = _mm512_mul_ps(x, f);
      wdis = _mm512_mul_ps(f, f);
    }

    // Algorithm 4 line 12: the single remaining inner product, 16 k's at
    // a time.
    const float yij = m[4] * c.fi + m[5] * c.fj;
    const __m512 y = _mm512_add_ps(
        _mm512_add_ps(_mm512_set1_ps(yij),
                      _mm512_mul_ps(_mm512_set1_ps(m[6]), fk)),
        _mm512_set1_ps(m[7]));
    const __m512 v = _mm512_mul_ps(y, f);

    acc = _mm512_add_ps(
        acc, _mm512_mul_ps(wdis, fetch16(b, b.images[s], u, v, active)));
    if (b.symmetry) {
      const __m512 vm = _mm512_sub_ps(v_mirror, v);
      acc_m = _mm512_add_ps(
          acc_m, _mm512_mul_ps(wdis, fetch16(b, b.images[s], u, vm, active)));
    }
  }

  float* out = c.col + t;
  _mm512_mask_storeu_ps(
      out, active,
      _mm512_add_ps(_mm512_maskz_loadu_ps(active, out), acc));
  if (b.symmetry) {
    // Lanes 0..n-1 mirror to nzl-1-t .. nzl-n-t: permute lane p to slot
    // n-1-p, then one ascending masked accumulate-store at the low end of
    // that range. Slots >= n read a wrapped lane and are masked off.
    const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12, 13, 14, 15);
    const __m512i ridx = _mm512_sub_epi32(
        _mm512_set1_epi32(static_cast<int>(n) - 1), iota);
    const __m512 rev = _mm512_permutexvar_ps(ridx, acc_m);
    float* mout = c.col + (b.nzl - n - t);
    _mm512_mask_storeu_ps(
        mout, active,
        _mm512_add_ps(_mm512_maskz_loadu_ps(active, mout), rev));
  }
}

void run_column(const BatchArgs& b, const ColumnArgs& c) {
  constexpr std::size_t kWidth = 16;
  for (std::size_t t = c.t_begin; t < c.t_end; t += kWidth) {
    const std::size_t n = std::min(kWidth, c.t_end - t);
    run_block(b, c, t, n, static_cast<float>(b.k0 + t));
  }

  if (c.do_center) {
    // Center plane: its mirror is itself; one-active-lane masked pass with
    // symmetry forced off so only col[center] is updated once.
    BatchArgs center = b;
    center.symmetry = false;
    run_block(center, c, b.center, 1, static_cast<float>(b.center));
  }
}

}  // namespace

const ColumnKernel& avx512_kernel_impl() {
  static constexpr ColumnKernel kernel{"avx512", run_column};
  return kernel;
}

}  // namespace ifdk::bp::simd

#endif  // __AVX512F__ && __AVX512DQ__ && __AVX512VL__
