// Runtime backend selection: what was compiled in (CMake decides whether
// the AVX2 TU exists) crossed with what the executing CPU supports (CPUID
// via common/cpu_features). kAuto picks the fastest supported backend so a
// single binary runs optimally from an old Xeon to a current desktop.
#include "backproj/simd/column_kernel.h"
#include "common/cpu_features.h"
#include "common/error.h"

namespace ifdk::bp::simd {

#if defined(IFDK_HAVE_AVX2)
const ColumnKernel& avx2_kernel_impl();  // defined in column_avx2.cpp
#endif

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kAuto:   return "auto";
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2:   return "avx2";
  }
  return "?";
}

bool avx2_compiled() {
#if defined(IFDK_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool avx2_supported() {
  const CpuFeatures& cpu = cpu_features();
  return avx2_compiled() && cpu.avx2 && cpu.fma;
}

const ColumnKernel& select(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return scalar_kernel();
    case Backend::kAvx2:
      IFDK_REQUIRE(avx2_supported(),
                   "the AVX2 back-projection backend is not available "
                   "(not compiled in, or the CPU lacks AVX2/FMA)");
#if defined(IFDK_HAVE_AVX2)
      return avx2_kernel_impl();
#else
      break;  // unreachable: the REQUIRE above threw
#endif
    case Backend::kAuto:
#if defined(IFDK_HAVE_AVX2)
      if (avx2_supported()) return avx2_kernel_impl();
#endif
      return scalar_kernel();
  }
  return scalar_kernel();
}

}  // namespace ifdk::bp::simd
