// The column-kernel table: maps the Backend enumerator that
// ifdk::simd::resolve() settles on to this layer's kernel struct. All
// policy (compiled/supported predicates, kAuto preference order, error
// wording) lives in common/simd_dispatch; this file only knows which
// translation units exist in the back-projection layer.
#include "backproj/simd/column_kernel.h"

namespace ifdk::bp::simd {

#if defined(IFDK_HAVE_AVX2)
const ColumnKernel& avx2_kernel_impl();  // defined in column_avx2.cpp
#endif
#if defined(IFDK_HAVE_AVX512)
const ColumnKernel& avx512_kernel_impl();  // defined in column_avx512.cpp
#endif
#if defined(IFDK_HAVE_NEON)
const ColumnKernel& neon_kernel_impl();  // defined in column_neon.cpp
#endif

const ColumnKernel& select(Backend backend) {
  switch (ifdk::simd::resolve(backend, "back-projection column")) {
#if defined(IFDK_HAVE_AVX2)
    case Backend::kAvx2:
      return avx2_kernel_impl();
#endif
#if defined(IFDK_HAVE_AVX512)
    case Backend::kAvx512:
      return avx512_kernel_impl();
#endif
#if defined(IFDK_HAVE_NEON)
    case Backend::kNeon:
      return neon_kernel_impl();
#endif
    default:
      return scalar_kernel();
  }
}

}  // namespace ifdk::bp::simd
