// AVX2 backend: the Algorithm-4 column loop vectorized 8-wide over
// consecutive k values. The k-independent terms (u, f, Wdis — Theorems 2/3)
// broadcast across lanes; the per-k inner product is one multiply and two
// adds on a k-vector; the bilinear fetch (Algorithm 3) becomes four gathers
// from the transposed projection row (v contiguous), and the Theorem-1
// mirror lane reuses the same rows at v_mirror - v. The mirror accumulator
// is lane-reversed with a permute before its descending store.
//
// This translation unit is compiled with -mavx2 -mfma -ffp-contract=off and
// only linked when CMake enables it (IFDK_HAVE_AVX2); runtime CPUID dispatch
// decides whether it actually runs. The arithmetic intentionally mirrors the
// scalar backend operation for operation — same association, division
// instead of reciprocal approximation, no FMA contraction in the coordinate
// or accumulation chain — because one differently-rounded v coordinate could
// flip a truncation or a border mask and change which pixels are fetched.
// With identical indices and rounding, per-voxel output matches the scalar
// backend bitwise, comfortably inside the advertised 4-ULP budget.
#include "backproj/simd/column_kernel.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <array>
#include <cstddef>

namespace ifdk::bp::simd {

namespace {

/// Vector interp2 (Algorithm 3) for 8 samples of one image. `a` is the
/// coordinate along the contiguous axis (extent w), `b` along the strided
/// axis (extent h); element (a, b) lives at b*w + a. Lanes outside the
/// image contribute 0, matching the scalar border rule; indices are clamped
/// before the gather so masked lanes still read in-bounds memory.
inline __m256 interp2_gather(const float* img, int w, int h, __m256 a,
                             __m256 b) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 a_max = _mm256_set1_ps(static_cast<float>(w - 1));
  const __m256 b_max = _mm256_set1_ps(static_cast<float>(h - 1));
  const __m256 mask = _mm256_and_ps(
      _mm256_and_ps(_mm256_cmp_ps(a, zero, _CMP_GE_OQ),
                    _mm256_cmp_ps(a, a_max, _CMP_LE_OQ)),
      _mm256_and_ps(_mm256_cmp_ps(b, zero, _CMP_GE_OQ),
                    _mm256_cmp_ps(b, b_max, _CMP_LE_OQ)));
  if (_mm256_testz_ps(mask, mask)) return zero;

  const __m256i izero = _mm256_setzero_si256();
  const __m256i ia_max = _mm256_set1_epi32(w - 1);
  const __m256i ib_max = _mm256_set1_epi32(h - 1);
  const __m256i one = _mm256_set1_epi32(1);
  // Truncation per Algorithm 3 line 2; cvttps truncates toward zero exactly
  // like the scalar size_t cast does for the in-bounds (non-negative) lanes.
  __m256i ia = _mm256_cvttps_epi32(a);
  __m256i ib = _mm256_cvttps_epi32(b);
  ia = _mm256_min_epi32(_mm256_max_epi32(ia, izero), ia_max);
  ib = _mm256_min_epi32(_mm256_max_epi32(ib, izero), ib_max);
  // The +1 neighbour is clamped on the last row/column (its weight is zero
  // there), matching the scalar kernel's clamp-to-edge.
  const __m256i ia1 = _mm256_min_epi32(_mm256_add_epi32(ia, one), ia_max);
  const __m256i ib1 = _mm256_min_epi32(_mm256_add_epi32(ib, one), ib_max);
  const __m256 da = _mm256_sub_ps(a, _mm256_cvtepi32_ps(ia));
  const __m256 db = _mm256_sub_ps(b, _mm256_cvtepi32_ps(ib));

  const __m256i wv = _mm256_set1_epi32(w);
  const __m256i row0 = _mm256_mullo_epi32(ib, wv);
  const __m256i row1 = _mm256_mullo_epi32(ib1, wv);
  const __m256 g00 = _mm256_i32gather_ps(img, _mm256_add_epi32(row0, ia), 4);
  const __m256 g01 = _mm256_i32gather_ps(img, _mm256_add_epi32(row0, ia1), 4);
  const __m256 g10 = _mm256_i32gather_ps(img, _mm256_add_epi32(row1, ia), 4);
  const __m256 g11 = _mm256_i32gather_ps(img, _mm256_add_epi32(row1, ia1), 4);

  const __m256 ones = _mm256_set1_ps(1.0f);
  const __m256 oda = _mm256_sub_ps(ones, da);
  const __m256 odb = _mm256_sub_ps(ones, db);
  const __m256 t1 =
      _mm256_add_ps(_mm256_mul_ps(g00, oda), _mm256_mul_ps(g01, da));
  const __m256 t2 =
      _mm256_add_ps(_mm256_mul_ps(g10, oda), _mm256_mul_ps(g11, da));
  const __m256 r =
      _mm256_add_ps(_mm256_mul_ps(t1, odb), _mm256_mul_ps(t2, db));
  return _mm256_and_ps(r, mask);
}

/// Detector fetch for 8 k-lanes: u is the detector column, v the detector
/// row. The storage layout decides which coordinate runs along the
/// contiguous axis.
inline __m256 fetch8(const BatchArgs& b, const float* img, __m256 u,
                     __m256 v) {
  if (b.transposed) {
    return interp2_gather(img, static_cast<int>(b.nv),
                          static_cast<int>(b.nu), v, u);
  }
  return interp2_gather(img, static_cast<int>(b.nu), static_cast<int>(b.nv),
                        u, v);
}

void run_column(const BatchArgs& b, const ColumnArgs& c) {
  constexpr std::size_t kWidth = 8;
  const __m256 lane = _mm256_setr_ps(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256 ones = _mm256_set1_ps(1.0f);
  const __m256 v_mirror = _mm256_set1_ps(b.v_mirror);
  const __m256i reverse = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);

  std::size_t t = c.t_begin;
  for (; t + kWidth <= c.t_end; t += kWidth) {
    // k0 + t + lane: exact small integers, identical to the scalar casts.
    const __m256 fk = _mm256_add_ps(
        _mm256_set1_ps(static_cast<float>(b.k0 + t)), lane);
    __m256 acc = _mm256_setzero_ps();
    __m256 acc_m = _mm256_setzero_ps();

    for (std::size_t s = 0; s < b.count; ++s) {
      const float* m = b.pmat[s].data();
      __m256 u, f, wdis;
      if (b.reuse_uw) {
        u = _mm256_set1_ps(c.u_s[s]);
        f = _mm256_set1_ps(c.f_s[s]);
        wdis = _mm256_set1_ps(c.w_s[s]);
      } else {
        // dot_row associates ((m0*i + m1*j) + m2*k) + m3; the i/j part is
        // k-independent and computed once in scalar, preserving the order.
        const float xij = m[0] * c.fi + m[1] * c.fj;
        const float zij = m[8] * c.fi + m[9] * c.fj;
        const __m256 x = _mm256_add_ps(
            _mm256_add_ps(_mm256_set1_ps(xij),
                          _mm256_mul_ps(_mm256_set1_ps(m[2]), fk)),
            _mm256_set1_ps(m[3]));
        const __m256 z = _mm256_add_ps(
            _mm256_add_ps(_mm256_set1_ps(zij),
                          _mm256_mul_ps(_mm256_set1_ps(m[10]), fk)),
            _mm256_set1_ps(m[11]));
        f = _mm256_div_ps(ones, z);
        u = _mm256_mul_ps(x, f);
        wdis = _mm256_mul_ps(f, f);
      }

      // Algorithm 4 line 12: the single remaining inner product, 8 k's at
      // a time.
      const float yij = m[4] * c.fi + m[5] * c.fj;
      const __m256 y = _mm256_add_ps(
          _mm256_add_ps(_mm256_set1_ps(yij),
                        _mm256_mul_ps(_mm256_set1_ps(m[6]), fk)),
          _mm256_set1_ps(m[7]));
      const __m256 v = _mm256_mul_ps(y, f);

      acc = _mm256_add_ps(acc,
                          _mm256_mul_ps(wdis, fetch8(b, b.images[s], u, v)));
      if (b.symmetry) {
        const __m256 vm = _mm256_sub_ps(v_mirror, v);
        acc_m = _mm256_add_ps(
            acc_m, _mm256_mul_ps(wdis, fetch8(b, b.images[s], u, vm)));
      }
    }

    float* out = c.col + t;
    _mm256_storeu_ps(out, _mm256_add_ps(_mm256_loadu_ps(out), acc));
    if (b.symmetry) {
      // Lanes t..t+7 mirror to nzl-1-t .. nzl-8-t: reverse, then one
      // ascending accumulate-store at the low end of that range.
      const __m256 rev = _mm256_permutevar8x32_ps(acc_m, reverse);
      float* mout = c.col + (b.nzl - kWidth - t);
      _mm256_storeu_ps(mout, _mm256_add_ps(_mm256_loadu_ps(mout), rev));
    }
  }

  // Sub-width tail and the odd center plane run through the scalar
  // reference (bitwise-identical arithmetic, so the seam is invisible).
  if (t < c.t_end || c.do_center) {
    ColumnArgs tail = c;
    tail.t_begin = t;
    scalar_kernel().run(b, tail);
  }
}

}  // namespace

const ColumnKernel& avx2_kernel_impl() {
  static constexpr ColumnKernel kernel{"avx2", run_column};
  return kernel;
}

}  // namespace ifdk::bp::simd

#endif  // defined(__AVX2__)
